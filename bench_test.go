// Benchmarks that regenerate the paper's evaluation artifacts, one per
// table and figure (see DESIGN.md §4 for the experiment index and
// cmd/benchtab for the harness that prints paper-style rows). Absolute
// times differ from the 2004 hardware; the shapes — who wins, by what
// factor, where overheads fall — are the reproduction targets.
package gridbcg

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/astro"
	"repro/internal/cluster"
	"repro/internal/htm"
	"repro/internal/maxbcg"
	"repro/internal/perfmodel"
	"repro/internal/sky"
	"repro/internal/sqldb"
	"repro/internal/storage"
	"repro/internal/tam"
	"repro/internal/zone"
)

// Shared fixtures: one synthetic survey, generated once.
var (
	benchOnce sync.Once
	benchCat  *sky.Catalog
)

func benchCatalog(b *testing.B) *sky.Catalog {
	b.Helper()
	benchOnce.Do(func() {
		cat, err := sky.Generate(sky.GenConfig{
			Region: astro.MustBox(193.9, 196.4, 1.2, 3.8),
			Seed:   20040801, // the paper's first submission date
		})
		if err != nil {
			b.Fatal(err)
		}
		benchCat = cat
	})
	return benchCat
}

// benchTarget is the standard benchmark target: 0.5 x 1.2 deg with full
// 1-degree import margins inside the survey.
func benchTarget() astro.Box { return astro.MustBox(194.9, 195.4, 1.9, 3.1) }

// --- Table 1: SQL cluster performance, no partitioning vs 3-way ----------

func BenchmarkTable1NoPartition(b *testing.B) {
	b.ReportAllocs()
	cat := benchCatalog(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := cluster.Run(cat, benchTarget(), cluster.Config{
			Nodes: 1, Params: maxbcg.DefaultParams(),
		})
		if err != nil {
			b.Fatal(err)
		}
		elapsed, cpu, io, gals := res.Totals()
		b.ReportMetric(elapsed.Seconds(), "elapsed-s")
		b.ReportMetric(cpu.Seconds(), "cpu-s")
		b.ReportMetric(float64(io), "io-ops")
		b.ReportMetric(float64(gals), "galaxies")
	}
}

func BenchmarkTable1ThreeWay(b *testing.B) {
	b.ReportAllocs()
	cat := benchCatalog(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := cluster.Run(cat, benchTarget(), cluster.Config{
			Nodes: 3, Params: maxbcg.DefaultParams(),
		})
		if err != nil {
			b.Fatal(err)
		}
		elapsed, cpu, io, gals := res.Totals()
		b.ReportMetric(elapsed.Seconds(), "elapsed-s")
		b.ReportMetric(cpu.Seconds(), "cpu-s")
		b.ReportMetric(float64(io), "io-ops")
		b.ReportMetric(float64(gals), "galaxies")
	}
}

// --- Table 2: scale-factor arithmetic -------------------------------------

func BenchmarkTable2ScaleFactors(b *testing.B) {
	b.ReportAllocs()
	var total float64
	for i := 0; i < b.N; i++ {
		s := perfmodel.ComputeScaleFactors(perfmodel.TAMConfig(), perfmodel.SQLConfig())
		total = s.Total
	}
	b.ReportMetric(total, "total-scale-factor")
}

// --- Table 3: TAM baseline vs SQL implementation --------------------------

// table3Target is one TAM field: 0.25 deg².
func table3Target() astro.Box { return astro.MustBox(195.0, 195.5, 2.3, 2.8) }

func BenchmarkTable3TAMBaseline(b *testing.B) {
	b.ReportAllocs()
	cat := benchCatalog(b)
	cfg := tam.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tam.Run(cat, table3Target(), cfg, b.TempDir()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3SQLServer(b *testing.B) {
	b.ReportAllocs()
	cat := benchCatalog(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db := sqldb.Open(0)
		f, err := maxbcg.NewDBFinder(db, maxbcg.DefaultParams(), cat.Kcorr, 0)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := f.ImportGalaxies(cat, table3Target().Expand(1.0)); err != nil {
			b.Fatal(err)
		}
		if _, _, err := f.Run(table3Target(), false); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 1: the TAM buffer compromise ----------------------------------

func BenchmarkFigure1BufferTruncation(b *testing.B) {
	b.ReportAllocs()
	cat := benchCatalog(b)
	target := table3Target()
	truncated := 0.0
	for i := 0; i < b.N; i++ {
		small := tam.DefaultConfig() // 0.25 deg buffer
		small.Kcorr = cat.Kcorr
		big := small
		big.BufferDeg = 0.5 // the ideal Figure 1 dashed area
		rs, err := tam.Run(cat, target, small, b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		rb, err := tam.Run(cat, target, big, b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		smallBy := make(map[int64]maxbcg.Candidate, len(rs.Candidates))
		for _, c := range rs.Candidates {
			smallBy[c.ObjID] = c
		}
		truncated = 0
		for _, c := range rb.Candidates {
			if s, ok := smallBy[c.ObjID]; !ok || s.NGal < c.NGal {
				truncated++
			}
		}
		b.ReportMetric(truncated, "truncated-candidates")
		b.ReportMetric(float64(len(rb.Candidates)), "ideal-candidates")
	}
}

// --- Figure 2: candidate pipeline densities --------------------------------

func BenchmarkFigure2CandidateDensity(b *testing.B) {
	b.ReportAllocs()
	cat := benchCatalog(b)
	f, err := maxbcg.NewFinder(cat, maxbcg.DefaultParams(), 0)
	if err != nil {
		b.Fatal(err)
	}
	area := table3Target()
	n := 0
	for i := range cat.Galaxies {
		if area.Contains(cat.Galaxies[i].Ra, cat.Galaxies[i].Dec) {
			n++
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cands, err := f.FindCandidates(area)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(cands))/float64(n)*100, "candidate-pct")
		b.ReportMetric(float64(n)/area.FlatArea()*0.25, "galaxies-per-field")
	}
}

// --- Figure 3: 5-parameter selection from the Galaxy table -----------------

func BenchmarkFigure3Selection(b *testing.B) {
	b.ReportAllocs()
	cat := benchCatalog(b)
	db := sqldb.Open(0)
	f, err := maxbcg.NewDBFinder(db, maxbcg.DefaultParams(), cat.Kcorr, 0)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := f.ImportGalaxies(cat, cat.Region); err != nil {
		b.Fatal(err)
	}
	b.Run("FullScanFilter", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rows, err := db.Query(`SELECT COUNT(*) FROM galaxy
				WHERE ra BETWEEN 194.9 AND 195.4 AND dec BETWEEN 2.3 AND 2.8`)
			if err != nil {
				b.Fatal(err)
			}
			rows.Next()
		}
	})
	b.Run("ClusteredRangeScan", func(b *testing.B) {
		b.ReportAllocs()
		// objid is the clustered key; a range on it prunes pages.
		for i := 0; i < b.N; i++ {
			rows, err := db.Query("SELECT COUNT(*) FROM galaxy WHERE objid BETWEEN 1000 AND 2000")
			if err != nil {
				b.Fatal(err)
			}
			rows.Next()
		}
	})
}

// --- Figure 4: buffer overhead shrinks with target size --------------------

func BenchmarkFigure4BufferOverhead(b *testing.B) {
	b.ReportAllocs()
	cat := benchCatalog(b)
	for _, side := range []float64{0.5, 1.0, 2.0} {
		b.Run(fmt.Sprintf("side-%gdeg", side), func(b *testing.B) {
			b.ReportAllocs()
			target := astro.MustBox(195.15-side/2, 195.15+side/2, 2.5-side/2, 2.5+side/2)
			buffered := target.Expand(0.5)
			overhead := buffered.FlatArea() / target.FlatArea()
			f, err := maxbcg.NewFinder(cat, maxbcg.DefaultParams(), 0)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.FindCandidates(buffered); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(overhead, "buffer-overhead-x")
		})
	}
}

// --- Figure 5: candidate max-likelihood search -----------------------------

func BenchmarkFigure5CandidateSearch(b *testing.B) {
	b.ReportAllocs()
	cat := benchCatalog(b)
	f, err := maxbcg.NewFinder(cat, maxbcg.DefaultParams(), 0)
	if err != nil {
		b.Fatal(err)
	}
	cands, err := f.FindCandidates(table3Target().Expand(0.5))
	if err != nil {
		b.Fatal(err)
	}
	p := maxbcg.DefaultParams()
	b.Run("CandidateSet", func(b *testing.B) {
		b.ReportAllocs()
		cset := maxbcg.NewCandidateSet(cands)
		for i := 0; i < b.N; i++ {
			c := cands[i%len(cands)]
			if _, err := maxbcg.IsCluster(p, c, cat.Kcorr, cset); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("NaiveScan", func(b *testing.B) {
		b.ReportAllocs()
		naive := naiveCandidateSearcher(cands)
		for i := 0; i < b.N; i++ {
			c := cands[i%len(cands)]
			if _, err := maxbcg.IsCluster(p, c, cat.Kcorr, naive); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// naiveCandidateSearcher scans every candidate per query: the
// "no index on the Candidates table" ablation.
type naiveCandidateSearcher []maxbcg.Candidate

func (s naiveCandidateSearcher) SearchCandidates(ra, dec, r float64, visit func(maxbcg.Candidate)) error {
	r2 := astro.Chord2FromAngle(r)
	center := astro.UnitVector(ra, dec)
	for _, c := range s {
		if center.Chord2(astro.UnitVector(c.Ra, c.Dec)) < r2 {
			visit(c)
		}
	}
	return nil
}

// --- Figure 6: partition planning and speedup ------------------------------

func BenchmarkFigure6Partitioning(b *testing.B) {
	b.ReportAllocs()
	cat := benchCatalog(b)
	survey := astro.MustBox(172, 185, -3, 5)
	paperTarget := astro.MustBox(173, 184, -2, 4)
	for i := 0; i < b.N; i++ {
		parts, err := cluster.Plan(paperTarget, 3, 0.5, survey)
		if err != nil {
			b.Fatal(err)
		}
		dup := cluster.DuplicatedArea(parts, paperTarget, 0.5, survey)
		b.ReportMetric(dup, "duplicated-deg2") // paper: 4 x 13 = 52
	}
	for _, nodes := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("run-%dnodes", nodes), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := cluster.Run(cat, benchTarget(), cluster.Config{
					Nodes: nodes, Params: maxbcg.DefaultParams(),
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Elapsed.Seconds(), "elapsed-s")
			}
		})
	}
}

// --- Zone search: point probes vs the batched zone join ---------------------

// BenchmarkZoneSearch answers the same probe set through the per-probe
// SearchTable plan (one descent + cursor per probe per zone) and through
// BatchSearch (one synchronized sweep per zone); the gap is the tentpole
// speedup at its source.
func BenchmarkZoneSearch(b *testing.B) {
	b.ReportAllocs()
	cat := benchCatalog(b)
	db := sqldb.Open(0)
	zt, err := zone.InstallZoneTable(db, "Zone", cat.Galaxies, astro.ZoneHeightDeg)
	if err != nil {
		b.Fatal(err)
	}
	probes := make([]zone.Probe, 256)
	for i := range probes {
		probes[i] = zone.Probe{
			Ra:  194.0 + float64(i%64)*0.035,
			Dec: 1.4 + float64(i%37)*0.06,
			R:   0.1,
		}
	}
	b.Run("Probe", func(b *testing.B) {
		b.ReportAllocs()
		n := 0
		for i := 0; i < b.N; i++ {
			for _, p := range probes {
				err := zone.SearchTable(zt, astro.ZoneHeightDeg, p.Ra, p.Dec, p.R,
					func(zone.ZoneRow) { n++ })
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("Batch", func(b *testing.B) {
		b.ReportAllocs()
		n := 0
		for i := 0; i < b.N; i++ {
			err := zone.Sweep(context.Background(), zone.Rows(zt, astro.ZoneHeightDeg), probes,
				zone.SweepOptions{Workers: 1}, func(int, zone.ZoneRow) { n++ })
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- SQL planner: the batched zone join from plain SQL ----------------------

// BenchmarkSQLZoneJoin measures the paper's neighbour query through the
// sqldb planner — a probe table lateral-joined against fGetNearbyObjEqZd,
// lowered to ZoneSweepJoin over the columnar zone store — against the Go
// entry point answering the same probes and materialising the same
// (pid, objID, distance) rows. The SQL lane pays parse + plan + Value
// materialisation per hit; the gap between the lanes is the whole cost of
// SQL access to the sweep (the acceptance bound is 1.3x).
func BenchmarkSQLZoneJoin(b *testing.B) {
	b.ReportAllocs()
	cat := benchCatalog(b)
	db := sqldb.Open(0)
	zt, err := zone.InstallZoneTableColumnar(db, "Zone", cat.Galaxies, astro.ZoneHeightDeg)
	if err != nil {
		b.Fatal(err)
	}
	ct := zt.Columnar()
	zone.RegisterNearbyTVF(db, zt, astro.ZoneHeightDeg)
	rng := rand.New(rand.NewSource(20040801))
	probes := make([]zone.Probe, 256)
	for i := range probes {
		probes[i] = zone.Probe{
			Ra:  194.1 + rng.Float64()*2.0,
			Dec: 1.4 + rng.Float64()*2.2,
			R:   0.02 + rng.Float64()*0.1,
		}
	}
	if _, err := db.Exec("CREATE TABLE Probes (pid bigint PRIMARY KEY, ra float, dec float, r float)"); err != nil {
		b.Fatal(err)
	}
	pt, _ := db.Table("Probes")
	for i, p := range probes {
		err := pt.Insert([]sqldb.Value{
			sqldb.Int(int64(i)), sqldb.Float(p.Ra), sqldb.Float(p.Dec), sqldb.Float(p.R),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	const query = `SELECT p.pid, n.objID, n.distance FROM Probes p CROSS JOIN fGetNearbyObjEqZd(p.ra, p.dec, p.r) n`

	b.Run("SQL", func(b *testing.B) {
		b.ReportAllocs()
		n := 0
		for i := 0; i < b.N; i++ {
			rows, err := db.Query(query)
			if err != nil {
				b.Fatal(err)
			}
			n = rows.Len()
		}
		b.ReportMetric(float64(n), "hits")
	})
	b.Run("GoSweep", func(b *testing.B) {
		b.ReportAllocs()
		n := 0
		for i := 0; i < b.N; i++ {
			// The comparable deliverable: the same materialised result set,
			// per-probe rows buffered and flattened in probe order.
			hits := make([][][]sqldb.Value, len(probes))
			err := zone.Sweep(context.Background(), zone.Columnar(ct, astro.ZoneHeightDeg), probes,
				zone.SweepOptions{Workers: 1}, func(pi int, zr zone.ZoneRow) {
					hits[pi] = append(hits[pi], []sqldb.Value{
						sqldb.Int(int64(pi)), sqldb.Int(zr.ObjID), sqldb.Float(zr.Distance),
					})
				})
			if err != nil {
				b.Fatal(err)
			}
			var out [][]sqldb.Value
			for _, h := range hits {
				out = append(out, h...)
			}
			n = len(out)
		}
		b.ReportMetric(float64(n), "hits")
	})
}

// --- Ablations: the design choices §2.6 credits ----------------------------

// BenchmarkAblationBatchVsProbe runs the full DBFinder pipeline under both
// neighbour-search access paths; their outputs are bit-identical (see
// TestBatchModeMatchesProbeMode), so the delta is pure access-path cost.
func BenchmarkAblationBatchVsProbe(b *testing.B) {
	b.ReportAllocs()
	cat := benchCatalog(b)
	target := table3Target()
	run := func(b *testing.B, mode maxbcg.SearchMode) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			db := sqldb.Open(0)
			f, err := maxbcg.NewDBFinder(db, maxbcg.DefaultParams(), cat.Kcorr, 0)
			if err != nil {
				b.Fatal(err)
			}
			f.Mode = mode
			if _, err := f.ImportGalaxies(cat, target.Expand(1.0)); err != nil {
				b.Fatal(err)
			}
			if _, _, err := f.Run(target, false); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("Batch", func(b *testing.B) { run(b, maxbcg.SearchBatch) })
	b.Run("Probe", func(b *testing.B) { run(b, maxbcg.SearchProbe) })
}

// BenchmarkAblationParallelSweep sweeps the worker-pool size of the
// batched zone join over the full DBFinder pipeline: workers=1 is the
// sequential sweep PR 1 introduced, workers>1 claims zones from a pool
// with one cursor per worker. Output is bit-identical at every setting
// (TestParallelWorkersMatchSequential), so the deltas are pure scheduling:
// on a single core the extra workers only add coordination overhead, on N
// cores the sweep-dominated tasks approach 1/N.
func BenchmarkAblationParallelSweep(b *testing.B) {
	b.ReportAllocs()
	cat := benchCatalog(b)
	target := table3Target()
	// "workers=N", not "workers-N": go test appends a -GOMAXPROCS suffix
	// to benchmark names (except when GOMAXPROCS=1), so a name ending in
	// -digit would be ambiguous to strip in benchgate's snapshot keys.
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				db := sqldb.Open(0)
				f, err := maxbcg.NewDBFinder(db, maxbcg.DefaultParams(), cat.Kcorr, 0)
				if err != nil {
					b.Fatal(err)
				}
				f.Workers = workers
				if _, err := f.ImportGalaxies(cat, target.Expand(1.0)); err != nil {
					b.Fatal(err)
				}
				_, report, err := f.Run(target, false)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(report.Total().Elapsed.Seconds(), "elapsed-s")
			}
		})
	}
}

// BenchmarkAblationColumnarSweep answers one candidate-sized probe batch
// through both zone-table representations at Workers=1: the row sweep
// (clustered B+tree, 7 of 10 columns decoded per chord test) versus the
// columnar sweep (packed float arrays per zone segment, no per-row
// decode). Output is bit-identical (TestColumnarSweepMatchesRowSweep), so
// the deltas — wall clock and allocs/op — are pure representation cost.
func BenchmarkAblationColumnarSweep(b *testing.B) {
	b.ReportAllocs()
	cat := benchCatalog(b)
	db := sqldb.Open(0)
	zt, err := zone.InstallZoneTableColumnar(db, "Zone", cat.Galaxies, astro.ZoneHeightDeg)
	if err != nil {
		b.Fatal(err)
	}
	ct := zt.Columnar()
	rng := rand.New(rand.NewSource(20040801))
	probes := make([]zone.Probe, 512)
	for i := range probes {
		probes[i] = zone.Probe{
			Ra:  194.1 + rng.Float64()*2.0,
			Dec: 1.4 + rng.Float64()*2.2,
			R:   0.02 + rng.Float64()*0.1,
		}
	}
	b.Run("Row", func(b *testing.B) {
		b.ReportAllocs()
		n := 0
		for i := 0; i < b.N; i++ {
			err := zone.Sweep(context.Background(), zone.Rows(zt, astro.ZoneHeightDeg), probes,
				zone.SweepOptions{Workers: 1}, func(int, zone.ZoneRow) { n++ })
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(n)/float64(b.N), "hits")
	})
	b.Run("Columnar", func(b *testing.B) {
		b.ReportAllocs()
		n := 0
		for i := 0; i < b.N; i++ {
			err := zone.Sweep(context.Background(), zone.Columnar(ct, astro.ZoneHeightDeg), probes,
				zone.SweepOptions{Workers: 1}, func(int, zone.ZoneRow) { n++ })
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(n)/float64(b.N), "hits")
	})
}

// BenchmarkParallelSweepScaling is the scaling gate for the sharded
// buffer pool: one candidate-sized probe batch swept at 1/2/4/8 workers
// over both zone-table representations. Every iteration asserts the two
// invariants the redesign promises — pool io-ops identical to the
// sequential sweep (leaf caches reset per zone keep the fetch schedule
// worker-count-invariant) and a bit-identical output checksum — then
// reports speedup-x against a self-timed sequential reference. On a
// single-core runner speedup hovers near 1 and the extra workers only add
// coordination; CI gates ns/op and exact io-ops, and the ≥2x-at-4-workers
// acceptance criterion applies on multi-core runners.
func BenchmarkParallelSweepScaling(b *testing.B) {
	cat := benchCatalog(b)
	db := sqldb.Open(0)
	zt, err := zone.InstallZoneTableColumnar(db, "Zone", cat.Galaxies, astro.ZoneHeightDeg)
	if err != nil {
		b.Fatal(err)
	}
	ct := zt.Columnar()
	pool := db.Pool()
	rng := rand.New(rand.NewSource(20040801))
	probes := make([]zone.Probe, 512)
	for i := range probes {
		probes[i] = zone.Probe{
			Ra:  194.1 + rng.Float64()*2.0,
			Dec: 1.4 + rng.Float64()*2.2,
			R:   0.02 + rng.Float64()*0.1,
		}
	}
	mix := func(h, v uint64) uint64 { return (h ^ v) * 1099511628211 }
	sweepOnce := func(src zone.Source, workers int) (uint64, storage.Stats) {
		before := pool.Stats()
		h := uint64(14695981039346656037)
		err := zone.Sweep(context.Background(), src, probes, zone.SweepOptions{Workers: workers},
			func(pi int, zr zone.ZoneRow) {
				h = mix(h, uint64(pi))
				h = mix(h, uint64(zr.ObjID))
				h = mix(h, math.Float64bits(zr.Distance))
			})
		if err != nil {
			b.Fatal(err)
		}
		return h, pool.Stats().Sub(before)
	}
	for _, s := range []struct {
		name string
		src  zone.Source
	}{
		{"Row", zone.Rows(zt, astro.ZoneHeightDeg)},
		{"Columnar", zone.Columnar(ct, astro.ZoneHeightDeg)},
	} {
		// Sequential reference: one warm-up pass so page residency is
		// steady, then the checksum, io delta, and wall clock to beat.
		wantSum, _ := sweepOnce(s.src, 1)
		const seqReps = 3
		var wantIO storage.Stats
		start := time.Now()
		for r := 0; r < seqReps; r++ {
			sum, io := sweepOnce(s.src, 1)
			if sum != wantSum {
				b.Fatalf("%s: sequential sweep not deterministic", s.name)
			}
			wantIO = io
		}
		seqNs := float64(time.Since(start).Nanoseconds()) / seqReps
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", s.name, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					sum, io := sweepOnce(s.src, workers)
					if sum != wantSum {
						b.Fatalf("workers=%d: output differs from the sequential sweep", workers)
					}
					if io != wantIO {
						b.Fatalf("workers=%d: io %+v, sequential %+v", workers, io, wantIO)
					}
				}
				b.ReportMetric(float64(wantIO.Total()), "io-ops")
				b.ReportMetric(seqNs/(float64(b.Elapsed().Nanoseconds())/float64(b.N)), "speedup-x")
			})
		}
	}
}

// BenchmarkBulkVsInsert is the ingest ablation: loading one table through
// Table.BulkInsert (encode once, sort the run, write packed pages
// bottom-up) versus per-row Insert (one root-to-leaf descent per row), on
// the zone-table schema the paper's spZone rebuilds. Rows arrive in random
// order so the bulk path pays for its sort.
func BenchmarkBulkVsInsert(b *testing.B) {
	b.ReportAllocs()
	cols := []sqldb.Column{
		{Name: "zoneid", Type: sqldb.TInt},
		{Name: "ra", Type: sqldb.TFloat},
		{Name: "dec", Type: sqldb.TFloat},
		{Name: "objid", Type: sqldb.TInt},
		{Name: "i", Type: sqldb.TFloat},
	}
	makeRows := func(n int) [][]sqldb.Value {
		rng := rand.New(rand.NewSource(20040801))
		rows := make([][]sqldb.Value, n)
		for i := range rows {
			rows[i] = []sqldb.Value{
				sqldb.Int(int64(rng.Intn(400))),
				sqldb.Float(rng.Float64() * 360),
				sqldb.Float(rng.Float64()*180 - 90),
				sqldb.Int(int64(i)),
				sqldb.Float(rng.Float64() * 25),
			}
		}
		return rows
	}
	for _, n := range []int{1000, 100000} {
		rows := makeRows(n)
		b.Run(fmt.Sprintf("Bulk-%drows", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				db := sqldb.Open(256)
				t, err := db.CreateTableClustered("z", cols, []string{"zoneid", "ra"})
				if err != nil {
					b.Fatal(err)
				}
				if err := t.BulkInsert(rows); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Insert-%drows", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				db := sqldb.Open(256)
				t, err := db.CreateTableClustered("z", cols, []string{"zoneid", "ra"})
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range rows {
					if err := t.Insert(r); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkAblationEarlyFilter removes the χ² early filter (cutoff → ∞) so
// every galaxy reaches the neighbour-count stage: the cost the early JOIN
// filter avoids.
func BenchmarkAblationEarlyFilter(b *testing.B) {
	b.ReportAllocs()
	cat := benchCatalog(b)
	small := astro.MustBox(195.1, 195.3, 2.45, 2.65)
	run := func(b *testing.B, cutoff float64) {
		b.ReportAllocs()
		p := maxbcg.DefaultParams()
		p.Chi2Cutoff = cutoff
		f, err := maxbcg.NewFinder(cat, p, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := f.FindCandidates(small); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("WithEarlyFilter", func(b *testing.B) { run(b, maxbcg.DefaultParams().Chi2Cutoff) })
	b.Run("NoEarlyFilter", func(b *testing.B) { run(b, 1e9) })
}

// BenchmarkAblationSpatialIndex compares the three neighbour-search access
// paths on identical queries: zone (the paper's choice), HTM (rejected for
// performance), and a full scan.
func BenchmarkAblationSpatialIndex(b *testing.B) {
	b.ReportAllocs()
	cat := benchCatalog(b)
	zidx, err := zone.Build(cat.Galaxies, astro.ZoneHeightDeg)
	if err != nil {
		b.Fatal(err)
	}
	hidx, err := htm.Build(cat.Galaxies, 0)
	if err != nil {
		b.Fatal(err)
	}
	query := func(i int) (float64, float64) {
		return 194.5 + float64(i%100)*0.015, 2.0 + float64(i%37)*0.04
	}
	b.Run("Zone", func(b *testing.B) {
		b.ReportAllocs()
		n := 0
		for i := 0; i < b.N; i++ {
			ra, dec := query(i)
			zidx.Visit(ra, dec, 0.25, func(zone.Neighbor) { n++ })
		}
	})
	b.Run("HTM", func(b *testing.B) {
		b.ReportAllocs()
		n := 0
		for i := 0; i < b.N; i++ {
			ra, dec := query(i)
			hidx.Visit(ra, dec, 0.25, func(htm.Entry, float64) { n++ })
		}
	})
	b.Run("FullScan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ra, dec := query(i)
			zone.BruteForce(cat.Galaxies, ra, dec, 0.25)
		}
	})
}

// BenchmarkAblationZoneHeight sweeps the zone height: too thin means many
// zone seeks, too thick means wide ra scans.
func BenchmarkAblationZoneHeight(b *testing.B) {
	b.ReportAllocs()
	cat := benchCatalog(b)
	for _, h := range []float64{astro.ZoneHeightDeg, 4 * astro.ZoneHeightDeg, 0.1, 0.5} {
		b.Run(fmt.Sprintf("h-%.4fdeg", h), func(b *testing.B) {
			b.ReportAllocs()
			idx, err := zone.Build(cat.Galaxies, h)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			n := 0
			for i := 0; i < b.N; i++ {
				ra := 194.5 + float64(i%100)*0.015
				idx.Visit(ra, 2.5, 0.25, func(zone.Neighbor) { n++ })
			}
		})
	}
}

// BenchmarkAblationCursorVsApply reproduces §2.6's "SQL cursors ... are
// very slow": fetching rows one query at a time vs one set-oriented
// statement.
func BenchmarkAblationCursorVsApply(b *testing.B) {
	b.ReportAllocs()
	db := sqldb.Open(0)
	if _, err := db.Exec("CREATE TABLE t (k bigint PRIMARY KEY, v float)"); err != nil {
		b.Fatal(err)
	}
	tbl, _ := db.Table("t")
	const rows = 2000
	for i := 0; i < rows; i++ {
		if err := tbl.Insert([]sqldb.Value{sqldb.Int(int64(i)), sqldb.Float(float64(i))}); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("RowAtATimeQueries", func(b *testing.B) {
		b.ReportAllocs()
		// One statement per row, the cursor pattern of spMakeCandidates.
		for i := 0; i < b.N; i++ {
			var sum float64
			for k := 0; k < rows; k++ {
				r, err := db.Query("SELECT v FROM t WHERE k = ?", sqldb.Int(int64(k)))
				if err != nil {
					b.Fatal(err)
				}
				r.Next()
				v, _ := r.Row()[0].AsFloat()
				sum += v
			}
		}
	})
	b.Run("SetOriented", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := db.Query("SELECT SUM(v) FROM t")
			if err != nil {
				b.Fatal(err)
			}
			r.Next()
		}
	})
}

// Package condor simulates the Grid substrate the paper's baseline ran on:
// a Condor-style matchmaking scheduler over a small pool of nodes (the
// Terabyte Analysis Machine was "a 5-node Condor cluster", dual-600-MHz
// PIII with 1 GB RAM per node), plus a Chimera-style virtual data catalog
// (transformations, derivations, provenance) from the GriPhyN project that
// staged and ran the MaxBCG field jobs.
//
// Two execution modes are provided: a discrete-event simulation used to
// project wall-clock times for hardware we do not have (600 MHz nodes),
// and a real worker-pool executor used to run field tasks with the same
// parallelism on the host machine.
package condor

import (
	"fmt"
	"sort"
	"sync"
)

// Node describes one machine in the pool. Slots is the number of jobs the
// node runs concurrently (TAM nodes were dual-CPU: 2 slots).
type Node struct {
	Name   string
	CPUMHz int
	RAMMB  int
	Slots  int
}

// TAMPool returns the paper's cluster: 5 nodes, each a dual-600-MHz PIII
// with 1 GB of RAM ("the TAM cluster could process ten target fields in
// parallel").
func TAMPool() []Node {
	nodes := make([]Node, 5)
	for i := range nodes {
		nodes[i] = Node{Name: fmt.Sprintf("tam%02d", i+1), CPUMHz: 600, RAMMB: 1024, Slots: 2}
	}
	return nodes
}

// Job is one schedulable unit: a MaxBCG field task.
type Job struct {
	ID string
	// RAMMB is the job's memory requirement; matchmaking refuses nodes
	// with less.
	RAMMB int
	// CostSeconds is the job's CPU cost on a reference 600 MHz CPU
	// (the paper: ~1000 s per 0.25 deg² field).
	CostSeconds float64
}

// Assignment records where and when a simulated job ran.
type Assignment struct {
	Job        Job
	Node       string
	Slot       int
	Start, End float64 // simulated seconds
}

// SimResult is the outcome of a discrete-event scheduling simulation.
type SimResult struct {
	Assignments []Assignment
	Makespan    float64 // when the last job finished
	BusySeconds float64 // total CPU-seconds consumed
}

// Simulate schedules the jobs FIFO onto the pool: each job goes to the
// matching slot that frees earliest, and runs for
// CostSeconds · 600 / CPUMHz simulated seconds. It returns an error if any
// job matches no node (e.g. its RAM requirement exceeds every node — the
// paper's reason TAM could not run the fine configuration).
func Simulate(jobs []Job, nodes []Node) (*SimResult, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("condor: empty pool")
	}
	type slot struct {
		node Node
		idx  int
		free float64
	}
	var slots []*slot
	for _, n := range nodes {
		if n.Slots <= 0 || n.CPUMHz <= 0 {
			return nil, fmt.Errorf("condor: node %s has no usable slots", n.Name)
		}
		for s := 0; s < n.Slots; s++ {
			slots = append(slots, &slot{node: n, idx: s})
		}
	}
	res := &SimResult{}
	for _, j := range jobs {
		var best *slot
		for _, s := range slots {
			if j.RAMMB > s.node.RAMMB {
				continue
			}
			if best == nil || s.free < best.free {
				best = s
			}
		}
		if best == nil {
			return nil, fmt.Errorf("condor: job %s (%d MB) matches no node in the pool", j.ID, j.RAMMB)
		}
		dur := j.CostSeconds * 600 / float64(best.node.CPUMHz)
		a := Assignment{Job: j, Node: best.node.Name, Slot: best.idx, Start: best.free, End: best.free + dur}
		best.free = a.End
		res.BusySeconds += dur
		if a.End > res.Makespan {
			res.Makespan = a.End
		}
		res.Assignments = append(res.Assignments, a)
	}
	sort.Slice(res.Assignments, func(a, b int) bool {
		if res.Assignments[a].Start != res.Assignments[b].Start {
			return res.Assignments[a].Start < res.Assignments[b].Start
		}
		return res.Assignments[a].Job.ID < res.Assignments[b].Job.ID
	})
	return res, nil
}

// RunParallel executes n real jobs with the given worker count (the pool's
// total slots), collecting the first error. Jobs run as goroutines on the
// host; use Simulate for projected 2004-hardware times.
func RunParallel(n, workers int, fn func(job int) error) error {
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan int)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if err := fn(j); err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
			}
		}()
	}
	for j := 0; j < n; j++ {
		select {
		case err := <-errs:
			close(jobs)
			wg.Wait()
			return err
		case jobs <- j:
		}
	}
	close(jobs)
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

// TotalSlots sums the pool's concurrent capacity.
func TotalSlots(nodes []Node) int {
	n := 0
	for _, node := range nodes {
		n += node.Slots
	}
	return n
}

package condor

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Chimera-style virtual data system (GriPhyN): logical files are defined by
// derivations — applications of registered transformations to input
// logical files — and materialised on demand, recording provenance. The
// paper's baseline ("Applying Chimera Virtual Data Concepts to Cluster
// Finding in the Sloan Sky Survey") staged field files and cluster catalogs
// through exactly this machinery.

// Transformation is a named executable with a Go body.
type Transformation struct {
	Name string
	// Exec materialises output from inputs. Args carry the derivation's
	// actual parameters.
	Exec func(args map[string]string, inputs []string, output string) error
}

// Derivation declares how one logical file is produced.
type Derivation struct {
	Output         string
	Transformation string
	Args           map[string]string
	Inputs         []string
}

// Invocation is one provenance record: a derivation that actually ran.
type Invocation struct {
	Output         string
	Transformation string
	Inputs         []string
}

// VDC is a virtual data catalog.
type VDC struct {
	mu              sync.Mutex
	transformations map[string]Transformation
	derivations     map[string]Derivation
	materialized    map[string]bool
	invocations     []Invocation
}

// NewVDC returns an empty catalog.
func NewVDC() *VDC {
	return &VDC{
		transformations: make(map[string]Transformation),
		derivations:     make(map[string]Derivation),
		materialized:    make(map[string]bool),
	}
}

// AddTransformation registers an executable.
func (c *VDC) AddTransformation(t Transformation) error {
	if t.Name == "" || t.Exec == nil {
		return fmt.Errorf("condor: transformation needs a name and a body")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.transformations[t.Name]; dup {
		return fmt.Errorf("condor: duplicate transformation %q", t.Name)
	}
	c.transformations[t.Name] = t
	return nil
}

// AddDerivation declares how a logical file is produced. Its
// transformation must already be registered.
func (c *VDC) AddDerivation(d Derivation) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.transformations[d.Transformation]; !ok {
		return fmt.Errorf("condor: derivation %q uses unknown transformation %q", d.Output, d.Transformation)
	}
	if _, dup := c.derivations[d.Output]; dup {
		return fmt.Errorf("condor: duplicate derivation for %q", d.Output)
	}
	c.derivations[d.Output] = d
	return nil
}

// AddExisting marks a logical file as already materialised (raw archive
// data, e.g. the DAS files).
func (c *VDC) AddExisting(lfn string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.materialized[lfn] = true
}

// Materialize produces the logical file, recursively materialising its
// inputs first, and records provenance. Re-materialising is a no-op
// (virtual data: never compute twice).
func (c *VDC) Materialize(lfn string) error {
	return c.materialize(lfn, make(map[string]bool))
}

func (c *VDC) materialize(lfn string, inProgress map[string]bool) error {
	c.mu.Lock()
	if c.materialized[lfn] {
		c.mu.Unlock()
		return nil
	}
	if inProgress[lfn] {
		c.mu.Unlock()
		return fmt.Errorf("condor: derivation cycle through %q", lfn)
	}
	d, ok := c.derivations[lfn]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("condor: no derivation or existing data for %q", lfn)
	}
	t := c.transformations[d.Transformation]
	c.mu.Unlock()

	inProgress[lfn] = true
	for _, in := range d.Inputs {
		if err := c.materialize(in, inProgress); err != nil {
			return fmt.Errorf("condor: materialising input of %q: %w", lfn, err)
		}
	}
	delete(inProgress, lfn)

	if err := t.Exec(d.Args, d.Inputs, d.Output); err != nil {
		return fmt.Errorf("condor: transformation %q for %q: %w", d.Transformation, lfn, err)
	}
	c.mu.Lock()
	c.materialized[lfn] = true
	c.invocations = append(c.invocations, Invocation{
		Output: lfn, Transformation: d.Transformation, Inputs: d.Inputs,
	})
	c.mu.Unlock()
	return nil
}

// Provenance returns the chain of invocations that produced lfn, deepest
// first.
func (c *VDC) Provenance(lfn string) ([]Invocation, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.materialized[lfn] {
		return nil, fmt.Errorf("condor: %q has not been materialised", lfn)
	}
	byOutput := make(map[string]Invocation, len(c.invocations))
	for _, inv := range c.invocations {
		byOutput[inv.Output] = inv
	}
	var chain []Invocation
	seen := make(map[string]bool)
	var walk func(string)
	walk = func(out string) {
		inv, ok := byOutput[out]
		if !ok || seen[out] {
			return
		}
		seen[out] = true
		for _, in := range inv.Inputs {
			walk(in)
		}
		chain = append(chain, inv)
	}
	walk(lfn)
	return chain, nil
}

// Invocations returns every recorded invocation in execution order.
func (c *VDC) Invocations() []Invocation {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Invocation(nil), c.invocations...)
}

// Describe lists the catalog contents; useful for the grid example's
// output.
func (c *VDC) Describe() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var names []string
	for n := range c.derivations {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d transformations, %d derivations, %d materialised\n",
		len(c.transformations), len(c.derivations), len(c.materialized))
	for _, n := range names {
		d := c.derivations[n]
		fmt.Fprintf(&sb, "  %s <- %s(%v)\n", n, d.Transformation, d.Inputs)
	}
	return sb.String()
}

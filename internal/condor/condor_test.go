package condor

import (
	"fmt"
	"math"
	"sync/atomic"
	"testing"
)

func TestTAMPool(t *testing.T) {
	pool := TAMPool()
	if len(pool) != 5 {
		t.Fatalf("TAM has %d nodes, want 5", len(pool))
	}
	if TotalSlots(pool) != 10 {
		t.Errorf("TAM slots = %d, want 10 (paper: ten fields in parallel)", TotalSlots(pool))
	}
	for _, n := range pool {
		if n.CPUMHz != 600 || n.RAMMB != 1024 {
			t.Errorf("node %s config %v not dual-600MHz/1GB", n.Name, n)
		}
	}
}

func TestSimulateLinearScaling(t *testing.T) {
	// Paper §2.2: "the time scales lineally with the number of target
	// areas being processed" and a 0.25 deg² field takes ~1000 s.
	mkJobs := func(n int) []Job {
		jobs := make([]Job, n)
		for i := range jobs {
			jobs[i] = Job{ID: fmt.Sprintf("field-%d", i), RAMMB: 256, CostSeconds: 1000}
		}
		return jobs
	}
	pool := TAMPool()
	r10, err := Simulate(mkJobs(10), pool)
	if err != nil {
		t.Fatal(err)
	}
	if r10.Makespan != 1000 {
		t.Errorf("10 jobs on 10 slots: makespan %g, want 1000", r10.Makespan)
	}
	r100, err := Simulate(mkJobs(100), pool)
	if err != nil {
		t.Fatal(err)
	}
	if r100.Makespan != 10000 {
		t.Errorf("100 jobs: makespan %g, want 10000 (linear scaling)", r100.Makespan)
	}
	if r100.BusySeconds != 100000 {
		t.Errorf("busy seconds %g, want 100000", r100.BusySeconds)
	}
}

func TestSimulateCPUSpeedScaling(t *testing.T) {
	jobs := []Job{{ID: "f", RAMMB: 1, CostSeconds: 1000}}
	fast := []Node{{Name: "xeon", CPUMHz: 2600, RAMMB: 2048, Slots: 1}}
	r, err := Simulate(jobs, fast)
	if err != nil {
		t.Fatal(err)
	}
	want := 1000 * 600.0 / 2600.0
	if math.Abs(r.Makespan-want) > 1e-9 {
		t.Errorf("2.6 GHz makespan %g, want %g", r.Makespan, want)
	}
}

func TestSimulateMatchmakingRAM(t *testing.T) {
	jobs := []Job{{ID: "big", RAMMB: 4096, CostSeconds: 10}}
	if _, err := Simulate(jobs, TAMPool()); err == nil {
		t.Error("job larger than every node was scheduled")
	}
	mixed := []Node{
		{Name: "small", CPUMHz: 600, RAMMB: 512, Slots: 1},
		{Name: "large", CPUMHz: 600, RAMMB: 8192, Slots: 1},
	}
	r, err := Simulate(jobs, mixed)
	if err != nil {
		t.Fatal(err)
	}
	if r.Assignments[0].Node != "large" {
		t.Errorf("job matched %s, want large", r.Assignments[0].Node)
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(nil, nil); err == nil {
		t.Error("empty pool accepted")
	}
	if _, err := Simulate(nil, []Node{{Name: "x", Slots: 0, CPUMHz: 600}}); err == nil {
		t.Error("zero-slot node accepted")
	}
}

func TestRunParallel(t *testing.T) {
	var count int64
	if err := RunParallel(100, 8, func(int) error {
		atomic.AddInt64(&count, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 100 {
		t.Errorf("ran %d jobs, want 100", count)
	}
	// Error propagation.
	err := RunParallel(50, 4, func(j int) error {
		if j == 17 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil || err.Error() != "boom" {
		t.Errorf("error not propagated: %v", err)
	}
}

func TestVDCMaterializeAndProvenance(t *testing.T) {
	vdc := NewVDC()
	var order []string
	exec := func(args map[string]string, inputs []string, output string) error {
		order = append(order, output)
		return nil
	}
	if err := vdc.AddTransformation(Transformation{Name: "extract", Exec: exec}); err != nil {
		t.Fatal(err)
	}
	if err := vdc.AddTransformation(Transformation{Name: "maxbcg", Exec: exec}); err != nil {
		t.Fatal(err)
	}
	vdc.AddExisting("das://raw-tile-42")
	if err := vdc.AddDerivation(Derivation{
		Output: "field-0-buffer", Transformation: "extract",
		Args: map[string]string{"buffer": "0.25"}, Inputs: []string{"das://raw-tile-42"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := vdc.AddDerivation(Derivation{
		Output: "field-0-clusters", Transformation: "maxbcg",
		Inputs: []string{"field-0-buffer"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := vdc.Materialize("field-0-clusters"); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "field-0-buffer" || order[1] != "field-0-clusters" {
		t.Fatalf("materialisation order %v", order)
	}
	// Re-materialising is a no-op.
	if err := vdc.Materialize("field-0-clusters"); err != nil {
		t.Fatal(err)
	}
	if len(vdc.Invocations()) != 2 {
		t.Errorf("re-materialisation re-ran transformations: %d invocations", len(vdc.Invocations()))
	}
	chain, err := vdc.Provenance("field-0-clusters")
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 2 || chain[0].Output != "field-0-buffer" {
		t.Errorf("provenance chain %v", chain)
	}
	if vdc.Describe() == "" {
		t.Error("empty description")
	}
}

func TestVDCErrors(t *testing.T) {
	vdc := NewVDC()
	if err := vdc.AddTransformation(Transformation{}); err == nil {
		t.Error("empty transformation accepted")
	}
	if err := vdc.AddDerivation(Derivation{Output: "x", Transformation: "nope"}); err == nil {
		t.Error("derivation with unknown transformation accepted")
	}
	if err := vdc.Materialize("unknown"); err == nil {
		t.Error("materialising an underivable file succeeded")
	}
	// Cycle detection.
	ok := func(map[string]string, []string, string) error { return nil }
	vdc.AddTransformation(Transformation{Name: "t", Exec: ok})
	vdc.AddDerivation(Derivation{Output: "a", Transformation: "t", Inputs: []string{"b"}})
	vdc.AddDerivation(Derivation{Output: "b", Transformation: "t", Inputs: []string{"a"}})
	if err := vdc.Materialize("a"); err == nil {
		t.Error("derivation cycle not detected")
	}
	if _, err := vdc.Provenance("a"); err == nil {
		t.Error("provenance of unmaterialised file succeeded")
	}
	// Duplicate registrations.
	if err := vdc.AddTransformation(Transformation{Name: "t", Exec: ok}); err == nil {
		t.Error("duplicate transformation accepted")
	}
	if err := vdc.AddDerivation(Derivation{Output: "a", Transformation: "t"}); err == nil {
		t.Error("duplicate derivation accepted")
	}
}

package maxbcg

import (
	"reflect"
	"testing"

	"repro/internal/astro"
	"repro/internal/sqldb"
)

// runDBFinderWorkers is runDBFinder with an explicit sweep worker count.
func runDBFinderWorkers(t *testing.T, target astro.Box, workers int) *Result {
	t.Helper()
	cat := batchEquivCatalog(t)
	db := sqldb.Open(0)
	f, err := NewDBFinder(db, DefaultParams(), cat.Kcorr, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Workers = workers
	if _, err := f.ImportGalaxies(cat, cat.Region); err != nil {
		t.Fatal(err)
	}
	res, _, err := f.Run(target, true)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestParallelWorkersMatchSequential is the pipeline-level determinism
// guarantee of the parallel sweep: candidates, clusters, and members must
// be bit-identical whatever the worker count, because the per-zone hit
// buffers are merged back in zone order before any row is consumed.
func TestParallelWorkersMatchSequential(t *testing.T) {
	target := astro.MustBox(195.4, 196.0, 2.4, 2.8)
	seq := runDBFinderWorkers(t, target, 1)
	if len(seq.Candidates) == 0 || len(seq.Clusters) == 0 || len(seq.Members) == 0 {
		t.Fatalf("degenerate fixture: %s", seq.Summary())
	}
	for _, workers := range []int{0, 2, 4, 8} {
		par := runDBFinderWorkers(t, target, workers)
		if !reflect.DeepEqual(seq.Candidates, par.Candidates) {
			t.Errorf("workers=%d: candidates differ: sequential %d rows, parallel %d rows",
				workers, len(seq.Candidates), len(par.Candidates))
		}
		if !reflect.DeepEqual(seq.Clusters, par.Clusters) {
			t.Errorf("workers=%d: clusters differ: sequential %d rows, parallel %d rows",
				workers, len(seq.Clusters), len(par.Clusters))
		}
		if !reflect.DeepEqual(seq.Members, par.Members) {
			t.Errorf("workers=%d: members differ: sequential %d rows, parallel %d rows",
				workers, len(seq.Members), len(par.Members))
		}
	}
}

package maxbcg

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/astro"
	"repro/internal/colstore"
	"repro/internal/perfmodel"
	"repro/internal/sky"
	"repro/internal/sqldb"
	"repro/internal/zone"
)

// SearchMode selects the neighbour-search access path of a DBFinder.
type SearchMode int

const (
	// SearchBatch answers each task's probes with the batched zone join:
	// probe centres sort by (zone, ra) and merge against the clustered
	// index in one synchronized sweep per zone. The default.
	SearchBatch SearchMode = iota
	// SearchProbe is the original per-galaxy point-probe plan — one range
	// scan per probe per overlapping zone — kept as the ablation baseline.
	SearchProbe
)

// IngestMode selects the table-load path of a DBFinder.
type IngestMode int

const (
	// IngestBulk loads the Galaxy, Zone, and CandZone tables through
	// Table.BulkInsert — and stages each measured task's output rows
	// (Candidates, Clusters, Members) to land the same way. The default.
	IngestBulk IngestMode = iota
	// IngestTrickle is the original per-row Insert path — one
	// root-to-leaf descent per row — kept as the ablation baseline.
	IngestTrickle
)

// ZoneStore selects the physical zone-table representation the batched
// sweeps read.
type ZoneStore int

const (
	// StoreColumnar sweeps the column-major zone projection
	// (internal/colstore): per-zone segment pages of packed float arrays,
	// so the chord test is a pure float scan with no per-row decode.
	// The default. SpZone installs both representations — the row table
	// keeps serving SearchProbe and the fGetNearbyObjEqZd TVF.
	StoreColumnar ZoneStore = iota
	// StoreRow sweeps the row-major zone table through the clustered
	// B+tree — the ablation baseline the columnar store is measured
	// against (BenchmarkAblationColumnarSweep).
	StoreRow
)

// A RemoteSweeper answers a probe batch under zone.Sweep's exact
// contract (hits per probe in (zone asc, ra asc) order, fn never
// concurrent, clean prefix by zone on error) from somewhere other than
// a local zone table — fed.Coordinator scatters it across stripe
// workers. It is the single seam the federation needs in the pipeline:
// every batched search already funnels through one sweep call.
type RemoteSweeper interface {
	Sweep(ctx context.Context, probes []zone.Probe, fn func(int, zone.ZoneRow)) error
}

// DBFinder is the paper's SQL Server implementation: the catalog lives in
// sqldb tables, spZone builds the zone-clustered index, and the sp* tasks
// run against buffer-pool-backed storage so the harness can report the
// elapsed / CPU / I/O rows of Table 1 per task.
type DBFinder struct {
	Params     Params
	Kcorr      *sky.Kcorr
	ZoneHeight float64
	DB         *sqldb.DB
	Mode       SearchMode // access path for candidate and member searches
	Ingest     IngestMode // load path for the catalog and zone tables
	Store      ZoneStore  // zone representation the batched sweeps read
	// Workers sets the worker-pool size of the batched zone sweeps
	// (zone.Sweep): 0 = one worker per CPU, 1 = the
	// sequential sweep (the ablation baseline). Output is bit-identical
	// at every setting; only SearchBatch mode is affected.
	Workers int
	// Remote, when set, answers the batched zone sweeps instead of a
	// local zone table: SpZone becomes a no-op (the zone table lives
	// sharded across stripe workers — see internal/fed) and every
	// probe batch goes through Remote.Sweep. The sweeps' contract is
	// unchanged — same hits, same order — so the pipeline's output is
	// bit-identical to the local run. Requires SearchBatch mode: the
	// per-probe SearchProbe path needs a local zone table.
	Remote RemoteSweeper

	// sweepStats accumulates the CPU time of the parallel sweeps' worker
	// threads; Run folds the per-task delta into the cpu(s) column.
	sweepStats zone.SweepStats

	galaxyT  *sqldb.Table
	kcorrT   *sqldb.Table
	zoneT    *sqldb.Table
	candT    *sqldb.Table
	candZT   *sqldb.Table
	clusterT *sqldb.Table
	memberT  *sqldb.Table
}

// GalaxyColumns is the paper's Galaxy schema.
func GalaxyColumns() []sqldb.Column {
	return []sqldb.Column{
		{Name: "objid", Type: sqldb.TInt},
		{Name: "ra", Type: sqldb.TFloat},
		{Name: "dec", Type: sqldb.TFloat},
		{Name: "i", Type: sqldb.TFloat},
		{Name: "gr", Type: sqldb.TFloat},
		{Name: "ri", Type: sqldb.TFloat},
		{Name: "sigmagr", Type: sqldb.TFloat},
		{Name: "sigmari", Type: sqldb.TFloat},
	}
}

func candidateColumns() []sqldb.Column {
	return []sqldb.Column{
		{Name: "objid", Type: sqldb.TInt},
		{Name: "ra", Type: sqldb.TFloat},
		{Name: "dec", Type: sqldb.TFloat},
		{Name: "z", Type: sqldb.TFloat},
		{Name: "i", Type: sqldb.TFloat},
		{Name: "ngal", Type: sqldb.TInt},
		{Name: "chi2", Type: sqldb.TFloat},
	}
}

// NewDBFinder creates the schema (Galaxy, Kcorr, Candidates, Clusters,
// ClusterGalaxiesMetric) in db and loads the k-correction table, mirroring
// the paper's MyDB setup script.
func NewDBFinder(db *sqldb.DB, p Params, kcorr *sky.Kcorr, zoneHeightDeg float64) (*DBFinder, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if kcorr == nil {
		return nil, fmt.Errorf("maxbcg: nil k-correction table")
	}
	if zoneHeightDeg == 0 {
		zoneHeightDeg = astro.ZoneHeightDeg
	}
	f := &DBFinder{Params: p, Kcorr: kcorr, ZoneHeight: zoneHeightDeg, DB: db}

	var err error
	if f.galaxyT, err = db.CreateTable("Galaxy", GalaxyColumns(), "objid"); err != nil {
		return nil, err
	}
	kcols := []sqldb.Column{
		{Name: "zid", Type: sqldb.TInt, Identity: true},
		{Name: "z", Type: sqldb.TFloat},
		{Name: "i", Type: sqldb.TFloat},
		{Name: "ilim", Type: sqldb.TFloat},
		{Name: "ug", Type: sqldb.TFloat},
		{Name: "gr", Type: sqldb.TFloat},
		{Name: "ri", Type: sqldb.TFloat},
		{Name: "iz", Type: sqldb.TFloat},
		{Name: "radius", Type: sqldb.TFloat},
	}
	if f.kcorrT, err = db.CreateTable("Kcorr", kcols, "zid"); err != nil {
		return nil, err
	}
	krows := make([][]sqldb.Value, len(kcorr.Rows))
	for i, r := range kcorr.Rows {
		krows[i] = []sqldb.Value{
			sqldb.Int(int64(r.Zid)), sqldb.Float(r.Z), sqldb.Float(r.I), sqldb.Float(r.Ilim),
			sqldb.Float(r.Ug), sqldb.Float(r.Gr), sqldb.Float(r.Ri), sqldb.Float(r.Iz),
			sqldb.Float(r.Radius),
		}
	}
	if err := f.kcorrT.BulkInsert(krows); err != nil {
		return nil, err
	}
	if f.candT, err = db.CreateTable("Candidates", candidateColumns(), "objid"); err != nil {
		return nil, err
	}
	if f.clusterT, err = db.CreateTable("Clusters", candidateColumns(), "objid"); err != nil {
		return nil, err
	}
	mcols := []sqldb.Column{
		{Name: "clusterObjID", Type: sqldb.TInt},
		{Name: "galaxyObjID", Type: sqldb.TInt},
		{Name: "distance", Type: sqldb.TFloat},
	}
	if f.memberT, err = db.CreateTable("ClusterGalaxiesMetric", mcols, ""); err != nil {
		return nil, err
	}
	return f, nil
}

// ImportGalaxies loads the catalog's galaxies inside region into the Galaxy
// table (the paper's spImportGalaxy) and returns the row count. Under
// IngestBulk the extract bulk-loads in one sorted run instead of one tree
// descent per galaxy.
func (f *DBFinder) ImportGalaxies(cat *sky.Catalog, region astro.Box) (int64, error) {
	if err := f.galaxyT.Truncate(); err != nil {
		return 0, err
	}
	keep := make([]int32, 0, len(cat.Galaxies))
	for i := range cat.Galaxies {
		if region.Contains(cat.Galaxies[i].Ra, cat.Galaxies[i].Dec) {
			keep = append(keep, int32(i))
		}
	}
	// One scratch row streams the extract; BulkInsertFunc/Insert encode it
	// before the next call, so nothing retains the slice.
	scratch := make([]sqldb.Value, len(GalaxyColumns()))
	rowAt := func(i int) []sqldb.Value {
		g := &cat.Galaxies[keep[i]]
		scratch[0] = sqldb.Int(g.ObjID)
		scratch[1] = sqldb.Float(g.Ra)
		scratch[2] = sqldb.Float(g.Dec)
		scratch[3] = sqldb.Float(g.I)
		scratch[4] = sqldb.Float(g.Gr)
		scratch[5] = sqldb.Float(g.Ri)
		scratch[6] = sqldb.Float(g.SigmaGr)
		scratch[7] = sqldb.Float(g.SigmaRi)
		return scratch
	}
	if f.Ingest == IngestTrickle {
		for i := range keep {
			if err := f.galaxyT.Insert(rowAt(i)); err != nil {
				return int64(i), err
			}
		}
		return int64(len(keep)), nil
	}
	if err := f.galaxyT.BulkInsertFunc(len(keep), rowAt); err != nil {
		return 0, err
	}
	return int64(len(keep)), nil
}

// decodeGalaxy reads one Galaxy-schema row (see GalaxyColumns for the
// column order every scan site shares).
func decodeGalaxy(row []sqldb.Value) sky.Galaxy {
	var g sky.Galaxy
	g.ObjID, _ = row[0].AsInt()
	g.Ra, _ = row[1].AsFloat()
	g.Dec, _ = row[2].AsFloat()
	g.I, _ = row[3].AsFloat()
	g.Gr, _ = row[4].AsFloat()
	g.Ri, _ = row[5].AsFloat()
	g.SigmaGr, _ = row[6].AsFloat()
	g.SigmaRi, _ = row[7].AsFloat()
	return g
}

// readGalaxies scans the Galaxy table back into memory (counted I/O).
func (f *DBFinder) readGalaxies() ([]sky.Galaxy, error) {
	cur, err := f.galaxyT.Scan()
	if err != nil {
		return nil, err
	}
	defer cur.Close()
	var out []sky.Galaxy
	for cur.Next() {
		out = append(out, decodeGalaxy(cur.Row()))
	}
	return out, cur.Err()
}

// SpZone builds the zone table from the Galaxy table: assigns zone ids and
// clusters the storage on (zoneid, ra). This is the paper's spZone task.
// Under StoreColumnar (and bulk ingest) the same sorted run also
// materialises the column-major projection the batched sweeps read.
func (f *DBFinder) SpZone() error {
	if f.Remote != nil {
		// Federated runs own no zone table: the stripes built theirs at
		// boot (raw slice + buffer-zone exchange), which *is* spZone,
		// executed data-proximate. Nothing to do coordinator-side.
		return nil
	}
	gals, err := f.readGalaxies()
	if err != nil {
		return err
	}
	switch {
	case f.Ingest == IngestTrickle:
		// The trickle ablation measures the per-row insert path; it keeps
		// the row-only zone table (sweeps fall back to the row store).
		f.zoneT, err = zone.InstallZoneTableTrickle(f.DB, "Zone", gals, f.ZoneHeight)
	case f.Store == StoreColumnar:
		f.zoneT, err = zone.InstallZoneTableColumnar(f.DB, "Zone", gals, f.ZoneHeight)
	default:
		f.zoneT, err = zone.InstallZoneTable(f.DB, "Zone", gals, f.ZoneHeight)
	}
	if err != nil {
		return err
	}
	// The TVF's batch path shares the finder's worker pool, so SQL joins
	// against fGetNearbyObjEqZd plan into the same parallel sweep the Go
	// entry points use.
	zone.RegisterNearbyTVFWorkers(f.DB, f.zoneT, f.ZoneHeight, f.Workers)
	return nil
}

// sweepZone answers one probe batch against the zone table through the
// configured representation: the columnar projection when installed, the
// row B+tree otherwise. Both paths emit bit-identical call sequences;
// worker CPU accumulates into sweepStats for the task report.
func (f *DBFinder) sweepZone(probes []zone.Probe, fn func(int, zone.ZoneRow)) error {
	if f.Remote != nil {
		return f.Remote.Sweep(context.Background(), probes, fn)
	}
	src := zone.Rows(f.zoneT, f.ZoneHeight)
	if f.Store == StoreColumnar {
		if ct := f.zoneT.Columnar(); ct != nil {
			src = zone.Columnar(ct, f.ZoneHeight)
		}
	}
	return zone.Sweep(context.Background(), src, probes,
		zone.SweepOptions{Workers: f.Workers, Stats: &f.sweepStats}, fn)
}

type dbSearcher struct {
	t      *sqldb.Table
	height float64
}

// Search implements Searcher over the DB zone table.
func (s dbSearcher) Search(raDeg, decDeg, rDeg float64, visit func(Neighbor)) error {
	return zone.SearchTable(s.t, s.height, raDeg, decDeg, rDeg, func(zr zone.ZoneRow) {
		visit(Neighbor{
			ObjID: zr.ObjID, Ra: zr.Ra, Dec: zr.Dec,
			Distance: zr.Distance, I: zr.I, Gr: zr.Gr, Ri: zr.Ri,
		})
	})
}

// Searcher returns the zone-table-backed galaxy searcher. SpZone must have
// run first.
func (f *DBFinder) Searcher() (Searcher, error) {
	if f.zoneT == nil {
		if f.Remote != nil {
			return nil, fmt.Errorf("maxbcg: federated runs have no local zone table")
		}
		return nil, fmt.Errorf("maxbcg: SpZone has not been run")
	}
	return dbSearcher{t: f.zoneT, height: f.ZoneHeight}, nil
}

// MakeCandidates runs fBCGCandidate for every galaxy in area and fills the
// Candidates table (the paper's spMakeCandidates cursor). It also builds
// the zone-clustered candidate table used by fIsCluster — "we do in
// advance what will be required later". The Mode field picks the access
// path; both paths fill the table with bit-identical rows.
func (f *DBFinder) MakeCandidates(area astro.Box) (int64, error) {
	if f.zoneT == nil && f.Remote == nil {
		return 0, fmt.Errorf("maxbcg: SpZone must run before MakeCandidates")
	}
	if f.Remote != nil && f.Mode == SearchProbe {
		return 0, fmt.Errorf("maxbcg: SearchProbe mode needs a local zone table (Remote is set)")
	}
	if err := f.candT.Truncate(); err != nil {
		return 0, err
	}
	// One counted read of the k-correction table; SQL Server would keep
	// these 40 kB of pages cached exactly the same way.
	if _, err := f.readKcorr(); err != nil {
		return 0, err
	}
	var (
		rows [][]sqldb.Value
		err  error
	)
	if f.Mode == SearchProbe {
		rows, err = f.makeCandidatesProbe(area)
	} else {
		rows, err = f.makeCandidatesBatch(area)
	}
	if err != nil {
		return 0, err
	}
	// The candidate rows staged per batch land in one bulk load (per-row
	// Insert under the trickle ablation); either way the table contents
	// and rowid order match the historical insert-inside-the-loop path.
	if err := f.storeRows(f.candT, rows); err != nil {
		return 0, err
	}
	return int64(len(rows)), f.buildCandidateZones()
}

// storeRows lands one task's staged output rows: through the bulk-load
// path by default, through per-row Insert under the IngestTrickle
// ablation. Output tables used to trickle row-at-a-time *inside* the
// measured tasks; staging keeps the tree build out of the inner loop.
func (f *DBFinder) storeRows(t *sqldb.Table, rows [][]sqldb.Value) error {
	if len(rows) == 0 {
		return nil
	}
	if f.Ingest == IngestTrickle {
		for _, r := range rows {
			if err := t.Insert(r); err != nil {
				return err
			}
		}
		return nil
	}
	return t.BulkInsert(rows)
}

// makeCandidatesProbe is the original row-at-a-time plan: one full
// neighbour search per galaxy. Kept as the ablation baseline the batched
// zone join is measured against. It returns the staged candidate rows.
func (f *DBFinder) makeCandidatesProbe(area astro.Box) ([][]sqldb.Value, error) {
	s := dbSearcher{t: f.zoneT, height: f.ZoneHeight}
	cur, err := f.galaxyT.Scan()
	if err != nil {
		return nil, err
	}
	defer cur.Close()
	var rows [][]sqldb.Value
	for cur.Next() {
		g := decodeGalaxy(cur.Row())
		if !area.Contains(g.Ra, g.Dec) {
			continue
		}
		c, ok, err := BCGCandidate(f.Params, &g, f.Kcorr, s)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		rows = append(rows, candidateRow(c))
	}
	return rows, cur.Err()
}

// candidateBatchSize bounds how many probe galaxies buffer per sweep:
// large enough to amortize the per-zone descents across many probes, small
// enough to keep the buffered friends lists modest.
const candidateBatchSize = 512

// candProbe is one galaxy awaiting its batched neighbour search: the χ²
// survivors, the aggregated search windows, and the friends the sweep
// delivers.
type candProbe struct {
	g       sky.Galaxy
	rows    []chiRow
	w       windows
	friends []Neighbor
}

// makeCandidatesBatch is the batched zone join: galaxies that survive the
// χ² filter buffer into batches whose probe centres are answered together
// by one synchronized sweep per zone, then the per-redshift counting runs
// per galaxy in scan order, so the staged rows end up identical to the
// probe path's.
func (f *DBFinder) makeCandidatesBatch(area astro.Box) ([][]sqldb.Value, error) {
	cur, err := f.galaxyT.Scan()
	if err != nil {
		return nil, err
	}
	defer cur.Close()
	var (
		out    [][]sqldb.Value
		batch  []candProbe
		probes []zone.Probe
	)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		probes = probes[:0]
		for i := range batch {
			probes = append(probes, zone.Probe{Ra: batch[i].g.Ra, Dec: batch[i].g.Dec, R: batch[i].w.rad})
		}
		err := f.sweepZone(probes, func(pi int, zr zone.ZoneRow) {
			b := &batch[pi]
			nb := Neighbor{
				ObjID: zr.ObjID, Ra: zr.Ra, Dec: zr.Dec,
				Distance: zr.Distance, I: zr.I, Gr: zr.Gr, Ri: zr.Ri,
			}
			if acceptFriend(&b.g, &b.w, &nb) {
				b.friends = append(b.friends, nb)
			}
		})
		if err != nil {
			return err
		}
		for i := range batch {
			b := &batch[i]
			c, ok := finishCandidate(f.Params, &b.g, f.Kcorr, b.rows, b.friends)
			if !ok {
				continue
			}
			out = append(out, candidateRow(c))
		}
		batch = batch[:0]
		return nil
	}
	var scratch [64]chiRow
	for cur.Next() {
		g := decodeGalaxy(cur.Row())
		if !area.Contains(g.Ra, g.Dec) {
			continue
		}
		rows := chiSquareTable(f.Params, &g, f.Kcorr, scratch[:0])
		if len(rows) == 0 {
			continue
		}
		w := searchWindows(f.Params, &g, f.Kcorr, rows)
		batch = append(batch, candProbe{g: g, rows: append([]chiRow(nil), rows...), w: w})
		if len(batch) >= candidateBatchSize {
			if err := flush(); err != nil {
				return nil, err
			}
		}
	}
	if err := cur.Err(); err != nil {
		return nil, err
	}
	return out, flush()
}

// candidateRow encodes one candidate in the candidate-schema column order.
func candidateRow(c Candidate) []sqldb.Value {
	return []sqldb.Value{
		sqldb.Int(c.ObjID), sqldb.Float(c.Ra), sqldb.Float(c.Dec),
		sqldb.Float(c.Z), sqldb.Float(c.I), sqldb.Int(int64(c.NGal)), sqldb.Float(c.Chi2),
	}
}

// buildCandidateZones clusters the candidates by (zoneid, ra) so fIsCluster
// can range-scan them. Under IngestBulk the rows go straight into a
// natively clustered table in one bulk load; the trickle path keeps the
// original heap-then-CREATE-CLUSTERED-INDEX rebuild. Both orders ties by
// candT scan position, so the scans are identical.
func (f *DBFinder) buildCandidateZones() error {
	_ = f.DB.DropTable("CandZone", true)
	cols := []sqldb.Column{
		{Name: "zoneid", Type: sqldb.TInt},
		{Name: "ra", Type: sqldb.TFloat},
		{Name: "dec", Type: sqldb.TFloat},
		{Name: "objid", Type: sqldb.TInt},
		{Name: "z", Type: sqldb.TFloat},
		{Name: "i", Type: sqldb.TFloat},
		{Name: "ngal", Type: sqldb.TInt},
		{Name: "chi2", Type: sqldb.TFloat},
	}
	cur, err := f.candT.Scan()
	if err != nil {
		return err
	}
	defer cur.Close()
	var rows [][]sqldb.Value
	for cur.Next() {
		row := cur.Row()
		dec, _ := row[2].AsFloat()
		rows = append(rows, []sqldb.Value{
			sqldb.Int(int64(astro.ZoneID(dec, f.ZoneHeight))),
			row[1], row[2], row[0], row[3], row[4], row[5], row[6],
		})
	}
	if err := cur.Err(); err != nil {
		return err
	}
	if f.Ingest == IngestTrickle {
		t, err := f.DB.CreateTable("CandZone", cols, "")
		if err != nil {
			return err
		}
		for _, r := range rows {
			if err := t.Insert(r); err != nil {
				return err
			}
		}
		if err := t.Recluster([]string{"zoneid", "ra"}); err != nil {
			return err
		}
		f.candZT = t
		return nil
	}
	t, err := f.DB.CreateTableClustered("CandZone", cols, []string{"zoneid", "ra"})
	if err != nil {
		return err
	}
	if err := t.BulkInsert(rows); err != nil {
		return err
	}
	if f.Store == StoreColumnar {
		// The candidate table gets its column-major projection through the
		// SQL DDL path — the same statement a CasJobs user would run — so
		// fIsCluster's candidate searches scan packed float arrays instead
		// of decoding rows per probe. StoreRow keeps the row-only table as
		// the ablation baseline.
		if _, err := f.DB.Exec("CREATE COLUMNAR PROJECTION ON CandZone"); err != nil {
			return err
		}
	}
	f.candZT = t
	return nil
}

// readKcorr scans the Kcorr table (I/O accounting for the cross join).
func (f *DBFinder) readKcorr() (int, error) {
	cur, err := f.kcorrT.Scan()
	if err != nil {
		return 0, err
	}
	defer cur.Close()
	n := 0
	for cur.Next() {
		n++
	}
	return n, cur.Err()
}

// CandZone schema indices shared by the row and columnar candidate scans.
const (
	candZoneID = iota
	candRa
	candDec
	candObjID
	candZ
	candI
	candNGal
	candChi2
)

// dbCandSearcher answers fIsCluster's candidate searches over the
// (zoneid, ra)-clustered CandZone table. When the table carries its
// column-major projection (CREATE COLUMNAR PROJECTION ON CandZone, the
// bulk-ingest default), each window scans packed float arrays with
// directory-driven page skipping — no per-probe row decode; otherwise it
// range-scans the clustered B+tree. Both paths visit identical candidates
// in identical order.
type dbCandSearcher struct {
	t      *sqldb.Table
	height float64
	ct     *colstore.Table
	scan   *colstore.Scanner
}

// newCandSearcher builds the searcher, binding the columnar projection if
// one is attached.
func newCandSearcher(t *sqldb.Table, height float64) *dbCandSearcher {
	s := &dbCandSearcher{t: t, height: height}
	if ct := t.Columnar(); ct != nil {
		s.ct = ct
		s.scan = ct.NewScanner()
	}
	return s
}

// SearchCandidates implements CandidateSearcher via zone window scans over
// the clustered candidate table.
func (s *dbCandSearcher) SearchCandidates(raDeg, decDeg, rDeg float64, visit func(Candidate)) error {
	if rDeg < 0 {
		return nil
	}
	center := astro.UnitVector(raDeg, decDeg)
	r2 := astro.Chord2FromAngle(rDeg)
	minZ, maxZ := astro.ZoneRange(decDeg, rDeg, s.height)
	for z := minZ; z <= maxZ; z++ {
		x := astro.RaHalfWidth(decDeg, rDeg, z, s.height)
		segs, ns := astro.RaWindows(raDeg, x)
		for si := 0; si < ns; si++ {
			var err error
			if s.ct != nil {
				err = s.searchColumnar(z, segs[si][0], segs[si][1], center, r2, visit)
			} else {
				err = s.searchRows(z, segs[si][0], segs[si][1], center, r2, visit)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// searchRows is the row-store window scan: one clustered range scan, one
// row decode per candidate in the window.
func (s *dbCandSearcher) searchRows(z int, lo, hi float64, center astro.Vec3, r2 float64, visit func(Candidate)) error {
	cur, err := s.t.RangeScanPrefix(
		[]sqldb.Value{sqldb.Int(int64(z)), sqldb.Float(lo)},
		[]sqldb.Value{sqldb.Int(int64(z)), sqldb.Float(hi)},
	)
	if err != nil {
		return err
	}
	for cur.Next() {
		row := cur.Row()
		ra, _ := row[candRa].AsFloat()
		dec, _ := row[candDec].AsFloat()
		if center.Chord2(astro.UnitVector(ra, dec)) >= r2 {
			continue
		}
		var c Candidate
		c.Ra, c.Dec = ra, dec
		c.ObjID, _ = row[candObjID].AsInt()
		c.Z, _ = row[candZ].AsFloat()
		c.I, _ = row[candI].AsFloat()
		ngal, _ := row[candNGal].AsInt()
		c.NGal = int(ngal)
		c.Chi2, _ = row[candChi2].AsFloat()
		visit(c)
	}
	err = cur.Err()
	cur.Close()
	return err
}

// searchColumnar is the no-decode window scan: the zone's segment run is
// pruned through the directory's min/max-ra bounds, the in-window rows are
// found by binary search on the packed ra array, and only hits touch the
// tail columns (which decode lazily per segment).
func (s *dbCandSearcher) searchColumnar(z int, lo, hi float64, center astro.Vec3, r2 float64, visit func(Candidate)) error {
	for _, m := range s.ct.GroupSegments(int64(z)) {
		if m.MaxSort < lo {
			continue
		}
		if m.MinSort > hi {
			break
		}
		if err := s.scan.Load(m); err != nil {
			return err
		}
		ra := s.scan.Floats(candRa)
		for r := sort.SearchFloat64s(ra, lo); r < len(ra) && ra[r] <= hi; r++ {
			dec := s.scan.Floats(candDec)[r]
			if center.Chord2(astro.UnitVector(ra[r], dec)) >= r2 {
				continue
			}
			var c Candidate
			c.Ra, c.Dec = ra[r], dec
			c.ObjID = s.scan.Ints(candObjID)[r]
			c.Z = s.scan.Floats(candZ)[r]
			c.I = s.scan.Floats(candI)[r]
			c.NGal = int(s.scan.Ints(candNGal)[r])
			c.Chi2 = s.scan.Floats(candChi2)[r]
			visit(c)
		}
	}
	return nil
}

// MakeClusters screens the Candidates table with fIsCluster and fills the
// Clusters table with the candidates inside target that are the most likely
// centre of their neighbourhood (the paper's spMakeClusters).
func (f *DBFinder) MakeClusters(target astro.Box) (int64, error) {
	if f.candZT == nil {
		return 0, fmt.Errorf("maxbcg: MakeCandidates must run before MakeClusters")
	}
	if err := f.clusterT.Truncate(); err != nil {
		return 0, err
	}
	cs := newCandSearcher(f.candZT, f.ZoneHeight)
	cur, err := f.candT.Scan()
	if err != nil {
		return 0, err
	}
	defer cur.Close()
	var rows [][]sqldb.Value
	for cur.Next() {
		row := cur.Row()
		var c Candidate
		c.ObjID, _ = row[0].AsInt()
		c.Ra, _ = row[1].AsFloat()
		c.Dec, _ = row[2].AsFloat()
		if !target.Contains(c.Ra, c.Dec) {
			continue
		}
		c.Z, _ = row[3].AsFloat()
		c.I, _ = row[4].AsFloat()
		ngal, _ := row[5].AsInt()
		c.NGal = int(ngal)
		c.Chi2, _ = row[6].AsFloat()
		isC, err := IsCluster(f.Params, c, f.Kcorr, cs)
		if err != nil {
			return 0, err
		}
		if !isC {
			continue
		}
		rows = append(rows, candidateRow(c))
	}
	if err := cur.Err(); err != nil {
		return 0, err
	}
	if err := f.storeRows(f.clusterT, rows); err != nil {
		return 0, err
	}
	return int64(len(rows)), nil
}

// MakeMembers fills ClusterGalaxiesMetric for every cluster (the paper's
// spMakeGalaxiesMetric). Under SearchBatch every cluster's membership
// window joins against the zone table in one sweep; the emitted rows match
// the per-cluster path exactly.
func (f *DBFinder) MakeMembers() (int64, error) {
	if err := f.memberT.Truncate(); err != nil {
		return 0, err
	}
	clusters, err := f.readCandidates(f.clusterT)
	if err != nil {
		return 0, err
	}
	var lists [][]Member
	if f.Mode == SearchProbe {
		if f.Remote != nil {
			return 0, fmt.Errorf("maxbcg: SearchProbe mode needs a local zone table (Remote is set)")
		}
		s := dbSearcher{t: f.zoneT, height: f.ZoneHeight}
		lists = make([][]Member, len(clusters))
		for i, c := range clusters {
			if lists[i], err = ClusterMembers(f.Params, c, f.Kcorr, s); err != nil {
				return 0, err
			}
		}
	} else {
		if lists, err = f.clusterMembersBatch(clusters); err != nil {
			return 0, err
		}
	}
	var rows [][]sqldb.Value
	for _, members := range lists {
		for _, m := range members {
			rows = append(rows, []sqldb.Value{
				sqldb.Int(m.ClusterObjID), sqldb.Int(m.GalaxyObjID), sqldb.Float(m.Distance),
			})
		}
	}
	if err := f.storeRows(f.memberT, rows); err != nil {
		return 0, err
	}
	return int64(len(rows)), nil
}

// clusterMembersBatch answers every cluster's membership search with one
// batched zone join, applying ClusterMembers' exact filters per cluster.
func (f *DBFinder) clusterMembersBatch(clusters []Candidate) ([][]Member, error) {
	probes := make([]zone.Probe, len(clusters))
	rads := make([]float64, len(clusters))
	krows := make([]sky.KcorrRow, len(clusters))
	lists := make([][]Member, len(clusters))
	for i, c := range clusters {
		k, ok := f.Kcorr.LookupExact(c.Z)
		if !ok {
			return nil, fmt.Errorf("maxbcg: cluster %d has untabulated redshift %g", c.ObjID, c.Z)
		}
		rads[i] = k.Radius * sky.R200Mpc(float64(c.NGal))
		krows[i] = k
		probes[i] = zone.Probe{Ra: c.Ra, Dec: c.Dec, R: rads[i]}
		lists[i] = []Member{{ClusterObjID: c.ObjID, GalaxyObjID: c.ObjID, Distance: 0}}
	}
	p := f.Params
	err := f.sweepZone(probes, func(pi int, zr zone.ZoneRow) {
		c := &clusters[pi]
		k := &krows[pi]
		if zr.ObjID == c.ObjID || zr.Distance >= rads[pi] {
			return
		}
		if zr.I < c.I-0.001 || zr.I > k.Ilim {
			return
		}
		if zr.Gr < k.Gr-p.GrPopSigma || zr.Gr > k.Gr+p.GrPopSigma {
			return
		}
		if zr.Ri < k.Ri-p.RiPopSigma || zr.Ri > k.Ri+p.RiPopSigma {
			return
		}
		lists[pi] = append(lists[pi], Member{ClusterObjID: c.ObjID, GalaxyObjID: zr.ObjID, Distance: zr.Distance})
	})
	if err != nil {
		return nil, err
	}
	return lists, nil
}

// TaskReport is the per-task measurement block of one DBFinder run: the
// rows of the paper's Table 1 for one server.
type TaskReport struct {
	Tasks    []perfmodel.TaskStats // spZone, fBCGCandidate, fIsCluster (+ members)
	Galaxies int64                 // galaxies on this partition
}

// Total sums the task rows.
func (r TaskReport) Total() perfmodel.TaskStats {
	t := perfmodel.TaskStats{Name: "total"}
	for _, s := range r.Tasks {
		t.Elapsed += s.Elapsed
		t.CPU += s.CPU
		t.IO += s.IO
	}
	return t
}

// Run executes the full pipeline for target T against the already-imported
// Galaxy table, measuring each task. includeMembers adds the member
// retrieval step (not part of the paper's Table 1, reported separately).
// The CPU column sums the calling OS thread's clock with the sweep worker
// threads' clocks (zone.SweepStats), so it is a true total under
// Workers > 1 — like SQL Server's per-statement CPU, where parallel plan
// branches all bill the statement and cpu(s) > elapse(s) signals
// parallelism.
func (f *DBFinder) Run(target astro.Box, includeMembers bool) (*Result, TaskReport, error) {
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	report := TaskReport{Galaxies: f.galaxyT.NumRows()}
	pool := f.DB.Pool()

	measure := func(name string, fn func() error) error {
		ioBefore := pool.Stats()
		start := time.Now()
		cpuStart := perfmodel.ThreadCPU()
		workerStart := f.sweepStats.WorkerCPU()
		err := fn()
		report.Tasks = append(report.Tasks, perfmodel.TaskStats{
			Name:    name,
			Elapsed: time.Since(start),
			CPU:     perfmodel.ThreadCPU() - cpuStart + f.sweepStats.WorkerCPU() - workerStart,
			IO:      pool.Stats().Sub(ioBefore).Total(),
		})
		return err
	}

	area := target.Expand(f.Params.BufferDeg)
	if err := measure("spZone", f.SpZone); err != nil {
		return nil, report, err
	}
	if err := measure("fBCGCandidate", func() error {
		_, err := f.MakeCandidates(area)
		return err
	}); err != nil {
		return nil, report, err
	}
	if err := measure("fIsCluster", func() error {
		_, err := f.MakeClusters(target)
		return err
	}); err != nil {
		return nil, report, err
	}
	if includeMembers {
		if err := measure("fGetClusterGalaxiesMetric", func() error {
			_, err := f.MakeMembers()
			return err
		}); err != nil {
			return nil, report, err
		}
	}
	res, err := f.Result()
	return res, report, err
}

// readCandidates scans a candidate-schema table back into memory in
// clustered (objid) order.
func (f *DBFinder) readCandidates(t *sqldb.Table) ([]Candidate, error) {
	cur, err := t.Scan()
	if err != nil {
		return nil, err
	}
	defer cur.Close()
	var out []Candidate
	for cur.Next() {
		row := cur.Row()
		var c Candidate
		c.ObjID, _ = row[0].AsInt()
		c.Ra, _ = row[1].AsFloat()
		c.Dec, _ = row[2].AsFloat()
		c.Z, _ = row[3].AsFloat()
		c.I, _ = row[4].AsFloat()
		ngal, _ := row[5].AsInt()
		c.NGal = int(ngal)
		c.Chi2, _ = row[6].AsFloat()
		out = append(out, c)
	}
	return out, cur.Err()
}

// Result reads the output tables back into a Result ordered by ObjID.
func (f *DBFinder) Result() (*Result, error) {
	res := &Result{}
	var err error
	if res.Candidates, err = f.readCandidates(f.candT); err != nil {
		return nil, err
	}
	if res.Clusters, err = f.readCandidates(f.clusterT); err != nil {
		return nil, err
	}
	cur, err := f.memberT.Scan()
	if err != nil {
		return nil, err
	}
	defer cur.Close()
	for cur.Next() {
		row := cur.Row()
		var m Member
		m.ClusterObjID, _ = row[0].AsInt()
		m.GalaxyObjID, _ = row[1].AsInt()
		m.Distance, _ = row[2].AsFloat()
		res.Members = append(res.Members, m)
	}
	if err := cur.Err(); err != nil {
		return nil, err
	}
	sortCandidates(res.Candidates)
	sortCandidates(res.Clusters)
	sort.Slice(res.Members, func(a, b int) bool {
		if res.Members[a].ClusterObjID != res.Members[b].ClusterObjID {
			return res.Members[a].ClusterObjID < res.Members[b].ClusterObjID
		}
		return res.Members[a].GalaxyObjID < res.Members[b].GalaxyObjID
	})
	return res, nil
}

func sortCandidates(cs []Candidate) {
	sort.Slice(cs, func(a, b int) bool { return cs[a].ObjID < cs[b].ObjID })
}

package maxbcg

import (
	"reflect"
	"testing"

	"repro/internal/astro"
	"repro/internal/sky"
	"repro/internal/sqldb"
)

// batchEquivCatalog is a small but fully populated survey patch shared by
// the equivalence tests.
func batchEquivCatalog(t *testing.T) *sky.Catalog {
	t.Helper()
	cat, err := sky.Generate(sky.GenConfig{
		Region: astro.MustBox(195.0, 196.4, 2.0, 3.2),
		Seed:   7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func runDBFinder(t *testing.T, cat *sky.Catalog, target astro.Box, mode SearchMode) *Result {
	t.Helper()
	db := sqldb.Open(0)
	f, err := NewDBFinder(db, DefaultParams(), cat.Kcorr, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Mode = mode
	if _, err := f.ImportGalaxies(cat, cat.Region); err != nil {
		t.Fatal(err)
	}
	res, _, err := f.Run(target, true)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestBatchModeMatchesProbeMode is the tentpole's equivalence guarantee:
// the batched zone join must produce bit-identical candidates, clusters,
// and members to the per-probe plan it replaces.
func TestBatchModeMatchesProbeMode(t *testing.T) {
	cat := batchEquivCatalog(t)
	target := astro.MustBox(195.4, 196.0, 2.4, 2.8)

	probe := runDBFinder(t, cat, target, SearchProbe)
	batch := runDBFinder(t, cat, target, SearchBatch)

	if len(probe.Candidates) == 0 || len(probe.Clusters) == 0 || len(probe.Members) == 0 {
		t.Fatalf("degenerate fixture: %s", probe.Summary())
	}
	if !reflect.DeepEqual(probe.Candidates, batch.Candidates) {
		t.Errorf("candidates differ: probe %d rows, batch %d rows",
			len(probe.Candidates), len(batch.Candidates))
	}
	if !reflect.DeepEqual(probe.Clusters, batch.Clusters) {
		t.Errorf("clusters differ: probe %d rows, batch %d rows",
			len(probe.Clusters), len(batch.Clusters))
	}
	if !reflect.DeepEqual(probe.Members, batch.Members) {
		t.Errorf("members differ: probe %d rows, batch %d rows",
			len(probe.Members), len(batch.Members))
	}
}

// TestBatchModeSpansBatchBoundaries forces multiple flushes of the
// candidate batch buffer (the survey patch holds far more than one batch
// of χ² survivors) — covered by the test above only if the area exceeds
// candidateBatchSize probes, which this asserts so a future batch-size
// bump does not silently weaken the equivalence test.
func TestBatchModeSpansBatchBoundaries(t *testing.T) {
	cat := batchEquivCatalog(t)
	p := DefaultParams()
	var scratch [64]chiRow
	survivors := 0
	for i := range cat.Galaxies {
		if len(chiSquareTable(p, &cat.Galaxies[i], cat.Kcorr, scratch[:0])) > 0 {
			survivors++
		}
	}
	if survivors <= candidateBatchSize {
		t.Fatalf("fixture has %d χ² survivors, need > %d to exercise batch flushing",
			survivors, candidateBatchSize)
	}
}

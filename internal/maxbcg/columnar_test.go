package maxbcg

import (
	"reflect"
	"testing"

	"repro/internal/astro"
	"repro/internal/sqldb"
)

// runDBFinderStore runs the full pipeline with an explicit zone-store
// representation and sweep worker count.
func runDBFinderStore(t *testing.T, target astro.Box, store ZoneStore, workers int) *Result {
	t.Helper()
	cat := batchEquivCatalog(t)
	db := sqldb.Open(0)
	f, err := NewDBFinder(db, DefaultParams(), cat.Kcorr, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Store = store
	f.Workers = workers
	if _, err := f.ImportGalaxies(cat, cat.Region); err != nil {
		t.Fatal(err)
	}
	res, _, err := f.Run(target, true)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestColumnarStoreMatchesRowStore is the pipeline-level acceptance test
// of the columnar zone store: candidates, clusters, and members must be
// bit-identical whether the sweeps read the column-major projection or the
// row B+tree, sequentially or on a worker pool.
func TestColumnarStoreMatchesRowStore(t *testing.T) {
	target := astro.MustBox(195.4, 196.0, 2.4, 2.8)
	row := runDBFinderStore(t, target, StoreRow, 1)
	if len(row.Candidates) == 0 || len(row.Clusters) == 0 || len(row.Members) == 0 {
		t.Fatalf("degenerate fixture: %s", row.Summary())
	}
	for _, workers := range []int{1, 4} {
		col := runDBFinderStore(t, target, StoreColumnar, workers)
		if !reflect.DeepEqual(row.Candidates, col.Candidates) {
			t.Errorf("workers=%d: candidates differ: row %d rows, columnar %d rows",
				workers, len(row.Candidates), len(col.Candidates))
		}
		if !reflect.DeepEqual(row.Clusters, col.Clusters) {
			t.Errorf("workers=%d: clusters differ: row %d rows, columnar %d rows",
				workers, len(row.Clusters), len(col.Clusters))
		}
		if !reflect.DeepEqual(row.Members, col.Members) {
			t.Errorf("workers=%d: members differ: row %d rows, columnar %d rows",
				workers, len(row.Members), len(col.Members))
		}
	}
}

// TestCandZoneProjectionAttached pins that the bulk StoreColumnar pipeline
// really gives CandZone its column-major projection through the SQL DDL
// path (so TestColumnarStoreMatchesRowStore compares the no-decode
// candidate search against the row scan, not row against row), and that
// the StoreRow ablation keeps the row-only table.
func TestCandZoneProjectionAttached(t *testing.T) {
	cat := batchEquivCatalog(t)
	target := astro.MustBox(195.4, 196.0, 2.4, 2.8)
	for _, tc := range []struct {
		store ZoneStore
		want  bool
	}{{StoreColumnar, true}, {StoreRow, false}} {
		db := sqldb.Open(0)
		f, err := NewDBFinder(db, DefaultParams(), cat.Kcorr, 0)
		if err != nil {
			t.Fatal(err)
		}
		f.Store = tc.store
		if _, err := f.ImportGalaxies(cat, cat.Region); err != nil {
			t.Fatal(err)
		}
		if err := f.SpZone(); err != nil {
			t.Fatal(err)
		}
		if _, err := f.MakeCandidates(target.Expand(f.Params.BufferDeg)); err != nil {
			t.Fatal(err)
		}
		if got := f.candZT.Columnar() != nil; got != tc.want {
			t.Errorf("store=%v: CandZone projection attached = %v, want %v", tc.store, got, tc.want)
		}
	}
}

// TestWorkerCPUAttributed pins the worker CPU attribution satellite: a
// multi-worker run must report task CPU that includes the sweep workers'
// thread time, so the sweep-dominated fBCGCandidate task cannot report
// (near-)zero CPU while its workers burn a multiple of elapsed.
func TestWorkerCPUAttributed(t *testing.T) {
	cat := batchEquivCatalog(t)
	db := sqldb.Open(0)
	f, err := NewDBFinder(db, DefaultParams(), cat.Kcorr, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Workers = 4
	if _, err := f.ImportGalaxies(cat, cat.Region); err != nil {
		t.Fatal(err)
	}
	_, report, err := f.Run(astro.MustBox(195.4, 196.0, 2.4, 2.8), false)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range report.Tasks {
		if task.Name == "fBCGCandidate" && task.CPU <= 0 {
			t.Errorf("task %s reports %v CPU with Workers=4", task.Name, task.CPU)
		}
	}
}

package maxbcg

import (
	"math"
	"testing"

	"repro/internal/astro"
	"repro/internal/sky"
	"repro/internal/sqldb"
)

// testCatalog generates a deterministic 2.5 x 2.5 deg catalog (the paper's
// MySkyServerDr1 coverage) centred on (195.163, 2.5).
func testCatalog(t testing.TB, seed int64) *sky.Catalog {
	t.Helper()
	cat, err := sky.Generate(sky.GenConfig{
		Region: astro.MustBox(193.9, 196.4, 1.25, 3.75),
		Seed:   seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

// testTarget is a 0.5 deg-buffered box inside the testCatalog region, the
// shape of the paper's "EXEC spMakeCandidates 194, 196, 1.5, 3.5".
func testTarget() astro.Box { return astro.MustBox(194.9, 195.4, 2.25, 2.75) }

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
	bad := []Params{
		{},
		{GrPopSigma: -1, RiPopSigma: 0.06, IPopSigma: 0.57, Chi2Cutoff: 7, ZWindow: 0.05},
		{GrPopSigma: 0.05, RiPopSigma: 0.06, IPopSigma: 0.57, Chi2Cutoff: 0, ZWindow: 0.05},
		{GrPopSigma: 0.05, RiPopSigma: 0.06, IPopSigma: 0.57, Chi2Cutoff: 7, BufferDeg: 9, ZWindow: 0.05},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestChiSquareFilterOnAndOffRidge(t *testing.T) {
	p := DefaultParams()
	kcorr := sky.MustNewKcorr(1000, 0.5)
	k := kcorr.Lookup(0.15)

	onRidge := &sky.Galaxy{ObjID: 1, I: k.I, Gr: k.Gr, Ri: k.Ri}
	onRidge.SigmaGr = sky.SigmaGrFor(onRidge.I)
	onRidge.SigmaRi = sky.SigmaRiFor(onRidge.I)
	rows := chiSquareTable(p, onRidge, kcorr, nil)
	if len(rows) == 0 {
		t.Fatal("galaxy exactly on the ridge fails the filter")
	}
	best := math.Inf(1)
	bestZid := 0
	for _, r := range rows {
		if r.chisq < best {
			best, bestZid = r.chisq, r.zid
		}
	}
	if zBest := kcorr.Rows[bestZid-1].Z; math.Abs(zBest-0.15) > 0.01 {
		t.Errorf("best-fit redshift %g, want ~0.15", zBest)
	}

	offRidge := &sky.Galaxy{ObjID: 2, I: k.I, Gr: k.Gr + 2.0, Ri: k.Ri - 1.5}
	offRidge.SigmaGr = sky.SigmaGrFor(offRidge.I)
	offRidge.SigmaRi = sky.SigmaRiFor(offRidge.I)
	if rows := chiSquareTable(p, offRidge, kcorr, nil); len(rows) != 0 {
		t.Errorf("galaxy far off the ridge passes the filter at %d redshifts", len(rows))
	}
}

func TestCandidateFractionCalibration(t *testing.T) {
	// Paper: "About 3% of the galaxies are candidates to be a BCG."
	cat := testCatalog(t, 1)
	f, err := NewFinder(cat, DefaultParams(), 0)
	if err != nil {
		t.Fatal(err)
	}
	area := astro.MustBox(194.4, 195.9, 1.75, 3.25)
	cands, err := f.FindCandidates(area)
	if err != nil {
		t.Fatal(err)
	}
	inArea := 0
	for i := range cat.Galaxies {
		if area.Contains(cat.Galaxies[i].Ra, cat.Galaxies[i].Dec) {
			inArea++
		}
	}
	frac := float64(len(cands)) / float64(inArea)
	t.Logf("candidate fraction: %d / %d = %.2f%%", len(cands), inArea, frac*100)
	if frac < 0.005 || frac > 0.10 {
		t.Errorf("candidate fraction %.3f%% outside the plausible range around the paper's ~3%%", frac*100)
	}
}

func TestFinderRecoversInjectedClusters(t *testing.T) {
	cat := testCatalog(t, 2)
	f, err := NewFinder(cat, DefaultParams(), 0)
	if err != nil {
		t.Fatal(err)
	}
	target := testTarget()
	res, err := f.Run(target)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) == 0 {
		t.Fatal("no clusters found in a field with injected clusters")
	}
	// Recall: every injected cluster in the target (rich enough to be
	// unambiguous) should have a found cluster within its radius and
	// redshift window.
	totalRich, recovered := 0, 0
	for _, tc := range cat.Truth {
		if !target.Contains(tc.Ra, tc.Dec) || tc.NGal < 8 {
			continue
		}
		totalRich++
		for _, c := range res.Clusters {
			if astro.Distance(tc.Ra, tc.Dec, c.Ra, c.Dec) < 0.1 && math.Abs(c.Z-tc.Z) < 0.06 {
				recovered++
				break
			}
		}
	}
	if totalRich == 0 {
		t.Skip("no rich injected clusters in the target")
	}
	recall := float64(recovered) / float64(totalRich)
	t.Logf("recall: %d / %d rich injected clusters", recovered, totalRich)
	if recall < 0.6 {
		t.Errorf("recall %.0f%% too low: the finder misses injected clusters", recall*100)
	}
	// Clusters are inside the target; candidates cover the buffered area.
	for _, c := range res.Clusters {
		if !target.Contains(c.Ra, c.Dec) {
			t.Errorf("cluster %d outside the target box", c.ObjID)
		}
	}
}

func TestClusterDensityMatchesPaper(t *testing.T) {
	// Paper: ~4.5 clusters per 0.25 deg² field (0.13% of galaxies are
	// BCGs). Our synthetic sky injects 4.5/field, so the found density
	// should be in that neighbourhood (projection effects allow slack).
	cat := testCatalog(t, 3)
	f, err := NewFinder(cat, DefaultParams(), 0)
	if err != nil {
		t.Fatal(err)
	}
	target := astro.MustBox(194.6, 195.7, 1.95, 3.05)
	res, err := f.Run(target)
	if err != nil {
		t.Fatal(err)
	}
	perField := float64(len(res.Clusters)) / target.FlatArea() * 0.25
	t.Logf("clusters per 0.25 deg² field: %.2f", perField)
	if perField < 1.5 || perField > 12 {
		t.Errorf("cluster density %.2f per field implausible vs the paper's ~4.5", perField)
	}
}

func TestMembersWithinRadius(t *testing.T) {
	cat := testCatalog(t, 5)
	f, err := NewFinder(cat, DefaultParams(), 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(testTarget())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Members) == 0 {
		t.Fatal("no member rows")
	}
	byID := make(map[int64]Candidate)
	for _, c := range res.Clusters {
		byID[c.ObjID] = c
	}
	counts := make(map[int64]int)
	for _, m := range res.Members {
		c, ok := byID[m.ClusterObjID]
		if !ok {
			t.Fatalf("member row references unknown cluster %d", m.ClusterObjID)
		}
		k := cat.Kcorr.Lookup(c.Z)
		maxR := k.Radius * sky.R200Mpc(float64(c.NGal))
		if m.Distance >= maxR+1e-9 {
			t.Errorf("member %d of cluster %d at %g deg exceeds r200 radius %g",
				m.GalaxyObjID, m.ClusterObjID, m.Distance, maxR)
		}
		counts[m.ClusterObjID]++
		if m.GalaxyObjID == m.ClusterObjID && m.Distance != 0 {
			t.Error("central galaxy must be at distance zero")
		}
	}
	for id := range byID {
		if counts[id] == 0 {
			t.Errorf("cluster %d has no member rows (centre row missing)", id)
		}
	}
}

func TestBCGBeatsItsMembers(t *testing.T) {
	// Within one injected cluster, the BCG should out-rank member
	// candidates in fIsCluster terms: exactly one cluster centre within
	// the cluster radius.
	cat := testCatalog(t, 7)
	f, err := NewFinder(cat, DefaultParams(), 0)
	if err != nil {
		t.Fatal(err)
	}
	target := testTarget()
	res, err := f.Run(target)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cat.Truth {
		if !target.Contains(tc.Ra, tc.Dec) || tc.NGal < 10 {
			continue
		}
		n := 0
		for _, c := range res.Clusters {
			if astro.Distance(tc.Ra, tc.Dec, c.Ra, c.Dec) < tc.RadiusDeg*0.9 && math.Abs(c.Z-tc.Z) < 0.05 {
				n++
			}
		}
		if n > 2 {
			t.Errorf("injected cluster at (%g, %g) fragmented into %d centres", tc.Ra, tc.Dec, n)
		}
	}
}

func TestDBFinderMatchesInMemoryFinder(t *testing.T) {
	// The paper's §2.4 invariant, applied across implementations: the
	// DB-backed run must produce byte-identical candidate, cluster, and
	// member sets to the in-memory run.
	cat := testCatalog(t, 11)
	target := testTarget()

	mem, err := NewFinder(cat, DefaultParams(), 0)
	if err != nil {
		t.Fatal(err)
	}
	memRes, err := mem.Run(target)
	if err != nil {
		t.Fatal(err)
	}

	db := sqldb.Open(4096)
	dbf, err := NewDBFinder(db, DefaultParams(), cat.Kcorr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dbf.ImportGalaxies(cat, cat.Region); err != nil {
		t.Fatal(err)
	}
	dbRes, report, err := dbf.Run(target, true)
	if err != nil {
		t.Fatal(err)
	}

	if len(dbRes.Candidates) != len(memRes.Candidates) {
		t.Fatalf("candidates differ: db %d vs mem %d", len(dbRes.Candidates), len(memRes.Candidates))
	}
	for i := range dbRes.Candidates {
		a, b := dbRes.Candidates[i], memRes.Candidates[i]
		if a.ObjID != b.ObjID || a.NGal != b.NGal || math.Abs(a.Chi2-b.Chi2) > 1e-9 || a.Z != b.Z {
			t.Fatalf("candidate %d differs: %+v vs %+v", i, a, b)
		}
	}
	if len(dbRes.Clusters) != len(memRes.Clusters) {
		t.Fatalf("clusters differ: db %d vs mem %d", len(dbRes.Clusters), len(memRes.Clusters))
	}
	for i := range dbRes.Clusters {
		if dbRes.Clusters[i].ObjID != memRes.Clusters[i].ObjID {
			t.Fatalf("cluster %d differs", i)
		}
	}
	if len(dbRes.Members) != len(memRes.Members) {
		t.Fatalf("members differ: db %d vs mem %d", len(dbRes.Members), len(memRes.Members))
	}
	for i := range dbRes.Members {
		if dbRes.Members[i] != memRes.Members[i] {
			t.Fatalf("member row %d differs", i)
		}
	}

	// The report must cover the paper's three tasks with non-zero I/O.
	if len(report.Tasks) < 3 {
		t.Fatalf("task report has %d tasks", len(report.Tasks))
	}
	names := []string{"spZone", "fBCGCandidate", "fIsCluster"}
	for i, want := range names {
		if report.Tasks[i].Name != want {
			t.Errorf("task %d = %s, want %s", i, report.Tasks[i].Name, want)
		}
		if report.Tasks[i].IO == 0 {
			t.Errorf("task %s reports zero I/O", want)
		}
	}
	if report.Galaxies != int64(cat.Len()) {
		t.Errorf("report galaxies = %d, want %d", report.Galaxies, cat.Len())
	}
}

func TestBufferImprovesBorderAccuracy(t *testing.T) {
	// Figure 1's point: a small buffer truncates neighbourhoods at the
	// field border. Candidates computed with the paper's 0.5° buffer must
	// see >= the neighbours of a 0.1°-buffer run near the border.
	cat := testCatalog(t, 13)
	target := testTarget()

	wide := DefaultParams()
	narrow := DefaultParams()
	narrow.BufferDeg = 0.05

	fw, err := NewFinder(cat, wide, 0)
	if err != nil {
		t.Fatal(err)
	}
	fn, err := NewFinder(cat, narrow, 0)
	if err != nil {
		t.Fatal(err)
	}
	cw, err := fw.FindCandidates(target.Expand(wide.BufferDeg))
	if err != nil {
		t.Fatal(err)
	}
	cn, err := fn.FindCandidates(target.Expand(narrow.BufferDeg))
	if err != nil {
		t.Fatal(err)
	}
	if len(cw) <= len(cn) {
		t.Logf("wide buffer candidates %d, narrow %d", len(cw), len(cn))
	}
	// Candidates strictly inside the target should agree between runs
	// (the buffer only affects the border).
	inner := astro.MustBox(195.0, 195.3, 2.35, 2.65)
	var wIDs, nIDs []int64
	for _, c := range cw {
		if inner.Contains(c.Ra, c.Dec) {
			wIDs = append(wIDs, c.ObjID)
		}
	}
	for _, c := range cn {
		if inner.Contains(c.Ra, c.Dec) {
			nIDs = append(nIDs, c.ObjID)
		}
	}
	if len(wIDs) != len(nIDs) {
		t.Fatalf("inner candidates differ with buffer width: %d vs %d", len(wIDs), len(nIDs))
	}
	for i := range wIDs {
		if wIDs[i] != nIDs[i] {
			t.Fatalf("inner candidate %d differs", i)
		}
	}
}

func TestFinderValidation(t *testing.T) {
	cat := testCatalog(t, 17)
	if _, err := NewFinder(cat, Params{}, 0); err == nil {
		t.Error("zero params accepted")
	}
	noK := *cat
	noK.Kcorr = nil
	if _, err := NewFinder(&noK, DefaultParams(), 0); err == nil {
		t.Error("catalog without kcorr accepted")
	}
	db := sqldb.Open(64)
	if _, err := NewDBFinder(db, DefaultParams(), nil, 0); err == nil {
		t.Error("nil kcorr accepted by DBFinder")
	}
	dbf, err := NewDBFinder(db, DefaultParams(), cat.Kcorr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dbf.MakeCandidates(testTarget()); err == nil {
		t.Error("MakeCandidates before SpZone accepted")
	}
	if _, err := dbf.MakeClusters(testTarget()); err == nil {
		t.Error("MakeClusters before MakeCandidates accepted")
	}
	if _, err := dbf.Searcher(); err == nil {
		t.Error("Searcher before SpZone accepted")
	}
}

package maxbcg

import (
	"reflect"
	"testing"

	"repro/internal/astro"
	"repro/internal/sky"
	"repro/internal/sqldb"
	"repro/internal/zone"
)

func runDBFinderIngest(t *testing.T, cat *sky.Catalog, target astro.Box, ingest IngestMode) *Result {
	t.Helper()
	db := sqldb.Open(0)
	f, err := NewDBFinder(db, DefaultParams(), cat.Kcorr, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Ingest = ingest
	if _, err := f.ImportGalaxies(cat, cat.Region); err != nil {
		t.Fatal(err)
	}
	res, _, err := f.Run(target, true)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestBulkIngestMatchesTrickleIngest is the tentpole's equivalence
// guarantee: the full pipeline over bulk-loaded tables (Galaxy, Zone,
// CandZone) must produce bit-identical candidates, clusters, and members
// to the per-row Insert path it replaces.
func TestBulkIngestMatchesTrickleIngest(t *testing.T) {
	cat := batchEquivCatalog(t)
	target := astro.MustBox(195.4, 196.0, 2.4, 2.8)

	trickle := runDBFinderIngest(t, cat, target, IngestTrickle)
	bulk := runDBFinderIngest(t, cat, target, IngestBulk)

	if len(trickle.Candidates) == 0 || len(trickle.Clusters) == 0 || len(trickle.Members) == 0 {
		t.Fatalf("degenerate fixture: %s", trickle.Summary())
	}
	if !reflect.DeepEqual(trickle.Candidates, bulk.Candidates) {
		t.Errorf("candidates differ: trickle %d rows, bulk %d rows",
			len(trickle.Candidates), len(bulk.Candidates))
	}
	if !reflect.DeepEqual(trickle.Clusters, bulk.Clusters) {
		t.Errorf("clusters differ: trickle %d rows, bulk %d rows",
			len(trickle.Clusters), len(bulk.Clusters))
	}
	if !reflect.DeepEqual(trickle.Members, bulk.Members) {
		t.Errorf("members differ: trickle %d rows, bulk %d rows",
			len(trickle.Members), len(bulk.Members))
	}
}

// TestZoneTableBulkMatchesTrickle compares the zone table itself between
// the two load paths: same keys, same rows, same cursor order, row by row.
func TestZoneTableBulkMatchesTrickle(t *testing.T) {
	cat := batchEquivCatalog(t)
	db := sqldb.Open(0)
	bulkT, err := zone.InstallZoneTable(db, "ZoneBulk", cat.Galaxies, astro.ZoneHeightDeg)
	if err != nil {
		t.Fatal(err)
	}
	trickleT, err := zone.InstallZoneTableTrickle(db, "ZoneTrickle", cat.Galaxies, astro.ZoneHeightDeg)
	if err != nil {
		t.Fatal(err)
	}
	if bulkT.NumRows() != trickleT.NumRows() {
		t.Fatalf("row counts differ: bulk %d, trickle %d", bulkT.NumRows(), trickleT.NumRows())
	}
	bc, err := bulkT.Scan()
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	tc, err := trickleT.Scan()
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()
	n := 0
	for {
		bOK, tOK := bc.Next(), tc.Next()
		if bOK != tOK {
			t.Fatalf("scan lengths diverge at row %d", n)
		}
		if !bOK {
			break
		}
		if !reflect.DeepEqual(bc.Row(), tc.Row()) {
			t.Fatalf("row %d differs between bulk and trickle zone tables", n)
		}
		n++
	}
	if err := bc.Err(); err != nil {
		t.Fatal(err)
	}
	if err := tc.Err(); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("zone tables are empty")
	}
}

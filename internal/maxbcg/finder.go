package maxbcg

import (
	"fmt"
	"sort"

	"repro/internal/astro"
	"repro/internal/sky"
	"repro/internal/zone"
)

// Finder is the in-memory implementation of the SQL MaxBCG design: the
// catalog is zone-indexed once (spZone), candidates are computed over the
// buffered area B = T + 0.5° (spMakeCandidates), cluster centres are picked
// inside T (spMakeClusters), and members are retrieved per cluster
// (spMakeGalaxiesMetric). It is the "compiled stored procedure" variant:
// identical logic to DBFinder, no page I/O.
type Finder struct {
	Params Params
	Kcorr  *sky.Kcorr

	region   astro.Box
	galaxies []sky.Galaxy
	byID     map[int64]int
	idx      *zone.Index
}

// NewFinder zone-indexes the catalog. zoneHeightDeg 0 selects the paper's
// 30 arcseconds.
func NewFinder(cat *sky.Catalog, p Params, zoneHeightDeg float64) (*Finder, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if cat.Kcorr == nil {
		return nil, fmt.Errorf("maxbcg: catalog has no k-correction table")
	}
	if zoneHeightDeg == 0 {
		zoneHeightDeg = astro.ZoneHeightDeg
	}
	idx, err := zone.Build(cat.Galaxies, zoneHeightDeg)
	if err != nil {
		return nil, err
	}
	f := &Finder{
		Params: p, Kcorr: cat.Kcorr,
		region: cat.Region, galaxies: cat.Galaxies,
		byID: make(map[int64]int, len(cat.Galaxies)),
		idx:  idx,
	}
	for i := range cat.Galaxies {
		f.byID[cat.Galaxies[i].ObjID] = i
	}
	return f, nil
}

// Searcher returns the finder's zone-index-backed galaxy searcher.
func (f *Finder) Searcher() Searcher { return finderSearcher{f} }

type finderSearcher struct{ f *Finder }

// Search implements Searcher over the zone index, attaching photometry.
func (s finderSearcher) Search(raDeg, decDeg, rDeg float64, visit func(Neighbor)) error {
	s.f.idx.Visit(raDeg, decDeg, rDeg, func(n zone.Neighbor) {
		g := &s.f.galaxies[s.f.byID[n.Entry.ObjID]]
		visit(Neighbor{
			ObjID: g.ObjID, Ra: g.Ra, Dec: g.Dec,
			Distance: n.Distance,
			I:        g.I, Gr: g.Gr, Ri: g.Ri,
		})
	})
	return nil
}

// CandidateSet answers radial queries over a candidate list using a
// dec-sorted array: the band [dec−r, dec+r] is binary-searched and each row
// distance-checked, a small-scale analogue of the Candidates-table search.
// All in-memory implementations (Finder, the TAM pipeline) share it.
type CandidateSet struct {
	byDec []Candidate // sorted by (dec, objID)
}

// NewCandidateSet builds the dec-sorted search structure.
func NewCandidateSet(cands []Candidate) *CandidateSet {
	s := &CandidateSet{byDec: append([]Candidate(nil), cands...)}
	sort.Slice(s.byDec, func(a, b int) bool {
		if s.byDec[a].Dec != s.byDec[b].Dec {
			return s.byDec[a].Dec < s.byDec[b].Dec
		}
		return s.byDec[a].ObjID < s.byDec[b].ObjID
	})
	return s
}

// SearchCandidates implements CandidateSearcher.
func (s *CandidateSet) SearchCandidates(raDeg, decDeg, rDeg float64, visit func(Candidate)) error {
	lo := sort.Search(len(s.byDec), func(i int) bool { return s.byDec[i].Dec >= decDeg-rDeg })
	r2 := astro.Chord2FromAngle(rDeg)
	center := astro.UnitVector(raDeg, decDeg)
	for i := lo; i < len(s.byDec) && s.byDec[i].Dec <= decDeg+rDeg; i++ {
		c := &s.byDec[i]
		if center.Chord2(astro.UnitVector(c.Ra, c.Dec)) < r2 {
			visit(*c)
		}
	}
	return nil
}

// FindCandidates computes the Candidates table for every galaxy inside
// area (the paper's spMakeCandidates cursor loop). Results are ordered by
// ObjID so all implementations agree bytewise.
func (f *Finder) FindCandidates(area astro.Box) ([]Candidate, error) {
	var out []Candidate
	s := f.Searcher()
	for i := range f.galaxies {
		g := &f.galaxies[i]
		if !area.Contains(g.Ra, g.Dec) {
			continue
		}
		c, ok, err := BCGCandidate(f.Params, g, f.Kcorr, s)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ObjID < out[b].ObjID })
	return out, nil
}

// Run executes the full pipeline for a target box T:
//
//	B := T expanded by the buffer (clipped to the catalog)
//	candidates over B, clusters for candidates inside T, members per cluster
//
// The catalog should extend at least 2× the buffer beyond T (the paper's
// import region P) so border candidates see their full neighbourhoods.
func (f *Finder) Run(target astro.Box) (*Result, error) {
	area := target.Expand(f.Params.BufferDeg)
	if clipped, ok := area.Intersect(f.region); ok {
		area = clipped
	}
	cands, err := f.FindCandidates(area)
	if err != nil {
		return nil, err
	}
	cset := NewCandidateSet(cands)
	res := &Result{Candidates: cands}
	for _, c := range cands {
		if !target.Contains(c.Ra, c.Dec) {
			continue
		}
		isC, err := IsCluster(f.Params, c, f.Kcorr, cset)
		if err != nil {
			return nil, err
		}
		if !isC {
			continue
		}
		res.Clusters = append(res.Clusters, c)
		members, err := ClusterMembers(f.Params, c, f.Kcorr, f.Searcher())
		if err != nil {
			return nil, err
		}
		res.Members = append(res.Members, members...)
	}
	sort.Slice(res.Members, func(a, b int) bool {
		if res.Members[a].ClusterObjID != res.Members[b].ClusterObjID {
			return res.Members[a].ClusterObjID < res.Members[b].ClusterObjID
		}
		return res.Members[a].GalaxyObjID < res.Members[b].GalaxyObjID
	})
	return res, nil
}

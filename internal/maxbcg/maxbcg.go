// Package maxbcg implements the paper's primary subject: the
// Maximum-likelihood Brightest Cluster Galaxy algorithm (Annis et al.) that
// finds galaxy clusters in a 5-space of two positions (ra, dec), two
// colours (g-r, r-i) and one brightness (i).
//
// The algorithm's six steps (paper §2.1) map onto this package as:
//
//	Get galaxy list                → the caller selects the region (Finder)
//	Filter                        → chiSquareTable (χ² against Kcorr, cut 7)
//	Check neighbors               → countNeighbors (per-redshift windows)
//	Pick most likely              → IsCluster (max weighted likelihood)
//	Discard compromised results   → Run (clusters clipped to the target)
//	Retrieve members              → ClusterMembers (1 Mpc ∧ r200 windows)
//
// The per-galaxy functions are written against a Searcher interface so the
// identical logic runs over the in-memory zone index, the sqldb-backed zone
// table (I/O-accounted, for the paper's Table 1), and the TAM file
// pipeline's RAM buffers (the baseline).
package maxbcg

import (
	"fmt"
	"math"

	"repro/internal/sky"
)

// Params holds the algorithm constants. The values of DefaultParams are the
// paper's: population sigmas 0.05 (g-r), 0.06 (r-i), 0.57 (i), χ² cutoff 7,
// 0.5° buffer, and the fIsCluster redshift pairing window ±0.05.
type Params struct {
	GrPopSigma float64 // population dispersion of BCG g-r colours
	RiPopSigma float64 // population dispersion of BCG r-i colours
	IPopSigma  float64 // population dispersion of BCG i magnitudes
	Chi2Cutoff float64 // unweighted-likelihood acceptance threshold
	BufferDeg  float64 // buffer width around the target area (paper: 0.5)
	ZWindow    float64 // redshift window when comparing candidates (±0.05)
}

// DefaultParams returns the paper's constants.
func DefaultParams() Params {
	return Params{
		GrPopSigma: 0.05,
		RiPopSigma: 0.06,
		IPopSigma:  0.57,
		Chi2Cutoff: 7,
		BufferDeg:  0.5,
		ZWindow:    0.05,
	}
}

// Validate reports obviously broken parameter values.
func (p Params) Validate() error {
	if p.GrPopSigma <= 0 || p.RiPopSigma <= 0 || p.IPopSigma <= 0 {
		return fmt.Errorf("maxbcg: population sigmas must be positive")
	}
	if p.Chi2Cutoff <= 0 {
		return fmt.Errorf("maxbcg: chi-squared cutoff must be positive")
	}
	if p.BufferDeg < 0 || p.BufferDeg > 5 {
		return fmt.Errorf("maxbcg: buffer %g degrees outside [0, 5]", p.BufferDeg)
	}
	if p.ZWindow <= 0 {
		return fmt.Errorf("maxbcg: redshift window must be positive")
	}
	return nil
}

// Neighbor is one galaxy delivered by a Searcher: photometry plus the
// distance from the search centre in degrees.
type Neighbor struct {
	ObjID     int64
	Ra, Dec   float64
	Distance  float64
	I, Gr, Ri float64
}

// Searcher finds all galaxies within r degrees of a position. The three
// implementations are the in-memory zone index, the DB zone table, and the
// TAM buffer file scan.
type Searcher interface {
	Search(raDeg, decDeg, rDeg float64, visit func(Neighbor)) error
}

// Candidate is one row of the Candidates table: a galaxy that is likely to
// be a BCG at its best-fitting redshift.
type Candidate struct {
	ObjID   int64
	Ra, Dec float64
	Z       float64 // redshift of the maximum weighted likelihood
	I       float64 // i-band magnitude
	NGal    int     // galaxies in the cluster (neighbours + the BCG)
	Chi2    float64 // weighted likelihood log(ngal+1) − χ²
}

// Member is one row of the ClusterGalaxiesMetric table.
type Member struct {
	ClusterObjID int64
	GalaxyObjID  int64
	Distance     float64
}

// chiRow is one surviving row of the per-galaxy @chisquare table.
type chiRow struct {
	zid   int
	chisq float64
	ngal  int
}

// chiSquareTable reproduces the Filter step: the galaxy is cross-joined
// with the k-correction table and rows with
//
//	(i−k.i)²/0.57² + (gr−k.gr)²/(σgr²+0.05²) + (ri−k.ri)²/(σri²+0.06²) < 7
//
// survive. The returned rows are ordered by zid. This early filter is the
// first thing the paper credits for the SQL implementation's speed.
func chiSquareTable(p Params, g *sky.Galaxy, kcorr *sky.Kcorr, out []chiRow) []chiRow {
	out = out[:0]
	iVar := p.IPopSigma * p.IPopSigma
	grVar := g.SigmaGr*g.SigmaGr + p.GrPopSigma*p.GrPopSigma
	riVar := g.SigmaRi*g.SigmaRi + p.RiPopSigma*p.RiPopSigma
	// Each χ² term alone bounds the reachable redshifts: χ² ≥
	// (i−k.i)²/σᵢ², so only rows with |i−k.i| < √cutoff·σᵢ can pass, and
	// likewise for the two colour terms. The ridge lines I(z), Gr(z),
	// Ri(z) are monotone in z, so binary searches replace the full-table
	// scan (ChiBand degrades to the full range for non-monotone columns).
	sc := math.Sqrt(p.Chi2Cutoff)
	dI := sc * p.IPopSigma
	dGr := sc * math.Sqrt(grVar)
	dRi := sc * math.Sqrt(riVar)
	lo, hi := kcorr.ChiBand(g.I-dI, g.I+dI, g.Gr-dGr, g.Gr+dGr, g.Ri-dRi, g.Ri+dRi)
	for k := lo; k < hi; k++ {
		row := &kcorr.Rows[k]
		di := g.I - row.I
		dgr := g.Gr - row.Gr
		dri := g.Ri - row.Ri
		chisq := di*di/iVar + dgr*dgr/grVar + dri*dri/riVar
		if chisq < p.Chi2Cutoff {
			out = append(out, chiRow{zid: row.Zid, chisq: chisq})
		}
	}
	return out
}

// windows aggregates the search bounds of the Check-neighbors step over the
// surviving redshifts, as fBCGCandidate computes them: the maximum angular
// 1 Mpc radius, the faintest member limit, and colour bands widened by two
// population sigmas.
type windows struct {
	rad          float64
	imin, imax   float64
	grmin, grmax float64
	rimin, rimax float64
}

func searchWindows(p Params, g *sky.Galaxy, kcorr *sky.Kcorr, rows []chiRow) windows {
	w := windows{
		rad:  -math.MaxFloat64,
		imax: -math.MaxFloat64, grmin: math.MaxFloat64, grmax: -math.MaxFloat64,
		rimin: math.MaxFloat64, rimax: -math.MaxFloat64,
	}
	w.imin = g.I
	for _, r := range rows {
		k := &kcorr.Rows[r.zid-1]
		w.rad = math.Max(w.rad, k.Radius)
		w.imax = math.Max(w.imax, k.Ilim)
		w.grmin = math.Min(w.grmin, k.Gr-2*p.GrPopSigma)
		w.grmax = math.Max(w.grmax, k.Gr+2*p.GrPopSigma)
		w.rimin = math.Min(w.rimin, k.Ri-2*p.RiPopSigma)
		w.rimax = math.Max(w.rimax, k.Ri+2*p.RiPopSigma)
	}
	return w
}

// acceptFriend applies the aggregated search windows to one delivered
// neighbour: the buffered @friends filter of fBCGCandidate, shared by the
// per-probe and batched candidate paths.
func acceptFriend(g *sky.Galaxy, w *windows, n *Neighbor) bool {
	if n.ObjID == g.ObjID {
		return false
	}
	if n.I < w.imin || n.I > w.imax {
		return false
	}
	if n.Gr < w.grmin || n.Gr > w.grmax {
		return false
	}
	return n.Ri >= w.rimin && n.Ri <= w.rimax
}

// finishCandidate runs the tail of fBCGCandidate over the buffered friends:
// the per-redshift neighbour count (the paper's @counts) and the weighted
// likelihood maximisation. Both search paths funnel through it, so a
// candidate's values depend only on the friend set, not on how the
// neighbour search delivered it.
func finishCandidate(p Params, g *sky.Galaxy, kcorr *sky.Kcorr, rows []chiRow, friends []Neighbor) (Candidate, bool) {
	for ri := range rows {
		k := &kcorr.Rows[rows[ri].zid-1]
		n := 0
		for fi := range friends {
			f := &friends[fi]
			if f.Distance < k.Radius &&
				f.I >= g.I && f.I <= k.Ilim &&
				f.Gr >= k.Gr-p.GrPopSigma && f.Gr <= k.Gr+p.GrPopSigma &&
				f.Ri >= k.Ri-p.RiPopSigma && f.Ri <= k.Ri+p.RiPopSigma {
				n++
			}
		}
		rows[ri].ngal = n
	}

	// Weight the likelihood and take the maximum over redshifts with at
	// least one neighbour: chi = max(log(ngal+1) − χ²).
	best := math.Inf(-1)
	bestIdx := -1
	for ri := range rows {
		if rows[ri].ngal == 0 {
			continue
		}
		l := math.Log(float64(rows[ri].ngal+1)) - rows[ri].chisq
		if l > best {
			best = l
			bestIdx = ri
		}
	}
	if bestIdx < 0 {
		return Candidate{}, false
	}
	k := &kcorr.Rows[rows[bestIdx].zid-1]
	return Candidate{
		ObjID: g.ObjID, Ra: g.Ra, Dec: g.Dec,
		Z: k.Z, I: g.I,
		NGal: rows[bestIdx].ngal + 1,
		Chi2: best,
	}, true
}

// BCGCandidate reproduces fBCGCandidate for one galaxy: the χ² filter, the
// windowed neighbour count per redshift, and the weighted-likelihood
// maximisation. It returns (candidate, true) when the galaxy is a BCG
// candidate at some redshift with at least one neighbour.
func BCGCandidate(p Params, g *sky.Galaxy, kcorr *sky.Kcorr, s Searcher) (Candidate, bool, error) {
	var scratch [64]chiRow
	rows := chiSquareTable(p, g, kcorr, scratch[:0])
	if len(rows) == 0 {
		return Candidate{}, false, nil
	}
	w := searchWindows(p, g, kcorr, rows)

	// Collect friends: neighbours within the widest windows. The
	// per-redshift re-filter needs every friend for every row, so they are
	// buffered (the paper's @friends table variable).
	var friends []Neighbor
	err := s.Search(g.Ra, g.Dec, w.rad, func(n Neighbor) {
		if acceptFriend(g, &w, &n) {
			friends = append(friends, n)
		}
	})
	if err != nil {
		return Candidate{}, false, err
	}
	c, ok := finishCandidate(p, g, kcorr, rows, friends)
	return c, ok, nil
}

// CandidateSearcher finds candidate BCGs near a position; implementations
// search the Candidates table / slice.
type CandidateSearcher interface {
	SearchCandidates(raDeg, decDeg, rDeg float64, visit func(Candidate)) error
}

// IsCluster reproduces fIsCluster: the candidate is a cluster centre iff no
// candidate within the 1 Mpc angular radius at its redshift (and within
// ±ZWindow in redshift) has a larger weighted likelihood. Ties resolve as
// the paper's |Δ| < 1e-5 equality check does: both centres survive.
func IsCluster(p Params, c Candidate, kcorr *sky.Kcorr, cs CandidateSearcher) (bool, error) {
	k, ok := kcorr.LookupExact(c.Z)
	if !ok {
		return false, fmt.Errorf("maxbcg: candidate %d has untabulated redshift %g", c.ObjID, c.Z)
	}
	best := math.Inf(-1)
	err := cs.SearchCandidates(c.Ra, c.Dec, k.Radius, func(o Candidate) {
		if o.Z < c.Z-p.ZWindow || o.Z > c.Z+p.ZWindow {
			return
		}
		if o.Chi2 > best {
			best = o.Chi2
		}
	})
	if err != nil {
		return false, err
	}
	return math.Abs(best-c.Chi2) < 1e-5, nil
}

// ClusterMembers reproduces fGetClusterGalaxiesMetric: the cluster's
// galaxies are those inside radius(z)·r200(ngal) degrees whose magnitude
// lies in (BCG.i − 0.001, ilim(z)] and whose colours sit within one
// population sigma of the red sequence at z. The centre itself is the first
// member at distance zero.
func ClusterMembers(p Params, c Candidate, kcorr *sky.Kcorr, s Searcher) ([]Member, error) {
	k, ok := kcorr.LookupExact(c.Z)
	if !ok {
		return nil, fmt.Errorf("maxbcg: cluster %d has untabulated redshift %g", c.ObjID, c.Z)
	}
	rad := k.Radius * sky.R200Mpc(float64(c.NGal))
	members := []Member{{ClusterObjID: c.ObjID, GalaxyObjID: c.ObjID, Distance: 0}}
	err := s.Search(c.Ra, c.Dec, rad, func(n Neighbor) {
		if n.ObjID == c.ObjID || n.Distance >= rad {
			return
		}
		if n.I < c.I-0.001 || n.I > k.Ilim {
			return
		}
		if n.Gr < k.Gr-p.GrPopSigma || n.Gr > k.Gr+p.GrPopSigma {
			return
		}
		if n.Ri < k.Ri-p.RiPopSigma || n.Ri > k.Ri+p.RiPopSigma {
			return
		}
		members = append(members, Member{ClusterObjID: c.ObjID, GalaxyObjID: n.ObjID, Distance: n.Distance})
	})
	return members, err
}

// Result bundles the three output tables of one MaxBCG run.
type Result struct {
	Candidates []Candidate // the Candidates table (buffer area B)
	Clusters   []Candidate // the Clusters table (target area T)
	Members    []Member    // the ClusterGalaxiesMetric table
}

// Summary returns counts for quick reporting.
func (r *Result) Summary() string {
	return fmt.Sprintf("%d candidates, %d clusters, %d member rows",
		len(r.Candidates), len(r.Clusters), len(r.Members))
}

package maxbcg

import (
	"math"
	"testing"

	"repro/internal/sky"
	"repro/internal/sqldb"
)

// TestPaperAppendixSQL runs the shapes of the paper's appendix script
// (MaxBCG SQL code for MySkyServerDr1) against the engine: the schema DDL,
// the spImportGalaxy projection with its error-model expressions, the
// fBCGr200 scalar UDF, the fGetNearbyObjEqZd table-valued function joined
// with Galaxy, and the fIsCluster-style best-chi2 window query.
func TestPaperAppendixSQL(t *testing.T) {
	cat := testCatalog(t, 31)
	db := sqldb.Open(1024)

	// -- Schema (paper page 10), dialect-reduced: table variables and
	// procedures become engine tables and Go loops.
	ddl := `
	CREATE TABLE Kcorr (
		zid int IDENTITY(1,1) PRIMARY KEY NOT NULL,
		z real, i real, ilim real,
		ug real, gr real, ri real, iz real,
		radius float
	);
	CREATE TABLE PhotoObjAll (
		objid bigint PRIMARY KEY,
		ra float, dec float,
		dered_g float, dered_r float, dered_i float
	);
	CREATE TABLE Galaxy (
		objid bigint PRIMARY KEY,
		ra float, dec float,
		i real, gr real, ri real,
		sigmagr float, sigmari float
	);
	CREATE TABLE Candidates (
		objid bigint PRIMARY KEY,
		ra float, dec float, z float, i real, ngal int, chi2 float
	);
	`
	if err := db.ExecScript(ddl); err != nil {
		t.Fatal(err)
	}

	// Import the k-correction table.
	kt, _ := db.Table("Kcorr")
	for _, r := range cat.Kcorr.Rows {
		err := kt.Insert([]sqldb.Value{
			sqldb.Null(), // identity
			sqldb.Float(r.Z), sqldb.Float(r.I), sqldb.Float(r.Ilim),
			sqldb.Float(r.Ug), sqldb.Float(r.Gr), sqldb.Float(r.Ri), sqldb.Float(r.Iz),
			sqldb.Float(r.Radius),
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	// Populate PhotoObjAll so spImportGalaxy has a source. Reconstruct
	// dereddened magnitudes from the catalog's colours (g = i + gr + ri).
	pt, _ := db.Table("PhotoObjAll")
	const maxRows = 3000
	for i := range cat.Galaxies {
		if i == maxRows {
			break
		}
		g := &cat.Galaxies[i]
		err := pt.Insert([]sqldb.Value{
			sqldb.Int(g.ObjID), sqldb.Float(g.Ra), sqldb.Float(g.Dec),
			sqldb.Float(g.I + g.Gr + g.Ri), sqldb.Float(g.I + g.Ri), sqldb.Float(g.I),
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	// -- spImportGalaxy (paper page 15): projection with the error model.
	n, err := db.Exec(`INSERT INTO Galaxy
		SELECT objid, ra, dec,
		       dered_i,
		       dered_g - dered_r,
		       dered_r - dered_i,
		       CAST(2.089 * POWER(10.000, 0.228 * dered_i - 6.0) AS FLOAT),
		       CAST(4.266 * POWER(10.0000, 0.206 * dered_i - 6.0) AS FLOAT)
		FROM PhotoObjAll
		WHERE ra BETWEEN 190 AND 200 AND dec BETWEEN 0 AND 5`)
	if err != nil {
		t.Fatal(err)
	}
	if n != maxRows {
		t.Fatalf("spImportGalaxy moved %d rows, want %d", n, maxRows)
	}
	// The imported colours must match the generator's originals.
	rows, err := db.Query("SELECT gr, ri, sigmagr FROM Galaxy WHERE objid = ?", sqldb.Int(cat.Galaxies[0].ObjID))
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	gr, _ := rows.Row()[0].AsFloat()
	sg, _ := rows.Row()[2].AsFloat()
	if math.Abs(gr-cat.Galaxies[0].Gr) > 1e-9 {
		t.Errorf("imported gr = %g, want %g", gr, cat.Galaxies[0].Gr)
	}
	if want := sky.SigmaGrFor(cat.Galaxies[0].I); math.Abs(sg-want) > 1e-9 {
		t.Errorf("imported sigmagr = %g, want %g", sg, want)
	}

	// -- fBCGr200 (paper page 14) as a scalar UDF.
	db.RegisterScalar("fBCGr200", func(args []sqldb.Value) (sqldb.Value, error) {
		ngal, err := args[0].AsFloat()
		if err != nil {
			return sqldb.Value{}, err
		}
		return sqldb.Float(sky.R200Mpc(ngal)), nil
	})
	rows, err = db.Query("SELECT dbo.fBCGr200(100.0)")
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	if got, _ := rows.Row()[0].AsFloat(); math.Abs(got-1.78) > 0.02 {
		t.Errorf("fBCGr200(100) = %g, want ~1.78 (the paper's worked example)", got)
	}

	// -- Zone machinery + the paper's sample TVF invocation:
	//    "select * from fGetNearbyObjEqZd(2.5, 3.0, 0.5)" shape.
	finder, err := NewDBFinder(sqldb.Open(1024), DefaultParams(), cat.Kcorr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := finder.ImportGalaxies(cat, cat.Region); err != nil {
		t.Fatal(err)
	}
	if err := finder.SpZone(); err != nil {
		t.Fatal(err)
	}
	rows, err = finder.DB.Query(`SELECT n.objID, n.distance FROM fGetNearbyObjEqZd(195.1, 2.5, 0.25) n
		JOIN Galaxy g ON g.objid = n.objID
		WHERE g.i BETWEEN 10 AND 25 ORDER BY n.distance`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() == 0 {
		t.Fatal("the paper's TVF join returned no neighbours in a dense field")
	}
	prev := -1.0
	for rows.Next() {
		d, _ := rows.Row()[1].AsFloat()
		if d < prev || d >= 0.25 {
			t.Fatalf("neighbour ordering/radius violated: %g after %g", d, prev)
		}
		prev = d
	}

	// -- fIsCluster's SELECT @chi = MAX(c.chi2) window shape over a
	//    candidate table.
	ct, _ := db.Table("Candidates")
	for i, c := range []struct {
		z, chi2 float64
	}{{0.10, 1.5}, {0.12, 2.5}, {0.30, 9.0}} {
		err := ct.Insert([]sqldb.Value{
			sqldb.Int(int64(i + 1)), sqldb.Float(195.0), sqldb.Float(2.5),
			sqldb.Float(c.z), sqldb.Float(17), sqldb.Int(5), sqldb.Float(c.chi2),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	rows, err = db.Query(`SELECT MAX(chi2) FROM Candidates WHERE z BETWEEN ? AND ?`,
		sqldb.Float(0.10-0.05), sqldb.Float(0.10+0.05))
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	if got, _ := rows.Row()[0].AsFloat(); got != 2.5 {
		t.Errorf("windowed MAX(chi2) = %g, want 2.5 (z=0.30 row excluded)", got)
	}
}

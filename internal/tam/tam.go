// Package tam reproduces the paper's baseline: the Terabyte Analysis
// Machine implementation of MaxBCG (§2.2), a file-based Grid application.
// The sky is broken into 0.25 deg² target fields; each field task stages
// two flat files — a 0.5°×0.5° Target file and a buffered Buffer file —
// loads them into RAM, and runs the algorithm with linear scans of the
// buffer (no indexes), a coarse 100-step k-correction table, and a 0.25°
// buffer (the TAM nodes "did not have enough RAM storage to hold the
// larger files").
//
// The algorithmic core is shared with the SQL implementation
// (maxbcg.BCGCandidate etc.); only the access paths differ, which is
// exactly the paper's comparison.
package tam

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/astro"
	"repro/internal/maxbcg"
	"repro/internal/sky"
)

// Config shapes the TAM pipeline.
type Config struct {
	// FieldSideDeg is the field edge length; the paper's 0.25 deg²
	// fields have side 0.5.
	FieldSideDeg float64
	// BufferDeg is the margin of the Buffer file around the Target file.
	// TAM used 0.25 (the RAM compromise); the ideal value is 0.5.
	BufferDeg float64
	// Params are the algorithm constants (Params.BufferDeg is unused
	// here; BufferDeg above is the TAM notion of buffering).
	Params maxbcg.Params
	// Kcorr is the k-correction table; TAM used 100 redshift steps.
	Kcorr *sky.Kcorr
	// NodeRAMBytes simulates the per-node memory budget. Zero disables
	// the check. Staging fails when a field's files plus the working
	// tables would not fit, reproducing why TAM could not run the
	// finer configuration.
	NodeRAMBytes int64
}

// DefaultConfig returns the paper's TAM configuration: 0.5° fields, 0.25°
// buffer, 100 k-correction steps, and a 1 GB node.
func DefaultConfig() Config {
	return Config{
		FieldSideDeg: 0.5,
		BufferDeg:    0.25,
		Params:       maxbcg.DefaultParams(),
		Kcorr:        sky.MustNewKcorr(100, 0.5),
		NodeRAMBytes: 1 << 30,
	}
}

// BytesPerGalaxy is the paper's row size ("1.5 million rows (44 bytes
// each)").
const BytesPerGalaxy = 44

// FieldRAMBytes estimates the memory a field task needs: target + buffer
// rows plus the per-galaxy chi-square working tables, which scale with the
// number of redshift steps.
func FieldRAMBytes(targetRows, bufferRows, zSteps int) int64 {
	working := int64(zSteps) * 48 // @chisquare row: zid, z, i, chisq, ngal
	return int64(targetRows+bufferRows)*BytesPerGalaxy + working*int64(bufferRows/64+1)
}

// Field is one staged unit of work: the task Condor would schedule.
type Field struct {
	ID         int
	Target     astro.Box
	Buffer     astro.Box
	TargetPath string
	BufferPath string
}

// galaxy file format: "TAMFLD01", int32 count, then per row
// int64 objid, float64 ra, dec, float32 i, gr, ri (44 bytes per row,
// matching the paper's figure; the sigma columns are recomputed from i).
const fieldMagic = "TAMFLD01"

func writeGalaxyFile(path string, gals []sky.Galaxy) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if _, err := w.WriteString(fieldMagic); err != nil {
		f.Close()
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, int32(len(gals))); err != nil {
		f.Close()
		return err
	}
	for i := range gals {
		g := &gals[i]
		if err := binary.Write(w, binary.LittleEndian, g.ObjID); err != nil {
			f.Close()
			return err
		}
		for _, v := range []float64{g.Ra, g.Dec} {
			if err := binary.Write(w, binary.LittleEndian, v); err != nil {
				f.Close()
				return err
			}
		}
		for _, v := range []float32{float32(g.I), float32(g.Gr), float32(g.Ri)} {
			if err := binary.Write(w, binary.LittleEndian, v); err != nil {
				f.Close()
				return err
			}
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadGalaxyFile loads a staged field file.
func ReadGalaxyFile(path string) ([]sky.Galaxy, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	magic := make([]byte, len(fieldMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("tam: reading field magic: %w", err)
	}
	if string(magic) != fieldMagic {
		return nil, fmt.Errorf("tam: bad field magic %q in %s", magic, path)
	}
	var n int32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n < 0 || n > 1<<27 {
		return nil, fmt.Errorf("tam: implausible row count %d in %s", n, path)
	}
	gals := make([]sky.Galaxy, n)
	for i := range gals {
		g := &gals[i]
		if err := binary.Read(r, binary.LittleEndian, &g.ObjID); err != nil {
			return nil, err
		}
		for _, p := range []*float64{&g.Ra, &g.Dec} {
			if err := binary.Read(r, binary.LittleEndian, p); err != nil {
				return nil, err
			}
		}
		var f32 [3]float32
		for j := range f32 {
			if err := binary.Read(r, binary.LittleEndian, &f32[j]); err != nil {
				return nil, err
			}
		}
		g.I, g.Gr, g.Ri = float64(f32[0]), float64(f32[1]), float64(f32[2])
		g.SigmaGr = sky.SigmaGrFor(g.I)
		g.SigmaRi = sky.SigmaRiFor(g.I)
	}
	return gals, nil
}

// StageFields decomposes the target box into fields and writes each
// field's Target and Buffer files under dir — the hundreds of thousands of
// file fetches of the paper's Grid applications, in miniature.
func StageFields(cat *sky.Catalog, target astro.Box, cfg Config, dir string) ([]Field, error) {
	if cfg.FieldSideDeg <= 0 {
		return nil, fmt.Errorf("tam: non-positive field side %g", cfg.FieldSideDeg)
	}
	if cfg.Kcorr == nil {
		return nil, fmt.Errorf("tam: nil k-correction table")
	}
	var fields []Field
	for i, box := range target.Fields(cfg.FieldSideDeg) {
		buffer := box.Expand(cfg.BufferDeg)
		tg := cat.Select(box)
		bg := cat.Select(buffer)
		if cfg.NodeRAMBytes > 0 {
			if need := FieldRAMBytes(len(tg), len(bg), cfg.Kcorr.Steps()); need > cfg.NodeRAMBytes {
				return nil, fmt.Errorf("tam: field %d needs %d bytes of RAM, node has %d (the paper's compromise: shrink the buffer or the k-table)",
					i, need, cfg.NodeRAMBytes)
			}
		}
		fld := Field{
			ID:         i,
			Target:     box,
			Buffer:     buffer,
			TargetPath: filepath.Join(dir, fmt.Sprintf("field-%04d-target.dat", i)),
			BufferPath: filepath.Join(dir, fmt.Sprintf("field-%04d-buffer.dat", i)),
		}
		if err := writeGalaxyFile(fld.TargetPath, tg); err != nil {
			return nil, err
		}
		if err := writeGalaxyFile(fld.BufferPath, bg); err != nil {
			return nil, err
		}
		fields = append(fields, fld)
	}
	return fields, nil
}

// bufferSearcher scans an in-RAM buffer linearly for every search: the
// Astrotools access path ("these spherical neighborhood searches are
// reasonably expensive as each one searches the Buffer file").
type bufferSearcher struct {
	gals []sky.Galaxy
	vecs []astro.Vec3
}

func newBufferSearcher(gals []sky.Galaxy) *bufferSearcher {
	s := &bufferSearcher{gals: gals, vecs: make([]astro.Vec3, len(gals))}
	for i := range gals {
		s.vecs[i] = astro.UnitVector(gals[i].Ra, gals[i].Dec)
	}
	return s
}

// Search implements maxbcg.Searcher by brute force.
func (s *bufferSearcher) Search(raDeg, decDeg, rDeg float64, visit func(maxbcg.Neighbor)) error {
	center := astro.UnitVector(raDeg, decDeg)
	r2 := astro.Chord2FromAngle(rDeg)
	for i := range s.gals {
		c2 := center.Chord2(s.vecs[i])
		if c2 < r2 {
			g := &s.gals[i]
			visit(maxbcg.Neighbor{
				ObjID: g.ObjID, Ra: g.Ra, Dec: g.Dec,
				Distance: math.Sqrt(c2) / astro.Deg2Rad,
				I:        g.I, Gr: g.Gr, Ri: g.Ri,
			})
		}
	}
	return nil
}

// ProcessField runs the six MaxBCG steps for one staged field: load the
// files into RAM, compute candidates for every buffer galaxy (the C and
// BufferC files), pick the most likely centres among the target-area
// candidates, and retrieve members from the buffer.
func ProcessField(fld Field, cfg Config) (*maxbcg.Result, error) {
	bufGals, err := ReadGalaxyFile(fld.BufferPath)
	if err != nil {
		return nil, err
	}
	search := newBufferSearcher(bufGals)

	// BufferC: candidates among all buffer galaxies.
	var bufferC []maxbcg.Candidate
	for i := range bufGals {
		c, ok, err := maxbcg.BCGCandidate(cfg.Params, &bufGals[i], cfg.Kcorr, search)
		if err != nil {
			return nil, err
		}
		if ok {
			bufferC = append(bufferC, c)
		}
	}
	cset := maxbcg.NewCandidateSet(bufferC)

	res := &maxbcg.Result{}
	for _, c := range bufferC {
		if fld.Target.Contains(c.Ra, c.Dec) {
			res.Candidates = append(res.Candidates, c)
		}
	}
	for _, c := range res.Candidates {
		isC, err := maxbcg.IsCluster(cfg.Params, c, cfg.Kcorr, cset)
		if err != nil {
			return nil, err
		}
		if !isC {
			continue
		}
		res.Clusters = append(res.Clusters, c)
		members, err := maxbcg.ClusterMembers(cfg.Params, c, cfg.Kcorr, search)
		if err != nil {
			return nil, err
		}
		res.Members = append(res.Members, members...)
	}
	return res, nil
}

// Merge combines per-field results into one catalog ordered by ObjID.
// Fields tile the target, so no deduplication is needed.
func Merge(results []*maxbcg.Result) *maxbcg.Result {
	out := &maxbcg.Result{}
	for _, r := range results {
		out.Candidates = append(out.Candidates, r.Candidates...)
		out.Clusters = append(out.Clusters, r.Clusters...)
		out.Members = append(out.Members, r.Members...)
	}
	sort.Slice(out.Candidates, func(a, b int) bool { return out.Candidates[a].ObjID < out.Candidates[b].ObjID })
	sort.Slice(out.Clusters, func(a, b int) bool { return out.Clusters[a].ObjID < out.Clusters[b].ObjID })
	sort.Slice(out.Members, func(a, b int) bool {
		if out.Members[a].ClusterObjID != out.Members[b].ClusterObjID {
			return out.Members[a].ClusterObjID < out.Members[b].ClusterObjID
		}
		return out.Members[a].GalaxyObjID < out.Members[b].GalaxyObjID
	})
	return out
}

// Run stages and processes every field sequentially (a single TAM CPU) and
// merges the results.
func Run(cat *sky.Catalog, target astro.Box, cfg Config, dir string) (*maxbcg.Result, error) {
	fields, err := StageFields(cat, target, cfg, dir)
	if err != nil {
		return nil, err
	}
	results := make([]*maxbcg.Result, len(fields))
	for i, fld := range fields {
		r, err := ProcessField(fld, cfg)
		if err != nil {
			return nil, fmt.Errorf("tam: field %d: %w", fld.ID, err)
		}
		results[i] = r
	}
	return Merge(results), nil
}

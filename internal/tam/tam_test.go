package tam

import (
	"math"
	"strings"
	"testing"

	"repro/internal/astro"
	"repro/internal/maxbcg"
	"repro/internal/sky"
)

func testCatalog(t testing.TB, seed int64) *sky.Catalog {
	t.Helper()
	cat, err := sky.Generate(sky.GenConfig{
		Region: astro.MustBox(194.0, 196.3, 1.4, 3.6),
		Seed:   seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestGalaxyFileRoundTrip(t *testing.T) {
	cat := testCatalog(t, 1)
	gals := cat.Galaxies[:500]
	path := t.TempDir() + "/field.dat"
	if err := writeGalaxyFile(path, gals); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGalaxyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(gals) {
		t.Fatalf("round trip lost rows: %d vs %d", len(got), len(gals))
	}
	for i := range got {
		if got[i].ObjID != gals[i].ObjID || got[i].Ra != gals[i].Ra {
			t.Fatalf("row %d identity differs", i)
		}
		if math.Abs(got[i].I-gals[i].I) > 1e-5 {
			t.Fatalf("row %d photometry differs beyond float32", i)
		}
		if got[i].SigmaGr != sky.SigmaGrFor(got[i].I) {
			t.Fatalf("row %d sigma not recomputed", i)
		}
	}
	if _, err := ReadGalaxyFile(t.TempDir() + "/missing.dat"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestStageFieldsGeometry(t *testing.T) {
	cat := testCatalog(t, 2)
	target := astro.MustBox(194.8, 195.8, 2.0, 3.0) // 1 deg² = 4 fields
	cfg := DefaultConfig()
	fields, err := StageFields(cat, target, cfg, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(fields) != 4 {
		t.Fatalf("got %d fields, want 4", len(fields))
	}
	for _, f := range fields {
		if a := f.Target.FlatArea(); math.Abs(a-0.25) > 1e-9 {
			t.Errorf("field %d target area %g, want 0.25 deg²", f.ID, a)
		}
		if a := f.Buffer.FlatArea(); math.Abs(a-1.0) > 1e-9 {
			t.Errorf("field %d buffer area %g, want 1 deg² (paper Figure 1)", f.ID, a)
		}
		tg, err := ReadGalaxyFile(f.TargetPath)
		if err != nil {
			t.Fatal(err)
		}
		// Paper: a 0.25 deg² field holds ~3.5e3 galaxies.
		if len(tg) < 2800 || len(tg) > 4500 {
			t.Errorf("field %d target holds %d galaxies, want ~3500", f.ID, len(tg))
		}
		for i := range tg {
			if !f.Target.Contains(tg[i].Ra, tg[i].Dec) {
				t.Fatalf("field %d target file contains outside galaxy", f.ID)
			}
		}
	}
}

func TestRAMConstraintRejectsIdealConfig(t *testing.T) {
	// The paper: TAM nodes could not hold the 1.5°×1.5° buffer with fine
	// z-steps. With a deliberately small simulated node, the ideal
	// configuration must fail staging while the compromise succeeds.
	cat := testCatalog(t, 3)
	target := astro.MustBox(195.0, 195.5, 2.2, 2.7)

	compromise := DefaultConfig()
	compromise.NodeRAMBytes = 3 << 20 // 3 MiB toy node
	if _, err := StageFields(cat, target, compromise, t.TempDir()); err != nil {
		t.Fatalf("compromise configuration rejected: %v", err)
	}

	ideal := compromise
	ideal.BufferDeg = 0.5
	ideal.Kcorr = sky.MustNewKcorr(1000, 0.5)
	if _, err := StageFields(cat, target, ideal, t.TempDir()); err == nil {
		t.Error("ideal configuration fit in a node it should not fit in")
	} else if !strings.Contains(err.Error(), "RAM") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestProcessFieldFindsClusters(t *testing.T) {
	cat := testCatalog(t, 5)
	target := astro.MustBox(195.0, 195.5, 2.2, 2.7)
	cfg := DefaultConfig()
	fields, err := StageFields(cat, target, cfg, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res, err := ProcessField(fields[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) == 0 {
		t.Fatal("no candidates in a dense field")
	}
	// Paper: ~4.5 clusters per field.
	if len(res.Clusters) < 1 || len(res.Clusters) > 20 {
		t.Errorf("%d clusters in one field, want a handful", len(res.Clusters))
	}
	for _, c := range res.Clusters {
		if !fields[0].Target.Contains(c.Ra, c.Dec) {
			t.Errorf("cluster %d outside the field target", c.ObjID)
		}
	}
}

func TestTAMAgreesWithSQLOnEqualSettings(t *testing.T) {
	// When the TAM pipeline is given the SQL configuration (0.5° buffer,
	// 1000 z-steps) the two implementations are the same algorithm over
	// different access paths, so the cluster catalogs must be identical.
	cat := testCatalog(t, 7)
	target := astro.MustBox(194.9, 195.4, 2.25, 2.75)

	cfg := DefaultConfig()
	cfg.BufferDeg = 0.5
	cfg.Kcorr = cat.Kcorr // the catalog's 1000-step table
	cfg.NodeRAMBytes = 0  // simulated RAM limit lifted
	tamRes, err := Run(cat, target, cfg, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	finder, err := maxbcg.NewFinder(cat, maxbcg.DefaultParams(), 0)
	if err != nil {
		t.Fatal(err)
	}
	sqlRes, err := finder.Run(target)
	if err != nil {
		t.Fatal(err)
	}

	if len(tamRes.Clusters) != len(sqlRes.Clusters) {
		t.Fatalf("cluster counts differ: TAM %d vs SQL %d", len(tamRes.Clusters), len(sqlRes.Clusters))
	}
	for i := range tamRes.Clusters {
		a, b := tamRes.Clusters[i], sqlRes.Clusters[i]
		if a.ObjID != b.ObjID || a.NGal != b.NGal || math.Abs(a.Chi2-b.Chi2) > 1e-9 {
			t.Fatalf("cluster %d differs: %+v vs %+v", i, a, b)
		}
	}
	// Candidates inside the target must agree too.
	var sqlInT []maxbcg.Candidate
	for _, c := range sqlRes.Candidates {
		if target.Contains(c.Ra, c.Dec) {
			sqlInT = append(sqlInT, c)
		}
	}
	if len(tamRes.Candidates) != len(sqlInT) {
		t.Fatalf("target candidates differ: TAM %d vs SQL %d", len(tamRes.Candidates), len(sqlInT))
	}
	for i := range tamRes.Candidates {
		if tamRes.Candidates[i].ObjID != sqlInT[i].ObjID {
			t.Fatalf("candidate %d differs", i)
		}
	}
}

func TestSmallBufferLosesBorderNeighbors(t *testing.T) {
	// Figure 1's compromise quantified: with the paper's 0.25° buffer,
	// border candidates see truncated neighbourhoods, so some weighted
	// likelihoods drop relative to the 0.5° run.
	cat := testCatalog(t, 11)
	target := astro.MustBox(195.0, 195.5, 2.2, 2.7)

	small := DefaultConfig()
	small.Kcorr = cat.Kcorr
	big := small
	big.BufferDeg = 0.5

	smallRes, err := Run(cat, target, small, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	bigRes, err := Run(cat, target, big, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// The big buffer can only add neighbours: for candidates present in
	// both runs, ngal(big) >= ngal(small).
	smallBy := map[int64]maxbcg.Candidate{}
	for _, c := range smallRes.Candidates {
		smallBy[c.ObjID] = c
	}
	shrunk := 0
	for _, c := range bigRes.Candidates {
		if s, ok := smallBy[c.ObjID]; ok && s.Z == c.Z && c.NGal < s.NGal {
			shrunk++
		}
	}
	if shrunk > 0 {
		t.Errorf("%d candidates lost neighbours when the buffer grew", shrunk)
	}
}

func BenchmarkProcessField(b *testing.B) {
	cat, err := sky.Generate(sky.GenConfig{
		Region: astro.MustBox(194.5, 196.0, 1.9, 3.1),
		Seed:   21,
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	fields, err := StageFields(cat, astro.MustBox(195.0, 195.5, 2.3, 2.8), cfg, b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ProcessField(fields[0], cfg); err != nil {
			b.Fatal(err)
		}
	}
}

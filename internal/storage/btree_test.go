package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
)

func newTestTree(t *testing.T, frames int) (*BTree, *Pool) {
	t.Helper()
	pool := NewPool(NewMemStore(), PoolOptions{Frames: frames})
	tr, err := NewBTree(pool)
	if err != nil {
		t.Fatal(err)
	}
	return tr, pool
}

func TestBTreeBasic(t *testing.T) {
	tr, _ := newTestTree(t, 16)
	if err := tr.Insert([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := tr.Get([]byte("k1"))
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("Get = %q, %v, %v", v, ok, err)
	}
	if _, ok, _ := tr.Get([]byte("nope")); ok {
		t.Error("found a missing key")
	}
	// Upsert replaces.
	if err := tr.Insert([]byte("k1"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	v, _, _ = tr.Get([]byte("k1"))
	if string(v) != "v2" {
		t.Errorf("after upsert Get = %q", v)
	}
	if n, _ := tr.Len(); n != 1 {
		t.Errorf("Len = %d after upsert", n)
	}
}

func TestBTreeRejectsBadRecords(t *testing.T) {
	tr, _ := newTestTree(t, 16)
	if err := tr.Insert(nil, []byte("v")); err == nil {
		t.Error("empty key accepted")
	}
	if err := tr.Insert([]byte("k"), make([]byte, MaxRecordSize)); err == nil {
		t.Error("oversized record accepted")
	}
}

func TestBTreeManyKeysOrderedScan(t *testing.T) {
	tr, _ := newTestTree(t, 64)
	const n = 20000
	perm := rand.New(rand.NewSource(5)).Perm(n)
	for _, i := range perm {
		key := AppendInt64(nil, int64(i))
		val := []byte(fmt.Sprintf("value-%d", i))
		if err := tr.Insert(key, val); err != nil {
			t.Fatal(err)
		}
	}
	// Full scan must return all keys in order.
	c, err := tr.First()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < n; i++ {
		if !c.Valid() {
			t.Fatalf("cursor exhausted at %d of %d", i, n)
		}
		k, _, err := DecodeInt64(c.Key())
		if err != nil {
			t.Fatal(err)
		}
		if k != int64(i) {
			t.Fatalf("scan position %d has key %d", i, k)
		}
		if want := fmt.Sprintf("value-%d", i); string(c.Value()) != want {
			t.Fatalf("key %d value %q, want %q", i, c.Value(), want)
		}
		if err := c.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if c.Valid() {
		t.Error("cursor has extra records past n")
	}
}

func TestBTreeSeek(t *testing.T) {
	tr, _ := newTestTree(t, 64)
	for i := 0; i < 1000; i += 2 { // even keys only
		if err := tr.Insert(AppendInt64(nil, int64(i)), []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1000; i++ {
		c, err := tr.Seek(AppendInt64(nil, int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		want := int64(i)
		if i%2 == 1 {
			want = int64(i + 1)
		}
		if want >= 1000 {
			if c.Valid() {
				t.Fatalf("Seek(%d) should be exhausted", i)
			}
		} else {
			k, _, _ := DecodeInt64(c.Key())
			if k != want {
				t.Fatalf("Seek(%d) landed on %d, want %d", i, k, want)
			}
		}
		c.Close()
	}
}

func TestBTreeDelete(t *testing.T) {
	tr, _ := newTestTree(t, 64)
	for i := 0; i < 500; i++ {
		tr.Insert(AppendInt64(nil, int64(i)), []byte("x"))
	}
	for i := 0; i < 500; i += 3 {
		ok, err := tr.Delete(AppendInt64(nil, int64(i)))
		if err != nil || !ok {
			t.Fatalf("Delete(%d) = %v, %v", i, ok, err)
		}
	}
	if ok, _ := tr.Delete(AppendInt64(nil, 0)); ok {
		t.Error("second delete of the same key reported found")
	}
	for i := 0; i < 500; i++ {
		_, ok, _ := tr.Get(AppendInt64(nil, int64(i)))
		if want := i%3 != 0; ok != want {
			t.Fatalf("after delete, Get(%d) present=%v want %v", i, ok, want)
		}
	}
}

// TestBTreeOracle drives random upserts/deletes and compares against a map,
// then verifies a full ordered scan, with a tiny pool to force eviction.
func TestBTreeOracle(t *testing.T) {
	tr, pool := newTestTree(t, 8)
	oracle := map[string]string{}
	rng := rand.New(rand.NewSource(99))
	for op := 0; op < 30000; op++ {
		k := fmt.Sprintf("key-%05d", rng.Intn(5000))
		switch rng.Intn(3) {
		case 0, 1:
			v := fmt.Sprintf("val-%d", op)
			if err := tr.Insert([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
			oracle[k] = v
		case 2:
			ok, err := tr.Delete([]byte(k))
			if err != nil {
				t.Fatal(err)
			}
			_, inOracle := oracle[k]
			if ok != inOracle {
				t.Fatalf("delete %q found=%v oracle=%v", k, ok, inOracle)
			}
			delete(oracle, k)
		}
	}
	// Point queries.
	for k, v := range oracle {
		got, ok, err := tr.Get([]byte(k))
		if err != nil || !ok || string(got) != v {
			t.Fatalf("Get(%q) = %q, %v, %v; want %q", k, got, ok, err, v)
		}
	}
	// Ordered scan equals sorted oracle.
	keys := make([]string, 0, len(oracle))
	for k := range oracle {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	c, err := tr.First()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, k := range keys {
		if !c.Valid() {
			t.Fatalf("cursor exhausted before %q", k)
		}
		if string(c.Key()) != k {
			t.Fatalf("scan got %q, want %q", c.Key(), k)
		}
		if err := c.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if c.Valid() {
		t.Errorf("scan has extra key %q", c.Key())
	}
	// Eviction must have happened with only 8 frames.
	if s := pool.Stats(); s.PhysicalWrites == 0 {
		t.Error("expected physical writes from eviction with an 8-frame pool")
	}
}

func TestBTreePersistsThroughFileStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tree.db")
	store, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(store, PoolOptions{Frames: 16})
	tr, err := NewBTree(pool)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		if err := tr.Insert(AppendInt64(nil, int64(i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	root := tr.Root()
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and read back.
	store2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	pool2 := NewPool(store2, PoolOptions{Frames: 16})
	tr2 := OpenBTree(pool2, root)
	for _, i := range []int64{0, 1, 1500, 2999} {
		v, ok, err := tr2.Get(AppendInt64(nil, i))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("after reopen Get(%d) = %q, %v, %v", i, v, ok, err)
		}
	}
	if n, _ := tr2.Len(); n != 3000 {
		t.Errorf("after reopen Len = %d", n)
	}
}

func TestBTreeCompositeKeyOrdering(t *testing.T) {
	// (zoneID int64, ra float64) composite keys must scan in (zone, ra)
	// order — this is the clustered order spZone builds.
	tr, _ := newTestTree(t, 32)
	type zr struct {
		zone int64
		ra   float64
	}
	var want []zr
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 3000; i++ {
		e := zr{zone: int64(rng.Intn(20)), ra: float64(rng.Intn(100000)) / 100}
		key := AppendInt64(nil, e.zone)
		key = AppendFloat64(key, e.ra)
		key = AppendInt64(key, int64(i)) // objid tiebreak
		if err := tr.Insert(key, []byte{}); err != nil {
			t.Fatal(err)
		}
		want = append(want, e)
	}
	sort.Slice(want, func(i, j int) bool {
		if want[i].zone != want[j].zone {
			return want[i].zone < want[j].zone
		}
		return want[i].ra < want[j].ra
	})
	c, err := tr.First()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; c.Valid(); i++ {
		zone, rest, _ := DecodeInt64(c.Key())
		ra, _, _ := DecodeFloat64(rest)
		if zone != want[i].zone || ra != want[i].ra {
			t.Fatalf("position %d: (%d, %g), want (%d, %g)", i, zone, ra, want[i].zone, want[i].ra)
		}
		if err := c.Next(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBTreeLargeValuesForceSplits(t *testing.T) {
	tr, _ := newTestTree(t, 32)
	val := bytes.Repeat([]byte("x"), 1500)
	for i := 0; i < 200; i++ {
		if err := tr.Insert(AppendInt64(nil, int64(i)), val); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := tr.Len(); n != 200 {
		t.Fatalf("Len = %d", n)
	}
	for i := 0; i < 200; i++ {
		v, ok, err := tr.Get(AppendInt64(nil, int64(i)))
		if err != nil || !ok || len(v) != 1500 {
			t.Fatalf("Get(%d) after splits: ok=%v len=%d err=%v", i, ok, len(v), err)
		}
	}
}

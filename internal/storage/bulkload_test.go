package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// bulkKV generates the i-th test pair: an order-preserving int64 key and a
// value whose length varies a little so page boundaries move around.
func bulkKV(i int) (key, value []byte) {
	key = AppendInt64(nil, int64(i))
	value = make([]byte, 24+i%7)
	for j := range value {
		value[j] = byte(i + j)
	}
	return key, value
}

func bulkLoadN(t testing.TB, pool *Pool, n int) *BTree {
	t.Helper()
	b, err := NewBulkLoader(pool)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		k, v := bulkKV(i)
		if err := b.Add(k, v); err != nil {
			t.Fatalf("Add(%d): %v", i, err)
		}
	}
	tree, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// checkTreeInvariants walks the whole tree and verifies the B+tree
// invariants a bottom-up load must preserve:
//
//   - every leaf is at the same depth,
//   - keys are strictly ascending within and across pages,
//   - internal separators equal the min key of their child's subtree,
//   - every page except the rightmost spine is at least half full,
//   - the record count matches n.
func checkTreeInvariants(t *testing.T, tree *BTree, n int) {
	t.Helper()
	var (
		leafDepth = -1
		seen      int
		prevKey   []byte
	)
	// usable is the record area available to a page (slotted header aside).
	usable := PageSize - nodeReserve - 4
	var walk func(id PageID, depth int, rightmost bool, lower []byte) (minKey []byte)
	walk = func(id PageID, depth int, rightmost bool, lower []byte) []byte {
		h, err := tree.pool.Get(id)
		if err != nil {
			t.Fatalf("page %d: %v", id, err)
		}
		defer h.Release(false)
		p := AsSlotted(h.Buf, nodeReserve)
		if !rightmost && usable-p.FreeSpace() < usable/2 {
			t.Errorf("page %d at depth %d is under half full (%d of %d bytes) off the rightmost spine",
				id, depth, usable-p.FreeSpace(), usable)
		}
		if h.Buf[0] == nodeLeaf {
			if leafDepth < 0 {
				leafDepth = depth
			} else if depth != leafDepth {
				t.Errorf("leaf %d at depth %d, want %d", id, depth, leafDepth)
			}
			var min []byte
			for i := 0; i < p.NumSlots(); i++ {
				k, _ := splitLeafRecord(p.Record(i))
				if prevKey != nil && bytes.Compare(k, prevKey) <= 0 {
					t.Errorf("leaf %d slot %d: key not strictly ascending", id, i)
				}
				prevKey = append(prevKey[:0], k...)
				if i == 0 {
					min = append([]byte(nil), k...)
				}
				seen++
			}
			if lower != nil && min != nil && !bytes.Equal(min, lower) {
				t.Errorf("leaf %d min key differs from parent separator", id)
			}
			return min
		}
		// Internal node: leftmost child inherits the lower bound, each
		// record's child subtree must start exactly at the separator.
		nslots := p.NumSlots()
		if nslots == 0 {
			t.Errorf("internal page %d has no separators", id)
		}
		min := walk(getChild(h.Buf), depth+1, false, lower)
		for i := 0; i < nslots; i++ {
			k, child := splitInternalRecord(p.Record(i))
			sep := append([]byte(nil), k...)
			walk(child, depth+1, rightmost && i == nslots-1, sep)
		}
		return min
	}
	walk(tree.Root(), 0, true, nil)
	if seen != n {
		t.Errorf("tree holds %d records, want %d", seen, n)
	}
}

// leafCapacity computes how many bulkKV-sized records fit in one leaf, to
// aim the size sweep straight at the page boundary.
func leafCapacity() int {
	usable := PageSize - nodeReserve - 4
	used, n := 0, 0
	for {
		k, v := bulkKV(n)
		cost := 2 + len(k) + len(v) + slotEntrySize
		if used+cost > usable {
			return n
		}
		used += cost
		n++
	}
}

func TestBulkLoaderInvariants(t *testing.T) {
	capacity := leafCapacity()
	sizes := []int{0, 1, capacity - 1, capacity, capacity + 1, 10000}
	for _, n := range sizes {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			pool := NewPool(NewMemStore(), PoolOptions{Frames: 512})
			tree := bulkLoadN(t, pool, n)
			checkTreeInvariants(t, tree, n)
			if got, err := tree.Len(); err != nil || got != n {
				t.Fatalf("Len() = %d, %v; want %d", got, err, n)
			}
		})
	}
}

// TestBulkLoaderInvariantsFuzz is the fuzz-style sweep: random sizes and
// random (sorted) key gaps, every tree fully invariant-checked.
func TestBulkLoaderInvariantsFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(20040801))
	for round := 0; round < 20; round++ {
		n := rng.Intn(4000)
		pool := NewPool(NewMemStore(), PoolOptions{Frames: 512})
		b, err := NewBulkLoader(pool)
		if err != nil {
			t.Fatal(err)
		}
		key := int64(0)
		for i := 0; i < n; i++ {
			key += 1 + int64(rng.Intn(1000))
			v := make([]byte, rng.Intn(120))
			if err := b.Add(AppendInt64(nil, key), v); err != nil {
				t.Fatalf("round %d Add(%d): %v", round, i, err)
			}
		}
		tree, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		checkTreeInvariants(t, tree, n)
	}
}

// TestBulkLoadMatchesInsert is the storage half of the equivalence
// guarantee: a bulk-loaded tree must yield the exact cursor stream of a
// tree built by per-record Insert.
func TestBulkLoadMatchesInsert(t *testing.T) {
	const n = 5000
	pool := NewPool(NewMemStore(), PoolOptions{Frames: 1024})
	bulk := bulkLoadN(t, pool, n)
	ins, err := NewBTree(pool)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		k, v := bulkKV(i)
		if err := ins.Insert(k, v); err != nil {
			t.Fatal(err)
		}
	}
	bc, err := bulk.First()
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	ic, err := ins.First()
	if err != nil {
		t.Fatal(err)
	}
	defer ic.Close()
	for i := 0; ; i++ {
		if bc.Valid() != ic.Valid() {
			t.Fatalf("cursor lengths diverge at record %d", i)
		}
		if !bc.Valid() {
			break
		}
		if !bytes.Equal(bc.Key(), ic.Key()) || !bytes.Equal(bc.Value(), ic.Value()) {
			t.Fatalf("record %d differs between bulk and insert trees", i)
		}
		if err := bc.Next(); err != nil {
			t.Fatal(err)
		}
		if err := ic.Next(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBulkLoadThenInsert trickles records into a bulk-loaded tree: packed
// pages must split correctly and point lookups keep working.
func TestBulkLoadThenInsert(t *testing.T) {
	const n = 3000
	pool := NewPool(NewMemStore(), PoolOptions{Frames: 512})
	tree := bulkLoadN(t, pool, n)
	// Interleave new keys between the loaded ones (odd offsets above n).
	for i := 0; i < n; i += 2 {
		k := AppendInt64(nil, int64(n+i))
		if err := tree.Insert(k, []byte("trickle")); err != nil {
			t.Fatal(err)
		}
	}
	want := n + n/2
	if got, err := tree.Len(); err != nil || got != want {
		t.Fatalf("Len() = %d, %v; want %d", got, err, want)
	}
	for i := 0; i < n; i++ {
		k, v := bulkKV(i)
		got, ok, err := tree.Get(k)
		if err != nil || !ok || !bytes.Equal(got, v) {
			t.Fatalf("Get(bulk key %d) = %v, %v, %v", i, got, ok, err)
		}
	}
}

func TestBulkLoaderErrors(t *testing.T) {
	pool := NewPool(NewMemStore(), PoolOptions{Frames: 64})
	b, err := NewBulkLoader(pool)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Add([]byte{}, nil); err == nil {
		t.Error("empty key accepted")
	}
	if err := b.Add([]byte("b"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := b.Add([]byte("b"), []byte("2")); err == nil {
		t.Error("duplicate key accepted")
	}
	if err := b.Add([]byte("a"), []byte("3")); err == nil {
		t.Error("descending key accepted")
	}
	if err := b.Add([]byte("c"), make([]byte, MaxRecordSize)); err == nil {
		t.Error("oversized record accepted")
	}
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := b.Add([]byte("d"), nil); err == nil {
		t.Error("Add after Finish accepted")
	}
	if _, err := b.Finish(); err == nil {
		t.Error("double Finish accepted")
	}

	// Abort releases pins so the pool can evict the loader's pages.
	b2, err := NewBulkLoader(pool)
	if err != nil {
		t.Fatal(err)
	}
	if err := b2.Add([]byte("x"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	b2.Abort()
	b2.Abort() // idempotent
}

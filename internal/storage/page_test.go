package storage

import (
	"bytes"
	"fmt"
	"testing"
)

func TestSlottedInsertAndRead(t *testing.T) {
	buf := make([]byte, PageSize)
	p := InitSlotted(buf, 5)
	recs := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma")}
	for i, r := range recs {
		slot, ok := p.Insert(r)
		if !ok || slot != i {
			t.Fatalf("insert %d: slot %d ok %v", i, slot, ok)
		}
	}
	for i, r := range recs {
		if got := p.Record(i); !bytes.Equal(got, r) {
			t.Errorf("record %d = %q, want %q", i, got, r)
		}
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSlottedInsertAtOrdering(t *testing.T) {
	buf := make([]byte, PageSize)
	p := InitSlotted(buf, 0)
	p.Insert([]byte("b"))
	p.Insert([]byte("d"))
	if !p.InsertAt(0, []byte("a")) {
		t.Fatal("InsertAt(0) failed")
	}
	if !p.InsertAt(2, []byte("c")) {
		t.Fatal("InsertAt(2) failed")
	}
	want := []string{"a", "b", "c", "d"}
	for i, w := range want {
		if got := string(p.Record(i)); got != w {
			t.Errorf("slot %d = %q, want %q", i, got, w)
		}
	}
}

func TestSlottedFull(t *testing.T) {
	buf := make([]byte, PageSize)
	p := InitSlotted(buf, 5)
	rec := make([]byte, 100)
	n := 0
	for {
		if _, ok := p.Insert(rec); !ok {
			break
		}
		n++
	}
	// 8192-ish bytes / (100 + 4 slot bytes) ~ 78 records.
	if n < 70 || n > 85 {
		t.Errorf("page held %d 100-byte records", n)
	}
	if p.FreeSpace() >= 104 {
		t.Errorf("page claims %d free after fill", p.FreeSpace())
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSlottedDeleteCompact(t *testing.T) {
	buf := make([]byte, PageSize)
	p := InitSlotted(buf, 0)
	for i := 0; i < 10; i++ {
		p.Insert([]byte(fmt.Sprintf("record-%02d", i)))
	}
	p.Delete(3)
	p.Delete(7)
	if p.Record(3) != nil || p.Record(7) != nil {
		t.Fatal("deleted slots still return data")
	}
	before := p.FreeSpace()
	p.Compact()
	after := p.FreeSpace()
	if after <= before {
		t.Errorf("compact did not reclaim space: %d -> %d", before, after)
	}
	// Live slots unchanged.
	for _, i := range []int{0, 1, 2, 4, 5, 6, 8, 9} {
		want := fmt.Sprintf("record-%02d", i)
		if got := string(p.Record(i)); got != want {
			t.Errorf("slot %d = %q after compact, want %q", i, got, want)
		}
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSlottedRemoveAt(t *testing.T) {
	buf := make([]byte, PageSize)
	p := InitSlotted(buf, 0)
	for _, s := range []string{"a", "b", "c"} {
		p.Insert([]byte(s))
	}
	p.RemoveAt(1)
	if p.NumSlots() != 2 {
		t.Fatalf("NumSlots = %d", p.NumSlots())
	}
	if string(p.Record(0)) != "a" || string(p.Record(1)) != "c" {
		t.Errorf("RemoveAt left %q, %q", p.Record(0), p.Record(1))
	}
}

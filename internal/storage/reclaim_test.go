package storage

import "testing"

// TestReclaimerSnapshotLifecycle pins the ticket-epoch protocol end to
// end: with no live guards a retired batch frees immediately; a guard
// entered before the retire defers the free until it releases; a guard
// entered after the retire never holds the batch up.
func TestReclaimerSnapshotLifecycle(t *testing.T) {
	store := NewMemStore()
	pool := NewPool(store, PoolOptions{Frames: 8})
	rec := NewReclaimer(pool)

	newPage := func() PageID {
		h, err := pool.New()
		if err != nil {
			t.Fatal(err)
		}
		id := h.ID
		h.Release(false)
		return id
	}

	// No guards: immediate free, and the id returns to the store's free
	// list (the next Allocate reuses it).
	a := newPage()
	rec.Retire([]PageID{a})
	if n := rec.Pending(); n != 0 {
		t.Fatalf("pending after unguarded retire = %d, want 0", n)
	}
	if got := newPage(); got != a {
		t.Fatalf("freed page not reused: got %d, want %d", got, a)
	}

	// A guard entered before the retire pins the batch.
	b := newPage()
	early := rec.Enter()
	rec.Retire([]PageID{b})
	if n := rec.Pending(); n != 1 {
		t.Fatalf("pending under guard = %d, want 1", n)
	}
	// A guard entered after the retire has a ticket beyond the stamp: its
	// release must not free the batch (the early guard still can reach it)
	// and its presence must not block the free once the early guard goes.
	late := rec.Enter()
	late.Release()
	if n := rec.Pending(); n != 1 {
		t.Fatalf("pending after late-guard release = %d, want 1", n)
	}
	early.Release()
	if n := rec.Pending(); n != 0 {
		t.Fatalf("pending after early-guard release = %d, want 0", n)
	}

	// Release is idempotent and nil-safe.
	early.Release()
	(*Guard)(nil).Release()
}

// TestReclaimerPinnedPageLeaks pins the skip-and-leak contract: freeing a
// batch whose page is still pinned in the pool must neither block nor
// return the id to the store (a reuse under the pin would corrupt the
// reader); the page simply stays allocated.
func TestReclaimerPinnedPageLeaks(t *testing.T) {
	store := NewMemStore()
	pool := NewPool(store, PoolOptions{Frames: 8})
	rec := NewReclaimer(pool)

	h, err := pool.New()
	if err != nil {
		t.Fatal(err)
	}
	rec.Retire([]PageID{h.ID})
	if n := rec.Pending(); n != 0 {
		t.Fatalf("pending = %d, want 0 (the batch was collected, the free skipped)", n)
	}
	// The pinned page must not be on the free list: a fresh allocation
	// gets a new id.
	h2, err := pool.New()
	if err != nil {
		t.Fatal(err)
	}
	if h2.ID == h.ID {
		t.Fatalf("pinned page %d was reallocated under its pin", h.ID)
	}
	h2.Release(false)
	h.Release(false)
}

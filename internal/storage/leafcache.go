package storage

// LeafCache is a tiny per-worker cache of pinned pages in front of the
// buffer pool. A sweep cursor that re-seeks many times inside one zone
// descends the same root/internal pages and lands on the same handful of
// leaves over and over; routing those fetches through a LeafCache turns
// the repeats into pointer lookups that never touch the pool (no shard
// lock, no LogicalRead).
//
// Invariants the caller must uphold:
//
//   - The cached pages must be immutable while the cache holds them
//     (sweeps run over frozen zone tables; the cache is not for writers).
//   - A buffer returned by Get stays valid until that entry is evicted
//     or Reset is called. The cache is LRU with small capacity, so a
//     caller may rely on the last `capacity` distinct pages it touched —
//     a B+tree descent (depth ≪ capacity) plus the current leaf fits.
//   - The cache pins every resident page, so its capacity counts against
//     the pool's free frames; keep it small (the default 8 is plenty for
//     a descent) and Reset it when the worker goes idle.
//
// Sweep workers Reset the cache at every zone boundary. That keeps the
// pool's I/O accounting deterministic: each zone's fetch sequence is then
// a pure function of that zone's windows, so io-ops are bit-identical no
// matter how zones are scheduled across workers.
//
// A LeafCache is owned by one goroutine and is not safe for concurrent use.
type LeafCache struct {
	pool *Pool
	cap  int
	ids  []PageID // ids[i] owns hs[i]; most recently used last
	hs   []*Handle
}

// DefaultLeafCacheFrames is the per-worker cache capacity the sweep
// cursors use: deep enough for a full descent plus the active leaf run,
// small enough that eight workers' caches don't dent a 4096-frame pool.
const DefaultLeafCacheFrames = 8

// NewLeafCache returns a cache holding at most capacity pinned pages
// (minimum 2: a descent needs the parent and the child live at once).
func NewLeafCache(pool *Pool, capacity int) *LeafCache {
	if capacity < 2 {
		capacity = 2
	}
	return &LeafCache{
		pool: pool,
		cap:  capacity,
		ids:  make([]PageID, 0, capacity),
		hs:   make([]*Handle, 0, capacity),
	}
}

// Get returns the page's bytes, fetching and pinning it on first touch.
// The returned buffer aliases the pool frame and stays valid until this
// entry is evicted (at least cap-1 distinct Gets away) or Reset runs.
func (c *LeafCache) Get(id PageID) ([]byte, error) {
	for i := len(c.ids) - 1; i >= 0; i-- {
		if c.ids[i] == id {
			if i != len(c.ids)-1 { // move to MRU position
				h := c.hs[i]
				copy(c.ids[i:], c.ids[i+1:])
				copy(c.hs[i:], c.hs[i+1:])
				c.ids[len(c.ids)-1] = id
				c.hs[len(c.hs)-1] = h
			}
			return c.hs[len(c.hs)-1].Buf, nil
		}
	}
	h, err := c.pool.Get(id)
	if err != nil {
		return nil, err
	}
	if len(c.ids) == c.cap { // evict LRU
		c.hs[0].Release(false)
		copy(c.ids, c.ids[1:])
		copy(c.hs, c.hs[1:])
		c.ids = c.ids[:len(c.ids)-1]
		c.hs = c.hs[:len(c.hs)-1]
	}
	c.ids = append(c.ids, id)
	c.hs = append(c.hs, h)
	return h.Buf, nil
}

// Reset releases every cached pin. Buffers previously returned by Get
// are invalid afterwards. The cache remains usable.
func (c *LeafCache) Reset() {
	for _, h := range c.hs {
		h.Release(false)
	}
	c.ids = c.ids[:0]
	c.hs = c.hs[:0]
}

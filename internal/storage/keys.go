package storage

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Order-preserving key encodings: for any two values a < b of the same type,
// bytes.Compare(Append*(nil,a), Append*(nil,b)) < 0. Composite keys are
// built by appending encodings in significance order, which is how the
// engine encodes the (zoneID, ra, objID) clustered key of the Zone table.

// AppendInt64 appends a big-endian, sign-flipped encoding of v.
func AppendInt64(dst []byte, v int64) []byte {
	u := uint64(v) ^ (1 << 63)
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], u)
	return append(dst, b[:]...)
}

// DecodeInt64 decodes a key produced by AppendInt64 and returns the rest.
func DecodeInt64(src []byte) (int64, []byte, error) {
	if len(src) < 8 {
		return 0, nil, fmt.Errorf("storage: short int64 key (%d bytes)", len(src))
	}
	u := binary.BigEndian.Uint64(src) ^ (1 << 63)
	return int64(u), src[8:], nil
}

// AppendFloat64 appends an order-preserving encoding of f. NaN sorts above
// +Inf (it never occurs in well-formed data; the encoding just needs to be
// total).
func AppendFloat64(dst []byte, f float64) []byte {
	u := math.Float64bits(f)
	if u&(1<<63) != 0 {
		u = ^u // negative: flip all bits
	} else {
		u |= 1 << 63 // positive: flip sign bit
	}
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], u)
	return append(dst, b[:]...)
}

// DecodeFloat64 decodes a key produced by AppendFloat64 and returns the rest.
func DecodeFloat64(src []byte) (float64, []byte, error) {
	if len(src) < 8 {
		return 0, nil, fmt.Errorf("storage: short float64 key (%d bytes)", len(src))
	}
	u := binary.BigEndian.Uint64(src)
	if u&(1<<63) != 0 {
		u &^= 1 << 63
	} else {
		u = ^u
	}
	return math.Float64frombits(u), src[8:], nil
}

// AppendString appends an order-preserving, self-delimiting encoding of s:
// 0x00 bytes are escaped as 0x00 0xFF and the value is terminated by
// 0x00 0x00, so longer strings with a common prefix sort after shorter ones
// and the next key component starts unambiguously.
func AppendString(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		dst = append(dst, c)
		if c == 0x00 {
			dst = append(dst, 0xFF)
		}
	}
	return append(dst, 0x00, 0x00)
}

// DecodeString decodes a key produced by AppendString and returns the rest.
func DecodeString(src []byte) (string, []byte, error) {
	var out []byte
	for i := 0; i < len(src); i++ {
		c := src[i]
		if c != 0x00 {
			out = append(out, c)
			continue
		}
		if i+1 >= len(src) {
			return "", nil, fmt.Errorf("storage: truncated string key")
		}
		switch src[i+1] {
		case 0x00:
			return string(out), src[i+2:], nil
		case 0xFF:
			out = append(out, 0x00)
			i++
		default:
			return "", nil, fmt.Errorf("storage: malformed string key escape 0x%02x", src[i+1])
		}
	}
	return "", nil, fmt.Errorf("storage: unterminated string key")
}

// AppendBool appends 0x00 for false, 0x01 for true.
func AppendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// DecodeBool decodes a key produced by AppendBool and returns the rest.
func DecodeBool(src []byte) (bool, []byte, error) {
	if len(src) < 1 {
		return false, nil, fmt.Errorf("storage: short bool key")
	}
	return src[0] != 0, src[1:], nil
}

package storage

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestInt64KeyOrderProperty(t *testing.T) {
	f := func(a, b int64) bool {
		ka := AppendInt64(nil, a)
		kb := AppendInt64(nil, b)
		cmp := bytes.Compare(ka, kb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestInt64KeyRoundTripProperty(t *testing.T) {
	f := func(a int64) bool {
		v, rest, err := DecodeInt64(AppendInt64(nil, a))
		return err == nil && v == a && len(rest) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat64KeyOrderProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ka := AppendFloat64(nil, a)
		kb := AppendFloat64(nil, b)
		cmp := bytes.Compare(ka, kb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0 || a == 0 && b == 0 // -0.0 vs +0.0 differ in bits
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestFloat64KeyRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1, -1, 0.5, -273.15, 1e300, -1e300, math.Inf(1), math.Inf(-1), 195.163} {
		got, rest, err := DecodeFloat64(AppendFloat64(nil, v))
		if err != nil || got != v || len(rest) != 0 {
			t.Errorf("round trip %g -> %g (err %v)", v, got, err)
		}
	}
}

func TestStringKeyOrderProperty(t *testing.T) {
	f := func(a, b string) bool {
		ka := AppendString(nil, a)
		kb := AppendString(nil, b)
		cmp := bytes.Compare(ka, kb)
		want := bytes.Compare([]byte(a), []byte(b))
		return sign(cmp) == sign(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestStringKeyRoundTrip(t *testing.T) {
	cases := []string{"", "a", "abc", "with\x00null", "\x00", "\x00\x00", "trailing\x00", "ünïcodé"}
	for _, s := range cases {
		got, rest, err := DecodeString(AppendString(nil, s))
		if err != nil || got != s || len(rest) != 0 {
			t.Errorf("round trip %q -> %q (err %v, rest %d)", s, got, err, len(rest))
		}
	}
}

func TestStringKeySelfDelimiting(t *testing.T) {
	// A composite (string, int64) key must decode unambiguously.
	key := AppendString(nil, "zone\x00x")
	key = AppendInt64(key, 42)
	s, rest, err := DecodeString(key)
	if err != nil || s != "zone\x00x" {
		t.Fatalf("DecodeString = %q, %v", s, err)
	}
	v, rest, err := DecodeInt64(rest)
	if err != nil || v != 42 || len(rest) != 0 {
		t.Fatalf("DecodeInt64 = %d, %v", v, err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := DecodeInt64([]byte{1, 2}); err == nil {
		t.Error("short int64 key accepted")
	}
	if _, _, err := DecodeFloat64([]byte{1}); err == nil {
		t.Error("short float64 key accepted")
	}
	if _, _, err := DecodeString([]byte("no terminator")); err == nil {
		t.Error("unterminated string key accepted")
	}
	if _, _, err := DecodeString([]byte{0x00, 0x07}); err == nil {
		t.Error("bad escape accepted")
	}
	if _, _, err := DecodeBool(nil); err == nil {
		t.Error("short bool key accepted")
	}
}

func TestBoolKey(t *testing.T) {
	kf := AppendBool(nil, false)
	kt := AppendBool(nil, true)
	if bytes.Compare(kf, kt) >= 0 {
		t.Error("false must sort before true")
	}
	b, rest, err := DecodeBool(kt)
	if err != nil || !b || len(rest) != 0 {
		t.Error("bool round trip failed")
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

package storage

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Columnar page kind: internal/colstore stores column-major segments in
// pages of the same buffer pool that backs the B+tree, so segment I/O lands
// in the same LogicalReads/PhysicalReads/PhysicalWrites counters behind the
// paper's Table 1 I/O column. A segment page holds up to one page-full of
// one zone's rows with every column packed as a contiguous 8-byte-wide
// array; byte 0 distinguishes it from B+tree nodes (1 leaf, 2 internal).
//
// Page layout:
//
//	byte  0      page kind: PageKindColumnar
//	byte  1      format version (currently 1)
//	bytes 2-3    uint16 row count
//	bytes 4-7    reserved (zero)
//	bytes 8-15   int64 group key (colstore's grouping column, e.g. zoneid)
//	bytes 16-23  float64 min sort key (e.g. the segment's smallest ra)
//	bytes 24-31  float64 max sort key (e.g. the segment's largest ra)
//	bytes 32-    column arrays, 8 x row count bytes each, in schema order
const (
	// PageKindColumnar tags a column-major segment page.
	PageKindColumnar = 3
	columnarVersion  = 1
	// ColumnarHeaderSize is the byte offset of the first column array.
	ColumnarHeaderSize = 32
)

// ColumnarHeader is the decoded fixed header of a columnar segment page.
// The min/max sort keys are the page-level pruning bound: a scan that knows
// its key window can skip fetching segments the window cannot reach.
type ColumnarHeader struct {
	Rows    int
	Group   int64
	MinSort float64
	MaxSort float64
}

// PutColumnarHeader formats buf (a full page) as a columnar segment page.
func PutColumnarHeader(buf []byte, h ColumnarHeader) {
	buf[0] = PageKindColumnar
	buf[1] = columnarVersion
	binary.LittleEndian.PutUint16(buf[2:], uint16(h.Rows))
	binary.LittleEndian.PutUint32(buf[4:], 0)
	binary.LittleEndian.PutUint64(buf[8:], uint64(h.Group))
	binary.LittleEndian.PutUint64(buf[16:], math.Float64bits(h.MinSort))
	binary.LittleEndian.PutUint64(buf[24:], math.Float64bits(h.MaxSort))
}

// ReadColumnarHeader decodes and validates the fixed header of a columnar
// segment page.
func ReadColumnarHeader(buf []byte) (ColumnarHeader, error) {
	if buf[0] != PageKindColumnar {
		return ColumnarHeader{}, fmt.Errorf("storage: page is not columnar (kind %d)", buf[0])
	}
	if buf[1] != columnarVersion {
		return ColumnarHeader{}, fmt.Errorf("storage: columnar page version %d, want %d", buf[1], columnarVersion)
	}
	return ColumnarHeader{
		Rows:    int(binary.LittleEndian.Uint16(buf[2:])),
		Group:   int64(binary.LittleEndian.Uint64(buf[8:])),
		MinSort: math.Float64frombits(binary.LittleEndian.Uint64(buf[16:])),
		MaxSort: math.Float64frombits(binary.LittleEndian.Uint64(buf[24:])),
	}, nil
}

package storage

import "testing"

// TestLeafCacheSkipsPool checks the cache's point: a repeat Get of a
// resident page costs no pool traffic (no LogicalRead), while misses and
// evictions behave like plain pool fetches.
func TestLeafCacheSkipsPool(t *testing.T) {
	pool := NewPool(NewMemStore(), PoolOptions{Frames: 32})
	var ids []PageID
	for i := 0; i < 8; i++ {
		h, err := pool.New()
		if err != nil {
			t.Fatal(err)
		}
		h.Buf[0] = byte(i + 1)
		ids = append(ids, h.ID)
		h.Release(true)
	}
	pool.ResetStats()

	lc := NewLeafCache(pool, 4)
	buf, err := lc.Get(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if buf[0] != 1 {
		t.Fatalf("page content = %d, want 1", buf[0])
	}
	if got := pool.Stats().LogicalReads; got != 1 {
		t.Fatalf("LogicalReads after first Get = %d, want 1", got)
	}
	for i := 0; i < 10; i++ {
		if _, err := lc.Get(ids[0]); err != nil {
			t.Fatal(err)
		}
	}
	if got := pool.Stats().LogicalReads; got != 1 {
		t.Errorf("LogicalReads after cached repeats = %d, want 1", got)
	}

	// Fill past capacity: ids[0] becomes LRU after touching 4 others.
	for _, id := range ids[1:5] {
		if _, err := lc.Get(id); err != nil {
			t.Fatal(err)
		}
	}
	if got := pool.Stats().LogicalReads; got != 5 {
		t.Errorf("LogicalReads after 4 misses = %d, want 5", got)
	}
	// ids[0] was evicted; fetching it again is a pool read.
	if _, err := lc.Get(ids[0]); err != nil {
		t.Fatal(err)
	}
	if got := pool.Stats().LogicalReads; got != 6 {
		t.Errorf("LogicalReads after re-fetch of evicted entry = %d, want 6", got)
	}
	lc.Reset()
}

// TestLeafCacheResetReleasesPins proves Reset drops every pin: an
// 8-frame pool fully pinned through a cache must recover after Reset.
func TestLeafCacheResetReleasesPins(t *testing.T) {
	pool := NewPool(NewMemStore(), PoolOptions{Frames: 8})
	var ids []PageID
	for i := 0; i < 8; i++ {
		h, err := pool.New()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, h.ID)
		h.Release(true)
	}
	lc := NewLeafCache(pool, 8)
	for _, id := range ids {
		if _, err := lc.Get(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := pool.New(); err == nil {
		t.Fatal("expected exhaustion with every frame cached")
	}
	lc.Reset()
	h, err := pool.New()
	if err != nil {
		t.Fatalf("pool did not recover after cache Reset: %v", err)
	}
	h.Release(true)

	// The cache stays usable after Reset.
	if _, err := lc.Get(ids[0]); err != nil {
		t.Fatal(err)
	}
	lc.Reset()
}

// TestCursorCacheModeMatchesPinned runs the same range scan through a
// pinning cursor and a cached cursor and requires identical sequences,
// with the cached re-seeks costing fewer pool reads.
func TestCursorCacheModeMatchesPinned(t *testing.T) {
	pool := NewPool(NewMemStore(), PoolOptions{Frames: 256})
	tr, err := NewBTree(pool)
	if err != nil {
		t.Fatal(err)
	}
	var keys [][]byte
	for i := 0; i < 2000; i++ {
		k := []byte{byte(i >> 8), byte(i)}
		v := make([]byte, 40)
		v[0] = byte(i)
		if err := tr.Insert(k, v); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}

	scan := func(c *Cursor) ([]byte, error) {
		var got []byte
		// Re-seek repeatedly inside a narrow band, like a zone sweep's
		// per-window seeks.
		for rep := 0; rep < 20; rep++ {
			if err := tr.SeekInto(keys[1000], c); err != nil {
				return nil, err
			}
			for n := 0; c.Valid() && n < 10; n++ {
				got = append(got, c.Key()...)
				got = append(got, c.Value()[0])
				if err := c.Next(); err != nil {
					return nil, err
				}
			}
		}
		return got, nil
	}

	pool.ResetStats()
	plain := &Cursor{}
	wantSeq, err := scan(plain)
	if err != nil {
		t.Fatal(err)
	}
	plain.Close()
	plainReads := pool.Stats().LogicalReads

	pool.ResetStats()
	lc := NewLeafCache(pool, DefaultLeafCacheFrames)
	cached := &Cursor{}
	cached.SetCache(lc)
	gotSeq, err := scan(cached)
	if err != nil {
		t.Fatal(err)
	}
	cached.Close()
	lc.Reset()
	cachedReads := pool.Stats().LogicalReads

	if string(gotSeq) != string(wantSeq) {
		t.Error("cached cursor produced a different record sequence")
	}
	if cachedReads >= plainReads {
		t.Errorf("cached re-seeks did not save pool reads: %d vs %d", cachedReads, plainReads)
	}
}

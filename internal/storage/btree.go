package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
)

// BTree is a B+tree over a buffer pool: the engine's clustered index.
// Keys are unique, order-preserving byte strings (see keys.go); Insert
// replaces the value of an existing key (upsert), which is what the
// paper's spZone re-runs rely on.
//
// Node page layout (reserve = 5 bytes before the slotted area):
//
//	byte 0     node type: 1 leaf, 2 internal
//	bytes 1-4  leaf: next-leaf PageID; internal: leftmost child PageID
//
// Leaf records are  uint16 keyLen | key | value.
// Internal records are  uint16 keyLen | key | uint32 childPageID, where the
// child holds keys >= key.
type BTree struct {
	mu   sync.RWMutex
	pool *Pool
	root PageID
}

const (
	nodeLeaf     = 1
	nodeInternal = 2
	nodeReserve  = 5
	// MaxRecordSize bounds key+value so a split always succeeds: four
	// max-size records must fit in a page.
	MaxRecordSize = (PageSize - nodeReserve - 4) / 4
)

// NewBTree creates an empty tree (a single leaf root).
func NewBTree(pool *Pool) (*BTree, error) {
	h, err := pool.New()
	if err != nil {
		return nil, err
	}
	h.Buf[0] = nodeLeaf
	putChild(h.Buf, InvalidPageID)
	InitSlotted(h.Buf, nodeReserve)
	root := h.ID
	h.Release(true)
	return &BTree{pool: pool, root: root}, nil
}

// OpenBTree re-attaches to an existing tree by its root page.
func OpenBTree(pool *Pool, root PageID) *BTree {
	return &BTree{pool: pool, root: root}
}

// Root returns the current root page id (it changes when the root splits).
func (t *BTree) Root() PageID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.root
}

func putChild(buf []byte, id PageID) { binary.LittleEndian.PutUint32(buf[1:5], uint32(id)) }
func getChild(buf []byte) PageID     { return PageID(binary.LittleEndian.Uint32(buf[1:5])) }

func leafRecord(key, value []byte) []byte {
	rec := make([]byte, 2+len(key)+len(value))
	binary.LittleEndian.PutUint16(rec, uint16(len(key)))
	copy(rec[2:], key)
	copy(rec[2+len(key):], value)
	return rec
}

func splitLeafRecord(rec []byte) (key, value []byte) {
	klen := int(binary.LittleEndian.Uint16(rec))
	return rec[2 : 2+klen], rec[2+klen:]
}

func internalRecord(key []byte, child PageID) []byte {
	rec := make([]byte, 2+len(key)+4)
	binary.LittleEndian.PutUint16(rec, uint16(len(key)))
	copy(rec[2:], key)
	binary.LittleEndian.PutUint32(rec[2+len(key):], uint32(child))
	return rec
}

func splitInternalRecord(rec []byte) (key []byte, child PageID) {
	klen := int(binary.LittleEndian.Uint16(rec))
	return rec[2 : 2+klen], PageID(binary.LittleEndian.Uint32(rec[2+klen:]))
}

// search returns the index of the first slot whose key is >= key, and
// whether an exact match exists at that index.
func search(p SlottedPage, key []byte, leaf bool) (int, bool) {
	lo, hi := 0, p.NumSlots()
	for lo < hi {
		mid := (lo + hi) / 2
		var k []byte
		if leaf {
			k, _ = splitLeafRecord(p.Record(mid))
		} else {
			k, _ = splitInternalRecord(p.Record(mid))
		}
		if bytes.Compare(k, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < p.NumSlots() {
		var k []byte
		if leaf {
			k, _ = splitLeafRecord(p.Record(lo))
		} else {
			k, _ = splitInternalRecord(p.Record(lo))
		}
		if bytes.Equal(k, key) {
			return lo, true
		}
	}
	return lo, false
}

// childFor returns the child page to descend into for key.
func childFor(buf []byte, key []byte) PageID {
	p := AsSlotted(buf, nodeReserve)
	idx, exact := search(p, key, false)
	if exact {
		_, c := splitInternalRecord(p.Record(idx))
		return c
	}
	if idx == 0 {
		return getChild(buf)
	}
	_, c := splitInternalRecord(p.Record(idx - 1))
	return c
}

type splitResult struct {
	sepKey []byte
	right  PageID
}

// Insert adds or replaces key's value.
func (t *BTree) Insert(key, value []byte) error {
	if len(key)+len(value)+2 > MaxRecordSize {
		return fmt.Errorf("storage: record for key of %d bytes exceeds max record size %d", len(key), MaxRecordSize)
	}
	if len(key) == 0 {
		return fmt.Errorf("storage: empty key")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	split, err := t.insert(t.root, key, value)
	if err != nil {
		return err
	}
	if split == nil {
		return nil
	}
	// Root split: create a new internal root.
	h, err := t.pool.New()
	if err != nil {
		return err
	}
	h.Buf[0] = nodeInternal
	putChild(h.Buf, t.root)
	p := InitSlotted(h.Buf, nodeReserve)
	if !p.InsertAt(0, internalRecord(split.sepKey, split.right)) {
		h.Release(true)
		return fmt.Errorf("storage: new root overflow")
	}
	t.root = h.ID
	h.Release(true)
	return nil
}

func (t *BTree) insert(id PageID, key, value []byte) (*splitResult, error) {
	h, err := t.pool.Get(id)
	if err != nil {
		return nil, err
	}
	if h.Buf[0] == nodeLeaf {
		defer h.Release(true)
		return t.insertLeaf(h, key, value)
	}
	child := childFor(h.Buf, key)
	h.Release(false)

	split, err := t.insert(child, key, value)
	if err != nil || split == nil {
		return nil, err
	}
	// Re-pin the parent and add the separator.
	h, err = t.pool.Get(id)
	if err != nil {
		return nil, err
	}
	defer h.Release(true)
	p := AsSlotted(h.Buf, nodeReserve)
	idx, _ := search(p, split.sepKey, false)
	rec := internalRecord(split.sepKey, split.right)
	if p.InsertAt(idx, rec) {
		return nil, nil
	}
	return t.splitInternal(h, idx, rec)
}

func (t *BTree) insertLeaf(h *Handle, key, value []byte) (*splitResult, error) {
	p := AsSlotted(h.Buf, nodeReserve)
	idx, exact := search(p, key, true)
	rec := leafRecord(key, value)
	if exact {
		p.RemoveAt(idx)
		p.Compact()
	}
	if p.InsertAt(idx, rec) {
		return nil, nil
	}
	p.Compact()
	if p.InsertAt(idx, rec) {
		return nil, nil
	}
	// Split: move the upper half of the records to a new right leaf.
	right, err := t.pool.New()
	if err != nil {
		return nil, err
	}
	defer right.Release(true)
	right.Buf[0] = nodeLeaf
	putChild(right.Buf, getChild(h.Buf)) // right.next = left.next
	rp := InitSlotted(right.Buf, nodeReserve)

	n := p.NumSlots()
	mid := n / 2
	for i := mid; i < n; i++ {
		if _, ok := rp.Insert(p.Record(i)); !ok {
			return nil, fmt.Errorf("storage: leaf split overflow")
		}
	}
	for i := n - 1; i >= mid; i-- {
		p.RemoveAt(i)
	}
	p.Compact()
	putChild(h.Buf, right.ID) // left.next = right

	// Insert the pending record into the correct side, then derive the
	// separator from the right leaf's (possibly new) first key.
	target, tidx := p, idx
	if idx >= mid {
		target, tidx = rp, idx-mid
	}
	if !target.InsertAt(tidx, rec) {
		return nil, fmt.Errorf("storage: leaf split could not place record")
	}
	sep, _ := splitLeafRecord(rp.Record(0))
	sepKey := append([]byte(nil), sep...)
	return &splitResult{sepKey: sepKey, right: right.ID}, nil
}

func (t *BTree) splitInternal(h *Handle, pendingIdx int, pendingRec []byte) (*splitResult, error) {
	p := AsSlotted(h.Buf, nodeReserve)
	p.Compact()
	if p.InsertAt(pendingIdx, pendingRec) {
		return nil, nil
	}
	right, err := t.pool.New()
	if err != nil {
		return nil, err
	}
	defer right.Release(true)
	right.Buf[0] = nodeInternal
	rp := InitSlotted(right.Buf, nodeReserve)

	n := p.NumSlots()
	mid := n / 2
	// The middle separator is promoted; its child becomes the right
	// node's leftmost child.
	midKey, midChild := splitInternalRecord(p.Record(mid))
	sepKey := append([]byte(nil), midKey...)
	putChild(right.Buf, midChild)
	for i := mid + 1; i < n; i++ {
		if _, ok := rp.Insert(p.Record(i)); !ok {
			return nil, fmt.Errorf("storage: internal split overflow")
		}
	}
	for i := n - 1; i >= mid; i-- {
		p.RemoveAt(i)
	}
	p.Compact()

	// Place the pending record on the correct side. A pending key at
	// index mid sorts below the promoted key, so it belongs at the end
	// of the left node.
	if pendingIdx <= mid {
		if !p.InsertAt(pendingIdx, pendingRec) {
			return nil, fmt.Errorf("storage: internal split could not place record (left)")
		}
	} else {
		if !rp.InsertAt(pendingIdx-mid-1, pendingRec) {
			return nil, fmt.Errorf("storage: internal split could not place record (right)")
		}
	}
	return &splitResult{sepKey: sepKey, right: right.ID}, nil
}

// Get returns the value for key.
func (t *BTree) Get(key []byte) ([]byte, bool, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	id := t.root
	for {
		h, err := t.pool.Get(id)
		if err != nil {
			return nil, false, err
		}
		if h.Buf[0] == nodeInternal {
			id = childFor(h.Buf, key)
			h.Release(false)
			continue
		}
		p := AsSlotted(h.Buf, nodeReserve)
		idx, exact := search(p, key, true)
		if !exact {
			h.Release(false)
			return nil, false, nil
		}
		_, v := splitLeafRecord(p.Record(idx))
		out := append([]byte(nil), v...)
		h.Release(false)
		return out, true, nil
	}
}

// Delete removes key if present and reports whether it was found. Pages are
// not merged or reclaimed (deletion is rare in this workload; TRUNCATE
// rebuilds the tree instead).
func (t *BTree) Delete(key []byte) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.root
	for {
		h, err := t.pool.Get(id)
		if err != nil {
			return false, err
		}
		if h.Buf[0] == nodeInternal {
			id = childFor(h.Buf, key)
			h.Release(false)
			continue
		}
		p := AsSlotted(h.Buf, nodeReserve)
		idx, exact := search(p, key, true)
		if !exact {
			h.Release(false)
			return false, nil
		}
		p.RemoveAt(idx)
		h.Release(true)
		return true, nil
	}
}

// Cursor iterates leaf records in key order. It holds a pin on the current
// leaf; Close releases it. Key and Value return copies.
//
// A cursor given a LeafCache (SetCache) fetches pages through the cache
// instead of pinning them itself: re-seeks inside the cached window skip
// the pool entirely. Cache mode is only sound on a tree that is not being
// modified — the sweep cursors that use it run over frozen zone tables.
type Cursor struct {
	tree  *BTree
	h     *Handle
	cache *LeafCache
	buf   []byte // current page in cache mode (owned by the cache)
	slot  int
	key   []byte
	value []byte
	valid bool
}

// SetCache routes the cursor's page fetches through lc. The caller keeps
// ownership of lc: resetting it invalidates the cursor's position, so
// reset only between seeks (the sweep drivers reset at zone boundaries,
// immediately before re-seeking).
func (c *Cursor) SetCache(lc *LeafCache) { c.cache = lc }

// page returns the current node's bytes in either pinning or cache mode.
func (c *Cursor) page() []byte {
	if c.h != nil {
		return c.h.Buf
	}
	return c.buf
}

// Seek positions a cursor at the first key >= key.
func (t *BTree) Seek(key []byte) (*Cursor, error) {
	c := &Cursor{}
	if err := t.SeekInto(key, c); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// SeekInto positions c at the first key >= key, releasing any pin it still
// holds and reusing its key/value buffers. Repeated seeks through one
// cursor cost a tree descent but no allocation; the batched zone join
// re-seeks this way once per zone instead of building a cursor per probe.
func (t *BTree) SeekInto(key []byte, c *Cursor) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if c.h != nil {
		c.h.Release(false)
		c.h = nil
	}
	c.tree = t
	c.valid = false
	c.buf = nil
	id := t.root
	if c.cache != nil {
		for {
			buf, err := c.cache.Get(id)
			if err != nil {
				return err
			}
			if buf[0] == nodeInternal {
				id = childFor(buf, key)
				continue
			}
			p := AsSlotted(buf, nodeReserve)
			idx, _ := search(p, key, true)
			c.buf = buf
			c.slot = idx
			return c.load()
		}
	}
	for {
		h, err := t.pool.Get(id)
		if err != nil {
			return err
		}
		if h.Buf[0] == nodeInternal {
			id = childFor(h.Buf, key)
			h.Release(false)
			continue
		}
		p := AsSlotted(h.Buf, nodeReserve)
		idx, _ := search(p, key, true)
		c.h = h
		c.slot = idx
		return c.load()
	}
}

// First positions a cursor at the smallest key.
func (t *BTree) First() (*Cursor, error) { return t.Seek([]byte{}) }

// load copies the current record, following next-leaf pointers past empty
// leaves and page ends.
func (c *Cursor) load() error {
	for {
		buf := c.page()
		p := AsSlotted(buf, nodeReserve)
		if c.slot < p.NumSlots() {
			k, v := splitLeafRecord(p.Record(c.slot))
			c.key = append(c.key[:0], k...)
			c.value = append(c.value[:0], v...)
			c.valid = true
			return nil
		}
		next := getChild(buf)
		if c.h != nil {
			c.h.Release(false)
			c.h = nil
		}
		c.buf = nil
		if next == InvalidPageID {
			c.valid = false
			return nil
		}
		if c.cache != nil {
			nb, err := c.cache.Get(next)
			if err != nil {
				c.valid = false
				return err
			}
			c.buf = nb
		} else {
			h, err := c.tree.pool.Get(next)
			if err != nil {
				c.valid = false
				return err
			}
			c.h = h
		}
		c.slot = 0
	}
}

// Valid reports whether the cursor is positioned on a record.
func (c *Cursor) Valid() bool { return c.valid }

// Key returns the current key (valid until the next cursor call).
func (c *Cursor) Key() []byte { return c.key }

// Value returns the current value (valid until the next cursor call).
func (c *Cursor) Value() []byte { return c.value }

// Next advances to the following record.
func (c *Cursor) Next() error {
	if !c.valid {
		return fmt.Errorf("storage: Next on exhausted cursor")
	}
	c.slot++
	return c.load()
}

// Close releases the cursor's pin. Cached pages stay pinned by their
// LeafCache (Reset that separately). Safe to call multiple times.
func (c *Cursor) Close() {
	if c.h != nil {
		c.h.Release(false)
		c.h = nil
	}
	c.buf = nil
	c.valid = false
}

// Len walks the tree and counts records; O(n), used by tests and TRUNCATE
// accounting.
func (t *BTree) Len() (int, error) {
	c, err := t.First()
	if err != nil {
		return 0, err
	}
	defer c.Close()
	n := 0
	for c.Valid() {
		n++
		if err := c.Next(); err != nil {
			return n, err
		}
	}
	return n, nil
}

package storage

import (
	"sync"
	"testing"
)

// TestPoolShardDefaults pins the shard-count resolution rules: rounding
// up to a power of two, clamping so every shard keeps >= 8 frames, and
// tiny pools degenerating to one shard (exact legacy behaviour).
func TestPoolShardDefaults(t *testing.T) {
	cases := []struct {
		frames, shards, want int
	}{
		{8, 0, 1},    // 8 frames can never split
		{8, 16, 1},   // even when asked to
		{64, 4, 4},   // explicit power of two kept
		{64, 5, 8},   // rounded up to 8; 64/8 = 8 frames each, allowed
		{64, 9, 8},   // 16 would leave 4 frames/shard; clamped to 8
		{1024, 3, 4}, // rounded up
		{20, 4, 2},   // 20/4 = 5 < 8; clamp to 2 (10 frames each)
	}
	for _, c := range cases {
		p := NewPool(NewMemStore(), PoolOptions{Frames: c.frames, Shards: c.shards})
		if got := p.NumShards(); got != c.want {
			t.Errorf("frames=%d shards=%d: NumShards = %d, want %d", c.frames, c.shards, got, c.want)
		}
	}
}

// TestPoolShardedNeverEvictsPinned is the eviction-safety property test:
// goroutines pin pages carrying a marker byte while others churn fresh
// allocations through every shard to force constant eviction. No pinned
// page may lose its frame — its buffer must still carry the marker when
// the pin is finally dropped. Run under -race this also exercises the
// per-shard locking.
func TestPoolShardedNeverEvictsPinned(t *testing.T) {
	store := NewMemStore()
	pool := NewPool(store, PoolOptions{Frames: 64, Shards: 4})
	if pool.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", pool.NumShards())
	}

	// Seed pages the pinners will fight over.
	var ids []PageID
	for i := 0; i < 32; i++ {
		h, err := pool.New()
		if err != nil {
			t.Fatal(err)
		}
		h.Buf[7] = byte(i + 1)
		ids = append(ids, h.ID)
		h.Release(true)
	}

	var wg sync.WaitGroup
	// Pinners: hold a pin across an adversarial window, then verify.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 100; round++ {
				i := (w*13 + round) % len(ids)
				h, err := pool.Get(ids[i])
				if err != nil {
					t.Errorf("pinner Get(%d): %v", ids[i], err)
					return
				}
				want := byte(i + 1)
				for spin := 0; spin < 50; spin++ {
					if h.Buf[7] != want {
						t.Errorf("pinned page %d content changed: %d != %d (evicted under a pin?)", h.ID, h.Buf[7], want)
						h.Release(false)
						return
					}
				}
				// Release panics on a stale frame, so surviving this call
				// also proves the frame still belongs to the pinned page.
				h.Release(false)
			}
		}(w)
	}
	// Churners: force eviction pressure on every shard.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 200; round++ {
				h, err := pool.New()
				if err != nil {
					// Transient exhaustion under heavy pinning is legal;
					// eviction safety is what is under test.
					continue
				}
				h.Release(true)
			}
		}()
	}
	wg.Wait()
}

// TestPoolStatsShardSum checks the striped-counter contract: Stats()
// equals the sum of per-shard deltas, and concurrent fetches are counted
// exactly (no lost increments).
func TestPoolStatsShardSum(t *testing.T) {
	pool := NewPool(NewMemStore(), PoolOptions{Frames: 64, Shards: 4})
	var ids []PageID
	for i := 0; i < 16; i++ {
		h, err := pool.New()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, h.ID)
		h.Release(true)
	}
	pool.ResetStats()
	baseShards := pool.ShardStats()

	const workers, rounds = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				h, err := pool.Get(ids[(w*3+r)%len(ids)])
				if err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				h.Release(false)
			}
		}(w)
	}
	wg.Wait()

	s := pool.Stats()
	if s.LogicalReads != workers*rounds {
		t.Errorf("LogicalReads = %d, want exactly %d", s.LogicalReads, workers*rounds)
	}
	var sum Stats
	for i, sh := range pool.ShardStats() {
		sum.Add(sh.Sub(baseShards[i]))
	}
	if sum != s {
		t.Errorf("sum of per-shard deltas %+v != Stats() %+v", sum, s)
	}
}

// TestPoolResetStatsConcurrent hammers ResetStats against concurrent
// readers and fetchers; under -race this pins the lock-free counter
// design, and the test checks counters never go negative.
func TestPoolResetStatsConcurrent(t *testing.T) {
	pool := NewPool(NewMemStore(), PoolOptions{Frames: 64, Shards: 4})
	h, err := pool.New()
	if err != nil {
		t.Fatal(err)
	}
	id := h.ID
	h.Release(true)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				hh, err := pool.Get(id)
				if err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				hh.Release(false)
				s := pool.Stats()
				if s.LogicalReads < 0 || s.PhysicalReads < 0 || s.PhysicalWrites < 0 {
					t.Errorf("negative stats after concurrent reset: %+v", s)
					return
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		pool.ResetStats()
	}
	close(stop)
	wg.Wait()
}

// TestHandleDoubleReleasePanics pins the Release contract: the second
// release of one handle must panic instead of corrupting the pin count.
func TestHandleDoubleReleasePanics(t *testing.T) {
	pool := NewPool(NewMemStore(), PoolOptions{Frames: 8})
	h, err := pool.New()
	if err != nil {
		t.Fatal(err)
	}
	h.Release(true)
	defer func() {
		if recover() == nil {
			t.Error("second Release did not panic")
		}
	}()
	h.Release(false)
}

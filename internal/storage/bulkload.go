package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// BulkLoader builds a B+tree bottom-up from strictly ascending (key, value)
// pairs: leaves are written packed left-to-right and internal levels stack
// on top as their children finish, so the load never descends the tree and
// never splits a page. This is the classic sorted-run load of a bulk
// CREATE CLUSTERED INDEX — the shape of every ingest in the paper's
// workload (spImportGalaxy, spZone, the k-correction table) — and it costs
// one page write per page instead of one root-to-leaf descent per record.
//
// Pages are packed full; only the rightmost spine of each level may be
// underfull. Callers that cannot produce sorted input should go through
// sqldb's SortedRunBuilder rather than trickling Insert calls.
type BulkLoader struct {
	pool    *Pool
	leaf    *Handle
	leafP   SlottedPage
	lastKey []byte
	rec     []byte // leaf-record scratch, reused across Add calls
	levels  []*loadLevel
	pages   []PageID // every page this load allocated, in allocation order
	count   int
	done    bool
}

// loadLevel is one internal level under construction: the currently open
// (rightmost) page of that level. Finished pages are already referenced by
// the level above, so only the open page needs tracking.
type loadLevel struct {
	h *Handle
	p SlottedPage
}

// NewBulkLoader starts a load into a fresh tree on pool. The loader holds
// one pinned page per level until Finish or Abort.
func NewBulkLoader(pool *Pool) (*BulkLoader, error) {
	h, err := pool.New()
	if err != nil {
		return nil, err
	}
	h.Buf[0] = nodeLeaf
	putChild(h.Buf, InvalidPageID)
	b := &BulkLoader{pool: pool, leaf: h, pages: []PageID{h.ID}}
	b.leafP = InitSlotted(h.Buf, nodeReserve)
	return b, nil
}

// Count returns the number of pairs added so far.
func (b *BulkLoader) Count() int { return b.count }

// Pages returns every page id the load allocated — after Finish, the
// complete tree; after Abort, the abandoned pages. Because a bulk-loaded
// tree is exactly its loader's allocations, the slice is a full page
// inventory of the tree: retiring it deallocates the tree without a walk.
// The loader keeps no reference after Finish/Abort; the caller owns it.
func (b *BulkLoader) Pages() []PageID { return b.pages }

// Add appends one pair. Keys must arrive strictly ascending; a duplicate or
// out-of-order key is an error (the tree's keys are unique, and a bottom-up
// load cannot go back to an already-finished page).
func (b *BulkLoader) Add(key, value []byte) error {
	if b.done {
		return fmt.Errorf("storage: Add after Finish/Abort")
	}
	if len(key) == 0 {
		return fmt.Errorf("storage: empty key")
	}
	if len(key)+len(value)+2 > MaxRecordSize {
		return fmt.Errorf("storage: record for key of %d bytes exceeds max record size %d", len(key), MaxRecordSize)
	}
	if b.count > 0 && bytes.Compare(key, b.lastKey) <= 0 {
		return fmt.Errorf("storage: bulk load keys not strictly ascending")
	}
	// Build the record in reused scratch; SlottedPage.Insert copies it into
	// the page, so no per-pair allocation survives the call.
	b.rec = append(b.rec[:0], 0, 0)
	binary.LittleEndian.PutUint16(b.rec, uint16(len(key)))
	b.rec = append(b.rec, key...)
	rec := append(b.rec, value...)
	b.rec = rec
	if _, ok := b.leafP.Insert(rec); !ok {
		// Current leaf is full: open its right sibling, link it, and
		// promote the sibling's min key into the level above.
		next, err := b.pool.New()
		if err != nil {
			return err
		}
		b.pages = append(b.pages, next.ID)
		next.Buf[0] = nodeLeaf
		putChild(next.Buf, InvalidPageID)
		nextP := InitSlotted(next.Buf, nodeReserve)
		putChild(b.leaf.Buf, next.ID) // left.next = right
		finished := b.leaf.ID
		b.leaf.Release(true)
		b.leaf, b.leafP = next, nextP
		if _, ok := b.leafP.Insert(rec); !ok {
			return fmt.Errorf("storage: record does not fit in empty leaf")
		}
		if err := b.promote(0, finished, key, next.ID); err != nil {
			return err
		}
	}
	b.lastKey = append(b.lastKey[:0], key...)
	b.count++
	return nil
}

// promote attaches child — a freshly opened page at level-1 whose subtree
// min key is sepKey — to the internal level above it. leftSibling is the
// page that just finished at level-1; it becomes the leftmost child if this
// promotion has to open a brand-new top level.
func (b *BulkLoader) promote(level int, leftSibling PageID, sepKey []byte, child PageID) error {
	if level == len(b.levels) {
		h, err := b.pool.New()
		if err != nil {
			return err
		}
		b.pages = append(b.pages, h.ID)
		h.Buf[0] = nodeInternal
		putChild(h.Buf, leftSibling)
		p := InitSlotted(h.Buf, nodeReserve)
		if _, ok := p.Insert(internalRecord(sepKey, child)); !ok {
			return fmt.Errorf("storage: separator does not fit in empty internal page")
		}
		b.levels = append(b.levels, &loadLevel{h: h, p: p})
		return nil
	}
	lv := b.levels[level]
	rec := internalRecord(sepKey, child)
	if _, ok := lv.p.Insert(rec); ok {
		return nil
	}
	// This internal page is full too: open its right sibling with the
	// overflowing child as leftmost, and promote the sibling one level up.
	// The sibling's subtree min key is exactly sepKey.
	next, err := b.pool.New()
	if err != nil {
		return err
	}
	b.pages = append(b.pages, next.ID)
	next.Buf[0] = nodeInternal
	putChild(next.Buf, child)
	nextP := InitSlotted(next.Buf, nodeReserve)
	finished := lv.h.ID
	lv.h.Release(true)
	lv.h, lv.p = next, nextP
	return b.promote(level+1, finished, sepKey, next.ID)
}

// Finish closes all open pages and returns the loaded tree. Every page
// except the rightmost spine is packed full; the root is the single page of
// the top level (the lone leaf for loads that fit in one page, including
// the empty load).
func (b *BulkLoader) Finish() (*BTree, error) {
	if b.done {
		return nil, fmt.Errorf("storage: Finish after Finish/Abort")
	}
	b.done = true
	root := b.leaf.ID
	b.leaf.Release(true)
	b.leaf = nil
	for _, lv := range b.levels {
		root = lv.h.ID
		lv.h.Release(true)
		lv.h = nil
	}
	b.levels = nil
	return OpenBTree(b.pool, root), nil
}

// Abort releases the loader's pins without producing a tree. The pages
// written so far are abandoned; since the tree was never published, the
// caller may Dealloc Pages() immediately. Safe to call after Finish,
// where it is a no-op.
func (b *BulkLoader) Abort() {
	if b.done {
		return
	}
	b.done = true
	if b.leaf != nil {
		b.leaf.Release(true)
		b.leaf = nil
	}
	for _, lv := range b.levels {
		lv.h.Release(true)
		lv.h = nil
	}
	b.levels = nil
}

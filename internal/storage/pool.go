package storage

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Stats counts buffer-pool activity. LogicalReads counts every page fetch;
// PhysicalReads counts the subset that missed the pool and hit the store.
// These are the quantities behind the I/O column of the paper's Table 1
// (SQL Server reports logical + physical reads per statement the same way).
type Stats struct {
	LogicalReads   int64
	PhysicalReads  int64
	PhysicalWrites int64
}

// Add accumulates other into s.
func (s *Stats) Add(o Stats) {
	s.LogicalReads += o.LogicalReads
	s.PhysicalReads += o.PhysicalReads
	s.PhysicalWrites += o.PhysicalWrites
}

// Sub returns s minus o; used to attribute I/O to a span of work.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		LogicalReads:   s.LogicalReads - o.LogicalReads,
		PhysicalReads:  s.PhysicalReads - o.PhysicalReads,
		PhysicalWrites: s.PhysicalWrites - o.PhysicalWrites,
	}
}

// Total returns the combined I/O count reported by the benchmark tables.
func (s Stats) Total() int64 { return s.LogicalReads + s.PhysicalWrites }

type frame struct {
	id    PageID
	buf   []byte
	pins  int
	dirty bool
	used  bool // clock reference bit
}

// FaultHooks intercepts the pool's interactions with its store for fault
// injection: Fetch runs at the top of every Get and Alloc at the top of
// every New. A non-nil error aborts the operation with that error; the
// hook may also just sleep to model a slow device. Hooks run before any
// shard lock is taken, so injected latency stalls only the calling
// query, not every pool client.
type FaultHooks struct {
	Fetch func() error
	Alloc func() error
}

// shard owns a disjoint subset of the pool's frames (pages are assigned
// by PageID hash) with its own lock, page index, clock hand, and stat
// counters. The counters are atomics written only under mu; readers
// (Stats) sum them without taking the lock.
type shard struct {
	mu     sync.Mutex
	ord    int // position in Pool.shards, for diagnostics and metrics
	frames []frame
	index  map[PageID]int
	hand   int

	logicalReads   atomic.Int64
	physicalReads  atomic.Int64
	physicalWrites atomic.Int64
	evictions      atomic.Int64
}

// PoolOptions configures NewPool.
type PoolOptions struct {
	// Frames is the total frame count across all shards (minimum 8).
	Frames int
	// Shards is the number of independently locked frame partitions.
	// 0 means GOMAXPROCS. The value is rounded up to a power of two and
	// then clamped so every shard keeps at least 8 frames — small pools
	// (tests, tight MyDB budgets) degenerate to a single shard and keep
	// the exact eviction behaviour of the unsharded pool.
	Shards int
	// FaultHooks, when non-nil, installs fault-injection hooks at
	// construction (equivalent to calling SetFaultHooks afterwards).
	FaultHooks *FaultHooks
}

// Pool is a pinning buffer pool with clock eviction over a Store. Frames
// are partitioned by PageID hash into power-of-two shards, each with its
// own mutex, index, and clock hand, so concurrent fetches of different
// pages contend only when they hash to the same shard. It is safe for
// concurrent use.
type Pool struct {
	store  Store
	shards []*shard
	shift  uint // 64 - log2(len(shards)); PageID hash >> shift picks the shard
	hooks  atomic.Pointer[FaultHooks]
	faults atomic.Int64 // operations aborted by an injected fault

	// base is the counter snapshot taken by the last ResetStats; Stats
	// reports live counters minus base, so resetting never writes the
	// (concurrently updated) shard counters themselves.
	baseMu sync.Mutex
	base   Stats
}

// NewPool creates a pool over store. See PoolOptions for the knobs; the
// zero value of every option picks a sensible default.
func NewPool(store Store, opts PoolOptions) *Pool {
	frames := opts.Frames
	if frames < 8 {
		frames = 8
	}
	n := opts.Shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	pow := 1
	for pow < n {
		pow <<= 1
	}
	n = pow
	for n > 1 && frames/n < 8 {
		n >>= 1
	}
	shift := uint(64)
	for s := n; s > 1; s >>= 1 {
		shift--
	}
	p := &Pool{store: store, shards: make([]*shard, n), shift: shift}
	for i := range p.shards {
		// Distribute frames round-robin so totals are exact even when
		// the frame count is not a multiple of the shard count.
		fc := frames / n
		if i < frames%n {
			fc++
		}
		sh := &shard{ord: i, frames: make([]frame, fc), index: make(map[PageID]int, fc)}
		for j := range sh.frames {
			sh.frames[j].buf = make([]byte, PageSize)
		}
		p.shards[i] = sh
	}
	if opts.FaultHooks != nil {
		p.hooks.Store(opts.FaultHooks)
	}
	return p
}

// NumShards returns the number of frame partitions the pool settled on
// after rounding and clamping.
func (p *Pool) NumShards() int { return len(p.shards) }

// shardFor maps a page id to its owning shard (Fibonacci hash on the id,
// top bits select the shard; with one shard the shift is 64 and Go
// defines x>>64 == 0).
func (p *Pool) shardFor(id PageID) *shard {
	return p.shards[(uint64(id)*0x9E3779B97F4A7C15)>>p.shift]
}

// rawStats sums the live per-shard counters. Each counter is exact (every
// increment happens-before the handle it accounts for is returned), but
// the triple is not a single atomic snapshot; callers that need the
// counters to correspond to a quiesced state (the bench harness) read
// them between operations, not during.
func (p *Pool) rawStats() Stats {
	var s Stats
	for _, sh := range p.shards {
		s.LogicalReads += sh.logicalReads.Load()
		s.PhysicalReads += sh.physicalReads.Load()
		s.PhysicalWrites += sh.physicalWrites.Load()
	}
	return s
}

// Stats returns a snapshot of the pool counters since the last ResetStats.
func (p *Pool) Stats() Stats {
	raw := p.rawStats()
	p.baseMu.Lock()
	defer p.baseMu.Unlock()
	return raw.Sub(p.base)
}

// ShardStats returns the live per-shard counters (not adjusted by
// ResetStats); Stats equals their sum minus the reset baseline. Exposed
// for tests and for reading shard balance.
func (p *Pool) ShardStats() []Stats {
	out := make([]Stats, len(p.shards))
	for i, sh := range p.shards {
		out[i] = Stats{
			LogicalReads:   sh.logicalReads.Load(),
			PhysicalReads:  sh.physicalReads.Load(),
			PhysicalWrites: sh.physicalWrites.Load(),
		}
	}
	return out
}

// ResetStats rebases the counters so a following Stats reads zero; the
// bench harness calls this between tasks so each task's I/O is attributed
// separately, like the paper's per-task rows. Concurrent readers are
// safe: the live counters are never written, only the subtraction base.
func (p *Pool) ResetStats() {
	raw := p.rawStats()
	p.baseMu.Lock()
	defer p.baseMu.Unlock()
	p.base = raw
}

// Handle is a pinned page. Buf aliases the frame; it is valid until Release.
type Handle struct {
	ID       PageID
	Buf      []byte
	sh       *shard
	idx      int
	released bool
}

// SetFaultHooks installs (or, with nil, removes) the pool's fault-
// injection hooks. Safe to call while the pool is in use; in-flight
// operations keep the hooks they observed at entry.
func (p *Pool) SetFaultHooks(h *FaultHooks) { p.hooks.Store(h) }

// Get pins the page, reading it from the store on a miss.
func (p *Pool) Get(id PageID) (*Handle, error) {
	if h := p.hooks.Load(); h != nil && h.Fetch != nil {
		if err := h.Fetch(); err != nil {
			p.faults.Add(1)
			return nil, fmt.Errorf("storage: page %d fetch: %w", id, err)
		}
	}
	sh := p.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.logicalReads.Add(1)
	if idx, ok := sh.index[id]; ok {
		f := &sh.frames[idx]
		f.pins++
		f.used = true
		return &Handle{ID: id, Buf: f.buf, sh: sh, idx: idx}, nil
	}
	idx, err := sh.evictLocked(p.store)
	if err != nil {
		return nil, err
	}
	f := &sh.frames[idx]
	sh.physicalReads.Add(1)
	if err := p.store.ReadPage(id, f.buf); err != nil {
		return nil, err
	}
	f.id = id
	f.pins = 1
	f.dirty = false
	f.used = true
	sh.index[id] = idx
	return &Handle{ID: id, Buf: f.buf, sh: sh, idx: idx}, nil
}

// New allocates a fresh page in the store and pins it zero-filled.
func (p *Pool) New() (*Handle, error) {
	if h := p.hooks.Load(); h != nil && h.Alloc != nil {
		if err := h.Alloc(); err != nil {
			p.faults.Add(1)
			return nil, fmt.Errorf("storage: page alloc: %w", err)
		}
	}
	id, err := p.store.Allocate()
	if err != nil {
		return nil, err
	}
	sh := p.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	idx, err := sh.evictLocked(p.store)
	if err != nil {
		return nil, err
	}
	f := &sh.frames[idx]
	for i := range f.buf {
		f.buf[i] = 0
	}
	f.id = id
	f.pins = 1
	f.dirty = true
	f.used = true
	sh.index[id] = idx
	return &Handle{ID: id, Buf: f.buf, sh: sh, idx: idx}, nil
}

// evictLocked finds a free frame in the shard, writing back a dirty
// victim if needed. Pinned frames are never victims: the clock skips any
// frame with pins > 0, so a pinned page cannot be evicted regardless of
// what other shards (or other goroutines on this shard) are doing.
func (sh *shard) evictLocked(store Store) (int, error) {
	for scanned := 0; scanned < 2*len(sh.frames); scanned++ {
		f := &sh.frames[sh.hand]
		idx := sh.hand
		sh.hand = (sh.hand + 1) % len(sh.frames)
		if f.pins > 0 {
			continue
		}
		if f.used {
			f.used = false
			continue
		}
		if f.id != InvalidPageID {
			if f.dirty {
				sh.physicalWrites.Add(1)
				if err := store.WritePage(f.id, f.buf); err != nil {
					return 0, err
				}
			}
			sh.evictions.Add(1)
			delete(sh.index, f.id)
			f.id = InvalidPageID
		}
		return idx, nil
	}
	return 0, fmt.Errorf("storage: buffer pool shard exhausted: all %d frames pinned", len(sh.frames))
}

// Release unpins the page; dirty marks it modified so eviction writes it
// back. Releasing the same handle twice panics — a double release would
// otherwise silently unpin someone else's pin and let a live page be
// evicted under them.
func (h *Handle) Release(dirty bool) {
	if h.released {
		panic(fmt.Sprintf("storage: double release of handle for page %d (shard %d)", h.ID, h.sh.ord))
	}
	h.released = true
	sh := h.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	f := &sh.frames[h.idx]
	if f.id != h.ID {
		panic(fmt.Sprintf("storage: release of stale handle for page %d (frame now holds %d)", h.ID, f.id))
	}
	if dirty {
		f.dirty = true
	}
	if f.pins <= 0 {
		panic(fmt.Sprintf("storage: release of unpinned page %d", h.ID))
	}
	f.pins--
}

// FlushAll writes every dirty frame back to the store, one shard at a time.
func (p *Pool) FlushAll() error {
	for _, sh := range p.shards {
		sh.mu.Lock()
		for i := range sh.frames {
			f := &sh.frames[i]
			if f.id != InvalidPageID && f.dirty {
				sh.physicalWrites.Add(1)
				if err := p.store.WritePage(f.id, f.buf); err != nil {
					sh.mu.Unlock()
					return err
				}
				f.dirty = false
			}
		}
		sh.mu.Unlock()
	}
	return nil
}

// Allocate reserves a page id without pinning it.
func (p *Pool) Allocate() (PageID, error) { return p.store.Allocate() }

// Dealloc drops the page's frame (no writeback — the page is dead) and
// returns the id to the store's free list. If the frame is still pinned
// (a leaf cache holding pins past its cursor, say) the call is a no-op
// and the page leaks instead: the id is NOT freed, so it cannot be
// reallocated under the pin. That is exactly the engine's pre-reclaim
// behaviour, so a skipped page is safe, just unreclaimed. Dealloc counts
// no I/O: it performs no reads and suppresses the writeback an eviction
// would have done.
func (p *Pool) Dealloc(id PageID) error {
	_, err := p.dealloc(id)
	return err
}

// dealloc is Dealloc plus a freed/leaked verdict: false means the page
// was pinned and skipped. The reclaimer uses the verdict to account for
// leaked pages without changing Dealloc's public contract.
func (p *Pool) dealloc(id PageID) (freed bool, err error) {
	sh := p.shardFor(id)
	sh.mu.Lock()
	if idx, ok := sh.index[id]; ok {
		f := &sh.frames[idx]
		if f.pins > 0 {
			sh.mu.Unlock()
			return false, nil
		}
		delete(sh.index, id)
		f.id = InvalidPageID
		f.dirty = false
		f.used = false
	}
	sh.mu.Unlock()
	return true, p.store.Free(id)
}

package storage

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Stats counts buffer-pool activity. LogicalReads counts every page fetch;
// PhysicalReads counts the subset that missed the pool and hit the store.
// These are the quantities behind the I/O column of the paper's Table 1
// (SQL Server reports logical + physical reads per statement the same way).
type Stats struct {
	LogicalReads   int64
	PhysicalReads  int64
	PhysicalWrites int64
}

// Add accumulates other into s.
func (s *Stats) Add(o Stats) {
	s.LogicalReads += o.LogicalReads
	s.PhysicalReads += o.PhysicalReads
	s.PhysicalWrites += o.PhysicalWrites
}

// Sub returns s minus o; used to attribute I/O to a span of work.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		LogicalReads:   s.LogicalReads - o.LogicalReads,
		PhysicalReads:  s.PhysicalReads - o.PhysicalReads,
		PhysicalWrites: s.PhysicalWrites - o.PhysicalWrites,
	}
}

// Total returns the combined I/O count reported by the benchmark tables.
func (s Stats) Total() int64 { return s.LogicalReads + s.PhysicalWrites }

type frame struct {
	id    PageID
	buf   []byte
	pins  int
	dirty bool
	used  bool // clock reference bit
}

// FaultHooks intercepts the pool's interactions with its store for fault
// injection: Fetch runs at the top of every Get and Alloc at the top of
// every New. A non-nil error aborts the operation with that error; the
// hook may also just sleep to model a slow device. Hooks run before the
// pool's mutex is taken, so injected latency stalls only the calling
// query, not every pool client.
type FaultHooks struct {
	Fetch func() error
	Alloc func() error
}

// Pool is a pinning buffer pool with clock eviction over a Store.
// It is safe for concurrent use.
type Pool struct {
	mu     sync.Mutex
	store  Store
	frames []frame
	index  map[PageID]int
	hand   int
	stats  Stats
	hooks  atomic.Pointer[FaultHooks]
}

// NewPool creates a pool with the given number of frames (minimum 8).
func NewPool(store Store, frames int) *Pool {
	if frames < 8 {
		frames = 8
	}
	p := &Pool{
		store:  store,
		frames: make([]frame, frames),
		index:  make(map[PageID]int, frames),
	}
	for i := range p.frames {
		p.frames[i].buf = make([]byte, PageSize)
	}
	return p
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ResetStats zeroes the counters; the bench harness calls this between
// tasks so each task's I/O is attributed separately, like the paper's
// per-task rows.
func (p *Pool) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats = Stats{}
}

// Handle is a pinned page. Buf aliases the frame; it is valid until Release.
type Handle struct {
	ID   PageID
	Buf  []byte
	pool *Pool
	idx  int
}

// SetFaultHooks installs (or, with nil, removes) the pool's fault-
// injection hooks. Safe to call while the pool is in use; in-flight
// operations keep the hooks they observed at entry.
func (p *Pool) SetFaultHooks(h *FaultHooks) { p.hooks.Store(h) }

// Get pins the page, reading it from the store on a miss.
func (p *Pool) Get(id PageID) (*Handle, error) {
	if h := p.hooks.Load(); h != nil && h.Fetch != nil {
		if err := h.Fetch(); err != nil {
			return nil, fmt.Errorf("storage: page %d fetch: %w", id, err)
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.LogicalReads++
	if idx, ok := p.index[id]; ok {
		f := &p.frames[idx]
		f.pins++
		f.used = true
		return &Handle{ID: id, Buf: f.buf, pool: p, idx: idx}, nil
	}
	idx, err := p.evictLocked()
	if err != nil {
		return nil, err
	}
	f := &p.frames[idx]
	p.stats.PhysicalReads++
	if err := p.store.ReadPage(id, f.buf); err != nil {
		return nil, err
	}
	f.id = id
	f.pins = 1
	f.dirty = false
	f.used = true
	p.index[id] = idx
	return &Handle{ID: id, Buf: f.buf, pool: p, idx: idx}, nil
}

// New allocates a fresh page in the store and pins it zero-filled.
func (p *Pool) New() (*Handle, error) {
	if h := p.hooks.Load(); h != nil && h.Alloc != nil {
		if err := h.Alloc(); err != nil {
			return nil, fmt.Errorf("storage: page alloc: %w", err)
		}
	}
	id, err := p.store.Allocate()
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	idx, err := p.evictLocked()
	if err != nil {
		return nil, err
	}
	f := &p.frames[idx]
	for i := range f.buf {
		f.buf[i] = 0
	}
	f.id = id
	f.pins = 1
	f.dirty = true
	f.used = true
	p.index[id] = idx
	return &Handle{ID: id, Buf: f.buf, pool: p, idx: idx}, nil
}

// evictLocked finds a free frame, writing back a dirty victim if needed.
func (p *Pool) evictLocked() (int, error) {
	for scanned := 0; scanned < 2*len(p.frames); scanned++ {
		f := &p.frames[p.hand]
		idx := p.hand
		p.hand = (p.hand + 1) % len(p.frames)
		if f.pins > 0 {
			continue
		}
		if f.used {
			f.used = false
			continue
		}
		if f.id != InvalidPageID {
			if f.dirty {
				p.stats.PhysicalWrites++
				if err := p.store.WritePage(f.id, f.buf); err != nil {
					return 0, err
				}
			}
			delete(p.index, f.id)
			f.id = InvalidPageID
		}
		return idx, nil
	}
	return 0, fmt.Errorf("storage: buffer pool exhausted: all %d frames pinned", len(p.frames))
}

// Release unpins the page; dirty marks it modified so eviction writes it back.
func (h *Handle) Release(dirty bool) {
	p := h.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	f := &p.frames[h.idx]
	if f.id != h.ID {
		panic(fmt.Sprintf("storage: release of stale handle for page %d (frame now holds %d)", h.ID, f.id))
	}
	if dirty {
		f.dirty = true
	}
	if f.pins <= 0 {
		panic(fmt.Sprintf("storage: release of unpinned page %d", h.ID))
	}
	f.pins--
}

// FlushAll writes every dirty frame back to the store.
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.frames {
		f := &p.frames[i]
		if f.id != InvalidPageID && f.dirty {
			p.stats.PhysicalWrites++
			if err := p.store.WritePage(f.id, f.buf); err != nil {
				return err
			}
			f.dirty = false
		}
	}
	return nil
}

// Allocate reserves a page id without pinning it.
func (p *Pool) Allocate() (PageID, error) { return p.store.Allocate() }

// Package storage implements the on-disk substrate of the reproduction's
// database engine: 8 KiB slotted pages, page stores (file-backed and
// in-memory), a pinning buffer pool with hit/miss/write accounting, a B+tree
// used as the clustered index the paper's spZone builds, the columnar
// segment page kind behind internal/colstore, and order-preserving key
// encodings.
//
// The buffer pool's counters are what let the benchmark harness report the
// "I/O" column of the paper's Table 1.
//
// Concurrency contract: Pool is safe for concurrent use — Get/New/Release
// serialise on one mutex, and a pinned Handle's frame is never evicted, so
// any number of goroutines may hold pages at once. BTree reads are safe
// concurrently with each other (each Cursor pins at most one leaf and owns
// its position); writes (Insert, BulkLoader) assume a single writer, which
// the sqldb layer guarantees by holding Table.mu. See ARCHITECTURE.md for
// how the parallel zone sweep leans on this: one cursor per worker over
// the shared pool.
package storage

import (
	"encoding/binary"
	"fmt"
)

// PageSize is the size of every page in bytes (SQL Server uses 8 KiB pages;
// we follow it).
const PageSize = 8192

// PageID identifies a page within a store. Page 0 is reserved for store
// metadata, so valid data pages start at 1.
type PageID uint32

// InvalidPageID marks "no page", e.g. the next-pointer of the last leaf.
const InvalidPageID PageID = 0

// Slotted page layout. Offsets are within the page's private area, which
// starts after the caller-owned header (see InitSlotted):
//
//	base+0:  uint16 slot count
//	base+2:  uint16 free-space end (records grow downward from PageSize)
//	base+4:  slot array, 4 bytes per slot: uint16 offset, uint16 length
//	...
//	records packed at the tail of the page
//
// A deleted slot has length 0xFFFF; its space is reclaimed by Compact.
const (
	slotEntrySize = 4
	deadSlotLen   = 0xFFFF
)

// SlottedPage wraps a page buffer with a record-oriented interface. reserve
// is the number of leading bytes owned by the caller (e.g. B+tree node
// headers).
type SlottedPage struct {
	buf     []byte
	reserve int
}

// InitSlotted formats buf as an empty slotted page with the given reserved
// header prefix and returns the wrapper.
func InitSlotted(buf []byte, reserve int) SlottedPage {
	p := SlottedPage{buf: buf, reserve: reserve}
	p.setSlotCount(0)
	p.setFreeEnd(uint16(len(buf)))
	return p
}

// AsSlotted interprets an already-formatted buffer.
func AsSlotted(buf []byte, reserve int) SlottedPage {
	return SlottedPage{buf: buf, reserve: reserve}
}

func (p SlottedPage) base() int { return p.reserve }

func (p SlottedPage) slotCount() int {
	return int(binary.LittleEndian.Uint16(p.buf[p.base():]))
}

func (p SlottedPage) setSlotCount(n int) {
	binary.LittleEndian.PutUint16(p.buf[p.base():], uint16(n))
}

func (p SlottedPage) freeEnd() int {
	return int(binary.LittleEndian.Uint16(p.buf[p.base()+2:]))
}

func (p SlottedPage) setFreeEnd(v uint16) {
	binary.LittleEndian.PutUint16(p.buf[p.base()+2:], v)
}

func (p SlottedPage) slotPos(i int) int { return p.base() + 4 + i*slotEntrySize }

func (p SlottedPage) slot(i int) (off, length int) {
	pos := p.slotPos(i)
	return int(binary.LittleEndian.Uint16(p.buf[pos:])),
		int(binary.LittleEndian.Uint16(p.buf[pos+2:]))
}

func (p SlottedPage) setSlot(i, off, length int) {
	pos := p.slotPos(i)
	binary.LittleEndian.PutUint16(p.buf[pos:], uint16(off))
	binary.LittleEndian.PutUint16(p.buf[pos+2:], uint16(length))
}

// NumSlots returns the number of slots, including dead ones.
func (p SlottedPage) NumSlots() int { return p.slotCount() }

// FreeSpace returns the bytes available for one more record (including its
// slot entry).
func (p SlottedPage) FreeSpace() int {
	free := p.freeEnd() - (p.base() + 4 + p.slotCount()*slotEntrySize)
	free -= slotEntrySize
	if free < 0 {
		return 0
	}
	return free
}

// Insert appends a record and returns its slot number, or ok=false if the
// page is full.
func (p SlottedPage) Insert(rec []byte) (slot int, ok bool) {
	if len(rec) > p.FreeSpace() {
		return 0, false
	}
	n := p.slotCount()
	end := p.freeEnd() - len(rec)
	copy(p.buf[end:], rec)
	p.setSlot(n, end, len(rec))
	p.setSlotCount(n + 1)
	p.setFreeEnd(uint16(end))
	return n, true
}

// InsertAt inserts a record at slot index i, shifting later slots up by one.
// Used by the B+tree to keep records key-ordered.
func (p SlottedPage) InsertAt(i int, rec []byte) bool {
	if len(rec) > p.FreeSpace() {
		return false
	}
	n := p.slotCount()
	if i < 0 || i > n {
		return false
	}
	end := p.freeEnd() - len(rec)
	copy(p.buf[end:], rec)
	// Shift slot entries [i, n) to [i+1, n+1).
	start := p.slotPos(i)
	stop := p.slotPos(n)
	copy(p.buf[start+slotEntrySize:stop+slotEntrySize], p.buf[start:stop])
	p.setSlot(i, end, len(rec))
	p.setSlotCount(n + 1)
	p.setFreeEnd(uint16(end))
	return true
}

// Record returns the bytes of slot i (nil for a dead slot). The slice
// aliases the page buffer; callers must copy before unpinning.
func (p SlottedPage) Record(i int) []byte {
	off, length := p.slot(i)
	if length == deadSlotLen {
		return nil
	}
	return p.buf[off : off+length]
}

// Delete marks slot i dead. Space is reclaimed by Compact.
func (p SlottedPage) Delete(i int) {
	off, _ := p.slot(i)
	p.setSlot(i, off, deadSlotLen)
}

// RemoveAt removes slot i entirely, shifting later slots down by one. Record
// space is not reclaimed until Compact.
func (p SlottedPage) RemoveAt(i int) {
	n := p.slotCount()
	start := p.slotPos(i)
	stop := p.slotPos(n)
	copy(p.buf[start:], p.buf[start+slotEntrySize:stop])
	p.setSlotCount(n - 1)
}

// Compact rewrites live records to eliminate holes left by deletions and
// replaced records. Slot numbers are preserved; dead slots remain dead.
// Live bytes are staged in a scratch buffer first, because repacking in
// place could overwrite records whose slot order differs from their offset
// order.
func (p SlottedPage) Compact() {
	type live struct{ slot, length, pos int }
	var recs []live
	tmp := make([]byte, 0, PageSize)
	for i := 0; i < p.slotCount(); i++ {
		off, length := p.slot(i)
		if length == deadSlotLen {
			continue
		}
		recs = append(recs, live{slot: i, length: length, pos: len(tmp)})
		tmp = append(tmp, p.buf[off:off+length]...)
	}
	end := len(p.buf)
	for _, r := range recs {
		end -= r.length
		copy(p.buf[end:], tmp[r.pos:r.pos+r.length])
		p.setSlot(r.slot, end, r.length)
	}
	p.setFreeEnd(uint16(end))
}

// Validate performs structural checks; used by tests and failure injection.
func (p SlottedPage) Validate() error {
	n := p.slotCount()
	lowest := len(p.buf)
	for i := 0; i < n; i++ {
		off, length := p.slot(i)
		if length == deadSlotLen {
			continue
		}
		if off < p.base()+4+n*slotEntrySize || off+length > len(p.buf) {
			return fmt.Errorf("storage: slot %d record [%d,%d) out of bounds", i, off, off+length)
		}
		if off < lowest {
			lowest = off
		}
	}
	if p.freeEnd() > lowest {
		return fmt.Errorf("storage: freeEnd %d above lowest record %d", p.freeEnd(), lowest)
	}
	return nil
}

package storage

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// TestPoolEvictionAndFaultCounters pins the two counters the sharded
// stats didn't track before: valid-page evictions and fault-hook aborts.
func TestPoolEvictionAndFaultCounters(t *testing.T) {
	pool := NewPool(NewMemStore(), PoolOptions{Frames: 8, Shards: 1})
	// Fill well past the frame budget so the clock must evict.
	var ids []PageID
	for i := 0; i < 24; i++ {
		h, err := pool.New()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, h.ID)
		h.Release(true)
	}
	if pool.Evictions() == 0 {
		t.Fatal("no evictions counted after overfilling the pool")
	}

	boom := errors.New("boom")
	pool.SetFaultHooks(&FaultHooks{Fetch: func() error { return boom }})
	if _, err := pool.Get(ids[0]); !errors.Is(err, boom) {
		t.Fatalf("fault hook not applied: %v", err)
	}
	pool.SetFaultHooks(&FaultHooks{Alloc: func() error { return boom }})
	if _, err := pool.New(); !errors.Is(err, boom) {
		t.Fatalf("alloc hook not applied: %v", err)
	}
	if got := pool.Faults(); got != 2 {
		t.Fatalf("fault counter: got %d want 2", got)
	}
	pool.SetFaultHooks(nil)
}

// TestDoubleReleaseMessageNamesPageAndShard pins the diagnostic the chaos
// suite needs: a double release must name the page and the shard it
// hashed to, not just panic anonymously.
func TestDoubleReleaseMessageNamesPageAndShard(t *testing.T) {
	pool := NewPool(NewMemStore(), PoolOptions{Frames: 64, Shards: 4})
	h, err := pool.New()
	if err != nil {
		t.Fatal(err)
	}
	h.Release(false)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("double release did not panic")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value is %T, want string", r)
		}
		if !strings.Contains(msg, "page 1") || !strings.Contains(msg, "shard") {
			t.Fatalf("panic message missing page/shard: %q", msg)
		}
	}()
	h.Release(false)
}

// TestReclaimerStats drives a retire cycle with and without a pin in the
// way and checks retired/freed/leaked/live-ticket accounting.
func TestReclaimerStats(t *testing.T) {
	pool := NewPool(NewMemStore(), PoolOptions{Frames: 16, Shards: 1})
	rec := NewReclaimer(pool)

	free1, err := pool.New()
	if err != nil {
		t.Fatal(err)
	}
	free1.Release(false)
	pinned, err := pool.New()
	if err != nil {
		t.Fatal(err)
	}
	// pinned stays pinned through the retire: Dealloc must skip-and-leak.

	g := rec.Enter()
	if got := rec.Stats().LiveTickets; got != 1 {
		t.Fatalf("live tickets: got %d want 1", got)
	}
	rec.Retire([]PageID{free1.ID, pinned.ID})
	st := rec.Stats()
	if st.Retired != 2 || st.Freed != 0 {
		t.Fatalf("before release: %+v", st)
	}
	g.Release()
	st = rec.Stats()
	if st.Retired != 2 || st.Freed != 1 || st.Leaked != 1 || st.LiveTickets != 0 {
		t.Fatalf("after release: %+v", st)
	}
	pinned.Release(false)
}

// TestPoolMetricsExposition registers a pool and reclaimer with a
// registry and checks the families scrape with live values and shard
// labels.
func TestPoolMetricsExposition(t *testing.T) {
	pool := NewPool(NewMemStore(), PoolOptions{Frames: 64, Shards: 2})
	rec := NewReclaimer(pool)
	r := telemetry.NewRegistry()
	pool.MetricsInto(r, "dr1")
	rec.MetricsInto(r, "dr1")

	h, err := pool.New()
	if err != nil {
		t.Fatal(err)
	}
	id := h.ID
	h.Release(true)
	if _, err := pool.Get(id); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`pool_logical_reads_total{pool="dr1"} 1`,
		`pool_hits_total{pool="dr1"} 1`,
		`pool_pinned_frames{pool="dr1"} 1`,
		`pool_frames{pool="dr1"} 64`,
		`pool_shard_hits_total{pool="dr1",shard="0"}`,
		`pool_shard_hits_total{pool="dr1",shard="1"}`,
		`reclaim_retired_pages_total{pool="dr1"} 0`,
		`reclaim_live_tickets{pool="dr1"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q\n%s", want, out)
		}
	}
}

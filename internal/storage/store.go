package storage

import (
	"fmt"
	"os"
	"sync"
)

// Store is the raw page I/O layer under the buffer pool.
type Store interface {
	// ReadPage fills buf (PageSize bytes) with the page's contents.
	ReadPage(id PageID, buf []byte) error
	// WritePage persists buf as the page's contents.
	WritePage(id PageID, buf []byte) error
	// Allocate reserves a fresh page and returns its id (never 0).
	Allocate() (PageID, error)
	// Free returns a page to the store's free list; a later Allocate may
	// hand the id out again (zero-filled). The caller owns the proof that
	// nothing references the page — the Reclaimer defers Free until no
	// snapshot guard can still reach it. Freeing a page twice, or freeing
	// one that is still reachable, corrupts whichever tree is handed the
	// id next.
	Free(id PageID) error
	// NumPages returns the number of allocated pages, including page 0.
	NumPages() int
	Close() error
}

// MemStore is an in-memory Store; tests and transient databases use it.
type MemStore struct {
	mu    sync.Mutex
	pages [][]byte
	free  []PageID
}

// NewMemStore returns an empty in-memory store with page 0 allocated.
func NewMemStore() *MemStore {
	return &MemStore{pages: [][]byte{make([]byte, PageSize)}}
}

// ReadPage implements Store.
func (s *MemStore) ReadPage(id PageID, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(id) >= len(s.pages) {
		return fmt.Errorf("storage: read of unallocated page %d", id)
	}
	copy(buf, s.pages[id])
	return nil
}

// WritePage implements Store.
func (s *MemStore) WritePage(id PageID, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(id) >= len(s.pages) {
		return fmt.Errorf("storage: write of unallocated page %d", id)
	}
	copy(s.pages[id], buf)
	return nil
}

// Allocate implements Store. Freed pages are reused (zero-filled) before
// the file of pages grows.
func (s *MemStore) Allocate() (PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.free); n > 0 {
		id := s.free[n-1]
		s.free = s.free[:n-1]
		clear(s.pages[id])
		return id, nil
	}
	s.pages = append(s.pages, make([]byte, PageSize))
	return PageID(len(s.pages) - 1), nil
}

// Free implements Store.
func (s *MemStore) Free(id PageID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id == 0 || int(id) >= len(s.pages) {
		return fmt.Errorf("storage: free of invalid page %d", id)
	}
	s.free = append(s.free, id)
	return nil
}

// NumPages implements Store.
func (s *MemStore) NumPages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pages)
}

// Close implements Store.
func (s *MemStore) Close() error { return nil }

// FileStore is a Store backed by a single file of concatenated pages.
// Its free list is in-memory only: pages freed in one process lifetime
// are reused within it, but a reopened store starts with no free pages
// (the file never shrinks — the same trade TRUNCATE has always made).
type FileStore struct {
	mu   sync.Mutex
	f    *os.File
	n    int
	path string
	free []PageID
}

// OpenFileStore opens (or creates) a file store at path. A new file gets
// page 0 allocated.
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: opening store: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: %s size %d is not a multiple of the page size", path, st.Size())
	}
	s := &FileStore{f: f, n: int(st.Size() / PageSize), path: path}
	if s.n == 0 {
		if _, err := s.Allocate(); err != nil { // page 0: metadata
			f.Close()
			return nil, err
		}
	}
	return s, nil
}

// ReadPage implements Store.
func (s *FileStore) ReadPage(id PageID, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(id) >= s.n {
		return fmt.Errorf("storage: read of unallocated page %d in %s", id, s.path)
	}
	_, err := s.f.ReadAt(buf[:PageSize], int64(id)*PageSize)
	return err
}

// WritePage implements Store.
func (s *FileStore) WritePage(id PageID, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(id) >= s.n {
		return fmt.Errorf("storage: write of unallocated page %d in %s", id, s.path)
	}
	_, err := s.f.WriteAt(buf[:PageSize], int64(id)*PageSize)
	return err
}

// Allocate implements Store. Freed pages are reused (zero-filled) before
// the file grows.
func (s *FileStore) Allocate() (PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	zero := make([]byte, PageSize)
	if n := len(s.free); n > 0 {
		id := s.free[n-1]
		s.free = s.free[:n-1]
		if _, err := s.f.WriteAt(zero, int64(id)*PageSize); err != nil {
			return InvalidPageID, err
		}
		return id, nil
	}
	id := PageID(s.n)
	if _, err := s.f.WriteAt(zero, int64(id)*PageSize); err != nil {
		return InvalidPageID, err
	}
	s.n++
	return id, nil
}

// Free implements Store.
func (s *FileStore) Free(id PageID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id == 0 || int(id) >= s.n {
		return fmt.Errorf("storage: free of invalid page %d in %s", id, s.path)
	}
	s.free = append(s.free, id)
	return nil
}

// NumPages implements Store.
func (s *FileStore) NumPages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Close implements Store.
func (s *FileStore) Close() error { return s.f.Close() }

package storage

import (
	"sync"
	"sync/atomic"
)

// Reclaimer defers page deallocation until no reader can still reach the
// pages. It is the storage half of sqldb's copy-on-write table versions:
// writers publish a new tree and Retire the old one's pages; readers hold
// a Guard for as long as they might follow the old root. A retired batch
// is freed (Pool.Dealloc) once every guard that was live at retire time
// has been released.
//
// The mechanism is a ticket epoch. Enter hands out monotonically
// increasing tickets under the reclaimer's mutex; Retire stamps the batch
// with the newest ticket issued so far. Any guard that could have loaded
// the old version entered before the new version was published, and the
// publish happens-before Retire (the writer does both), so that guard's
// ticket is <= the stamp. A batch is therefore unreachable — and freed —
// as soon as the minimum live ticket exceeds its stamp.
//
// Enter/Release cost one mutex acquisition plus an O(live guards) scan on
// release; with guards scoped to a query snapshot or a cursor, the live
// set stays small. All methods are safe for concurrent use.
type Reclaimer struct {
	pool *Pool

	mu      sync.Mutex
	next    uint64
	active  map[uint64]struct{}
	retired []retiredBatch

	// Lifecycle counters (see ReclaimStats). Written with atomics so the
	// metrics scrape never takes the reclaimer's mutex.
	retiredPages atomic.Int64
	freedPages   atomic.Int64
	leakedPages  atomic.Int64
}

type retiredBatch struct {
	stamp uint64
	pages []PageID
}

// Guard is one reader's reservation: while held, no page batch retired
// after the guard was entered is freed. Release is idempotent but must
// not be called concurrently with itself.
type Guard struct {
	r      *Reclaimer
	ticket uint64
	done   bool
}

// NewReclaimer returns a reclaimer that frees pages into pool.
func NewReclaimer(pool *Pool) *Reclaimer {
	return &Reclaimer{pool: pool, active: make(map[uint64]struct{})}
}

// Enter registers a reader and returns its guard. Call before loading the
// version pointer the guard is meant to protect: enter-then-load
// guarantees any batch retired after the load carries a stamp >= this
// guard's ticket.
func (r *Reclaimer) Enter() *Guard {
	r.mu.Lock()
	r.next++
	t := r.next
	r.active[t] = struct{}{}
	r.mu.Unlock()
	return &Guard{r: r, ticket: t}
}

// Release ends the guard's reservation and frees whatever batches became
// unreachable. Safe on a nil guard and after a prior Release.
func (g *Guard) Release() {
	if g == nil || g.done {
		return
	}
	g.done = true
	r := g.r
	r.mu.Lock()
	delete(r.active, g.ticket)
	freeable := r.collectLocked()
	r.mu.Unlock()
	r.free(freeable)
}

// Retire schedules pages for deallocation once every guard live right now
// has been released. With no live guards the pages free immediately. The
// reclaimer takes ownership of the slice.
func (r *Reclaimer) Retire(pages []PageID) {
	if len(pages) == 0 {
		return
	}
	r.retiredPages.Add(int64(len(pages)))
	r.mu.Lock()
	r.retired = append(r.retired, retiredBatch{stamp: r.next, pages: pages})
	freeable := r.collectLocked()
	r.mu.Unlock()
	r.free(freeable)
}

// collectLocked removes and returns every batch whose stamp precedes the
// minimum live ticket. Caller holds r.mu.
func (r *Reclaimer) collectLocked() []PageID {
	if len(r.retired) == 0 {
		return nil
	}
	min := ^uint64(0)
	for t := range r.active {
		if t < min {
			min = t
		}
	}
	var out []PageID
	kept := r.retired[:0]
	for _, b := range r.retired {
		if b.stamp < min {
			out = append(out, b.pages...)
		} else {
			kept = append(kept, b)
		}
	}
	// Zero the tail so freed batches don't pin their page slices.
	for i := len(kept); i < len(r.retired); i++ {
		r.retired[i] = retiredBatch{}
	}
	r.retired = kept
	return out
}

// free deallocates outside the reclaimer's lock (Dealloc takes shard and
// store locks of its own). Each batch is collected exactly once, so
// concurrent callers never double-free.
func (r *Reclaimer) free(pages []PageID) {
	for _, id := range pages {
		// A pinned frame makes Dealloc skip-and-leak; other errors mean
		// the caller double-retired, which the version inventory rules
		// out. Either way the reader-side invariant holds.
		freed, err := r.pool.dealloc(id)
		switch {
		case err != nil:
			// Counted as neither freed nor leaked: the id never belonged
			// to a live frame, so there is nothing to account for.
		case freed:
			r.freedPages.Add(1)
		default:
			r.leakedPages.Add(1)
		}
	}
}

// ReclaimStats is a snapshot of the reclaimer's lifecycle counters.
// Retired counts pages handed to Retire; Freed the subset returned to the
// store; Leaked the pages skipped because a frame was still pinned at
// free time (safe, just unreclaimed). Retired - Freed - Leaked = Pending.
type ReclaimStats struct {
	Retired     int64
	Freed       int64
	Leaked      int64
	LiveTickets int
}

// Stats returns the reclaimer's lifecycle counters and live-guard count.
func (r *Reclaimer) Stats() ReclaimStats {
	r.mu.Lock()
	live := len(r.active)
	r.mu.Unlock()
	return ReclaimStats{
		Retired:     r.retiredPages.Load(),
		Freed:       r.freedPages.Load(),
		Leaked:      r.leakedPages.Load(),
		LiveTickets: live,
	}
}

// Pending returns the number of pages awaiting reclamation; tests use it
// to pin the deferred-free lifecycle.
func (r *Reclaimer) Pending() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, b := range r.retired {
		n += len(b.pages)
	}
	return n
}

package storage

import (
	"strconv"

	"repro/internal/telemetry"
)

// Evictions returns the total number of valid pages evicted from frames
// since the pool was created (not rebased by ResetStats).
func (p *Pool) Evictions() int64 {
	var n int64
	for _, sh := range p.shards {
		n += sh.evictions.Load()
	}
	return n
}

// Faults returns the number of operations aborted by injected faults.
func (p *Pool) Faults() int64 { return p.faults.Load() }

// PinnedFrames counts frames with a live pin, one shard lock at a time.
// It is a scrape-time readout, not a hot-path quantity.
func (p *Pool) PinnedFrames() int {
	n := 0
	for _, sh := range p.shards {
		sh.mu.Lock()
		for i := range sh.frames {
			if sh.frames[i].pins > 0 {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// Frames returns the pool's total frame count.
func (p *Pool) Frames() int {
	n := 0
	for _, sh := range p.shards {
		n += len(sh.frames)
	}
	return n
}

// MetricsInto registers the pool's counters with r, labeling every family
// with the given pool name. Everything is a scrape-time func over the
// shard atomics the pool already maintains, so registration adds no work
// to Get/New/Release. Hits are logical reads served from a frame
// (logical - physical); misses are reads that went to the store. The
// counters are live (not rebased by ResetStats), as a monitoring time
// series wants. Safe to call more than once; later calls rebind the
// closures.
func (p *Pool) MetricsInto(r *telemetry.Registry, pool string) {
	reads := r.NewCounterFuncVec("pool_logical_reads_total",
		"page fetches (the paper's logical reads)", "pool")
	reads.Attach(func() float64 { return float64(p.rawStats().LogicalReads) }, pool)
	misses := r.NewCounterFuncVec("pool_physical_reads_total",
		"page fetches that missed the pool and hit the store", "pool")
	misses.Attach(func() float64 { return float64(p.rawStats().PhysicalReads) }, pool)
	writes := r.NewCounterFuncVec("pool_physical_writes_total",
		"dirty pages written back to the store", "pool")
	writes.Attach(func() float64 { return float64(p.rawStats().PhysicalWrites) }, pool)
	hits := r.NewCounterFuncVec("pool_hits_total",
		"page fetches served from a resident frame", "pool")
	hits.Attach(func() float64 {
		s := p.rawStats()
		return float64(s.LogicalReads - s.PhysicalReads)
	}, pool)
	evs := r.NewCounterFuncVec("pool_evictions_total",
		"valid pages evicted from frames", "pool")
	evs.Attach(func() float64 { return float64(p.Evictions()) }, pool)
	faults := r.NewCounterFuncVec("pool_faults_total",
		"operations aborted by injected storage faults", "pool")
	faults.Attach(func() float64 { return float64(p.Faults()) }, pool)

	frames := r.NewGaugeFuncVec("pool_frames", "frames in the pool", "pool")
	frames.Attach(func() float64 { return float64(p.Frames()) }, pool)
	pinned := r.NewGaugeFuncVec("pool_pinned_frames",
		"frames with a live pin (scanned at scrape time)", "pool")
	pinned.Attach(func() float64 { return float64(p.PinnedFrames()) }, pool)

	shardHits := r.NewCounterFuncVec("pool_shard_hits_total",
		"per-shard page fetches served from a resident frame", "pool", "shard")
	shardMisses := r.NewCounterFuncVec("pool_shard_misses_total",
		"per-shard page fetches that hit the store", "pool", "shard")
	shardEvs := r.NewCounterFuncVec("pool_shard_evictions_total",
		"per-shard valid-page evictions", "pool", "shard")
	for _, sh := range p.shards {
		sh := sh
		ord := strconv.Itoa(sh.ord)
		shardHits.Attach(func() float64 {
			return float64(sh.logicalReads.Load() - sh.physicalReads.Load())
		}, pool, ord)
		shardMisses.Attach(func() float64 {
			return float64(sh.physicalReads.Load())
		}, pool, ord)
		shardEvs.Attach(func() float64 {
			return float64(sh.evictions.Load())
		}, pool, ord)
	}
}

// MetricsInto registers the reclaimer's lifecycle counters with r under
// the given pool name; all are scrape-time funcs over the counters the
// reclaimer already keeps.
func (r *Reclaimer) MetricsInto(reg *telemetry.Registry, pool string) {
	retired := reg.NewCounterFuncVec("reclaim_retired_pages_total",
		"pages handed to the reclaimer by version writers", "pool")
	retired.Attach(func() float64 { return float64(r.retiredPages.Load()) }, pool)
	freed := reg.NewCounterFuncVec("reclaim_freed_pages_total",
		"retired pages returned to the store's free list", "pool")
	freed.Attach(func() float64 { return float64(r.freedPages.Load()) }, pool)
	leaked := reg.NewCounterFuncVec("reclaim_leaked_pages_total",
		"retired pages skipped because their frame was still pinned", "pool")
	leaked.Attach(func() float64 { return float64(r.leakedPages.Load()) }, pool)
	tickets := reg.NewGaugeFuncVec("reclaim_live_tickets",
		"reader guards currently holding an epoch ticket", "pool")
	tickets.Attach(func() float64 { return float64(r.Stats().LiveTickets) }, pool)
	pending := reg.NewGaugeFuncVec("reclaim_pending_pages",
		"retired pages waiting for the last overlapping reader", "pool")
	pending.Attach(func() float64 { return float64(r.Pending()) }, pool)
}

package storage

import (
	"path/filepath"
	"sync"
	"testing"
)

func TestPoolHitMissAccounting(t *testing.T) {
	pool := NewPool(NewMemStore(), PoolOptions{Frames: 8})
	h, err := pool.New()
	if err != nil {
		t.Fatal(err)
	}
	id := h.ID
	h.Buf[100] = 0xAB
	h.Release(true)

	// First Get is a hit (page still resident after New).
	h, err = pool.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if h.Buf[100] != 0xAB {
		t.Error("page content lost")
	}
	h.Release(false)

	s := pool.Stats()
	if s.LogicalReads != 1 {
		t.Errorf("LogicalReads = %d, want 1 (New is not a read)", s.LogicalReads)
	}
	if s.PhysicalReads != 0 {
		t.Errorf("PhysicalReads = %d, want 0 (resident)", s.PhysicalReads)
	}
}

func TestPoolEvictionWritesBackDirty(t *testing.T) {
	store := NewMemStore()
	pool := NewPool(store, PoolOptions{Frames: 8})
	var first PageID
	// Allocate enough pages to cycle the 8-frame pool several times.
	for i := 0; i < 40; i++ {
		h, err := pool.New()
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = h.ID
		}
		h.Buf[0] = byte(i + 1)
		h.Release(true)
	}
	// Page 'first' must have been evicted and persisted; re-reading it is
	// a physical read that returns the written content.
	before := pool.Stats()
	h, err := pool.Get(first)
	if err != nil {
		t.Fatal(err)
	}
	if h.Buf[0] != 1 {
		t.Errorf("evicted page content = %d, want 1", h.Buf[0])
	}
	h.Release(false)
	after := pool.Stats()
	if after.PhysicalReads != before.PhysicalReads+1 {
		t.Errorf("expected one physical read, got %d", after.PhysicalReads-before.PhysicalReads)
	}
	if after.PhysicalWrites == 0 {
		t.Error("expected eviction write-backs")
	}
}

func TestPoolExhaustion(t *testing.T) {
	pool := NewPool(NewMemStore(), PoolOptions{Frames: 8})
	var handles []*Handle
	for i := 0; i < 8; i++ {
		h, err := pool.New()
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	if _, err := pool.New(); err == nil {
		t.Error("expected pool exhaustion with all frames pinned")
	}
	handles[0].Release(false)
	if _, err := pool.New(); err != nil {
		t.Errorf("pool should recover after a release: %v", err)
	}
}

func TestPoolStatsResetAndDiff(t *testing.T) {
	pool := NewPool(NewMemStore(), PoolOptions{Frames: 8})
	h, _ := pool.New()
	h.Release(true)
	pool.ResetStats()
	if s := pool.Stats(); s != (Stats{}) {
		t.Errorf("stats after reset = %+v", s)
	}
	a := Stats{LogicalReads: 10, PhysicalReads: 2, PhysicalWrites: 1}
	b := Stats{LogicalReads: 4, PhysicalReads: 1, PhysicalWrites: 1}
	d := a.Sub(b)
	if d.LogicalReads != 6 || d.PhysicalReads != 1 || d.PhysicalWrites != 0 {
		t.Errorf("Sub = %+v", d)
	}
	var acc Stats
	acc.Add(a)
	acc.Add(b)
	if acc.LogicalReads != 14 || acc.Total() != 14+2 {
		t.Errorf("Add/Total = %+v (%d)", acc, acc.Total())
	}
}

func TestPoolConcurrentAccess(t *testing.T) {
	pool := NewPool(NewMemStore(), PoolOptions{Frames: 32})
	var ids []PageID
	for i := 0; i < 64; i++ {
		h, err := pool.New()
		if err != nil {
			t.Fatal(err)
		}
		h.Buf[0] = byte(i)
		ids = append(ids, h.ID)
		h.Release(true)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 200; round++ {
				id := ids[(w*7+round)%len(ids)]
				h, err := pool.Get(id)
				if err != nil {
					t.Errorf("Get(%d): %v", id, err)
					return
				}
				h.Release(false)
			}
		}(w)
	}
	wg.Wait()
}

func TestFileStoreRejectsCorruptSize(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.db")
	if err := writeFile(path, make([]byte, PageSize+17)); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileStore(path); err == nil {
		t.Error("expected error for non-page-aligned store")
	}
}

func TestStoreOutOfRangeAccess(t *testing.T) {
	for _, store := range []Store{NewMemStore(), mustFileStore(t)} {
		buf := make([]byte, PageSize)
		if err := store.ReadPage(999, buf); err == nil {
			t.Errorf("%T: read of unallocated page accepted", store)
		}
		if err := store.WritePage(999, buf); err == nil {
			t.Errorf("%T: write of unallocated page accepted", store)
		}
		store.Close()
	}
}

func mustFileStore(t *testing.T) *FileStore {
	t.Helper()
	s, err := OpenFileStore(filepath.Join(t.TempDir(), "s.db"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func writeFile(path string, data []byte) error {
	return osWriteFile(path, data)
}

package sky

import (
	"math"
	"sort"

	"repro/internal/astro"
)

// Galaxy is one row of the Galaxy table: the 5-space MaxBCG works in
// (ra, dec, g-r, r-i, i) plus the colour errors derived from i. It mirrors
// the paper's Galaxy schema (one row per SDSS galaxy, extracted from
// PhotoObjAll by spImportGalaxy).
type Galaxy struct {
	ObjID   int64   // unique object identifier
	Ra      float64 // right ascension, degrees
	Dec     float64 // declination, degrees
	I       float64 // i-band magnitude (dereddened)
	Gr      float64 // g-r colour
	Ri      float64 // r-i colour
	SigmaGr float64 // standard error of g-r
	SigmaRi float64 // standard error of r-i
}

// SigmaGrFor returns the paper's photometric error model for g-r:
// 2.089 · 10^(0.228·i − 6).
func SigmaGrFor(iMag float64) float64 {
	return 2.089 * math.Pow(10, 0.228*iMag-6.0)
}

// SigmaRiFor returns the paper's photometric error model for r-i:
// 4.266 · 10^(0.206·i − 6).
func SigmaRiFor(iMag float64) float64 {
	return 4.266 * math.Pow(10, 0.206*iMag-6.0)
}

// TrueCluster records an injected cluster, the generator's ground truth.
// The reproduction's validation tests recover these with MaxBCG.
type TrueCluster struct {
	BCGObjID  int64   // object id of the injected brightest cluster galaxy
	Ra, Dec   float64 // cluster centre (the BCG position)
	Z         float64 // true redshift
	NGal      int     // number of injected member galaxies (excluding the BCG)
	RadiusDeg float64 // angular radius members were placed within
}

// Catalog is a generated piece of sky: the galaxy rows, the k-correction
// table they were drawn against, the region they cover, and the injected
// ground truth.
type Catalog struct {
	Region   astro.Box
	Galaxies []Galaxy
	Kcorr    *Kcorr
	Truth    []TrueCluster
	Seed     int64
}

// Len returns the number of galaxies.
func (c *Catalog) Len() int { return len(c.Galaxies) }

// DensityPerDeg2 returns the realised surface density.
func (c *Catalog) DensityPerDeg2() float64 {
	a := c.Region.FlatArea()
	if a == 0 {
		return 0
	}
	return float64(len(c.Galaxies)) / a
}

// Select returns the galaxies inside box, preserving catalog order. It is
// the in-memory equivalent of the paper's
// "SELECT ... FROM Galaxy WHERE ra BETWEEN ... AND dec BETWEEN ...".
func (c *Catalog) Select(box astro.Box) []Galaxy {
	var out []Galaxy
	for _, g := range c.Galaxies {
		if box.Contains(g.Ra, g.Dec) {
			out = append(out, g)
		}
	}
	return out
}

// SortByZoneRa sorts galaxies by (zoneID, ra), the clustered-index order the
// paper's spZone establishes. Sorting is stable with ObjID as the final
// tiebreak so every implementation sees the same order. Zone ids are
// precomputed once per galaxy rather than per comparison — the comparator
// runs O(n log n) times and sits on spZone's hot path.
func SortByZoneRa(gs []Galaxy, zoneHeightDeg float64) {
	zids := make([]int32, len(gs))
	idx := make([]int32, len(gs))
	for i := range gs {
		zids[i] = int32(astro.ZoneID(gs[i].Dec, zoneHeightDeg))
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, b int) bool {
		i, j := idx[a], idx[b]
		if zids[i] != zids[j] {
			return zids[i] < zids[j]
		}
		if gs[i].Ra != gs[j].Ra {
			return gs[i].Ra < gs[j].Ra
		}
		return gs[i].ObjID < gs[j].ObjID
	})
	out := make([]Galaxy, len(gs))
	for a, i := range idx {
		out[a] = gs[i]
	}
	copy(gs, out)
}

package sky

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/astro"
)

// GenConfig controls synthetic catalog generation. The zero value is not
// usable; call Generate with at least Region set — every other field has a
// default calibrated to the paper's reported densities.
type GenConfig struct {
	// Region is the piece of sky to populate (required).
	Region astro.Box
	// Seed makes generation deterministic. Two calls with identical
	// configs produce identical catalogs.
	Seed int64
	// GalaxyDensity is the total surface density in galaxies per square
	// degree. Default 14000, matching the paper's ~3,500 galaxies per
	// 0.25 deg² target field.
	GalaxyDensity float64
	// ClusterDensity is the injected cluster density per square degree.
	// Default 18, matching the paper's ~4.5 clusters per 0.25 deg² field.
	ClusterDensity float64
	// MeanRichness is the mean number of member galaxies above the
	// 5-member floor. Default 12.
	MeanRichness float64
	// Kcorr is the BCG model table. Default: 1000 steps over (0, 0.5],
	// the paper's SQL-implementation resolution.
	Kcorr *Kcorr
	// MinZ and MaxZ bound injected cluster redshifts.
	// Defaults 0.05 and 0.35.
	MinZ, MaxZ float64
}

func (cfg *GenConfig) setDefaults() error {
	if cfg.Region.FlatArea() <= 0 {
		return fmt.Errorf("sky: GenConfig.Region %v has no area", cfg.Region)
	}
	if cfg.GalaxyDensity == 0 {
		cfg.GalaxyDensity = 14000
	}
	if cfg.GalaxyDensity < 0 {
		return fmt.Errorf("sky: negative galaxy density %g", cfg.GalaxyDensity)
	}
	if cfg.ClusterDensity == 0 {
		cfg.ClusterDensity = 18
	}
	if cfg.MeanRichness == 0 {
		cfg.MeanRichness = 12
	}
	if cfg.Kcorr == nil {
		cfg.Kcorr = MustNewKcorr(1000, 0.5)
	}
	if cfg.MinZ == 0 {
		cfg.MinZ = 0.05
	}
	if cfg.MaxZ == 0 {
		cfg.MaxZ = math.Min(0.35, cfg.Kcorr.ZMax()*0.85)
	}
	if cfg.MinZ >= cfg.MaxZ {
		return fmt.Errorf("sky: cluster redshift range [%g, %g] is empty", cfg.MinZ, cfg.MaxZ)
	}
	return nil
}

// Generate builds a synthetic catalog: a field population of background
// galaxies plus injected clusters whose BCGs sit on the k-correction ridge
// and whose members satisfy the MaxBCG neighbour window (within the 1 Mpc /
// r200 radius, magnitudes between the BCG and the limiting magnitude,
// colours within the population sigmas of the red sequence).
func Generate(cfg GenConfig) (*Catalog, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	area := cfg.Region.FlatArea()

	cat := &Catalog{Region: cfg.Region, Kcorr: cfg.Kcorr, Seed: cfg.Seed}
	nextID := int64(1)
	add := func(g Galaxy) {
		g.ObjID = nextID
		nextID++
		// The SDSS Galaxy schema stores i, gr, ri as 4-byte reals;
		// quantising here keeps every implementation (DB rows, TAM
		// field files, in-memory) bit-identical.
		g.I = float64(float32(g.I))
		g.Gr = float64(float32(g.Gr))
		g.Ri = float64(float32(g.Ri))
		g.SigmaGr = SigmaGrFor(g.I)
		g.SigmaRi = SigmaRiFor(g.I)
		cat.Galaxies = append(cat.Galaxies, g)
	}

	// Injected clusters first so their ObjIDs are stable under density
	// changes to the background population.
	nClusters := int(math.Round(cfg.ClusterDensity * area))
	for c := 0; c < nClusters; c++ {
		ra, dec := uniformPosition(rng, cfg.Region)
		z := cfg.MinZ + rng.Float64()*(cfg.MaxZ-cfg.MinZ)
		k := cfg.Kcorr.Lookup(z)
		nMembers := 5 + int(rng.ExpFloat64()*(cfg.MeanRichness-5))
		if nMembers > 60 {
			nMembers = 60
		}

		bcg := Galaxy{
			Ra: ra, Dec: dec,
			I:  k.I + rng.NormFloat64()*0.30, // within the 0.57 population dispersion
			Gr: k.Gr + rng.NormFloat64()*0.030,
			Ri: k.Ri + rng.NormFloat64()*0.035,
		}
		add(bcg)
		bcgID := nextID - 1

		// Members live inside the smaller of the 1 Mpc radius and the
		// angular r200 radius, so the membership query recovers them.
		r200Deg := k.Radius * R200Mpc(float64(nMembers))
		maxR := math.Min(k.Radius, r200Deg) * 0.85
		placed := 0
		for m := 0; m < nMembers; m++ {
			theta := rng.Float64() * 2 * math.Pi
			rr := maxR * math.Sqrt(rng.Float64())
			mdec := dec + rr*math.Sin(theta)
			mra := ra + rr*math.Cos(theta)/math.Cos(mdec*astro.Deg2Rad)
			if !cfg.Region.Contains(mra, mdec) {
				continue // clipped at the survey edge
			}
			// Fainter than the BCG, brighter than the member limit.
			lo, hi := bcg.I+0.25, k.Ilim-0.10
			if hi <= lo {
				hi = lo + 0.5
			}
			add(Galaxy{
				Ra: mra, Dec: mdec,
				I:  lo + rng.Float64()*(hi-lo),
				Gr: k.Gr + rng.NormFloat64()*0.030,
				Ri: k.Ri + rng.NormFloat64()*0.035,
			})
			placed++
		}
		cat.Truth = append(cat.Truth, TrueCluster{
			BCGObjID: bcgID, Ra: ra, Dec: dec, Z: z, NGal: placed, RadiusDeg: maxR,
		})
	}

	// Background field population. Colours are drawn broadly so that only
	// a few percent land close enough to the red-sequence ridge to pass
	// the chi-squared filter, reproducing the paper's ~3% candidate rate.
	nBackground := int(math.Round(cfg.GalaxyDensity*area)) - len(cat.Galaxies)
	for i := 0; i < nBackground; i++ {
		ra, dec := uniformPosition(rng, cfg.Region)
		iMag := 14.0 + 7.5*math.Pow(rng.Float64(), 0.4) // faint-skewed counts
		add(Galaxy{
			Ra: ra, Dec: dec,
			I:  iMag,
			Gr: 0.55 + rng.NormFloat64()*0.45,
			Ri: 0.25 + rng.NormFloat64()*0.35,
		})
	}
	return cat, nil
}

// uniformPosition draws a position uniform in spherical area within box.
func uniformPosition(rng *rand.Rand, box astro.Box) (ra, dec float64) {
	ra = box.MinRa + rng.Float64()*(box.MaxRa-box.MinRa)
	sLo := math.Sin(box.MinDec * astro.Deg2Rad)
	sHi := math.Sin(box.MaxDec * astro.Deg2Rad)
	dec = math.Asin(sLo+rng.Float64()*(sHi-sLo)) * astro.Rad2Deg
	return ra, dec
}

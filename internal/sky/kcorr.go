// Package sky generates the synthetic SDSS-like inputs the reproduction
// needs in place of the proprietary Sloan Digital Sky Survey catalog: a
// k-correction lookup table (the expected brightness and colour of a
// brightest-cluster galaxy as a function of redshift) and a galaxy catalog
// with injected galaxy clusters whose BCGs follow that table.
//
// The substitution is documented in DESIGN.md: MaxBCG consumes only the
// 5-space (ra, dec, g-r, r-i, i) plus per-object colour errors, so a
// synthetic catalog calibrated to the paper's densities (~14,000 galaxies
// per square degree, ~3% BCG candidates, ~4.5 clusters per 0.25 deg² field)
// exercises the same code paths and selectivities as SDSS DR1.
package sky

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/astro"
)

// KcorrRow is one row of the k-correction table: the expected properties of
// a BCG observed at redshift Z. It mirrors the paper's Kcorr schema.
type KcorrRow struct {
	Zid    int     // 1-based redshift index (identity PK in the paper)
	Z      float64 // redshift
	I      float64 // apparent i-band Petrosian magnitude of a BCG at Z
	Ilim   float64 // limiting i magnitude for cluster members at Z
	Ug     float64 // expected u-g colour
	Gr     float64 // expected g-r colour
	Ri     float64 // expected r-i colour
	Iz     float64 // expected i-z colour
	Radius float64 // angular radius of 1 Mpc at Z, in degrees
}

// Kcorr is the full lookup table, ordered by increasing redshift.
type Kcorr struct {
	// Rows must not be mutated once queries begin: ChiBand latches
	// per-column monotonicity from the table it first sees, so a later
	// mutation could silently misprune the band.
	Rows []KcorrRow

	// Band caching: whether the ridge-line magnitude and colour columns
	// are monotone nondecreasing in redshift, checked once on first
	// ChiBand call. The analytic model's I(z), Gr(z), Ri(z) all are;
	// hand-built tables may not be, and a non-monotone column simply does
	// not narrow the band.
	bandOnce sync.Once
	iSorted  bool
	grSorted bool
	riSorted bool
}

// Cosmological and population constants for the analytic model. The paper's
// own numbers imply h=1 distances (its example: r200 = 1.78 Mpc is 0.74° at
// z = 0.05); we match that convention.
const (
	hubbleDistanceMpc = 2998.0 // c/H0 with H0 = 100 km/s/Mpc
	bcgAbsoluteMagI   = -22.0  // characteristic BCG absolute magnitude
	memberDepthMag    = 2.0    // members counted down to i(z) + 2
)

// NewKcorr builds a k-correction table with the given number of redshift
// steps over (0, zMax]. The paper's TAM configuration used 100 steps of
// 0.01; the SQL configuration used 1000 steps of 0.001 (both spanning the
// same range), which is exactly what NewKcorr(steps, zMax) produces.
func NewKcorr(steps int, zMax float64) (*Kcorr, error) {
	if steps < 2 {
		return nil, fmt.Errorf("sky: k-correction table needs at least 2 steps, got %d", steps)
	}
	if zMax <= 0 || zMax > 1.5 {
		return nil, fmt.Errorf("sky: zMax %g outside (0, 1.5]", zMax)
	}
	k := &Kcorr{Rows: make([]KcorrRow, steps)}
	dz := zMax / float64(steps)
	for i := 0; i < steps; i++ {
		z := dz * float64(i+1)
		k.Rows[i] = kcorrAt(i+1, z)
	}
	return k, nil
}

// MustNewKcorr is NewKcorr that panics on error; for tests and examples.
func MustNewKcorr(steps int, zMax float64) *Kcorr {
	k, err := NewKcorr(steps, zMax)
	if err != nil {
		panic(err)
	}
	return k
}

// kcorrAt evaluates the analytic BCG model at redshift z.
func kcorrAt(zid int, z float64) KcorrRow {
	da := AngularDiameterDistanceMpc(z)
	dl := da * (1 + z) * (1 + z) // luminosity distance
	mu := 25 + 5*math.Log10(dl)  // distance modulus, dl in Mpc
	// Small k-correction term for an old stellar population in i.
	iMag := bcgAbsoluteMagI + mu + 1.6*z
	return KcorrRow{
		Zid:    zid,
		Z:      z,
		I:      iMag,
		Ilim:   iMag + memberDepthMag,
		Ug:     1.60 + 0.9*z,
		Gr:     redSequenceGr(z),
		Ri:     redSequenceRi(z),
		Iz:     0.20 + 0.5*z,
		Radius: math.Min(1.0/da*astro.Rad2Deg, 4.0),
	}
}

// redSequenceGr is the g-r colour of the BCG red sequence at redshift z.
// Early-type galaxy colours redden roughly linearly over 0 < z < 0.4.
func redSequenceGr(z float64) float64 { return 0.72 + 2.20*z }

// redSequenceRi is the r-i colour of the BCG red sequence at redshift z.
func redSequenceRi(z float64) float64 { return 0.30 + 0.90*z }

// AngularDiameterDistanceMpc returns an approximate angular-diameter
// distance in Mpc (h=1) valid for the z < 0.5 range MaxBCG searches:
// d_C = (c/H0)·z·(1 − 0.375·z), d_A = d_C/(1+z). At z = 0.05 this gives
// 1 Mpc ≈ 0.40°, consistent with the paper's worked example.
func AngularDiameterDistanceMpc(z float64) float64 {
	dc := hubbleDistanceMpc * z * (1 - 0.375*z)
	return dc / (1 + z)
}

// Lookup returns the row whose redshift is closest to z.
func (k *Kcorr) Lookup(z float64) KcorrRow {
	rows := k.Rows
	lo, hi := 0, len(rows)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if rows[mid].Z < z {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo > 0 && math.Abs(rows[lo-1].Z-z) < math.Abs(rows[lo].Z-z) {
		lo--
	}
	return rows[lo]
}

// LookupExact returns the row with |row.Z - z| < 1e-7, reproducing the
// paper's "WHERE ABS(z - @z) < 0.0000001" lookups, and reports whether one
// exists.
func (k *Kcorr) LookupExact(z float64) (KcorrRow, bool) {
	r := k.Lookup(z)
	if math.Abs(r.Z-z) < 1e-7 {
		return r, true
	}
	return KcorrRow{}, false
}

// ChiBand returns the half-open index range of rows whose ridge-line
// magnitude I lies in [iMin, iMax], colour Gr in [grMin, grMax], and
// colour Ri in [riMin, riMax]. A BCG's distance modulus and red-sequence
// colours all grow monotonically with redshift, so each χ² term's
// reachable rows form one contiguous band and binary searches bound the
// scan; the result is their intersection (possibly empty: hi <= lo). A
// non-monotone column — possible in hand-built tables — contributes the
// full range, so the result is always a safe superset of the rows that can
// pass the filter.
func (k *Kcorr) ChiBand(iMin, iMax, grMin, grMax, riMin, riMax float64) (lo, hi int) {
	k.bandOnce.Do(func() {
		k.iSorted, k.grSorted, k.riSorted = true, true, true
		for i := 1; i < len(k.Rows); i++ {
			if k.Rows[i].I < k.Rows[i-1].I {
				k.iSorted = false
			}
			if k.Rows[i].Gr < k.Rows[i-1].Gr {
				k.grSorted = false
			}
			if k.Rows[i].Ri < k.Rows[i-1].Ri {
				k.riSorted = false
			}
		}
	})
	lo, hi = 0, len(k.Rows)
	narrow := func(get func(*KcorrRow) float64, min, max float64) {
		l := sort.Search(len(k.Rows), func(i int) bool { return get(&k.Rows[i]) >= min })
		h := sort.Search(len(k.Rows), func(i int) bool { return get(&k.Rows[i]) > max })
		if l > lo {
			lo = l
		}
		if h < hi {
			hi = h
		}
	}
	if k.iSorted {
		narrow(func(r *KcorrRow) float64 { return r.I }, iMin, iMax)
	}
	if k.grSorted {
		narrow(func(r *KcorrRow) float64 { return r.Gr }, grMin, grMax)
	}
	if k.riSorted {
		narrow(func(r *KcorrRow) float64 { return r.Ri }, riMin, riMax)
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// Steps returns the number of redshift rows.
func (k *Kcorr) Steps() int { return len(k.Rows) }

// ZMax returns the largest tabulated redshift.
func (k *Kcorr) ZMax() float64 { return k.Rows[len(k.Rows)-1].Z }

// R200Mpc returns the r200 radius in Mpc for a cluster of ngal galaxies:
// 0.17 · ngal^0.51, the paper's fBCGr200. The mean density inside r200 is
// 200 times the mean galaxy density of the sky.
func R200Mpc(ngal float64) float64 {
	if ngal <= 0 {
		return 0
	}
	return 0.17 * math.Pow(ngal, 0.51)
}

package sky

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/astro"
)

// Binary catalog format. Little-endian throughout:
//
//	magic   "SKYCAT01"                                  (8 bytes)
//	seed    int64
//	region  4 × float64 (minRa, maxRa, minDec, maxDec)
//	kcorr   int32 step count, then per row 8 × float64
//	         (z, i, ilim, ug, gr, ri, iz, radius)
//	truth   int32 count, then per cluster
//	         int64 bcgObjID, float64 ra, dec, z, radiusDeg, int32 ngal
//	gals    int32 count, then per galaxy
//	         int64 objid, float64 ra, dec, float32 i, gr, ri,
//	         float64 sigmagr, sigmari
//
// The per-galaxy record is 8+8+8+4+4+4+8+8 = 52 bytes; the paper quotes
// ~44 bytes per row for its 1.5-million-row table, the same order.
const catalogMagic = "SKYCAT01"

// WriteTo serialises the catalog.
func (c *Catalog) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countWriter{w: bw}
	write := func(v any) error { return binary.Write(cw, binary.LittleEndian, v) }

	if _, err := cw.Write([]byte(catalogMagic)); err != nil {
		return cw.n, err
	}
	if err := write(c.Seed); err != nil {
		return cw.n, err
	}
	for _, f := range []float64{c.Region.MinRa, c.Region.MaxRa, c.Region.MinDec, c.Region.MaxDec} {
		if err := write(f); err != nil {
			return cw.n, err
		}
	}
	if err := write(int32(len(c.Kcorr.Rows))); err != nil {
		return cw.n, err
	}
	for _, r := range c.Kcorr.Rows {
		for _, f := range []float64{r.Z, r.I, r.Ilim, r.Ug, r.Gr, r.Ri, r.Iz, r.Radius} {
			if err := write(f); err != nil {
				return cw.n, err
			}
		}
	}
	if err := write(int32(len(c.Truth))); err != nil {
		return cw.n, err
	}
	for _, t := range c.Truth {
		if err := write(t.BCGObjID); err != nil {
			return cw.n, err
		}
		for _, f := range []float64{t.Ra, t.Dec, t.Z, t.RadiusDeg} {
			if err := write(f); err != nil {
				return cw.n, err
			}
		}
		if err := write(int32(t.NGal)); err != nil {
			return cw.n, err
		}
	}
	if err := write(int32(len(c.Galaxies))); err != nil {
		return cw.n, err
	}
	for i := range c.Galaxies {
		g := &c.Galaxies[i]
		if err := write(g.ObjID); err != nil {
			return cw.n, err
		}
		if err := write(g.Ra); err != nil {
			return cw.n, err
		}
		if err := write(g.Dec); err != nil {
			return cw.n, err
		}
		for _, f := range []float32{float32(g.I), float32(g.Gr), float32(g.Ri)} {
			if err := write(f); err != nil {
				return cw.n, err
			}
		}
		if err := write(g.SigmaGr); err != nil {
			return cw.n, err
		}
		if err := write(g.SigmaRi); err != nil {
			return cw.n, err
		}
	}
	return cw.n, bw.Flush()
}

// ReadCatalog deserialises a catalog written by WriteTo.
func ReadCatalog(r io.Reader) (*Catalog, error) {
	br := bufio.NewReader(r)
	read := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }

	magic := make([]byte, len(catalogMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("sky: reading catalog magic: %w", err)
	}
	if string(magic) != catalogMagic {
		return nil, fmt.Errorf("sky: bad catalog magic %q", magic)
	}
	c := &Catalog{}
	if err := read(&c.Seed); err != nil {
		return nil, err
	}
	var box [4]float64
	for i := range box {
		if err := read(&box[i]); err != nil {
			return nil, err
		}
	}
	c.Region = astro.Box{MinRa: box[0], MaxRa: box[1], MinDec: box[2], MaxDec: box[3]}

	var nk int32
	if err := read(&nk); err != nil {
		return nil, err
	}
	if nk < 0 || nk > 1<<20 {
		return nil, fmt.Errorf("sky: implausible kcorr row count %d", nk)
	}
	c.Kcorr = &Kcorr{Rows: make([]KcorrRow, nk)}
	for i := range c.Kcorr.Rows {
		row := &c.Kcorr.Rows[i]
		row.Zid = i + 1
		for _, p := range []*float64{&row.Z, &row.I, &row.Ilim, &row.Ug, &row.Gr, &row.Ri, &row.Iz, &row.Radius} {
			if err := read(p); err != nil {
				return nil, err
			}
		}
	}

	var nt int32
	if err := read(&nt); err != nil {
		return nil, err
	}
	if nt < 0 || nt > 1<<26 {
		return nil, fmt.Errorf("sky: implausible truth count %d", nt)
	}
	c.Truth = make([]TrueCluster, nt)
	for i := range c.Truth {
		t := &c.Truth[i]
		if err := read(&t.BCGObjID); err != nil {
			return nil, err
		}
		for _, p := range []*float64{&t.Ra, &t.Dec, &t.Z, &t.RadiusDeg} {
			if err := read(p); err != nil {
				return nil, err
			}
		}
		var ngal int32
		if err := read(&ngal); err != nil {
			return nil, err
		}
		t.NGal = int(ngal)
	}

	var ng int32
	if err := read(&ng); err != nil {
		return nil, err
	}
	if ng < 0 || ng > 1<<28 {
		return nil, fmt.Errorf("sky: implausible galaxy count %d", ng)
	}
	c.Galaxies = make([]Galaxy, ng)
	for i := range c.Galaxies {
		g := &c.Galaxies[i]
		if err := read(&g.ObjID); err != nil {
			return nil, err
		}
		if err := read(&g.Ra); err != nil {
			return nil, err
		}
		if err := read(&g.Dec); err != nil {
			return nil, err
		}
		var f32 [3]float32
		for j := range f32 {
			if err := read(&f32[j]); err != nil {
				return nil, err
			}
		}
		g.I, g.Gr, g.Ri = float64(f32[0]), float64(f32[1]), float64(f32[2])
		if err := read(&g.SigmaGr); err != nil {
			return nil, err
		}
		if err := read(&g.SigmaRi); err != nil {
			return nil, err
		}
		if math.IsNaN(g.Ra) || math.IsNaN(g.Dec) {
			return nil, fmt.Errorf("sky: galaxy %d has NaN position", g.ObjID)
		}
	}
	return c, nil
}

// SaveFile writes the catalog to path.
func (c *Catalog) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := c.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a catalog from path.
func LoadFile(path string) (*Catalog, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCatalog(f)
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

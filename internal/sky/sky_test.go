package sky

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/astro"
)

func TestNewKcorrValidation(t *testing.T) {
	if _, err := NewKcorr(1, 0.5); err == nil {
		t.Error("expected error for 1 step")
	}
	if _, err := NewKcorr(100, 0); err == nil {
		t.Error("expected error for zMax 0")
	}
	if _, err := NewKcorr(100, 2); err == nil {
		t.Error("expected error for zMax > 1.5")
	}
}

func TestKcorrPaperConfigurations(t *testing.T) {
	// TAM: 100 steps of 0.01. SQL: 1000 steps of 0.001.
	tam := MustNewKcorr(100, 0.5)
	sql := MustNewKcorr(1000, 0.5)
	if tam.Steps() != 100 || sql.Steps() != 1000 {
		t.Fatalf("steps = %d, %d", tam.Steps(), sql.Steps())
	}
	if math.Abs(tam.Rows[1].Z-tam.Rows[0].Z-0.005) > 1e-12 {
		t.Errorf("TAM dz = %g", tam.Rows[1].Z-tam.Rows[0].Z)
	}
	// Every TAM redshift must exist (to 1e-9) in the finer SQL table: the
	// finer table is a strict refinement.
	for _, r := range tam.Rows {
		s := sql.Lookup(r.Z)
		if math.Abs(s.Z-r.Z) > 1e-9 {
			t.Fatalf("TAM z=%g missing from SQL table (nearest %g)", r.Z, s.Z)
		}
	}
}

func TestKcorrMonotonicity(t *testing.T) {
	k := MustNewKcorr(500, 0.5)
	for i := 1; i < len(k.Rows); i++ {
		prev, cur := k.Rows[i-1], k.Rows[i]
		if cur.Z <= prev.Z {
			t.Fatalf("z not increasing at row %d", i)
		}
		if cur.I <= prev.I {
			t.Errorf("BCG apparent magnitude must fade with z: row %d", i)
		}
		if cur.Radius >= prev.Radius && prev.Radius < 4.0 {
			t.Errorf("1 Mpc angular radius must shrink with z: row %d (%g -> %g)", i, prev.Radius, cur.Radius)
		}
		if cur.Gr <= prev.Gr || cur.Ri <= prev.Ri {
			t.Errorf("red sequence colours must redden with z: row %d", i)
		}
		if cur.Ilim <= cur.I {
			t.Errorf("ilim must be fainter than the BCG magnitude: row %d", i)
		}
	}
}

func TestKcorrPaperWorkedExample(t *testing.T) {
	// Paper (fIsCluster comment): "the r200 radius is, at ngal=100,
	// 1.78 [Mpc] which, at z=0.05, is 0.74 degrees."
	if r := R200Mpc(100); math.Abs(r-1.78) > 0.02 {
		t.Errorf("R200Mpc(100) = %g, want ~1.78", r)
	}
	k := MustNewKcorr(1000, 0.5)
	row := k.Lookup(0.05)
	got := row.Radius * R200Mpc(100)
	if math.Abs(got-0.74) > 0.08 {
		t.Errorf("angular r200 at z=0.05 = %g deg, want ~0.74", got)
	}
}

func TestKcorrLookup(t *testing.T) {
	k := MustNewKcorr(1000, 0.5)
	f := func(seed float64) bool {
		z := math.Mod(math.Abs(seed), 0.5)
		r := k.Lookup(z)
		// No other row may be closer.
		for _, o := range []KcorrRow{k.Lookup(z - 0.0005), k.Lookup(z + 0.0005)} {
			if math.Abs(o.Z-z) < math.Abs(r.Z-z)-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	if _, ok := k.LookupExact(k.Rows[17].Z); !ok {
		t.Error("LookupExact misses a tabulated redshift")
	}
	if _, ok := k.LookupExact(k.Rows[17].Z + 1e-4); ok {
		t.Error("LookupExact accepts a non-tabulated redshift")
	}
}

func TestSigmaFormulas(t *testing.T) {
	// Spot values of the paper's error model at i=18.
	if got := SigmaGrFor(18); math.Abs(got-2.089*math.Pow(10, 0.228*18-6)) > 1e-12 {
		t.Errorf("SigmaGrFor(18) = %g", got)
	}
	if got := SigmaRiFor(18); math.Abs(got-4.266*math.Pow(10, 0.206*18-6)) > 1e-12 {
		t.Errorf("SigmaRiFor(18) = %g", got)
	}
	if SigmaGrFor(20) <= SigmaGrFor(15) {
		t.Error("colour errors must grow for fainter galaxies")
	}
}

func testCatalog(t *testing.T, seed int64) *Catalog {
	t.Helper()
	cat, err := Generate(GenConfig{
		Region: astro.MustBox(195, 196, 2, 3),
		Seed:   seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestGenerateDensityCalibration(t *testing.T) {
	cat := testCatalog(t, 1)
	d := cat.DensityPerDeg2()
	if d < 13000 || d > 15000 {
		t.Errorf("galaxy density %g per deg², want ~14000", d)
	}
	perField := float64(len(cat.Truth)) / cat.Region.FlatArea() * 0.25
	if perField < 3 || perField > 6.5 {
		t.Errorf("clusters per 0.25 deg² field = %g, want ~4.5", perField)
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a := testCatalog(t, 42)
	b := testCatalog(t, 42)
	if len(a.Galaxies) != len(b.Galaxies) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Galaxies), len(b.Galaxies))
	}
	for i := range a.Galaxies {
		if a.Galaxies[i] != b.Galaxies[i] {
			t.Fatalf("galaxy %d differs between identical seeds", i)
		}
	}
	c := testCatalog(t, 43)
	same := 0
	for i := range a.Galaxies {
		if i < len(c.Galaxies) && a.Galaxies[i] == c.Galaxies[i] {
			same++
		}
	}
	if same == len(a.Galaxies) {
		t.Error("different seeds produced identical catalogs")
	}
}

func TestGenerateGalaxiesInsideRegion(t *testing.T) {
	cat := testCatalog(t, 3)
	for _, g := range cat.Galaxies {
		if !cat.Region.Contains(g.Ra, g.Dec) {
			t.Fatalf("galaxy %d at (%g, %g) outside region %v", g.ObjID, g.Ra, g.Dec, cat.Region)
		}
		if g.SigmaGr != SigmaGrFor(g.I) || g.SigmaRi != SigmaRiFor(g.I) {
			t.Fatalf("galaxy %d sigma columns inconsistent with i", g.ObjID)
		}
	}
}

func TestGenerateBCGsOnRidge(t *testing.T) {
	cat := testCatalog(t, 5)
	byID := make(map[int64]Galaxy, len(cat.Galaxies))
	for _, g := range cat.Galaxies {
		byID[g.ObjID] = g
	}
	for _, tc := range cat.Truth {
		bcg, ok := byID[tc.BCGObjID]
		if !ok {
			t.Fatalf("truth BCG %d not in catalog", tc.BCGObjID)
		}
		k := cat.Kcorr.Lookup(tc.Z)
		if math.Abs(bcg.I-k.I) > 4*0.30+0.01 {
			t.Errorf("BCG %d magnitude %g too far from ridge %g", tc.BCGObjID, bcg.I, k.I)
		}
		if math.Abs(bcg.Gr-k.Gr) > 4*0.030+0.01 || math.Abs(bcg.Ri-k.Ri) > 4*0.035+0.01 {
			t.Errorf("BCG %d colours off the red sequence", tc.BCGObjID)
		}
	}
}

func TestGenerateMembersSatisfyWindow(t *testing.T) {
	// Members that were not clipped must lie within the angular 1 Mpc and
	// r200 radii and inside the (BCG.i, ilim) magnitude window; this is
	// what makes them recoverable by the membership query.
	cat := testCatalog(t, 7)
	byID := make(map[int64]Galaxy, len(cat.Galaxies))
	for _, g := range cat.Galaxies {
		byID[g.ObjID] = g
	}
	for _, tc := range cat.Truth {
		k := cat.Kcorr.Lookup(tc.Z)
		bcg := byID[tc.BCGObjID]
		if tc.RadiusDeg > math.Min(k.Radius, k.Radius*R200Mpc(60))+1e-12 {
			t.Errorf("cluster %d placement radius %g exceeds the 1 Mpc / max-r200 bound", tc.BCGObjID, tc.RadiusDeg)
		}
		// Members are the NGal objects immediately after the BCG.
		for id := tc.BCGObjID + 1; id <= tc.BCGObjID+int64(tc.NGal); id++ {
			m, ok := byID[id]
			if !ok {
				continue
			}
			d := astro.Distance(bcg.Ra, bcg.Dec, m.Ra, m.Dec)
			if d > tc.RadiusDeg*1.001 {
				t.Errorf("member %d at %g deg exceeds placement radius %g", id, d, tc.RadiusDeg)
			}
			if m.I <= bcg.I || m.I > k.Ilim {
				t.Errorf("member %d magnitude %g outside (%g, %g]", id, m.I, bcg.I, k.Ilim)
			}
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(GenConfig{}); err == nil {
		t.Error("expected error for zero region")
	}
	if _, err := Generate(GenConfig{
		Region:        astro.MustBox(0, 1, 0, 1),
		GalaxyDensity: -5,
	}); err == nil {
		t.Error("expected error for negative density")
	}
	if _, err := Generate(GenConfig{
		Region: astro.MustBox(0, 1, 0, 1),
		MinZ:   0.4, MaxZ: 0.3,
	}); err == nil {
		t.Error("expected error for inverted z range")
	}
}

func TestCatalogSelect(t *testing.T) {
	cat := testCatalog(t, 11)
	sub := astro.MustBox(195.2, 195.8, 2.2, 2.8)
	sel := cat.Select(sub)
	if len(sel) == 0 {
		t.Fatal("empty selection from a dense catalog")
	}
	for _, g := range sel {
		if !sub.Contains(g.Ra, g.Dec) {
			t.Fatalf("selected galaxy outside box")
		}
	}
	// Selection count should scale with area.
	frac := float64(len(sel)) / float64(cat.Len())
	want := sub.FlatArea() / cat.Region.FlatArea()
	if math.Abs(frac-want) > 0.05 {
		t.Errorf("selection fraction %g, want ~%g", frac, want)
	}
}

func TestSortByZoneRa(t *testing.T) {
	cat := testCatalog(t, 13)
	gs := append([]Galaxy(nil), cat.Galaxies...)
	SortByZoneRa(gs, astro.ZoneHeightDeg)
	for i := 1; i < len(gs); i++ {
		zi := astro.ZoneID(gs[i-1].Dec, astro.ZoneHeightDeg)
		zj := astro.ZoneID(gs[i].Dec, astro.ZoneHeightDeg)
		if zi > zj || (zi == zj && gs[i-1].Ra > gs[i].Ra) {
			t.Fatalf("order violated at %d", i)
		}
	}
}

func TestCatalogRoundTrip(t *testing.T) {
	cat := testCatalog(t, 17)
	var buf bytes.Buffer
	if _, err := cat.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCatalog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != cat.Seed || got.Region != cat.Region {
		t.Error("header fields differ after round trip")
	}
	if len(got.Galaxies) != len(cat.Galaxies) || len(got.Truth) != len(cat.Truth) {
		t.Fatalf("row counts differ after round trip")
	}
	for i := range got.Galaxies {
		a, b := cat.Galaxies[i], got.Galaxies[i]
		if a.ObjID != b.ObjID || a.Ra != b.Ra || a.Dec != b.Dec {
			t.Fatalf("galaxy %d identity differs", i)
		}
		// i, gr, ri travel as float32.
		if math.Abs(a.I-b.I) > 1e-5 || math.Abs(a.Gr-b.Gr) > 1e-6 || math.Abs(a.Ri-b.Ri) > 1e-6 {
			t.Fatalf("galaxy %d photometry differs beyond float32 precision", i)
		}
	}
	if got.Kcorr.Steps() != cat.Kcorr.Steps() {
		t.Fatal("kcorr steps differ")
	}
}

func TestCatalogFileRoundTrip(t *testing.T) {
	cat := testCatalog(t, 19)
	path := filepath.Join(t.TempDir(), "cat.bin")
	if err := cat.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != cat.Len() {
		t.Fatalf("file round trip lost rows: %d vs %d", got.Len(), cat.Len())
	}
}

func TestReadCatalogRejectsGarbage(t *testing.T) {
	if _, err := ReadCatalog(bytes.NewReader([]byte("not a catalog at all"))); err == nil {
		t.Error("expected error for bad magic")
	}
	var buf bytes.Buffer
	cat := testCatalog(t, 23)
	if _, err := cat.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Truncate mid-stream.
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadCatalog(bytes.NewReader(trunc)); err == nil {
		t.Error("expected error for truncated stream")
	}
}

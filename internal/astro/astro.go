// Package astro provides the spherical-astronomy primitives used throughout
// the MaxBCG reproduction: equatorial coordinates, unit vectors on the
// celestial sphere, angular distances, and the zone mapping of
// Gray et al., "There Goes the Neighborhood" (MSR-TR-2004-32), which the
// paper uses to turn spherical neighbor searches into relational range scans.
//
// Conventions follow the SDSS catalog: right ascension (ra) and declination
// (dec) are in degrees, ra in [0, 360) and dec in [-90, +90]. Angular
// distances are reported in degrees unless noted otherwise.
package astro

import "math"

// Deg2Rad converts degrees to radians.
const Deg2Rad = math.Pi / 180.0

// Rad2Deg converts radians to degrees.
const Rad2Deg = 180.0 / math.Pi

// ZoneHeightDeg is the standard SDSS zone height of 30 arcseconds, expressed
// in degrees. The paper's fGetNearbyObjEqZd uses this value.
const ZoneHeightDeg = 30.0 / 3600.0

// Vec3 is a unit vector on the celestial sphere.
type Vec3 struct {
	X, Y, Z float64
}

// UnitVector converts equatorial coordinates (degrees) to a unit vector.
// This is the (cx, cy, cz) triple stored in the SDSS Zone table.
func UnitVector(raDeg, decDeg float64) Vec3 {
	ra := raDeg * Deg2Rad
	dec := decDeg * Deg2Rad
	cosDec := math.Cos(dec)
	return Vec3{
		X: cosDec * math.Cos(ra),
		Y: cosDec * math.Sin(ra),
		Z: math.Sin(dec),
	}
}

// RaDec converts a unit vector back to equatorial coordinates in degrees,
// with ra normalized to [0, 360).
func (v Vec3) RaDec() (raDeg, decDeg float64) {
	ra := math.Atan2(v.Y, v.X) * Rad2Deg
	if ra < 0 {
		ra += 360
	}
	dec := math.Asin(clamp(v.Z, -1, 1)) * Rad2Deg
	return ra, dec
}

// Dot returns the dot product of two vectors.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Chord2 returns the squared chord length between two unit vectors.
// For two points separated by angle θ the chord is 2·sin(θ/2), so
// chord² = 4·sin²(θ/2). Comparing chord² against Chord2FromAngle(r) tests
// "within r degrees" without any trigonometry in the inner loop, exactly as
// the paper's zone join does with
//
//	@r2 > POWER(cx-@cx,2) + POWER(cy-@cy,2) + POWER(cz-@cz,2).
func (v Vec3) Chord2(w Vec3) float64 {
	dx := v.X - w.X
	dy := v.Y - w.Y
	dz := v.Z - w.Z
	return dx*dx + dy*dy + dz*dz
}

// Chord2FromAngle returns the squared chord length subtended by an angle of
// rDeg degrees: 4·sin²(r/2).
func Chord2FromAngle(rDeg float64) float64 {
	s := math.Sin(rDeg * Deg2Rad / 2)
	return 4 * s * s
}

// AngleFromChord converts a chord length between unit vectors to the
// subtended angle in degrees.
func AngleFromChord(chord float64) float64 {
	return 2 * math.Asin(clamp(chord/2, -1, 1)) * Rad2Deg
}

// Distance returns the exact angular separation in degrees between two
// equatorial positions, computed through the chord (numerically stable for
// small separations, unlike acos of a dot product).
func Distance(ra1, dec1, ra2, dec2 float64) float64 {
	v := UnitVector(ra1, dec1)
	w := UnitVector(ra2, dec2)
	return AngleFromChord(math.Sqrt(v.Chord2(w)))
}

// ChordDistanceDeg mimics the paper's fGetNearbyObjEqZd distance column: the
// raw chord length divided by Deg2Rad. For small separations this equals the
// angular separation in degrees to first order; the paper stores exactly this
// quantity, so we reproduce it (tests bound its error against Distance).
func ChordDistanceDeg(ra1, dec1, ra2, dec2 float64) float64 {
	v := UnitVector(ra1, dec1)
	w := UnitVector(ra2, dec2)
	return math.Sqrt(v.Chord2(w)) / Deg2Rad
}

// ZoneID returns the zone number of a declination for a given zone height in
// degrees: floor((dec + 90) / h). This is the paper's zone formula.
func ZoneID(decDeg, zoneHeightDeg float64) int {
	return int(math.Floor((decDeg + 90.0) / zoneHeightDeg))
}

// ZoneRange returns the inclusive range of zones that can contain points
// within rDeg of decDeg, i.e. floor((dec±r+90)/h).
func ZoneRange(decDeg, rDeg, zoneHeightDeg float64) (minZone, maxZone int) {
	minZone = ZoneID(decDeg-rDeg, zoneHeightDeg)
	maxZone = ZoneID(decDeg+rDeg, zoneHeightDeg)
	return minZone, maxZone
}

// ZoneDecBounds returns the declination interval [lo, hi) covered by a zone.
func ZoneDecBounds(zoneID int, zoneHeightDeg float64) (lo, hi float64) {
	lo = float64(zoneID)*zoneHeightDeg - 90
	return lo, lo + zoneHeightDeg
}

// RaHalfWidth returns the half-width @x of the ra interval that must be
// scanned inside zone zoneID to cover a circle of radius rDeg centred at
// (raDeg, decDeg). It reproduces the narrowing logic of fGetNearbyObjEqZd —
// zones away from the centre zone subtend a narrower ra range, stretched by
// 1/cos(dec) away from the equator — made conservative at high declination:
// the numerator uses the zone edge nearest the centre (largest chord) while
// the cosine uses the declination of largest magnitude the circle reaches
// inside the zone (strongest stretching), so the window never undershoots.
func RaHalfWidth(decDeg, rDeg float64, zoneID int, zoneHeightDeg float64) float64 {
	const epsilon = 1e-9
	zLo, zHi := ZoneDecBounds(zoneID, zoneHeightDeg)
	lo := math.Max(zLo, decDeg-rDeg)
	hi := math.Min(zHi, decDeg+rDeg)
	if lo > hi {
		return epsilon // zone does not meet the circle's declination band
	}
	// Exact spherical geometry: for a point at declination δ′ on the
	// circle of radius r around (α, δ), cos Δα = (cos r − sin δ sin δ′) /
	// (cos δ cos δ′). Δα(δ′) is unimodal with its peak at the tangent
	// declination sin δ′ = sin δ / cos r, so the maximum over the zone is
	// attained at a clipped endpoint or at that interior peak. (The
	// paper's planar √(r²−Δδ²)/cos δ formula undershoots near the poles.)
	sinDec, cosDec := math.Sincos(decDeg * Deg2Rad)
	cosR := math.Cos(rDeg * Deg2Rad)
	dra := func(decP float64) float64 {
		sinP, cosP := math.Sincos(decP * Deg2Rad)
		den := cosDec * cosP
		if den < 1e-12 {
			return 180
		}
		c := (cosR - sinDec*sinP) / den
		if c <= -1 {
			return 180
		}
		if c >= 1 {
			return 0
		}
		return math.Acos(c) * Rad2Deg
	}
	x := math.Max(dra(lo), dra(hi))
	if sp := sinDec / cosR; math.Abs(sp) <= 1 {
		if peak := math.Asin(sp) * Rad2Deg; peak >= lo && peak <= hi {
			s := math.Sin(rDeg*Deg2Rad) / math.Max(cosDec, 1e-12)
			if s >= 1 {
				return 180
			}
			x = math.Max(x, math.Asin(s)*Rad2Deg)
		}
	}
	return x + epsilon
}

// RaWindows splits the ra interval [raDeg−halfWidthDeg, raDeg+halfWidthDeg]
// into the segments of [0, 360) it covers. A window that straddles the
// ra = 0°/360° seam yields two segments, so a range scan over ra-sorted
// storage sees every neighbour of a centre near the seam. raDeg must be in
// [0, 360); segments come back ascending, inclusive on both ends.
func RaWindows(raDeg, halfWidthDeg float64) (segs [2][2]float64, n int) {
	if halfWidthDeg >= 180 {
		segs[0] = [2]float64{0, 360}
		return segs, 1
	}
	lo, hi := raDeg-halfWidthDeg, raDeg+halfWidthDeg
	switch {
	case lo < 0:
		segs[0] = [2]float64{0, hi}
		segs[1] = [2]float64{lo + 360, 360}
		return segs, 2
	case hi > 360:
		segs[0] = [2]float64{0, hi - 360}
		segs[1] = [2]float64{lo, 360}
		return segs, 2
	default:
		segs[0] = [2]float64{lo, hi}
		return segs, 1
	}
}

// NormalizeRa maps an ra value into [0, 360).
func NormalizeRa(raDeg float64) float64 {
	raDeg = math.Mod(raDeg, 360)
	if raDeg < 0 {
		raDeg += 360
	}
	return raDeg
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

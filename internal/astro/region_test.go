package astro

import (
	"math"
	"testing"
)

func TestNewBoxValidation(t *testing.T) {
	if _, err := NewBox(10, 5, 0, 1); err == nil {
		t.Error("expected error for reversed ra range")
	}
	if _, err := NewBox(0, 1, 5, 5); err == nil {
		t.Error("expected error for empty dec range")
	}
	if _, err := NewBox(0, 1, -95, 0); err == nil {
		t.Error("expected error for dec below -90")
	}
	if _, err := NewBox(172, 185, -3, 5); err != nil {
		t.Errorf("paper import region rejected: %v", err)
	}
}

func TestPaperAreas(t *testing.T) {
	// Paper: target 11x6 = 66 deg^2 inside buffer 13x8 = 104 deg^2.
	target := MustBox(173, 184, -2, 4)
	if got := target.FlatArea(); got != 66 {
		t.Errorf("target flat area = %g, want 66", got)
	}
	buffer := target.Expand(1) // 13 x 8
	if got := buffer.FlatArea(); got != 104 {
		t.Errorf("buffer flat area = %g, want 104", got)
	}
	// Near the equator spherical and flat areas agree to well under 1%.
	if rel := math.Abs(target.SphericalArea()-66) / 66; rel > 0.01 {
		t.Errorf("spherical area deviates %g%% from flat", rel*100)
	}
}

func TestExpandClampsAtPoles(t *testing.T) {
	b := MustBox(0, 10, 85, 89)
	e := b.Expand(5)
	if e.MaxDec != 90 {
		t.Errorf("MaxDec = %g, want clamped to 90", e.MaxDec)
	}
	if e.MinDec != 80 {
		t.Errorf("MinDec = %g, want 80", e.MinDec)
	}
}

func TestContainsMatchesBetweenSemantics(t *testing.T) {
	b := MustBox(172.5, 184.5, -2.5, 4.5) // paper's spMakeCandidates bounds
	if !b.Contains(172.5, -2.5) || !b.Contains(184.5, 4.5) {
		t.Error("BETWEEN is inclusive; box must contain its corners")
	}
	if b.Contains(172.4999, 0) || b.Contains(0, 10) {
		t.Error("box contains points outside its bounds")
	}
}

func TestSplitDecCoversExactly(t *testing.T) {
	b := MustBox(172, 185, -3, 5)
	for _, n := range []int{1, 2, 3, 5, 7} {
		slabs := b.SplitDec(n)
		if len(slabs) != n {
			t.Fatalf("SplitDec(%d) returned %d slabs", n, len(slabs))
		}
		if slabs[0].MinDec != b.MinDec || slabs[n-1].MaxDec != b.MaxDec {
			t.Errorf("n=%d: slabs do not span the box", n)
		}
		var area float64
		for i, s := range slabs {
			area += s.FlatArea()
			if i > 0 && math.Abs(s.MinDec-slabs[i-1].MaxDec) > 1e-12 {
				t.Errorf("n=%d: gap between slab %d and %d", n, i-1, i)
			}
		}
		if math.Abs(area-b.FlatArea()) > 1e-9 {
			t.Errorf("n=%d: slab areas sum to %g, want %g", n, area, b.FlatArea())
		}
	}
}

func TestFieldsTiling(t *testing.T) {
	// A 2x1 deg box tiled with 0.5 deg fields gives 4x2 = 8 fields of
	// 0.25 deg^2 each, the TAM unit of work.
	b := MustBox(100, 102, 0, 1)
	fields := b.Fields(0.5)
	if len(fields) != 8 {
		t.Fatalf("got %d fields, want 8", len(fields))
	}
	var area float64
	for _, f := range fields {
		if math.Abs(f.FlatArea()-0.25) > 1e-9 {
			t.Errorf("field %v area %g, want 0.25", f, f.FlatArea())
		}
		area += f.FlatArea()
	}
	if math.Abs(area-b.FlatArea()) > 1e-9 {
		t.Errorf("fields sum to %g, want %g", area, b.FlatArea())
	}
}

func TestFieldsClipPartial(t *testing.T) {
	b := MustBox(0, 1.2, 0, 0.7)
	fields := b.Fields(0.5)
	var area float64
	for _, f := range fields {
		if f.MaxRa > b.MaxRa+1e-12 || f.MaxDec > b.MaxDec+1e-12 {
			t.Errorf("field %v exceeds box %v", f, b)
		}
		area += f.FlatArea()
	}
	if math.Abs(area-b.FlatArea()) > 1e-9 {
		t.Errorf("clipped fields sum to %g, want %g", area, b.FlatArea())
	}
}

func TestIntersect(t *testing.T) {
	a := MustBox(0, 10, 0, 10)
	b := MustBox(5, 15, 5, 15)
	got, ok := a.Intersect(b)
	if !ok || got != (Box{MinRa: 5, MaxRa: 10, MinDec: 5, MaxDec: 10}) {
		t.Errorf("Intersect = %v ok=%v", got, ok)
	}
	c := MustBox(20, 30, 0, 10)
	if _, ok := a.Intersect(c); ok {
		t.Error("disjoint boxes reported as intersecting")
	}
}

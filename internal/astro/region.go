package astro

import (
	"fmt"
	"math"
)

// Box is an axis-aligned region in equatorial coordinates: an ra interval
// crossed with a dec interval. The paper's target (T) and buffer (B, P)
// areas are boxes, e.g. "11 deg x 6 deg = 66 deg2 inside a buffer area of
// 13 deg x 8 deg = 104 deg2".
//
// Boxes here do not wrap across ra=0; the survey regions used by the paper
// (ra 172–185) do not wrap either. NewBox rejects wrapping input.
type Box struct {
	MinRa, MaxRa   float64
	MinDec, MaxDec float64
}

// NewBox validates and returns a Box.
func NewBox(minRa, maxRa, minDec, maxDec float64) (Box, error) {
	b := Box{MinRa: minRa, MaxRa: maxRa, MinDec: minDec, MaxDec: maxDec}
	if minRa >= maxRa {
		return b, fmt.Errorf("astro: box ra range [%g, %g] is empty or wraps", minRa, maxRa)
	}
	if minDec >= maxDec {
		return b, fmt.Errorf("astro: box dec range [%g, %g] is empty", minDec, maxDec)
	}
	if minDec < -90 || maxDec > 90 {
		return b, fmt.Errorf("astro: box dec range [%g, %g] outside [-90, 90]", minDec, maxDec)
	}
	return b, nil
}

// MustBox is NewBox that panics on invalid input; for tests and constants.
func MustBox(minRa, maxRa, minDec, maxDec float64) Box {
	b, err := NewBox(minRa, maxRa, minDec, maxDec)
	if err != nil {
		panic(err)
	}
	return b
}

// Contains reports whether the position lies inside the box (inclusive
// bounds, matching SQL BETWEEN in the paper's procedures).
func (b Box) Contains(raDeg, decDeg float64) bool {
	return raDeg >= b.MinRa && raDeg <= b.MaxRa &&
		decDeg >= b.MinDec && decDeg <= b.MaxDec
}

// Expand grows the box by marginDeg on every side, producing the buffer
// region the paper calls B (or P): "objects inside T and up to 0.5 deg away
// from T". Dec is clamped to the poles.
func (b Box) Expand(marginDeg float64) Box {
	return Box{
		MinRa:  b.MinRa - marginDeg,
		MaxRa:  b.MaxRa + marginDeg,
		MinDec: math.Max(b.MinDec-marginDeg, -90),
		MaxDec: math.Min(b.MaxDec+marginDeg, 90),
	}
}

// FlatArea returns the "survey" area in square degrees as the paper computes
// it: Δra × Δdec (the paper says 11×6 = 66 deg²). Near the equator this is
// very close to the true spherical area.
func (b Box) FlatArea() float64 {
	return (b.MaxRa - b.MinRa) * (b.MaxDec - b.MinDec)
}

// SphericalArea returns the exact area on the unit sphere in square degrees:
// Δra · (sin(maxDec) − sin(minDec)) · (180/π).
func (b Box) SphericalArea() float64 {
	dRa := (b.MaxRa - b.MinRa) * Deg2Rad
	band := math.Sin(b.MaxDec*Deg2Rad) - math.Sin(b.MinDec*Deg2Rad)
	return dRa * band * Rad2Deg * Rad2Deg
}

// Width returns the ra extent in degrees.
func (b Box) Width() float64 { return b.MaxRa - b.MinRa }

// Height returns the dec extent in degrees.
func (b Box) Height() float64 { return b.MaxDec - b.MinDec }

// String implements fmt.Stringer.
func (b Box) String() string {
	return fmt.Sprintf("[ra %g..%g, dec %g..%g]", b.MinRa, b.MaxRa, b.MinDec, b.MaxDec)
}

// SplitDec divides the box into n contiguous horizontal (declination) slabs
// of equal height, the decomposition used to spread zones across servers in
// the paper's Figure 6. n must be >= 1.
func (b Box) SplitDec(n int) []Box {
	if n < 1 {
		n = 1
	}
	out := make([]Box, n)
	h := b.Height() / float64(n)
	for i := 0; i < n; i++ {
		lo := b.MinDec + float64(i)*h
		hi := lo + h
		if i == n-1 {
			hi = b.MaxDec // avoid floating-point shortfall on the last slab
		}
		out[i] = Box{MinRa: b.MinRa, MaxRa: b.MaxRa, MinDec: lo, MaxDec: hi}
	}
	return out
}

// Fields tiles the box with sideDeg × sideDeg target fields, the TAM
// decomposition ("breaks the sky in 0.25 deg² fields", i.e. side 0.5°).
// Partial fields at the max edges are included and clipped to the box.
func (b Box) Fields(sideDeg float64) []Box {
	if sideDeg <= 0 {
		return nil
	}
	var out []Box
	for dec := b.MinDec; dec < b.MaxDec-1e-12; dec += sideDeg {
		hiDec := math.Min(dec+sideDeg, b.MaxDec)
		for ra := b.MinRa; ra < b.MaxRa-1e-12; ra += sideDeg {
			hiRa := math.Min(ra+sideDeg, b.MaxRa)
			out = append(out, Box{MinRa: ra, MaxRa: hiRa, MinDec: dec, MaxDec: hiDec})
		}
	}
	return out
}

// Intersect returns the overlap of two boxes and whether it is non-empty.
func (b Box) Intersect(o Box) (Box, bool) {
	r := Box{
		MinRa:  math.Max(b.MinRa, o.MinRa),
		MaxRa:  math.Min(b.MaxRa, o.MaxRa),
		MinDec: math.Max(b.MinDec, o.MinDec),
		MaxDec: math.Min(b.MaxDec, o.MaxDec),
	}
	if r.MinRa >= r.MaxRa || r.MinDec >= r.MaxDec {
		return Box{}, false
	}
	return r, true
}

package astro

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestUnitVectorRoundTrip(t *testing.T) {
	cases := []struct{ ra, dec float64 }{
		{0, 0}, {90, 0}, {180, 0}, {270, 0},
		{195.163, 2.5}, // MySkyServerDr1 centre from the paper appendix
		{172.5, -2.5}, {184.5, 4.5},
		{359.999, 89.9}, {0.001, -89.9},
	}
	for _, c := range cases {
		v := UnitVector(c.ra, c.dec)
		ra, dec := v.RaDec()
		if !almostEqual(ra, c.ra, 1e-9) || !almostEqual(dec, c.dec, 1e-9) {
			t.Errorf("round trip (%g,%g) -> (%g,%g)", c.ra, c.dec, ra, dec)
		}
		n := math.Sqrt(v.Dot(v))
		if !almostEqual(n, 1, 1e-12) {
			t.Errorf("unit vector norm %g for (%g,%g)", n, c.ra, c.dec)
		}
	}
}

func TestUnitVectorRoundTripProperty(t *testing.T) {
	f := func(raSeed, decSeed float64) bool {
		ra := NormalizeRa(raSeed)
		dec := math.Mod(decSeed, 89.0) // stay off the exact poles where ra is degenerate
		v := UnitVector(ra, dec)
		ra2, dec2 := v.RaDec()
		return almostEqual(ra2, ra, 1e-8) && almostEqual(dec2, dec, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDistanceKnownValues(t *testing.T) {
	cases := []struct {
		ra1, dec1, ra2, dec2, want float64
	}{
		{0, 0, 0, 0, 0},
		{0, 0, 1, 0, 1},         // 1 degree along the equator
		{0, 0, 0, 1, 1},         // 1 degree in dec
		{0, 0, 180, 0, 180},     // antipodal on the equator
		{10, 89, 190, 89, 2},    // across the pole
		{0, 60, 2, 60, 0.99996}, // ra separation shrinks by cos(dec): 2*cos(60)=1 to 1st order
	}
	for _, c := range cases {
		got := Distance(c.ra1, c.dec1, c.ra2, c.dec2)
		if !almostEqual(got, c.want, 2e-4) {
			t.Errorf("Distance(%g,%g,%g,%g) = %g, want %g", c.ra1, c.dec1, c.ra2, c.dec2, got, c.want)
		}
	}
}

func TestChordDistanceApproximatesAngle(t *testing.T) {
	// The paper stores chord/Deg2Rad as "distance in degrees". For the
	// sub-degree radii MaxBCG uses, the relative error must be tiny.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		ra := rng.Float64() * 360
		dec := rng.Float64()*120 - 60
		dr := rng.Float64() * 0.5 // up to 0.5 degrees, the MaxBCG search radius
		ra2 := ra + dr/math.Cos(dec*Deg2Rad)
		exact := Distance(ra, dec, ra2, dec)
		chord := ChordDistanceDeg(ra, dec, ra2, dec)
		if exact == 0 {
			continue
		}
		rel := math.Abs(chord-exact) / exact
		if rel > 1e-4 {
			t.Fatalf("chord distance error %g at separation %g deg", rel, exact)
		}
	}
}

func TestChord2FromAngleInverse(t *testing.T) {
	for _, r := range []float64{0.01, 0.1, 0.5, 1, 5, 30, 90, 179} {
		chord2 := Chord2FromAngle(r)
		back := AngleFromChord(math.Sqrt(chord2))
		if !almostEqual(back, r, 1e-9) {
			t.Errorf("AngleFromChord(sqrt(Chord2FromAngle(%g))) = %g", r, back)
		}
	}
}

func TestZoneIDFormula(t *testing.T) {
	h := ZoneHeightDeg
	cases := []struct {
		dec  float64
		want int
	}{
		{-90, 0},
		{-90 + h/2, 0},
		{-90 + h, 1},
		{0, int(90 / h)},
		{2.5, int(math.Floor((2.5 + 90) / h))},
	}
	for _, c := range cases {
		if got := ZoneID(c.dec, h); got != c.want {
			t.Errorf("ZoneID(%g) = %d, want %d", c.dec, got, c.want)
		}
	}
}

func TestZonePartitionProperty(t *testing.T) {
	// Every declination belongs to exactly one zone, and that zone's dec
	// bounds contain it: the zones partition the sphere.
	f := func(decSeed float64) bool {
		dec := math.Mod(decSeed, 90)
		z := ZoneID(dec, ZoneHeightDeg)
		lo, hi := ZoneDecBounds(z, ZoneHeightDeg)
		return dec >= lo-1e-12 && dec < hi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestZoneRangeCoversRadius(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		dec := rng.Float64()*160 - 80
		r := rng.Float64() * 0.6
		minZ, maxZ := ZoneRange(dec, r, ZoneHeightDeg)
		// Points at dec±r must land inside [minZ, maxZ].
		for _, d := range []float64{dec - r, dec, dec + r} {
			z := ZoneID(d, ZoneHeightDeg)
			if z < minZ || z > maxZ {
				t.Fatalf("dec %g r %g: zone %d outside [%d, %d]", dec, r, z, minZ, maxZ)
			}
		}
	}
}

func TestRaHalfWidthCoversCircle(t *testing.T) {
	// For any point Q within r of the centre, Q's ra must fall inside
	// centre.ra ± RaHalfWidth for Q's zone. This is the correctness
	// condition for the zone search's ra pruning.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		ra := 50 + rng.Float64()*10
		dec := rng.Float64()*120 - 60
		r := 0.05 + rng.Float64()*0.5
		cen := ZoneID(dec, ZoneHeightDeg)

		// random point within the circle (rejection-free: polar sampling)
		theta := rng.Float64() * 2 * math.Pi
		rr := r * math.Sqrt(rng.Float64())
		qdec := dec + rr*math.Sin(theta)
		qra := ra + rr*math.Cos(theta)/math.Cos(qdec*Deg2Rad)
		if Distance(ra, dec, qra, qdec) > r {
			continue // tangent-plane sampling can slightly overshoot; skip
		}
		qz := ZoneID(qdec, ZoneHeightDeg)
		x := RaHalfWidth(dec, r, qz, ZoneHeightDeg)
		if qra < ra-x || qra > ra+x {
			t.Fatalf("point (%g,%g) within %g of (%g,%g) escapes ra window ±%g (zone %d, cen %d)",
				qra, qdec, r, ra, dec, x, qz, cen)
		}
	}
}

func TestNormalizeRa(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0}, {360, 0}, {361, 1}, {-1, 359}, {720.5, 0.5}, {-720, 0},
	}
	for _, c := range cases {
		if got := NormalizeRa(c.in); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("NormalizeRa(%g) = %g, want %g", c.in, got, c.want)
		}
	}
}

package fed_test

// Chaos suite: every test arms a faultinject site shared across the
// in-process workers, runs a federated sweep, and requires the result
// to stay bit-identical to the centralised oracle — retries must never
// drop or double-count hits. The faultinject registry is process-wide,
// so these tests never run in parallel.

import (
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/astro"
	"repro/internal/faultinject"
	"repro/internal/fed"
	"repro/internal/zone"
)

// TestChaosRetryTransient arms the worker sweep entry point to fail the
// first two requests with a transient 500. The coordinator must retry
// and still produce the exact centralised sequence.
func TestChaosRetryTransient(t *testing.T) {
	region := astro.MustBox(194, 196, 1.0, 3.0)
	cat := genCatalog(t, region, 31, 2000, 2)
	c, _ := startFederation(t, cat, fedTestTopo(region), fed.Options{})
	probes := testProbes(region, 33, 32)
	want := localSweep(t, cat, region, probes)

	t.Cleanup(faultinject.Reset)
	faultinject.Enable(fed.SiteWorkerSweep, faultinject.Failpoint{MaxHits: 2})

	got := federatedSweep(t, c, probes)
	requireSameHits(t, got, want)
	if st := c.CoordStats(); st.Retries < 2 {
		t.Errorf("coordinator reported %d retries, want >= 2", st.Retries)
	}
}

// TestChaosMidStreamDeath kills a worker connection after it has
// already streamed hits: the truncated NDJSON stream (no trailer) must
// read as transient, and the retry must not double-count the hits the
// dead attempt already delivered.
func TestChaosMidStreamDeath(t *testing.T) {
	region := astro.MustBox(194, 196, 1.0, 3.0)
	cat := genCatalog(t, region, 37, 2000, 2)
	c, _ := startFederation(t, cat, fedTestTopo(region), fed.Options{})
	probes := testProbes(region, 39, 32)
	want := localSweep(t, cat, region, probes)
	if len(want) == 0 {
		t.Fatal("oracle produced no hits; mid-stream death cannot trigger")
	}

	t.Cleanup(faultinject.Reset)
	faultinject.Enable(fed.SiteWorkerStream, faultinject.Failpoint{MaxHits: 1})

	got := federatedSweep(t, c, probes)
	requireSameHits(t, got, want)
	if st := c.CoordStats(); st.Retries < 1 {
		t.Errorf("coordinator reported %d retries after a mid-stream death", st.Retries)
	}
}

// TestChaosFailover gives one stripe a dead primary and a live replica:
// the coordinator must rotate to the replica and count a failover.
func TestChaosFailover(t *testing.T) {
	region := astro.MustBox(194, 196, 1.0, 3.0)
	cat := genCatalog(t, region, 41, 2000, 2)
	topo := fedTestTopo(region)
	_, workers := startFederation(t, cat, topo, fed.Options{})

	dead := httptest.NewServer(nil)
	dead.Close() // connection refused from now on

	topo2 := topo.Clone()
	topo2.Stripes[0].Endpoints = []string{dead.URL, topo.Stripes[0].Endpoints[0]}
	c2, err := fed.NewCoordinator(topo2, fed.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_ = workers

	probes := testProbes(region, 43, 32)
	want := localSweep(t, cat, region, probes)
	got := federatedSweep(t, c2, probes)
	requireSameHits(t, got, want)
	st := c2.CoordStats()
	if st.Failovers < 1 {
		t.Errorf("coordinator reported %d failovers, want >= 1", st.Failovers)
	}
}

// TestChaosAllEndpointsDown leaves one stripe with only a dead
// endpoint: the sweep must fail cleanly (no hang, no partial output
// passed off as complete) with the stripe named in the error.
func TestChaosAllEndpointsDown(t *testing.T) {
	region := astro.MustBox(194, 196, 1.0, 3.0)
	cat := genCatalog(t, region, 47, 1500, 1)
	topo := fedTestTopo(region)
	startFederation(t, cat, topo, fed.Options{})

	dead := httptest.NewServer(nil)
	dead.Close()
	topo2 := topo.Clone()
	topo2.Stripes[1].Endpoints = []string{dead.URL}
	c2, err := fed.NewCoordinator(topo2, fed.Options{Retries: 1})
	if err != nil {
		t.Fatal(err)
	}

	probes := testProbes(region, 49, 16)
	err = c2.Sweep(context.Background(), probes, func(int, zone.ZoneRow) {})
	if err == nil {
		t.Fatal("sweep against a dead stripe succeeded")
	}
	if !strings.Contains(err.Error(), topo.Stripes[1].Name) {
		t.Errorf("error does not name the dead stripe: %v", err)
	}
}

// TestChaosHedging slows one attempt down past the hedge threshold; the
// hedged request to the replica must win with the exact result.
func TestChaosHedging(t *testing.T) {
	region := astro.MustBox(194, 196, 1.0, 3.0)
	cat := genCatalog(t, region, 51, 1500, 1)
	topo := fedTestTopo(region)
	_, workers := startFederation(t, cat, topo, fed.Options{})

	// A second live server over the same worker acts as stripe 0's
	// replica.
	replica := httptest.NewServer(workers[0].Handler())
	t.Cleanup(replica.Close)
	topo2 := topo.Clone()
	topo2.Stripes[0].Endpoints = append(topo2.Stripes[0].Endpoints, replica.URL)
	c2, err := fed.NewCoordinator(topo2, fed.Options{HedgeAfter: 25 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	// Keep every probe inside stripe 0's interior so only stripe 0
	// serves requests — the faultinject site is process-wide, and a
	// request from another stripe would spend the one-hit budget.
	all := testProbes(region, 53, 64)
	var probes []zone.Probe
	for _, p := range all {
		if p.R >= 0 && p.R < 0.1 && p.Dec > 1.2 && p.Dec < 1.5 {
			probes = append(probes, p)
		}
	}
	if len(probes) == 0 {
		t.Fatal("no probes landed in stripe 0's interior")
	}
	want := localSweep(t, cat, region, probes)

	t.Cleanup(faultinject.Reset)
	// Only the first request sleeps; the hedge lands on the replica
	// after the failpoint's budget is spent and runs fast.
	faultinject.Enable(fed.SiteWorkerSlow, faultinject.Failpoint{
		ErrNone: true, Latency: 400 * time.Millisecond, MaxHits: 1,
	})

	got := federatedSweep(t, c2, probes)
	requireSameHits(t, got, want)
	if st := c2.CoordStats(); st.Hedges < 1 {
		t.Errorf("coordinator reported %d hedges, want >= 1", st.Hedges)
	}
}

// TestChaosConcurrentSweeps runs concurrent sweeps while every worker
// request fails with fixed-seed probability 0.3. With a deep retry
// budget every sweep must still converge to the exact oracle — under
// -race this also shakes out coordinator state sharing.
func TestChaosConcurrentSweeps(t *testing.T) {
	region := astro.MustBox(194, 196, 1.0, 3.0)
	cat := genCatalog(t, region, 57, 1500, 1)
	c, _ := startFederation(t, cat, fedTestTopo(region), fed.Options{Retries: 12})

	t.Cleanup(faultinject.Reset)
	faultinject.Enable(fed.SiteWorkerSweep, faultinject.Failpoint{Prob: 0.3, Seed: 61})

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			probes := testProbes(region, seed, 16)
			want := localSweep(t, cat, region, probes)
			got := federatedSweep(t, c, probes)
			requireSameHits(t, got, want)
		}(int64(200 + i))
	}
	wg.Wait()
	if st := c.CoordStats(); st.Retries == 0 {
		t.Errorf("probabilistic faults armed but no retries recorded: %+v", st)
	}
}

package fed_test

// BenchmarkFederatedSweep lives in this package's test binary on
// purpose: linking net/http into the root benchmark binary would change
// BenchmarkTable1NoPartition's allocation profile, which CI gates
// byte-exactly. Here the federation overhead is measured against the
// in-process sweep answering the same probes over the same rows.

import (
	"context"
	"testing"
	"time"

	"repro/internal/astro"
	"repro/internal/fed"
	"repro/internal/sky"
	"repro/internal/sqldb"
	"repro/internal/zone"
)

func BenchmarkFederatedSweep(b *testing.B) {
	region := astro.MustBox(194, 196, 1.0, 3.0)
	cat := genCatalog(b, region, 7, 3000, 4)
	c, _ := startFederation(b, cat, fedTestTopo(region), fed.Options{})
	probes := testProbes(region, 11, 256)

	// Local baseline: one columnar zone table over the same region rows,
	// swept in-process — the numerator of the wire-overhead ratio.
	var gals []sky.Galaxy
	for _, g := range cat.Galaxies {
		if region.Contains(g.Ra, g.Dec) {
			gals = append(gals, g)
		}
	}
	db := sqldb.Open(0)
	zt, err := zone.InstallZoneTableColumnar(db, "Zone", gals, astro.ZoneHeightDeg)
	if err != nil {
		b.Fatal(err)
	}
	src := zone.TableSource(zt, astro.ZoneHeightDeg)
	localOnce := func() (hits int64, err error) {
		err = zone.Sweep(context.Background(), src, probes,
			zone.SweepOptions{Workers: 2}, func(int, zone.ZoneRow) { hits++ })
		return
	}
	wantHits, err := localOnce()
	if err != nil {
		b.Fatal(err)
	}
	if wantHits == 0 {
		b.Fatal("baseline sweep produced no hits")
	}
	// Hand-timed baseline (testing.Benchmark would deadlock on the
	// framework's benchmark lock from inside a running benchmark).
	localNs := int64(1<<62 - 1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		if _, err := localOnce(); err != nil {
			b.Fatal(err)
		}
		localNs = min(localNs, time.Since(start).Nanoseconds())
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var hits int64
		err := c.Sweep(context.Background(), probes, func(int, zone.ZoneRow) { hits++ })
		if err != nil {
			b.Fatal(err)
		}
		if hits != wantHits {
			b.Fatalf("federated sweep returned %d hits, local %d", hits, wantHits)
		}
	}
	b.StopTimer()
	perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(perOp/1e9, "elapsed_s")
	b.ReportMetric(perOp/float64(localNs), "fed_overhead_x")
	b.ReportMetric(float64(wantHits), "hits")
}

package fed_test

import (
	"context"
	"io"
	"log/slog"
	"math"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/astro"
	"repro/internal/fed"
	"repro/internal/perfmodel"
	"repro/internal/sky"
)

// quietLogger keeps worker boot chatter out of test output.
var quietLogger = slog.New(slog.NewTextHandler(io.Discard, nil))

// genCatalog builds a small deterministic catalog for the federation
// tests.
func genCatalog(t testing.TB, region astro.Box, seed int64, density, clusters float64) *sky.Catalog {
	t.Helper()
	cat, err := sky.Generate(sky.GenConfig{
		Region:         region,
		Seed:           seed,
		GalaxyDensity:  density,
		ClusterDensity: clusters,
	})
	if err != nil {
		t.Fatalf("generate catalog: %v", err)
	}
	return cat
}

// startFederation boots one in-process worker + httptest server per
// stripe, runs the buffer-zone exchange, and returns a ready
// coordinator. The returned topology (inside the coordinator) carries
// the live server URLs.
func startFederation(t testing.TB, cat *sky.Catalog, topo fed.Topology, opts fed.Options) (*fed.Coordinator, []*fed.Worker) {
	t.Helper()
	n := len(topo.Stripes)
	workers := make([]*fed.Worker, n)
	servers := make([]*httptest.Server, n)
	for i := 0; i < n; i++ {
		w, err := fed.NewWorker(topo, i, cat, fed.WorkerOptions{SweepWorkers: 2, Logger: quietLogger})
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		workers[i] = w
		servers[i] = httptest.NewServer(w.Handler())
		t.Cleanup(servers[i].Close)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			workers[i].SetEndpoints(j, servers[j].URL)
		}
		topo.Stripes[i].Endpoints = []string{servers[i].URL}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = workers[i].Sync(ctx)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("sync worker %d: %v", i, err)
		}
	}
	c, err := fed.NewCoordinator(topo, opts)
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	return c, workers
}

func TestTopologyValidate(t *testing.T) {
	region := astro.MustBox(194, 196, 1.0, 3.0)
	good := fed.Topology{Region: region, Stripes: []fed.Stripe{
		{Name: "a", MinDec: 1.0, MaxDec: 1.7},
		{Name: "b", MinDec: 1.7, MaxDec: 3.0},
	}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid topology rejected: %v", err)
	}
	bad := []fed.Topology{
		{Region: region},
		{Region: region, Stripes: []fed.Stripe{{MinDec: 1.0, MaxDec: 2.0}}},                             // doesn't reach MaxDec
		{Region: region, Stripes: []fed.Stripe{{MinDec: 1.2, MaxDec: 3.0}}},                             // doesn't start at MinDec
		{Region: region, Stripes: []fed.Stripe{{MinDec: 1.0, MaxDec: 2.0}, {MinDec: 2.1, MaxDec: 3.0}}}, // gap
		{Region: region, Stripes: []fed.Stripe{{MinDec: 1.0, MaxDec: 1.0}, {MinDec: 1.0, MaxDec: 3.0}}}, // empty stripe
	}
	for i, topo := range bad {
		if err := topo.Validate(); err == nil {
			t.Errorf("bad topology %d accepted", i)
		}
	}
}

func TestZoneOwnership(t *testing.T) {
	region := astro.MustBox(194, 196, 1.0, 3.0)
	topo := fed.Topology{Region: region, Stripes: []fed.Stripe{
		{Name: "a", MinDec: 1.0, MaxDec: 1.61234567}, // deliberately not zone-aligned
		{Name: "b", MinDec: 1.61234567, MaxDec: 2.2},
		{Name: "c", MinDec: 2.2, MaxDec: 3.0},
	}}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every zone in the extent is owned by exactly one stripe, and
	// ownership is monotonic in the zone id.
	lo, hi := topo.ZoneExtent()
	prev := 0
	counts := make([]int, len(topo.Stripes))
	for z := lo; z <= hi; z++ {
		o := topo.Owner(z)
		if o < 0 || o >= len(topo.Stripes) {
			t.Fatalf("zone %d owned by out-of-range stripe %d", z, o)
		}
		if o < prev {
			t.Fatalf("ownership regressed at zone %d: %d after %d", z, o, prev)
		}
		prev = o
		counts[o]++
	}
	for i := range topo.Stripes {
		mn, mx, ok := topo.OwnedZones(i)
		if !ok {
			t.Fatalf("stripe %d owns no zones", i)
		}
		if mx-mn+1 != counts[i] {
			t.Fatalf("stripe %d owned range %d..%d disagrees with count %d", i, mn, mx, counts[i])
		}
	}
	// Half-open slices: a dec exactly on an interior cut belongs to the
	// upper stripe; the region's top edge belongs to the last stripe.
	if got := topo.StripeForDec(1.61234567); got != 1 {
		t.Errorf("interior cut dec went to stripe %d, want 1", got)
	}
	if got := topo.StripeForDec(3.0); got != 2 {
		t.Errorf("region top edge went to stripe %d, want 2", got)
	}
	if !topo.SliceContains(2, 3.0) {
		t.Error("last stripe should include its upper edge")
	}
	if topo.SliceContains(0, 0.5) {
		t.Error("dec below the region should be in no slice")
	}
}

func TestPlanStripes(t *testing.T) {
	region := astro.MustBox(194, 196, 1.0, 3.0)
	cat := genCatalog(t, region, 3, 2000, 0)

	equal := []fed.Placement{{Name: "a"}, {Name: "b"}, {Name: "c"}}
	topo, err := fed.PlanStripes(cat, region, equal)
	if err != nil {
		t.Fatal(err)
	}
	shares := rowShares(cat, topo)
	for i, s := range shares {
		if math.Abs(s-1.0/3) > 0.02 {
			t.Errorf("equal capacities: stripe %d holds share %.3f, want ~1/3", i, s)
		}
	}

	// A site with double the CPU capacity gets roughly double the rows.
	big := perfmodel.SQLConfig()
	big.CPUs *= 2
	hetero := []fed.Placement{{Name: "big", System: big}, {Name: "small"}}
	topo2, err := fed.PlanStripes(cat, region, hetero)
	if err != nil {
		t.Fatal(err)
	}
	shares2 := rowShares(cat, topo2)
	if math.Abs(shares2[0]-2.0/3) > 0.03 {
		t.Errorf("heterogeneous: big site holds share %.3f, want ~2/3", shares2[0])
	}

	// The cuts round-trip through the -cuts flag format.
	rt, err := fed.ParseCuts(region, fed.FormatCuts(topo))
	if err != nil {
		t.Fatalf("round-trip cuts: %v", err)
	}
	for i := range topo.Stripes {
		if math.Abs(rt.Stripes[i].MinDec-topo.Stripes[i].MinDec) > 1e-8 ||
			math.Abs(rt.Stripes[i].MaxDec-topo.Stripes[i].MaxDec) > 1e-8 {
			t.Fatalf("cuts did not round-trip: %+v vs %+v", rt.Stripes[i], topo.Stripes[i])
		}
	}
}

func rowShares(cat *sky.Catalog, topo fed.Topology) []float64 {
	counts := make([]float64, len(topo.Stripes))
	var total float64
	for _, g := range cat.Galaxies {
		if !topo.Region.Contains(g.Ra, g.Dec) {
			continue
		}
		counts[topo.StripeForDec(g.Dec)]++
		total++
	}
	for i := range counts {
		counts[i] /= total
	}
	return counts
}

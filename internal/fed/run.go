package fed

import (
	"context"
	"fmt"
	"math"

	"repro/internal/astro"
	"repro/internal/cluster"
	"repro/internal/maxbcg"
	"repro/internal/sky"
	"repro/internal/sqldb"
	"repro/internal/zone"
)

// RunConfig shapes a federated MaxBCG run. The zero value selects the
// paper defaults, matching cluster.Config's.
type RunConfig struct {
	Params         maxbcg.Params // zero = maxbcg.DefaultParams()
	Kcorr          *sky.Kcorr    // nil = cat.Kcorr
	ZoneHeight     float64       // 0 = paper default; must match the topology's
	PoolFrames     int           // coordinator-side buffer pool frames
	PoolShards     int
	IncludeMembers bool
}

// ImportBox returns the region a centralised single-node run imports
// for target: the target expanded by twice the algorithm buffer,
// clipped to the survey (cluster.Plan with one node). A federation
// must cover exactly this box for its answer to be bit-identical to
// the centralised run — RunMaxBCG enforces it.
func ImportBox(target astro.Box, bufferDeg float64, survey astro.Box) (astro.Box, error) {
	parts, err := cluster.Plan(target, 1, bufferDeg, survey)
	if err != nil {
		return astro.Box{}, err
	}
	return parts[0].Import, nil
}

// boundSweeper pins a context to the coordinator so the DBFinder's
// context-free sweep calls still honour the run's cancellation.
type boundSweeper struct {
	c   *Coordinator
	ctx context.Context
}

func (b boundSweeper) Sweep(_ context.Context, probes []zone.Probe, fn func(int, zone.ZoneRow)) error {
	return b.c.Sweep(b.ctx, probes, fn)
}

// RunMaxBCG executes the full MaxBCG pipeline with the zone joins
// federated through c: the Galaxy table (the probe source and the
// pipeline's bookkeeping) loads coordinator-side, spZone is a no-op
// (the stripes built their zone tables at boot), and every batched
// sweep scatters across the workers. The result — candidates,
// clusters, members, and their order — is bit-identical to a
// centralised cluster.Run over the same catalog and target, which is
// what the equivalence and end-to-end tests assert.
func RunMaxBCG(ctx context.Context, c *Coordinator, cat *sky.Catalog, target astro.Box, cfg RunConfig) (*maxbcg.Result, maxbcg.TaskReport, error) {
	params := cfg.Params
	if params == (maxbcg.Params{}) {
		params = maxbcg.DefaultParams()
	}
	kcorr := cfg.Kcorr
	if kcorr == nil {
		kcorr = cat.Kcorr
	}
	height := cfg.ZoneHeight
	if height == 0 {
		height = astro.ZoneHeightDeg
	}
	if math.Abs(height-c.topo.Height()) > 1e-12 {
		return nil, maxbcg.TaskReport{}, fmt.Errorf(
			"fed: run zone height %g != topology zone height %g", height, c.topo.Height())
	}
	imp, err := ImportBox(target, params.BufferDeg, cat.Region)
	if err != nil {
		return nil, maxbcg.TaskReport{}, err
	}
	if !boxesEqual(c.topo.Region, imp) {
		return nil, maxbcg.TaskReport{}, fmt.Errorf(
			"fed: topology region %v does not match the run's import box %v; "+
				"build the topology over ImportBox(target, buffer, survey) so the "+
				"stripes hold exactly the rows a centralised run would index",
			c.topo.Region, imp)
	}

	db := sqldb.OpenPool(sqldb.PoolConfig{Frames: cfg.PoolFrames, Shards: cfg.PoolShards})
	finder, err := maxbcg.NewDBFinder(db, params, kcorr, height)
	if err != nil {
		return nil, maxbcg.TaskReport{}, err
	}
	finder.Remote = boundSweeper{c: c, ctx: ctx}
	if _, err := finder.ImportGalaxies(cat, imp); err != nil {
		return nil, maxbcg.TaskReport{}, err
	}
	return finder.Run(target, cfg.IncludeMembers)
}

func boxesEqual(a, b astro.Box) bool {
	const eps = 1e-9
	return math.Abs(a.MinRa-b.MinRa) <= eps && math.Abs(a.MaxRa-b.MaxRa) <= eps &&
		math.Abs(a.MinDec-b.MinDec) <= eps && math.Abs(a.MaxDec-b.MaxDec) <= eps
}

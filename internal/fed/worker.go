package fed

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/astro"
	"repro/internal/faultinject"
	"repro/internal/sky"
	"repro/internal/sqldb"
	"repro/internal/telemetry"
	"repro/internal/zone"
)

// Fault-injection sites on the federation's RPC paths. The chaos tests
// arm these to prove the coordinator's retry/failover/hedge behaviour;
// production binaries never arm them, so Eval is a single atomic load.
const (
	// SiteWorkerSweep fails a /sweep before any hit is streamed (a
	// refused or dropped connection, as the coordinator sees it).
	SiteWorkerSweep = "fed.worker.sweep"
	// SiteWorkerStream kills the response mid-stream, after hits have
	// already been flushed — the "worker died mid-query" case.
	SiteWorkerStream = "fed.worker.stream"
	// SiteWorkerSlow sleeps (ErrNone + Latency) at /sweep start,
	// modelling a slow worker for the hedging path.
	SiteWorkerSlow = "fed.worker.slow"
	// SiteWorkerExchange fails an /exchange fetch during boot sync.
	SiteWorkerExchange = "fed.worker.exchange"
	// SiteCoordRequest fails a coordinator-side RPC attempt before it
	// is sent.
	SiteCoordRequest = "fed.coord.request"
)

// streamFlushEvery bounds how many hit lines buffer before a flush, so
// a dying worker leaves the coordinator a meaningful partial stream
// (which it must discard — that is what the chaos test proves).
const streamFlushEvery = 128

// WorkerOptions tunes a stripe worker.
type WorkerOptions struct {
	// SweepWorkers is the zone.Sweep parallelism inside this stripe
	// (0 = GOMAXPROCS-derived default).
	SweepWorkers int
	// PoolFrames / PoolShards size the stripe's private buffer pool.
	PoolFrames, PoolShards int
	// Client performs the boot-time /exchange pulls (nil = a default
	// with sane timeouts).
	Client *http.Client
	// Logger receives boot/sync progress (nil = slog.Default()).
	Logger *slog.Logger
}

// A Worker owns one declination stripe: its own sqldb, the stripe's
// zone table (built at boot from a raw catalog slice plus the
// buffer-zone exchange), and the HTTP surface the coordinator calls.
// Create it with NewWorker, start serving (so peers can reach
// /exchange), then run Sync to pull boundary zones and build the zone
// table; /healthz flips to 200 and /sweep starts answering once Sync
// returns.
type Worker struct {
	topo  Topology
	index int
	name  string

	db           *sqldb.DB
	zoneT        *sqldb.Table
	sweepWorkers int
	client       *http.Client
	logger       *slog.Logger

	raw     []sky.Galaxy // region ∩ slice, pre-exchange; /exchange serves these
	rawZone []int        // zone id per raw row

	minZone, maxZone int // owned zone range (inclusive)
	ownedOK          bool

	ready    atomic.Bool
	draining atomic.Bool
	zoneRows atomic.Int64
	ctr      workerCounters
	reg      atomic.Pointer[telemetry.Registry]
}

// NewWorker builds the stripe worker for topo.Stripes[index] from the
// full catalog (each worker cuts its own slice; a deployment that
// ships per-site files slices before the call — the cut is
// deterministic either way).
func NewWorker(topo Topology, index int, cat *sky.Catalog, opts WorkerOptions) (*Worker, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if index < 0 || index >= len(topo.Stripes) {
		return nil, fmt.Errorf("fed: stripe index %d out of range [0, %d)", index, len(topo.Stripes))
	}
	w := &Worker{
		topo:         topo.Clone(),
		index:        index,
		name:         topo.Stripes[index].Name,
		sweepWorkers: opts.SweepWorkers,
		client:       opts.Client,
		logger:       opts.Logger,
	}
	if w.client == nil {
		w.client = &http.Client{Timeout: 30 * time.Second}
	}
	if w.logger == nil {
		w.logger = slog.Default()
	}
	h := w.topo.Height()
	for _, g := range cat.Galaxies {
		if !topo.Region.Contains(g.Ra, g.Dec) || !topo.SliceContains(index, g.Dec) {
			continue
		}
		w.raw = append(w.raw, g)
		w.rawZone = append(w.rawZone, astro.ZoneID(g.Dec, h))
	}
	w.minZone, w.maxZone, w.ownedOK = w.topo.OwnedZones(index)
	w.db = sqldb.OpenPool(sqldb.PoolConfig{Frames: opts.PoolFrames, Shards: opts.PoolShards})
	return w, nil
}

// Name returns the stripe name.
func (w *Worker) Name() string { return w.name }

// Index returns the stripe index.
func (w *Worker) Index() int { return w.index }

// DB exposes the stripe's database (tests and stats).
func (w *Worker) DB() *sqldb.DB { return w.db }

// Ready reports whether Sync has completed and /sweep is serving.
func (w *Worker) Ready() bool { return w.ready.Load() }

// SetDraining flips /healthz to 503 ahead of shutdown.
func (w *Worker) SetDraining(v bool) { w.draining.Store(v) }

// SetEndpoints rewires stripe i's endpoint list in this worker's
// private topology copy — how tests and daemons point workers at each
// other after ports are known.
func (w *Worker) SetEndpoints(i int, endpoints ...string) {
	w.topo.Stripes[i].Endpoints = append([]string(nil), endpoints...)
}

// EnableMetrics attaches the worker's fed_worker_* families plus the
// underlying database's sql_*/pool metrics to reg; /metrics starts
// serving it.
func (w *Worker) EnableMetrics(reg *telemetry.Registry) {
	registerWorkerMetrics(reg, w)
	w.db.EnableMetrics(reg, w.name)
	w.reg.Store(reg)
}

// Sync runs the buffer-zone exchange and builds the stripe's zone
// table: for every owned zone that straddles a neighbouring slice it
// pulls that neighbour's rows via /exchange (retrying until ctx
// expires — peers may still be booting), drops its own raw rows in
// zones a neighbour owns, and bulk-loads the (zone, ra)-clustered
// columnar zone table. After Sync the stripe holds exactly the
// region's rows for its owned zone range.
func (w *Worker) Sync(ctx context.Context) error {
	gals := make([]sky.Galaxy, 0, len(w.raw))
	for i, g := range w.raw {
		if w.ownedOK && w.rawZone[i] >= w.minZone && w.rawZone[i] <= w.maxZone {
			gals = append(gals, g)
		}
	}
	if w.ownedOK {
		h := w.topo.Height()
		for z := w.minZone; z <= w.maxZone; z++ {
			zlo, zhi := astro.ZoneDecBounds(z, h)
			for j := range w.topo.Stripes {
				if j == w.index || !w.sliceTouchesZone(j, zlo, zhi) {
					continue
				}
				rows, err := w.fetchExchange(ctx, j, z)
				if err != nil {
					return fmt.Errorf("fed: %s: exchange zone %d from %s: %w",
						w.name, z, w.topo.Stripes[j].Name, err)
				}
				gals = append(gals, rows...)
			}
		}
	}
	zt, err := zone.InstallZoneTableColumnar(w.db, "zone", gals, w.topo.Height())
	if err != nil {
		return fmt.Errorf("fed: %s: install zone table: %w", w.name, err)
	}
	w.zoneT = zt
	w.zoneRows.Store(int64(len(gals)))
	w.ready.Store(true)
	w.logger.Info("fed worker ready", "stripe", w.name,
		"zones", fmt.Sprintf("%d..%d", w.minZone, w.maxZone),
		"rows", len(gals), "rawRows", len(w.raw))
	return nil
}

// sliceTouchesZone reports whether stripe j's raw slice can hold rows
// of a zone spanning [zlo, zhi).
func (w *Worker) sliceTouchesZone(j int, zlo, zhi float64) bool {
	s := w.topo.Stripes[j]
	last := j == len(w.topo.Stripes)-1
	if zhi <= s.MinDec {
		return false
	}
	if zlo < s.MaxDec {
		return true
	}
	// A zone starting exactly at the last stripe's (inclusive) upper
	// edge can hold the row at dec == MaxDec.
	return last && zlo <= s.MaxDec
}

// fetchExchange pulls one zone's rows from stripe j, cycling its
// endpoints with backoff until ctx gives up — boot order between
// workers is deliberately unconstrained.
func (w *Worker) fetchExchange(ctx context.Context, j, z int) ([]sky.Galaxy, error) {
	endpoints := w.topo.Stripes[j].Endpoints
	if len(endpoints) == 0 {
		return nil, fmt.Errorf("stripe %s has no endpoints", w.topo.Stripes[j].Name)
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return nil, fmt.Errorf("%w (last: %v)", err, lastErr)
			}
			return nil, err
		}
		ep := endpoints[attempt%len(endpoints)]
		rows, err := w.fetchExchangeOnce(ctx, ep, z)
		if err == nil {
			return rows, nil
		}
		lastErr = err
		if !faultinject.IsTransient(err) {
			return nil, err
		}
		select {
		case <-ctx.Done():
		case <-time.After(time.Duration(min(attempt+1, 10)) * 200 * time.Millisecond):
		}
	}
}

func (w *Worker) fetchExchangeOnce(ctx context.Context, endpoint string, z int) ([]sky.Galaxy, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/exchange?zone=%d", endpoint, z), nil)
	if err != nil {
		return nil, err
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return nil, asTransient(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		err := fmt.Errorf("exchange %s: HTTP %d: %s", endpoint, resp.StatusCode, body)
		if resp.StatusCode >= 500 || resp.StatusCode == http.StatusRequestTimeout {
			return nil, asTransient(err)
		}
		return nil, err
	}
	var rows []sky.Galaxy
	cr := &countingReader{r: resp.Body, n: &w.ctr.exchangeBytesIn}
	if err := decodeExchangeStream(cr, func(m *exchangeMsg) {
		rows = append(rows, m.galaxy())
	}); err != nil {
		return nil, err
	}
	w.ctr.exchangeRowsIn.Add(int64(len(rows)))
	return rows, nil
}

// Handler mounts the worker's RPC surface:
//
//	POST /sweep      NDJSON hit stream for a probe batch (503 until Sync)
//	GET  /exchange   one zone's raw rows, for a neighbouring stripe
//	GET  /stats      WorkerStats JSON
//	GET  /healthz    200 ready / 503 syncing or draining
//	GET  /metrics    Prometheus text exposition (404 until EnableMetrics)
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/sweep", w.handleSweep)
	mux.HandleFunc("/exchange", w.handleExchange)
	mux.HandleFunc("/stats", w.handleStats)
	mux.HandleFunc("/healthz", w.handleHealthz)
	mux.HandleFunc("/metrics", w.handleMetrics)
	return mux
}

func (w *Worker) handleSweep(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		fedError(rw, http.StatusMethodNotAllowed, "POST only", false)
		return
	}
	if !w.ready.Load() {
		fedError(rw, http.StatusServiceUnavailable, "stripe is syncing", true)
		return
	}
	if err := faultinject.Eval(SiteWorkerSweep); err != nil {
		fedError(rw, http.StatusInternalServerError, err.Error(), faultinject.IsTransient(err))
		return
	}
	_ = faultinject.Eval(SiteWorkerSlow) // latency-only site
	var req sweepRequest
	body := &countingReader{r: r.Body, n: &w.ctr.probeBytesIn}
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		fedError(rw, http.StatusBadRequest, "malformed sweep request: "+err.Error(), false)
		return
	}
	w.ctr.sweeps.Add(1)
	w.ctr.probes.Add(int64(len(req.Probes)))

	probes := make([]zone.Probe, len(req.Probes))
	idx := make([]int32, len(req.Probes))
	for i, p := range req.Probes {
		probes[i] = zone.Probe{Ra: p.Ra, Dec: p.Dec, R: p.R}
		idx[i] = p.I
	}

	rw.Header().Set("Content-Type", "application/x-ndjson")
	bw := bufio.NewWriter(&countingWriter{w: rw, n: &w.ctr.hitBytesOut})
	enc := json.NewEncoder(bw)
	var hits, sinceFlush int64
	src := zone.TableSource(w.zoneT, w.topo.Height())
	err := zone.Sweep(r.Context(), src, probes,
		zone.SweepOptions{Workers: w.sweepWorkers}, func(pi int, zr zone.ZoneRow) {
			if ferr := faultinject.Eval(SiteWorkerStream); ferr != nil {
				// Die mid-stream: flush what the wire already has, then
				// abort the connection without a trailer.
				_ = bw.Flush()
				panic(http.ErrAbortHandler)
			}
			m := sweepMsg{P: idx[pi], ObjID: zr.ObjID, Ra: zr.Ra, Dec: zr.Dec,
				Dist: zr.Distance, MagI: zr.I, Gr: zr.Gr, Ri: zr.Ri}
			_ = enc.Encode(&m)
			hits++
			if sinceFlush++; sinceFlush >= streamFlushEvery {
				sinceFlush = 0
				_ = bw.Flush()
			}
		})
	trailer := sweepMsg{Done: true, Hits: hits}
	if err != nil {
		trailer.Err = err.Error()
		trailer.Transient = faultinject.IsTransient(err)
	}
	_ = enc.Encode(&trailer)
	_ = bw.Flush()
	w.ctr.hits.Add(hits)
}

func (w *Worker) handleExchange(rw http.ResponseWriter, r *http.Request) {
	z, err := strconv.Atoi(r.URL.Query().Get("zone"))
	if err != nil {
		fedError(rw, http.StatusBadRequest, "bad zone", false)
		return
	}
	if ferr := faultinject.Eval(SiteWorkerExchange); ferr != nil {
		fedError(rw, http.StatusInternalServerError, ferr.Error(), faultinject.IsTransient(ferr))
		return
	}
	rw.Header().Set("Content-Type", "application/x-ndjson")
	bw := bufio.NewWriter(&countingWriter{w: rw, n: &w.ctr.exchangeBytesOut})
	enc := json.NewEncoder(bw)
	var rows int64
	for i := range w.raw {
		if w.rawZone[i] != z {
			continue
		}
		m := galaxyMsg(w.raw[i])
		_ = enc.Encode(&m)
		rows++
	}
	_ = enc.Encode(&exchangeMsg{Done: true, Rows: rows})
	_ = bw.Flush()
	w.ctr.exchangeRowsOut.Add(rows)
}

// WorkerStats is the /stats payload: the stripe's identity, zone
// range, and exact traffic counters. The coordinator's TransferStats
// aggregates these into the grid.TransferStats ledger.
type WorkerStats struct {
	Name             string `json:"name"`
	Index            int    `json:"index"`
	Ready            bool   `json:"ready"`
	MinZone          int    `json:"minZone"`
	MaxZone          int    `json:"maxZone"`
	ZoneRows         int64  `json:"zoneRows"`
	RawRows          int64  `json:"rawRows"`
	Sweeps           int64  `json:"sweeps"`
	Probes           int64  `json:"probes"`
	Hits             int64  `json:"hits"`
	ExchangeRowsIn   int64  `json:"exchangeRowsIn"`
	ExchangeRowsOut  int64  `json:"exchangeRowsOut"`
	ProbeBytesIn     int64  `json:"probeBytesIn"`
	HitBytesOut      int64  `json:"hitBytesOut"`
	ExchangeBytesIn  int64  `json:"exchangeBytesIn"`
	ExchangeBytesOut int64  `json:"exchangeBytesOut"`
}

// Stats snapshots the worker's counters.
func (w *Worker) Stats() WorkerStats {
	return WorkerStats{
		Name: w.name, Index: w.index, Ready: w.ready.Load(),
		MinZone: w.minZone, MaxZone: w.maxZone,
		ZoneRows: w.zoneRows.Load(), RawRows: int64(len(w.raw)),
		Sweeps: w.ctr.sweeps.Load(), Probes: w.ctr.probes.Load(), Hits: w.ctr.hits.Load(),
		ExchangeRowsIn:   w.ctr.exchangeRowsIn.Load(),
		ExchangeRowsOut:  w.ctr.exchangeRowsOut.Load(),
		ProbeBytesIn:     w.ctr.probeBytesIn.Load(),
		HitBytesOut:      w.ctr.hitBytesOut.Load(),
		ExchangeBytesIn:  w.ctr.exchangeBytesIn.Load(),
		ExchangeBytesOut: w.ctr.exchangeBytesOut.Load(),
	}
}

func (w *Worker) handleStats(rw http.ResponseWriter, _ *http.Request) {
	rw.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(rw).Encode(w.Stats())
}

func (w *Worker) handleHealthz(rw http.ResponseWriter, _ *http.Request) {
	switch {
	case w.draining.Load():
		rw.WriteHeader(http.StatusServiceUnavailable)
		_, _ = io.WriteString(rw, "draining\n")
	case !w.ready.Load():
		rw.WriteHeader(http.StatusServiceUnavailable)
		_, _ = io.WriteString(rw, "syncing\n")
	default:
		_, _ = io.WriteString(rw, "ok\n")
	}
}

func (w *Worker) handleMetrics(rw http.ResponseWriter, _ *http.Request) {
	reg := w.reg.Load()
	if reg == nil {
		fedError(rw, http.StatusNotFound, "metrics not enabled", false)
		return
	}
	rw.Header().Set("Content-Type", telemetry.ContentType)
	_ = reg.WritePrometheus(rw)
}

// fedError writes the federation's JSON error body. The transient flag
// tells the coordinator whether a retry can help (it also classifies
// 5xx as transient on its own, so the flag is advisory).
func fedError(w http.ResponseWriter, code int, msg string, transient bool) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\"error\": %q, \"transient\": %v}\n", msg, transient)
}

package fed

import (
	"sync/atomic"

	"repro/internal/telemetry"
)

// Both sides of the federation keep their counters as plain atomics on
// the hot path and expose them as scrape-time Func metrics, following
// the telemetry contract: attaching a registry adds no bookkeeping to
// the sweep itself. The shared fed_transfer_bytes_total{kind} family
// is the exact wire accounting grid.TransferStats summarises — every
// byte is counted by the countingReader/Writer wrapping the HTTP
// bodies, not estimated from struct sizes.

// workerCounters is a Worker's hot-path state, exported via /stats and
// /metrics.
type workerCounters struct {
	sweeps, probes, hits              atomic.Int64
	exchangeRowsIn, exchangeRowsOut   atomic.Int64
	probeBytesIn, hitBytesOut         atomic.Int64
	exchangeBytesIn, exchangeBytesOut atomic.Int64
}

// registerWorkerMetrics attaches the fed_worker_* and
// fed_transfer_bytes_total families for one worker.
func registerWorkerMetrics(r *telemetry.Registry, w *Worker) {
	r.NewGaugeFunc("fed_worker_ready",
		"1 once the buffer-zone exchange finished and the zone table is live",
		func() float64 {
			if w.Ready() {
				return 1
			}
			return 0
		})
	r.NewGaugeFunc("fed_worker_zone_rows",
		"rows in this stripe's zone table after the buffer-zone exchange",
		func() float64 { return float64(w.zoneRows.Load()) })
	r.NewGaugeFunc("fed_worker_zones",
		"zones owned by this stripe",
		func() float64 {
			if !w.ownedOK {
				return 0
			}
			return float64(w.maxZone - w.minZone + 1)
		})
	r.NewCounterFunc("fed_worker_sweeps_total",
		"sweep RPCs served", func() float64 { return float64(w.ctr.sweeps.Load()) })
	r.NewCounterFunc("fed_worker_probes_total",
		"probes received across sweep RPCs", func() float64 { return float64(w.ctr.probes.Load()) })
	r.NewCounterFunc("fed_worker_hits_total",
		"hits streamed back across sweep RPCs", func() float64 { return float64(w.ctr.hits.Load()) })

	rows := r.NewCounterFuncVec("fed_worker_exchange_rows_total",
		"buffer-zone rows exchanged with neighbouring stripes", "dir")
	rows.Attach(func() float64 { return float64(w.ctr.exchangeRowsIn.Load()) }, "in")
	rows.Attach(func() float64 { return float64(w.ctr.exchangeRowsOut.Load()) }, "out")

	bytes := r.NewCounterFuncVec("fed_transfer_bytes_total",
		"exact wire bytes moved, by traffic kind", "kind")
	bytes.Attach(func() float64 { return float64(w.ctr.probeBytesIn.Load()) }, "probes_in")
	bytes.Attach(func() float64 { return float64(w.ctr.hitBytesOut.Load()) }, "hits_out")
	bytes.Attach(func() float64 { return float64(w.ctr.exchangeBytesIn.Load()) }, "exchange_in")
	bytes.Attach(func() float64 { return float64(w.ctr.exchangeBytesOut.Load()) }, "exchange_out")
}

// coordCounters is the Coordinator's hot-path state.
type coordCounters struct {
	sweeps, probes, hits       atomic.Int64
	retries, failovers, hedges atomic.Int64
	probeBytesOut, hitBytesIn  atomic.Int64
	scatter                    []atomic.Int64 // RPC fan-outs per stripe
	pruned                     []atomic.Int64 // batches a stripe was pruned from
}

// registerCoordMetrics attaches the coordinator-side fed_* families.
func registerCoordMetrics(r *telemetry.Registry, c *Coordinator) {
	r.NewCounterFunc("fed_sweeps_total",
		"federated sweep batches executed", func() float64 { return float64(c.ctr.sweeps.Load()) })
	r.NewCounterFunc("fed_probes_total",
		"probes scattered (per stripe reached)", func() float64 { return float64(c.ctr.probes.Load()) })
	r.NewCounterFunc("fed_hits_total",
		"hits merged from worker streams", func() float64 { return float64(c.ctr.hits.Load()) })
	r.NewCounterFunc("fed_retries_total",
		"sweep RPC attempts retried after a transient fault",
		func() float64 { return float64(c.ctr.retries.Load()) })
	r.NewCounterFunc("fed_failovers_total",
		"sweep RPC attempts moved to a replica endpoint",
		func() float64 { return float64(c.ctr.failovers.Load()) })
	r.NewCounterFunc("fed_hedges_total",
		"hedge requests launched against slow primaries",
		func() float64 { return float64(c.ctr.hedges.Load()) })

	scatter := r.NewCounterFuncVec("fed_scatter_total",
		"sweep RPCs scattered, by stripe", "stripe")
	pruned := r.NewCounterFuncVec("fed_pruned_total",
		"sweep batches a stripe was partition-pruned from, by stripe", "stripe")
	for i := range c.topo.Stripes {
		i := i
		scatter.Attach(func() float64 { return float64(c.ctr.scatter[i].Load()) }, c.topo.Stripes[i].Name)
		pruned.Attach(func() float64 { return float64(c.ctr.pruned[i].Load()) }, c.topo.Stripes[i].Name)
	}

	bytes := r.NewCounterFuncVec("fed_transfer_bytes_total",
		"exact wire bytes moved, by traffic kind", "kind")
	bytes.Attach(func() float64 { return float64(c.ctr.probeBytesOut.Load()) }, "probes_out")
	bytes.Attach(func() float64 { return float64(c.ctr.hitBytesIn.Load()) }, "hits_in")
}

package fed

import (
	"encoding/json"
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/sky"
	"repro/internal/zone"
)

// The wire protocol is newline-delimited JSON over HTTP. A /sweep
// request is one JSON object carrying the probe batch; the response is
// a stream of hit lines followed by exactly one trailer line with
// "done": true. /exchange responses stream galaxy-row lines the same
// way. Go's encoding/json renders float64 in shortest round-trip form,
// so coordinates, distances, and magnitudes survive the wire bit for
// bit — the federated result stays byte-identical to the centralised
// sweep without a binary encoding.
//
// The trailer carries the line count so the receiver can detect a
// truncated stream (a worker dying mid-response still yields a valid
// prefix of NDJSON lines). A missing or short trailer, like any
// transport error, classifies as transient and is retried; an error
// trailer carries the worker's own transient/permanent verdict.

// sweepRequest is the POST /sweep body. Probe indices are the
// coordinator's global batch positions: a worker only sees the probes
// whose zone windows intersect its stripe, and tags every hit with the
// global index so the coordinator's merge can hand hits to the
// caller's fn under the original numbering.
type sweepRequest struct {
	Probes []wireProbe `json:"probes"`
}

// wireProbe is one probe of a sweep batch. R < 0 never matches
// (zone.Probe's convention) and is pruned coordinator-side.
type wireProbe struct {
	I   int32   `json:"i"`
	Ra  float64 `json:"ra"`
	Dec float64 `json:"dec"`
	R   float64 `json:"r"`
}

// sweepMsg is one /sweep response line: a hit when Done is false, the
// stream trailer when Done is true. Sharing one struct keeps the
// decoder allocation-free of type switches; trailer-only fields are
// omitempty so hit lines stay compact.
type sweepMsg struct {
	Done      bool   `json:"done,omitempty"`
	Hits      int64  `json:"hits,omitempty"`
	Err       string `json:"err,omitempty"`
	Transient bool   `json:"transient,omitempty"`

	P     int32   `json:"p"`
	ObjID int64   `json:"objid"`
	Ra    float64 `json:"ra"`
	Dec   float64 `json:"dec"`
	Dist  float64 `json:"dist"`
	MagI  float64 `json:"mi"`
	Gr    float64 `json:"gr"`
	Ri    float64 `json:"ri"`
}

func (m *sweepMsg) row() zone.ZoneRow {
	return zone.ZoneRow{ObjID: m.ObjID, Ra: m.Ra, Dec: m.Dec,
		Distance: m.Dist, I: m.MagI, Gr: m.Gr, Ri: m.Ri}
}

// exchangeMsg is one /exchange response line: a raw catalog row when
// Done is false, the trailer when Done is true.
type exchangeMsg struct {
	Done      bool   `json:"done,omitempty"`
	Rows      int64  `json:"rows,omitempty"`
	Err       string `json:"err,omitempty"`
	Transient bool   `json:"transient,omitempty"`

	ObjID int64   `json:"objid"`
	Ra    float64 `json:"ra"`
	Dec   float64 `json:"dec"`
	MagI  float64 `json:"mi"`
	Gr    float64 `json:"gr"`
	Ri    float64 `json:"ri"`
	SGr   float64 `json:"sgr"`
	SRi   float64 `json:"sri"`
}

func (m *exchangeMsg) galaxy() sky.Galaxy {
	return sky.Galaxy{ObjID: m.ObjID, Ra: m.Ra, Dec: m.Dec,
		I: m.MagI, Gr: m.Gr, Ri: m.Ri, SigmaGr: m.SGr, SigmaRi: m.SRi}
}

func galaxyMsg(g sky.Galaxy) exchangeMsg {
	return exchangeMsg{ObjID: g.ObjID, Ra: g.Ra, Dec: g.Dec,
		MagI: g.I, Gr: g.Gr, Ri: g.Ri, SGr: g.SigmaGr, SRi: g.SigmaRi}
}

// transientError marks a transport-level failure as retryable; the
// coordinator's retry loop classifies with faultinject.IsTransient, so
// injected faults, net errors, and truncated streams all take the same
// path.
type transientError struct{ err error }

func (e *transientError) Error() string   { return e.err.Error() }
func (e *transientError) Unwrap() error   { return e.err }
func (e *transientError) Transient() bool { return true }

func transientf(format string, args ...any) error {
	return &transientError{err: fmt.Errorf(format, args...)}
}

// asTransient wraps err as transient unless it already classifies.
func asTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// countingWriter feeds an atomic byte counter — the exact measured
// bytes grid.TransferStats reports, replacing the struct-size
// estimates the in-process simulation used.
type countingWriter struct {
	w io.Writer
	n *atomic.Int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n.Add(int64(n))
	return n, err
}

// countingReader is countingWriter's receive side.
type countingReader struct {
	r io.Reader
	n *atomic.Int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n.Add(int64(n))
	return n, err
}

// decodeSweepStream consumes a /sweep response body, calling hit for
// every hit line, and returns an error unless a trailer arrived whose
// count matches the lines seen. Truncation (EOF before the trailer, or
// a short count) is transient: the worker died mid-stream and a retry
// against a replica can still produce the full answer.
func decodeSweepStream(r io.Reader, hit func(*sweepMsg)) error {
	dec := json.NewDecoder(r)
	var n int64
	for {
		var m sweepMsg
		if err := dec.Decode(&m); err != nil {
			if err == io.EOF {
				return transientf("fed: sweep stream truncated after %d hits (no trailer)", n)
			}
			return asTransient(fmt.Errorf("fed: sweep stream corrupt after %d hits: %w", n, err))
		}
		if m.Done {
			if m.Err != "" {
				err := fmt.Errorf("fed: worker sweep failed: %s", m.Err)
				if m.Transient {
					return asTransient(err)
				}
				return err
			}
			if m.Hits != n {
				return transientf("fed: sweep stream short: trailer says %d hits, got %d", m.Hits, n)
			}
			return nil
		}
		n++
		hit(&m)
	}
}

// decodeExchangeStream is decodeSweepStream's /exchange twin.
func decodeExchangeStream(r io.Reader, row func(*exchangeMsg)) error {
	dec := json.NewDecoder(r)
	var n int64
	for {
		var m exchangeMsg
		if err := dec.Decode(&m); err != nil {
			if err == io.EOF {
				return transientf("fed: exchange stream truncated after %d rows (no trailer)", n)
			}
			return asTransient(fmt.Errorf("fed: exchange stream corrupt after %d rows: %w", n, err))
		}
		if m.Done {
			if m.Err != "" {
				err := fmt.Errorf("fed: worker exchange failed: %s", m.Err)
				if m.Transient {
					return asTransient(err)
				}
				return err
			}
			if m.Rows != n {
				return transientf("fed: exchange stream short: trailer says %d rows, got %d", m.Rows, n)
			}
			return nil
		}
		n++
		row(&m)
	}
}

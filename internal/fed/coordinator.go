package fed

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/astro"
	"repro/internal/faultinject"
	"repro/internal/grid"
	"repro/internal/sqldb"
	"repro/internal/telemetry"
	"repro/internal/zone"
)

// Options tunes the coordinator's fault handling.
type Options struct {
	// Timeout bounds one RPC attempt (default 30s). A timed-out
	// attempt classifies as transient: the worker may be slow, a
	// retry or replica can still answer.
	Timeout time.Duration
	// Retries is how many extra attempts follow a transient failure
	// (default 2; negative = none). Attempts rotate through the
	// stripe's endpoint list, so with replicas configured a retry is
	// also a failover.
	Retries int
	// HedgeAfter launches a second request against the next replica
	// when the primary has not answered within this duration
	// (0 disables hedging; it needs at least two endpoints).
	HedgeAfter time.Duration
	// Client performs the RPCs (nil = a default without a global
	// timeout — per-attempt contexts bound each call).
	Client *http.Client
}

// A Coordinator is the scatter-gather side of the federation: it
// prunes a probe batch down to the stripes whose zone ranges the
// probes can touch, scatters the sub-batches concurrently, and merges
// the workers' hit streams back into the caller's callback in stripe
// (= ascending zone) order. Because every zone is wholly owned by one
// stripe, the merged sequence is exactly what a centralised zone.Sweep
// over the union of the stripes' rows would emit — bit-identical
// federation, the property the equivalence and boundary tests pin.
//
// A Coordinator is safe for concurrent use; each Sweep's callback runs
// only on its calling goroutine (zone.Sweep's own contract).
type Coordinator struct {
	topo   Topology
	opts   Options
	client *http.Client

	ownedMin, ownedMax []int // per-stripe owned zone range; min>max = owns nothing
	ctr                coordCounters
}

// NewCoordinator validates the topology and precomputes the zone
// ownership map partition pruning runs against.
func NewCoordinator(topo Topology, opts Options) (*Coordinator, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	if opts.Retries < 0 {
		opts.Retries = 0
	} else if opts.Retries == 0 {
		opts.Retries = 2
	}
	c := &Coordinator{topo: topo.Clone(), opts: opts, client: opts.Client}
	if c.client == nil {
		c.client = &http.Client{}
	}
	n := len(c.topo.Stripes)
	c.ownedMin = make([]int, n)
	c.ownedMax = make([]int, n)
	for i := 0; i < n; i++ {
		mn, mx, ok := c.topo.OwnedZones(i)
		if !ok {
			mn, mx = 1, 0
		}
		c.ownedMin[i], c.ownedMax[i] = mn, mx
	}
	c.ctr.scatter = make([]atomic.Int64, n)
	c.ctr.pruned = make([]atomic.Int64, n)
	return c, nil
}

// Topology returns the coordinator's (cloned) topology.
func (c *Coordinator) Topology() Topology { return c.topo.Clone() }

// EnableMetrics attaches the coordinator-side fed_* families to reg.
func (c *Coordinator) EnableMetrics(reg *telemetry.Registry) {
	registerCoordMetrics(reg, c)
}

// fedHit is one buffered worker hit, tagged with the caller's global
// probe index.
type fedHit struct {
	p   int32
	row zone.ZoneRow
}

// Sweep is the federated zone.Sweep: it answers the probe batch from
// the stripe workers and calls fn exactly as a centralised sweep over
// the full zone table would — same hits, same order, fn never called
// concurrently. Transient worker faults (dropped connections, 5xx,
// truncated streams, timeouts) are retried per Options; a stripe that
// stays down fails the whole sweep with a clean prefix delivered, like
// a local sweep's error contract.
func (c *Coordinator) Sweep(ctx context.Context, probes []zone.Probe, fn func(int, zone.ZoneRow)) error {
	n := len(c.topo.Stripes)
	lists := make([][]wireProbe, n)
	h := c.topo.Height()
	for pi, p := range probes {
		if p.R < 0 {
			continue // never matches; pruned before the wire
		}
		minZ, maxZ := astro.ZoneRange(p.Dec, p.R, h)
		for si := 0; si < n; si++ {
			if c.ownedMin[si] > c.ownedMax[si] ||
				maxZ < c.ownedMin[si] || minZ > c.ownedMax[si] {
				continue
			}
			lists[si] = append(lists[si], wireProbe{I: int32(pi), Ra: p.Ra, Dec: p.Dec, R: p.R})
		}
	}
	c.ctr.sweeps.Add(1)
	participants := 0
	for si := 0; si < n; si++ {
		if len(lists[si]) > 0 {
			participants++
			c.ctr.probes.Add(int64(len(lists[si])))
		}
	}
	if participants == 0 {
		return nil
	}
	for si := 0; si < n; si++ {
		if len(lists[si]) == 0 {
			c.ctr.pruned[si].Add(1)
		}
	}

	sctx, cancel := context.WithCancel(ctx)
	var wg sync.WaitGroup
	defer wg.Wait() // never leak attempts past an error return
	defer cancel()

	type result struct {
		hits []fedHit
		err  error
	}
	results := make([]result, n)
	done := make([]chan struct{}, n)
	for si := 0; si < n; si++ {
		if len(lists[si]) == 0 {
			continue
		}
		done[si] = make(chan struct{})
		body, err := json.Marshal(sweepRequest{Probes: lists[si]})
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(si int, body []byte) {
			defer wg.Done()
			hits, err := c.fetchStripe(sctx, si, body)
			results[si] = result{hits: hits, err: err}
			close(done[si])
		}(si, body)
	}

	// Merge in stripe order = ascending zone order. Each stripe's
	// stream is already (zone asc, ra asc) from its local sweep, and
	// zone ownership makes the stripe ranges disjoint and contiguous,
	// so plain concatenation replays the centralised callback
	// sequence. fn runs only here, on the calling goroutine.
	for si := 0; si < n; si++ {
		if done[si] == nil {
			continue
		}
		select {
		case <-done[si]:
		case <-ctx.Done():
			return ctx.Err()
		}
		if err := results[si].err; err != nil {
			return fmt.Errorf("fed: stripe %s: %w", c.topo.Stripes[si].Name, err)
		}
		for i := range results[si].hits {
			ht := &results[si].hits[i]
			fn(int(ht.p), ht.row)
		}
		c.ctr.hits.Add(int64(len(results[si].hits)))
		results[si].hits = nil
	}
	return nil
}

// fetchStripe runs the retry/failover loop for one stripe's sub-batch.
// Every attempt fills a fresh buffer and only the succeeding attempt's
// buffer is returned, so a retried stripe can never double-count hits.
func (c *Coordinator) fetchStripe(ctx context.Context, si int, body []byte) ([]fedHit, error) {
	endpoints := c.topo.Stripes[si].Endpoints
	if len(endpoints) == 0 {
		return nil, errors.New("no endpoints configured")
	}
	attempts := c.opts.Retries + 1
	var lastErr error
	for a := 0; a < attempts; a++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if a > 0 {
			c.ctr.retries.Add(1)
			if len(endpoints) > 1 {
				c.ctr.failovers.Add(1)
			}
		}
		hits, err := c.attemptHedged(ctx, si, a%len(endpoints), body)
		if err == nil {
			return hits, nil
		}
		lastErr = err
		if !faultinject.IsTransient(err) {
			return nil, err
		}
	}
	return nil, fmt.Errorf("unavailable after %d attempts: %w", attempts, lastErr)
}

// attemptHedged is one logical attempt: the primary request, plus — if
// hedging is configured and the primary is slow — a second request
// against the next replica. The first success wins and the loser is
// cancelled; the winner's buffer alone is returned.
func (c *Coordinator) attemptHedged(ctx context.Context, si, epi int, body []byte) ([]fedHit, error) {
	endpoints := c.topo.Stripes[si].Endpoints
	if c.opts.HedgeAfter <= 0 || len(endpoints) < 2 {
		return c.attempt(ctx, si, endpoints[epi], body)
	}
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	type res struct {
		hits []fedHit
		err  error
	}
	ch := make(chan res, 2)
	launched := 1
	go func() {
		h, e := c.attempt(actx, si, endpoints[epi], body)
		ch <- res{h, e}
	}()
	timer := time.NewTimer(c.opts.HedgeAfter)
	defer timer.Stop()
	var errs []error
	for {
		select {
		case r := <-ch:
			if r.err == nil {
				return r.hits, nil
			}
			errs = append(errs, r.err)
			if len(errs) == launched {
				return nil, pickErr(errs)
			}
		case <-timer.C:
			if launched == 1 {
				launched = 2
				c.ctr.hedges.Add(1)
				hedgeEp := endpoints[(epi+1)%len(endpoints)]
				go func() {
					h, e := c.attempt(actx, si, hedgeEp, body)
					ch <- res{h, e}
				}()
			}
		}
	}
}

// pickErr prefers a transient error (so the retry loop keeps going
// when at least one failure was retryable) over a permanent one.
func pickErr(errs []error) error {
	for _, e := range errs {
		if faultinject.IsTransient(e) {
			return e
		}
	}
	return errs[0]
}

// attempt performs a single /sweep RPC and decodes the full stream
// into a fresh buffer. Transport failures, 5xx answers, per-attempt
// timeouts, and truncated streams classify transient; a cancelled
// parent context and 4xx answers are permanent.
func (c *Coordinator) attempt(ctx context.Context, si int, endpoint string, body []byte) ([]fedHit, error) {
	if err := faultinject.Eval(SiteCoordRequest); err != nil {
		return nil, err
	}
	actx, cancel := context.WithTimeout(ctx, c.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, endpoint+"/sweep", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	c.ctr.scatter[si].Add(1)
	c.ctr.probeBytesOut.Add(int64(len(body)))
	resp, err := c.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, asTransient(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		err := fmt.Errorf("%s: HTTP %d: %s", endpoint, resp.StatusCode, bytes.TrimSpace(msg))
		if resp.StatusCode >= 500 || resp.StatusCode == http.StatusRequestTimeout {
			return nil, asTransient(err)
		}
		return nil, err
	}
	var hits []fedHit
	cr := &countingReader{r: resp.Body, n: &c.ctr.hitBytesIn}
	if err := decodeSweepStream(cr, func(m *sweepMsg) {
		hits = append(hits, fedHit{p: m.P, row: m.row()})
	}); err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, err
	}
	return hits, nil
}

// CoordStats is a snapshot of the coordinator's counters — the same
// values the fed_* metric families export.
type CoordStats struct {
	Sweeps, Probes, Hits       int64
	Retries, Failovers, Hedges int64
	ProbeBytesOut, HitBytesIn  int64
}

// CoordStats snapshots the coordinator-side counters.
func (c *Coordinator) CoordStats() CoordStats {
	return CoordStats{
		Sweeps: c.ctr.sweeps.Load(), Probes: c.ctr.probes.Load(), Hits: c.ctr.hits.Load(),
		Retries: c.ctr.retries.Load(), Failovers: c.ctr.failovers.Load(), Hedges: c.ctr.hedges.Load(),
		ProbeBytesOut: c.ctr.probeBytesOut.Load(), HitBytesIn: c.ctr.hitBytesIn.Load(),
	}
}

// WaitReady blocks until every stripe answers /healthz with 200 (the
// buffer-zone exchange is done fleet-wide) or ctx expires.
func (c *Coordinator) WaitReady(ctx context.Context) error {
	for si := range c.topo.Stripes {
		for {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("fed: stripe %s not ready: %w", c.topo.Stripes[si].Name, err)
			}
			if c.stripeHealthy(ctx, si) {
				break
			}
			select {
			case <-ctx.Done():
			case <-time.After(100 * time.Millisecond):
			}
		}
	}
	return nil
}

func (c *Coordinator) stripeHealthy(ctx context.Context, si int) bool {
	for _, ep := range c.topo.Stripes[si].Endpoints {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, ep+"/healthz", nil)
		if err != nil {
			continue
		}
		resp, err := c.client.Do(req)
		if err != nil {
			continue
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return true
		}
	}
	return false
}

// Stats fetches every stripe's /stats snapshot (first answering
// endpoint per stripe).
func (c *Coordinator) Stats(ctx context.Context) ([]WorkerStats, error) {
	out := make([]WorkerStats, 0, len(c.topo.Stripes))
	for si, s := range c.topo.Stripes {
		var got *WorkerStats
		var lastErr error
		for _, ep := range s.Endpoints {
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, ep+"/stats", nil)
			if err != nil {
				lastErr = err
				continue
			}
			resp, err := c.client.Do(req)
			if err != nil {
				lastErr = err
				continue
			}
			var ws WorkerStats
			err = json.NewDecoder(resp.Body).Decode(&ws)
			resp.Body.Close()
			if err != nil {
				lastErr = err
				continue
			}
			got = &ws
			break
		}
		if got == nil {
			return nil, fmt.Errorf("fed: stats for stripe %s: %v", c.topo.Stripes[si].Name, lastErr)
		}
		out = append(out, *got)
	}
	return out, nil
}

// TransferStats aggregates the federation's exact wire accounting into
// the grid.TransferStats ledger: probes shipped to the data are the
// paper's "code moves to the data" traffic, the merged hit streams are
// the result shipped back, and the boot-time buffer-zone exchange is
// the boundary traffic. All three are measured request/response body
// bytes (counted as they cross the socket), not struct-size estimates.
func (c *Coordinator) TransferStats(ctx context.Context) (grid.TransferStats, error) {
	ts := grid.TransferStats{
		CodeBytes:   c.ctr.probeBytesOut.Load(),
		ResultBytes: c.ctr.hitBytesIn.Load(),
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		return ts, err
	}
	for _, ws := range stats {
		ts.BoundaryBytes += ws.ExchangeBytesIn
	}
	return ts, nil
}

// RegisterNearbyTVF registers fGetNearbyObjEqZd backed by the
// federation instead of a local zone table: the same SQL the
// centralised engine runs — including the lateral-join batch shape —
// fans out through the coordinator, and EXPLAIN shows the federated
// access path. Bit-identical to the local TVF over the same rows,
// because Sweep is.
func (c *Coordinator) RegisterNearbyTVF(db *sqldb.DB) {
	parseArgs := func(args []sqldb.Value) (ra, dec, r float64, err error) {
		if len(args) != 3 {
			return 0, 0, 0, fmt.Errorf("fed: fGetNearbyObjEqZd expects (ra, dec, r)")
		}
		if ra, err = args[0].AsFloat(); err != nil {
			return
		}
		if dec, err = args[1].AsFloat(); err != nil {
			return
		}
		r, err = args[2].AsFloat()
		return
	}
	minZ, maxZ := c.topo.ZoneExtent()
	db.RegisterTVF("fGetNearbyObjEqZd", &sqldb.TVF{
		Cols: []sqldb.Column{
			{Name: "objID", Type: sqldb.TInt},
			{Name: "distance", Type: sqldb.TFloat},
		},
		Fn: func(args []sqldb.Value) ([][]sqldb.Value, error) {
			ra, dec, r, err := parseArgs(args)
			if err != nil {
				return nil, err
			}
			var rows [][]sqldb.Value
			err = c.Sweep(context.Background(), []zone.Probe{{Ra: ra, Dec: dec, R: r}},
				func(_ int, zr zone.ZoneRow) {
					rows = append(rows, []sqldb.Value{sqldb.Int(zr.ObjID), sqldb.Float(zr.Distance)})
				})
			return rows, err
		},
		Batch: func(ctx context.Context, probes [][]sqldb.Value, emit func(int, []sqldb.Value)) error {
			ps := make([]zone.Probe, len(probes))
			for i, args := range probes {
				ra, dec, r, err := parseArgs(args)
				if err != nil {
					return err
				}
				ps[i] = zone.Probe{Ra: ra, Dec: dec, R: r}
			}
			scratch := make([]sqldb.Value, 2)
			return c.Sweep(ctx, ps, func(pi int, zr zone.ZoneRow) {
				scratch[0] = sqldb.Int(zr.ObjID)
				scratch[1] = sqldb.Float(zr.Distance)
				emit(pi, scratch)
			})
		},
		Access: fmt.Sprintf("FederatedSweep [%d stripes, zones %d..%d]",
			len(c.topo.Stripes), minZ, maxZ),
	})
}

package fed_test

import (
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/astro"
	"repro/internal/cluster"
	"repro/internal/fed"
	"repro/internal/maxbcg"
	"repro/internal/sky"
	"repro/internal/sqldb"
	"repro/internal/telemetry"
	"repro/internal/zone"
)

type hit struct {
	p  int
	zr zone.ZoneRow
}

// localSweep is the centralised oracle: a zone.Sweep over one columnar
// zone table holding every region row, emitted as the exact (probe,
// row) sequence the federation must replay bit for bit.
func localSweep(t testing.TB, cat *sky.Catalog, region astro.Box, probes []zone.Probe) []hit {
	t.Helper()
	var gals []sky.Galaxy
	for _, g := range cat.Galaxies {
		if region.Contains(g.Ra, g.Dec) {
			gals = append(gals, g)
		}
	}
	db := sqldb.Open(0)
	zt, err := zone.InstallZoneTableColumnar(db, "Zone", gals, astro.ZoneHeightDeg)
	if err != nil {
		t.Fatal(err)
	}
	var out []hit
	err = zone.Sweep(context.Background(), zone.TableSource(zt, astro.ZoneHeightDeg), probes,
		zone.SweepOptions{Workers: 1}, func(pi int, zr zone.ZoneRow) {
			out = append(out, hit{p: pi, zr: zr})
		})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func federatedSweep(t testing.TB, c *fed.Coordinator, probes []zone.Probe) []hit {
	t.Helper()
	var out []hit
	err := c.Sweep(context.Background(), probes, func(pi int, zr zone.ZoneRow) {
		out = append(out, hit{p: pi, zr: zr})
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func requireSameHits(t testing.TB, got, want []hit) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("federated sweep returned %d hits, centralised %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hit %d differs:\n  federated:   %+v\n  centralised: %+v", i, got[i], want[i])
		}
	}
}

// testProbes mixes real neighbourhoods, guaranteed misses, negative
// radii (the sweep contract: silently skipped), and probes whose radius
// crosses stripe boundaries.
func testProbes(region astro.Box, seed int64, n int) []zone.Probe {
	rng := rand.New(rand.NewSource(seed))
	ps := make([]zone.Probe, 0, n+3)
	for i := 0; i < n; i++ {
		ps = append(ps, zone.Probe{
			Ra:  region.MinRa + rng.Float64()*(region.MaxRa-region.MinRa),
			Dec: region.MinDec + rng.Float64()*(region.MaxDec-region.MinDec),
			R:   0.02 + rng.Float64()*0.25,
		})
	}
	mid := (region.MinRa + region.MaxRa) / 2
	ps = append(ps,
		zone.Probe{Ra: mid, Dec: region.MinDec + 0.1, R: -1},                // negative radius: skipped
		zone.Probe{Ra: mid, Dec: region.MaxDec + 5, R: 0.05},                // far outside: no hits
		zone.Probe{Ra: mid, Dec: (region.MinDec + region.MaxDec) / 2, R: 0}, // zero radius
	)
	return ps
}

func fedTestTopo(region astro.Box) fed.Topology {
	// Cuts deliberately not aligned to zone boundaries: the buffer-zone
	// exchange has to do real work for the sweeps to agree.
	span := region.MaxDec - region.MinDec
	return fed.Topology{Region: region, Stripes: []fed.Stripe{
		{Name: "south", MinDec: region.MinDec, MaxDec: region.MinDec + 0.37*span},
		{Name: "mid", MinDec: region.MinDec + 0.37*span, MaxDec: region.MinDec + 0.63*span},
		{Name: "north", MinDec: region.MinDec + 0.63*span, MaxDec: region.MaxDec},
	}}
}

// TestFederatedSweepMatchesLocal is the tentpole acceptance test: the
// scatter-gathered sweep over three wire-connected stripe workers
// replays the centralised zone.Sweep hit sequence bit for bit.
func TestFederatedSweepMatchesLocal(t *testing.T) {
	region := astro.MustBox(194, 196, 1.0, 3.0)
	cat := genCatalog(t, region, 7, 3000, 4)
	topo := fedTestTopo(region)
	c, _ := startFederation(t, cat, topo, fed.Options{})

	probes := testProbes(region, 11, 48)
	want := localSweep(t, cat, region, probes)
	if len(want) == 0 {
		t.Fatal("oracle produced no hits; test is vacuous")
	}
	got := federatedSweep(t, c, probes)
	requireSameHits(t, got, want)

	st := c.CoordStats()
	if st.Sweeps != 1 || st.Hits != int64(len(want)) {
		t.Errorf("coordinator stats: %+v, want 1 sweep with %d hits", st, len(want))
	}
	if st.ProbeBytesOut == 0 || st.HitBytesIn == 0 {
		t.Errorf("wire byte accounting missing: %+v", st)
	}
}

// TestFederatedSweepConcurrent runs overlapping sweeps through one
// coordinator; each must independently match the oracle.
func TestFederatedSweepConcurrent(t *testing.T) {
	region := astro.MustBox(194, 196, 1.0, 3.0)
	cat := genCatalog(t, region, 9, 2000, 2)
	c, _ := startFederation(t, cat, fedTestTopo(region), fed.Options{})

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			probes := testProbes(region, seed, 24)
			want := localSweep(t, cat, region, probes)
			got := federatedSweep(t, c, probes)
			requireSameHits(t, got, want)
		}(int64(100 + i))
	}
	wg.Wait()
}

// TestFederatedTVF checks the SQL surface: fGetNearbyObjEqZd backed by
// the coordinator returns the same rows as the local zone TVF, and the
// planner labels the access path as a federated sweep in EXPLAIN.
func TestFederatedTVF(t *testing.T) {
	region := astro.MustBox(194, 196, 1.0, 3.0)
	cat := genCatalog(t, region, 13, 2000, 2)
	c, _ := startFederation(t, cat, fedTestTopo(region), fed.Options{})

	probes := testProbes(region, 17, 16)
	newProbeDB := func() *sqldb.DB {
		db := sqldb.Open(0)
		if _, err := db.Exec("CREATE TABLE Probes (pid bigint PRIMARY KEY, ra float, dec float, r float)"); err != nil {
			t.Fatal(err)
		}
		pt, _ := db.Table("Probes")
		for i, p := range probes {
			err := pt.Insert([]sqldb.Value{
				sqldb.Int(int64(i)), sqldb.Float(p.Ra), sqldb.Float(p.Dec), sqldb.Float(p.R),
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		return db
	}
	const query = `SELECT p.pid, n.objID, n.distance FROM Probes p CROSS JOIN fGetNearbyObjEqZd(p.ra, p.dec, p.r) n`

	// Local baseline: the zone package's own TVF over a full zone table.
	var gals []sky.Galaxy
	for _, g := range cat.Galaxies {
		if region.Contains(g.Ra, g.Dec) {
			gals = append(gals, g)
		}
	}
	ldb := newProbeDB()
	zt, err := zone.InstallZoneTableColumnar(ldb, "Zone", gals, astro.ZoneHeightDeg)
	if err != nil {
		t.Fatal(err)
	}
	zone.RegisterNearbyTVF(ldb, zt, astro.ZoneHeightDeg)
	wantRows, err := ldb.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]sqldb.Value
	for wantRows.Next() {
		want = append(want, append([]sqldb.Value(nil), wantRows.Row()...))
	}
	if len(want) == 0 {
		t.Fatal("local TVF returned no rows; test is vacuous")
	}

	// Federated: same query, no local zone table at all.
	fdb := newProbeDB()
	c.RegisterNearbyTVF(fdb)
	gotRows, err := fdb.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for gotRows.Next() {
		if i >= len(want) {
			t.Fatalf("federated TVF returned more than %d rows", len(want))
		}
		g := gotRows.Row()
		for col := range g {
			if g[col] != want[i][col] {
				t.Fatalf("row %d col %d: federated %#v, local %#v", i, col, g[col], want[i][col])
			}
		}
		i++
	}
	if i != len(want) {
		t.Fatalf("federated TVF returned %d rows, local %d", i, len(want))
	}

	plan, err := fdb.Explain("EXPLAIN " + query)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "FederatedSweep") {
		t.Fatalf("EXPLAIN does not surface the federated access path:\n%s", plan)
	}
	if !strings.Contains(plan, "ZoneSweepJoin") {
		t.Fatalf("federated TVF lost the batched join plan:\n%s", plan)
	}
}

// TestRunMaxBCGMatchesCluster runs the full MaxBCG pipeline through the
// federation and requires the exact result tables of a centralised
// single-node cluster.Run over the same catalog.
func TestRunMaxBCGMatchesCluster(t *testing.T) {
	survey := astro.MustBox(194, 196.3, 1.0, 3.4)
	cat := genCatalog(t, survey, 5, 2500, 6)
	target := astro.MustBox(194.4, 195.9, 1.4, 3.0)
	params := maxbcg.DefaultParams()

	central, err := cluster.Run(cat, target, cluster.Config{Nodes: 1, Params: params})
	if err != nil {
		t.Fatal(err)
	}
	want := central.Nodes[0].Result

	imp, err := fed.ImportBox(target, params.BufferDeg, cat.Region)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := startFederation(t, cat, fedTestTopo(imp), fed.Options{})
	got, report, err := fed.RunMaxBCG(context.Background(), c, cat, target, fed.RunConfig{Params: params})
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Clusters) == 0 {
		t.Fatal("centralised run found no clusters; test is vacuous")
	}
	if !reflect.DeepEqual(got.Candidates, want.Candidates) {
		t.Errorf("candidate tables differ: federated %d rows, centralised %d",
			len(got.Candidates), len(want.Candidates))
	}
	if !reflect.DeepEqual(got.Clusters, want.Clusters) {
		t.Errorf("cluster tables differ: federated %d rows, centralised %d",
			len(got.Clusters), len(want.Clusters))
	}
	if !reflect.DeepEqual(got.Members, want.Members) {
		t.Errorf("member tables differ: federated %d rows, centralised %d",
			len(got.Members), len(want.Members))
	}
	if report.Galaxies == 0 || len(report.Tasks) == 0 {
		t.Errorf("federated task report is empty: %+v", report)
	}

	// Transfer accounting: code (probes) moved to the data, results
	// moved back, boundary rows exchanged at boot — all non-zero and
	// exactly the bytes the wire counters saw.
	ts, err := c.TransferStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ts.CodeBytes == 0 || ts.ResultBytes == 0 || ts.BoundaryBytes == 0 {
		t.Errorf("transfer stats incomplete: %+v", ts)
	}
	st := c.CoordStats()
	if ts.CodeBytes != st.ProbeBytesOut || ts.ResultBytes != st.HitBytesIn {
		t.Errorf("transfer stats disagree with coordinator counters: %+v vs %+v", ts, st)
	}
}

// TestWorkerHTTPSurface exercises the daemon-facing endpoints:
// /healthz flips with readiness and draining, /stats reports the wire
// byte counters, /metrics exposes the fed_* families.
func TestWorkerHTTPSurface(t *testing.T) {
	region := astro.MustBox(194, 196, 1.0, 3.0)
	cat := genCatalog(t, region, 21, 1500, 1)
	topo := fedTestTopo(region)
	c, workers := startFederation(t, cat, topo, fed.Options{})

	// Generate some traffic so the counters are non-zero.
	probes := testProbes(region, 23, 16)
	_ = federatedSweep(t, c, probes)

	stats, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != len(workers) {
		t.Fatalf("Stats returned %d workers, want %d", len(stats), len(workers))
	}
	var totalHits int64
	for i, ws := range stats {
		if !ws.Ready {
			t.Errorf("worker %d not ready", i)
		}
		if ws.ZoneRows == 0 {
			t.Errorf("worker %d has an empty zone table", i)
		}
		// A stripe whose owned boundary zones fall inside its own slice
		// fetches nothing, but it still serves its neighbours' fetches.
		if ws.ExchangeBytesIn+ws.ExchangeBytesOut == 0 {
			t.Errorf("worker %d exchanged no boundary bytes", i)
		}
		totalHits += ws.Hits
	}
	if totalHits != c.CoordStats().Hits {
		t.Errorf("workers report %d hits total, coordinator %d", totalHits, c.CoordStats().Hits)
	}

	// Raw endpoint checks against worker 0's live server.
	w0 := workers[0]
	w0.EnableMetrics(telemetry.NewRegistry())
	url := topo.Stripes[0].Endpoints[0]
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz returned %d for a ready worker", resp.StatusCode)
	}

	resp, err = http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var ws fed.WorkerStats
	if err := json.NewDecoder(resp.Body).Decode(&ws); err != nil {
		t.Fatalf("/stats did not decode: %v", err)
	}
	resp.Body.Close()
	if ws.Name != topo.Stripes[0].Name || !ws.Ready {
		t.Errorf("/stats payload wrong: %+v", ws)
	}

	resp, err = http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, family := range []string{
		"fed_worker_ready", "fed_worker_zone_rows", "fed_worker_sweeps_total",
		"fed_worker_probes_total", "fed_worker_hits_total",
		`fed_transfer_bytes_total{kind="probes_in"}`,
		`fed_transfer_bytes_total{kind="exchange_in"}`,
	} {
		if !strings.Contains(text, family) {
			t.Errorf("/metrics missing %s", family)
		}
	}

	// Draining flips /healthz to 503 so load balancers stop routing.
	w0.SetDraining(true)
	defer w0.SetDraining(false)
	resp, err = http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/healthz returned %d for a draining worker, want 503", resp.StatusCode)
	}
}

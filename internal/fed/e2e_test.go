package fed_test

// End-to-end federation test with real processes: builds cmd/gridworkerd,
// boots a three-worker fleet on loopback ports sharing a catalog file,
// runs the full MaxBCG pipeline through the coordinator, and requires the
// result of a centralised single-node run — then SIGTERMs the fleet and
// requires clean exits. This is the acceptance test for the daemon
// surface; everything in-process is covered by the other suites.

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/astro"
	"repro/internal/cluster"
	"repro/internal/fed"
	"repro/internal/maxbcg"
)

// shortest renders a float in shortest round-trip form so the worker's
// flag parse reproduces the coordinator's value bit for bit.
func shortest(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func TestEndToEndFederation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	repoRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "gridworkerd")
	build := exec.Command(goBin, "build", "-o", bin, "./cmd/gridworkerd")
	build.Dir = repoRoot
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build gridworkerd: %v\n%s", err, out)
	}

	survey := astro.MustBox(194, 196.3, 1.0, 3.4)
	cat := genCatalog(t, survey, 77, 1500, 4)
	catPath := filepath.Join(tmp, "sky.cat")
	if err := cat.SaveFile(catPath); err != nil {
		t.Fatal(err)
	}

	target := astro.MustBox(194.4, 195.9, 1.4, 3.0)
	params := maxbcg.DefaultParams()
	imp, err := fed.ImportBox(target, params.BufferDeg, cat.Region)
	if err != nil {
		t.Fatal(err)
	}
	regionStr := fmt.Sprintf("%s:%s:%s:%s",
		shortest(imp.MinRa), shortest(imp.MaxRa), shortest(imp.MinDec), shortest(imp.MaxDec))
	cutsStr := fed.FormatCuts(fedTestTopo(imp))
	// Both sides parse the same strings, so zone ownership agrees bitwise.
	topo, err := fed.ParseCuts(imp, cutsStr)
	if err != nil {
		t.Fatal(err)
	}

	// Reserve loopback ports, then hand them to the workers.
	n := len(topo.Stripes)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		l.Close()
	}
	peers := make([]string, n)
	for i, a := range addrs {
		peers[i] = "http://" + a
		topo.Stripes[i].Endpoints = []string{peers[i]}
	}

	procs := make([]*exec.Cmd, n)
	for i := 0; i < n; i++ {
		cmd := exec.Command(bin,
			"-index", strconv.Itoa(i),
			"-addr", addrs[i],
			"-region", regionStr,
			"-cuts", cutsStr,
			"-peers", strings.Join(peers, ","),
			"-cat", catPath,
			"-workers", "2",
		)
		cmd.Stdout = io.Discard
		cmd.Stderr = io.Discard
		if err := cmd.Start(); err != nil {
			t.Fatalf("start worker %d: %v", i, err)
		}
		procs[i] = cmd
		t.Cleanup(func() { _ = cmd.Process.Kill(); _ = cmd.Wait() })
	}

	c, err := fed.NewCoordinator(topo, fed.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	if err := c.WaitReady(ctx); err != nil {
		t.Fatalf("fleet never became ready: %v", err)
	}

	central, err := cluster.Run(cat, target, cluster.Config{Nodes: 1, Params: params})
	if err != nil {
		t.Fatal(err)
	}
	want := central.Nodes[0].Result
	if len(want.Clusters) == 0 {
		t.Fatal("centralised run found no clusters; test is vacuous")
	}
	got, _, err := fed.RunMaxBCG(ctx, c, cat, target, fed.RunConfig{Params: params})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Candidates, want.Candidates) ||
		!reflect.DeepEqual(got.Clusters, want.Clusters) ||
		!reflect.DeepEqual(got.Members, want.Members) {
		t.Errorf("federated result differs from centralised: %s vs %s", got.Summary(), want.Summary())
	}

	// The real daemons expose the fed_* metric families over the wire.
	resp, err := http.Get(peers[0] + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, family := range []string{
		"fed_worker_ready 1", "fed_worker_sweeps_total", "fed_transfer_bytes_total",
	} {
		if !strings.Contains(string(body), family) {
			t.Errorf("worker /metrics missing %q", family)
		}
	}

	// SIGTERM drains the fleet; every process must exit cleanly.
	for i, p := range procs {
		if err := p.Process.Signal(syscall.SIGTERM); err != nil {
			t.Errorf("signal worker %d: %v", i, err)
		}
	}
	for i, p := range procs {
		if err := p.Wait(); err != nil {
			t.Errorf("worker %d did not exit cleanly: %v", i, err)
		}
	}
}

// Package fed is the distributed-execution subsystem: it puts the
// partitioned MaxBCG pipeline behind a real wire protocol. A fleet of
// stripe workers (cmd/gridworkerd) each own one declination stripe of
// the zone table — their own sqldb, loaded at boot from a catalog
// slice — and serve a small HTTP/JSON RPC surface (/sweep, /exchange,
// /stats, /healthz, /metrics). A Coordinator scatters probe batches to
// the stripes whose zone ranges they intersect, applies per-worker
// timeouts/retries/hedging, and merges the workers' hit streams in
// stripe (declination) order, so the federated sweep is bit-identical
// to a centralised zone.Sweep over the same rows.
//
// The correctness backbone is zone ownership: every zone of the
// federation region is wholly owned by exactly one stripe (the stripe
// whose declination slice contains the zone's midpoint, clamped at the
// region edges). Workers start from raw catalog slices cut on stripe
// boundaries — which need not align with zone boundaries — and run a
// buffer-zone exchange at boot: each pulls the missing rows of its
// owned boundary zones from the neighbouring stripes and drops rows in
// zones it does not own. After the exchange, the per-stripe zone
// tables partition the centralised zone table by contiguous zone
// ranges, and because zone.Sweep emits hits grouped by ascending zone,
// concatenating the stripe streams in stripe order replays the exact
// centralised callback sequence.
package fed

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/astro"
	"repro/internal/perfmodel"
	"repro/internal/sky"
)

// Stripe is one worker's share of the federation: a half-open
// declination slice [MinDec, MaxDec) — the last stripe includes its
// upper edge — plus the endpoints that serve it. Endpoints[0] is the
// primary; any further entries are replicas the coordinator fails over
// to (and hedges against) when the primary misbehaves.
type Stripe struct {
	Name      string   `json:"name"`
	MinDec    float64  `json:"minDec"`
	MaxDec    float64  `json:"maxDec"`
	Endpoints []string `json:"endpoints,omitempty"`
}

// Topology fixes the federation layout: the sky region served, the
// zone height the workers' zone tables use, and the stripes in
// ascending declination order. All participants — coordinator and
// every worker — must agree on it bit for bit, since zone ownership
// and partition pruning are derived from it.
type Topology struct {
	Region     astro.Box `json:"region"`
	ZoneHeight float64   `json:"zoneHeight"`
	Stripes    []Stripe  `json:"stripes"`
}

// Height returns the zone height, defaulting to the SDSS 30 arcsec.
func (t Topology) Height() float64 {
	if t.ZoneHeight > 0 {
		return t.ZoneHeight
	}
	return astro.ZoneHeightDeg
}

// Clone deep-copies the topology so callers can mutate endpoint lists
// without aliasing each other's stripe slices.
func (t Topology) Clone() Topology {
	c := t
	c.Stripes = make([]Stripe, len(t.Stripes))
	for i, s := range t.Stripes {
		c.Stripes[i] = s
		c.Stripes[i].Endpoints = append([]string(nil), s.Endpoints...)
	}
	return c
}

// Validate checks the stripes are non-empty, ascending, contiguous,
// and together cover the region's declination span exactly.
func (t Topology) Validate() error {
	if len(t.Stripes) == 0 {
		return fmt.Errorf("fed: topology has no stripes")
	}
	if t.Region.MaxDec <= t.Region.MinDec || t.Region.MaxRa <= t.Region.MinRa {
		return fmt.Errorf("fed: topology region %v is empty", t.Region)
	}
	const eps = 1e-9
	if math.Abs(t.Stripes[0].MinDec-t.Region.MinDec) > eps {
		return fmt.Errorf("fed: first stripe starts at dec %.9f, region at %.9f",
			t.Stripes[0].MinDec, t.Region.MinDec)
	}
	if math.Abs(t.Stripes[len(t.Stripes)-1].MaxDec-t.Region.MaxDec) > eps {
		return fmt.Errorf("fed: last stripe ends at dec %.9f, region at %.9f",
			t.Stripes[len(t.Stripes)-1].MaxDec, t.Region.MaxDec)
	}
	for i, s := range t.Stripes {
		if s.MaxDec <= s.MinDec {
			return fmt.Errorf("fed: stripe %d (%s) is empty: [%.9f, %.9f)", i, s.Name, s.MinDec, s.MaxDec)
		}
		if i > 0 && math.Abs(s.MinDec-t.Stripes[i-1].MaxDec) > eps {
			return fmt.Errorf("fed: stripe %d (%s) starts at %.9f but stripe %d ends at %.9f",
				i, s.Name, s.MinDec, i-1, t.Stripes[i-1].MaxDec)
		}
	}
	return nil
}

// StripeForDec returns the index of the stripe whose slice contains
// dec: half-open [MinDec, MaxDec), except the last stripe, which is
// inclusive of its upper edge (mirroring astro.Box.Contains so every
// catalog row inside the region lands in exactly one slice).
func (t Topology) StripeForDec(dec float64) int {
	n := len(t.Stripes)
	i := sort.Search(n, func(i int) bool { return dec < t.Stripes[i].MaxDec })
	if i == n {
		i = n - 1 // dec == last stripe's MaxDec (or numeric spill past it)
	}
	return i
}

// SliceContains reports whether dec falls in stripe i's raw catalog
// slice (the pre-exchange cut — see StripeForDec for edge semantics).
func (t Topology) SliceContains(i int, dec float64) bool {
	return t.StripeForDec(dec) == i && dec >= t.Stripes[i].MinDec
}

// ZoneExtent returns the inclusive range of zone ids the region spans.
func (t Topology) ZoneExtent() (minZone, maxZone int) {
	h := t.Height()
	return astro.ZoneID(t.Region.MinDec, h), astro.ZoneID(t.Region.MaxDec, h)
}

// Owner returns the index of the stripe that owns zone z: the stripe
// whose declination slice contains the zone's midpoint, clamped to the
// first/last stripe at the region edges. Ownership is what the
// buffer-zone exchange establishes physically — after Sync, stripe i's
// zone table holds exactly the region rows of its owned zones.
func (t Topology) Owner(z int) int {
	lo, hi := astro.ZoneDecBounds(z, t.Height())
	mid := (lo + hi) / 2
	if mid < t.Stripes[0].MinDec {
		return 0
	}
	if mid >= t.Stripes[len(t.Stripes)-1].MaxDec {
		return len(t.Stripes) - 1
	}
	return t.StripeForDec(mid)
}

// OwnedZones returns the inclusive zone range stripe i owns within the
// region, or ok=false when the stripe is so narrow that every zone
// midpoint in its slice belongs to a neighbour.
func (t Topology) OwnedZones(i int) (minZone, maxZone int, ok bool) {
	lo, hi := t.ZoneExtent()
	minZone, maxZone = 0, -1
	for z := lo; z <= hi; z++ { // owner is monotonic in z; spans are small (~hundreds of zones)
		if t.Owner(z) != i {
			continue
		}
		if maxZone < minZone {
			minZone = z
		}
		maxZone = z
	}
	return minZone, maxZone, maxZone >= minZone
}

// Placement describes one site for PlanStripes: a name and the
// perfmodel hardware profile of the machine that will host it. A zero
// System means "assume the paper's SQL server" (perfmodel.SQLConfig).
type Placement struct {
	Name   string
	System perfmodel.SystemConfig
}

// PlanStripes cuts the region into len(sites) declination stripes so
// that each site's share of the catalog rows is proportional to its
// perfmodel CPU capacity (CPUs x MHz) — the paper's heterogeneous-grid
// placement, driven by measured row counts instead of area. The cuts
// are row quantiles, so they do not align with zone boundaries; the
// buffer-zone exchange at worker boot is what squares that off.
func PlanStripes(cat *sky.Catalog, region astro.Box, sites []Placement) (Topology, error) {
	if len(sites) == 0 {
		return Topology{}, fmt.Errorf("fed: PlanStripes needs at least one site")
	}
	caps := make([]float64, len(sites))
	var total float64
	for i, s := range sites {
		sys := s.System
		if sys.CPUs == 0 {
			sys = perfmodel.SQLConfig()
		}
		caps[i] = float64(sys.CPUs) * float64(sys.CPUMHz)
		total += caps[i]
	}
	decs := make([]float64, 0, len(cat.Galaxies))
	for _, g := range cat.Galaxies {
		if region.Contains(g.Ra, g.Dec) {
			decs = append(decs, g.Dec)
		}
	}
	sort.Float64s(decs)
	if len(decs) < len(sites) {
		return Topology{}, fmt.Errorf("fed: region holds %d rows, fewer than %d stripes", len(decs), len(sites))
	}
	topo := Topology{Region: region, ZoneHeight: astro.ZoneHeightDeg,
		Stripes: make([]Stripe, len(sites))}
	lo, acc := region.MinDec, 0.0
	for i, s := range sites {
		acc += caps[i] / total
		hi := region.MaxDec
		if i < len(sites)-1 {
			r := int(math.Round(acc * float64(len(decs))))
			if r >= len(decs) {
				r = len(decs) - 1
			}
			hi = decs[r]
			if hi <= lo { // degenerate quantile (duplicate decs): keep slices non-empty
				hi = math.Nextafter(lo, math.Inf(1))
			}
			if hi >= region.MaxDec {
				hi = region.MaxDec - (region.MaxDec-lo)/float64(2*(len(sites)-i))
			}
		}
		name := s.Name
		if name == "" {
			name = fmt.Sprintf("stripe%d", i)
		}
		topo.Stripes[i] = Stripe{Name: name, MinDec: lo, MaxDec: hi}
		lo = hi
	}
	if err := topo.Validate(); err != nil {
		return Topology{}, err
	}
	return topo, nil
}

// ParseCuts builds a topology from n+1 comma-separated declination cut
// points (the gridworkerd -cuts flag): cuts[0] must equal the region's
// MinDec and cuts[n] its MaxDec.
func ParseCuts(region astro.Box, cutsCSV string) (Topology, error) {
	fields := strings.Split(cutsCSV, ",")
	if len(fields) < 2 {
		return Topology{}, fmt.Errorf("fed: -cuts needs at least two declinations, got %q", cutsCSV)
	}
	cuts := make([]float64, len(fields))
	for i, f := range fields {
		var err error
		if _, err = fmt.Sscanf(strings.TrimSpace(f), "%g", &cuts[i]); err != nil {
			return Topology{}, fmt.Errorf("fed: bad cut %q: %v", f, err)
		}
	}
	topo := Topology{Region: region, ZoneHeight: astro.ZoneHeightDeg,
		Stripes: make([]Stripe, len(cuts)-1)}
	for i := range topo.Stripes {
		topo.Stripes[i] = Stripe{
			Name:   fmt.Sprintf("stripe%d", i),
			MinDec: cuts[i],
			MaxDec: cuts[i+1],
		}
	}
	if err := topo.Validate(); err != nil {
		return Topology{}, err
	}
	return topo, nil
}

// FormatCuts renders the topology's declination cuts in the form
// ParseCuts accepts — the coordinator side of the -cuts flag.
func FormatCuts(t Topology) string {
	var b strings.Builder
	for i, s := range t.Stripes {
		if i == 0 {
			fmt.Fprintf(&b, "%.9f", s.MinDec)
		}
		fmt.Fprintf(&b, ",%.9f", s.MaxDec)
	}
	return b.String()
}

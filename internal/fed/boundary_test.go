package fed_test

// Boundary property test (the hard case for any partitioned cluster
// finder): a cluster whose BCG sits within the buffer width of a stripe
// cut must be found by exactly one stripe — never zero, never two —
// whatever the stripe layout. The test deliberately generates layouts
// whose cuts land right on top of cluster BCG declinations, in a region
// hugging RA 0 so probe windows wrap the 0/360 seam.

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/astro"
	"repro/internal/cluster"
	"repro/internal/fed"
	"repro/internal/maxbcg"
)

func TestBoundaryClustersFoundExactlyOnce(t *testing.T) {
	survey := astro.MustBox(0, 2.5, 1.0, 3.4)
	cat := genCatalog(t, survey, 71, 2000, 5)
	target := astro.MustBox(0.2, 2.3, 1.4, 3.0)
	params := maxbcg.DefaultParams()

	central, err := cluster.Run(cat, target, cluster.Config{Nodes: 1, Params: params})
	if err != nil {
		t.Fatal(err)
	}
	want := central.Nodes[0].Result
	if len(want.Clusters) < 2 {
		t.Fatalf("centralised run found only %d clusters; property test needs boundary material", len(want.Clusters))
	}

	imp, err := fed.ImportBox(target, params.BufferDeg, cat.Region)
	if err != nil {
		t.Fatal(err)
	}

	for layout := 0; layout < 4; layout++ {
		rng := rand.New(rand.NewSource(int64(500 + layout)))
		topo := boundaryHuggingTopo(rng, imp, want.Clusters, params.BufferDeg)
		c, _ := startFederation(t, cat, topo, fed.Options{})
		got, _, err := fed.RunMaxBCG(context.Background(), c, cat, target, fed.RunConfig{Params: params})
		if err != nil {
			t.Fatalf("layout %d: %v", layout, err)
		}
		if !reflect.DeepEqual(got.Clusters, want.Clusters) {
			t.Errorf("layout %d (%v): cluster table differs from centralised (%d vs %d rows)",
				layout, cutDecs(topo), len(got.Clusters), len(want.Clusters))
			continue
		}
		if !reflect.DeepEqual(got.Candidates, want.Candidates) {
			t.Errorf("layout %d (%v): candidate table differs from centralised", layout, cutDecs(topo))
		}
		// Exactly-once by construction of the comparison above, but make
		// the property explicit: no cluster ObjID appears twice.
		seen := make(map[int64]int)
		for _, cl := range got.Clusters {
			seen[cl.ObjID]++
		}
		for id, n := range seen {
			if n != 1 {
				t.Errorf("layout %d: cluster %d reported %d times", layout, id, n)
			}
		}
	}
}

// boundaryHuggingTopo builds a 3-stripe layout whose two interior cuts
// land within the buffer width of randomly chosen cluster BCG
// declinations — the worst case for boundary handling.
func boundaryHuggingTopo(rng *rand.Rand, region astro.Box, clusters []maxbcg.Candidate, bufferDeg float64) fed.Topology {
	// Margin keeps every stripe non-empty even after the jitter.
	lo, hi := region.MinDec+0.05, region.MaxDec-0.05
	pick := func() float64 {
		cl := clusters[rng.Intn(len(clusters))]
		cut := cl.Dec + (rng.Float64()*2-1)*bufferDeg
		return min(max(cut, lo), hi)
	}
	a, b := pick(), pick()
	if a > b {
		a, b = b, a
	}
	if b-a < 0.05 { // keep the middle stripe real
		b = min(a+0.05, hi)
		a = b - 0.05
	}
	return fed.Topology{Region: region, Stripes: []fed.Stripe{
		{Name: "south", MinDec: region.MinDec, MaxDec: a},
		{Name: "mid", MinDec: a, MaxDec: b},
		{Name: "north", MinDec: b, MaxDec: region.MaxDec},
	}}
}

func cutDecs(t fed.Topology) []float64 {
	var cuts []float64
	for _, s := range t.Stripes[:len(t.Stripes)-1] {
		cuts = append(cuts, s.MaxDec)
	}
	return cuts
}

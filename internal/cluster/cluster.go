// Package cluster reproduces the paper's SQL Server cluster (§2.4): the
// target area is partitioned into declination slabs, one per server; each
// server imports its slab plus a 1° buffer of duplicated data (Figure 6),
// runs the full MaxBCG pipeline independently, and the union of the
// answers is identical to the sequential run — the paper's headline
// parallelism result, at ~2× elapsed speedup for 3 nodes at the cost of
// ~25% duplicated CPU and I/O (Table 1).
//
// This is the coarse, shared-nothing level of the engine's parallelism:
// each node gets a private database (store, buffer pool, tables).
// Config.Workers additionally sizes each node's intra-node worker pool
// for the batched zone sweeps (zone.Sweep); both levels
// preserve bit-identical output. See ARCHITECTURE.md, "Concurrency
// model".
package cluster

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/astro"
	"repro/internal/maxbcg"
	"repro/internal/sky"
	"repro/internal/sqldb"
)

// Partition is one server's share: its private target slab and the region
// of catalog data it must import (slab + 2×buffer margin, clipped to the
// survey).
type Partition struct {
	Name   string
	Target astro.Box
	Import astro.Box
}

// Plan splits the target into n horizontal slabs and computes each
// server's import region. bufferDeg is the algorithm buffer (0.5°); the
// import margin is twice that — the paper's Figure 6 gives each server a
// 1° buffer ("S1 provides 1 deg buffer on top ...").
func Plan(target astro.Box, n int, bufferDeg float64, survey astro.Box) ([]Partition, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: need at least one node, got %d", n)
	}
	slabs := target.SplitDec(n)
	parts := make([]Partition, n)
	for i, slab := range slabs {
		imp := slab.Expand(2 * bufferDeg)
		if clipped, ok := imp.Intersect(survey); ok {
			imp = clipped
		}
		parts[i] = Partition{
			Name:   fmt.Sprintf("P%d", i+1),
			Target: slab,
			Import: imp,
		}
	}
	return parts, nil
}

// DuplicatedArea returns the total import area exceeding a fair share of
// the (buffered) whole: the Figure 6 quantity ("Total duplicated data =
// 4 x 13 deg²" for 3 servers on the paper's region).
func DuplicatedArea(parts []Partition, target astro.Box, bufferDeg float64, survey astro.Box) float64 {
	whole := target.Expand(2 * bufferDeg)
	if clipped, ok := whole.Intersect(survey); ok {
		whole = clipped
	}
	var sum float64
	for _, p := range parts {
		sum += p.Import.FlatArea()
	}
	return sum - whole.FlatArea()
}

// NodeResult is one server's outcome.
type NodeResult struct {
	Partition Partition
	Report    maxbcg.TaskReport
	Result    *maxbcg.Result
	Elapsed   time.Duration
}

// Result is a full cluster run.
type Result struct {
	Nodes   []NodeResult
	Merged  *maxbcg.Result
	Elapsed time.Duration // wall time of the parallel phase
}

// Config shapes a cluster run.
type Config struct {
	Nodes      int
	Params     maxbcg.Params
	Kcorr      *sky.Kcorr
	ZoneHeight float64 // 0 = paper default
	PoolFrames int     // per-node buffer pool frames (0 = default)
	PoolShards int     // per-node buffer pool shards (0 = GOMAXPROCS)
	// Mode selects each node's neighbour-search access path: the batched
	// zone join (default) or the per-probe ablation baseline.
	Mode maxbcg.SearchMode
	// Ingest selects each node's table-load path: bulk load (default) or
	// the per-row Insert ablation baseline.
	Ingest maxbcg.IngestMode
	// Store selects the zone representation each node's batched sweeps
	// read: the column-major projection (default) or the row-major
	// B+tree ablation baseline. Output is bit-identical either way.
	Store maxbcg.ZoneStore
	// Workers is each node's zone-sweep worker-pool size: 0 = divide
	// WorkerBudget across the nodes, 1 = the sequential sweep (ablation
	// baseline). Every setting produces bit-identical output.
	Workers int
	// WorkerBudget caps the sweep workers the whole cluster may run at
	// once when the nodes run concurrently and Workers is 0: each node
	// gets max(1, budget/nodes) workers instead of a full GOMAXPROCS
	// pool each, so n simulated servers sharing one box stop
	// oversubscribing it n-fold. 0 = GOMAXPROCS. Ignored when Workers
	// is set explicitly or the nodes run sequentially (a sequential
	// node has the whole budget to itself).
	WorkerBudget int
	// Sequential forces the partitions to run one after another; used to
	// attribute CPU cleanly when measuring.
	Sequential bool
	// IncludeMembers adds the member-retrieval task.
	IncludeMembers bool
}

// Run partitions the target, runs one DBFinder per node (each with its own
// database, like the paper's independent servers), and merges the answers.
func Run(cat *sky.Catalog, target astro.Box, cfg Config) (*Result, error) {
	if cfg.Kcorr == nil {
		cfg.Kcorr = cat.Kcorr
	}
	parts, err := Plan(target, cfg.Nodes, cfg.Params.BufferDeg, cat.Region)
	if err != nil {
		return nil, err
	}
	res := &Result{Nodes: make([]NodeResult, len(parts))}

	// Process-wide worker budget: when the nodes run concurrently and no
	// explicit per-node pool size is set, split the budget evenly instead
	// of letting every node spin up GOMAXPROCS workers on the same box.
	// The division is deterministic and workers never change output, so
	// results stay bit-identical to any other setting.
	workers := cfg.Workers
	if workers == 0 && !cfg.Sequential && len(parts) > 1 {
		budget := cfg.WorkerBudget
		if budget <= 0 {
			budget = runtime.GOMAXPROCS(0)
		}
		workers = budget / len(parts)
		if workers < 1 {
			workers = 1
		}
	}

	runNode := func(i int) error {
		part := parts[i]
		db := sqldb.OpenPool(sqldb.PoolConfig{Frames: cfg.PoolFrames, Shards: cfg.PoolShards})
		finder, err := maxbcg.NewDBFinder(db, cfg.Params, cfg.Kcorr, cfg.ZoneHeight)
		if err != nil {
			return err
		}
		finder.Mode = cfg.Mode
		finder.Ingest = cfg.Ingest
		finder.Store = cfg.Store
		finder.Workers = workers
		if _, err := finder.ImportGalaxies(cat, part.Import); err != nil {
			return err
		}
		start := time.Now()
		out, report, err := finder.Run(part.Target, cfg.IncludeMembers)
		if err != nil {
			return fmt.Errorf("cluster: node %s: %w", part.Name, err)
		}
		res.Nodes[i] = NodeResult{
			Partition: part, Report: report, Result: out,
			Elapsed: time.Since(start),
		}
		return nil
	}

	start := time.Now()
	if cfg.Sequential || len(parts) == 1 {
		for i := range parts {
			if err := runNode(i); err != nil {
				return nil, err
			}
		}
	} else {
		var wg sync.WaitGroup
		errs := make([]error, len(parts))
		for i := range parts {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = runNode(i)
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	res.Elapsed = time.Since(start)

	merged := &maxbcg.Result{}
	for _, n := range res.Nodes {
		merged.Candidates = append(merged.Candidates, n.Result.Candidates...)
		merged.Clusters = append(merged.Clusters, n.Result.Clusters...)
		merged.Members = append(merged.Members, n.Result.Members...)
	}
	res.Merged = dedupe(merged)
	return res, nil
}

// dedupe sorts and removes duplicate rows: candidate areas of neighbouring
// partitions overlap in the buffer strips, and duplicated computation
// produces identical rows ("The duplicated computations are insignificant
// compared to the total work").
func dedupe(r *maxbcg.Result) *maxbcg.Result {
	sort.Slice(r.Candidates, func(a, b int) bool { return r.Candidates[a].ObjID < r.Candidates[b].ObjID })
	sort.Slice(r.Clusters, func(a, b int) bool { return r.Clusters[a].ObjID < r.Clusters[b].ObjID })
	sort.Slice(r.Members, func(a, b int) bool {
		if r.Members[a].ClusterObjID != r.Members[b].ClusterObjID {
			return r.Members[a].ClusterObjID < r.Members[b].ClusterObjID
		}
		return r.Members[a].GalaxyObjID < r.Members[b].GalaxyObjID
	})
	out := &maxbcg.Result{}
	for i, c := range r.Candidates {
		if i == 0 || c.ObjID != r.Candidates[i-1].ObjID {
			out.Candidates = append(out.Candidates, c)
		}
	}
	for i, c := range r.Clusters {
		if i == 0 || c.ObjID != r.Clusters[i-1].ObjID {
			out.Clusters = append(out.Clusters, c)
		}
	}
	for i, m := range r.Members {
		if i == 0 || m != r.Members[i-1] {
			out.Members = append(out.Members, m)
		}
	}
	return out
}

// Totals aggregates the per-node task stats: the "Partitioning Total" row
// of Table 1 (elapsed = slowest node; CPU and I/O = sums).
func (r *Result) Totals() (elapsed time.Duration, cpu time.Duration, io int64, galaxies int64) {
	for _, n := range r.Nodes {
		t := n.Report.Total()
		if t.Elapsed > elapsed {
			elapsed = t.Elapsed
		}
		cpu += t.CPU
		io += t.IO
		galaxies += n.Report.Galaxies
	}
	return elapsed, cpu, io, galaxies
}

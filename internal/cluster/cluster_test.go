package cluster

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/astro"
	"repro/internal/maxbcg"
	"repro/internal/sky"
)

func testCatalog(t testing.TB, seed int64) *sky.Catalog {
	t.Helper()
	cat, err := sky.Generate(sky.GenConfig{
		Region: astro.MustBox(193.9, 196.4, 1.2, 3.8),
		Seed:   seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestPlanPaperGeometry(t *testing.T) {
	// Paper Figure 6: target 11x6 inside survey 13x8; 3 servers; each
	// gets a 1 deg buffer; total duplicated data = 4 x 13 deg².
	survey := astro.MustBox(172, 185, -3, 5)
	target := astro.MustBox(173, 184, -2, 4)
	parts, err := Plan(target, 3, 0.5, survey)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 {
		t.Fatalf("got %d partitions", len(parts))
	}
	// Each slab is 11 x 2 deg; imports are slab + 1 deg clipped to survey.
	for i, p := range parts {
		if math.Abs(p.Target.FlatArea()-22) > 1e-9 {
			t.Errorf("partition %d target area %g, want 22", i, p.Target.FlatArea())
		}
		if p.Import.MinRa != 172 || p.Import.MaxRa != 185 {
			t.Errorf("partition %d import ra range %v, want the full 13 deg", i, p.Import)
		}
		if math.Abs(p.Import.Height()-4) > 1e-9 {
			t.Errorf("partition %d import height %g, want 4 (2 + two 1-deg buffers)", i, p.Import.Height())
		}
	}
	dup := DuplicatedArea(parts, target, 0.5, survey)
	if math.Abs(dup-52) > 1e-9 {
		t.Errorf("duplicated area = %g deg², want 4 x 13 = 52 (Figure 6)", dup)
	}
}

func TestPlanValidation(t *testing.T) {
	if _, err := Plan(astro.MustBox(0, 1, 0, 1), 0, 0.5, astro.MustBox(0, 1, 0, 1)); err == nil {
		t.Error("zero nodes accepted")
	}
}

func TestPartitionedIdenticalToSequential(t *testing.T) {
	// The paper's §2.4 invariant: "The union of the answers from the
	// three partitions is identical to the BCG candidates and clusters
	// returned by the sequential (one node) implementation."
	cat := testCatalog(t, 1)
	target := astro.MustBox(194.9, 195.4, 1.8, 3.2)
	cfg := Config{
		Nodes:          1,
		Params:         maxbcg.DefaultParams(),
		IncludeMembers: true,
	}
	seq, err := Run(cat, target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Nodes = 3
	par, err := Run(cat, target, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if len(par.Merged.Clusters) != len(seq.Merged.Clusters) {
		t.Fatalf("clusters differ: %d vs %d", len(par.Merged.Clusters), len(seq.Merged.Clusters))
	}
	for i := range par.Merged.Clusters {
		a, b := par.Merged.Clusters[i], seq.Merged.Clusters[i]
		if a.ObjID != b.ObjID || a.NGal != b.NGal || a.Z != b.Z || math.Abs(a.Chi2-b.Chi2) > 1e-12 {
			t.Fatalf("cluster %d differs: %+v vs %+v", i, a, b)
		}
	}
	if len(par.Merged.Candidates) != len(seq.Merged.Candidates) {
		t.Fatalf("candidates differ: %d vs %d", len(par.Merged.Candidates), len(seq.Merged.Candidates))
	}
	for i := range par.Merged.Candidates {
		if par.Merged.Candidates[i].ObjID != seq.Merged.Candidates[i].ObjID {
			t.Fatalf("candidate %d differs", i)
		}
	}
	if len(par.Merged.Members) != len(seq.Merged.Members) {
		t.Fatalf("members differ: %d vs %d", len(par.Merged.Members), len(seq.Merged.Members))
	}
	for i := range par.Merged.Members {
		if par.Merged.Members[i] != seq.Merged.Members[i] {
			t.Fatalf("member %d differs", i)
		}
	}
}

func TestPartitionedMatchesInMemoryFinder(t *testing.T) {
	cat := testCatalog(t, 3)
	target := astro.MustBox(194.9, 195.4, 1.9, 3.1)
	par, err := Run(cat, target, Config{Nodes: 2, Params: maxbcg.DefaultParams(), IncludeMembers: true})
	if err != nil {
		t.Fatal(err)
	}
	finder, err := maxbcg.NewFinder(cat, maxbcg.DefaultParams(), 0)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := finder.Run(target)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Merged.Clusters) != len(mem.Clusters) {
		t.Fatalf("clusters: cluster run %d vs finder %d", len(par.Merged.Clusters), len(mem.Clusters))
	}
	for i := range mem.Clusters {
		if par.Merged.Clusters[i].ObjID != mem.Clusters[i].ObjID {
			t.Fatalf("cluster %d differs", i)
		}
	}
}

func TestDuplicatedWorkAccounting(t *testing.T) {
	// Partitioning must show the paper's cost shape: more total galaxies
	// processed (duplicated buffer strips) than the single-node run.
	cat := testCatalog(t, 5)
	target := astro.MustBox(194.9, 195.4, 1.9, 3.1)
	seq, err := Run(cat, target, Config{Nodes: 1, Params: maxbcg.DefaultParams()})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(cat, target, Config{Nodes: 3, Params: maxbcg.DefaultParams()})
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, seqGal := seq.Totals()
	_, _, _, parGal := par.Totals()
	if parGal <= seqGal {
		t.Errorf("partitioned run processed %d galaxies vs sequential %d: no duplication?", parGal, seqGal)
	}
	// Paper Table 1: 2,348,050 / 1,574,656 = 1.49 with narrow slabs; our
	// geometry differs but duplication should stay well under 3x.
	if float64(parGal) > 3*float64(seqGal) {
		t.Errorf("duplication factor %.2f implausibly high", float64(parGal)/float64(seqGal))
	}
	// Per-node reports must carry the three tasks.
	for _, n := range par.Nodes {
		if len(n.Report.Tasks) < 3 {
			t.Errorf("node %s has %d task rows", n.Partition.Name, len(n.Report.Tasks))
		}
	}
}

// TestBatchModeMatchesProbeModeAcrossNodes asserts the batched zone join
// is bit-identical to the per-probe plan through the full partitioned
// pipeline: same merged candidates, clusters, and members.
func TestBatchModeMatchesProbeModeAcrossNodes(t *testing.T) {
	cat, err := sky.Generate(sky.GenConfig{
		Region: astro.MustBox(195.0, 195.8, 2.2, 3.0),
		Seed:   11,
	})
	if err != nil {
		t.Fatal(err)
	}
	target := astro.MustBox(195.2, 195.6, 2.4, 2.8)
	run := func(mode maxbcg.SearchMode) *maxbcg.Result {
		res, err := Run(cat, target, Config{
			Nodes: 2, Params: maxbcg.DefaultParams(),
			Mode: mode, IncludeMembers: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Merged
	}
	probe := run(maxbcg.SearchProbe)
	batch := run(maxbcg.SearchBatch)
	if len(probe.Candidates) == 0 || len(probe.Members) == 0 {
		t.Fatalf("degenerate fixture: %s", probe.Summary())
	}
	if !reflect.DeepEqual(probe, batch) {
		t.Errorf("merged results differ: probe %s vs batch %s",
			probe.Summary(), batch.Summary())
	}
}

// Package telemetry is a zero-dependency metrics and tracing kit for the
// engine: atomic counters (striped for contended hot loops), gauges,
// fixed-bucket latency histograms with quantile estimation, labeled
// families, and a Prometheus text exposition writer, plus lightweight
// trace spans that allocate only while a collector is attached.
//
// The design contract, enforced by the benchmark gates, is that
// instrumentation is near-free on the hot path:
//
//   - counters are plain atomic adds (padded to a cache line; contended
//     writers take a Stripe each) and are bumped at batch boundaries —
//     the cancelBatch=256 rhythm the executors already follow — never
//     per row;
//   - scrape-time cost lives in Func metrics that read stats the
//     subsystems already keep (pool shard atomics, queue lengths), so
//     attaching a Registry adds no new bookkeeping to the fast paths;
//   - spans are nil until a sink is attached, and every Span method is
//     nil-safe, so the un-observed path is a single pointer load.
//
// Everything renders through Registry.WritePrometheus in the text
// exposition format (version 0.0.4); HTTP layers mount it themselves
// (see ContentType for why this package stays off net/http).
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// ContentType is the Prometheus text exposition content type a /metrics
// endpoint should answer with. The package deliberately does not import
// net/http (linking net drags net/netip's interning tables into every
// binary, and netip's init registers a per-GC cleanup goroutine that
// would tax instrumented benchmarks); HTTP layers mount WritePrometheus
// themselves.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// A Registry holds metric families keyed by name and renders them in
// Prometheus text format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one exposition block: a name, HELP/TYPE header, label schema,
// and a set of children keyed by their rendered label string.
type family struct {
	name       string
	help       string
	typ        string // "counter", "gauge", or "histogram"
	labelNames []string

	mu       sync.Mutex
	children map[string]child
}

// child is anything that can render itself as exposition lines for a
// given family name and label string.
type child interface {
	writeTo(w io.Writer, name, labels string)
}

// lookup returns the family registered under name, creating it when
// absent. Re-registering with a different type or label schema panics:
// that is a programmer error, and silently merging would corrupt the
// exposition.
func (r *Registry) lookup(name, help, typ string, labelNames []string) *family {
	checkName(name)
	for _, l := range labelNames {
		checkName(l)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || !equalStrings(f.labelNames, labelNames) {
			panic(fmt.Sprintf("telemetry: %s re-registered as %s%v (was %s%v)",
				name, typ, labelNames, f.typ, f.labelNames))
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ,
		labelNames: labelNames,
		children:   make(map[string]child),
	}
	r.families[name] = f
	return f
}

// getOrAdd returns the child stored under the rendered label string,
// creating it with mk on first use.
func (f *family) getOrAdd(labels string, mk func() child) child {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[labels]; ok {
		return c
	}
	c := mk()
	f.children[labels] = c
	return c
}

// set unconditionally (re)binds the child stored under labels. Func
// metrics use it so a re-attach (say, after a pool swap) replaces the
// stale closure instead of panicking.
func (f *family) set(labels string, c child) {
	f.mu.Lock()
	f.children[labels] = c
	f.mu.Unlock()
}

// labelString renders `name="value",...` (no braces) for the family's
// label schema. Values are escaped per the exposition format.
func (f *family) labelString(values []string) string {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("telemetry: %s wants %d label values, got %d",
			f.name, len(f.labelNames), len(values)))
	}
	if len(values) == 0 {
		return ""
	}
	var b strings.Builder
	for i, n := range f.labelNames {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	return b.String()
}

// WritePrometheus renders every registered family, sorted by name (and
// children sorted by label string), in the text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	bw := &errWriter{w: w}
	for _, f := range fams {
		f.mu.Lock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		kids := make([]child, len(keys))
		for i, k := range keys {
			kids[i] = f.children[k]
		}
		f.mu.Unlock()

		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for i, k := range kids {
			k.writeTo(bw, f.name, keys[i])
		}
	}
	return bw.err
}

// errWriter remembers the first write error so exposition code can stay
// free of per-line error plumbing.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return len(p), nil
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
	}
	return n, nil
}

// writeSample emits one `name{labels} value` line.
func writeSample(w io.Writer, name, labels, value string) {
	if labels == "" {
		fmt.Fprintf(w, "%s %s\n", name, value)
		return
	}
	fmt.Fprintf(w, "%s{%s} %s\n", name, labels, value)
}

// formatFloat renders a sample value: integral floats print without an
// exponent so counters read naturally.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func checkName(s string) {
	if s == "" {
		panic("telemetry: empty metric or label name")
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			panic("telemetry: invalid metric or label name " + strconv.Quote(s))
		}
	}
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, "\\", `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// A Tracer hands out Spans. With no sink attached (the steady state for
// benchmarks and batch runs) Start returns nil and the caller pays one
// atomic pointer load; every Span method is nil-safe, so instrumented
// code never branches on "is tracing on". Attaching a ring sink — casjobsd
// does this under -debug-addr — turns the same call sites into real
// span collection.
type Tracer struct {
	sink atomic.Pointer[RingSink]
}

// Attach installs (and returns) a ring sink holding the most recent
// capacity finished spans. Attaching replaces any previous sink;
// Attach(0) detaches.
func (t *Tracer) Attach(capacity int) *RingSink {
	if capacity <= 0 {
		t.sink.Store(nil)
		return nil
	}
	s := &RingSink{buf: make([]SpanRecord, 0, capacity), cap: capacity}
	t.sink.Store(s)
	return s
}

// Start opens a span, or returns nil when no sink is attached.
func (t *Tracer) Start(name, id string) *Span {
	sink := t.sink.Load()
	if sink == nil {
		return nil
	}
	return &Span{
		sink:  sink,
		rec:   SpanRecord{Name: name, ID: id, Start: time.Now()},
		attrs: make(map[string]string, 4),
	}
}

// A Span is one traced operation: a name, an ID shared with the query
// log, timestamped events, and string attributes. All methods are safe
// on a nil receiver.
type Span struct {
	mu    sync.Mutex
	sink  *RingSink
	rec   SpanRecord
	attrs map[string]string
}

// Event appends a named, timestamped marker to the span.
func (s *Span) Event(name string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.rec.Events = append(s.rec.Events, SpanEvent{Name: name, At: time.Since(s.rec.Start)})
	s.mu.Unlock()
}

// SetAttr records a key/value attribute, overwriting any previous value.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs[k] = v
	s.mu.Unlock()
}

// End closes the span and pushes it to the sink. Calling End twice
// records the span twice; don't.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.rec.Duration = time.Since(s.rec.Start)
	s.rec.Attrs = s.attrs
	rec := s.rec
	sink := s.sink
	s.mu.Unlock()
	sink.push(rec)
}

// A SpanRecord is a finished span as stored in the sink (and rendered by
// casjobsd's /debug/traces).
type SpanRecord struct {
	Name     string            `json:"name"`
	ID       string            `json:"id"`
	Start    time.Time         `json:"start"`
	Duration time.Duration     `json:"duration_ns"`
	Events   []SpanEvent       `json:"events,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// A SpanEvent is a marker inside a span, as an offset from span start.
type SpanEvent struct {
	Name string        `json:"name"`
	At   time.Duration `json:"at_ns"`
}

// A RingSink keeps the most recent N finished spans.
type RingSink struct {
	mu   sync.Mutex
	buf  []SpanRecord
	next int
	cap  int
}

func (r *RingSink) push(rec SpanRecord) {
	r.mu.Lock()
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, rec)
	} else {
		r.buf[r.next] = rec
		r.next = (r.next + 1) % r.cap
	}
	r.mu.Unlock()
}

// Recent returns the buffered spans, oldest first.
func (r *RingSink) Recent() []SpanRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanRecord, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

package telemetry

import (
	"io"
	"runtime"
	"strconv"
	"sync/atomic"
)

// stripeCount is the number of write stripes a Counter carries: the next
// power of two covering GOMAXPROCS, capped so a counter stays a few cache
// lines even on very wide machines. One stripe per concurrent writer is
// enough — the pool shards and sweep workers hand out stripes by worker
// index, exactly like the pool's own per-shard stat atomics.
var stripeCount = func() int {
	n := 1
	for n < runtime.GOMAXPROCS(0) && n < 16 {
		n <<= 1
	}
	return n
}()

// padded keeps each stripe on its own cache line so concurrent writers on
// distinct stripes never false-share.
type padded struct {
	v atomic.Int64
	_ [56]byte
}

// A Counter is a monotonically increasing metric. Add on the counter
// itself serialises on stripe 0, which is fine at batch-boundary call
// rates; hot loops with several concurrent writers take one Stripe per
// worker so adds never contend. Value sums the stripes lock-free.
type Counter struct {
	stripes []padded
}

func newCounter() *Counter { return &Counter{stripes: make([]padded, stripeCount)} }

// Add increments the counter by delta (negative deltas are a programmer
// error but are not checked on the hot path).
func (c *Counter) Add(delta int64) { c.stripes[0].v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Stripe returns a write handle private to worker i; distinct workers
// using distinct stripes never share a cache line.
func (c *Counter) Stripe(i int) *CounterStripe {
	return &CounterStripe{p: &c.stripes[i&(len(c.stripes)-1)]}
}

// Value returns the counter's current total.
func (c *Counter) Value() int64 {
	var n int64
	for i := range c.stripes {
		n += c.stripes[i].v.Load()
	}
	return n
}

func (c *Counter) writeTo(w io.Writer, name, labels string) {
	writeSample(w, name, labels, strconv.FormatInt(c.Value(), 10))
}

// A CounterStripe is a single-writer view of one Counter stripe.
type CounterStripe struct {
	p *padded
}

// Add increments the stripe by delta.
func (s *CounterStripe) Add(delta int64) { s.p.v.Add(delta) }

// A Gauge is a settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta (use +1/-1 around a region to track a
// live count).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the gauge's current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) writeTo(w io.Writer, name, labels string) {
	writeSample(w, name, labels, strconv.FormatInt(g.Value(), 10))
}

// funcMetric is a scrape-time sample: the closure reads state its owner
// already keeps (shard atomics, queue lengths), so registering it adds
// nothing to the owner's hot path.
type funcMetric struct {
	fn func() float64
}

func (f funcMetric) writeTo(w io.Writer, name, labels string) {
	writeSample(w, name, labels, formatFloat(f.fn()))
}

// NewCounter registers (or returns the existing) unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	f := r.lookup(name, help, "counter", nil)
	return f.getOrAdd("", func() child { return newCounter() }).(*Counter)
}

// NewGauge registers (or returns the existing) unlabeled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	f := r.lookup(name, help, "gauge", nil)
	return f.getOrAdd("", func() child { return new(Gauge) }).(*Gauge)
}

// NewCounterFunc registers a counter whose value is read by fn at scrape
// time (float so seconds-unit counters fit). Re-registering the same name
// replaces the closure.
func (r *Registry) NewCounterFunc(name, help string, fn func() float64) {
	f := r.lookup(name, help, "counter", nil)
	f.set("", funcMetric{fn: fn})
}

// NewGaugeFunc registers a gauge whose value is read by fn at scrape
// time. Re-registering the same name replaces the closure.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	f := r.lookup(name, help, "gauge", nil)
	f.set("", funcMetric{fn: fn})
}

// A CounterVec is a family of counters split by label values.
type CounterVec struct {
	f *family
}

// NewCounterVec registers (or returns the existing) labeled counter
// family.
func (r *Registry) NewCounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{f: r.lookup(name, help, "counter", labelNames)}
}

// With returns the child counter for the given label values, creating it
// on first use. Children are cached; hot call sites should hold on to the
// returned counter rather than calling With per event.
func (v *CounterVec) With(labelValues ...string) *Counter {
	ls := v.f.labelString(labelValues)
	return v.f.getOrAdd(ls, func() child { return newCounter() }).(*Counter)
}

// A GaugeVec is a family of gauges split by label values.
type GaugeVec struct {
	f *family
}

// NewGaugeVec registers (or returns the existing) labeled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{f: r.lookup(name, help, "gauge", labelNames)}
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	ls := v.f.labelString(labelValues)
	return v.f.getOrAdd(ls, func() child { return new(Gauge) }).(*Gauge)
}

// A FuncVec is a family of scrape-time samples split by label values; the
// family type (counter or gauge) is fixed at registration.
type FuncVec struct {
	f *family
}

// NewCounterFuncVec registers a labeled family of scrape-time counters.
func (r *Registry) NewCounterFuncVec(name, help string, labelNames ...string) *FuncVec {
	return &FuncVec{f: r.lookup(name, help, "counter", labelNames)}
}

// NewGaugeFuncVec registers a labeled family of scrape-time gauges.
func (r *Registry) NewGaugeFuncVec(name, help string, labelNames ...string) *FuncVec {
	return &FuncVec{f: r.lookup(name, help, "gauge", labelNames)}
}

// Attach binds fn as the sample for the given label values, replacing any
// previous binding.
func (v *FuncVec) Attach(fn func() float64, labelValues ...string) {
	v.f.set(v.f.labelString(labelValues), funcMetric{fn: fn})
}

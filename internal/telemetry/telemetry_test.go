package telemetry

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// TestCounterConcurrentExact is the striped-counter property test: G
// goroutines, each on its own stripe, each adding random deltas; the
// final Value must equal the exact sum regardless of interleaving. Run
// under -race in CI.
func TestCounterConcurrentExact(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_ops_total", "ops")
	const goroutines, adds = 8, 2000
	want := make([]int64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			st := c.Stripe(g)
			var sum int64
			for i := 0; i < adds; i++ {
				d := rng.Int63n(100)
				st.Add(d)
				sum += d
			}
			want[g] = sum
		}(g)
	}
	wg.Wait()
	var total int64
	for _, w := range want {
		total += w
	}
	if got := c.Value(); got != total {
		t.Fatalf("striped counter lost updates: got %d want %d", got, total)
	}

	// Plain Add and Inc land in the same total.
	c.Add(5)
	c.Inc()
	if got := c.Value(); got != total+6 {
		t.Fatalf("Add/Inc: got %d want %d", got, total+6)
	}
}

// TestHistogramConcurrent pins that count and sum are exact under
// concurrent Observe, and that quantile estimates land inside the right
// bucket.
func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_latency_seconds", "latency", ExpBuckets(0.001, 2, 12))
	const goroutines, obs = 8, 2000
	var wg sync.WaitGroup
	sums := make([]float64, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			var sum float64
			for i := 0; i < obs; i++ {
				v := rng.Float64() * 0.1
				h.Observe(v)
				sum += v
			}
			sums[g] = sum
		}(g)
	}
	wg.Wait()
	if got, want := h.Count(), int64(goroutines*obs); got != want {
		t.Fatalf("count: got %d want %d", got, want)
	}
	var want float64
	for _, s := range sums {
		want += s
	}
	if got := h.Sum(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("sum: got %g want %g", got, want)
	}
	// Uniform on [0, 0.1): the true median is ~0.05 and p99 ~0.099; with
	// doubling buckets the interpolated estimates must land within the
	// covering bucket's span.
	if p50 := h.Quantile(0.5); p50 < 0.032 || p50 > 0.064 {
		t.Errorf("p50 out of bucket range: %g", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 0.064 || p99 > 0.128 {
		t.Errorf("p99 out of bucket range: %g", p99)
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("empty histogram quantile: got %g want 0", q)
	}
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(100) // +Inf bucket
	if q := h.Quantile(1); q != 4 {
		t.Errorf("top-bucket quantile reports the last bound: got %g", q)
	}
	if q := h.Quantile(0.01); q <= 0 || q > 1 {
		t.Errorf("low quantile outside first bucket: %g", q)
	}
}

// TestPrometheusExposition golden-checks the text format end to end:
// HELP/TYPE headers, label escaping, sorted families and children,
// cumulative histogram buckets, and func metrics sampled at scrape time.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("zz_last_total", "sorts last").Add(1)
	v := r.NewCounterVec("jobs_total", "jobs by queue", "queue", "status")
	v.With("quick", "ok").Add(3)
	v.With("long", `we"ird\q`).Add(1)
	g := r.NewGauge("depth", "queue depth")
	g.Set(7)
	live := int64(2)
	r.NewGaugeFunc("live", "live tickets", func() float64 { return float64(live) })
	h := r.NewHistogram("wait_seconds", "queue wait", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(9)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `# HELP depth queue depth
# TYPE depth gauge
depth 7
# HELP jobs_total jobs by queue
# TYPE jobs_total counter
jobs_total{queue="long",status="we\"ird\\q"} 1
jobs_total{queue="quick",status="ok"} 3
# HELP live live tickets
# TYPE live gauge
live 2
# HELP wait_seconds queue wait
# TYPE wait_seconds histogram
wait_seconds_bucket{le="0.5"} 1
wait_seconds_bucket{le="1"} 2
wait_seconds_bucket{le="+Inf"} 3
wait_seconds_sum 10
wait_seconds_count 3
# HELP zz_last_total sorts last
# TYPE zz_last_total counter
zz_last_total 1
`
	if got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// Func metrics read live state at every scrape.
	live = 5
	b.Reset()
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "\nlive 5\n") {
		t.Fatalf("func metric not sampled at scrape:\n%s", b.String())
	}
}

// TestRegistryReuseAndConflicts pins the registration contract:
// same-shape re-registration returns the same family, shape conflicts
// panic, and invalid names panic.
func TestRegistryReuseAndConflicts(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("x_total", "x")
	if b := r.NewCounter("x_total", "x"); a != b {
		t.Fatal("re-registration returned a different counter")
	}
	mustPanic(t, "type conflict", func() { r.NewGauge("x_total", "x") })
	mustPanic(t, "label conflict", func() { r.NewCounterVec("x_total", "x", "q") })
	mustPanic(t, "bad name", func() { r.NewCounter("1bad", "x") })
	mustPanic(t, "bad label", func() { r.NewCounterVec("ok_total", "x", "bad-label") })
	v := r.NewCounterVec("y_total", "y", "a")
	mustPanic(t, "label arity", func() { v.With("one", "two") })
}

// TestVecConcurrentWith hammers CounterVec.With from many goroutines to
// prove child creation is race-free and children are shared.
func TestVecConcurrentWith(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("hits_total", "hits", "shard")
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				v.With("s0").Inc()
			}
		}(g)
	}
	wg.Wait()
	if got := v.With("s0").Value(); got != goroutines*1000 {
		t.Fatalf("vec child lost updates: got %d", got)
	}
}

func TestTracerNilSafety(t *testing.T) {
	var tr Tracer
	sp := tr.Start("job", "t1")
	if sp != nil {
		t.Fatal("span allocated with no sink attached")
	}
	// All methods must be no-ops on nil.
	sp.Event("queued")
	sp.SetAttr("user", "maria")
	sp.End()

	sink := tr.Attach(2)
	for i, id := range []string{"a", "b", "c"} {
		s := tr.Start("job", id)
		if s == nil {
			t.Fatal("span nil with sink attached")
		}
		s.Event("run")
		s.SetAttr("n", string(rune('0'+i)))
		s.End()
	}
	recent := sink.Recent()
	if len(recent) != 2 || recent[0].ID != "b" || recent[1].ID != "c" {
		t.Fatalf("ring sink kept wrong spans: %+v", recent)
	}
	if recent[1].Duration < 0 || len(recent[1].Events) != 1 {
		t.Fatalf("span record incomplete: %+v", recent[1])
	}

	tr.Attach(0)
	if tr.Start("job", "d") != nil {
		t.Fatal("detach did not disable span allocation")
	}
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", what)
		}
	}()
	fn()
}

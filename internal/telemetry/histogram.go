package telemetry

import (
	"io"
	"math"
	"sort"
	"strconv"
	"sync/atomic"
)

// A Histogram counts observations into fixed buckets and keeps an exact
// count and sum, which is all the Prometheus exposition needs; Quantile
// estimates p50/p99-style latencies from the bucket counts by linear
// interpolation. Observe is wait-free: a bucket add, a count add, and a
// CAS loop on the float sum.
type Histogram struct {
	bounds []float64      // ascending upper bounds; +Inf is implicit
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// inside the bucket holding the target rank; the open-ended top bucket
// reports its lower bound. Returns 0 with no observations. Concurrent
// Observes make the snapshot approximate, which is fine for a monitoring
// readout.
func (h *Histogram) Quantile(q float64) float64 {
	counts := make([]int64, len(h.counts))
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var seen int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if float64(seen+c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if i == len(h.bounds) { // +Inf bucket: no width to interpolate
				return lo
			}
			hi := h.bounds[i]
			frac := (rank - float64(seen)) / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		seen += c
	}
	return h.bounds[len(h.bounds)-1]
}

// writeTo renders the cumulative _bucket/_sum/_count triplet.
func (h *Histogram) writeTo(w io.Writer, name, labels string) {
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		writeSample(w, name+"_bucket", joinLabels(labels, `le="`+formatFloat(b)+`"`),
			strconv.FormatInt(cum, 10))
	}
	cum += h.counts[len(h.bounds)].Load()
	writeSample(w, name+"_bucket", joinLabels(labels, `le="+Inf"`),
		strconv.FormatInt(cum, 10))
	writeSample(w, name+"_sum", labels, formatFloat(h.Sum()))
	writeSample(w, name+"_count", labels, strconv.FormatInt(h.count.Load(), 10))
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

// ExpBuckets returns n upper bounds growing geometrically from start by
// factor — the usual latency ladder.
func ExpBuckets(start, factor float64, n int) []float64 {
	bs := make([]float64, n)
	v := start
	for i := range bs {
		bs[i] = v
		v *= factor
	}
	return bs
}

// DurationBuckets is a general-purpose latency ladder in seconds: 100µs
// doubling up to ~1.6 s, then a few coarse tail buckets.
var DurationBuckets = append(ExpBuckets(0.0001, 2, 15), 5, 15, 60)

// NewHistogram registers (or returns the existing) unlabeled histogram
// with the given bucket upper bounds (nil means DurationBuckets).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DurationBuckets
	}
	f := r.lookup(name, help, "histogram", nil)
	return f.getOrAdd("", func() child { return newHistogram(bounds) }).(*Histogram)
}

// A HistogramVec is a family of histograms split by label values; all
// children share one bucket layout.
type HistogramVec struct {
	f      *family
	bounds []float64
}

// NewHistogramVec registers (or returns the existing) labeled histogram
// family (nil bounds means DurationBuckets).
func (r *Registry) NewHistogramVec(name, help string, bounds []float64, labelNames ...string) *HistogramVec {
	if bounds == nil {
		bounds = DurationBuckets
	}
	return &HistogramVec{f: r.lookup(name, help, "histogram", labelNames), bounds: bounds}
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	ls := v.f.labelString(labelValues)
	return v.f.getOrAdd(ls, func() child { return newHistogram(v.bounds) }).(*Histogram)
}

package zone

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/astro"
	"repro/internal/sky"
	"repro/internal/sqldb"
)

// sqlJoinFixture installs a zone table (columnar or row-only), registers
// fGetNearbyObjEqZd, and loads the probes into a Probes table clustered on
// pid, so the SQL join's outer order is the probe slice's order.
func sqlJoinFixture(t *testing.T, gals []sky.Galaxy, height float64, probes []Probe, columnar bool) (*sqldb.DB, *sqldb.Table) {
	t.Helper()
	db := sqldb.Open(0)
	var zt *sqldb.Table
	var err error
	if columnar {
		zt, err = InstallZoneTableColumnar(db, "Zone", gals, height)
	} else {
		zt, err = InstallZoneTable(db, "Zone", gals, height)
	}
	if err != nil {
		t.Fatal(err)
	}
	RegisterNearbyTVF(db, zt, height)
	if _, err := db.Exec("CREATE TABLE Probes (pid bigint PRIMARY KEY, ra float, dec float, r float)"); err != nil {
		t.Fatal(err)
	}
	pt, _ := db.Table("Probes")
	for i, p := range probes {
		err := pt.Insert([]sqldb.Value{
			sqldb.Int(int64(i)), sqldb.Float(p.Ra), sqldb.Float(p.Dec), sqldb.Float(p.R),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return db, zt
}

// sweepOracle answers the probes with the Go batch sweep (columnar when
// the table carries its projection) and returns the rows the SQL join must
// produce: per probe in pid order, per hit in the sweep's emission order,
// as (pid, objID, distance).
func sweepOracle(t *testing.T, zt *sqldb.Table, height float64, probes []Probe) [][]sqldb.Value {
	t.Helper()
	hits := make([][][]sqldb.Value, len(probes))
	fn := func(pi int, zr ZoneRow) {
		hits[pi] = append(hits[pi], []sqldb.Value{
			sqldb.Int(int64(pi)), sqldb.Int(zr.ObjID), sqldb.Float(zr.Distance),
		})
	}
	var err error
	if ct := zt.Columnar(); ct != nil {
		err = Sweep(context.Background(), Columnar(ct, height), probes, SweepOptions{Workers: 1}, fn)
	} else {
		err = Sweep(context.Background(), Rows(zt, height), probes, SweepOptions{Workers: 1}, fn)
	}
	if err != nil {
		t.Fatal(err)
	}
	var out [][]sqldb.Value
	for _, h := range hits {
		out = append(out, h...)
	}
	return out
}

// requireSameRows asserts bit-identical result sets (float equality is
// exact equality; the plans must agree bitwise, not approximately).
func requireSameRows(t *testing.T, label string, got *sqldb.Rows, want [][]sqldb.Value) {
	t.Helper()
	if got.Len() != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, got.Len(), len(want))
	}
	i := 0
	for got.Next() {
		g, w := got.Row(), want[i]
		if len(g) != len(w) {
			t.Fatalf("%s row %d: width %d, want %d", label, i, len(g), len(w))
		}
		for c := range g {
			if g[c] != w[c] {
				t.Fatalf("%s row %d col %d: %#v, want %#v", label, i, c, g[c], w[c])
			}
		}
		i++
	}
}

// TestSQLZoneJoinMatchesGoSweep is the planner's acceptance test: the
// paper's neighbour query — a probe table joined against
// fGetNearbyObjEqZd — planned as a ZoneSweepJoin must return rows
// bit-identical to zone.(Parallel)BatchSearch(Columnar), to the naive
// per-row TVFApply plan, and across the columnar/row zone
// representations, including probes straddling the RA 0°/360° seam.
func TestSQLZoneJoinMatchesGoSweep(t *testing.T) {
	const query = `SELECT p.pid, n.objID, n.distance FROM Probes p CROSS JOIN fGetNearbyObjEqZd(p.ra, p.dec, p.r) n`
	cases := []struct {
		name   string
		gals   []sky.Galaxy
		height float64
		probes []Probe
	}{
		{
			name: "seam", gals: seamGalaxies(), height: 0.25,
			probes: func() []Probe {
				var ps []Probe
				for _, p := range seamProbes() {
					ps = append(ps, Probe{Ra: p[0], Dec: p[1], R: p[2]})
				}
				return append(ps, Probe{Ra: 12, Dec: 1, R: -1}) // matches nothing
			}(),
		},
		{
			name: "survey", gals: testGalaxies(t, 31, 8000), height: astro.ZoneHeightDeg,
			probes: func() []Probe {
				rng := rand.New(rand.NewSource(41))
				ps := make([]Probe, 64)
				for i := range ps {
					ps[i] = Probe{
						Ra:  180.0 + rng.Float64(),
						Dec: -0.5 + rng.Float64(),
						R:   0.02 + rng.Float64()*0.12,
					}
				}
				return ps
			}(),
		},
	}
	for _, tc := range cases {
		for _, columnar := range []bool{true, false} {
			t.Run(fmt.Sprintf("%s/columnar=%v", tc.name, columnar), func(t *testing.T) {
				db, zt := sqlJoinFixture(t, tc.gals, tc.height, tc.probes, columnar)
				want := sweepOracle(t, zt, tc.height, tc.probes)
				if len(want) == 0 {
					t.Fatal("oracle found no neighbours; fixture is degenerate")
				}

				// The planned query must run the batched sweep...
				plan, err := db.Explain(query)
				if err != nil {
					t.Fatal(err)
				}
				if !strings.Contains(plan, "ZoneSweepJoin fGetNearbyObjEqZd(p.ra, p.dec, p.r)") {
					t.Fatalf("plan does not lower to ZoneSweepJoin:\n%s", plan)
				}
				if columnar && !strings.Contains(plan, "ColumnarScan Zone") {
					t.Fatalf("columnar zone store not shown as the sweep's access path:\n%s", plan)
				}
				if !columnar && !strings.Contains(plan, "IndexScan Zone") {
					t.Fatalf("row zone store not shown as the sweep's access path:\n%s", plan)
				}

				// ...and return the Go sweep's exact rows.
				rows, err := db.Query(query)
				if err != nil {
					t.Fatal(err)
				}
				requireSameRows(t, "planned SQL", rows, want)

				// The naive per-row plan (TVFApply -> SearchTable per probe)
				// must agree bitwise with both.
				db.SetPlannerKnobs(sqldb.PlannerKnobs{NoZoneSweepJoin: true})
				naivePlan, err := db.Explain(query)
				if err != nil {
					t.Fatal(err)
				}
				if !strings.Contains(naivePlan, "TVFApply fGetNearbyObjEqZd") || strings.Contains(naivePlan, "ZoneSweepJoin") {
					t.Fatalf("NoZoneSweepJoin knob did not restore the per-row plan:\n%s", naivePlan)
				}
				naive, err := db.Query(query)
				if err != nil {
					t.Fatal(err)
				}
				requireSameRows(t, "naive SQL", naive, want)
			})
		}
	}
}

// TestSQLZoneJoinResidualAndProjection pins two planner details of the
// neighbour shape: an INNER JOIN's ON clause applies as a residual filter
// over the batched join's output, and EXPLAIN ANALYZE reports actual row
// counts on the sweep operator.
func TestSQLZoneJoinResidualAndProjection(t *testing.T) {
	gals := testGalaxies(t, 37, 4000)
	probes := []Probe{
		{Ra: 180.2, Dec: 0.1, R: 0.1},
		{Ra: 180.7, Dec: -0.2, R: 0.1},
	}
	db, zt := sqlJoinFixture(t, gals, astro.ZoneHeightDeg, probes, true)
	want := sweepOracle(t, zt, astro.ZoneHeightDeg, probes)
	var filtered [][]sqldb.Value
	for _, r := range want {
		if r[2].F < 0.05 {
			filtered = append(filtered, r)
		}
	}
	if len(filtered) == 0 || len(filtered) == len(want) {
		t.Fatalf("fixture does not exercise the residual (kept %d of %d)", len(filtered), len(want))
	}
	const query = `SELECT p.pid, n.objID, n.distance FROM Probes p JOIN fGetNearbyObjEqZd(p.ra, p.dec, p.r) n ON n.distance < 0.05`
	rows, err := db.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	requireSameRows(t, "residual join", rows, filtered)

	analyzed, err := db.Explain("EXPLAIN ANALYZE " + query)
	if err != nil {
		t.Fatal(err)
	}
	wantLine := fmt.Sprintf("actual %d rows", len(filtered))
	if !strings.Contains(analyzed, "ZoneSweepJoin") || !strings.Contains(analyzed, wantLine) {
		t.Fatalf("EXPLAIN ANALYZE missing sweep actuals (%s):\n%s", wantLine, analyzed)
	}
}

package zone

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/astro"
	"repro/internal/sky"
	"repro/internal/sqldb"
	"repro/internal/storage"
)

// sweepFixture builds a seam-straddling catalog and probe set sized to
// spread across many zones and both sides of the RA wrap.
func sweepFixture(t *testing.T) ([]sky.Galaxy, float64, []Probe) {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	const n = 4000
	gals := make([]sky.Galaxy, n)
	for i := range gals {
		gals[i] = sky.Galaxy{
			ObjID: int64(1000 + i),
			Ra:    rng.Float64()*8 - 4, // straddle RA 0/360
			Dec:   rng.Float64()*4 - 2,
			I:     rng.Float64() * 2,
			Gr:    rng.Float64(),
			Ri:    rng.Float64(),
		}
		if gals[i].Ra < 0 {
			gals[i].Ra += 360
		}
	}
	var probes []Probe
	for i := 0; i < 300; i++ {
		ra := rng.Float64()*8 - 4
		if ra < 0 {
			ra += 360
		}
		probes = append(probes, Probe{Ra: ra, Dec: rng.Float64()*4 - 2, R: 0.05 + rng.Float64()*0.2})
	}
	return gals, astro.ZoneHeightDeg, probes
}

// TestSweepEquivalentToSequentialBaselines pins the redesigned zone.Sweep
// entry point bit-identical to the sequential sweeps it replaced: the
// Workers=1 path over both sources is the exact algorithm BatchSearch /
// BatchSearchColumnar ran (same drivers, same sweepers), and this test
// anchors the whole matrix — row/columnar × worker counts — to that
// baseline plus the independent per-probe SearchTable oracle.
func TestSweepEquivalentToSequentialBaselines(t *testing.T) {
	gals, height, probes := sweepFixture(t)
	db := sqldb.Open(0)
	zt, err := InstallZoneTableColumnar(db, "Zone", gals, height)
	if err != nil {
		t.Fatal(err)
	}
	ct := zt.Columnar()
	if ct == nil {
		t.Fatal("no columnar projection")
	}

	type call struct {
		probe int
		row   ZoneRow
	}
	run := func(src Source, workers int) []call {
		var out []call
		if err := Sweep(context.Background(), src, probes, SweepOptions{Workers: workers}, func(pi int, zr ZoneRow) {
			out = append(out, call{probe: pi, row: zr})
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}

	baseline := run(Rows(zt, height), 1)
	if len(baseline) == 0 {
		t.Fatal("fixture matches nothing")
	}

	// The independent oracle: per-probe SearchTable answers, which the
	// sweep must reproduce per probe in the same (zone, ra) order.
	perProbe := make([][]ZoneRow, len(probes))
	for pi, p := range probes {
		if err := SearchTable(zt, height, p.Ra, p.Dec, p.R, func(zr ZoneRow) {
			perProbe[pi] = append(perProbe[pi], zr)
		}); err != nil {
			t.Fatal(err)
		}
	}
	gotPerProbe := make([][]ZoneRow, len(probes))
	for _, c := range baseline {
		gotPerProbe[c.probe] = append(gotPerProbe[c.probe], c.row)
	}
	if !reflect.DeepEqual(gotPerProbe, perProbe) {
		t.Fatal("Sweep(Rows, Workers:1) disagrees with the SearchTable oracle")
	}

	for _, src := range []struct {
		name string
		s    Source
	}{{"Rows", Rows(zt, height)}, {"Columnar", Columnar(ct, height)}, {"TableSource", TableSource(zt, height)}} {
		for _, workers := range []int{1, 2, 4, 8} {
			got := run(src.s, workers)
			if !reflect.DeepEqual(got, baseline) {
				t.Errorf("%s workers=%d: call sequence differs from the sequential row baseline", src.name, workers)
			}
		}
	}
}

// TestSweepIOOpsIndependentOfWorkers pins the leaf-cache invariant that
// keeps Table 1's I/O column trustworthy under parallelism: the pool
// fetch count of a sweep is a pure function of the probe set and source,
// not of the worker count or scheduling. Caches reset at zone boundaries,
// so a cache hit can never substitute for a fetch another worker would
// have made.
func TestSweepIOOpsIndependentOfWorkers(t *testing.T) {
	gals, height, probes := sweepFixture(t)
	db := sqldb.Open(0)
	zt, err := InstallZoneTableColumnar(db, "Zone", gals, height)
	if err != nil {
		t.Fatal(err)
	}
	pool := db.Pool()

	for _, src := range []struct {
		name string
		s    Source
	}{{"Rows", Rows(zt, height)}, {"Columnar", Columnar(zt.Columnar(), height)}} {
		t.Run(src.name, func(t *testing.T) {
			io := func(workers int) storage.Stats {
				// Warm the pool so residency does not depend on run order.
				if err := Sweep(context.Background(), src.s, probes, SweepOptions{Workers: workers}, func(int, ZoneRow) {}); err != nil {
					t.Fatal(err)
				}
				before := pool.Stats()
				if err := Sweep(context.Background(), src.s, probes, SweepOptions{Workers: workers}, func(int, ZoneRow) {}); err != nil {
					t.Fatal(err)
				}
				return pool.Stats().Sub(before)
			}
			want := io(1)
			if want.LogicalReads == 0 {
				t.Fatal("sequential sweep did no I/O; fixture broken")
			}
			for _, workers := range []int{2, 4, 8} {
				for rep := 0; rep < 2; rep++ {
					if got := io(workers); got != want {
						t.Fatalf("workers=%d rep %d: io %+v, sequential %+v", workers, rep, got, want)
					}
				}
			}
		})
	}
}

// TestSweepEmptyAndNilSources pins the entry point's edge contract.
func TestSweepEmptyAndNilSources(t *testing.T) {
	gals, height, _ := sweepFixture(t)
	db := sqldb.Open(0)
	zt, err := InstallZoneTable(db, "Zone", gals, height)
	if err != nil {
		t.Fatal(err)
	}
	if err := Sweep(context.Background(), Rows(zt, height), nil, SweepOptions{}, func(int, ZoneRow) {
		t.Error("no probes, but fn called")
	}); err != nil {
		t.Fatal(err)
	}
	if err := Sweep(context.Background(), Rows(nil, height), []Probe{{R: 1}}, SweepOptions{}, func(int, ZoneRow) {}); err == nil {
		t.Error("nil row table accepted")
	}
	// A table without a projection falls back to rows via TableSource.
	var n int
	if err := Sweep(context.Background(), TableSource(zt, height), []Probe{{Ra: gals[0].Ra, Dec: gals[0].Dec, R: 0.1}},
		SweepOptions{Workers: 2}, func(int, ZoneRow) { n++ }); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("TableSource fallback found nothing around a known galaxy")
	}
}

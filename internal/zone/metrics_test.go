package zone

import (
	"context"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/sqldb"
	"repro/internal/telemetry"
)

// withSweepMetrics attaches a fresh registry for one test and detaches it
// afterwards so the package's other tests (and benchmarks) keep running
// uninstrumented.
func withSweepMetrics(t *testing.T) *telemetry.Registry {
	t.Helper()
	reg := telemetry.NewRegistry()
	RegisterMetrics(reg)
	t.Cleanup(func() { sweepMet.Store(nil) })
	return reg
}

// TestSweepMetricsCounters checks the sweep-boundary accounting: one
// Sweep call bumps sweeps/probes/groups once, hits match what fn saw, and
// both the sequential and parallel drivers credit worker busy time.
func TestSweepMetricsCounters(t *testing.T) {
	reg := withSweepMetrics(t)

	db := sqldb.Open(0)
	zt, err := InstallZoneTable(db, "Zone", seamGalaxies(), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	var probes []Probe
	for _, p := range seamProbes() {
		probes = append(probes, Probe{Ra: p[0], Dec: p[1], R: p[2]})
	}

	hits := 0
	fn := func(int, ZoneRow) { hits++ }
	if err := Sweep(context.Background(), Rows(zt, 0.25), probes, SweepOptions{Workers: 1}, fn); err != nil {
		t.Fatal(err)
	}
	if hits == 0 {
		t.Fatal("fixture produced no hits")
	}
	if err := Sweep(context.Background(), Rows(zt, 0.25), probes, SweepOptions{Workers: 4}, fn); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"zone_sweeps_total 2",
		fmt.Sprintf("zone_probes_total %d", 2*len(probes)),
		fmt.Sprintf("zone_hits_total %d", hits),
		"zone_sweep_seconds_count 2",
		"zone_sweep_errors_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q:\n%s", want, out)
		}
	}
	groupRe := regexp.MustCompile(`zone_groups_total (\d+)`)
	m := groupRe.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("zone_groups_total missing:\n%s", out)
	}
	if n, _ := strconv.Atoi(m[1]); n < 2 {
		t.Errorf("zone_groups_total = %d, want at least one group per sweep", n)
	}
	busyRe := regexp.MustCompile(`zone_worker_busy_seconds_total ([0-9.e+-]+)`)
	bm := busyRe.FindStringSubmatch(out)
	if bm == nil {
		t.Fatalf("zone_worker_busy_seconds_total missing:\n%s", out)
	}
	if v, _ := strconv.ParseFloat(bm[1], 64); v <= 0 {
		t.Errorf("worker busy seconds = %v, want > 0", v)
	}
}

// TestSweepMetricsCountErrors checks a cancelled sweep lands in the error
// counter while still counting as a sweep.
func TestSweepMetricsCountErrors(t *testing.T) {
	reg := withSweepMetrics(t)

	db := sqldb.Open(0)
	zt, err := InstallZoneTable(db, "Zone", seamGalaxies(), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	probes := []Probe{{Ra: 0.05, Dec: 1.0, R: 0.3}, {Ra: 12, Dec: 1, R: 0.3}}
	if err := Sweep(ctx, Rows(zt, 0.25), probes, SweepOptions{Workers: 1}, func(int, ZoneRow) {}); err == nil {
		t.Fatal("cancelled sweep returned nil")
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"zone_sweeps_total 1", "zone_sweep_errors_total 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q:\n%s", want, out)
		}
	}
}

// TestExplainAnalyzeTimesRealSweep pins the trace surface end to end: a
// real zone-join query under EXPLAIN ANALYZE reports a non-zero wall time
// on the ZoneSweepJoin operator (and a timing annotation on every line).
func TestExplainAnalyzeTimesRealSweep(t *testing.T) {
	var probes []Probe
	for _, p := range seamProbes() {
		probes = append(probes, Probe{Ra: p[0], Dec: p[1], R: p[2]})
	}
	db, _ := sqlJoinFixture(t, seamGalaxies(), 0.25, probes, true)
	const query = `SELECT p.pid, n.objID, n.distance FROM Probes p CROSS JOIN fGetNearbyObjEqZd(p.ra, p.dec, p.r) n`
	analyzed, err := db.Explain("EXPLAIN ANALYZE " + query)
	if err != nil {
		t.Fatal(err)
	}
	msRe := regexp.MustCompile(`\((\d+\.\d{3}) ms\)`)
	for _, line := range strings.Split(analyzed, "\n") {
		tm := msRe.FindStringSubmatch(line)
		if tm == nil {
			// A ZoneSweepJoin reads the zone table's segments itself, so its
			// scan child never executes: only executed operators (the ones
			// with an "actual rows" bracket) carry wall time.
			if strings.Contains(line, "actual") {
				t.Errorf("executed operator line missing wall time: %q", line)
			}
			continue
		}
		if strings.Contains(line, "ZoneSweepJoin") {
			if v, _ := strconv.ParseFloat(tm[1], 64); v <= 0 {
				t.Errorf("ZoneSweepJoin wall time = %v ms, want > 0:\n%s", v, analyzed)
			}
		}
	}
	if !strings.Contains(analyzed, "ZoneSweepJoin") {
		t.Fatalf("plan did not lower to ZoneSweepJoin:\n%s", analyzed)
	}
}

package zone

import (
	"fmt"
	"sort"

	"repro/internal/astro"
	"repro/internal/colstore"
	"repro/internal/sqldb"
)

// Columnar zone sweep: the row sweep decodes 7 of 10 row-major columns per
// chord test just to run float arithmetic over ra/cx/cy/cz. The columnar
// zone store (internal/colstore) keeps the same rows as column-major
// segment pages — packed float64 arrays per column, one zone per segment
// run, per-segment min/max ra in an in-memory directory — so the chord
// test becomes a pure scan over raw float slices: no key decode, no null
// bitmap, no per-row Value materialisation. Window skipping happens at
// page granularity through the directory bounds, the columnar analogue of
// the row path's cursor re-seek.
//
// The arithmetic, the activation/expiry rules, and the emission order are
// the row sweep's exactly (shared through the zoneSweeper drivers in
// batch.go), so a Sweep over the Columnar source is bit-identical to the
// same Sweep over the Rows source — pinned by the equivalence tests in
// colsweep_test.go.

// Schema indices of the zone table's columns, shared by ZoneTableColumns
// (the row store) and ColumnarZoneSchema (the columnar projection).
const (
	colZoneID = iota
	colObjID
	colRa
	colDec
	colCx
	colCy
	colCz
	colI
	colGr
	colRi
)

// ColumnarZoneSchema returns the colstore schema of a zone table's
// column-major projection: the columns of ZoneTableColumns, same names,
// same order, with TInt mapped to Int64 and TFloat to Float64.
func ColumnarZoneSchema() colstore.Schema {
	cols := ZoneTableColumns()
	sch := make(colstore.Schema, len(cols))
	for i, c := range cols {
		k := colstore.Float64
		if c.Type == sqldb.TInt {
			k = colstore.Int64
		}
		sch[i] = colstore.Column{Name: c.Name, Kind: k}
	}
	return sch
}

// checkColumnarZone verifies ct was built as a zone projection (schema,
// grouping by zoneid, sorted by ra) before a sweep trusts its layout.
func checkColumnarZone(ct *colstore.Table) error {
	if ct == nil {
		return fmt.Errorf("zone: nil columnar zone table")
	}
	if !ct.Schema().Equal(ColumnarZoneSchema()) || ct.GroupCol() != colZoneID || ct.SortCol() != colRa {
		return fmt.Errorf("zone: columnar table is not a (zoneid, ra) zone projection")
	}
	return nil
}

// colSweeper is the zoneSweeper over the columnar zone store: one segment
// scanner (reused column scratch) per worker.
type colSweeper struct {
	t      *colstore.Table
	scan   *colstore.Scanner
	active []batchWindow
}

func (s *colSweeper) close() {}

func (s *colSweeper) sweepZone(ws []batchWindow, centers []astro.Vec3, r2s []float64, emit func(int, ZoneRow)) error {
	if s.scan == nil {
		s.scan = s.t.NewScanner()
	}
	segs := s.t.GroupSegments(int64(ws[0].zone))
	active := s.active[:0]
	defer func() { s.active = active[:0] }()
	k := 0
scan:
	for _, m := range segs {
		if len(active) == 0 {
			if k >= len(ws) {
				// Every window is expired; nothing left to match.
				break
			}
			if m.MaxSort < ws[k].lo {
				// Window skipping: the directory bound proves no remaining
				// window reaches into this page, so don't fetch it — the
				// columnar analogue of the row cursor's gap re-seek.
				continue
			}
		}
		if err := s.scan.Load(m); err != nil {
			return err
		}
		ra := s.scan.Floats(colRa)
		cx := s.scan.Floats(colCx)
		cy := s.scan.Floats(colCy)
		cz := s.scan.Floats(colCz)
		for r := 0; r < len(ra); r++ {
			rav := ra[r]
			for k < len(ws) && ws[k].lo <= rav {
				active = append(active, ws[k])
				k++
			}
			keep := active[:0]
			for _, w := range active {
				if w.hi >= rav {
					keep = append(keep, w)
				}
			}
			active = keep
			if len(active) == 0 {
				if k >= len(ws) {
					break scan
				}
				// Gap inside the segment: hop straight to the first row the
				// next window can cover instead of testing every row.
				r += sort.SearchFloat64s(ra[r+1:], ws[k].lo)
				continue
			}
			cxv, cyv, czv := cx[r], cy[r], cz[r]
			var out ZoneRow
			decoded := false
			for _, w := range active {
				c := &centers[w.probe]
				dx := cxv - c.X
				dy := cyv - c.Y
				dz := czv - c.Z
				c2 := dx*dx + dy*dy + dz*dz
				if c2 >= r2s[w.probe] {
					continue
				}
				if !decoded {
					out.ObjID = s.scan.Ints(colObjID)[r]
					out.Ra = rav
					out.Dec = s.scan.Floats(colDec)[r]
					out.I = s.scan.Floats(colI)[r]
					out.Gr = s.scan.Floats(colGr)[r]
					out.Ri = s.scan.Floats(colRi)[r]
					decoded = true
				}
				out.Distance = chordDeg(c2)
				emit(int(w.probe), out)
			}
		}
	}
	return nil
}

package zone

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/astro"
	"repro/internal/sky"
	"repro/internal/sqldb"
)

func testGalaxies(t testing.TB, seed int64, n int) []sky.Galaxy {
	t.Helper()
	cat, err := sky.Generate(sky.GenConfig{
		Region:        astro.MustBox(180, 181, -0.5, 0.5),
		Seed:          seed,
		GalaxyDensity: float64(n),
	})
	if err != nil {
		t.Fatal(err)
	}
	return cat.Galaxies
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, 0); err == nil {
		t.Error("zero height accepted")
	}
	idx, err := Build(nil, astro.ZoneHeightDeg)
	if err != nil || idx.Len() != 0 {
		t.Errorf("empty build: %v, len %d", err, idx.Len())
	}
	idx.Visit(180, 0, 0.5, func(Neighbor) { t.Error("visit on empty index yielded a result") })
}

func TestNeighborsMatchBruteForce(t *testing.T) {
	gals := testGalaxies(t, 1, 4000)
	idx, err := Build(gals, astro.ZoneHeightDeg)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != len(gals) {
		t.Fatalf("index holds %d of %d", idx.Len(), len(gals))
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		ra := 180 + rng.Float64()
		dec := rng.Float64() - 0.5
		r := rng.Float64() * 0.4
		got := idx.Neighbors(ra, dec, r)
		want := BruteForce(gals, ra, dec, r)
		if len(got) != len(want) {
			t.Fatalf("trial %d (r=%g): zone found %d, brute force %d", trial, r, len(got), len(want))
		}
		for i := range got {
			if got[i].Entry.ObjID != want[i].Entry.ObjID {
				t.Fatalf("trial %d: result %d differs: %d vs %d", trial, i, got[i].Entry.ObjID, want[i].Entry.ObjID)
			}
			if math.Abs(got[i].Distance-want[i].Distance) > 1e-12 {
				t.Fatalf("trial %d: distance differs", trial)
			}
		}
	}
}

func TestNeighborsAtHighDeclination(t *testing.T) {
	// The 1/cos(dec) ra stretching matters near the poles; verify against
	// brute force on a synthetic high-dec field.
	var gals []sky.Galaxy
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 3000; i++ {
		gals = append(gals, sky.Galaxy{
			ObjID: int64(i + 1),
			Ra:    100 + rng.Float64()*20,
			Dec:   84 + rng.Float64()*2,
		})
	}
	idx, err := Build(gals, astro.ZoneHeightDeg)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		ra := 105 + rng.Float64()*10
		dec := 84.3 + rng.Float64()*1.4
		r := rng.Float64() * 0.5
		got := idx.Neighbors(ra, dec, r)
		want := BruteForce(gals, ra, dec, r)
		if len(got) != len(want) {
			t.Fatalf("high-dec trial %d (dec=%g r=%g): %d vs %d", trial, dec, r, len(got), len(want))
		}
	}
}

func TestNeighborsEmptyRadius(t *testing.T) {
	gals := testGalaxies(t, 5, 1000)
	idx, _ := Build(gals, astro.ZoneHeightDeg)
	if n := idx.Neighbors(180.5, 0, 0); len(n) != 0 {
		t.Errorf("r=0 returned %d neighbours", len(n))
	}
	if n := idx.Neighbors(180.5, 0, -1); len(n) != 0 {
		t.Errorf("negative radius returned %d neighbours", len(n))
	}
}

func TestSelfIsFound(t *testing.T) {
	gals := testGalaxies(t, 7, 500)
	idx, _ := Build(gals, astro.ZoneHeightDeg)
	// Searching exactly at an object's position finds it at distance 0.
	g := gals[42]
	found := false
	idx.Visit(g.Ra, g.Dec, 0.01, func(n Neighbor) {
		if n.Entry.ObjID == g.ObjID && n.Distance < 1e-12 {
			found = true
		}
	})
	if !found {
		t.Error("object not found at its own position")
	}
}

func TestZoneHeightInvariance(t *testing.T) {
	// The result set must not depend on the zone height (it only affects
	// cost). This is the core correctness property of zone indexing.
	gals := testGalaxies(t, 11, 3000)
	heights := []float64{astro.ZoneHeightDeg, 4 * astro.ZoneHeightDeg, 0.5, 1.0}
	var indexes []*Index
	for _, h := range heights {
		idx, err := Build(gals, h)
		if err != nil {
			t.Fatal(err)
		}
		indexes = append(indexes, idx)
	}
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 80; trial++ {
		ra := 180 + rng.Float64()
		dec := rng.Float64() - 0.5
		r := rng.Float64() * 0.5
		base := indexes[0].Neighbors(ra, dec, r)
		for hi := 1; hi < len(indexes); hi++ {
			got := indexes[hi].Neighbors(ra, dec, r)
			if len(got) != len(base) {
				t.Fatalf("height %g vs %g: %d vs %d results", heights[hi], heights[0], len(got), len(base))
			}
			for i := range got {
				if got[i].Entry.ObjID != base[i].Entry.ObjID {
					t.Fatalf("height %g: result %d differs", heights[hi], i)
				}
			}
		}
	}
}

func TestInstallZoneTableAndSearch(t *testing.T) {
	gals := testGalaxies(t, 17, 12000)
	db := sqldb.Open(512)
	tbl, err := InstallZoneTable(db, "zone", gals, astro.ZoneHeightDeg)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != int64(len(gals)) {
		t.Fatalf("zone table has %d rows, want %d", tbl.NumRows(), len(gals))
	}
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 50; trial++ {
		ra := 180 + rng.Float64()
		dec := rng.Float64() - 0.5
		r := rng.Float64() * 0.3
		want := BruteForce(gals, ra, dec, r)
		var got []int64
		err := SearchTable(tbl, astro.ZoneHeightDeg, ra, dec, r, func(zr ZoneRow) {
			got = append(got, zr.ObjID)
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: table search found %d, brute force %d", trial, len(got), len(want))
		}
	}
	// The search must be cheaper than a full scan: stats-visible.
	db.Pool().ResetStats()
	if err := SearchTable(tbl, astro.ZoneHeightDeg, 180.5, 0, 0.04, func(ZoneRow) {}); err != nil {
		t.Fatal(err)
	}
	partial := db.Stats().LogicalReads
	db.Pool().ResetStats()
	cur, err := tbl.Scan()
	if err != nil {
		t.Fatal(err)
	}
	for cur.Next() {
	}
	cur.Close()
	full := db.Stats().LogicalReads
	if partial*2 >= full {
		t.Errorf("zone search read %d pages, full scan %d: index not pruning", partial, full)
	}
}

func TestNearbyTVFThroughSQL(t *testing.T) {
	gals := testGalaxies(t, 23, 1500)
	db := sqldb.Open(512)
	tbl, err := InstallZoneTable(db, "zone", gals, astro.ZoneHeightDeg)
	if err != nil {
		t.Fatal(err)
	}
	RegisterNearbyTVF(db, tbl, astro.ZoneHeightDeg)

	// The paper's sample invocation shape.
	rows, err := db.Query("SELECT objID, distance FROM fGetNearbyObjEqZd(180.5, 0.0, 0.25) n ORDER BY distance")
	if err != nil {
		t.Fatal(err)
	}
	want := BruteForce(gals, 180.5, 0.0, 0.25)
	if rows.Len() != len(want) {
		t.Fatalf("TVF returned %d rows, brute force %d", rows.Len(), len(want))
	}
	prev := -1.0
	for rows.Next() {
		d, _ := rows.Row()[1].AsFloat()
		if d < prev {
			t.Fatal("TVF results not ordered by distance")
		}
		prev = d
	}

	// Join against a galaxy table, as fBCGCandidate does.
	if _, err := db.Exec("CREATE TABLE g (objid bigint PRIMARY KEY, i real)"); err != nil {
		t.Fatal(err)
	}
	gt, _ := db.Table("g")
	for _, g := range gals {
		if err := gt.Insert([]sqldb.Value{sqldb.Int(g.ObjID), sqldb.Float(g.I)}); err != nil {
			t.Fatal(err)
		}
	}
	rows, err = db.Query(`SELECT COUNT(*) FROM fGetNearbyObjEqZd(180.5, 0.0, 0.25) n
		JOIN g ON g.objid = n.objID WHERE g.i < 25`)
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	if rows.Row()[0].I != int64(len(want)) {
		t.Errorf("TVF join count = %v, want %d", rows.Row()[0], len(want))
	}
}

func BenchmarkZoneVisit(b *testing.B) {
	gals := testGalaxies(b, 29, 14000)
	idx, err := Build(gals, astro.ZoneHeightDeg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		ra := 180 + float64(i%100)/100
		idx.Visit(ra, 0, 0.25, func(Neighbor) { n++ })
	}
	_ = n
}

func BenchmarkBruteForce(b *testing.B) {
	gals := testGalaxies(b, 29, 14000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ra := 180 + float64(i%100)/100
		BruteForce(gals, ra, 0, 0.25)
	}
}

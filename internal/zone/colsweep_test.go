package zone

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/astro"
	"repro/internal/sky"
	"repro/internal/sqldb"
)

// TestColumnarSweepMatchesRowSweep pins the tentpole equivalence: the
// columnar sweep must deliver BatchSearch's exact global callback sequence
// — same hits, same values, same order — over the RA-seam fixture (split
// windows) and a realistic survey patch.
func TestColumnarSweepMatchesRowSweep(t *testing.T) {
	cases := []struct {
		name   string
		gals   []sky.Galaxy
		height float64
		probes []Probe
	}{
		{
			name: "seam", gals: seamGalaxies(), height: 0.25,
			probes: func() []Probe {
				var ps []Probe
				for _, p := range seamProbes() {
					ps = append(ps, Probe{Ra: p[0], Dec: p[1], R: p[2]})
				}
				ps = append(ps, Probe{Ra: 12, Dec: 1, R: -1}) // matches nothing
				return ps
			}(),
		},
		{
			name: "survey", height: astro.ZoneHeightDeg,
			gals: func() []sky.Galaxy {
				cat, err := sky.Generate(sky.GenConfig{
					Region: astro.MustBox(195.0, 195.5, 2.4, 2.9),
					Seed:   11,
				})
				if err != nil {
					t.Fatal(err)
				}
				return cat.Galaxies
			}(),
			probes: func() []Probe {
				rng := rand.New(rand.NewSource(13))
				ps := make([]Probe, 90)
				for i := range ps {
					ps[i] = Probe{
						Ra:  195.0 + rng.Float64()*0.5,
						Dec: 2.4 + rng.Float64()*0.5,
						R:   0.02 + rng.Float64()*0.15,
					}
				}
				return ps
			}(),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db := sqldb.Open(0)
			zt, err := InstallZoneTableColumnar(db, "Zone", tc.gals, tc.height)
			if err != nil {
				t.Fatal(err)
			}
			ct := zt.Columnar()
			if ct == nil {
				t.Fatal("InstallZoneTableColumnar attached no projection")
			}
			if ct.NumRows() != zt.NumRows() {
				t.Fatalf("projection holds %d rows, row table %d", ct.NumRows(), zt.NumRows())
			}
			var want []seqCall
			if err := Sweep(context.Background(), Rows(zt, tc.height), tc.probes, SweepOptions{Workers: 1}, func(pi int, zr ZoneRow) {
				want = append(want, seqCall{probe: pi, row: zr})
			}); err != nil {
				t.Fatal(err)
			}
			if len(want) == 0 {
				t.Fatal("fixture matches nothing")
			}
			var got []seqCall
			if err := Sweep(context.Background(), Columnar(ct, tc.height), tc.probes, SweepOptions{Workers: 1}, func(pi int, zr ZoneRow) {
				got = append(got, seqCall{probe: pi, row: zr})
			}); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("columnar sweep emitted %d calls, row sweep %d (or order/values differ)",
					len(got), len(want))
			}
		})
	}
}

// TestParallelColumnarSweepMatchesSequential repeats the parallel
// determinism guarantee on the columnar path: every worker count, same
// global callback sequence, over the seam-straddling fixture. Run with
// -race (the CI race job does) to pin the absence of data races between
// workers sharing the segment directory and buffer pool.
func TestParallelColumnarSweepMatchesSequential(t *testing.T) {
	gals, height, probes := parallelFixture(t)
	db := sqldb.Open(0)
	zt, err := InstallZoneTableColumnar(db, "Zone", gals, height)
	if err != nil {
		t.Fatal(err)
	}
	ct := zt.Columnar()

	var want []seqCall
	if err := Sweep(context.Background(), Columnar(ct, height), probes, SweepOptions{Workers: 1}, func(pi int, zr ZoneRow) {
		want = append(want, seqCall{probe: pi, row: zr})
	}); err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("fixture matches nothing")
	}
	// Cross-check against the row sweep once more: the parallel columnar
	// path must agree with the sequential *row* path transitively.
	var rowWant []seqCall
	if err := Sweep(context.Background(), Rows(zt, height), probes, SweepOptions{Workers: 1}, func(pi int, zr ZoneRow) {
		rowWant = append(rowWant, seqCall{probe: pi, row: zr})
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, rowWant) {
		t.Fatal("columnar and row sequential sweeps disagree")
	}

	for _, workers := range []int{0, 2, 3, 4, 8} {
		t.Run(fmt.Sprintf("workers-%d", workers), func(t *testing.T) {
			for rep := 0; rep < 3; rep++ {
				var got []seqCall
				err := Sweep(context.Background(), Columnar(ct, height), probes, SweepOptions{Workers: workers}, func(pi int, zr ZoneRow) {
					got = append(got, seqCall{probe: pi, row: zr})
				})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("rep %d: parallel columnar sweep emitted %d calls, sequential %d (or order/values differ)",
						rep, len(got), len(want))
				}
			}
		})
	}
}

// TestSweepStatsAccumulateWorkerCPU pins the worker CPU attribution
// plumbing: a multi-worker sweep must record its workers' thread clocks in
// the caller-supplied SweepStats (the quantity DBFinder adds to the cpu(s)
// column). Thread clocks are coarse, so accumulate runs until the counter
// moves.
func TestSweepStatsAccumulateWorkerCPU(t *testing.T) {
	gals, height, probes := parallelFixture(t)
	db := sqldb.Open(0)
	zt, err := InstallZoneTableColumnar(db, "Zone", gals, height)
	if err != nil {
		t.Fatal(err)
	}
	var rowStats, colStats SweepStats
	for i := 0; i < 200 && (rowStats.WorkerCPU() == 0 || colStats.WorkerCPU() == 0); i++ {
		if err := Sweep(context.Background(), Rows(zt, height), probes, SweepOptions{Workers: 4, Stats: &rowStats}, func(int, ZoneRow) {}); err != nil {
			t.Fatal(err)
		}
		if err := Sweep(context.Background(), Columnar(zt.Columnar(), height), probes, SweepOptions{Workers: 4, Stats: &colStats}, func(int, ZoneRow) {}); err != nil {
			t.Fatal(err)
		}
	}
	if rowStats.WorkerCPU() <= 0 {
		t.Error("row sweep workers recorded no CPU time")
	}
	if colStats.WorkerCPU() <= 0 {
		t.Error("columnar sweep workers recorded no CPU time")
	}
}

// TestColumnarSweepRejectsForeignTable pins the schema check: a colstore
// table that is not a zone projection is refused, not misread.
func TestColumnarSweepRejectsForeignTable(t *testing.T) {
	if err := Sweep(context.Background(), Columnar(nil, 0.25), []Probe{{Ra: 1, Dec: 1, R: 0.1}}, SweepOptions{Workers: 1}, func(int, ZoneRow) {}); err == nil {
		t.Error("nil columnar table accepted")
	}
}

package zone

import (
	"context"
	"fmt"

	"repro/internal/astro"
	"repro/internal/colstore"
	"repro/internal/sky"
	"repro/internal/sqldb"
	"repro/internal/storage"
)

// DB-backed zone machinery: the same structures as the in-memory Index, but
// stored as a sqldb table with a clustered (zoneid, ra) key so every access
// is buffer-pool I/O the benchmark harness can count — the paper's Table 1
// reports exactly this per-task I/O.

// ZoneTableColumns is the schema of a Zone table: the paper's Zone view
// (zone number, object id, position, unit vector) plus the photometry
// columns MaxBCG filters on. Carrying the filter columns in the zone table
// is the denormalisation Gray et al.'s zone report recommends; it removes a
// per-neighbour primary-key join against Galaxy from the hot loop.
func ZoneTableColumns() []sqldb.Column {
	return []sqldb.Column{
		{Name: "zoneid", Type: sqldb.TInt},
		{Name: "objid", Type: sqldb.TInt},
		{Name: "ra", Type: sqldb.TFloat},
		{Name: "dec", Type: sqldb.TFloat},
		{Name: "cx", Type: sqldb.TFloat},
		{Name: "cy", Type: sqldb.TFloat},
		{Name: "cz", Type: sqldb.TFloat},
		{Name: "i", Type: sqldb.TFloat},
		{Name: "gr", Type: sqldb.TFloat},
		{Name: "ri", Type: sqldb.TFloat},
	}
}

// InstallZoneTable creates (or replaces) tableName in db, loads the
// galaxies, assigns zone ids, and clusters the storage on (zoneid, ra) —
// the work of the paper's spZone task. The rows bulk-load bottom-up into
// packed B+tree pages, the way a bulk CREATE CLUSTERED INDEX consumes its
// sort run; they are pre-sorted by (zone, ra) so equal-key ties keep the
// rowid order the trickle path would produce.
func InstallZoneTable(db *sqldb.DB, tableName string, gals []sky.Galaxy, heightDeg float64) (*sqldb.Table, error) {
	return installZoneTable(db, tableName, gals, heightDeg, true, false)
}

// InstallZoneTableColumnar is InstallZoneTable plus the column-major
// projection: the same (zone, ra)-sorted run that bulk-loads the row
// B+tree also materialises colstore segment pages (one pass, no extra
// read I/O), attached to the returned table as its columnar projection
// (sqldb.Table.Columnar). The row store keeps serving point probes and the
// fGetNearbyObjEqZd TVF; the batched sweeps can then iterate raw float
// slices instead of decoding rows.
func InstallZoneTableColumnar(db *sqldb.DB, tableName string, gals []sky.Galaxy, heightDeg float64) (*sqldb.Table, error) {
	return installZoneTable(db, tableName, gals, heightDeg, true, true)
}

// InstallZoneTableTrickle is InstallZoneTable through per-row Insert calls:
// the ablation baseline the bulk loader is measured against, and the anchor
// of the bulk/trickle equivalence tests.
func InstallZoneTableTrickle(db *sqldb.DB, tableName string, gals []sky.Galaxy, heightDeg float64) (*sqldb.Table, error) {
	return installZoneTable(db, tableName, gals, heightDeg, false, false)
}

func installZoneTable(db *sqldb.DB, tableName string, gals []sky.Galaxy, heightDeg float64, bulk, columnar bool) (*sqldb.Table, error) {
	if heightDeg <= 0 {
		return nil, fmt.Errorf("zone: non-positive zone height %g", heightDeg)
	}
	_ = db.DropTable(tableName, true)
	t, err := db.CreateTableClustered(tableName, ZoneTableColumns(), []string{"zoneid", "ra"})
	if err != nil {
		return nil, err
	}
	sorted := append([]sky.Galaxy(nil), gals...)
	sky.SortByZoneRa(sorted, heightDeg)
	// Derive each row's zone id and unit vector once; both representations
	// consume the same values, so their stored floats are bit-identical.
	zids := make([]int64, len(sorted))
	vecs := make([]astro.Vec3, len(sorted))
	for i := range sorted {
		g := &sorted[i]
		zids[i] = int64(astro.ZoneID(g.Dec, heightDeg))
		vecs[i] = astro.UnitVector(g.Ra, g.Dec)
	}
	// One scratch row streams the whole load: BulkInsertFunc (and Insert)
	// encode the row before the next rowAt call, so nothing retains it.
	scratch := make([]sqldb.Value, len(ZoneTableColumns()))
	rowAt := func(i int) []sqldb.Value {
		g := &sorted[i]
		scratch[colZoneID] = sqldb.Int(zids[i])
		scratch[colObjID] = sqldb.Int(g.ObjID)
		scratch[colRa] = sqldb.Float(g.Ra)
		scratch[colDec] = sqldb.Float(g.Dec)
		scratch[colCx] = sqldb.Float(vecs[i].X)
		scratch[colCy] = sqldb.Float(vecs[i].Y)
		scratch[colCz] = sqldb.Float(vecs[i].Z)
		scratch[colI] = sqldb.Float(g.I)
		scratch[colGr] = sqldb.Float(g.Gr)
		scratch[colRi] = sqldb.Float(g.Ri)
		return scratch
	}
	if bulk {
		if err := t.BulkInsertFunc(len(sorted), rowAt); err != nil {
			return nil, err
		}
	} else {
		for i := range sorted {
			if err := t.Insert(rowAt(i)); err != nil {
				return nil, err
			}
		}
	}
	if columnar {
		ct, err := buildColumnarZone(db.Pool(), sorted, zids, vecs)
		if err != nil {
			return nil, err
		}
		t.SetColumnar(ct)
	}
	return t, nil
}

// buildColumnarZone materialises the column-major zone segments straight
// from the sorted run the row load consumed, reusing its precomputed zone
// ids and unit vectors, written as packed column arrays through the same
// buffer pool.
func buildColumnarZone(pool *storage.Pool, sorted []sky.Galaxy, zids []int64, vecs []astro.Vec3) (*colstore.Table, error) {
	b, err := colstore.NewBuilder(pool, ColumnarZoneSchema(), colZoneID, colRa)
	if err != nil {
		return nil, err
	}
	var (
		ints   [2]int64
		floats [8]float64
	)
	for i := range sorted {
		g := &sorted[i]
		ints[0], ints[1] = zids[i], g.ObjID
		floats[0], floats[1] = g.Ra, g.Dec
		floats[2], floats[3], floats[4] = vecs[i].X, vecs[i].Y, vecs[i].Z
		floats[5], floats[6], floats[7] = g.I, g.Gr, g.Ri
		if err := b.Add(ints[:], floats[:]); err != nil {
			return nil, err
		}
	}
	return b.Finish()
}

// ZoneRow is one neighbour returned by SearchTable: identity, position,
// chord-approximated distance in degrees, and the denormalised photometry.
type ZoneRow struct {
	ObjID     int64
	Ra, Dec   float64
	Distance  float64
	I, Gr, Ri float64
}

// SearchTable runs the neighbour search against a DB zone table via
// clustered-index range scans: for each overlapping zone, scan
// (zoneid = z, ra in [ra-x, ra+x]) and test the squared chord length. fn
// receives each neighbour; the scan itself is the I/O-accounted hot loop of
// fBCGCandidate.
func SearchTable(t *sqldb.Table, heightDeg, raDeg, decDeg, rDeg float64, fn func(ZoneRow)) error {
	if rDeg < 0 {
		return nil
	}
	center := astro.UnitVector(raDeg, decDeg)
	r2 := astro.Chord2FromAngle(rDeg)
	minZ, maxZ := astro.ZoneRange(decDeg, rDeg, heightDeg)
	for z := minZ; z <= maxZ; z++ {
		x := astro.RaHalfWidth(decDeg, rDeg, z, heightDeg)
		segs, ns := astro.RaWindows(raDeg, x)
		for s := 0; s < ns; s++ {
			cur, err := t.RangeScanPrefix(
				[]sqldb.Value{sqldb.Int(int64(z)), sqldb.Float(segs[s][0])},
				[]sqldb.Value{sqldb.Int(int64(z)), sqldb.Float(segs[s][1])},
			)
			if err != nil {
				return err
			}
			for cur.Next() {
				row := cur.Row()
				cx, _ := row[4].AsFloat()
				cy, _ := row[5].AsFloat()
				cz, _ := row[6].AsFloat()
				dx := cx - center.X
				dy := cy - center.Y
				dz := cz - center.Z
				c2 := dx*dx + dy*dy + dz*dz
				if c2 < r2 {
					var out ZoneRow
					out.ObjID, _ = row[1].AsInt()
					out.Ra, _ = row[2].AsFloat()
					out.Dec, _ = row[3].AsFloat()
					out.Distance = chordDeg(c2)
					out.I, _ = row[7].AsFloat()
					out.Gr, _ = row[8].AsFloat()
					out.Ri, _ = row[9].AsFloat()
					fn(out)
				}
			}
			err = cur.Err()
			cur.Close()
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// RegisterNearbyTVF installs fGetNearbyObjEqZd(ra, dec, r) over the given
// zone table, so the paper's SQL (SELECT * FROM fGetNearbyObjEqZd(2.5, 3.0,
// 0.5)) runs verbatim on the engine. The returned schema is the paper's
// (objID bigint, distance float).
//
// The registration also wires the TVF's batch path: a SQL join of a probe
// table against the function — the paper's spGetNearbyObjEqZd cursor shape
// — lowers in the sqldb planner to a ZoneSweepJoin that answers every
// probe with one Sweep (over the columnar projection when the zone table
// carries one, the row store otherwise) instead of one SearchTable
// descent per row. Sequential sweep; see RegisterNearbyTVFWorkers for the
// worker-pool variant.
func RegisterNearbyTVF(db *sqldb.DB, zoneTable *sqldb.Table, heightDeg float64) {
	RegisterNearbyTVFWorkers(db, zoneTable, heightDeg, 1)
}

// RegisterNearbyTVFWorkers is RegisterNearbyTVF with the batch path
// sweeping on a worker pool of the given size (0 = one per CPU, 1 =
// sequential). Output is bit-identical at every setting.
func RegisterNearbyTVFWorkers(db *sqldb.DB, zoneTable *sqldb.Table, heightDeg float64, workers int) {
	parseArgs := func(args []sqldb.Value) (ra, dec, r float64, err error) {
		if len(args) != 3 {
			return 0, 0, 0, fmt.Errorf("zone: fGetNearbyObjEqZd expects (ra, dec, r)")
		}
		if ra, err = args[0].AsFloat(); err != nil {
			return
		}
		if dec, err = args[1].AsFloat(); err != nil {
			return
		}
		r, err = args[2].AsFloat()
		return
	}
	db.RegisterTVF("fGetNearbyObjEqZd", &sqldb.TVF{
		Cols: []sqldb.Column{
			{Name: "objID", Type: sqldb.TInt},
			{Name: "distance", Type: sqldb.TFloat},
		},
		Fn: func(args []sqldb.Value) ([][]sqldb.Value, error) {
			ra, dec, r, err := parseArgs(args)
			if err != nil {
				return nil, err
			}
			var rows [][]sqldb.Value
			err = SearchTable(zoneTable, heightDeg, ra, dec, r, func(zr ZoneRow) {
				rows = append(rows, []sqldb.Value{sqldb.Int(zr.ObjID), sqldb.Float(zr.Distance)})
			})
			return rows, err
		},
		Batch: func(ctx context.Context, probes [][]sqldb.Value, emit func(int, []sqldb.Value)) error {
			ps := make([]Probe, len(probes))
			for i, args := range probes {
				ra, dec, r, err := parseArgs(args)
				if err != nil {
					return err
				}
				ps[i] = Probe{Ra: ra, Dec: dec, R: r}
			}
			// One scratch row per emission; the sqldb contract says the
			// consumer copies before the call returns. Per probe, the sweep
			// emits in SearchTable's (zone asc, ra asc) order, so the
			// batched plan is bit-identical to the per-row plan.
			scratch := make([]sqldb.Value, 2)
			fn := func(pi int, zr ZoneRow) {
				scratch[0] = sqldb.Int(zr.ObjID)
				scratch[1] = sqldb.Float(zr.Distance)
				emit(pi, scratch)
			}
			return Sweep(ctx, TableSource(zoneTable, heightDeg), ps, SweepOptions{Workers: workers}, fn)
		},
		Source: zoneTable,
	})
}

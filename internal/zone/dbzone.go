package zone

import (
	"fmt"

	"repro/internal/astro"
	"repro/internal/sky"
	"repro/internal/sqldb"
)

// DB-backed zone machinery: the same structures as the in-memory Index, but
// stored as a sqldb table with a clustered (zoneid, ra) key so every access
// is buffer-pool I/O the benchmark harness can count — the paper's Table 1
// reports exactly this per-task I/O.

// ZoneTableColumns is the schema of a Zone table: the paper's Zone view
// (zone number, object id, position, unit vector) plus the photometry
// columns MaxBCG filters on. Carrying the filter columns in the zone table
// is the denormalisation Gray et al.'s zone report recommends; it removes a
// per-neighbour primary-key join against Galaxy from the hot loop.
func ZoneTableColumns() []sqldb.Column {
	return []sqldb.Column{
		{Name: "zoneid", Type: sqldb.TInt},
		{Name: "objid", Type: sqldb.TInt},
		{Name: "ra", Type: sqldb.TFloat},
		{Name: "dec", Type: sqldb.TFloat},
		{Name: "cx", Type: sqldb.TFloat},
		{Name: "cy", Type: sqldb.TFloat},
		{Name: "cz", Type: sqldb.TFloat},
		{Name: "i", Type: sqldb.TFloat},
		{Name: "gr", Type: sqldb.TFloat},
		{Name: "ri", Type: sqldb.TFloat},
	}
}

// InstallZoneTable creates (or replaces) tableName in db, loads the
// galaxies, assigns zone ids, and clusters the storage on (zoneid, ra) —
// the work of the paper's spZone task. The rows bulk-load bottom-up into
// packed B+tree pages, the way a bulk CREATE CLUSTERED INDEX consumes its
// sort run; they are pre-sorted by (zone, ra) so equal-key ties keep the
// rowid order the trickle path would produce.
func InstallZoneTable(db *sqldb.DB, tableName string, gals []sky.Galaxy, heightDeg float64) (*sqldb.Table, error) {
	return installZoneTable(db, tableName, gals, heightDeg, true)
}

// InstallZoneTableTrickle is InstallZoneTable through per-row Insert calls:
// the ablation baseline the bulk loader is measured against, and the anchor
// of the bulk/trickle equivalence tests.
func InstallZoneTableTrickle(db *sqldb.DB, tableName string, gals []sky.Galaxy, heightDeg float64) (*sqldb.Table, error) {
	return installZoneTable(db, tableName, gals, heightDeg, false)
}

func installZoneTable(db *sqldb.DB, tableName string, gals []sky.Galaxy, heightDeg float64, bulk bool) (*sqldb.Table, error) {
	if heightDeg <= 0 {
		return nil, fmt.Errorf("zone: non-positive zone height %g", heightDeg)
	}
	_ = db.DropTable(tableName, true)
	t, err := db.CreateTableClustered(tableName, ZoneTableColumns(), []string{"zoneid", "ra"})
	if err != nil {
		return nil, err
	}
	sorted := append([]sky.Galaxy(nil), gals...)
	sky.SortByZoneRa(sorted, heightDeg)
	rows := make([][]sqldb.Value, len(sorted))
	for i := range sorted {
		g := &sorted[i]
		v := astro.UnitVector(g.Ra, g.Dec)
		rows[i] = []sqldb.Value{
			sqldb.Int(int64(astro.ZoneID(g.Dec, heightDeg))),
			sqldb.Int(g.ObjID),
			sqldb.Float(g.Ra),
			sqldb.Float(g.Dec),
			sqldb.Float(v.X),
			sqldb.Float(v.Y),
			sqldb.Float(v.Z),
			sqldb.Float(g.I),
			sqldb.Float(g.Gr),
			sqldb.Float(g.Ri),
		}
	}
	if bulk {
		if err := t.BulkInsert(rows); err != nil {
			return nil, err
		}
		return t, nil
	}
	for _, row := range rows {
		if err := t.Insert(row); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// ZoneRow is one neighbour returned by SearchTable: identity, position,
// chord-approximated distance in degrees, and the denormalised photometry.
type ZoneRow struct {
	ObjID     int64
	Ra, Dec   float64
	Distance  float64
	I, Gr, Ri float64
}

// SearchTable runs the neighbour search against a DB zone table via
// clustered-index range scans: for each overlapping zone, scan
// (zoneid = z, ra in [ra-x, ra+x]) and test the squared chord length. fn
// receives each neighbour; the scan itself is the I/O-accounted hot loop of
// fBCGCandidate.
func SearchTable(t *sqldb.Table, heightDeg, raDeg, decDeg, rDeg float64, fn func(ZoneRow)) error {
	if rDeg < 0 {
		return nil
	}
	center := astro.UnitVector(raDeg, decDeg)
	r2 := astro.Chord2FromAngle(rDeg)
	minZ, maxZ := astro.ZoneRange(decDeg, rDeg, heightDeg)
	for z := minZ; z <= maxZ; z++ {
		x := astro.RaHalfWidth(decDeg, rDeg, z, heightDeg)
		segs, ns := astro.RaWindows(raDeg, x)
		for s := 0; s < ns; s++ {
			cur, err := t.RangeScanPrefix(
				[]sqldb.Value{sqldb.Int(int64(z)), sqldb.Float(segs[s][0])},
				[]sqldb.Value{sqldb.Int(int64(z)), sqldb.Float(segs[s][1])},
			)
			if err != nil {
				return err
			}
			for cur.Next() {
				row := cur.Row()
				cx, _ := row[4].AsFloat()
				cy, _ := row[5].AsFloat()
				cz, _ := row[6].AsFloat()
				dx := cx - center.X
				dy := cy - center.Y
				dz := cz - center.Z
				c2 := dx*dx + dy*dy + dz*dz
				if c2 < r2 {
					var out ZoneRow
					out.ObjID, _ = row[1].AsInt()
					out.Ra, _ = row[2].AsFloat()
					out.Dec, _ = row[3].AsFloat()
					out.Distance = chordDeg(c2)
					out.I, _ = row[7].AsFloat()
					out.Gr, _ = row[8].AsFloat()
					out.Ri, _ = row[9].AsFloat()
					fn(out)
				}
			}
			err = cur.Err()
			cur.Close()
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// RegisterNearbyTVF installs fGetNearbyObjEqZd(ra, dec, r) over the given
// zone table, so the paper's SQL (SELECT * FROM fGetNearbyObjEqZd(2.5, 3.0,
// 0.5)) runs verbatim on the engine. The returned schema is the paper's
// (objID bigint, distance float).
func RegisterNearbyTVF(db *sqldb.DB, zoneTable *sqldb.Table, heightDeg float64) {
	db.RegisterTVF("fGetNearbyObjEqZd", &sqldb.TVF{
		Cols: []sqldb.Column{
			{Name: "objID", Type: sqldb.TInt},
			{Name: "distance", Type: sqldb.TFloat},
		},
		Fn: func(args []sqldb.Value) ([][]sqldb.Value, error) {
			if len(args) != 3 {
				return nil, fmt.Errorf("zone: fGetNearbyObjEqZd expects (ra, dec, r)")
			}
			ra, err := args[0].AsFloat()
			if err != nil {
				return nil, err
			}
			dec, err := args[1].AsFloat()
			if err != nil {
				return nil, err
			}
			r, err := args[2].AsFloat()
			if err != nil {
				return nil, err
			}
			var rows [][]sqldb.Value
			err = SearchTable(zoneTable, heightDeg, ra, dec, r, func(zr ZoneRow) {
				rows = append(rows, []sqldb.Value{sqldb.Int(zr.ObjID), sqldb.Float(zr.Distance)})
			})
			return rows, err
		},
	})
}

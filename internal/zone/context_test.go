package zone

import (
	"context"
	"errors"
	"testing"

	"repro/internal/sqldb"
)

// TestBatchSearchContextPreCancelled pins that an already-cancelled
// context stops a sequential sweep before it visits any zone.
func TestBatchSearchContextPreCancelled(t *testing.T) {
	gals, height, probes := parallelFixture(t)
	db := sqldb.Open(0)
	zt, err := InstallZoneTable(db, "Zone", gals, height)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	hits := 0
	err = Sweep(ctx, Rows(zt, height), probes, SweepOptions{Workers: 1}, func(int, ZoneRow) { hits++ })
	if err == nil {
		t.Fatal("cancelled sweep completed")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if hits != 0 {
		t.Fatalf("cancelled sweep still emitted %d rows", hits)
	}
}

// TestBatchSearchContextCancelMidSweep cancels from inside the emit
// callback: the sweep must stop at the next per-zone checkpoint instead of
// visiting the rest of the windows.
func TestBatchSearchContextCancelMidSweep(t *testing.T) {
	gals, height, probes := parallelFixture(t)
	db := sqldb.Open(0)
	zt, err := InstallZoneTable(db, "Zone", gals, height)
	if err != nil {
		t.Fatal(err)
	}

	var total int
	if err := Sweep(context.Background(), Rows(zt, height), probes, SweepOptions{Workers: 1}, func(int, ZoneRow) { total++ }); err != nil {
		t.Fatal(err)
	}
	if total < 2 {
		t.Fatalf("fixture too small: %d hits", total)
	}

	ctx, cancel := context.WithCancel(context.Background())
	hits := 0
	err = Sweep(ctx, Rows(zt, height), probes, SweepOptions{Workers: 1}, func(int, ZoneRow) {
		hits++
		if hits == 1 {
			cancel()
		}
	})
	if err == nil {
		t.Fatal("sweep ran to completion after cancel")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if hits >= total {
		t.Fatalf("sweep emitted all %d rows despite cancellation", total)
	}
}

// TestParallelBatchSearchContextCancelled pins that the worker pool
// observes cancellation: a cancelled context aborts the parallel sweep
// (workers stop claiming zone groups) for both the row and columnar paths.
func TestParallelBatchSearchContextCancelled(t *testing.T) {
	gals, height, probes := parallelFixture(t)
	db := sqldb.Open(0)
	zt, err := InstallZoneTableColumnar(db, "Zone", gals, height)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	err = Sweep(ctx, Rows(zt, height), probes, SweepOptions{Workers: 4}, func(int, ZoneRow) {})
	if err == nil {
		t.Fatal("cancelled parallel sweep completed")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("row sweep error %v does not wrap context.Canceled", err)
	}

	ct := zt.Columnar()
	if ct == nil {
		t.Fatal("fixture zone table has no columnar projection")
	}
	err = Sweep(ctx, Columnar(ct, height), probes, SweepOptions{Workers: 4}, func(int, ZoneRow) {})
	if err == nil {
		t.Fatal("cancelled columnar parallel sweep completed")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("columnar sweep error %v does not wrap context.Canceled", err)
	}
}

// TestParallelBatchSearchContextClean pins that a live context changes
// nothing: the parallel sweep still emits the exact sequential sequence.
func TestParallelBatchSearchContextClean(t *testing.T) {
	gals, height, probes := parallelFixture(t)
	db := sqldb.Open(0)
	zt, err := InstallZoneTable(db, "Zone", gals, height)
	if err != nil {
		t.Fatal(err)
	}
	var want, got []seqCall
	if err := Sweep(context.Background(), Rows(zt, height), probes, SweepOptions{Workers: 1}, func(pi int, zr ZoneRow) {
		want = append(want, seqCall{probe: pi, row: zr})
	}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := Sweep(ctx, Rows(zt, height), probes, SweepOptions{Workers: 4}, func(pi int, zr ZoneRow) {
		got = append(got, seqCall{probe: pi, row: zr})
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("context sweep emitted %d rows, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d differs under context", i)
		}
	}
}

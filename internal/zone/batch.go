package zone

import (
	"sort"

	"repro/internal/astro"
	"repro/internal/sqldb"
)

// Batched zone join: the per-probe SearchTable plan costs one B-tree
// descent, one cursor, and one row decode per probe per overlapping zone.
// When the caller has many probes at once (spMakeCandidates visits every
// galaxy of the buffered area), the grid-file observation applies: probes
// sorted in index order should be answered by a merge sweep, not repeated
// point lookups. BatchSearch sorts every probe's (zone, ra-window)
// obligation by (zone, ra) and drives one synchronized cursor per zone
// through the clustered (zoneid, ra) order, testing each fetched row
// against exactly the probes whose window covers it.

// Probe is one centre of a batched neighbour search: a position and a
// search radius, all in degrees.
type Probe struct {
	Ra, Dec, R float64
}

// batchWindow is one (zone, ra-interval) scan obligation of one probe.
type batchWindow struct {
	zone   int
	probe  int32
	lo, hi float64
}

// chordTestCols is how many leading zone-table columns the chord test
// reads: zoneid, objid, ra, dec, cx, cy, cz. The photometry tail
// (i, gr, ri) decodes only for rows inside some probe's radius.
const chordTestCols = 7

// BatchSearch answers every probe against the zone table in one pass and
// calls fn(probe index, neighbour row) for each hit. Per probe it emits
// rows in the same (zone ascending, ra ascending) order as SearchTable, and
// the chord arithmetic is identical, so the two paths agree bitwise; hits
// of different probes interleave. Probes with negative radius match
// nothing, like SearchTable.
func BatchSearch(t *sqldb.Table, heightDeg float64, probes []Probe, fn func(probe int, zr ZoneRow)) error {
	if len(probes) == 0 {
		return nil
	}
	centers := make([]astro.Vec3, len(probes))
	r2s := make([]float64, len(probes))
	var ws []batchWindow
	for pi := range probes {
		p := &probes[pi]
		if p.R < 0 {
			continue
		}
		centers[pi] = astro.UnitVector(p.Ra, p.Dec)
		r2s[pi] = astro.Chord2FromAngle(p.R)
		minZ, maxZ := astro.ZoneRange(p.Dec, p.R, heightDeg)
		for z := minZ; z <= maxZ; z++ {
			x := astro.RaHalfWidth(p.Dec, p.R, z, heightDeg)
			segs, n := astro.RaWindows(p.Ra, x)
			for s := 0; s < n; s++ {
				ws = append(ws, batchWindow{zone: z, probe: int32(pi), lo: segs[s][0], hi: segs[s][1]})
			}
		}
	}
	sort.Slice(ws, func(a, b int) bool {
		if ws[a].zone != ws[b].zone {
			return ws[a].zone < ws[b].zone
		}
		return ws[a].lo < ws[b].lo
	})

	var (
		cur    *sqldb.TableCursor
		active []batchWindow
		err    error
	)
	defer func() {
		if cur != nil {
			cur.Close()
		}
	}()
	for i := 0; i < len(ws); {
		j := i
		for j < len(ws) && ws[j].zone == ws[i].zone {
			j++
		}
		if cur, active, err = sweepZone(t, ws[i:j], cur, active, centers, r2s, fn); err != nil {
			return err
		}
		i = j
	}
	return nil
}

// sweepZone merges one zone's windows (sorted by lo) against the zone's
// rows with a single forward cursor: windows activate as the scan reaches
// their lower ra bound, expire past their upper bound, and the cursor
// re-seeks only across gaps no window covers. Each row is decoded once and
// tested against the active windows.
func sweepZone(t *sqldb.Table, ws []batchWindow, cur *sqldb.TableCursor, active []batchWindow,
	centers []astro.Vec3, r2s []float64, fn func(int, ZoneRow)) (*sqldb.TableCursor, []batchWindow, error) {
	zoneVal := sqldb.Int(int64(ws[0].zone))
	loVals := [2]sqldb.Value{zoneVal, {}}
	hiVals := [1]sqldb.Value{zoneVal} // inclusive bound on the whole zone
	active = active[:0]
	k := 0
	for k < len(ws) {
		loVals[1] = sqldb.Float(ws[k].lo)
		var err error
		cur, err = t.RangeScanPrefixInto(loVals[:], hiVals[:], cur)
		if err != nil {
			return cur, active[:0], err
		}
		cur.SetEagerColumns(chordTestCols)
		reseek := false
		for cur.Next() {
			row := cur.RowPrefix(chordTestCols)
			ra, _ := row[2].AsFloat()
			for k < len(ws) && ws[k].lo <= ra {
				active = append(active, ws[k])
				k++
			}
			keep := active[:0]
			for _, w := range active {
				if w.hi >= ra {
					keep = append(keep, w)
				}
			}
			active = keep
			if len(active) == 0 {
				if k >= len(ws) {
					break
				}
				// Gap: the next window starts beyond this row.
				reseek = true
				break
			}
			cx, _ := row[4].AsFloat()
			cy, _ := row[5].AsFloat()
			cz, _ := row[6].AsFloat()
			var out ZoneRow
			decoded := false
			for _, w := range active {
				c := &centers[w.probe]
				dx := cx - c.X
				dy := cy - c.Y
				dz := cz - c.Z
				c2 := dx*dx + dy*dy + dz*dz
				if c2 >= r2s[w.probe] {
					continue
				}
				if !decoded {
					full := cur.Row()
					out.ObjID, _ = full[1].AsInt()
					out.Ra, _ = full[2].AsFloat()
					out.Dec, _ = full[3].AsFloat()
					out.I, _ = full[7].AsFloat()
					out.Gr, _ = full[8].AsFloat()
					out.Ri, _ = full[9].AsFloat()
					decoded = true
				}
				out.Distance = chordDeg(c2)
				fn(int(w.probe), out)
			}
		}
		if err := cur.Err(); err != nil {
			return cur, active[:0], err
		}
		if !reseek {
			// The zone ran out of rows; windows past the last row see
			// nothing.
			break
		}
	}
	return cur, active[:0], nil
}

package zone

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/astro"
	"repro/internal/perfmodel"
	"repro/internal/sqldb"
)

// Batched zone join: the per-probe SearchTable plan costs one B-tree
// descent, one cursor, and one row decode per probe per overlapping zone.
// When the caller has many probes at once (spMakeCandidates visits every
// galaxy of the buffered area), the grid-file observation applies: probes
// sorted in index order should be answered by a merge sweep, not repeated
// point lookups. Sweep (sweep.go) sorts every probe's (zone, ra-window)
// obligation by (zone, ra) and drives one synchronized cursor per zone
// through the clustered (zoneid, ra) order, testing each fetched row
// against exactly the probes whose window covers it.
//
// The sweep is generic over the zone table's physical representation: a
// zoneSweeper answers one zone's windows, and both the sequential driver
// and the worker pool only ever talk to that interface. rowSweeper (this
// file) walks the row-major clustered B+tree; colSweeper (colsweep.go)
// walks the column-major segment pages. Their emissions are bit-identical.

// Probe is one centre of a batched neighbour search: a position and a
// search radius, all in degrees.
type Probe struct {
	Ra, Dec, R float64
}

// batchWindow is one (zone, ra-interval) scan obligation of one probe.
type batchWindow struct {
	zone   int
	probe  int32
	lo, hi float64
}

// chordTestCols is how many leading zone-table columns the chord test
// reads: zoneid, objid, ra, dec, cx, cy, cz. The photometry tail
// (i, gr, ri) decodes only for rows inside some probe's radius.
const chordTestCols = 7

// buildWindows expands every probe into its per-zone (zone, ra-window)
// scan obligations, sorted by (zone, lo): the shared front half of the
// sequential and parallel sweeps. centers and r2s are indexed by probe.
func buildWindows(heightDeg float64, probes []Probe) (ws []batchWindow, centers []astro.Vec3, r2s []float64) {
	centers = make([]astro.Vec3, len(probes))
	r2s = make([]float64, len(probes))
	for pi := range probes {
		p := &probes[pi]
		if p.R < 0 {
			continue
		}
		centers[pi] = astro.UnitVector(p.Ra, p.Dec)
		r2s[pi] = astro.Chord2FromAngle(p.R)
		minZ, maxZ := astro.ZoneRange(p.Dec, p.R, heightDeg)
		for z := minZ; z <= maxZ; z++ {
			x := astro.RaHalfWidth(p.Dec, p.R, z, heightDeg)
			segs, n := astro.RaWindows(p.Ra, x)
			for s := 0; s < n; s++ {
				ws = append(ws, batchWindow{zone: z, probe: int32(pi), lo: segs[s][0], hi: segs[s][1]})
			}
		}
	}
	sort.Slice(ws, func(a, b int) bool {
		if ws[a].zone != ws[b].zone {
			return ws[a].zone < ws[b].zone
		}
		return ws[a].lo < ws[b].lo
	})
	return ws, centers, r2s
}

// zoneSweeper answers one zone's worth of sorted windows at a time.
// Implementations carry the per-worker state of one physical access path —
// a reusable cursor over the row B+tree, or a segment scanner over the
// columnar pages — so the sequential driver and the parallel pool share
// every line of orchestration, and a worker's state never crosses
// goroutines.
type zoneSweeper interface {
	// sweepZone merges ws (one zone's windows, sorted by lo) against the
	// zone's rows in ra order, emitting hits exactly as SearchTable would
	// per probe. On error the sweeper must be left reusable or inert; the
	// drivers stop at the first error either way.
	sweepZone(ws []batchWindow, centers []astro.Vec3, r2s []float64, emit func(int, ZoneRow)) error
	// close releases cursors/pins. Called once per sweeper.
	close()
}

// rowSweeper is the zoneSweeper over the row-major clustered zone table:
// one reusable TableCursor, re-seeked per window gap, with lazy column
// decode (the chord test reads only the leading chordTestCols columns).
// The cursor carries a leaf cache, reset at every zone boundary: within a
// zone the per-window re-seeks hit the cache instead of the pool, and the
// per-zone reset keeps each zone's pool-fetch sequence a pure function of
// its windows, so io-ops stay identical at every worker count.
type rowSweeper struct {
	tv     sqldb.TableView // the sweep's pinned version (Source.pin holds the guard)
	cur    *sqldb.TableCursor
	active []batchWindow
}

func (s *rowSweeper) sweepZone(ws []batchWindow, centers []astro.Vec3, r2s []float64, emit func(int, ZoneRow)) error {
	if s.cur == nil {
		s.cur = s.tv.NewSweepCursor()
	}
	s.cur.ResetLeafCache()
	var err error
	s.cur, s.active, err = sweepZoneRows(s.tv, ws, s.cur, s.active, centers, r2s, emit)
	return err
}

func (s *rowSweeper) close() {
	if s.cur != nil {
		s.cur.Close()
	}
}

// sweepInterrupted wraps a context failure so callers can errors.Is it
// against context.Canceled / context.DeadlineExceeded.
func sweepInterrupted(ctx context.Context) error {
	return fmt.Errorf("zone: sweep interrupted: %w", ctx.Err())
}

// zoneEnd returns the end of the same-zone window run beginning at ws[i]:
// the one grouping rule both the sequential and parallel sweeps share, so
// their per-zone units of work can never diverge.
func zoneEnd(ws []batchWindow, i int) int {
	j := i
	for j < len(ws) && ws[j].zone == ws[i].zone {
		j++
	}
	return j
}

// sweepSequential drives one sweeper through the prebuilt zone-grouped
// windows in order: Sweep's Workers == 1 path, and the fallback when a
// probe set collapses to too few zones to parallelise.
func sweepSequential(ctx context.Context, sw zoneSweeper, ws []batchWindow, centers []astro.Vec3, r2s []float64, fn func(int, ZoneRow)) error {
	defer sw.close()
	poll := ctx.Done() != nil
	for i := 0; i < len(ws); {
		if poll && ctx.Err() != nil {
			return sweepInterrupted(ctx)
		}
		j := zoneEnd(ws, i)
		if err := sw.sweepZone(ws[i:j], centers, r2s, fn); err != nil {
			return err
		}
		i = j
	}
	return nil
}

// batchHit is one buffered result of a parallel sweep: the probe it
// answers and the neighbour row, in the zone's emission order.
type batchHit struct {
	probe int32
	row   ZoneRow
}

// errSweepSkipped marks a zone a worker declined to sweep because an
// earlier failure already aborted the search; it is filtered out of
// the parallel sweep's return value in favour of the real error.
var errSweepSkipped = errors.New("zone: sweep skipped after earlier failure")

// SweepStats accumulates measurements a parallel sweep cannot surface
// through its return value: the CPU time its worker threads consume.
// DBFinder adds WorkerCPU to the calling thread's clock so the paper's
// cpu(s) column stays a true total under Workers > 1 (each worker pins its
// goroutine to an OS thread and reads the thread clock around its whole
// run). Safe for concurrent use; the zero value is ready.
type SweepStats struct {
	workerCPU atomic.Int64 // nanoseconds
}

func (s *SweepStats) addWorkerCPU(d time.Duration) { s.workerCPU.Add(int64(d)) }

// WorkerCPU returns the total CPU time consumed so far by sweep worker
// threads (excluding the calling goroutine's, which the caller can measure
// itself).
func (s *SweepStats) WorkerCPU() time.Duration {
	return time.Duration(s.workerCPU.Load())
}

// timedSequential drives sweepSequential, crediting the drive's wall time
// as worker busy time when metrics are attached (a sequential sweep is its
// own single worker). Both Sweep's workers==1 path and sweepParallel's
// single-group fallback come through here.
func timedSequential(ctx context.Context, sw zoneSweeper, ws []batchWindow, centers []astro.Vec3, r2s []float64, fn func(int, ZoneRow)) error {
	m := sweepMet.Load()
	if m == nil {
		return sweepSequential(ctx, sw, ws, centers, r2s, fn)
	}
	t0 := time.Now()
	err := sweepSequential(ctx, sw, ws, centers, r2s, fn)
	m.addBusy(time.Since(t0))
	return err
}

// sweepParallel runs the zone-grouped windows on a worker pool, one
// sweeper per worker (newSweeper is called on the worker's goroutine):
// zones are independent by construction (each is a disjoint clustered-key
// range), so workers claim zones from the sorted window list and sweep
// them concurrently, each with its own cursor and decode buffers over the
// thread-safe buffer pool. Per-zone hits buffer in memory and fn is
// called zone by zone in ascending order from the calling goroutine; see
// Sweep for the output contract this implements.
func sweepParallel(ctx context.Context, newSweeper func() zoneSweeper, ws []batchWindow, centers []astro.Vec3, r2s []float64,
	workers int, stats *SweepStats, fn func(int, ZoneRow)) error {
	// Group the windows by zone: groups[g] = ws[starts[g]:starts[g+1]].
	var starts []int
	for i := 0; i < len(ws); i = zoneEnd(ws, i) {
		starts = append(starts, i)
	}
	starts = append(starts, len(ws))
	groups := len(starts) - 1
	if groups <= 1 {
		return timedSequential(ctx, newSweeper(), ws, centers, r2s, fn)
	}
	poll := ctx.Done() != nil
	if workers > groups {
		workers = groups
	}

	hits := make([]*[]batchHit, groups)
	errs := make([]error, groups)
	done := make([]chan struct{}, groups)
	for g := range done {
		done[g] = make(chan struct{})
	}
	var (
		next int64 // next unclaimed group, taken via atomic increment
		stop int32 // set when any worker fails; remaining groups are skipped
		wg   sync.WaitGroup
		// bufs recycles emitted hit buffers back to the workers, bounding
		// allocation by the in-flight zones rather than the total hits.
		bufs = sync.Pool{New: func() any { return new([]batchHit) }}
		// tokens bounds how far the workers may run ahead of the in-order
		// consumer: without it every zone's hits would be live at once and
		// the buffer pool could never recycle. A worker holds one token
		// per claimed group; the consumer returns it after emitting.
		tokens = make(chan struct{}, 4*workers)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if m := sweepMet.Load(); m != nil {
				// Wall-clock residency of this worker, token waits included:
				// the ops signal is "how much worker time do sweeps occupy",
				// which a stalled consumer should show, not hide.
				t0 := time.Now()
				defer func() { m.addBusy(time.Since(t0)) }()
			}
			if stats != nil {
				// Pin to an OS thread so the thread clock measures exactly
				// this worker; the pin dies with the goroutine.
				runtime.LockOSThread()
				cpuStart := perfmodel.ThreadCPU()
				defer func() {
					stats.addWorkerCPU(perfmodel.ThreadCPU() - cpuStart)
				}()
			}
			sw := newSweeper()
			defer sw.close()
			for {
				tokens <- struct{}{}
				g := int(atomic.AddInt64(&next, 1)) - 1
				if g >= groups {
					<-tokens // nothing claimed; hand the token back
					return
				}
				if atomic.LoadInt32(&stop) == 0 && poll && ctx.Err() != nil {
					// The query is gone: fail this group so emission halts
					// and every worker sees stop on its next claim.
					errs[g] = sweepInterrupted(ctx)
					atomic.StoreInt32(&stop, 1)
				} else if atomic.LoadInt32(&stop) == 0 {
					buf := bufs.Get().(*[]batchHit)
					*buf = (*buf)[:0]
					errs[g] = sw.sweepZone(ws[starts[g]:starts[g+1]], centers, r2s,
						func(pi int, zr ZoneRow) {
							*buf = append(*buf, batchHit{probe: int32(pi), row: zr})
						})
					hits[g] = buf
					if errs[g] != nil {
						atomic.StoreInt32(&stop, 1)
					}
				} else {
					errs[g] = errSweepSkipped
				}
				close(done[g])
			}
		}()
	}

	// Emit in zone order while the workers run ahead. Emission halts at
	// the first zone that failed — or was skipped after a failure — so on
	// error fn has seen a clean prefix of the sequential call sequence,
	// never a sequence with a missing zone in the middle. The returned
	// error is a real sweep error (skip markers can only follow the
	// failure that caused them, but a preempted worker may record one at
	// a lower zone index, so they are filtered, not returned).
	var firstErr error
	emit := true
	for g := 0; g < groups; g++ {
		<-done[g]
		<-tokens // the claiming worker's token; frees a look-ahead slot
		if buf := hits[g]; buf != nil {
			if emit && errs[g] == nil {
				for i := range *buf {
					h := &(*buf)[i]
					fn(int(h.probe), h.row)
				}
			}
			hits[g] = nil
			bufs.Put(buf)
		}
		if errs[g] != nil {
			emit = false
			if firstErr == nil && errs[g] != errSweepSkipped {
				firstErr = errs[g]
			}
		}
	}
	wg.Wait()
	return firstErr
}

// sweepZoneRows merges one zone's windows (sorted by lo) against the zone's
// rows with a single forward cursor: windows activate as the scan reaches
// their lower ra bound, expire past their upper bound, and the cursor
// re-seeks only across gaps no window covers. Each row is decoded once and
// tested against the active windows.
func sweepZoneRows(tv sqldb.TableView, ws []batchWindow, cur *sqldb.TableCursor, active []batchWindow,
	centers []astro.Vec3, r2s []float64, fn func(int, ZoneRow)) (*sqldb.TableCursor, []batchWindow, error) {
	zoneVal := sqldb.Int(int64(ws[0].zone))
	loVals := [2]sqldb.Value{zoneVal, {}}
	hiVals := [1]sqldb.Value{zoneVal} // inclusive bound on the whole zone
	active = active[:0]
	k := 0
	for k < len(ws) {
		loVals[1] = sqldb.Float(ws[k].lo)
		var err error
		cur, err = tv.RangeScanPrefixInto(loVals[:], hiVals[:], cur)
		if err != nil {
			return cur, active[:0], err
		}
		cur.SetEagerColumns(chordTestCols)
		reseek := false
		for cur.Next() {
			row := cur.RowPrefix(chordTestCols)
			ra, _ := row[2].AsFloat()
			for k < len(ws) && ws[k].lo <= ra {
				active = append(active, ws[k])
				k++
			}
			keep := active[:0]
			for _, w := range active {
				if w.hi >= ra {
					keep = append(keep, w)
				}
			}
			active = keep
			if len(active) == 0 {
				if k >= len(ws) {
					break
				}
				// Gap: the next window starts beyond this row.
				reseek = true
				break
			}
			cx, _ := row[4].AsFloat()
			cy, _ := row[5].AsFloat()
			cz, _ := row[6].AsFloat()
			var out ZoneRow
			decoded := false
			for _, w := range active {
				c := &centers[w.probe]
				dx := cx - c.X
				dy := cy - c.Y
				dz := cz - c.Z
				c2 := dx*dx + dy*dy + dz*dz
				if c2 >= r2s[w.probe] {
					continue
				}
				if !decoded {
					full := cur.Row()
					out.ObjID, _ = full[1].AsInt()
					out.Ra, _ = full[2].AsFloat()
					out.Dec, _ = full[3].AsFloat()
					out.I, _ = full[7].AsFloat()
					out.Gr, _ = full[8].AsFloat()
					out.Ri, _ = full[9].AsFloat()
					decoded = true
				}
				out.Distance = chordDeg(c2)
				fn(int(w.probe), out)
			}
		}
		if err := cur.Err(); err != nil {
			return cur, active[:0], err
		}
		if !reseek {
			// The zone ran out of rows; windows past the last row see
			// nothing.
			break
		}
	}
	return cur, active[:0], nil
}

package zone

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/astro"
	"repro/internal/sky"
	"repro/internal/sqldb"
)

// seqCalls records the exact global callback sequence of a sweep: the
// parallel path must reproduce BatchSearch's call-for-call order, not just
// the per-probe row sets, for downstream tables to be bit-identical.
type seqCall struct {
	probe int
	row   ZoneRow
}

// parallelFixture is the wraparound-RA dataset of wrap_test.go plus a
// dense survey patch: the seam galaxies exercise the split ra windows
// (zones with two disjoint scan ranges), the survey patch exercises many
// populated zones so several workers genuinely run at once.
func parallelFixture(t *testing.T) (gals []sky.Galaxy, height float64, probes []Probe) {
	t.Helper()
	gals = seamGalaxies()
	height = 0.25
	for _, p := range seamProbes() {
		probes = append(probes, Probe{Ra: p[0], Dec: p[1], R: p[2]})
	}
	rng := rand.New(rand.NewSource(20040801))
	for i := 0; i < 40; i++ {
		probes = append(probes, Probe{
			Ra:  rng.Float64() * 0.6,
			Dec: 0.5 + rng.Float64(),
			R:   0.05 + rng.Float64()*0.2,
		})
		probes = append(probes, Probe{
			Ra:  359.4 + rng.Float64()*0.6,
			Dec: 0.5 + rng.Float64(),
			R:   0.05 + rng.Float64()*0.2,
		})
	}
	probes = append(probes, Probe{Ra: 12, Dec: 1, R: -0.5}) // matches nothing
	return gals, height, probes
}

// TestParallelBatchSearchMatchesSequential pins the tentpole determinism
// guarantee under concurrency: for every worker count the parallel sweep
// must deliver the identical global callback sequence as the sequential
// BatchSearch over a seam-straddling dataset. Run it with -race (the CI
// race job does) to also pin the absence of data races between workers
// sharing the table and buffer pool.
func TestParallelBatchSearchMatchesSequential(t *testing.T) {
	gals, height, probes := parallelFixture(t)
	db := sqldb.Open(0)
	zt, err := InstallZoneTable(db, "Zone", gals, height)
	if err != nil {
		t.Fatal(err)
	}

	var want []seqCall
	if err := Sweep(context.Background(), Rows(zt, height), probes, SweepOptions{Workers: 1}, func(pi int, zr ZoneRow) {
		want = append(want, seqCall{probe: pi, row: zr})
	}); err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("fixture matches nothing")
	}

	for _, workers := range []int{0, 2, 3, 4, 8} {
		t.Run(fmt.Sprintf("workers-%d", workers), func(t *testing.T) {
			// Several repetitions vary goroutine scheduling; the emitted
			// sequence must never change.
			for rep := 0; rep < 3; rep++ {
				var got []seqCall
				err := Sweep(context.Background(), Rows(zt, height), probes, SweepOptions{Workers: workers}, func(pi int, zr ZoneRow) {
					got = append(got, seqCall{probe: pi, row: zr})
				})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("rep %d: parallel sweep emitted %d calls, sequential %d (or order/values differ)",
						rep, len(got), len(want))
				}
			}
		})
	}
}

// TestParallelBatchSearchSurvey repeats the equivalence check on a realistic
// zone-height survey patch, where thousands of thin zones stress the
// work-claiming loop rather than the split windows.
func TestParallelBatchSearchSurvey(t *testing.T) {
	cat, err := sky.Generate(sky.GenConfig{
		Region: astro.MustBox(195.0, 195.6, 2.3, 2.9),
		Seed:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	db := sqldb.Open(0)
	zt, err := InstallZoneTable(db, "Zone", cat.Galaxies, astro.ZoneHeightDeg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	probes := make([]Probe, 120)
	for i := range probes {
		probes[i] = Probe{
			Ra:  195.0 + rng.Float64()*0.6,
			Dec: 2.3 + rng.Float64()*0.6,
			R:   0.02 + rng.Float64()*0.12,
		}
	}
	var want []seqCall
	if err := Sweep(context.Background(), Rows(zt, astro.ZoneHeightDeg), probes, SweepOptions{Workers: 1}, func(pi int, zr ZoneRow) {
		want = append(want, seqCall{probe: pi, row: zr})
	}); err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("fixture matches nothing")
	}
	var got []seqCall
	if err := Sweep(context.Background(), Rows(zt, astro.ZoneHeightDeg), probes, SweepOptions{Workers: 4}, func(pi int, zr ZoneRow) {
		got = append(got, seqCall{probe: pi, row: zr})
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parallel sweep emitted %d calls, sequential %d (or order/values differ)",
			len(got), len(want))
	}
}

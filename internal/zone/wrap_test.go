package zone

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/astro"
	"repro/internal/sky"
	"repro/internal/sqldb"
)

// seamGalaxies builds a deterministic field straddling the ra = 0°/360°
// seam: half the objects just below 360°, half just above 0°, plus a thin
// sprinkling elsewhere so the index has more than one populated window.
func seamGalaxies() []sky.Galaxy {
	rng := rand.New(rand.NewSource(42))
	var gals []sky.Galaxy
	add := func(ra, dec float64) {
		gals = append(gals, sky.Galaxy{
			ObjID: int64(len(gals) + 1), Ra: ra, Dec: dec,
			I: 18 + rng.Float64(), Gr: 1.0 + rng.Float64()*0.1, Ri: 0.4 + rng.Float64()*0.1,
		})
	}
	for i := 0; i < 120; i++ {
		add(359.5+rng.Float64()*0.5, 0.5+rng.Float64())
	}
	for i := 0; i < 120; i++ {
		add(rng.Float64()*0.5, 0.5+rng.Float64())
	}
	for i := 0; i < 60; i++ {
		add(10+rng.Float64()*5, 0.5+rng.Float64())
	}
	return gals
}

// seamProbes are circles that straddle the seam from both sides, plus one
// far from it as a control.
func seamProbes() [][3]float64 {
	return [][3]float64{
		{0.05, 1.0, 0.3},
		{359.93, 1.2, 0.3},
		{0.0, 0.9, 0.15},
		{359.999, 1.1, 0.25},
		{12.0, 1.0, 0.3}, // control away from the seam
	}
}

// TestVisitWrapsAroundRaSeam is the regression test for probe circles
// straddling ra = 0°/360°: the zone index must return exactly what the
// brute-force oracle does.
func TestVisitWrapsAroundRaSeam(t *testing.T) {
	gals := seamGalaxies()
	idx, err := Build(gals, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range seamProbes() {
		got := idx.Neighbors(p[0], p[1], p[2])
		want := BruteForce(gals, p[0], p[1], p[2])
		if len(want) == 0 {
			t.Fatalf("probe %v matches nothing; fixture broken", p)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("probe %v: index found %d neighbours, brute force %d", p, len(got), len(want))
		}
	}
}

// TestSearchTableWrapsAroundRaSeam checks the same property on the
// DB-backed path: the clustered range scans must split the ra window at
// the seam.
func TestSearchTableWrapsAroundRaSeam(t *testing.T) {
	gals := seamGalaxies()
	db := sqldb.Open(0)
	zt, err := InstallZoneTable(db, "Zone", gals, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range seamProbes() {
		var got []int64
		err := SearchTable(zt, 0.25, p[0], p[1], p[2], func(zr ZoneRow) {
			got = append(got, zr.ObjID)
		})
		if err != nil {
			t.Fatal(err)
		}
		want := BruteForce(gals, p[0], p[1], p[2])
		wantIDs := make(map[int64]bool, len(want))
		for _, n := range want {
			wantIDs[n.Entry.ObjID] = true
		}
		if len(got) != len(want) {
			t.Errorf("probe %v: table search found %d neighbours, brute force %d", p, len(got), len(want))
			continue
		}
		for _, id := range got {
			if !wantIDs[id] {
				t.Errorf("probe %v: table search returned %d, not a brute-force match", p, id)
			}
		}
	}
}

// TestBatchSearchMatchesSearchTable drives the batched zone join over the
// seam fixture and a generated survey patch, asserting each probe receives
// exactly the per-probe path's rows in the same order.
func TestBatchSearchMatchesSearchTable(t *testing.T) {
	cases := []struct {
		name   string
		gals   []sky.Galaxy
		height float64
		probes []Probe
	}{
		{
			name: "seam", gals: seamGalaxies(), height: 0.25,
			probes: func() []Probe {
				var ps []Probe
				for _, p := range seamProbes() {
					ps = append(ps, Probe{Ra: p[0], Dec: p[1], R: p[2]})
				}
				return ps
			}(),
		},
		{
			name: "survey", height: astro.ZoneHeightDeg,
			gals: func() []sky.Galaxy {
				cat, err := sky.Generate(sky.GenConfig{
					Region: astro.MustBox(195.0, 195.5, 2.4, 2.9),
					Seed:   3,
				})
				if err != nil {
					t.Fatal(err)
				}
				return cat.Galaxies
			}(),
			probes: func() []Probe {
				rng := rand.New(rand.NewSource(9))
				ps := make([]Probe, 80)
				for i := range ps {
					ps[i] = Probe{
						Ra:  195.0 + rng.Float64()*0.5,
						Dec: 2.4 + rng.Float64()*0.5,
						R:   0.02 + rng.Float64()*0.15,
					}
				}
				ps = append(ps, Probe{Ra: 195.2, Dec: 2.6, R: -1}) // negative radius matches nothing
				return ps
			}(),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db := sqldb.Open(0)
			zt, err := InstallZoneTable(db, "Zone", tc.gals, tc.height)
			if err != nil {
				t.Fatal(err)
			}
			want := make([][]ZoneRow, len(tc.probes))
			total := 0
			for i, p := range tc.probes {
				err := SearchTable(zt, tc.height, p.Ra, p.Dec, p.R, func(zr ZoneRow) {
					want[i] = append(want[i], zr)
				})
				if err != nil {
					t.Fatal(err)
				}
				total += len(want[i])
			}
			if total == 0 {
				t.Fatal("fixture matches nothing")
			}
			got := make([][]ZoneRow, len(tc.probes))
			err = Sweep(context.Background(), Rows(zt, tc.height), tc.probes, SweepOptions{Workers: 1}, func(pi int, zr ZoneRow) {
				got[pi] = append(got[pi], zr)
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := range tc.probes {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Errorf("probe %d: batch delivered %d rows, per-probe %d (or order/values differ)",
						i, len(got[i]), len(want[i]))
				}
			}
		})
	}
}

// Package zone implements the zone-indexing strategy of Gray et al.
// (MSR-TR-2004-32) that the paper credits for the SQL implementation's
// speed: the celestial sphere is sliced into declination stripes ("zones"),
// objects are clustered by (zoneID, ra), and a radial neighbour search
// becomes, per overlapping zone, one ra range scan plus a squared-chord
// test — pure relational algebra, no geometry library in the inner loop.
//
// The package provides both an in-memory index (the compiled "stored
// procedure" hot path) and helpers that install the same structure into a
// sqldb database (Zone table with a clustered (zoneid, ra) index and the
// fGetNearbyObjEqZd table-valued function), where buffer-pool I/O is
// accounted.
//
// Two access paths answer neighbour searches against the DB zone table:
//
//   - SearchTable: one range scan per probe per overlapping zone (the
//     paper's literal fGetNearbyObjEqZd plan; the ablation baseline).
//   - Sweep: many probes answered in one pass — every probe's
//     (zone, ra-window) obligations sort by (zone, ra) and merge against
//     the zone order with one synchronized sweep per zone, optionally on
//     a worker pool (SweepOptions.Workers). Zones are disjoint ranges, so
//     workers claim them independently, each with a private cursor and
//     leaf cache over the thread-safe sharded buffer pool; per-zone hits
//     are buffered and re-emitted in zone order, making the output
//     bit-identical at any worker count.
//
// Sweep reads either physical representation through its Source argument:
// Rows (the clustered B+tree) or Columnar (the colstore zone projection
// InstallZoneTableColumnar attaches, where the chord test iterates packed
// float slices with no per-row decode and per-segment min/max ra bounds
// skip pages no window reaches).
//
// All paths agree bitwise; equivalence and wraparound-RA tests pin it.
package zone

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/astro"
	"repro/internal/sky"
)

// Entry is one indexed object.
type Entry struct {
	ObjID   int64
	Ra, Dec float64
	Vec     astro.Vec3
}

// Neighbor is a search result: an entry and its distance in degrees
// (chord-approximated, as the paper's function returns).
type Neighbor struct {
	Entry    Entry
	Distance float64
}

// Index is an in-memory zone index.
type Index struct {
	height  float64
	minZone int
	zones   [][]Entry // per zone, sorted by ra
}

// Build constructs an index over the galaxies with the given zone height in
// degrees (astro.ZoneHeightDeg reproduces the paper's 30 arcseconds).
func Build(gals []sky.Galaxy, heightDeg float64) (*Index, error) {
	if heightDeg <= 0 {
		return nil, fmt.Errorf("zone: non-positive zone height %g", heightDeg)
	}
	idx := &Index{height: heightDeg}
	if len(gals) == 0 {
		return idx, nil
	}
	minZ, maxZ := 1<<31, -(1 << 31)
	for i := range gals {
		z := astro.ZoneID(gals[i].Dec, heightDeg)
		if z < minZ {
			minZ = z
		}
		if z > maxZ {
			maxZ = z
		}
	}
	idx.minZone = minZ
	idx.zones = make([][]Entry, maxZ-minZ+1)
	for i := range gals {
		g := &gals[i]
		z := astro.ZoneID(g.Dec, heightDeg) - minZ
		idx.zones[z] = append(idx.zones[z], Entry{
			ObjID: g.ObjID, Ra: g.Ra, Dec: g.Dec,
			Vec: astro.UnitVector(g.Ra, g.Dec),
		})
	}
	for z := range idx.zones {
		es := idx.zones[z]
		sort.Slice(es, func(a, b int) bool {
			if es[a].Ra != es[b].Ra {
				return es[a].Ra < es[b].Ra
			}
			return es[a].ObjID < es[b].ObjID
		})
	}
	return idx, nil
}

// Height returns the zone height in degrees.
func (x *Index) Height() float64 { return x.height }

// Len returns the number of indexed entries.
func (x *Index) Len() int {
	n := 0
	for _, z := range x.zones {
		n += len(z)
	}
	return n
}

// Visit calls fn for every object within rDeg of (raDeg, decDeg), including
// an object at the exact centre. The traversal reproduces
// fGetNearbyObjEqZd: loop over overlapping zones, binary-search the ra
// window (narrowed per zone), and accept on squared chord length.
func (x *Index) Visit(raDeg, decDeg, rDeg float64, fn func(Neighbor)) {
	if len(x.zones) == 0 || rDeg < 0 {
		return
	}
	center := astro.UnitVector(raDeg, decDeg)
	r2 := astro.Chord2FromAngle(rDeg)
	minZ, maxZ := astro.ZoneRange(decDeg, rDeg, x.height)
	for z := minZ; z <= maxZ; z++ {
		zi := z - x.minZone
		if zi < 0 || zi >= len(x.zones) {
			continue
		}
		es := x.zones[zi]
		if len(es) == 0 {
			continue
		}
		xw := astro.RaHalfWidth(decDeg, rDeg, z, x.height)
		segs, ns := astro.RaWindows(raDeg, xw)
		for s := 0; s < ns; s++ {
			loRa, hiRa := segs[s][0], segs[s][1]
			lo := sort.Search(len(es), func(i int) bool { return es[i].Ra >= loRa })
			for i := lo; i < len(es) && es[i].Ra <= hiRa; i++ {
				c2 := center.Chord2(es[i].Vec)
				if c2 < r2 {
					fn(Neighbor{Entry: es[i], Distance: chordDeg(c2)})
				}
			}
		}
	}
}

// Neighbors returns the matches of Visit as a slice sorted by (distance,
// objID) so results are deterministic across implementations.
func (x *Index) Neighbors(raDeg, decDeg, rDeg float64) []Neighbor {
	var out []Neighbor
	x.Visit(raDeg, decDeg, rDeg, func(n Neighbor) { out = append(out, n) })
	sortNeighbors(out)
	return out
}

// BruteForce computes the same result as Neighbors by scanning every entry:
// the oracle for property tests and the "no spatial index" ablation.
func BruteForce(gals []sky.Galaxy, raDeg, decDeg, rDeg float64) []Neighbor {
	center := astro.UnitVector(raDeg, decDeg)
	r2 := astro.Chord2FromAngle(rDeg)
	var out []Neighbor
	for i := range gals {
		g := &gals[i]
		v := astro.UnitVector(g.Ra, g.Dec)
		c2 := center.Chord2(v)
		if c2 < r2 {
			out = append(out, Neighbor{
				Entry:    Entry{ObjID: g.ObjID, Ra: g.Ra, Dec: g.Dec, Vec: v},
				Distance: chordDeg(c2),
			})
		}
	}
	sortNeighbors(out)
	return out
}

func sortNeighbors(ns []Neighbor) {
	sort.Slice(ns, func(a, b int) bool {
		if ns[a].Distance != ns[b].Distance {
			return ns[a].Distance < ns[b].Distance
		}
		return ns[a].Entry.ObjID < ns[b].Entry.ObjID
	})
}

// chordDeg converts a squared chord length to the paper's distance column:
// sqrt(chord²)/deg2rad, i.e. degrees to first order.
func chordDeg(chord2 float64) float64 {
	return math.Sqrt(chord2) / astro.Deg2Rad
}

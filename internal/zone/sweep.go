package zone

import (
	"context"
	"errors"
	"runtime"

	"repro/internal/colstore"
	"repro/internal/sqldb"
)

var errNilRowSource = errors.New("zone: nil row zone table")

// Sweep is the single entry point of the batched zone join. It replaced
// a ten-function matrix (BatchSearch / ParallelBatchSearch / ...Columnar
// / ...Stats / ...Context variants): the physical access path now lives
// in the Source, the knobs in SweepOptions, and every caller goes through
// here.
//
// Sweep answers every probe against the zone table in one pass and calls
// fn(probe index, neighbour row) for each hit. Per probe it emits rows in
// the same (zone ascending, ra ascending) order as SearchTable, with
// identical chord arithmetic, so the two paths agree bitwise; hits of
// different probes interleave. Probes with negative radius match
// nothing. The output is bit-identical at every worker count: zones are
// swept concurrently but their hits are emitted in zone order from the
// calling goroutine, so fn never runs concurrently and needs no locking.
//
// The sweep polls ctx between zones (workers poll before claiming their
// next zone) and stops with an error wrapping ctx.Err() once cancelled,
// so an abandoned query stops consuming CPU and pool pins mid-sweep. On
// any error fn has received a clean prefix (by zone) of the sequential
// call sequence; which zones made the prefix may vary with scheduling,
// so callers must discard partial results on error.
func Sweep(ctx context.Context, src Source, probes []Probe, opts SweepOptions, fn func(probe int, zr ZoneRow)) error {
	if err := src.check(); err != nil {
		return err
	}
	if len(probes) == 0 {
		return nil
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ws, centers, r2s := buildWindows(src.height(), probes)
	if workers == 1 {
		return sweepSequential(ctx, src.newSweeper(), ws, centers, r2s, fn)
	}
	return sweepParallel(ctx, src.newSweeper, ws, centers, r2s, workers, opts.Stats, fn)
}

// SweepOptions carries Sweep's knobs; the zero value is a good default.
type SweepOptions struct {
	// Workers sizes the sweep's worker pool: 0 selects GOMAXPROCS, 1 the
	// sequential path (the ablation baseline — also what a parallel sweep
	// falls back to when the probes collapse into a single zone group).
	Workers int
	// Stats, when non-nil, accumulates measurements the sweep cannot
	// surface through its return value (worker-thread CPU time).
	Stats *SweepStats
}

// Source is one physical access path of a zone table: the row-major
// clustered B+tree or the column-major segment store. Constructors carry
// the zone height because it is a property of how the table was built,
// not of an individual sweep. The interface is closed (unexported
// methods): the two stores below are the only sweepable layouts.
type Source interface {
	// check validates the source before a sweep trusts its layout.
	check() error
	// height returns the zone height in degrees the table was built with.
	height() float64
	// newSweeper returns a fresh per-worker sweeper over this source.
	newSweeper() zoneSweeper
}

// Rows returns the Source reading t's row-major clustered B+tree, built
// with zone height heightDeg.
func Rows(t *sqldb.Table, heightDeg float64) Source {
	return rowSource{t: t, heightDeg: heightDeg}
}

// Columnar returns the Source reading the column-major zone projection
// ct, built with zone height heightDeg.
func Columnar(ct *colstore.Table, heightDeg float64) Source {
	return colSource{ct: ct, heightDeg: heightDeg}
}

// TableSource returns the best Source for t: its columnar projection
// when one is attached (and current), otherwise the row store.
func TableSource(t *sqldb.Table, heightDeg float64) Source {
	if ct := t.Columnar(); ct != nil {
		return Columnar(ct, heightDeg)
	}
	return Rows(t, heightDeg)
}

type rowSource struct {
	t         *sqldb.Table
	heightDeg float64
}

func (s rowSource) check() error {
	if s.t == nil {
		return errNilRowSource
	}
	return nil
}
func (s rowSource) height() float64         { return s.heightDeg }
func (s rowSource) newSweeper() zoneSweeper { return &rowSweeper{t: s.t} }

type colSource struct {
	ct        *colstore.Table
	heightDeg float64
}

func (s colSource) check() error            { return checkColumnarZone(s.ct) }
func (s colSource) height() float64         { return s.heightDeg }
func (s colSource) newSweeper() zoneSweeper { return &colSweeper{t: s.ct} }

package zone

import (
	"context"
	"errors"
	"runtime"
	"time"

	"repro/internal/colstore"
	"repro/internal/sqldb"
)

var errNilRowSource = errors.New("zone: nil row zone table")

// Sweep is the single entry point of the batched zone join. It replaced
// a ten-function matrix (BatchSearch / ParallelBatchSearch / ...Columnar
// / ...Stats / ...Context variants): the physical access path now lives
// in the Source, the knobs in SweepOptions, and every caller goes through
// here.
//
// Sweep answers every probe against the zone table in one pass and calls
// fn(probe index, neighbour row) for each hit. Per probe it emits rows in
// the same (zone ascending, ra ascending) order as SearchTable, with
// identical chord arithmetic, so the two paths agree bitwise; hits of
// different probes interleave. Probes with negative radius match
// nothing. The output is bit-identical at every worker count: zones are
// swept concurrently but their hits are emitted in zone order from the
// calling goroutine, so fn never runs concurrently and needs no locking.
//
// The sweep polls ctx between zones (workers poll before claiming their
// next zone) and stops with an error wrapping ctx.Err() once cancelled,
// so an abandoned query stops consuming CPU and pool pins mid-sweep. On
// any error fn has received a clean prefix (by zone) of the sequential
// call sequence; which zones made the prefix may vary with scheduling,
// so callers must discard partial results on error.
func Sweep(ctx context.Context, src Source, probes []Probe, opts SweepOptions, fn func(probe int, zr ZoneRow)) error {
	// One pin covers the whole sweep: every worker's sweeper reads the same
	// immutable table version, so a concurrent bulk load can never tear the
	// result across zones.
	newSweeper, release, err := src.pin()
	if err != nil {
		return err
	}
	defer release()
	if len(probes) == 0 {
		return nil
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ws, centers, r2s := buildWindows(src.height(), probes)

	// Metrics, when attached, count at the sweep boundary only: hits tally
	// in a local (fn always runs on this goroutine) and flush as one Add
	// below. Detached, emit == fn and the sweep allocates nothing extra —
	// the counting closure and the cell it captures are both created
	// inside the branch, so escape analysis keeps the detached path clean.
	m := sweepMet.Load()
	emit := fn
	var hits *int64
	var t0 time.Time
	if m != nil {
		h := new(int64)
		hits = h
		emit = func(probe int, zr ZoneRow) {
			*h++
			fn(probe, zr)
		}
		t0 = time.Now()
	}
	if workers == 1 {
		err = timedSequential(ctx, newSweeper(), ws, centers, r2s, emit)
	} else {
		err = sweepParallel(ctx, newSweeper, ws, centers, r2s, workers, opts.Stats, emit)
	}
	if m != nil {
		m.sweeps.Inc()
		m.probes.Add(int64(len(probes)))
		m.hits.Add(*hits)
		groups := int64(0)
		for i := 0; i < len(ws); i = zoneEnd(ws, i) {
			groups++
		}
		m.groups.Add(groups)
		m.duration.Observe(time.Since(t0).Seconds())
		if err != nil {
			m.errors.Inc()
		}
	}
	return err
}

// SweepOptions carries Sweep's knobs; the zero value is a good default.
type SweepOptions struct {
	// Workers sizes the sweep's worker pool: 0 selects GOMAXPROCS, 1 the
	// sequential path (the ablation baseline — also what a parallel sweep
	// falls back to when the probes collapse into a single zone group).
	Workers int
	// Stats, when non-nil, accumulates measurements the sweep cannot
	// surface through its return value (worker-thread CPU time).
	Stats *SweepStats
}

// Source is one physical access path of a zone table: the row-major
// clustered B+tree or the column-major segment store. Constructors carry
// the zone height because it is a property of how the table was built,
// not of an individual sweep. The interface is closed (unexported
// methods): the sources below are the only sweepable layouts.
type Source interface {
	// height returns the zone height in degrees the table was built with.
	height() float64
	// pin validates the source and freezes its physical state for one
	// sweep: every sweeper the returned factory makes reads the same
	// immutable version, so workers can never observe different published
	// states of a table written concurrently. release must be called once
	// the sweep is done (it unpins the version's pages for reclamation).
	pin() (newSweeper func() zoneSweeper, release func(), err error)
}

// Rows returns the Source reading t's row-major clustered B+tree, built
// with zone height heightDeg.
func Rows(t *sqldb.Table, heightDeg float64) Source {
	return rowSource{t: t, heightDeg: heightDeg}
}

// Columnar returns the Source reading the column-major zone projection
// ct, built with zone height heightDeg.
func Columnar(ct *colstore.Table, heightDeg float64) Source {
	return colSource{ct: ct, heightDeg: heightDeg}
}

// TableSource returns the Source that picks t's best access path at sweep
// time: pinning resolves one table version and reads its columnar
// projection when that version carries one, otherwise its row tree. The
// choice and the data come from the same version, so a write that
// detaches the projection mid-decision cannot leave the sweep reading
// segments that disagree with the rows.
func TableSource(t *sqldb.Table, heightDeg float64) Source {
	return tableSource{t: t, heightDeg: heightDeg}
}

type rowSource struct {
	t         *sqldb.Table
	heightDeg float64
}

func (s rowSource) height() float64 { return s.heightDeg }
func (s rowSource) pin() (func() zoneSweeper, func(), error) {
	if s.t == nil {
		return nil, nil, errNilRowSource
	}
	tv, release := s.t.AcquireView()
	return func() zoneSweeper { return &rowSweeper{tv: tv} }, release, nil
}

type colSource struct {
	ct        *colstore.Table
	heightDeg float64
}

func (s colSource) height() float64 { return s.heightDeg }
func (s colSource) pin() (func() zoneSweeper, func(), error) {
	if err := checkColumnarZone(s.ct); err != nil {
		return nil, nil, err
	}
	// Segment pages are never reclaimed and ct is immutable: no unpin work.
	return func() zoneSweeper { return &colSweeper{t: s.ct} }, func() {}, nil
}

type tableSource struct {
	t         *sqldb.Table
	heightDeg float64
}

func (s tableSource) height() float64 { return s.heightDeg }
func (s tableSource) pin() (func() zoneSweeper, func(), error) {
	if s.t == nil {
		return nil, nil, errNilRowSource
	}
	tv, release := s.t.AcquireView()
	if ct := tv.Columnar(); ct != nil {
		if err := checkColumnarZone(ct); err != nil {
			release()
			return nil, nil, err
		}
		return func() zoneSweeper { return &colSweeper{t: ct} }, release, nil
	}
	return func() zoneSweeper { return &rowSweeper{tv: tv} }, release, nil
}

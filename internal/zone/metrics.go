package zone

import (
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// sweepMetrics is the package's sweep instrumentation, attached by
// RegisterMetrics through an atomic pointer. Detached (the default, and
// the state every benchmark runs in) a sweep pays one pointer load; all
// counting happens once per Sweep call — the batch boundary — never per
// row: hits tally in a local on the emitting goroutine and flush as one
// Add, and worker busy time is one clock read per worker.
type sweepMetrics struct {
	sweeps   *telemetry.Counter
	probes   *telemetry.Counter
	groups   *telemetry.Counter
	hits     *telemetry.Counter
	errors   *telemetry.Counter
	duration *telemetry.Histogram

	// busyNanos accumulates wall-clock time sweep workers spent resident
	// (sequential sweeps count the whole drive). Exposed in seconds as
	// zone_worker_busy_seconds_total.
	busyNanos atomic.Int64
}

var sweepMet atomic.Pointer[sweepMetrics]

// RegisterMetrics attaches the package's sweep counters to r. Sweeps
// report probes answered, zone groups swept, hits emitted, worker busy
// time, and a per-sweep latency histogram; the I/O a sweep drives is
// attributed per pool by the pool_* families (a process-global sweep
// counter could not split io between concurrent sweeps honestly).
// Calling again rebinds to a new registry.
func RegisterMetrics(r *telemetry.Registry) {
	m := &sweepMetrics{
		sweeps:   r.NewCounter("zone_sweeps_total", "batched zone sweeps run"),
		probes:   r.NewCounter("zone_probes_total", "probes answered by sweeps"),
		groups:   r.NewCounter("zone_groups_total", "zone groups swept"),
		hits:     r.NewCounter("zone_hits_total", "neighbour rows emitted by sweeps"),
		errors:   r.NewCounter("zone_sweep_errors_total", "sweeps that returned an error (cancellation included)"),
		duration: r.NewHistogram("zone_sweep_seconds", "wall time of one Sweep call", nil),
	}
	r.NewCounterFunc("zone_worker_busy_seconds_total",
		"wall-clock time sweep workers spent resident",
		func() float64 { return float64(m.busyNanos.Load()) / 1e9 })
	sweepMet.Store(m)
}

// addBusy credits worker residency; nil-safe.
func (m *sweepMetrics) addBusy(d time.Duration) {
	if m != nil {
		m.busyNanos.Add(int64(d))
	}
}

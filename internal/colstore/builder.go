package colstore

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/storage"
)

// Builder materialises a columnar table from input that already arrives in
// storage order: grouped by an ascending Int64 group column and sorted by a
// Float64 sort column within each group — exactly the order a bulk
// clustered load's sorted run emits, so building the projection costs one
// sequential pass and one page write per segment, no sorting and no reads.
//
// A segment seals when its page fills or the group changes, so a group
// never spans a page boundary's worth of another group: each segment page
// belongs to exactly one group, which is what lets a sweep treat the
// per-group segment list as that zone's private, skippable page run.
type Builder struct {
	pool     *storage.Pool
	schema   Schema
	groupCol int
	sortCol  int
	cap      int
	// bucketPos maps a schema column index to its position within the
	// caller's per-kind Add slices.
	bucketPos      []int
	nints, nfloats int
	ints           [][]int64   // pending segment, column-major, per schema col
	floats         [][]float64 // (only the matching-kind slice is non-nil)
	n              int         // pending rows
	group          int64       // pending segment's group
	started        bool
	lastGroup      int64
	lastSort       float64
	segs           []SegmentMeta
	rows           int64
	done           bool
}

// NewBuilder starts a build into fresh pages of pool. groupCol must name an
// Int64 schema column and sortCol a Float64 one.
func NewBuilder(pool *storage.Pool, schema Schema, groupCol, sortCol int) (*Builder, error) {
	if len(schema) == 0 {
		return nil, fmt.Errorf("colstore: empty schema")
	}
	if groupCol < 0 || groupCol >= len(schema) || schema[groupCol].Kind != Int64 {
		return nil, fmt.Errorf("colstore: group column %d must be an Int64 schema column", groupCol)
	}
	if sortCol < 0 || sortCol >= len(schema) || schema[sortCol].Kind != Float64 {
		return nil, fmt.Errorf("colstore: sort column %d must be a Float64 schema column", sortCol)
	}
	if SegmentCapacity(len(schema)) < 1 {
		return nil, fmt.Errorf("colstore: %d columns do not fit a single row in a segment page", len(schema))
	}
	b := &Builder{
		pool:      pool,
		schema:    append(Schema(nil), schema...),
		groupCol:  groupCol,
		sortCol:   sortCol,
		cap:       SegmentCapacity(len(schema)),
		bucketPos: make([]int, len(schema)),
		ints:      make([][]int64, len(schema)),
		floats:    make([][]float64, len(schema)),
	}
	for ci, c := range schema {
		switch c.Kind {
		case Int64:
			b.bucketPos[ci] = b.nints
			b.nints++
		case Float64:
			b.bucketPos[ci] = b.nfloats
			b.nfloats++
		default:
			return nil, fmt.Errorf("colstore: column %s has unknown kind %d", c.Name, c.Kind)
		}
	}
	return b, nil
}

// Add appends one row: ints holds the Int64 columns' values in schema
// order, floats the Float64 columns'. Rows must arrive with the group
// column ascending and the sort column ascending within each group;
// out-of-order input is an error, not silently resorted.
func (b *Builder) Add(ints []int64, floats []float64) error {
	if b.done {
		return fmt.Errorf("colstore: Add after Finish")
	}
	if len(ints) != b.nints || len(floats) != b.nfloats {
		return fmt.Errorf("colstore: Add got %d int and %d float values, schema has %d and %d",
			len(ints), len(floats), b.nints, b.nfloats)
	}
	group := ints[b.bucketPos[b.groupCol]]
	sortV := floats[b.bucketPos[b.sortCol]]
	if b.started {
		if group < b.lastGroup || (group == b.lastGroup && sortV < b.lastSort) {
			return fmt.Errorf("colstore: row (group %d, sort %g) arrived after (group %d, sort %g); input must be grouped and sorted",
				group, sortV, b.lastGroup, b.lastSort)
		}
	}
	if b.n > 0 && (group != b.group || b.n == b.cap) {
		if err := b.flush(); err != nil {
			return err
		}
	}
	if b.n == 0 {
		b.group = group
	}
	for ci, c := range b.schema {
		switch c.Kind {
		case Int64:
			b.ints[ci] = append(b.ints[ci], ints[b.bucketPos[ci]])
		case Float64:
			b.floats[ci] = append(b.floats[ci], floats[b.bucketPos[ci]])
		}
	}
	b.n++
	b.started = true
	b.lastGroup, b.lastSort = group, sortV
	return nil
}

// flush writes the pending segment into a fresh page and records its
// directory entry. The sort column is ascending within the segment, so its
// first and last values are the min/max bounds.
func (b *Builder) flush() error {
	if b.n == 0 {
		return nil
	}
	h, err := b.pool.New()
	if err != nil {
		return err
	}
	sorts := b.floats[b.sortCol]
	minSort, maxSort := sorts[0], sorts[b.n-1]
	storage.PutColumnarHeader(h.Buf, storage.ColumnarHeader{
		Rows:    b.n,
		Group:   b.group,
		MinSort: minSort,
		MaxSort: maxSort,
	})
	off := storage.ColumnarHeaderSize
	for ci, c := range b.schema {
		switch c.Kind {
		case Int64:
			for _, v := range b.ints[ci] {
				binary.LittleEndian.PutUint64(h.Buf[off:], uint64(v))
				off += 8
			}
			b.ints[ci] = b.ints[ci][:0]
		case Float64:
			for _, v := range b.floats[ci] {
				binary.LittleEndian.PutUint64(h.Buf[off:], math.Float64bits(v))
				off += 8
			}
			b.floats[ci] = b.floats[ci][:0]
		}
	}
	b.segs = append(b.segs, SegmentMeta{
		Page:    h.ID,
		Group:   b.group,
		Rows:    b.n,
		MinSort: minSort,
		MaxSort: maxSort,
	})
	h.Release(true)
	b.rows += int64(b.n)
	b.n = 0
	return nil
}

// Finish seals the pending segment and returns the built table. The
// builder cannot be reused.
func (b *Builder) Finish() (*Table, error) {
	if b.done {
		return nil, fmt.Errorf("colstore: Finish after Finish")
	}
	if err := b.flush(); err != nil {
		return nil, err
	}
	b.done = true
	return &Table{
		pool:     b.pool,
		schema:   b.schema,
		groupCol: b.groupCol,
		sortCol:  b.sortCol,
		segs:     b.segs,
		rows:     b.rows,
	}, nil
}

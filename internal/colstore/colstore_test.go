package colstore

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/storage"
)

// testSchema mixes kinds and puts the group/sort columns away from index 0
// so the bucket mapping is exercised.
func testSchema() Schema {
	return Schema{
		{Name: "objid", Kind: Int64},
		{Name: "zoneid", Kind: Int64},
		{Name: "ra", Kind: Float64},
		{Name: "mag", Kind: Float64},
	}
}

const (
	tsGroupCol = 1 // zoneid
	tsSortCol  = 2 // ra
)

type testRow struct {
	objid, zoneid int64
	ra, mag       float64
}

// genRows produces a grouped, sorted fixture: some groups empty, some
// spanning several segments, equal sort keys included.
func genRows(seed int64, groups, maxPerGroup int) []testRow {
	rng := rand.New(rand.NewSource(seed))
	var rows []testRow
	id := int64(1)
	for g := 0; g < groups; g++ {
		n := rng.Intn(maxPerGroup)
		ras := make([]float64, n)
		for i := range ras {
			ras[i] = rng.Float64() * 360
			if i > 0 && rng.Intn(10) == 0 {
				ras[i] = ras[i-1] // duplicate sort keys must round-trip
			}
		}
		sort.Float64s(ras)
		for i := 0; i < n; i++ {
			rows = append(rows, testRow{
				objid: id, zoneid: int64(g * 3), ra: ras[i], mag: rng.NormFloat64(),
			})
			id++
		}
	}
	return rows
}

func buildRows(t *testing.T, pool *storage.Pool, rows []testRow) *Table {
	t.Helper()
	b, err := NewBuilder(pool, testSchema(), tsGroupCol, tsSortCol)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := b.Add([]int64{r.objid, r.zoneid}, []float64{r.ra, r.mag}); err != nil {
			t.Fatal(err)
		}
	}
	tb, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

// TestBuildScanRoundTrip is the core property test: whatever grouped,
// sorted rows go into the Builder come back bit-identical from the
// Scanner, in order, under a pool small enough to force eviction and
// re-reads from the store.
func TestBuildScanRoundTrip(t *testing.T) {
	rows := genRows(20040801, 25, 4*SegmentCapacity(len(testSchema())))
	pool := storage.NewPool(storage.NewMemStore(), storage.PoolOptions{Frames: 8}) // tiny: segments evict
	tb := buildRows(t, pool, rows)

	if got := tb.NumRows(); got != int64(len(rows)) {
		t.Fatalf("NumRows = %d, want %d", got, len(rows))
	}
	readsBefore := pool.Stats().LogicalReads
	sc := tb.NewScanner()
	var got []testRow
	loads := 0
	for _, m := range tb.Segments() {
		if err := sc.Load(m); err != nil {
			t.Fatal(err)
		}
		loads++
		objid, zoneid := sc.Ints(0), sc.Ints(1)
		ra, mag := sc.Floats(2), sc.Floats(3)
		if sc.NumRows() != m.Rows || len(ra) != m.Rows {
			t.Fatalf("segment %v: scanner has %d rows, directory %d", m, sc.NumRows(), m.Rows)
		}
		if ra[0] != m.MinSort || ra[len(ra)-1] != m.MaxSort {
			t.Fatalf("segment %v: sort bounds [%g, %g] disagree with directory", m, ra[0], ra[len(ra)-1])
		}
		for r := 0; r < sc.NumRows(); r++ {
			if zoneid[r] != m.Group {
				t.Fatalf("segment of group %d holds a row of group %d", m.Group, zoneid[r])
			}
			got = append(got, testRow{objid: objid[r], zoneid: zoneid[r], ra: ra[r], mag: mag[r]})
		}
	}
	if len(got) != len(rows) {
		t.Fatalf("scanned %d rows, built %d", len(got), len(rows))
	}
	for i := range rows {
		if got[i] != rows[i] {
			t.Fatalf("row %d: scanned %+v, built %+v", i, got[i], rows[i])
		}
	}
	// Segment reads go through the shared pool: every Load is a counted
	// logical read, the accounting the paper's I/O column relies on.
	if reads := pool.Stats().LogicalReads - readsBefore; reads != int64(loads) {
		t.Errorf("scan performed %d logical reads for %d segment loads", reads, loads)
	}
}

// TestScannerLazyColumnDecode pins the first-touch decode contract: Load
// alone decodes nothing, a touched column decodes once and round-trips,
// untouched columns stay raw, and the next Load invalidates everything.
func TestScannerLazyColumnDecode(t *testing.T) {
	rows := genRows(11, 6, 2*SegmentCapacity(len(testSchema())))
	pool := storage.NewPool(storage.NewMemStore(), storage.PoolOptions{Frames: 64})
	tb := buildRows(t, pool, rows)
	segs := tb.Segments()
	if len(segs) < 2 {
		t.Fatalf("fixture built only %d segments", len(segs))
	}
	sc := tb.NewScanner()
	if err := sc.Load(segs[0]); err != nil {
		t.Fatal(err)
	}
	for ci, dec := range sc.decoded {
		if dec {
			t.Errorf("Load eagerly decoded column %d", ci)
		}
	}
	ra := sc.Floats(tsSortCol)
	if !sc.decoded[tsSortCol] {
		t.Error("Floats did not mark the touched column decoded")
	}
	if sc.decoded[0] || sc.decoded[tsGroupCol] || sc.decoded[3] {
		t.Error("touching one column decoded others")
	}
	if ra[0] != segs[0].MinSort || ra[len(ra)-1] != segs[0].MaxSort {
		t.Errorf("lazily decoded sort column [%g, %g] disagrees with directory %+v", ra[0], ra[len(ra)-1], segs[0])
	}
	// The second touch must reuse the decoded scratch, not re-decode.
	ra2 := sc.Floats(tsSortCol)
	if &ra[0] != &ra2[0] {
		t.Error("second touch re-decoded the column into a fresh slice")
	}
	if err := sc.Load(segs[1]); err != nil {
		t.Fatal(err)
	}
	for ci, dec := range sc.decoded {
		if dec {
			t.Errorf("Load left column %d marked decoded for the previous segment", ci)
		}
	}
	if got := sc.Ints(tsGroupCol); got[0] != segs[1].Group {
		t.Errorf("after re-Load, group column reads %d, want %d", got[0], segs[1].Group)
	}
}

// TestGroupSegments pins the directory lookup: every group's segments, in
// order, and empty slices for absent groups.
func TestGroupSegments(t *testing.T) {
	rows := genRows(7, 12, 3*SegmentCapacity(len(testSchema())))
	pool := storage.NewPool(storage.NewMemStore(), storage.PoolOptions{Frames: 64})
	tb := buildRows(t, pool, rows)

	wantRows := map[int64]int{}
	for _, r := range rows {
		wantRows[r.zoneid]++
	}
	for g := int64(-2); g < 40; g++ {
		segs := tb.GroupSegments(g)
		n := 0
		for _, m := range segs {
			if m.Group != g {
				t.Fatalf("GroupSegments(%d) returned a segment of group %d", g, m.Group)
			}
			n += m.Rows
		}
		if n != wantRows[g] {
			t.Errorf("GroupSegments(%d) covers %d rows, want %d", g, n, wantRows[g])
		}
	}
}

// TestSegmentPacking checks that a group larger than one page splits into
// full segments plus a remainder, and that a group change seals a segment
// early (no page mixes groups).
func TestSegmentPacking(t *testing.T) {
	cap := SegmentCapacity(len(testSchema()))
	var rows []testRow
	for i := 0; i < 2*cap+1; i++ {
		rows = append(rows, testRow{objid: int64(i), zoneid: 5, ra: float64(i)})
	}
	rows = append(rows, testRow{objid: 9999, zoneid: 6, ra: 0})
	pool := storage.NewPool(storage.NewMemStore(), storage.PoolOptions{Frames: 64})
	tb := buildRows(t, pool, rows)
	segs := tb.Segments()
	wantRowCounts := []int{cap, cap, 1, 1}
	if len(segs) != len(wantRowCounts) {
		t.Fatalf("built %d segments, want %d", len(segs), len(wantRowCounts))
	}
	for i, m := range segs {
		if m.Rows != wantRowCounts[i] {
			t.Errorf("segment %d holds %d rows, want %d", i, m.Rows, wantRowCounts[i])
		}
	}
}

// TestBuilderRejectsBadInput pins the ordering and shape contracts: the
// builder refuses to silently resort.
func TestBuilderRejectsBadInput(t *testing.T) {
	pool := storage.NewPool(storage.NewMemStore(), storage.PoolOptions{Frames: 64})
	newB := func() *Builder {
		b, err := NewBuilder(pool, testSchema(), tsGroupCol, tsSortCol)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	add := func(b *Builder, zone int64, ra float64) error {
		return b.Add([]int64{1, zone}, []float64{ra, 0})
	}

	b := newB()
	if err := add(b, 4, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := add(b, 3, 2.0); err == nil || !strings.Contains(err.Error(), "grouped") {
		t.Errorf("descending group accepted (err = %v)", err)
	}

	b = newB()
	if err := add(b, 4, 2.0); err != nil {
		t.Fatal(err)
	}
	if err := add(b, 4, 1.0); err == nil || !strings.Contains(err.Error(), "sorted") {
		t.Errorf("descending sort key accepted (err = %v)", err)
	}

	b = newB()
	if err := b.Add([]int64{1}, []float64{1, 2}); err == nil {
		t.Error("short int slice accepted")
	}
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := add(b, 1, 1); err == nil {
		t.Error("Add after Finish accepted")
	}
	if _, err := b.Finish(); err == nil {
		t.Error("double Finish accepted")
	}

	if _, err := NewBuilder(pool, testSchema(), tsSortCol, tsSortCol); err == nil {
		t.Error("float group column accepted")
	}
	if _, err := NewBuilder(pool, testSchema(), tsGroupCol, tsGroupCol); err == nil {
		t.Error("int sort column accepted")
	}
	if _, err := NewBuilder(pool, nil, 0, 0); err == nil {
		t.Error("empty schema accepted")
	}
	wide := make(Schema, 1021) // capacity (8192-32)/(8*1021) = 0
	for i := range wide {
		wide[i] = Column{Name: "f", Kind: Float64}
	}
	wide[0] = Column{Name: "g", Kind: Int64}
	if _, err := NewBuilder(pool, wide, 0, 1); err == nil {
		t.Error("schema too wide for one row per page accepted")
	}
}

// Package colstore implements the engine's column-major storage: segment
// pages holding one group's rows (a zone's, in the paper's workload) with
// every column packed as a contiguous array of 8-byte values, plus an
// in-memory directory carrying per-segment min/max sort keys for window
// skipping.
//
// The layout exists for one access pattern: scan-heavy batch extracts
// whose inner loop is arithmetic over a few numeric columns — the shape of
// the zone sweep (chord tests over ra/cx/cy/cz) and of the grid-warehouse
// line of work (Iqbal et al.) the ROADMAP points at. A row store answers
// such a scan by decoding a varint-and-bitmap payload per row; a segment
// page answers it by handing the scan raw []float64 slices.
//
// Segments live in ordinary 8 KiB pages (storage.PageKindColumnar) fetched
// through the same pinning buffer pool as the B+tree, so every segment read
// and write is counted by the same Stats behind the paper's I/O column. A
// Builder materialises segments from input that is already grouped and
// sorted — e.g. straight from the (zone, ra)-sorted run a bulk zone-table
// load produces — and a Scanner re-reads one segment at a time into reused
// column scratch.
//
// colstore knows nothing about SQL or zones: sqldb attaches a colstore
// table to a row table as its "columnar projection"
// (sqldb.Table.SetColumnar), and internal/zone builds the projection and
// sweeps it.
package colstore

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/storage"
)

// Kind is a column's physical type. Every column is stored 8 bytes wide,
// so a segment's capacity depends only on the column count.
type Kind uint8

const (
	// Int64 columns hold signed integers (ids, zone numbers).
	Int64 Kind = iota
	// Float64 columns hold IEEE-754 doubles, bit-exact round trip.
	Float64
)

// Column describes one column of a columnar table.
type Column struct {
	Name string
	Kind Kind
}

// Schema is the ordered column list of a columnar table.
type Schema []Column

// Equal reports whether two schemas have identical column names and kinds.
func (s Schema) Equal(o Schema) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// SegmentCapacity returns the maximum rows per segment page for a schema of
// ncols columns.
func SegmentCapacity(ncols int) int {
	return (storage.PageSize - storage.ColumnarHeaderSize) / (8 * ncols)
}

// SegmentMeta is one directory entry: where a segment lives and the bounds
// a scan needs to decide — without I/O — whether to fetch it. MinSort and
// MaxSort are the segment's smallest and largest sort-column values; a scan
// whose key window ends below MinSort or starts above MaxSort skips the
// page entirely, the columnar analogue of a B+tree descent pruning leaves.
type SegmentMeta struct {
	Page    storage.PageID
	Group   int64
	Rows    int
	MinSort float64
	MaxSort float64
}

// Table is a built columnar table: an ordered run of segments, grouped
// contiguously by the group column and sorted by the sort column within
// each group. The directory (segment metadata) is in-memory catalog state,
// like a sqldb table's root page id; the column data itself is all in
// buffer-pool pages.
type Table struct {
	pool     *storage.Pool
	schema   Schema
	groupCol int
	sortCol  int
	segs     []SegmentMeta
	rows     int64
}

// Schema returns the table's column list. Callers must not modify it.
func (t *Table) Schema() Schema { return t.schema }

// GroupCol returns the schema index of the grouping column.
func (t *Table) GroupCol() int { return t.groupCol }

// SortCol returns the schema index of the sort column.
func (t *Table) SortCol() int { return t.sortCol }

// NumRows returns the total row count.
func (t *Table) NumRows() int64 { return t.rows }

// Segments returns the full directory in storage order. Callers must not
// modify it.
func (t *Table) Segments() []SegmentMeta { return t.segs }

// GroupSegments returns the directory entries of one group (in sort-column
// order), or an empty slice if the group holds no rows. Groups are
// contiguous and ascending by construction, so this is a binary search.
func (t *Table) GroupSegments(group int64) []SegmentMeta {
	lo := sort.Search(len(t.segs), func(i int) bool { return t.segs[i].Group >= group })
	hi := lo
	for hi < len(t.segs) && t.segs[hi].Group == group {
		hi++
	}
	return t.segs[lo:hi]
}

// Scanner reads segments back one at a time into scratch slices that are
// reused across Load calls — a scan loop allocates once, not per segment.
// Columns decode lazily: Load copies the raw page once and each column's
// array materialises on its first Ints/Floats touch, so a sweep that
// rejects a whole segment on its leading columns (ra and the unit vector,
// in the zone workload) never pays to decode the photometry tail. Each
// worker of a parallel sweep owns its own Scanner; the underlying buffer
// pool is safe for concurrent use.
type Scanner struct {
	t       *Table
	rows    int
	loaded  storage.PageID // segment page currently staged (InvalidPageID: none)
	page    []byte         // raw copy of the loaded segment page (pin released)
	decoded []bool         // per schema column: scratch slice holds this segment
	ints    [][]int64
	floats  [][]float64
}

// NewScanner returns a scanner over the table.
func (t *Table) NewScanner() *Scanner {
	return &Scanner{
		t:       t,
		decoded: make([]bool, len(t.schema)),
		ints:    make([][]int64, len(t.schema)),
		floats:  make([][]float64, len(t.schema)),
	}
}

// Load fetches one segment page through the buffer pool (counted I/O) and
// stages it for column access, replacing the previously loaded segment.
// No column decodes here: the page bytes are copied (so the pool pin is
// released immediately) and each array materialises on first touch.
//
// Re-loading the segment already staged is free: the scanner is the
// columnar sweep's leaf cache, so a probe run that revisits one segment
// page (the candidate searcher walks overlapping windows probe by probe)
// skips the pool and keeps its decoded column arrays. Segment pages are
// immutable once built, so the staged copy can never go stale.
func (s *Scanner) Load(m SegmentMeta) error {
	if m.Page == s.loaded && m.Page != storage.InvalidPageID {
		return nil
	}
	s.loaded = storage.InvalidPageID
	h, err := s.t.pool.Get(m.Page)
	if err != nil {
		return err
	}
	hdr, err := storage.ReadColumnarHeader(h.Buf)
	if err != nil {
		h.Release(false)
		return err
	}
	if hdr.Rows != m.Rows || hdr.Group != m.Group {
		h.Release(false)
		return fmt.Errorf("colstore: segment page %d holds group %d (%d rows), directory says group %d (%d rows)",
			m.Page, hdr.Group, hdr.Rows, m.Group, m.Rows)
	}
	need := storage.ColumnarHeaderSize + 8*hdr.Rows*len(s.t.schema)
	if cap(s.page) < need {
		s.page = make([]byte, need)
	}
	s.page = s.page[:need]
	copy(s.page, h.Buf[:need])
	h.Release(false)
	for ci := range s.decoded {
		s.decoded[ci] = false
	}
	s.rows = hdr.Rows
	s.loaded = m.Page
	return nil
}

// colData returns the loaded segment's raw bytes for schema column ci.
// Every column is 8 bytes wide, so the array starts at a fixed stride.
func (s *Scanner) colData(ci int) []byte {
	off := storage.ColumnarHeaderSize + 8*s.rows*ci
	return s.page[off : off+8*s.rows]
}

// NumRows returns the loaded segment's row count.
func (s *Scanner) NumRows() int { return s.rows }

// Ints returns the loaded segment's values for schema column ci, which must
// be an Int64 column. The first touch after a Load decodes the array; the
// slice is overwritten by the next Load.
func (s *Scanner) Ints(ci int) []int64 {
	if s.t.schema[ci].Kind != Int64 {
		panic(fmt.Sprintf("colstore: column %d (%s) is not Int64", ci, s.t.schema[ci].Name))
	}
	if !s.decoded[ci] {
		data := s.colData(ci)
		buf := s.ints[ci]
		if cap(buf) < s.rows {
			buf = make([]int64, s.rows)
		}
		buf = buf[:s.rows]
		for r := range buf {
			buf[r] = int64(binary.LittleEndian.Uint64(data[8*r:]))
		}
		s.ints[ci] = buf
		s.decoded[ci] = true
	}
	return s.ints[ci][:s.rows]
}

// Floats returns the loaded segment's values for schema column ci, which
// must be a Float64 column. The first touch after a Load decodes the array;
// the slice is overwritten by the next Load.
func (s *Scanner) Floats(ci int) []float64 {
	if s.t.schema[ci].Kind != Float64 {
		panic(fmt.Sprintf("colstore: column %d (%s) is not Float64", ci, s.t.schema[ci].Name))
	}
	if !s.decoded[ci] {
		data := s.colData(ci)
		buf := s.floats[ci]
		if cap(buf) < s.rows {
			buf = make([]float64, s.rows)
		}
		buf = buf[:s.rows]
		for r := range buf {
			buf[r] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*r:]))
		}
		s.floats[ci] = buf
		s.decoded[ci] = true
	}
	return s.floats[ci][:s.rows]
}

package sqldb

import (
	"regexp"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// TestDBMetricsCounters drives one of each statement verb through an
// instrumented DB and checks the verb, plan-rule, rows-out, and
// rows-affected families scrape with the right values.
func TestDBMetricsCounters(t *testing.T) {
	db := planFixture(t)
	reg := telemetry.NewRegistry()
	db.EnableMetrics(reg, "test")

	rows := mustQuery(t, db, "SELECT zoneid, ra FROM Zone")
	if rows.Len() != 12 {
		t.Fatalf("fixture: got %d rows", rows.Len())
	}
	mustExec(t, db, "INSERT INTO Zone VALUES (9, 99, 0, 0), (9, 100, 0, 0)")
	mustExec(t, db, "UPDATE Zone SET val = 1 WHERE zoneid = 9")
	mustExec(t, db, "DELETE FROM Zone WHERE zoneid = 9")
	if _, err := db.Explain("EXPLAIN ANALYZE SELECT ra FROM Zone WHERE zoneid = 2"); err != nil {
		t.Fatal(err)
	}

	// A streaming query flushes its row count at Close.
	it, err := db.QueryIter("SELECT ra FROM Zone")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for it.Next() {
		n++
	}
	it.Close()
	if n != 12 {
		t.Fatalf("iter: got %d rows", n)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`sql_statements_total{db="test",verb="select"} 2`,
		`sql_statements_total{db="test",verb="insert"} 1`,
		`sql_statements_total{db="test",verb="update"} 1`,
		`sql_statements_total{db="test",verb="delete"} 1`,
		`sql_statements_total{db="test",verb="explain"} 1`,
		`sql_rows_out_total{db="test"} 24`,
		`sql_rows_affected_total{db="test"} 6`,
		`sql_plan_rules_total{db="test",rule="SeqScan"} 2`,
		`sql_plan_rules_total{db="test",rule="RangeScan"}`,
		`pool_logical_reads_total{pool="test"}`,
		`reclaim_retired_pages_total{pool="test"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full scrape:\n%s", out)
	}

	// sql_query_seconds histogram counted every statement above.
	if !regexp.MustCompile(`sql_query_seconds_count\{db="test"\} \d`).MatchString(out) {
		t.Errorf("query duration histogram missing:\n%s", out)
	}
}

// TestExplainAnalyzeOperatorTiming pins the span surface of EXPLAIN
// ANALYZE: every executed operator line carries a wall-time annotation,
// and plain EXPLAIN carries none (the timing flag — and its defer — only
// exists under ANALYZE).
func TestExplainAnalyzeOperatorTiming(t *testing.T) {
	db := planFixture(t)
	analyzed := mustExplain(t, db, "EXPLAIN ANALYZE SELECT ra FROM Zone WHERE zoneid = 2 ORDER BY ra")
	msRe := regexp.MustCompile(`\(\d+\.\d{3} ms\)`)
	for _, line := range strings.Split(analyzed, "\n") {
		if !msRe.MatchString(line) {
			t.Errorf("operator line missing wall time: %q", line)
		}
	}

	plain := mustExplain(t, db, "SELECT ra FROM Zone WHERE zoneid = 2")
	if msRe.MatchString(plain) {
		t.Errorf("plain EXPLAIN shows timings:\n%s", plain)
	}
}

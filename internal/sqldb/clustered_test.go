package sqldb

import (
	"math/rand"
	"testing"
)

func TestCreateTableClustered(t *testing.T) {
	db := Open(256)
	cols := []Column{
		{Name: "zoneid", Type: TInt},
		{Name: "ra", Type: TFloat},
		{Name: "objid", Type: TInt},
	}
	tbl, err := db.CreateTableClustered("z", cols, []string{"zoneid", "ra"})
	if err != nil {
		t.Fatal(err)
	}
	// Inserts in random order; scans come back in clustered order.
	rng := rand.New(rand.NewSource(1))
	const n = 5000
	for i := 0; i < n; i++ {
		err := tbl.Insert([]Value{
			Int(int64(rng.Intn(40))),
			Float(float64(rng.Intn(100000)) / 100),
			Int(int64(i)),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	cur, err := tbl.Scan()
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	var prevZ int64 = -1 << 62
	prevRa := -1.0
	count := 0
	for cur.Next() {
		z, _ := cur.Row()[0].AsInt()
		ra, _ := cur.Row()[1].AsFloat()
		if z < prevZ || (z == prevZ && ra < prevRa) {
			t.Fatalf("clustered order violated at row %d: (%d, %g) after (%d, %g)", count, z, ra, prevZ, prevRa)
		}
		prevZ, prevRa = z, ra
		count++
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("scan returned %d rows, want %d", count, n)
	}

	// Composite-prefix range scans work as on a reclustered table.
	rcur, err := tbl.RangeScanPrefix(
		[]Value{Int(7), Float(100)},
		[]Value{Int(7), Float(500)},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer rcur.Close()
	got := 0
	for rcur.Next() {
		z, _ := rcur.Row()[0].AsInt()
		ra, _ := rcur.Row()[1].AsFloat()
		if z != 7 || ra < 100 || ra > 500 {
			t.Fatalf("range scan leaked row (%d, %g)", z, ra)
		}
		got++
	}
	if got == 0 {
		t.Fatal("range scan found nothing in a populated band")
	}

	// Validation: unknown key column, duplicate table name.
	if _, err := db.CreateTableClustered("bad", cols, []string{"nope"}); err == nil {
		t.Error("unknown clustered key column accepted")
	}
	if _, err := db.CreateTableClustered("z", cols, []string{"zoneid"}); err == nil {
		t.Error("duplicate table accepted")
	}
}

func TestClusteredEqualsReclustered(t *testing.T) {
	// Loading into a natively clustered table must give the same scan
	// order as loading a heap and running CREATE CLUSTERED INDEX.
	db := Open(512)
	cols := []Column{{Name: "k", Type: TInt}, {Name: "v", Type: TFloat}}
	direct, err := db.CreateTableClustered("direct", cols, []string{"k"})
	if err != nil {
		t.Fatal(err)
	}
	heap, err := db.CreateTable("heap", cols, "")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		row := []Value{Int(int64(rng.Intn(500))), Float(float64(i))}
		if err := direct.Insert(row); err != nil {
			t.Fatal(err)
		}
		if err := heap.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := heap.Recluster([]string{"k"}); err != nil {
		t.Fatal(err)
	}
	a, err := db.Query("SELECT k FROM direct")
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.Query("SELECT k FROM heap")
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("row counts differ: %d vs %d", a.Len(), b.Len())
	}
	for a.Next() && b.Next() {
		if a.Row()[0].I != b.Row()[0].I {
			t.Fatal("clustered orders differ between direct load and recluster")
		}
	}
}

package sqldb

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// ctxFixture builds a table big enough that the row-batch cancellation
// checkpoints (every cancelBatch rows) fire several times per scan.
func ctxFixture(t testing.TB, rows int) *DB {
	t.Helper()
	db := Open(256)
	if _, err := db.Exec("CREATE TABLE nums (id bigint PRIMARY KEY, x real)"); err != nil {
		t.Fatal(err)
	}
	data := make([][]Value, rows)
	for i := range data {
		data[i] = []Value{Int(int64(i)), Float(float64(i % 97))}
	}
	tab, _ := db.Table("nums")
	if err := tab.BulkInsert(data); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestQueryContextCancelMidScan blocks a scan on a scalar function, cancels
// the statement's context, then releases the scan: the next checkpoint must
// abort the query with a context.Canceled-wrapped error instead of
// finishing the scan.
func TestQueryContextCancelMidScan(t *testing.T) {
	db := ctxFixture(t, 4*cancelBatch)
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	db.RegisterScalar("blocker", func(args []Value) (Value, error) {
		once.Do(func() {
			close(started)
			<-release
		})
		return args[0], nil
	})

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := db.QueryContext(ctx, "SELECT COUNT(*) FROM nums WHERE blocker(x) >= 0")
		errc <- err
	}()
	<-started
	cancel()
	close(release)

	err := <-errc
	if err == nil {
		t.Fatal("cancelled query finished successfully")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
}

// TestQueryContextDeadline runs a deliberately slow scan under a short
// deadline and expects context.DeadlineExceeded through the operator tree.
func TestQueryContextDeadline(t *testing.T) {
	db := ctxFixture(t, 8*cancelBatch)
	db.RegisterScalar("slow", func(args []Value) (Value, error) {
		time.Sleep(50 * time.Microsecond)
		return args[0], nil
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := db.QueryContext(ctx, "SELECT COUNT(*) FROM nums WHERE slow(x) >= 0")
	if err == nil {
		t.Fatal("deadline-expired query finished successfully")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
	}
}

// TestExecContextCancel pins cancellation on the write path: UPDATE scans
// observe the same checkpoints as SELECT.
func TestExecContextCancel(t *testing.T) {
	db := ctxFixture(t, 4*cancelBatch)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired before execution starts
	_, err := db.ExecContext(ctx, "UPDATE nums SET x = x + 1")
	if err == nil {
		t.Fatal("cancelled UPDATE ran to completion")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	// The table must still answer queries after the aborted write.
	rows, err := db.Query("SELECT COUNT(*) FROM nums")
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	if got := rows.Row()[0].I; got != int64(4*cancelBatch) {
		t.Fatalf("row count after aborted update = %d", got)
	}
}

// TestQueryIterContextCancel verifies the streaming path surfaces
// cancellation through RowIter.Err.
func TestQueryIterContextCancel(t *testing.T) {
	db := ctxFixture(t, 4*cancelBatch)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	it, err := db.QueryIterContext(ctx, "SELECT id, x FROM nums")
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	n := 0
	for it.Next() {
		n++
		if n == 10 {
			cancel()
		}
	}
	if it.Err() == nil {
		t.Fatalf("iterator drained %d rows after cancel without error", n)
	}
	if !errors.Is(it.Err(), context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", it.Err())
	}
}

// TestQueryContextBackground pins that a background context adds no
// cancellation probe (newCancelCheck returns nil) and queries work as
// before.
func TestQueryContextBackground(t *testing.T) {
	db := ctxFixture(t, cancelBatch)
	rows, err := db.QueryContext(context.Background(), "SELECT COUNT(*) FROM nums WHERE x >= 0")
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	if got := rows.Row()[0].I; got != int64(cancelBatch) {
		t.Fatalf("count = %d", got)
	}
}

package sqldb

import (
	"time"

	"repro/internal/telemetry"
)

// dbMetrics is the database's statement-level instrumentation, attached
// by EnableMetrics and read through an atomic pointer: a DB without
// metrics (every benchmark fixture) pays one pointer load and a nil
// check per statement, nothing per row. Counting happens at statement
// boundaries — verb and plan-rule counters once per statement, rows-out
// once per result set — never inside operator loops.
type dbMetrics struct {
	name     string
	verbs    *telemetry.CounterVec // sql_statements_total{db,verb}
	rules    *telemetry.CounterVec // sql_plan_rules_total{db,rule}
	rowsOut  *telemetry.CounterVec // sql_rows_out_total{db}
	affected *telemetry.CounterVec // sql_rows_affected_total{db}
	duration *telemetry.HistogramVec
}

// EnableMetrics registers the database's statement counters, plan-rule
// counters, rows-out/affected counters, and query latency histogram with
// r under the given database name, along with the underlying pool and
// reclaimer families. Call once at service start; calling again rebinds
// to a new registry.
func (db *DB) EnableMetrics(r *telemetry.Registry, name string) {
	m := &dbMetrics{
		name: name,
		verbs: r.NewCounterVec("sql_statements_total",
			"statements executed by verb", "db", "verb"),
		rules: r.NewCounterVec("sql_plan_rules_total",
			"physical plan operators selected by the planner's rules", "db", "rule"),
		rowsOut: r.NewCounterVec("sql_rows_out_total",
			"result rows returned to clients", "db"),
		affected: r.NewCounterVec("sql_rows_affected_total",
			"rows written by INSERT/UPDATE/DELETE", "db"),
		duration: r.NewHistogramVec("sql_query_seconds",
			"statement wall time", nil, "db"),
	}
	db.met.Store(m)
	db.pool.MetricsInto(r, name)
	db.rec.MetricsInto(r, name)
}

// metrics returns the attached metrics, or nil. All dbMetrics methods
// are nil-safe so call sites stay unconditional.
func (db *DB) metrics() *dbMetrics { return db.met.Load() }

// statement records one executed statement: its verb and wall time since
// start.
func (m *dbMetrics) statement(verb string, start time.Time) {
	if m == nil {
		return
	}
	m.verbs.With(m.name, verb).Inc()
	m.duration.With(m.name).Observe(time.Since(start).Seconds())
}

// now returns the statement start time, or the zero time when metrics are
// detached so the unobserved path never reads the clock.
func (m *dbMetrics) now() time.Time {
	if m == nil {
		return time.Time{}
	}
	return time.Now()
}

// rule records one planner rule selection (the physical operator chosen).
func (m *dbMetrics) rule(name string) {
	if m == nil {
		return
	}
	m.rules.With(m.name, name).Inc()
}

// out records result rows returned to a client.
func (m *dbMetrics) out(n int64) {
	if m == nil || n == 0 {
		return
	}
	m.rowsOut.With(m.name).Add(n)
}

// wrote records rows written by a DML statement.
func (m *dbMetrics) wrote(n int64) {
	if m == nil || n == 0 {
		return
	}
	m.affected.With(m.name).Add(n)
}

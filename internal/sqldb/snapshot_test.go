package sqldb

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// This file is the concurrency harness for snapshot isolation: a
// property test interleaving every writer path with concurrent readers,
// a columnar-projection pin, DDL racing queries, and a drop-while-
// iterating reclamation check. All of it runs under -race in CI
// (`go test -race -run 'Concurrent|Snapshot'`).

// tableState is one published (row count, order-independent checksum)
// pair. The checksum is SUM(k*131 + v), computable both by the writer's
// model and by a reader's plain SQL.
type tableState struct{ count, sum int64 }

// stateSet records every state the table has ever been published in (the
// writer adds the predicted state BEFORE applying the write, so the set
// over-approximates; a torn read can never be a member).
type stateSet struct {
	mu sync.Mutex
	m  map[tableState]bool
}

func (s *stateSet) add(st tableState)      { s.mu.Lock(); s.m[st] = true; s.mu.Unlock() }
func (s *stateSet) has(st tableState) bool { s.mu.Lock(); defer s.mu.Unlock(); return s.m[st] }
func modelState(m map[int64]int64) tableState {
	st := tableState{count: int64(len(m))}
	for k, v := range m {
		st.sum += k*131 + v
	}
	return st
}

// TestSnapshotPropertyConcurrentHistories is the tentpole's property
// test: a single writer applies 1000 randomly interleaved operations —
// BulkInsert, trickle INSERT, ReplaceAll, UPDATE, DELETE — against one
// table while four readers continuously run SELECT (and the occasional
// EXPLAIN ANALYZE) against it. Every read must observe exactly one
// published version: its (COUNT, SUM) pair matches some write-ordered
// state of the history, never a mix of two.
func TestSnapshotPropertyConcurrentHistories(t *testing.T) {
	const ops = 1000
	db := Open(8192)
	if _, err := db.Exec("CREATE TABLE t (k bigint PRIMARY KEY, v bigint)"); err != nil {
		t.Fatal(err)
	}
	tab, _ := db.Table("t")

	legal := &stateSet{m: map[tableState]bool{{0, 0}: true}}
	var fail atomic.Pointer[string]
	report := func(msg string) { fail.CompareAndSwap(nil, &msg) }
	var done atomic.Bool
	var wg sync.WaitGroup

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; !done.Load(); i++ {
				if i%64 == 63 {
					if _, err := db.Explain("EXPLAIN ANALYZE SELECT COUNT(*) FROM t"); err != nil {
						report(fmt.Sprintf("reader %d explain: %v", r, err))
						return
					}
					continue
				}
				var st tableState
				if i%2 == 0 {
					rows, err := db.Query("SELECT COUNT(*), SUM(k*131 + v) FROM t")
					if err != nil {
						report(fmt.Sprintf("reader %d query: %v", r, err))
						return
					}
					rows.Next()
					st = tableState{count: rows.Row()[0].I}
					if !rows.Row()[1].IsNull() {
						st.sum = rows.Row()[1].I
					}
				} else {
					// The streaming path: the iterator owns its snapshot,
					// so the whole drain reads one version.
					it, err := db.QueryIter("SELECT k, v FROM t")
					if err != nil {
						report(fmt.Sprintf("reader %d iter: %v", r, err))
						return
					}
					for it.Next() {
						row := it.Row()
						st.count++
						st.sum += row[0].I*131 + row[1].I
					}
					err = it.Err()
					it.Close()
					if err != nil {
						report(fmt.Sprintf("reader %d iter drain: %v", r, err))
						return
					}
				}
				if !legal.has(st) {
					report(fmt.Sprintf("reader %d torn read: count=%d sum=%d matches no published state", r, st.count, st.sum))
					return
				}
			}
		}(r)
	}

	rng := rand.New(rand.NewSource(7))
	model := make(map[int64]int64)
	nextKey := int64(0)
	freshRows := func(n int) [][]Value {
		rows := make([][]Value, n)
		for i := range rows {
			k, v := nextKey, rng.Int63n(1000)
			nextKey++
			model[k] = v
			rows[i] = []Value{Int(k), Int(v)}
		}
		return rows
	}
	anyKey := func() int64 {
		for k := range model {
			return k
		}
		return -1
	}
	for i := 0; i < ops && fail.Load() == nil; i++ {
		op := rng.Intn(5)
		if len(model) > 1500 {
			op = 4 // keep the table (and each rebuild) bounded
		}
		switch op {
		case 0: // bulk load
			rows := freshRows(1 + rng.Intn(64))
			legal.add(modelState(model))
			if err := tab.BulkInsert(rows); err != nil {
				t.Fatalf("op %d BulkInsert: %v", i, err)
			}
		case 1: // trickle insert (delta overlay path)
			rows := freshRows(1)
			legal.add(modelState(model))
			if err := tab.Insert(rows[0]); err != nil {
				t.Fatalf("op %d Insert: %v", i, err)
			}
		case 2: // replace everything
			for k := range model {
				delete(model, k)
			}
			rows := freshRows(rng.Intn(100))
			legal.add(modelState(model))
			if err := tab.ReplaceAll(rows); err != nil {
				t.Fatalf("op %d ReplaceAll: %v", i, err)
			}
		case 3: // UPDATE through SQL
			bound, nv := anyKey(), rng.Int63n(1000)
			for k := range model {
				if k <= bound {
					model[k] = nv
				}
			}
			legal.add(modelState(model))
			if _, err := db.Exec("UPDATE t SET v = ? WHERE k <= ?", Int(nv), Int(bound)); err != nil {
				t.Fatalf("op %d UPDATE: %v", i, err)
			}
		case 4: // DELETE through SQL
			bound := anyKey()
			for k := range model {
				if k <= bound {
					delete(model, k)
				}
			}
			legal.add(modelState(model))
			if _, err := db.Exec("DELETE FROM t WHERE k <= ?", Int(bound)); err != nil {
				t.Fatalf("op %d DELETE: %v", i, err)
			}
		}
	}
	done.Store(true)
	wg.Wait()
	if msg := fail.Load(); msg != nil {
		t.Fatal(*msg)
	}

	// The history is over: the table must match the model exactly, and
	// once the last reader guard is gone every superseded version's pages
	// must have been reclaimed.
	rows, err := db.Query("SELECT COUNT(*), SUM(k*131 + v) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	want := modelState(model)
	got := tableState{count: rows.Row()[0].I}
	if !rows.Row()[1].IsNull() {
		got.sum = rows.Row()[1].I
	}
	if got != want {
		t.Fatalf("final state = %+v, want %+v", got, want)
	}
	if n := db.Reclaimer().Pending(); n != 0 {
		t.Errorf("%d pages still pending reclamation with no live snapshots", n)
	}
}

// TestSnapshotColumnarPinned pins the projection-detach fix: the columnar
// projection rides the table version, so a reader's scan — columnar or
// not — always covers exactly its snapshot's rows, even while writers
// replace the contents and rebuild the projection underneath it.
func TestSnapshotColumnarPinned(t *testing.T) {
	const n = 400
	db := Open(8192)
	zt, err := db.CreateTableClustered("z",
		[]Column{{Name: "zoneid", Type: TInt}, {Name: "ra", Type: TFloat}, {Name: "val", Type: TInt}},
		[]string{"zoneid", "ra"})
	if err != nil {
		t.Fatal(err)
	}
	load := func(gen int64) {
		rows := make([][]Value, n)
		for i := range rows {
			rows[i] = []Value{Int(int64(i / 10)), Float(float64(i % 10)), Int(gen)}
		}
		if err := zt.ReplaceAll(rows); err != nil {
			t.Fatalf("gen %d: %v", gen, err)
		}
		if _, err := zt.BuildColumnarProjection(); err != nil {
			t.Fatalf("gen %d projection: %v", gen, err)
		}
	}
	load(0)
	if plan, err := db.Explain("SELECT SUM(val) FROM z"); err != nil || !strings.Contains(plan, "ColumnarScan") {
		t.Fatalf("projection not used (err=%v):\n%s", err, plan)
	}

	// Reader 1: point-in-time iterators. Every drained row must carry the
	// same generation — a snapshot can never mix two.
	var fail atomic.Pointer[string]
	report := func(msg string) { fail.CompareAndSwap(nil, &msg) }
	var done atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for !done.Load() {
				it, err := db.QueryIter("SELECT val FROM z")
				if err != nil {
					report(fmt.Sprintf("reader %d: %v", r, err))
					return
				}
				gen, count := int64(-1), 0
				for it.Next() {
					v := it.Row()[0].I
					if gen == -1 {
						gen = v
					} else if v != gen {
						report(fmt.Sprintf("reader %d: generations %d and %d in one snapshot", r, gen, v))
						it.Close()
						return
					}
					count++
				}
				err = it.Err()
				it.Close()
				if err != nil {
					report(fmt.Sprintf("reader %d drain: %v", r, err))
					return
				}
				if count != n {
					report(fmt.Sprintf("reader %d: %d rows, want %d", r, count, n))
					return
				}
			}
		}(r)
	}
	// Reader 2: aggregates, which take the ColumnarScan path whenever the
	// snapshot's version carries the projection.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !done.Load() {
			rows, err := db.Query("SELECT COUNT(*), SUM(val) FROM z")
			if err != nil {
				report(fmt.Sprintf("agg reader: %v", err))
				return
			}
			rows.Next()
			count, sum := rows.Row()[0].I, rows.Row()[1].I
			if count != n || sum%int64(n) != 0 {
				report(fmt.Sprintf("agg reader: count=%d sum=%d is no single generation", count, sum))
				return
			}
		}
	}()

	for gen := int64(1); gen <= 30; gen++ {
		load(gen)
	}
	done.Store(true)
	wg.Wait()
	if msg := fail.Load(); msg != nil {
		t.Fatal(*msg)
	}
}

// TestSnapshotDDLConcurrent races CREATE, DROP, and RENAME against
// in-flight queries: a query either resolves a table (and then sees its
// full, untorn contents) or fails cleanly with unknown-table — never a
// partial catalog or freed pages.
func TestSnapshotDDLConcurrent(t *testing.T) {
	const rounds = 200
	db := Open(8192)
	if _, err := db.Exec("CREATE TABLE stable (k bigint PRIMARY KEY, v bigint)"); err != nil {
		t.Fatal(err)
	}
	tab, _ := db.Table("stable")
	rows := make([][]Value, 100)
	for i := range rows {
		rows[i] = []Value{Int(int64(i)), Int(int64(i))}
	}
	if err := tab.BulkInsert(rows); err != nil {
		t.Fatal(err)
	}

	var fail atomic.Pointer[string]
	report := func(msg string) { fail.CompareAndSwap(nil, &msg) }
	var done atomic.Bool
	var churn, readers sync.WaitGroup

	// Churner 1: create-and-drop throwaway tables.
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; i < rounds; i++ {
			name := fmt.Sprintf("tmp%d", i%8)
			tt, err := db.CreateTable(name, []Column{{Name: "x", Type: TInt}}, "x")
			if err != nil {
				report(fmt.Sprintf("create %s: %v", name, err))
				return
			}
			if err := tt.Insert([]Value{Int(int64(i))}); err != nil {
				report(fmt.Sprintf("insert %s: %v", name, err))
				return
			}
			if err := db.DropTable(name, false); err != nil {
				report(fmt.Sprintf("drop %s: %v", name, err))
				return
			}
		}
	}()
	// Churner 2: rename the stable table away and back.
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; i < rounds; i++ {
			if err := db.RenameTable("stable", "stable2"); err != nil {
				report(fmt.Sprintf("rename away: %v", err))
				return
			}
			if err := db.RenameTable("stable2", "stable"); err != nil {
				report(fmt.Sprintf("rename back: %v", err))
				return
			}
		}
	}()
	// Readers: the table is either absent (clean error) or whole.
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for !done.Load() {
				rows, err := db.Query("SELECT COUNT(*), SUM(v) FROM stable")
				if err != nil {
					if !strings.Contains(err.Error(), "unknown table") {
						report(fmt.Sprintf("reader %d: %v", r, err))
						return
					}
					continue
				}
				rows.Next()
				if c, s := rows.Row()[0].I, rows.Row()[1].I; c != 100 || s != 4950 {
					report(fmt.Sprintf("reader %d: count=%d sum=%d, want 100/4950", r, c, s))
					return
				}
				// A snapshot's catalog is immutable: every listed name
				// must resolve within that same snapshot.
				snap := db.Snapshot()
				for _, name := range snap.TableNames() {
					if _, ok := snap.View(name); !ok {
						report(fmt.Sprintf("reader %d: %q listed but unresolvable in one snapshot", r, name))
						snap.Close()
						return
					}
				}
				snap.Close()
			}
		}(r)
	}

	// Readers run for as long as the churn does.
	churn.Wait()
	done.Store(true)
	readers.Wait()
	if msg := fail.Load(); msg != nil {
		t.Fatal(*msg)
	}
	for _, name := range db.TableNames() {
		if strings.HasPrefix(name, "tmp") {
			t.Errorf("throwaway table %q survived", name)
		}
	}
	if n := db.Reclaimer().Pending(); n != 0 {
		t.Errorf("%d pages still pending reclamation after DDL churn", n)
	}
}

// TestSnapshotDropWhileIterating pins deferred reclamation end to end: an
// iterator opened before DROP TABLE keeps reading the dropped table's
// pages; they are only deallocated once the iterator closes.
func TestSnapshotDropWhileIterating(t *testing.T) {
	db := Open(4096)
	if _, err := db.Exec("CREATE TABLE victim (k bigint PRIMARY KEY, v bigint)"); err != nil {
		t.Fatal(err)
	}
	tab, _ := db.Table("victim")
	const n = 5000
	if err := tab.BulkInsertFunc(n, func(i int) []Value {
		return []Value{Int(int64(i)), Int(int64(i) * 3)}
	}); err != nil {
		t.Fatal(err)
	}

	it, err := db.QueryIter("SELECT k, v FROM victim")
	if err != nil {
		t.Fatal(err)
	}
	// Read a prefix, then drop the table out from under the iterator.
	for i := 0; i < 10; i++ {
		if !it.Next() {
			t.Fatalf("premature end at row %d: %v", i, it.Err())
		}
	}
	if err := db.DropTable("victim", false); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.Table("victim"); ok {
		t.Fatal("victim still in catalog after drop")
	}
	if db.Reclaimer().Pending() == 0 {
		t.Fatal("drop retired no pages while an iterator was live")
	}

	// The iterator's snapshot keeps the dropped pages alive: the drain
	// must deliver every remaining row intact.
	count := 10
	for it.Next() {
		row := it.Row()
		if row[1].I != row[0].I*3 {
			t.Fatalf("row %d torn after drop: %v", count, row)
		}
		count++
	}
	if err := it.Err(); err != nil {
		t.Fatalf("drain after drop: %v", err)
	}
	it.Close()
	if count != n {
		t.Fatalf("iterator saw %d rows, want %d", count, n)
	}
	if got := db.Reclaimer().Pending(); got != 0 {
		t.Fatalf("%d pages still pending after the last guard released", got)
	}
}

package sqldb

import (
	"fmt"

	"repro/internal/colstore"
)

// BuildColumnarProjection materialises a column-major snapshot of the
// table's current rows (internal/colstore segment pages) and attaches it
// as the table's columnar projection: the work of CREATE COLUMNAR
// PROJECTION ON t. The planner's ColumnarScan and the batched zone sweeps
// then iterate packed column arrays instead of decoding B+tree rows.
//
// The projection mirrors the table column for column, so it can answer any
// scan the row store answers. That forces three shape requirements, all
// satisfied by the workload's zone-shaped tables (Zone, CandZone):
//
//   - every column is numeric (TInt or TFloat; colstore packs 8-byte
//     values, no strings and no null bitmap),
//   - the clustered key leads with an int column (the segment group — a
//     zone id) followed by a float column (the in-group sort — ra), so one
//     clustered-order scan feeds the colstore.Builder already grouped and
//     sorted,
//   - no stored value is NULL.
//
// The build runs under the table's writer lock: the version it scans is
// the version the projection attaches to, so a view that carries a
// non-nil Columnar() always covers exactly that view's rows. Any later
// write publishes a version without the projection.
func (t *Table) BuildColumnarProjection() (*colstore.Table, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	v := t.version.Load()
	tv := TableView{t: t, v: v}
	keyCols := tv.KeyCols()
	if len(keyCols) < 2 {
		return nil, fmt.Errorf("sqldb: COLUMNAR PROJECTION ON %s: clustered key needs at least (int, float) leading columns, have %d key column(s)",
			t.Name, len(keyCols))
	}
	groupCol, sortCol := keyCols[0], keyCols[1]
	if t.Cols[groupCol].Type != TInt {
		return nil, fmt.Errorf("sqldb: COLUMNAR PROJECTION ON %s: leading key column %s must be an integer (the segment group)",
			t.Name, t.Cols[groupCol].Name)
	}
	if t.Cols[sortCol].Type != TFloat {
		return nil, fmt.Errorf("sqldb: COLUMNAR PROJECTION ON %s: second key column %s must be a float (the in-group sort)",
			t.Name, t.Cols[sortCol].Name)
	}
	sch := make(colstore.Schema, len(t.Cols))
	nints, nfloats := 0, 0
	for i, c := range t.Cols {
		switch c.Type {
		case TInt:
			sch[i] = colstore.Column{Name: c.Name, Kind: colstore.Int64}
			nints++
		case TFloat:
			sch[i] = colstore.Column{Name: c.Name, Kind: colstore.Float64}
			nfloats++
		default:
			return nil, fmt.Errorf("sqldb: COLUMNAR PROJECTION ON %s: column %s has non-numeric type %s",
				t.Name, c.Name, c.Type)
		}
	}
	b, err := colstore.NewBuilder(t.pool, sch, groupCol, sortCol)
	if err != nil {
		return nil, err
	}
	// One clustered-order scan feeds the builder: the key prefix (group,
	// sort) ascends by construction, which is exactly the input order the
	// builder demands. The scan needs no reclaimer guard — we hold the
	// writer lock, and only the lock holder retires pages.
	cur, err := tv.Scan()
	if err != nil {
		return nil, err
	}
	defer cur.Close()
	ints := make([]int64, nints)
	floats := make([]float64, nfloats)
	for cur.Next() {
		row := cur.Row()
		ni, nf := 0, 0
		for i, c := range t.Cols {
			v := row[i]
			if v.IsNull() {
				return nil, fmt.Errorf("sqldb: COLUMNAR PROJECTION ON %s: column %s holds NULL (segments pack values only)",
					t.Name, c.Name)
			}
			if c.Type == TInt {
				ints[ni] = v.I
				ni++
			} else {
				floats[nf] = v.F
				nf++
			}
		}
		if err := b.Add(ints, floats); err != nil {
			return nil, err
		}
	}
	if err := cur.Err(); err != nil {
		return nil, err
	}
	ct, err := b.Finish()
	if err != nil {
		return nil, err
	}
	// Attach to the exact version we scanned. SetColumnar would re-lock
	// t.mu, so publish inline: same tree, projection added.
	nv := *v
	nv.seq++
	nv.columnar = ct
	t.version.Store(&nv)
	return ct, nil
}

// projectionCovers reports whether ct is a full-width columnar projection
// of t's schema — same column count, names and kinds in order — so a
// ColumnarScan can stand in for a row scan. Projections built by
// BuildColumnarProjection and by the zone installer both qualify; anything
// narrower keeps the row plan.
func projectionCovers(t *Table, ct *colstore.Table) bool {
	if ct == nil {
		return false
	}
	sch := ct.Schema()
	if len(sch) != len(t.Cols) {
		return false
	}
	for i, c := range t.Cols {
		switch c.Type {
		case TInt:
			if sch[i].Kind != colstore.Int64 {
				return false
			}
		case TFloat:
			if sch[i].Kind != colstore.Float64 {
				return false
			}
		default:
			return false
		}
		if sch[i].Name != c.Name {
			return false
		}
	}
	return true
}

package sqldb

import (
	"bytes"
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/storage"
)

// Bulk-load path: rows are encoded once, sorted by encoded clustered key,
// and fed page-at-a-time to storage.BulkLoader — replacing the per-row
// root-to-leaf descent of Insert. This is the MyDB-style batch ingest the
// paper's workload is made of (spImportGalaxy, spZone rebuilds, the
// k-correction load): bulk load first, query after.

// sortedRunBytes caps one in-memory run of the SortedRunBuilder before it
// is sealed (sorted and set aside). Sealing keeps individual sorts short
// and bounds the cost of ingesting mostly-sorted input; sealed runs merge
// back into one stream at load time.
const sortedRunBytes = 16 << 20

// kvRef locates one encoded pair inside its run's slab. Offsets stay valid
// as the slab grows because append copies the prefix unchanged.
type kvRef struct {
	off        int
	klen, vlen int
}

// sortedRun is a sealed, key-sorted batch of encoded pairs.
type sortedRun struct {
	slab []byte
	ents []kvRef
}

func (r *sortedRun) key(i int) []byte {
	e := r.ents[i]
	return r.slab[e.off : e.off+e.klen]
}

func (r *sortedRun) value(i int) []byte {
	e := r.ents[i]
	return r.slab[e.off+e.klen : e.off+e.klen+e.vlen]
}

func (r *sortedRun) sort() {
	// Stable, so equal keys keep insertion order within a run (Emit's
	// contract; the cross-run heap breaks ties on run sequence).
	sort.SliceStable(r.ents, func(a, b int) bool {
		return bytes.Compare(r.key(a), r.key(b)) < 0
	})
}

// SortedRunBuilder buffers encoded (key, value) pairs, sorts them by key,
// and spills oversized batches into sealed runs, so bulk-load callers need
// not pre-sort their rows. Emit merges the runs back into one ascending
// stream — the sort half of a bulk CREATE CLUSTERED INDEX.
type SortedRunBuilder struct {
	runs []*sortedRun
	cur  *sortedRun
	n    int
}

// NewSortedRunBuilder returns an empty builder.
func NewSortedRunBuilder() *SortedRunBuilder {
	return &SortedRunBuilder{cur: &sortedRun{}}
}

// Add buffers one pair (both slices are copied).
func (b *SortedRunBuilder) Add(key, value []byte) {
	r := b.cur
	off := len(r.slab)
	r.slab = append(r.slab, key...)
	r.slab = append(r.slab, value...)
	r.ents = append(r.ents, kvRef{off: off, klen: len(key), vlen: len(value)})
	b.n++
	if len(r.slab) >= sortedRunBytes {
		b.seal()
	}
}

// Len returns the number of buffered pairs.
func (b *SortedRunBuilder) Len() int { return b.n }

func (b *SortedRunBuilder) seal() {
	if len(b.cur.ents) == 0 {
		return
	}
	b.cur.sort()
	b.runs = append(b.runs, b.cur)
	b.cur = &sortedRun{}
}

// runCursor is one run's position in the merge heap. seq is the run's
// seal order, the tie-break that keeps the merge stable on equal keys.
type runCursor struct {
	run *sortedRun
	pos int
	seq int
}

type runHeap []runCursor

func (h runHeap) Len() int { return len(h) }
func (h runHeap) Less(a, b int) bool {
	if c := bytes.Compare(h[a].run.key(h[a].pos), h[b].run.key(h[b].pos)); c != 0 {
		return c < 0
	}
	return h[a].seq < h[b].seq
}
func (h runHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *runHeap) Push(x any)   { *h = append(*h, x.(runCursor)) }
func (h *runHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Emit seals the current run and streams every pair in ascending key order.
// Equal keys surface in insertion order (runs are merged stably), so the
// caller can detect duplicates by comparing consecutive keys.
func (b *SortedRunBuilder) Emit(fn func(key, value []byte) error) error {
	b.seal()
	switch len(b.runs) {
	case 0:
		return nil
	case 1:
		r := b.runs[0]
		for i := range r.ents {
			if err := fn(r.key(i), r.value(i)); err != nil {
				return err
			}
		}
		return nil
	}
	h := make(runHeap, 0, len(b.runs))
	for seq, r := range b.runs {
		if len(r.ents) > 0 {
			h = append(h, runCursor{run: r, seq: seq})
		}
	}
	heap.Init(&h)
	for len(h) > 0 {
		c := &h[0]
		if err := fn(c.run.key(c.pos), c.run.value(c.pos)); err != nil {
			return err
		}
		c.pos++
		if c.pos == len(c.run.ents) {
			heap.Pop(&h)
		} else {
			heap.Fix(&h, 0)
		}
	}
	return nil
}

// BulkInsert adds rows through the bottom-up load path: every row is
// encoded once (Identity fill and coercion exactly as Insert), sorted by
// encoded clustered key, and written into packed B+tree pages without any
// tree descents. Into a non-empty table it merges the new run with the
// existing rows into a fresh tree — still one sequential pass. PRIMARY KEY
// uniqueness is enforced against both the batch and the existing rows.
//
// Rowids (and therefore the scan order of equal clustered keys) are
// assigned in slice order, matching a sequence of Insert calls, and
// subsequent Insert calls continue from the correct rowid and identity.
func (t *Table) BulkInsert(rows [][]Value) error {
	return t.BulkInsertFunc(len(rows), func(i int) []Value { return rows[i] })
}

// BulkInsertFunc is BulkInsert over a row generator instead of a
// materialised slice: rowAt(i) is called once for each i in [0, n), in
// order, and may return the same backing slice every time — each row is
// encoded into the sorted run before the next call. Large loads whose rows
// are derived from an in-memory source (spZone, spImportGalaxy) stream
// through one scratch row instead of allocating n of them.
func (t *Table) BulkInsertFunc(n int, rowAt func(i int) []Value) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	oldRowID, oldIdentity := t.nextRowID, t.nextIdentity
	if err := t.bulkInsertLocked(n, rowAt); err != nil {
		// No rows landed, so no ids were really consumed: put the counters
		// back so a corrected retry numbers rows as if the failed batch
		// never happened.
		t.nextRowID, t.nextIdentity = oldRowID, oldIdentity
		return err
	}
	return nil
}

func (t *Table) bulkInsertLocked(n int, rowAt func(i int) []Value) error {
	if n == 0 {
		return nil
	}
	b := NewSortedRunBuilder()
	vals := make([]Value, len(t.Cols))
	var keyBuf, rowBuf []byte // per-row scratch; Add copies into the run slab
	for ri := 0; ri < n; ri++ {
		row := rowAt(ri)
		if len(row) != len(t.Cols) {
			return fmt.Errorf("sqldb: INSERT into %s has %d values for %d columns", t.Name, len(row), len(t.Cols))
		}
		copy(vals, row)
		for i, c := range t.Cols {
			if c.Identity && vals[i].IsNull() {
				vals[i] = Int(t.nextIdentity)
				t.nextIdentity++
			}
			if !vals[i].NeedsCoerce(c.Type) {
				continue // bulk ingest's common case: already typed
			}
			var err error
			vals[i], err = vals[i].CoerceTo(c.Type)
			if err != nil {
				return fmt.Errorf("sqldb: table %s column %s: %w", t.Name, c.Name, err)
			}
		}
		rowid := t.nextRowID
		t.nextRowID++
		key, err := t.appendKey(keyBuf[:0], vals, rowid)
		if err != nil {
			return err
		}
		keyBuf = key
		data, err := appendRow(rowBuf[:0], t.Cols, vals)
		if err != nil {
			return err
		}
		rowBuf = data
		b.Add(key, data)
	}
	return t.loadRunLocked(b)
}

// loadRunLocked replaces t.tree with a bulk-loaded tree holding the
// existing rows merged with the builder's pairs. Caller holds t.mu. On
// error the table is left unchanged (the old tree stays in place).
func (t *Table) loadRunLocked(b *SortedRunBuilder) error {
	loader, err := storage.NewBulkLoader(t.pool)
	if err != nil {
		return err
	}
	var added int64
	var prevKey []byte
	add := func(key, value []byte) error {
		if t.Unique && prevKey != nil && bytes.Equal(prevKey, key) {
			return fmt.Errorf("sqldb: duplicate primary key in table %s", t.Name)
		}
		prevKey = append(prevKey[:0], key...)
		return loader.Add(key, value)
	}
	if t.rows == 0 {
		err = b.Emit(func(key, value []byte) error {
			added++
			return add(key, value)
		})
	} else {
		err = t.mergeExistingLocked(b, func(key, value []byte, fresh bool) error {
			if fresh {
				added++
			}
			return add(key, value)
		})
	}
	if err != nil {
		loader.Abort()
		return err
	}
	tree, err := loader.Finish()
	if err != nil {
		return err
	}
	t.tree = tree
	t.rows += added
	t.columnar = nil // the projection no longer covers every row
	return nil
}

// mergeExistingLocked streams the union of the table's current rows and the
// builder's pairs in ascending key order. Existing rows win ties so a
// unique-key duplicate in the batch surfaces as two consecutive equal keys.
func (t *Table) mergeExistingLocked(b *SortedRunBuilder, fn func(key, value []byte, fresh bool) error) error {
	cur, err := t.tree.First()
	if err != nil {
		return err
	}
	defer cur.Close()
	err = b.Emit(func(key, value []byte) error {
		for cur.Valid() && bytes.Compare(cur.Key(), key) <= 0 {
			if err := fn(cur.Key(), cur.Value(), false); err != nil {
				return err
			}
			if err := cur.Next(); err != nil {
				return err
			}
		}
		return fn(key, value, true)
	})
	if err != nil {
		return err
	}
	for cur.Valid() {
		if err := fn(cur.Key(), cur.Value(), false); err != nil {
			return err
		}
		if err := cur.Next(); err != nil {
			return err
		}
	}
	return nil
}

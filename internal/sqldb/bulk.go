package sqldb

import (
	"bytes"
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/storage"
)

// Bulk-load path: rows are encoded once, sorted by encoded clustered key,
// and fed page-at-a-time to storage.BulkLoader — replacing the per-row
// root-to-leaf descent of Insert. This is the MyDB-style batch ingest the
// paper's workload is made of (spImportGalaxy, spZone rebuilds, the
// k-correction load): bulk load first, query after.

// sortedRunBytes caps one in-memory run of the SortedRunBuilder before it
// is sealed (sorted and set aside). Sealing keeps individual sorts short
// and bounds the cost of ingesting mostly-sorted input; sealed runs merge
// back into one stream at load time.
const sortedRunBytes = 16 << 20

// kvRef locates one encoded pair inside its run's slab. Offsets stay valid
// as the slab grows because append copies the prefix unchanged.
type kvRef struct {
	off        int
	klen, vlen int
}

// sortedRun is a sealed, key-sorted batch of encoded pairs.
type sortedRun struct {
	slab []byte
	ents []kvRef
}

func (r *sortedRun) key(i int) []byte {
	e := r.ents[i]
	return r.slab[e.off : e.off+e.klen]
}

func (r *sortedRun) value(i int) []byte {
	e := r.ents[i]
	return r.slab[e.off+e.klen : e.off+e.klen+e.vlen]
}

func (r *sortedRun) sort() {
	// Stable, so equal keys keep insertion order within a run (Emit's
	// contract; the cross-run heap breaks ties on run sequence).
	sort.SliceStable(r.ents, func(a, b int) bool {
		return bytes.Compare(r.key(a), r.key(b)) < 0
	})
}

// SortedRunBuilder buffers encoded (key, value) pairs, sorts them by key,
// and spills oversized batches into sealed runs, so bulk-load callers need
// not pre-sort their rows. Emit merges the runs back into one ascending
// stream — the sort half of a bulk CREATE CLUSTERED INDEX.
type SortedRunBuilder struct {
	runs []*sortedRun
	cur  *sortedRun
	n    int
}

// NewSortedRunBuilder returns an empty builder.
func NewSortedRunBuilder() *SortedRunBuilder {
	return &SortedRunBuilder{cur: &sortedRun{}}
}

// Add buffers one pair (both slices are copied).
func (b *SortedRunBuilder) Add(key, value []byte) {
	r := b.cur
	off := len(r.slab)
	r.slab = append(r.slab, key...)
	r.slab = append(r.slab, value...)
	r.ents = append(r.ents, kvRef{off: off, klen: len(key), vlen: len(value)})
	b.n++
	if len(r.slab) >= sortedRunBytes {
		b.seal()
	}
}

// Len returns the number of buffered pairs.
func (b *SortedRunBuilder) Len() int { return b.n }

func (b *SortedRunBuilder) seal() {
	if len(b.cur.ents) == 0 {
		return
	}
	b.cur.sort()
	b.runs = append(b.runs, b.cur)
	b.cur = &sortedRun{}
}

// runCursor is one run's position in the merge heap. seq is the run's
// seal order, the tie-break that keeps the merge stable on equal keys.
type runCursor struct {
	run *sortedRun
	pos int
	seq int
}

type runHeap []runCursor

func (h runHeap) Len() int { return len(h) }
func (h runHeap) Less(a, b int) bool {
	if c := bytes.Compare(h[a].run.key(h[a].pos), h[b].run.key(h[b].pos)); c != 0 {
		return c < 0
	}
	return h[a].seq < h[b].seq
}
func (h runHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *runHeap) Push(x any)   { *h = append(*h, x.(runCursor)) }
func (h *runHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Emit seals the current run and streams every pair in ascending key order.
// Equal keys surface in insertion order (runs are merged stably), so the
// caller can detect duplicates by comparing consecutive keys.
func (b *SortedRunBuilder) Emit(fn func(key, value []byte) error) error {
	b.seal()
	switch len(b.runs) {
	case 0:
		return nil
	case 1:
		r := b.runs[0]
		for i := range r.ents {
			if err := fn(r.key(i), r.value(i)); err != nil {
				return err
			}
		}
		return nil
	}
	h := make(runHeap, 0, len(b.runs))
	for seq, r := range b.runs {
		if len(r.ents) > 0 {
			h = append(h, runCursor{run: r, seq: seq})
		}
	}
	heap.Init(&h)
	for len(h) > 0 {
		c := &h[0]
		if err := fn(c.run.key(c.pos), c.run.value(c.pos)); err != nil {
			return err
		}
		c.pos++
		if c.pos == len(c.run.ents) {
			heap.Pop(&h)
		} else {
			heap.Fix(&h, 0)
		}
	}
	return nil
}

// BulkInsert adds rows through the bottom-up load path: every row is
// encoded once (Identity fill and coercion exactly as Insert), sorted by
// encoded clustered key, and written into packed B+tree pages without any
// tree descents. Into a non-empty table it merges the new run with the
// existing rows into a fresh tree — still one sequential pass. PRIMARY KEY
// uniqueness is enforced against both the batch and the existing rows.
//
// Rowids (and therefore the scan order of equal clustered keys) are
// assigned in slice order, matching a sequence of Insert calls, and
// subsequent Insert calls continue from the correct rowid and identity.
// The rebuilt tree publishes as one new version: concurrent readers keep
// the version they started with, and a failed load publishes nothing.
func (t *Table) BulkInsert(rows [][]Value) error {
	return t.BulkInsertFunc(len(rows), func(i int) []Value { return rows[i] })
}

// BulkInsertFunc is BulkInsert over a row generator instead of a
// materialised slice: rowAt(i) is called once for each i in [0, n), in
// order, and may return the same backing slice every time — each row is
// encoded into the sorted run before the next call. Large loads whose rows
// are derived from an in-memory source (spZone, spImportGalaxy) stream
// through one scratch row instead of allocating n of them.
func (t *Table) BulkInsertFunc(n int, rowAt func(i int) []Value) error {
	if n == 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	v := t.version.Load()
	nv, err := t.mergedVersion(v, n, rowAt)
	if err != nil {
		return err
	}
	t.publishLocked(v, nv)
	return nil
}

// mergedVersion builds the version that BulkInsert publishes: v's rows
// (tree plus overlay) merged with n new ones into a fresh bulk-built
// tree. On error nothing is published and the abandoned pages are
// deallocated immediately.
func (t *Table) mergedVersion(v *tableVersion, n int, rowAt func(i int) []Value) (*tableVersion, error) {
	nv := *v
	nv.seq++
	b, err := t.encodeRun(&nv, n, rowAt)
	if err != nil {
		return nil, err
	}
	tree, pages, added, err := t.buildTree(v, b, v.unique)
	if err != nil {
		return nil, err
	}
	nv.tree, nv.treePages, nv.treeRows = tree, pages, v.rows()+added
	nv.delta = nil
	nv.columnar = nil // the projection no longer covers every row
	return &nv, nil
}

// flushedVersion merges v's tree and overlay into a fresh tree — the
// overlay-threshold compaction Insert triggers. Row set, counters, and
// key layout are unchanged; no uniqueness re-check is needed because
// overlay and tree keys are disjoint by construction.
func (t *Table) flushedVersion(v *tableVersion) (*tableVersion, error) {
	tree, pages, _, err := t.buildTree(v, nil, false)
	if err != nil {
		return nil, err
	}
	nv := *v
	nv.tree, nv.treePages, nv.treeRows = tree, pages, v.rows()
	nv.delta = nil
	return &nv, nil
}

// rebuiltVersion builds a replace-everything version (ReplaceAll,
// Recluster): rowids and identity restart at 1 and the previous contents
// do not carry over. keyCols/unique become the new version's key layout,
// so a reclustering publishes ordering and layout in one atomic step.
func (t *Table) rebuiltVersion(v *tableVersion, keyCols []int, unique bool, n int, rowAt func(i int) []Value) (*tableVersion, error) {
	nv := &tableVersion{
		seq: v.seq + 1, keyCols: keyCols, unique: unique,
		nextRowID: 1, nextIdentity: 1,
	}
	if n == 0 {
		tree, err := storage.NewBTree(t.pool)
		if err != nil {
			return nil, err
		}
		nv.tree, nv.treePages = tree, []storage.PageID{tree.Root()}
		return nv, nil
	}
	b, err := t.encodeRun(nv, n, rowAt)
	if err != nil {
		return nil, err
	}
	tree, pages, added, err := t.buildTree(nil, b, unique)
	if err != nil {
		return nil, err
	}
	nv.tree, nv.treePages, nv.treeRows = tree, pages, added
	return nv, nil
}

// encodeRun encodes n rows into a sorted run, assigning rowids and
// identity values from (and advancing) nv's counters and encoding keys
// with nv's key layout. nv is the under-construction version, private to
// the calling writer.
func (t *Table) encodeRun(nv *tableVersion, n int, rowAt func(i int) []Value) (*SortedRunBuilder, error) {
	b := NewSortedRunBuilder()
	tv := TableView{t: t, v: nv}
	vals := make([]Value, len(t.Cols))
	var keyBuf, rowBuf []byte // per-row scratch; Add copies into the run slab
	for ri := 0; ri < n; ri++ {
		row := rowAt(ri)
		if len(row) != len(t.Cols) {
			return nil, fmt.Errorf("sqldb: INSERT into %s has %d values for %d columns", t.Name, len(row), len(t.Cols))
		}
		copy(vals, row)
		for i, c := range t.Cols {
			if c.Identity && vals[i].IsNull() {
				vals[i] = Int(nv.nextIdentity)
				nv.nextIdentity++
			}
			if !vals[i].NeedsCoerce(c.Type) {
				continue // bulk ingest's common case: already typed
			}
			var err error
			vals[i], err = vals[i].CoerceTo(c.Type)
			if err != nil {
				return nil, fmt.Errorf("sqldb: table %s column %s: %w", t.Name, c.Name, err)
			}
		}
		rowid := nv.nextRowID
		nv.nextRowID++
		key, err := tv.appendKey(keyBuf[:0], vals, rowid)
		if err != nil {
			return nil, err
		}
		keyBuf = key
		data, err := appendRow(rowBuf[:0], t.Cols, vals)
		if err != nil {
			return nil, err
		}
		rowBuf = data
		b.Add(key, data)
	}
	return b, nil
}

// buildTree streams the union of v's rows (tree plus overlay; nil v or an
// empty one means a fresh load) and the builder's pairs (nil b means
// none) into a fresh bulk-built tree, returning the tree, its complete
// page inventory, and the count of builder pairs loaded. On error the
// partially built pages are deallocated before returning — they were
// never published, so nothing can reference them.
func (t *Table) buildTree(v *tableVersion, b *SortedRunBuilder, unique bool) (*storage.BTree, []storage.PageID, int64, error) {
	loader, err := storage.NewBulkLoader(t.pool)
	if err != nil {
		return nil, nil, 0, err
	}
	abort := func() {
		loader.Abort()
		for _, id := range loader.Pages() {
			_ = t.pool.Dealloc(id)
		}
	}
	var added int64
	var prevKey []byte
	add := func(key, value []byte) error {
		if unique && prevKey != nil && bytes.Equal(prevKey, key) {
			return fmt.Errorf("sqldb: duplicate primary key in table %s", t.Name)
		}
		prevKey = append(prevKey[:0], key...)
		return loader.Add(key, value)
	}
	if b == nil {
		b = NewSortedRunBuilder()
	}
	if v == nil || v.rows() == 0 {
		err = b.Emit(func(key, value []byte) error {
			added++
			return add(key, value)
		})
	} else {
		err = t.mergeVersion(v, b, func(key, value []byte, fresh bool) error {
			if fresh {
				added++
			}
			return add(key, value)
		})
	}
	if err != nil {
		abort()
		return nil, nil, 0, err
	}
	tree, err := loader.Finish()
	if err != nil {
		return nil, nil, 0, err
	}
	return tree, loader.Pages(), added, nil
}

// mergeVersion streams the union of v's rows (its tree merged with its
// sorted overlay — disjoint key sets) and the builder's pairs in
// ascending key order. Existing rows win ties so a unique-key duplicate
// in the batch surfaces as two consecutive equal keys.
func (t *Table) mergeVersion(v *tableVersion, b *SortedRunBuilder, fn func(key, value []byte, fresh bool) error) error {
	cur, err := v.tree.First()
	if err != nil {
		return err
	}
	defer cur.Close()
	delta, di := v.delta, 0
	// emitExistingTo streams existing pairs with key <= bound (all of them
	// when bound is nil), taking the smaller of the tree's and overlay's
	// current key at each step.
	emitExistingTo := func(bound []byte) error {
		for {
			treeOK := cur.Valid()
			deltaOK := di < len(delta)
			if !treeOK && !deltaOK {
				return nil
			}
			useDelta := deltaOK && (!treeOK || bytes.Compare(delta[di].key, cur.Key()) < 0)
			var k, val []byte
			if useDelta {
				k, val = delta[di].key, delta[di].val
			} else {
				k, val = cur.Key(), cur.Value()
			}
			if bound != nil && bytes.Compare(k, bound) > 0 {
				return nil
			}
			if err := fn(k, val, false); err != nil {
				return err
			}
			if useDelta {
				di++
			} else if err := cur.Next(); err != nil {
				return err
			}
		}
	}
	if err := b.Emit(func(key, value []byte) error {
		if err := emitExistingTo(key); err != nil {
			return err
		}
		return fn(key, value, true)
	}); err != nil {
		return err
	}
	return emitExistingTo(nil)
}

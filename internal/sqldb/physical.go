package sqldb

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/colstore"
)

// Physical planning and execution: the second half of query compilation.
// planSelect lowers a bound logicalPlan (plan.go) into a tree of physOps —
// Volcano-style iterators that also know how to describe themselves, so
// EXPLAIN prints exactly the tree that runs. Heavy work (opening cursors,
// materialising a join's build side, running a batched sweep) happens on
// the first next() call, never at construction: building a plan is free,
// which is what lets EXPLAIN show a plan without executing it.
//
// The planner is rule-based. Current rules, in the order they apply:
//
//   - scan lowering: a base table with a covering columnar projection
//     scans segment pages (ColumnarScan) instead of the row B+tree;
//     otherwise extracted clustered-key bounds pick RangeScan over SeqScan.
//   - lateral TVF lowering: a join against a TVF whose arguments reference
//     outer columns becomes a ZoneSweepJoin when the TVF can answer probe
//     batches (TVF.Batch — the paper's batched zone join from plain SQL),
//     else a per-outer-row TVFApply.
//   - equi-join detection: inner joins with usable equality conjuncts
//     build a HashJoin; everything else nests loops.
//
// To add a rule: pattern-match in lowerSource (or the operator stack in
// planSelect), return a new physOp implementing next/close/describe, and
// gate it behind a PlannerKnobs field so equivalence tests can pin the
// before/after plans against each other.

// cancelCheck is one statement's shared cancellation probe. Row-producing
// operators tick it per row; every cancelBatch ticks the probe actually
// polls ctx.Err, so cancellation lands at row-batch granularity without a
// per-row atomic in the hot scan loops (a plan executes on one goroutine,
// so the counter needs no synchronisation). A nil *cancelCheck is inert,
// keeping plans built without a context free of even the counter.
type cancelCheck struct {
	ctx context.Context
	n   uint
}

// cancelBatch is how many rows flow between ctx.Err polls. Small enough
// that a cancelled scan over a big table stops within microseconds, large
// enough that the poll vanishes against per-row decode work.
const cancelBatch = 256

// newCancelCheck returns the statement's probe, or nil for background
// contexts where cancellation can never fire.
func newCancelCheck(ctx context.Context) *cancelCheck {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	return &cancelCheck{ctx: ctx}
}

// tick counts one row and polls the context every cancelBatch rows.
func (c *cancelCheck) tick() error {
	if c == nil {
		return nil
	}
	c.n++
	if c.n%cancelBatch != 0 {
		return nil
	}
	return c.poll()
}

// poll reports the statement's cancellation state immediately.
func (c *cancelCheck) poll() error {
	if c == nil {
		return nil
	}
	if err := c.ctx.Err(); err != nil {
		return fmt.Errorf("sqldb: query interrupted: %w", err)
	}
	return nil
}

// execCtx returns the context operators hand to cooperating subsystems
// (TVF.Batch and its parallel sweeps).
func (c *cancelCheck) execCtx() context.Context {
	if c == nil {
		return context.Background()
	}
	return c.ctx
}

// opStats carries the row-count bookkeeping every operator shares.
// est is the planner's estimate (-1 when unknown); actual counts rows the
// operator has emitted, reported by EXPLAIN ANALYZE. When timed is set
// (execExplain flips it on the whole tree before an ANALYZE run) nanos
// accumulates the operator's wall time across next() calls, inclusive of
// its children; untimed plans pay one predicted branch per row and never
// allocate, which is what keeps the gated benchmarks byte-identical.
type opStats struct {
	est    int64
	actual int64
	ran    bool
	timed  bool
	nanos  int64
}

// timeFrom accumulates wall time since t0. Operators invoke it through a
// conditional defer at the top of next(); the defer only exists on the
// timed path.
func (st *opStats) timeFrom(t0 time.Time) { st.nanos += int64(time.Since(t0)) }

// enableTiming marks every operator in the tree for wall-time collection.
func enableTiming(op physOp) {
	op.stats().timed = true
	for _, k := range op.children() {
		enableTiming(k)
	}
}

// physOp is a physical plan operator: a row iterator (next returns nil at
// end of stream) that can also print itself.
//
// Row ownership: a row returned by next() is only valid until the
// following next() call — source operators reuse cursor buffers and
// scratch rows, which is what keeps scan-shaped queries allocation-light.
// A consumer that retains rows across calls copies them (drainOp does;
// the join operators copy the outer row they hold). The row-shaping
// operators projectOp and aggregateOp emit freshly allocated rows, so
// everything downstream of them — Sort, Distinct, Limit, the drained Rows
// result, RowIter — hands out caller-owned slices.
type physOp interface {
	next() ([]Value, error)
	close()
	describe() string
	children() []physOp
	stats() *opStats
}

// drainOp exhausts an operator, copying each (possibly borrowed) row. The
// caller closes.
func drainOp(op physOp) ([][]Value, error) {
	var rows [][]Value
	for {
		r, err := op.next()
		if err != nil {
			return nil, err
		}
		if r == nil {
			return rows, nil
		}
		rows = append(rows, append([]Value(nil), r...))
	}
}

// drainOwned exhausts an operator that emits caller-owned rows (one with
// projectOp or aggregateOp beneath it), retaining them without copies.
func drainOwned(op physOp) ([][]Value, error) {
	var rows [][]Value
	for {
		r, err := op.next()
		if err != nil {
			return nil, err
		}
		if r == nil {
			return rows, nil
		}
		rows = append(rows, r)
	}
}

// drainDiscard exhausts an operator for its side effects (EXPLAIN ANALYZE
// row counting) without retaining anything.
func drainDiscard(op physOp) error {
	for {
		r, err := op.next()
		if err != nil {
			return err
		}
		if r == nil {
			return nil
		}
	}
}

// ---------------------------------------------------------------------------
// Source operators

// valuesOp emits a fixed set of rows (the FROM-less SELECT's single empty
// row).
type valuesOp struct {
	st   opStats
	rows [][]Value
	i    int
}

func (o *valuesOp) next() ([]Value, error) {
	if o.st.timed {
		defer o.st.timeFrom(time.Now())
	}
	o.st.ran = true
	if o.i >= len(o.rows) {
		return nil, nil
	}
	r := o.rows[o.i]
	o.i++
	o.st.actual++
	return r, nil
}
func (o *valuesOp) close()             {}
func (o *valuesOp) describe() string   { return "Result" }
func (o *valuesOp) children() []physOp { return nil }
func (o *valuesOp) stats() *opStats    { return &o.st }

// scanLabel renders "Name" or "Name AS alias" for scan display.
func scanLabel(name, alias string) string {
	if alias != "" && !strings.EqualFold(alias, name) {
		return name + " AS " + alias
	}
	return name
}

// seqScanOp streams a whole table version in clustered order. The view is
// the one the query's snapshot pinned at planning; the snapshot's guard
// outlives the operator, so the cursor needs none of its own.
type seqScanOp struct {
	st      opStats
	tv      TableView
	alias   string
	cc      *cancelCheck
	cur     *TableCursor
	started bool
}

func (o *seqScanOp) next() ([]Value, error) {
	if o.st.timed {
		defer o.st.timeFrom(time.Now())
	}
	o.st.ran = true
	if err := o.cc.tick(); err != nil {
		return nil, err
	}
	if !o.started {
		o.started = true
		cur, err := o.tv.Scan()
		if err != nil {
			return nil, err
		}
		o.cur = cur
	}
	if !o.cur.Next() {
		return nil, o.cur.Err()
	}
	o.st.actual++
	return o.cur.Row(), nil // borrowed: reused by the cursor's next advance
}
func (o *seqScanOp) close() {
	if o.cur != nil {
		o.cur.Close()
	}
}
func (o *seqScanOp) describe() string {
	return "SeqScan " + scanLabel(o.tv.Table().Name, o.alias)
}
func (o *seqScanOp) children() []physOp { return nil }
func (o *seqScanOp) stats() *opStats    { return &o.st }

// rangeScanOp streams the rows whose leading clustered-key column lies in
// [lo, hi] (either bound may be NULL = unbounded).
type rangeScanOp struct {
	st      opStats
	tv      TableView
	alias   string
	lo, hi  Value
	cc      *cancelCheck
	cur     *TableCursor
	started bool
}

func (o *rangeScanOp) next() ([]Value, error) {
	if o.st.timed {
		defer o.st.timeFrom(time.Now())
	}
	o.st.ran = true
	if err := o.cc.tick(); err != nil {
		return nil, err
	}
	if !o.started {
		o.started = true
		cur, err := o.tv.RangeScan(o.lo, o.hi)
		if err != nil {
			return nil, err
		}
		o.cur = cur
	}
	if !o.cur.Next() {
		return nil, o.cur.Err()
	}
	o.st.actual++
	return o.cur.Row(), nil // borrowed: reused by the cursor's next advance
}
func (o *rangeScanOp) close() {
	if o.cur != nil {
		o.cur.Close()
	}
}
func (o *rangeScanOp) describe() string {
	t := o.tv.Table()
	return fmt.Sprintf("RangeScan %s (%s)", scanLabel(t.Name, o.alias),
		boundsString(t.Cols[o.tv.KeyCols()[0]].Name, o.lo, o.hi))
}
func (o *rangeScanOp) children() []physOp { return nil }
func (o *rangeScanOp) stats() *opStats    { return &o.st }

// boundsString renders an inclusive leading-key window for display.
func boundsString(col string, lo, hi Value) string {
	switch {
	case !lo.IsNull() && !hi.IsNull() && Equal(lo, hi):
		return fmt.Sprintf("%s = %s", col, lo)
	case !lo.IsNull() && !hi.IsNull():
		return fmt.Sprintf("%s BETWEEN %s AND %s", col, lo, hi)
	case !lo.IsNull():
		return fmt.Sprintf("%s >= %s", col, lo)
	default:
		return fmt.Sprintf("%s <= %s", col, hi)
	}
}

// columnarScanOp streams a table's column-major projection: per segment,
// the touched columns decode into packed arrays (lazily, see
// colstore.Scanner) and rows materialise straight from them — no B+tree
// descent, no key decode, no null bitmap. Row order equals the clustered
// scan's by the projection contract (a snapshot built in clustered order),
// so the operator is plug-compatible with SeqScan/RangeScan.
type columnarScanOp struct {
	st     opStats
	tv     TableView
	ct     *colstore.Table
	alias  string
	needed []bool // table columns to materialise; nil = all
	cc     *cancelCheck
	segs   []colstore.SegmentMeta
	scan   *colstore.Scanner
	row    []Value // scratch, reused per emitted row
	si, ri int
}

// newColumnarScan plans a columnar scan, pruning segments through the
// directory when the extracted bounds cover the projection's group column
// (the leading clustered-key column). ct is the view's own projection, so
// the segments cover exactly the rows the snapshot reads.
func newColumnarScan(tv TableView, ct *colstore.Table, alias string, lo, hi Value, needed []bool) *columnarScanOp {
	segs := ct.Segments()
	keyCols := tv.KeyCols()
	if (!lo.IsNull() || !hi.IsNull()) && len(keyCols) > 0 && ct.GroupCol() == keyCols[0] {
		loF, hasLo := boundAsFloat(lo)
		hiF, hasHi := boundAsFloat(hi)
		kept := make([]colstore.SegmentMeta, 0, len(segs))
		for _, m := range segs {
			g := float64(m.Group)
			if hasLo && g < loF {
				continue
			}
			if hasHi && g > hiF {
				continue
			}
			kept = append(kept, m)
		}
		segs = kept
	}
	est := int64(0)
	for _, m := range segs {
		est += int64(m.Rows)
	}
	allNeeded := needed == nil
	if needed != nil {
		allNeeded = true
		for _, n := range needed {
			allNeeded = allNeeded && n
		}
	}
	if allNeeded {
		needed = nil
	}
	return &columnarScanOp{
		st: opStats{est: est}, tv: tv, ct: ct, alias: alias, needed: needed, segs: segs,
	}
}

func boundAsFloat(v Value) (float64, bool) {
	if v.IsNull() {
		return 0, false
	}
	f, err := v.AsFloat()
	return f, err == nil
}

func (o *columnarScanOp) next() ([]Value, error) {
	if o.st.timed {
		defer o.st.timeFrom(time.Now())
	}
	o.st.ran = true
	if err := o.cc.tick(); err != nil {
		return nil, err
	}
	for {
		if o.scan == nil {
			o.scan = o.ct.NewScanner()
		}
		if o.ri == 0 {
			if o.si >= len(o.segs) {
				return nil, nil
			}
			if err := o.scan.Load(o.segs[o.si]); err != nil {
				return nil, err
			}
		}
		if o.ri >= o.scan.NumRows() {
			o.si++
			o.ri = 0
			continue
		}
		r := o.ri
		o.ri++
		cols := o.tv.Table().Cols
		if o.row == nil {
			o.row = make([]Value, len(cols))
			for ci := range o.row {
				o.row[ci] = Null()
			}
		}
		for ci, c := range cols {
			if o.needed != nil && !o.needed[ci] {
				continue // stays NULL; the statement never reads it
			}
			if c.Type == TInt {
				o.row[ci] = Int(o.scan.Ints(ci)[r])
			} else {
				o.row[ci] = Float(o.scan.Floats(ci)[r])
			}
		}
		o.st.actual++
		return o.row, nil // borrowed: scratch reused per row
	}
}
func (o *columnarScanOp) close() {}
func (o *columnarScanOp) describe() string {
	d := fmt.Sprintf("ColumnarScan %s [%d segments", scanLabel(o.tv.Table().Name, o.alias), len(o.segs))
	if o.needed != nil {
		n := 0
		for _, b := range o.needed {
			if b {
				n++
			}
		}
		d += fmt.Sprintf(", %d/%d cols", n, len(o.tv.Table().Cols))
	}
	return d + "]"
}
func (o *columnarScanOp) children() []physOp { return nil }
func (o *columnarScanOp) stats() *opStats    { return &o.st }

// tvfScanOp evaluates a constant-argument TVF once and streams its rows.
type tvfScanOp struct {
	st      opStats
	db      *DB
	tvf     *TVF
	name    string
	alias   string
	args    []Expr
	params  []Value
	rows    [][]Value
	i       int
	started bool
}

func (o *tvfScanOp) next() ([]Value, error) {
	if o.st.timed {
		defer o.st.timeFrom(time.Now())
	}
	o.st.ran = true
	if !o.started {
		o.started = true
		ev := &env{params: o.params, db: o.db}
		args := make([]Value, len(o.args))
		for i, a := range o.args {
			v, err := eval(a, ev)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		rows, err := o.tvf.Fn(args)
		if err != nil {
			return nil, err
		}
		o.rows = rows
	}
	if o.i >= len(o.rows) {
		return nil, nil
	}
	r := o.rows[o.i]
	o.i++
	o.st.actual++
	return r, nil
}
func (o *tvfScanOp) close() {}
func (o *tvfScanOp) describe() string {
	return fmt.Sprintf("TVFScan %s(%s)", scanLabel(o.name, o.alias), exprList(o.args))
}
func (o *tvfScanOp) children() []physOp { return nil }
func (o *tvfScanOp) stats() *opStats    { return &o.st }

// ---------------------------------------------------------------------------
// Join operators

// tvfApplyOp is the per-outer-row lateral plan: for every left row, the
// TVF's arguments re-evaluate and Fn runs — one full neighbour search per
// probe, in the paper's terms. The ZoneSweepJoin replaces exactly this
// operator; both emit identical rows in identical order.
type tvfApplyOp struct {
	st      opStats
	left    physOp
	db      *DB
	tvf     *TVF
	name    string
	alias   string
	args    []Expr
	on      Expr // residual predicate over the combined row (inner semantics)
	evLeft  *env
	evBoth  *env
	leftRow []Value
	matches [][]Value
	mi      int
}

func (o *tvfApplyOp) next() ([]Value, error) {
	if o.st.timed {
		defer o.st.timeFrom(time.Now())
	}
	o.st.ran = true
	for {
		for o.mi < len(o.matches) {
			r := o.matches[o.mi]
			o.mi++
			combined := append(append([]Value(nil), o.leftRow...), r...)
			if o.on != nil {
				o.evBoth.row = combined
				v, err := eval(o.on, o.evBoth)
				if err != nil {
					return nil, err
				}
				if !v.AsBool() {
					continue
				}
			}
			o.st.actual++
			return combined, nil
		}
		row, err := o.left.next()
		if err != nil || row == nil {
			return nil, err
		}
		// The outer row is held across next() calls while its matches
		// replay; the source's buffer is reused, so copy.
		o.leftRow = append(o.leftRow[:0], row...)
		o.evLeft.row = o.leftRow
		args := make([]Value, len(o.args))
		for i, a := range o.args {
			v, err := eval(a, o.evLeft)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		if o.matches, err = o.tvf.Fn(args); err != nil {
			return nil, err
		}
		o.mi = 0
	}
}
func (o *tvfApplyOp) close() { o.left.close() }
func (o *tvfApplyOp) describe() string {
	d := fmt.Sprintf("TVFApply %s(%s)", o.name, exprList(o.args))
	if o.alias != "" && !strings.EqualFold(o.alias, o.name) {
		d += " AS " + o.alias
	}
	if o.on != nil {
		d += " on " + exprString(o.on)
	}
	return d
}
func (o *tvfApplyOp) children() []physOp { return []physOp{o.left} }
func (o *tvfApplyOp) stats() *opStats    { return &o.st }

// accessPathOp is a display-only leaf under a ZoneSweepJoin: it names the
// physical representation the batched sweep reads (the TVF's Source
// table). It never executes — the sweep itself drives the pages.
type accessPathOp struct {
	st    opStats
	label string
}

func (o *accessPathOp) next() ([]Value, error) {
	return nil, fmt.Errorf("sqldb: access-path display node is not executable")
}
func (o *accessPathOp) close()             {}
func (o *accessPathOp) describe() string   { return o.label }
func (o *accessPathOp) children() []physOp { return nil }
func (o *accessPathOp) stats() *opStats    { return &o.st }

// tvfAccessPath builds the display leaf for a batch TVF: its source
// table's access path, or — for source-less TVFs like the federated
// sweep — the TVF's own Access label.
func tvfAccessPath(t *TVF) *accessPathOp {
	if t.Source == nil && t.Access != "" {
		return &accessPathOp{st: opStats{est: -1}, label: t.Access}
	}
	return sweepAccessPath(t.Source)
}

// sweepAccessPath builds the display leaf for a batch TVF's source table.
// One view keeps the label's (projection, key, count) triple coherent;
// the sweep itself re-pins its own view when it runs.
func sweepAccessPath(src *Table) *accessPathOp {
	if src == nil {
		return nil
	}
	tv := src.View()
	if ct := tv.Columnar(); ct != nil {
		return &accessPathOp{
			st:    opStats{est: ct.NumRows()},
			label: fmt.Sprintf("ColumnarScan %s [%d segments]", src.Name, len(ct.Segments())),
		}
	}
	keyCols := tv.KeyCols()
	keys := make([]string, len(keyCols))
	for i, ci := range keyCols {
		keys[i] = src.Cols[ci].Name
	}
	return &accessPathOp{
		st:    opStats{est: tv.NumRows()},
		label: fmt.Sprintf("IndexScan %s [clustered (%s)]", src.Name, strings.Join(keys, ", ")),
	}
}

// zoneSweepJoinOp is the batched lateral plan: it drains the outer input,
// evaluates every row's TVF arguments into one probe list, answers the
// whole list with a single TVF.Batch call (the batched zone sweep — one
// synchronized pass per zone instead of one descent per probe), then
// replays the buffered per-probe hits in outer-row order. Because Batch
// preserves Fn's per-probe row order, the emitted stream is bit-identical
// to tvfApplyOp's.
type zoneSweepJoinOp struct {
	st      opStats
	left    physOp
	access  *accessPathOp // display-only
	tvf     *TVF
	name    string
	alias   string
	args    []Expr
	on      Expr
	cc      *cancelCheck
	evLeft  *env
	evBoth  *env
	started bool
	lrows   [][]Value
	hits    [][]Value // per outer row: flat hit rows, width len(tvf.Cols)
	scratch []Value   // combined-row scratch, reused per emission
	li      int
	mi      int
}

func (o *zoneSweepJoinOp) next() ([]Value, error) {
	if o.st.timed {
		defer o.st.timeFrom(time.Now())
	}
	o.st.ran = true
	if !o.started {
		o.started = true
		lrows, err := drainOp(o.left)
		if err != nil {
			return nil, err
		}
		o.lrows = lrows
		probes := make([][]Value, len(lrows))
		for i, lr := range lrows {
			o.evLeft.row = lr
			args := make([]Value, len(o.args))
			for j, a := range o.args {
				v, err := eval(a, o.evLeft)
				if err != nil {
					return nil, err
				}
				args[j] = v
			}
			probes[i] = args
		}
		// One Batch call answers every probe; per-probe hits buffer into a
		// flat run of fixed-width rows (the emit slice is only valid during
		// the call, so the values copy here, once).
		o.hits = make([][]Value, len(lrows))
		if len(probes) > 0 {
			err = o.tvf.Batch(o.cc.execCtx(), probes, func(pi int, row []Value) {
				o.hits[pi] = append(o.hits[pi], row...)
			})
			if err != nil {
				return nil, err
			}
		}
	}
	w := len(o.tvf.Cols)
	for {
		if err := o.cc.tick(); err != nil {
			return nil, err
		}
		if o.li >= len(o.lrows) {
			return nil, nil
		}
		lr := o.lrows[o.li]
		hits := o.hits[o.li]
		if o.mi == 0 && len(hits) > 0 {
			// The outer prefix of the combined row is constant across this
			// row's hits: copy it once, then only the hit columns per match.
			o.scratch = append(o.scratch[:0], lr...)
			for i := 0; i < w; i++ {
				o.scratch = append(o.scratch, Value{})
			}
		}
		for o.mi*w < len(hits) {
			copy(o.scratch[len(lr):], hits[o.mi*w:(o.mi+1)*w])
			o.mi++
			if o.on != nil {
				o.evBoth.row = o.scratch
				v, err := eval(o.on, o.evBoth)
				if err != nil {
					return nil, err
				}
				if !v.AsBool() {
					continue
				}
			}
			o.st.actual++
			return o.scratch, nil // borrowed: scratch reused per row
		}
		o.hits[o.li] = nil // replayed; let the buffer go
		o.li++
		o.mi = 0
	}
}
func (o *zoneSweepJoinOp) close() { o.left.close() }
func (o *zoneSweepJoinOp) describe() string {
	d := fmt.Sprintf("ZoneSweepJoin %s(%s)", o.name, exprList(o.args))
	if o.alias != "" && !strings.EqualFold(o.alias, o.name) {
		d += " AS " + o.alias
	}
	if o.on != nil {
		d += " on " + exprString(o.on)
	}
	return d
}
func (o *zoneSweepJoinOp) children() []physOp {
	if o.access != nil {
		return []physOp{o.left, o.access}
	}
	return []physOp{o.left}
}
func (o *zoneSweepJoinOp) stats() *opStats { return &o.st }

// nestedLoopJoinOp joins the streamed left input against a materialised
// right side: inner (ON optional), cross, or left-outer with NULL padding.
type nestedLoopJoinOp struct {
	st       opStats
	left     physOp
	right    physOp
	kind     joinKind
	on       Expr
	ev       *env // over the combined schema
	started  bool
	rows     [][]Value
	rightLen int
	leftRow  []Value
	ri       int
	matched  bool
}

func (o *nestedLoopJoinOp) next() ([]Value, error) {
	if o.st.timed {
		defer o.st.timeFrom(time.Now())
	}
	o.st.ran = true
	if !o.started {
		o.started = true
		rows, err := drainOp(o.right)
		o.right.close()
		if err != nil {
			return nil, err
		}
		o.rows = rows
	}
	for {
		if o.leftRow == nil {
			row, err := o.left.next()
			if err != nil || row == nil {
				return nil, err
			}
			// Held across next() calls while the right side replays; the
			// source's buffer is reused, so copy.
			o.leftRow = append([]Value(nil), row...)
			o.ri = 0
			o.matched = false
		}
		for o.ri < len(o.rows) {
			r := o.rows[o.ri]
			o.ri++
			combined := append(append([]Value(nil), o.leftRow...), r...)
			if o.on != nil {
				o.ev.row = combined
				v, err := eval(o.on, o.ev)
				if err != nil {
					return nil, err
				}
				if !v.AsBool() {
					continue
				}
			}
			o.matched = true
			o.st.actual++
			return combined, nil
		}
		if o.kind == joinLeft && !o.matched {
			combined := append([]Value(nil), o.leftRow...)
			for i := 0; i < o.rightLen; i++ {
				combined = append(combined, Null())
			}
			o.leftRow = nil
			o.st.actual++
			return combined, nil
		}
		o.leftRow = nil
	}
}
func (o *nestedLoopJoinOp) close() {
	o.left.close()
	if !o.started {
		o.right.close()
	}
}
func (o *nestedLoopJoinOp) describe() string {
	kind := "inner"
	switch o.kind {
	case joinCross:
		kind = "cross"
	case joinLeft:
		kind = "left"
	}
	d := "NestedLoopJoin [" + kind + "]"
	if o.on != nil {
		d += " on " + exprString(o.on)
	}
	return d
}
func (o *nestedLoopJoinOp) children() []physOp { return []physOp{o.left, o.right} }
func (o *nestedLoopJoinOp) stats() *opStats    { return &o.st }

// hashJoinOp builds a hash table on the right side's equi-key and probes
// it with the left stream; residual ON conjuncts re-check per match.
type hashJoinOp struct {
	st        opStats
	left      physOp
	right     physOp
	leftKeys  []Expr
	rightKeys []Expr
	residual  Expr
	on        Expr // original ON, for display
	evLeft    *env
	evRight   *env
	evBoth    *env
	started   bool
	buckets   map[string][][]Value
	leftRow   []Value
	matches   [][]Value
	mi        int
}

func (o *hashJoinOp) next() ([]Value, error) {
	if o.st.timed {
		defer o.st.timeFrom(time.Now())
	}
	o.st.ran = true
	if !o.started {
		o.started = true
		rows, err := drainOp(o.right)
		o.right.close()
		if err != nil {
			return nil, err
		}
		o.buckets = make(map[string][][]Value, len(rows))
		for _, r := range rows {
			o.evRight.row = r
			key, null, err := joinKey(o.rightKeys, o.evRight)
			if err != nil {
				return nil, err
			}
			if null {
				continue
			}
			o.buckets[key] = append(o.buckets[key], r)
		}
	}
	for {
		for o.mi < len(o.matches) {
			r := o.matches[o.mi]
			o.mi++
			combined := append(append([]Value(nil), o.leftRow...), r...)
			if o.residual != nil {
				o.evBoth.row = combined
				v, err := eval(o.residual, o.evBoth)
				if err != nil {
					return nil, err
				}
				if !v.AsBool() {
					continue
				}
			}
			o.st.actual++
			return combined, nil
		}
		row, err := o.left.next()
		if err != nil || row == nil {
			return nil, err
		}
		// Held across next() calls while its matches replay; copy.
		o.leftRow = append(o.leftRow[:0], row...)
		o.evLeft.row = o.leftRow
		key, null, err := joinKey(o.leftKeys, o.evLeft)
		if err != nil {
			return nil, err
		}
		if null {
			o.matches = nil
			o.mi = 0
			continue
		}
		o.matches = o.buckets[key]
		o.mi = 0
	}
}
func (o *hashJoinOp) close() {
	o.left.close()
	if !o.started {
		o.right.close()
	}
}
func (o *hashJoinOp) describe() string {
	return "HashJoin on " + exprString(o.on)
}
func (o *hashJoinOp) children() []physOp { return []physOp{o.left, o.right} }
func (o *hashJoinOp) stats() *opStats    { return &o.st }

// ---------------------------------------------------------------------------
// Row-shaping operators

// filterOp drops rows whose predicate is not true.
type filterOp struct {
	st   opStats
	src  physOp
	pred Expr
	ev   *env
}

func (o *filterOp) next() ([]Value, error) {
	if o.st.timed {
		defer o.st.timeFrom(time.Now())
	}
	o.st.ran = true
	for {
		row, err := o.src.next()
		if err != nil || row == nil {
			return nil, err
		}
		o.ev.row = row
		v, err := eval(o.pred, o.ev)
		if err != nil {
			return nil, err
		}
		if v.AsBool() {
			o.st.actual++
			return row, nil
		}
	}
}
func (o *filterOp) close()             { o.src.close() }
func (o *filterOp) describe() string   { return "Filter " + exprString(o.pred) }
func (o *filterOp) children() []physOp { return []physOp{o.src} }
func (o *filterOp) stats() *opStats    { return &o.st }

// projectOp evaluates the (plan-time bound) select list per source row.
// When the statement has ORDER BY, each emitted row carries the
// precomputed sort keys as hidden trailing values (items referencing
// projection aliases or ordinals reuse the projected value; everything
// else evaluates in the source env, exactly as the executor always has);
// sortOp consumes and strips them. Emitted rows are caller-owned.
type projectOp struct {
	st         opStats
	src        physOp
	items      []projItem // bound expressions
	names      []string   // display names
	orderExprs []Expr     // bound hidden-key expressions
	aliasIdx   []int
	fastIdx    []int // non-nil: every item is a bare bound column, no ORDER BY
	arena      []Value
	ev         *env
}

// allocRow carves one caller-owned output row from a block arena: result
// rows are retained (by Rows, Sort, the user), so they must be fresh
// memory, but a malloc per row is pure overhead — one block serves 256.
func (o *projectOp) allocRow(w int) []Value {
	if len(o.arena) < w {
		o.arena = make([]Value, 256*w)
	}
	out := o.arena[:w:w]
	o.arena = o.arena[w:]
	return out
}

func (o *projectOp) next() ([]Value, error) {
	if o.st.timed {
		defer o.st.timeFrom(time.Now())
	}
	o.st.ran = true
	row, err := o.src.next()
	if err != nil || row == nil {
		return nil, err
	}
	if o.fastIdx != nil {
		// Pure column projection: copy slots, skip the evaluator.
		out := o.allocRow(len(o.fastIdx))
		for i, ix := range o.fastIdx {
			out[i] = row[ix]
		}
		o.st.actual++
		return out, nil
	}
	o.ev.row = row
	n := len(o.items)
	out := o.allocRow(n + len(o.orderExprs))
	for i, it := range o.items {
		v, err := eval(it.expr, o.ev)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	for i, oe := range o.orderExprs {
		if ai := o.aliasIdx[i]; ai >= 0 {
			out[n+i] = out[ai]
			continue
		}
		v, err := eval(oe, o.ev)
		if err != nil {
			return nil, err
		}
		out[n+i] = v
	}
	o.st.actual++
	return out, nil
}
func (o *projectOp) close() { o.src.close() }
func (o *projectOp) describe() string {
	return "Project " + strings.Join(o.names, ", ")
}
func (o *projectOp) children() []physOp { return []physOp{o.src} }
func (o *projectOp) stats() *opStats    { return &o.st }

// aggregateOp groups the source rows and evaluates the rewritten select
// list, HAVING, and hidden ORDER BY keys per group. Groups emit in
// first-seen order, matching the historical executor.
type aggregateOp struct {
	st    opStats
	src   physOp
	stmt  *SelectStmt
	items []projItem // original expressions, for display
	// Plan-time bound copies of everything run() evaluates.
	bItems     []projItem
	groupBy    []Expr
	having     Expr
	orderExprs []Expr
	sch        schema
	params     []Value
	db         *DB
	started    bool
	out        [][]Value
	i          int
}

func (o *aggregateOp) next() ([]Value, error) {
	if o.st.timed {
		defer o.st.timeFrom(time.Now())
	}
	o.st.ran = true
	if !o.started {
		o.started = true
		if err := o.run(); err != nil {
			return nil, err
		}
	}
	if o.i >= len(o.out) {
		return nil, nil
	}
	r := o.out[o.i]
	o.i++
	o.st.actual++
	return r, nil
}

// run is the grouping pass: one scan of the source, one aggState set per
// group, then per-group evaluation of the rewritten expressions.
func (o *aggregateOp) run() error {
	var calls []*Call
	rewritten := make([]Expr, len(o.bItems))
	for i, it := range o.bItems {
		rewritten[i] = rewriteAggs(it.expr, &calls)
	}
	having := rewriteAggs(o.having, &calls)
	orderExprs := make([]Expr, len(o.orderExprs))
	for i, oe := range o.orderExprs {
		orderExprs[i] = rewriteAggs(oe, &calls)
	}

	type group struct {
		firstRow []Value
		aggs     []*aggState
	}
	groups := make(map[string]*group)
	var orderOfGroups []string

	ev := &env{schema: o.sch, params: o.params, db: o.db}
	for {
		row, err := o.src.next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		ev.row = row
		var sb strings.Builder
		for _, g := range o.groupBy {
			v, err := eval(g, ev)
			if err != nil {
				return err
			}
			sb.WriteString(v.GroupKey())
			sb.WriteByte(0)
		}
		key := sb.String()
		grp, ok := groups[key]
		if !ok {
			grp = &group{firstRow: append([]Value(nil), row...)}
			for _, c := range calls {
				grp.aggs = append(grp.aggs, newAggState(c))
			}
			groups[key] = grp
			orderOfGroups = append(orderOfGroups, key)
		}
		for _, a := range grp.aggs {
			if err := a.add(ev); err != nil {
				return err
			}
		}
	}

	// A grand aggregate over zero rows still yields one group.
	if len(groups) == 0 && len(o.groupBy) == 0 {
		grp := &group{firstRow: make([]Value, len(o.sch))}
		for i := range grp.firstRow {
			grp.firstRow[i] = Null()
		}
		for _, c := range calls {
			grp.aggs = append(grp.aggs, newAggState(c))
		}
		groups[""] = grp
		orderOfGroups = append(orderOfGroups, "")
	}

	gev := &env{schema: o.sch, params: o.params, db: o.db}
	for _, key := range orderOfGroups {
		grp := groups[key]
		gev.row = grp.firstRow
		gev.aggs = make([]Value, len(grp.aggs))
		for i, a := range grp.aggs {
			gev.aggs[i] = a.result()
		}
		if having != nil {
			v, err := eval(having, gev)
			if err != nil {
				return err
			}
			if !v.AsBool() {
				continue
			}
		}
		out := make([]Value, len(rewritten), len(rewritten)+len(orderExprs))
		for i, e := range rewritten {
			v, err := eval(e, gev)
			if err != nil {
				return err
			}
			out[i] = v
		}
		for _, e := range orderExprs {
			v, err := eval(e, gev)
			if err != nil {
				return err
			}
			out = append(out, v)
		}
		o.out = append(o.out, out)
	}
	return nil
}

func (o *aggregateOp) close() { o.src.close() }
func (o *aggregateOp) describe() string {
	var calls []*Call
	for _, it := range o.items {
		rewriteAggs(it.expr, &calls)
	}
	rewriteAggs(o.stmt.Having, &calls)
	for _, ord := range o.stmt.OrderBy {
		rewriteAggs(ord.Expr, &calls)
	}
	parts := make([]string, len(calls))
	for i, c := range calls {
		parts[i] = exprString(c)
	}
	d := "Aggregate " + strings.Join(parts, ", ")
	if len(o.stmt.GroupBy) > 0 {
		d += " GROUP BY " + exprList(o.stmt.GroupBy)
	}
	if o.stmt.Having != nil {
		d += " HAVING " + exprString(o.stmt.Having)
	}
	return d
}
func (o *aggregateOp) children() []physOp { return []physOp{o.src} }
func (o *aggregateOp) stats() *opStats    { return &o.st }

// sortOp materialises its input, stably sorts on the hidden trailing keys
// projectOp/aggregateOp appended, and emits the visible prefix.
type sortOp struct {
	st      opStats
	src     physOp
	order   []OrderItem
	visible int
	cc      *cancelCheck
	started bool
	rows    [][]Value
	i       int
}

func (o *sortOp) next() ([]Value, error) {
	if o.st.timed {
		defer o.st.timeFrom(time.Now())
	}
	o.st.ran = true
	if err := o.cc.tick(); err != nil {
		return nil, err
	}
	if !o.started {
		o.started = true
		// The source is always a Project or Aggregate, whose rows are
		// caller-owned: retain without copying.
		rows, err := drainOwned(o.src)
		if err != nil {
			return nil, err
		}
		// One poll between the drain and the sort: a statement cancelled
		// during the (uninterruptible) sort stops before emitting.
		if err := o.cc.poll(); err != nil {
			return nil, err
		}
		sort.SliceStable(rows, func(a, b int) bool {
			ka := rows[a][o.visible:]
			kb := rows[b][o.visible:]
			for i, ord := range o.order {
				c := CompareForSort(ka[i], kb[i])
				if c == 0 {
					continue
				}
				if ord.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		o.rows = rows
	}
	if o.i >= len(o.rows) {
		return nil, nil
	}
	r := o.rows[o.i][:o.visible]
	o.i++
	o.st.actual++
	return r, nil
}
func (o *sortOp) close() { o.src.close() }
func (o *sortOp) describe() string {
	parts := make([]string, len(o.order))
	for i, ord := range o.order {
		parts[i] = exprString(ord.Expr)
		if ord.Desc {
			parts[i] += " DESC"
		}
	}
	return "Sort " + strings.Join(parts, ", ")
}
func (o *sortOp) children() []physOp { return []physOp{o.src} }
func (o *sortOp) stats() *opStats    { return &o.st }

// distinctOp streams first occurrences of each projected row.
type distinctOp struct {
	st   opStats
	src  physOp
	seen map[string]bool
}

func (o *distinctOp) next() ([]Value, error) {
	if o.st.timed {
		defer o.st.timeFrom(time.Now())
	}
	o.st.ran = true
	if o.seen == nil {
		o.seen = make(map[string]bool)
	}
	for {
		row, err := o.src.next()
		if err != nil || row == nil {
			return nil, err
		}
		var sb strings.Builder
		for _, v := range row {
			sb.WriteString(v.GroupKey())
			sb.WriteByte(0)
		}
		k := sb.String()
		if !o.seen[k] {
			o.seen[k] = true
			o.st.actual++
			return row, nil
		}
	}
}
func (o *distinctOp) close()             { o.src.close() }
func (o *distinctOp) describe() string   { return "Distinct" }
func (o *distinctOp) children() []physOp { return []physOp{o.src} }
func (o *distinctOp) stats() *opStats    { return &o.st }

// limitOp stops after n rows. limit keeps the declared bound for display;
// n counts down during execution.
type limitOp struct {
	st    opStats
	src   physOp
	limit int64
	n     int64
}

func (o *limitOp) next() ([]Value, error) {
	if o.st.timed {
		defer o.st.timeFrom(time.Now())
	}
	o.st.ran = true
	if o.n <= 0 {
		return nil, nil
	}
	row, err := o.src.next()
	if err != nil || row == nil {
		return nil, err
	}
	o.n--
	o.st.actual++
	return row, nil
}
func (o *limitOp) close()             { o.src.close() }
func (o *limitOp) describe() string   { return fmt.Sprintf("Limit %d", o.limit) }
func (o *limitOp) children() []physOp { return []physOp{o.src} }
func (o *limitOp) stats() *opStats    { return &o.st }

// ---------------------------------------------------------------------------
// The physical planner

// PlannerKnobs disables individual physical-planner rules. The zero value
// enables everything; equivalence tests and ablations flip single rules to
// pin that the optimised and naive plans emit bit-identical rows.
type PlannerKnobs struct {
	// NoZoneSweepJoin keeps the per-outer-row TVFApply plan for lateral
	// batch-capable TVFs instead of lowering to ZoneSweepJoin.
	NoZoneSweepJoin bool
	// NoColumnarScan keeps base-table scans on the row B+tree even when a
	// covering columnar projection is attached.
	NoColumnarScan bool
}

// SetPlannerKnobs installs knobs for subsequent statements. Knobs ride
// the catalog, so a statement's snapshot fixes them for its whole plan.
func (db *DB) SetPlannerKnobs(k PlannerKnobs) {
	_ = db.updateCatalog(func(c *catalog) error {
		c.knobs = k
		return nil
	})
}

func (db *DB) plannerKnobs() PlannerKnobs {
	return db.cat.Load().knobs
}

// planSelect compiles a SELECT into its physical operator tree and output
// column names. Construction performs no I/O; the first next() does. The
// context threads into every row-producing operator (and through
// TVF.Batch into the parallel sweeps), so cancelling it stops the
// statement at row-batch granularity.
func (db *DB) planSelect(ctx context.Context, stmt *SelectStmt, params []Value, snap *Snapshot) (physOp, []string, error) {
	lp, err := db.buildLogical(stmt, params, snap)
	if err != nil {
		return nil, nil, err
	}
	knobs := snap.cat.knobs
	cc := newCancelCheck(ctx)
	op, err := db.lowerSource(lp.source, params, knobs, cc)
	if err != nil {
		return nil, nil, err
	}
	if stmt.Where != nil {
		op = &filterOp{
			st: opStats{est: -1}, src: op, pred: bindExpr(stmt.Where, lp.sch),
			ev: &env{schema: lp.sch, params: params, db: db},
		}
	}
	columns := make([]string, len(lp.items))
	for i, it := range lp.items {
		columns[i] = it.name
	}
	// Bind every expression the operators will evaluate: column references
	// resolve to schema slots once here, not per row.
	boundItems := make([]projItem, len(lp.items))
	for i, it := range lp.items {
		boundItems[i] = projItem{expr: bindExpr(it.expr, lp.sch), name: it.name}
	}
	orderExprs := make([]Expr, len(stmt.OrderBy))
	for i, ord := range stmt.OrderBy {
		orderExprs[i] = bindExpr(ord.Expr, lp.sch)
	}
	if lp.aggregated {
		op = &aggregateOp{
			st: opStats{est: -1}, src: op, stmt: stmt, items: lp.items,
			bItems: boundItems, groupBy: bindExprs(stmt.GroupBy, lp.sch),
			having: bindExpr(stmt.Having, lp.sch), orderExprs: orderExprs,
			sch: lp.sch, params: params, db: db,
		}
	} else {
		op = &projectOp{
			st: opStats{est: childEst(op)}, src: op, items: boundItems,
			names: columns, orderExprs: orderExprs,
			aliasIdx: orderAliasIndexes(stmt.OrderBy, lp.items),
			fastIdx:  pureColumnIndexes(boundItems, stmt.OrderBy),
			ev:       &env{schema: lp.sch, params: params, db: db},
		}
	}
	if len(stmt.OrderBy) > 0 {
		op = &sortOp{st: opStats{est: childEst(op)}, src: op, order: stmt.OrderBy, visible: len(lp.items), cc: cc}
	}
	if stmt.Distinct {
		op = &distinctOp{st: opStats{est: -1}, src: op}
	}
	if stmt.Limit >= 0 {
		est := childEst(op)
		if est < 0 || est > stmt.Limit {
			est = stmt.Limit
		}
		op = &limitOp{st: opStats{est: est}, src: op, limit: stmt.Limit, n: stmt.Limit}
	}
	return op, columns, nil
}

func childEst(op physOp) int64 { return op.stats().est }

// pureColumnIndexes returns the source slot of every select item when the
// whole list is bare bound columns and no hidden sort keys are needed —
// the shape of SELECT col, col, ... — enabling projectOp's copy-only fast
// path. Any expression (or any ORDER BY) returns nil.
func pureColumnIndexes(items []projItem, order []OrderItem) []int {
	if len(order) > 0 {
		return nil
	}
	idx := make([]int, len(items))
	for i, it := range items {
		bc, ok := it.expr.(*boundCol)
		if !ok {
			return nil
		}
		idx[i] = bc.Idx
	}
	return idx
}

// lowerSource turns the bound FROM tree into physical operators, applying
// the access-path and join rules.
func (db *DB) lowerSource(n logNode, params []Value, knobs PlannerKnobs, cc *cancelCheck) (physOp, error) {
	met := db.metrics()
	switch x := n.(type) {
	case *logValues:
		return &valuesOp{st: opStats{est: 1}, rows: [][]Value{{}}}, nil
	case *logScan:
		if !knobs.NoColumnarScan {
			// The projection comes from the scan's own pinned view, so a
			// ColumnarScan reads segments covering exactly the rows the
			// snapshot's row cursors would return — a write that detached
			// the projection published a different version.
			if ct := x.tv.Columnar(); projectionCovers(x.tv.Table(), ct) {
				op := newColumnarScan(x.tv, ct, x.alias, x.lo, x.hi, x.needed)
				op.cc = cc
				met.rule("ColumnarScan")
				return op, nil
			}
		}
		if x.lo.IsNull() && x.hi.IsNull() {
			met.rule("SeqScan")
			return &seqScanOp{st: opStats{est: x.tv.NumRows()}, tv: x.tv, alias: x.alias, cc: cc}, nil
		}
		// No histograms: the bounded row count is unknown, and printing the
		// full table count against a range scan would misread in EXPLAIN.
		met.rule("RangeScan")
		return &rangeScanOp{st: opStats{est: -1}, tv: x.tv, alias: x.alias, lo: x.lo, hi: x.hi, cc: cc}, nil
	case *logTVF:
		// Non-lateral: constant arguments, evaluated once at first next.
		met.rule("TVFScan")
		return &tvfScanOp{st: opStats{est: -1}, db: db, tvf: x.tvf, name: x.name, alias: x.alias, args: x.args, params: params}, nil
	case *logJoin:
		return db.lowerJoin(x, params, knobs, cc)
	}
	return nil, fmt.Errorf("sqldb: cannot lower %T", n)
}

func (db *DB) lowerJoin(j *logJoin, params []Value, knobs PlannerKnobs, cc *cancelCheck) (physOp, error) {
	left, err := db.lowerSource(j.left, params, knobs, cc)
	if err != nil {
		return nil, err
	}
	leftSch := j.left.schema()
	combined := j.sch
	if tvf, ok := j.right.(*logTVF); ok && tvf.lateral {
		evLeft := &env{schema: leftSch, params: params, db: db}
		evBoth := &env{schema: combined, params: params, db: db}
		args := bindExprs(tvf.args, leftSch)
		on := bindExpr(j.on, combined)
		if tvf.tvf.Batch != nil && !knobs.NoZoneSweepJoin {
			db.metrics().rule("ZoneSweepJoin")
			return &zoneSweepJoinOp{
				st: opStats{est: -1}, left: left, access: tvfAccessPath(tvf.tvf),
				tvf: tvf.tvf, name: tvf.name, alias: tvf.alias, args: args, on: on,
				cc: cc, evLeft: evLeft, evBoth: evBoth,
			}, nil
		}
		db.metrics().rule("TVFApply")
		return &tvfApplyOp{
			st: opStats{est: -1}, left: left, db: db,
			tvf: tvf.tvf, name: tvf.name, alias: tvf.alias, args: args, on: on,
			evLeft: evLeft, evBoth: evBoth,
		}, nil
	}
	right, err := db.lowerSource(j.right, params, knobs, cc)
	if err != nil {
		left.close()
		return nil, err
	}
	rightSch := j.right.schema()
	switch j.kind {
	case joinCross, joinLeft:
		db.metrics().rule("NestedLoopJoin")
		return &nestedLoopJoinOp{
			st: opStats{est: -1}, left: left, right: right, kind: j.kind,
			on: bindExpr(j.on, combined),
			ev: &env{schema: combined, params: params, db: db}, rightLen: len(rightSch),
		}, nil
	default: // inner
		leftKeys, rightKeys, residual := splitEquiJoin(j.on, leftSch, rightSch)
		if len(leftKeys) > 0 {
			db.metrics().rule("HashJoin")
			return &hashJoinOp{
				st: opStats{est: -1}, left: left, right: right,
				leftKeys: bindExprs(leftKeys, leftSch), rightKeys: bindExprs(rightKeys, rightSch),
				residual: bindExpr(residual, combined), on: j.on,
				evLeft:  &env{schema: leftSch, params: params, db: db},
				evRight: &env{schema: rightSch, params: params, db: db},
				evBoth:  &env{schema: combined, params: params, db: db},
			}, nil
		}
		db.metrics().rule("NestedLoopJoin")
		return &nestedLoopJoinOp{
			st: opStats{est: -1}, left: left, right: right, kind: joinInner,
			on: bindExpr(j.on, combined),
			ev: &env{schema: combined, params: params, db: db}, rightLen: len(rightSch),
		}, nil
	}
}

// ---------------------------------------------------------------------------
// EXPLAIN rendering

// renderPlan formats the operator tree, one line per operator, with box
// drawing for structure and the row-count annotations: the planner's
// estimate always, the actual emitted count when the plan has run
// (EXPLAIN ANALYZE).
func renderPlan(op physOp, analyzed bool) []string {
	var lines []string
	var walk func(op physOp, prefix string, childPrefix string)
	walk = func(op physOp, prefix, childPrefix string) {
		lines = append(lines, prefix+op.describe()+planAnnotation(op, analyzed))
		kids := op.children()
		for i, k := range kids {
			if i == len(kids)-1 {
				walk(k, childPrefix+"└─ ", childPrefix+"   ")
			} else {
				walk(k, childPrefix+"├─ ", childPrefix+"│  ")
			}
		}
	}
	walk(op, "", "")
	return lines
}

func planAnnotation(op physOp, analyzed bool) string {
	st := op.stats()
	// Wall time renders outside the row-count bracket so the bracket
	// stays stable for tools (and tests) matching on it.
	timing := ""
	if analyzed && st.ran && st.timed {
		timing = fmt.Sprintf(" (%.3f ms)", float64(st.nanos)/1e6)
	}
	switch {
	case analyzed && st.ran && st.est >= 0:
		return fmt.Sprintf("  [est %d, actual %d rows]%s", st.est, st.actual, timing)
	case analyzed && st.ran:
		return fmt.Sprintf("  [actual %d rows]%s", st.actual, timing)
	case st.est >= 0:
		return fmt.Sprintf("  [est %d rows]", st.est)
	}
	return ""
}

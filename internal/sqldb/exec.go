package sqldb

import (
	"context"
	"fmt"
	"strings"
	"time"
)

// SELECT execution sits on the plan layer: execSelect compiles the
// statement with planSelect (plan.go binds, physical.go lowers) and drains
// the operator tree. This file keeps the result types and the helpers the
// planner shares — conjunct analysis, clustered-key bound extraction,
// equi-join splitting, select-list expansion.

// Rows is a fully materialised query result.
type Rows struct {
	Columns []string
	data    [][]Value
	i       int
}

// Next advances to the following row, returning false after the last one.
func (r *Rows) Next() bool {
	if r.i >= len(r.data) {
		return false
	}
	r.i++
	return true
}

// Row returns the current row after a successful Next.
func (r *Rows) Row() []Value { return r.data[r.i-1] }

// Len returns the number of rows in the result.
func (r *Rows) Len() int { return len(r.data) }

// All returns every row.
func (r *Rows) All() [][]Value { return r.data }

// execSelect runs a SELECT and materialises the result. The whole
// statement — planning and execution — runs against one snapshot taken
// here, released when the result is materialised.
func (db *DB) execSelect(ctx context.Context, stmt *SelectStmt, params []Value) (*Rows, error) {
	snap := db.Snapshot()
	defer snap.Close()
	op, columns, err := db.planSelect(ctx, stmt, params, snap)
	if err != nil {
		return nil, err
	}
	defer op.close()
	// The plan's root is always a Project or Aggregate (possibly wrapped
	// in Sort/Distinct/Limit), so rows arrive caller-owned: no copy here.
	data, err := drainOwned(op)
	if err != nil {
		return nil, err
	}
	return &Rows{Columns: columns, data: data}, nil
}

// RowIter streams a SELECT's output row by row from the physical plan,
// never buffering the whole result set: the cursor-friendly twin of Rows
// for scans over millions of rows. Operators that are inherently blocking
// (Sort, Aggregate, the build side of a join) still materialise their own
// inputs; a scan-filter-project pipeline streams end to end.
//
// The iterator must be Closed (closing releases the plan's cursors); Row's
// slice is owned by the caller until the following Next.
type RowIter struct {
	cols   []string
	op     physOp
	snap   *Snapshot // the query's pinned snapshot; released by Close
	row    []Value
	err    error
	closed bool

	// Attached metrics: rows are tallied locally per Next and flushed as
	// one batch at Close, so streaming pays no per-row metric work.
	met   *dbMetrics
	start time.Time
	n     int64
}

// Columns returns the output column names.
func (it *RowIter) Columns() []string { return it.cols }

// Next advances to the following row, returning false at the end of the
// stream or on error (check Err).
func (it *RowIter) Next() bool {
	if it.closed || it.err != nil {
		return false
	}
	row, err := it.op.next()
	if err != nil {
		it.err = err
		return false
	}
	if row == nil {
		return false
	}
	it.n++
	it.row = row
	return true
}

// Row returns the current row after a successful Next.
func (it *RowIter) Row() []Value { return it.row }

// Err returns the first error encountered by Next.
func (it *RowIter) Err() error { return it.err }

// Close releases the plan's resources and the query's snapshot. Safe to
// call more than once.
func (it *RowIter) Close() {
	if !it.closed {
		it.closed = true
		it.op.close()
		if it.snap != nil {
			it.snap.Close()
		}
		if it.met != nil {
			it.met.statement("select", it.start)
			it.met.out(it.n)
		}
	}
}

// ---------------------------------------------------------------------------
// Predicate analysis shared by logical planning

// conjuncts flattens an AND tree.
func conjuncts(e Expr) []Expr {
	if b, ok := e.(*Binary); ok && b.Op == "AND" {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	if e == nil {
		return nil
	}
	return []Expr{e}
}

// rangeBounds extracts inclusive [lo, hi] bounds on the table's leading
// clustered-key column from the WHERE conjuncts. Pushdown is an
// optimisation only: every predicate is still re-checked by the filter, so
// strict bounds may be treated as inclusive. Unqualified column names are
// only trusted when the query has a single FROM item.
func rangeBounds(where Expr, alias string, tv TableView, params []Value, singleTable bool) (lo, hi Value) {
	lo, hi = Null(), Null()
	keyCols := tv.KeyCols()
	if where == nil || len(keyCols) == 0 {
		return lo, hi
	}
	leading := tv.Table().Cols[keyCols[0]].Name
	ev := &env{params: params}
	matches := func(e Expr) bool {
		c, ok := e.(*ColumnRef)
		if !ok || !strings.EqualFold(c.Name, leading) {
			return false
		}
		if c.Table == "" {
			return singleTable
		}
		return strings.EqualFold(c.Table, alias)
	}
	constVal := func(e Expr) (Value, bool) {
		switch e.(type) {
		case *Literal, *Param:
		default:
			return Value{}, false
		}
		v, err := eval(e, ev)
		if err != nil || v.IsNull() {
			return Value{}, false
		}
		return v, true
	}
	tightenLo := func(v Value) {
		if lo.IsNull() || CompareForSort(v, lo) > 0 {
			lo = v
		}
	}
	tightenHi := func(v Value) {
		if hi.IsNull() || CompareForSort(v, hi) < 0 {
			hi = v
		}
	}
	for _, c := range conjuncts(where) {
		switch x := c.(type) {
		case *Between:
			if x.Not || !matches(x.X) {
				continue
			}
			if v, ok := constVal(x.Lo); ok {
				tightenLo(v)
			}
			if v, ok := constVal(x.Hi); ok {
				tightenHi(v)
			}
		case *Binary:
			col, val := x.L, x.R
			op := x.Op
			if !matches(col) {
				// try flipped: literal op column
				if matches(x.R) {
					col, val = x.R, x.L
					switch op {
					case "<":
						op = ">"
					case "<=":
						op = ">="
					case ">":
						op = "<"
					case ">=":
						op = "<="
					}
				} else {
					continue
				}
			}
			_ = col
			v, ok := constVal(val)
			if !ok {
				continue
			}
			switch op {
			case "=":
				tightenLo(v)
				tightenHi(v)
			case ">", ">=":
				tightenLo(v)
			case "<", "<=":
				tightenHi(v)
			}
		}
	}
	return lo, hi
}

// splitEquiJoin partitions an inner-join ON condition into hash keys and a
// residual predicate. Returns empty keys when no usable equality exists.
func splitEquiJoin(on Expr, left, right schema) (leftKeys, rightKeys []Expr, residual Expr) {
	if on == nil {
		return nil, nil, nil
	}
	var rest []Expr
	for _, c := range conjuncts(on) {
		b, ok := c.(*Binary)
		if !ok || b.Op != "=" {
			rest = append(rest, c)
			continue
		}
		lSide := sideOf(b.L, left, right)
		rSide := sideOf(b.R, left, right)
		switch {
		case lSide == 1 && rSide == 2:
			leftKeys = append(leftKeys, b.L)
			rightKeys = append(rightKeys, b.R)
		case lSide == 2 && rSide == 1:
			leftKeys = append(leftKeys, b.R)
			rightKeys = append(rightKeys, b.L)
		default:
			rest = append(rest, c)
		}
	}
	residual = andAll(rest)
	return leftKeys, rightKeys, residual
}

// sideOf classifies which input an expression's columns come from:
// 0 none, 1 left, 2 right, 3 both/ambiguous.
func sideOf(e Expr, left, right schema) int {
	side := 0
	walkExpr(e, func(x Expr) {
		c, ok := x.(*ColumnRef)
		if !ok {
			return
		}
		_, lerr := left.resolve(c.Table, c.Name)
		_, rerr := right.resolve(c.Table, c.Name)
		switch {
		case lerr == nil && rerr == nil:
			side |= 3
		case lerr == nil:
			side |= 1
		case rerr == nil:
			side |= 2
		default:
			side |= 3 // unknown: be conservative
		}
	})
	return side
}

func andAll(es []Expr) Expr {
	var out Expr
	for _, e := range es {
		if out == nil {
			out = e
		} else {
			out = &Binary{Op: "AND", L: out, R: e}
		}
	}
	return out
}

// joinKey renders the equi-key; null=true when any component is NULL
// (NULLs never join).
func joinKey(keys []Expr, ev *env) (string, bool, error) {
	var sb strings.Builder
	for _, k := range keys {
		v, err := eval(k, ev)
		if err != nil {
			return "", false, err
		}
		if v.IsNull() {
			return "", true, nil
		}
		sb.WriteString(v.GroupKey())
		sb.WriteByte(0)
	}
	return sb.String(), false, nil
}

// ---------------------------------------------------------------------------
// Select-list helpers

type projItem struct {
	expr Expr
	name string
}

// expandItems resolves stars against the source schema.
func expandItems(items []SelectItem, sch schema) ([]projItem, error) {
	var out []projItem
	for i, item := range items {
		if item.Star {
			matched := false
			for _, c := range sch {
				if item.StarTable != "" && !strings.EqualFold(item.StarTable, c.alias) {
					continue
				}
				out = append(out, projItem{
					expr: &ColumnRef{Table: c.alias, Name: c.name},
					name: c.name,
				})
				matched = true
			}
			if !matched {
				return nil, fmt.Errorf("sqldb: %s.* matches no columns", item.StarTable)
			}
			continue
		}
		name := item.Alias
		if name == "" {
			if c, ok := item.Expr.(*ColumnRef); ok {
				name = c.Name
			} else {
				name = fmt.Sprintf("col%d", i+1)
			}
		}
		out = append(out, projItem{expr: item.Expr, name: name})
	}
	return out, nil
}

// orderAliasIndexes maps each ORDER BY item to a projection index when it is
// a bare reference to a projection alias (or ordinal), else -1.
func orderAliasIndexes(order []OrderItem, items []projItem) []int {
	out := make([]int, len(order))
	for i, o := range order {
		out[i] = -1
		if c, ok := o.Expr.(*ColumnRef); ok && c.Table == "" {
			for j, it := range items {
				if strings.EqualFold(it.name, c.Name) {
					out[i] = j
					break
				}
			}
		}
		if l, ok := o.Expr.(*Literal); ok && l.Val.T == TInt {
			if n := int(l.Val.I); n >= 1 && n <= len(items) {
				out[i] = n - 1
			}
		}
	}
	return out
}

// validateColumns resolves every column reference in the expressions
// against the source schema, reporting the first unknown or ambiguous one.
func validateColumns(sch schema, exprs []Expr) error {
	var firstErr error
	for _, e := range exprs {
		walkExpr(e, func(x Expr) {
			if firstErr != nil {
				return
			}
			if c, ok := x.(*ColumnRef); ok {
				if _, err := sch.resolve(c.Table, c.Name); err != nil {
					firstErr = err
				}
			}
		})
	}
	return firstErr
}

package sqldb

import (
	"fmt"
	"sort"
	"strings"
)

// Rows is a fully materialised query result.
type Rows struct {
	Columns []string
	data    [][]Value
	i       int
}

// Next advances to the following row, returning false after the last one.
func (r *Rows) Next() bool {
	if r.i >= len(r.data) {
		return false
	}
	r.i++
	return true
}

// Row returns the current row after a successful Next.
func (r *Rows) Row() []Value { return r.data[r.i-1] }

// Len returns the number of rows in the result.
func (r *Rows) Len() int { return len(r.data) }

// All returns every row.
func (r *Rows) All() [][]Value { return r.data }

// rowIter is the Volcano iterator contract: next returns (nil, nil) at the
// end of the stream.
type rowIter interface {
	next() ([]Value, error)
	close()
}

// sliceIter replays materialised rows.
type sliceIter struct {
	rows [][]Value
	i    int
}

func (s *sliceIter) next() ([]Value, error) {
	if s.i >= len(s.rows) {
		return nil, nil
	}
	r := s.rows[s.i]
	s.i++
	return r, nil
}
func (s *sliceIter) close() {}

// tableScanIter streams a table cursor.
type tableScanIter struct{ c *TableCursor }

func (t *tableScanIter) next() ([]Value, error) {
	if !t.c.Next() {
		if err := t.c.Err(); err != nil {
			return nil, err
		}
		return nil, nil
	}
	return append([]Value(nil), t.c.Row()...), nil
}
func (t *tableScanIter) close() { t.c.Close() }

// filterIter drops rows whose predicate is not true.
type filterIter struct {
	src  rowIter
	pred Expr
	ev   *env
}

func (f *filterIter) next() ([]Value, error) {
	for {
		row, err := f.src.next()
		if err != nil || row == nil {
			return nil, err
		}
		f.ev.row = row
		v, err := eval(f.pred, f.ev)
		if err != nil {
			return nil, err
		}
		if v.AsBool() {
			return row, nil
		}
	}
}
func (f *filterIter) close() { f.src.close() }

// nestedLoopJoin streams the left input against a materialised right side.
// kind: joinInner (On optional), joinCross, joinLeft.
type nestedLoopJoin struct {
	left     rowIter
	right    [][]Value
	kind     joinKind
	on       Expr
	ev       *env // env over the combined schema
	leftRow  []Value
	ri       int
	matched  bool
	rightLen int // number of right columns for null padding
}

func (j *nestedLoopJoin) next() ([]Value, error) {
	for {
		if j.leftRow == nil {
			row, err := j.left.next()
			if err != nil || row == nil {
				return nil, err
			}
			j.leftRow = row
			j.ri = 0
			j.matched = false
		}
		for j.ri < len(j.right) {
			r := j.right[j.ri]
			j.ri++
			combined := append(append([]Value(nil), j.leftRow...), r...)
			if j.on != nil {
				j.ev.row = combined
				v, err := eval(j.on, j.ev)
				if err != nil {
					return nil, err
				}
				if !v.AsBool() {
					continue
				}
			}
			j.matched = true
			return combined, nil
		}
		if j.kind == joinLeft && !j.matched {
			combined := append([]Value(nil), j.leftRow...)
			for i := 0; i < j.rightLen; i++ {
				combined = append(combined, Null())
			}
			j.leftRow = nil
			return combined, nil
		}
		j.leftRow = nil
	}
}
func (j *nestedLoopJoin) close() { j.left.close() }

// hashJoin builds a hash table on the right side's equi-key and probes with
// the left stream. Residual ON conjuncts are checked per match.
type hashJoin struct {
	left     rowIter
	buckets  map[string][][]Value
	leftKeys []Expr
	residual Expr
	evLeft   *env // schema = left only
	evBoth   *env // schema = combined
	leftRow  []Value
	matches  [][]Value
	mi       int
}

func (j *hashJoin) next() ([]Value, error) {
	for {
		for j.mi < len(j.matches) {
			r := j.matches[j.mi]
			j.mi++
			combined := append(append([]Value(nil), j.leftRow...), r...)
			if j.residual != nil {
				j.evBoth.row = combined
				v, err := eval(j.residual, j.evBoth)
				if err != nil {
					return nil, err
				}
				if !v.AsBool() {
					continue
				}
			}
			return combined, nil
		}
		row, err := j.left.next()
		if err != nil || row == nil {
			return nil, err
		}
		j.leftRow = row
		j.evLeft.row = row
		key, null, err := joinKey(j.leftKeys, j.evLeft)
		if err != nil {
			return nil, err
		}
		if null {
			j.matches = nil
			j.mi = 0
			continue
		}
		j.matches = j.buckets[key]
		j.mi = 0
	}
}
func (j *hashJoin) close() { j.left.close() }

// joinKey renders the equi-key; null=true when any component is NULL
// (NULLs never join).
func joinKey(keys []Expr, ev *env) (string, bool, error) {
	var sb strings.Builder
	for _, k := range keys {
		v, err := eval(k, ev)
		if err != nil {
			return "", false, err
		}
		if v.IsNull() {
			return "", true, nil
		}
		sb.WriteString(v.GroupKey())
		sb.WriteByte(0)
	}
	return sb.String(), false, nil
}

// limitIter stops after n rows.
type limitIter struct {
	src rowIter
	n   int64
}

func (l *limitIter) next() ([]Value, error) {
	if l.n <= 0 {
		return nil, nil
	}
	row, err := l.src.next()
	if err != nil || row == nil {
		return nil, err
	}
	l.n--
	return row, nil
}
func (l *limitIter) close() { l.src.close() }

// ---------------------------------------------------------------------------
// FROM-clause planning

// conjuncts flattens an AND tree.
func conjuncts(e Expr) []Expr {
	if b, ok := e.(*Binary); ok && b.Op == "AND" {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	if e == nil {
		return nil
	}
	return []Expr{e}
}

// rangeBounds extracts inclusive [lo, hi] bounds on the table's leading
// clustered-key column from the WHERE conjuncts. Pushdown is an
// optimisation only: every predicate is still re-checked by the filter, so
// strict bounds may be treated as inclusive. Unqualified column names are
// only trusted when the query has a single FROM item.
func rangeBounds(where Expr, alias string, t *Table, params []Value, singleTable bool) (lo, hi Value) {
	lo, hi = Null(), Null()
	if where == nil || len(t.KeyCols) == 0 {
		return lo, hi
	}
	leading := t.Cols[t.KeyCols[0]].Name
	ev := &env{params: params}
	matches := func(e Expr) bool {
		c, ok := e.(*ColumnRef)
		if !ok || !strings.EqualFold(c.Name, leading) {
			return false
		}
		if c.Table == "" {
			return singleTable
		}
		return strings.EqualFold(c.Table, alias)
	}
	constVal := func(e Expr) (Value, bool) {
		switch e.(type) {
		case *Literal, *Param:
		default:
			return Value{}, false
		}
		v, err := eval(e, ev)
		if err != nil || v.IsNull() {
			return Value{}, false
		}
		return v, true
	}
	tightenLo := func(v Value) {
		if lo.IsNull() || CompareForSort(v, lo) > 0 {
			lo = v
		}
	}
	tightenHi := func(v Value) {
		if hi.IsNull() || CompareForSort(v, hi) < 0 {
			hi = v
		}
	}
	for _, c := range conjuncts(where) {
		switch x := c.(type) {
		case *Between:
			if x.Not || !matches(x.X) {
				continue
			}
			if v, ok := constVal(x.Lo); ok {
				tightenLo(v)
			}
			if v, ok := constVal(x.Hi); ok {
				tightenHi(v)
			}
		case *Binary:
			col, val := x.L, x.R
			op := x.Op
			if !matches(col) {
				// try flipped: literal op column
				if matches(x.R) {
					col, val = x.R, x.L
					switch op {
					case "<":
						op = ">"
					case "<=":
						op = ">="
					case ">":
						op = "<"
					case ">=":
						op = "<="
					}
				} else {
					continue
				}
			}
			_ = col
			v, ok := constVal(val)
			if !ok {
				continue
			}
			switch op {
			case "=":
				tightenLo(v)
				tightenHi(v)
			case ">", ">=":
				tightenLo(v)
			case "<", "<=":
				tightenHi(v)
			}
		}
	}
	return lo, hi
}

// buildFrom constructs the source iterator and its schema for a FROM clause.
func (db *DB) buildFrom(stmt *SelectStmt, params []Value) (rowIter, schema, error) {
	if len(stmt.From) == 0 {
		// SELECT without FROM evaluates over one empty row.
		return &sliceIter{rows: [][]Value{{}}}, schema{}, nil
	}
	var iter rowIter
	var sch schema
	single := len(stmt.From) == 1
	for i, item := range stmt.From {
		rIter, rSchema, err := db.buildFromItem(item, stmt.Where, params, single)
		if err != nil {
			if iter != nil {
				iter.close()
			}
			return nil, nil, err
		}
		if i == 0 {
			iter, sch = rIter, rSchema
			continue
		}
		// Materialise the right side.
		rightRows, err := drain(rIter)
		if err != nil {
			iter.close()
			return nil, nil, err
		}
		combined := append(append(schema{}, sch...), rSchema...)
		switch item.Join {
		case joinCross:
			iter = &nestedLoopJoin{
				left: iter, right: rightRows, kind: joinCross,
				ev: &env{schema: combined, params: params, db: db}, rightLen: len(rSchema),
			}
		case joinLeft:
			iter = &nestedLoopJoin{
				left: iter, right: rightRows, kind: joinLeft, on: item.On,
				ev: &env{schema: combined, params: params, db: db}, rightLen: len(rSchema),
			}
		default: // inner
			leftKeys, rightKeys, residual := splitEquiJoin(item.On, sch, rSchema)
			if len(leftKeys) > 0 {
				buckets := make(map[string][][]Value, len(rightRows))
				evRight := &env{schema: rSchema, params: params, db: db}
				for _, r := range rightRows {
					evRight.row = r
					key, null, err := joinKey(rightKeys, evRight)
					if err != nil {
						iter.close()
						return nil, nil, err
					}
					if null {
						continue
					}
					buckets[key] = append(buckets[key], r)
				}
				iter = &hashJoin{
					left: iter, buckets: buckets, leftKeys: leftKeys, residual: residual,
					evLeft: &env{schema: sch, params: params, db: db},
					evBoth: &env{schema: combined, params: params, db: db},
				}
			} else {
				iter = &nestedLoopJoin{
					left: iter, right: rightRows, kind: joinInner, on: item.On,
					ev: &env{schema: combined, params: params, db: db}, rightLen: len(rSchema),
				}
			}
		}
		sch = combined
	}
	return iter, sch, nil
}

// buildFromItem produces the iterator for a single table or TVF reference.
func (db *DB) buildFromItem(item FromItem, where Expr, params []Value, single bool) (rowIter, schema, error) {
	alias := strings.ToLower(item.Alias)
	if alias == "" {
		alias = strings.ToLower(item.Table)
	}
	if item.IsTVF {
		tvf, ok := db.tvf(item.Table)
		if !ok {
			return nil, nil, fmt.Errorf("sqldb: unknown table-valued function %s", item.Table)
		}
		ev := &env{params: params, db: db}
		args := make([]Value, len(item.Args))
		for i, a := range item.Args {
			v, err := eval(a, ev)
			if err != nil {
				return nil, nil, err
			}
			args[i] = v
		}
		rows, err := tvf.Fn(args)
		if err != nil {
			return nil, nil, err
		}
		sch := make(schema, len(tvf.Cols))
		for i, c := range tvf.Cols {
			sch[i] = colMeta{alias: alias, name: c.Name}
		}
		return &sliceIter{rows: rows}, sch, nil
	}
	t, ok := db.Table(item.Table)
	if !ok {
		return nil, nil, fmt.Errorf("sqldb: unknown table %s", item.Table)
	}
	sch := make(schema, len(t.Cols))
	for i, c := range t.Cols {
		sch[i] = colMeta{alias: alias, name: c.Name}
	}
	lo, hi := rangeBounds(where, alias, t, params, single)
	var cur *TableCursor
	var err error
	if lo.IsNull() && hi.IsNull() {
		cur, err = t.Scan()
	} else {
		cur, err = t.RangeScan(lo, hi)
	}
	if err != nil {
		return nil, nil, err
	}
	return &tableScanIter{c: cur}, sch, nil
}

// splitEquiJoin partitions an inner-join ON condition into hash keys and a
// residual predicate. Returns empty keys when no usable equality exists.
func splitEquiJoin(on Expr, left, right schema) (leftKeys, rightKeys []Expr, residual Expr) {
	if on == nil {
		return nil, nil, nil
	}
	var rest []Expr
	for _, c := range conjuncts(on) {
		b, ok := c.(*Binary)
		if !ok || b.Op != "=" {
			rest = append(rest, c)
			continue
		}
		lSide := sideOf(b.L, left, right)
		rSide := sideOf(b.R, left, right)
		switch {
		case lSide == 1 && rSide == 2:
			leftKeys = append(leftKeys, b.L)
			rightKeys = append(rightKeys, b.R)
		case lSide == 2 && rSide == 1:
			leftKeys = append(leftKeys, b.R)
			rightKeys = append(rightKeys, b.L)
		default:
			rest = append(rest, c)
		}
	}
	residual = andAll(rest)
	return leftKeys, rightKeys, residual
}

// sideOf classifies which input an expression's columns come from:
// 0 none, 1 left, 2 right, 3 both/ambiguous.
func sideOf(e Expr, left, right schema) int {
	side := 0
	walkExpr(e, func(x Expr) {
		c, ok := x.(*ColumnRef)
		if !ok {
			return
		}
		_, lerr := left.resolve(c.Table, c.Name)
		_, rerr := right.resolve(c.Table, c.Name)
		switch {
		case lerr == nil && rerr == nil:
			side |= 3
		case lerr == nil:
			side |= 1
		case rerr == nil:
			side |= 2
		default:
			side |= 3 // unknown: be conservative
		}
	})
	return side
}

func andAll(es []Expr) Expr {
	var out Expr
	for _, e := range es {
		if out == nil {
			out = e
		} else {
			out = &Binary{Op: "AND", L: out, R: e}
		}
	}
	return out
}

func drain(it rowIter) ([][]Value, error) {
	defer it.close()
	var rows [][]Value
	for {
		r, err := it.next()
		if err != nil {
			return nil, err
		}
		if r == nil {
			return rows, nil
		}
		rows = append(rows, r)
	}
}

// ---------------------------------------------------------------------------
// SELECT execution

type projItem struct {
	expr Expr
	name string
}

// expandItems resolves stars against the source schema.
func expandItems(items []SelectItem, sch schema) ([]projItem, error) {
	var out []projItem
	for i, item := range items {
		if item.Star {
			matched := false
			for _, c := range sch {
				if item.StarTable != "" && !strings.EqualFold(item.StarTable, c.alias) {
					continue
				}
				out = append(out, projItem{
					expr: &ColumnRef{Table: c.alias, Name: c.name},
					name: c.name,
				})
				matched = true
			}
			if !matched {
				return nil, fmt.Errorf("sqldb: %s.* matches no columns", item.StarTable)
			}
			continue
		}
		name := item.Alias
		if name == "" {
			if c, ok := item.Expr.(*ColumnRef); ok {
				name = c.Name
			} else {
				name = fmt.Sprintf("col%d", i+1)
			}
		}
		out = append(out, projItem{expr: item.Expr, name: name})
	}
	return out, nil
}

// execSelect runs a SELECT and materialises the result.
func (db *DB) execSelect(stmt *SelectStmt, params []Value) (*Rows, error) {
	src, sch, err := db.buildFrom(stmt, params)
	if err != nil {
		return nil, err
	}
	if stmt.Where != nil {
		src = &filterIter{src: src, pred: stmt.Where, ev: &env{schema: sch, params: params, db: db}}
	}

	items, err := expandItems(stmt.Items, sch)
	if err != nil {
		src.close()
		return nil, err
	}

	// Static validation: unknown or ambiguous column references fail even
	// when the input is empty.
	var toCheck []Expr
	for _, it := range items {
		toCheck = append(toCheck, it.expr)
	}
	toCheck = append(toCheck, stmt.Where, stmt.Having)
	toCheck = append(toCheck, stmt.GroupBy...)
	if err := validateColumns(sch, toCheck); err != nil {
		src.close()
		return nil, err
	}

	aggregated := len(stmt.GroupBy) > 0 || stmt.Having != nil
	for _, it := range items {
		if hasAggregate(it.expr) {
			aggregated = true
		}
	}
	for _, o := range stmt.OrderBy {
		if hasAggregate(o.Expr) {
			aggregated = true
		}
	}

	var result [][]Value
	var orderKeys [][]Value
	columns := make([]string, len(items))
	for i, it := range items {
		columns[i] = it.name
	}

	if aggregated {
		result, orderKeys, err = db.execAggregate(stmt, items, src, sch, params)
		if err != nil {
			return nil, err
		}
	} else {
		defer src.close()
		ev := &env{schema: sch, params: params, db: db}
		// ORDER BY items referencing projection aliases sort on the
		// projected value; anything else evaluates in the source env.
		aliasIdx := orderAliasIndexes(stmt.OrderBy, items)
		for {
			row, err := src.next()
			if err != nil {
				return nil, err
			}
			if row == nil {
				break
			}
			ev.row = row
			out := make([]Value, len(items))
			for i, it := range items {
				v, err := eval(it.expr, ev)
				if err != nil {
					return nil, err
				}
				out[i] = v
			}
			if len(stmt.OrderBy) > 0 {
				keys := make([]Value, len(stmt.OrderBy))
				for i, o := range stmt.OrderBy {
					if ai := aliasIdx[i]; ai >= 0 {
						keys[i] = out[ai]
						continue
					}
					v, err := eval(o.Expr, ev)
					if err != nil {
						return nil, err
					}
					keys[i] = v
				}
				orderKeys = append(orderKeys, keys)
			}
			result = append(result, out)
		}
	}

	if len(stmt.OrderBy) > 0 {
		result = sortRows(result, orderKeys, stmt.OrderBy)
	}
	if stmt.Distinct {
		result = distinctRows(result)
	}
	if stmt.Limit >= 0 && int64(len(result)) > stmt.Limit {
		result = result[:stmt.Limit]
	}
	return &Rows{Columns: columns, data: result}, nil
}

// orderAliasIndexes maps each ORDER BY item to a projection index when it is
// a bare reference to a projection alias (or ordinal), else -1.
func orderAliasIndexes(order []OrderItem, items []projItem) []int {
	out := make([]int, len(order))
	for i, o := range order {
		out[i] = -1
		if c, ok := o.Expr.(*ColumnRef); ok && c.Table == "" {
			for j, it := range items {
				if strings.EqualFold(it.name, c.Name) {
					out[i] = j
					break
				}
			}
		}
		if l, ok := o.Expr.(*Literal); ok && l.Val.T == TInt {
			if n := int(l.Val.I); n >= 1 && n <= len(items) {
				out[i] = n - 1
			}
		}
	}
	return out
}

// execAggregate evaluates grouped aggregation, returning result rows and
// their order keys.
func (db *DB) execAggregate(stmt *SelectStmt, items []projItem, src rowIter, sch schema, params []Value) ([][]Value, [][]Value, error) {
	defer src.close()

	// Rewrite aggregate calls into aggRef slots shared across the select
	// list, HAVING, and ORDER BY.
	var calls []*Call
	rewritten := make([]Expr, len(items))
	for i, it := range items {
		rewritten[i] = rewriteAggs(it.expr, &calls)
	}
	having := rewriteAggs(stmt.Having, &calls)
	orderExprs := make([]Expr, len(stmt.OrderBy))
	for i, o := range stmt.OrderBy {
		orderExprs[i] = rewriteAggs(o.Expr, &calls)
	}

	type group struct {
		firstRow []Value
		keyVals  []Value
		aggs     []*aggState
	}
	groups := make(map[string]*group)
	var orderOfGroups []string

	ev := &env{schema: sch, params: params, db: db}
	for {
		row, err := src.next()
		if err != nil {
			return nil, nil, err
		}
		if row == nil {
			break
		}
		ev.row = row
		var sb strings.Builder
		keyVals := make([]Value, len(stmt.GroupBy))
		for i, g := range stmt.GroupBy {
			v, err := eval(g, ev)
			if err != nil {
				return nil, nil, err
			}
			keyVals[i] = v
			sb.WriteString(v.GroupKey())
			sb.WriteByte(0)
		}
		key := sb.String()
		grp, ok := groups[key]
		if !ok {
			grp = &group{firstRow: append([]Value(nil), row...), keyVals: keyVals}
			for _, c := range calls {
				grp.aggs = append(grp.aggs, newAggState(c))
			}
			groups[key] = grp
			orderOfGroups = append(orderOfGroups, key)
		}
		for _, a := range grp.aggs {
			if err := a.add(ev); err != nil {
				return nil, nil, err
			}
		}
	}

	// A grand aggregate over zero rows still yields one group.
	if len(groups) == 0 && len(stmt.GroupBy) == 0 {
		grp := &group{firstRow: make([]Value, len(sch))}
		for i := range grp.firstRow {
			grp.firstRow[i] = Null()
		}
		for _, c := range calls {
			grp.aggs = append(grp.aggs, newAggState(c))
		}
		groups[""] = grp
		orderOfGroups = append(orderOfGroups, "")
	}

	var result [][]Value
	var orderKeys [][]Value
	gev := &env{schema: sch, params: params, db: db}
	for _, key := range orderOfGroups {
		grp := groups[key]
		gev.row = grp.firstRow
		gev.aggs = make([]Value, len(grp.aggs))
		for i, a := range grp.aggs {
			gev.aggs[i] = a.result()
		}
		if having != nil {
			v, err := eval(having, gev)
			if err != nil {
				return nil, nil, err
			}
			if !v.AsBool() {
				continue
			}
		}
		out := make([]Value, len(rewritten))
		for i, e := range rewritten {
			v, err := eval(e, gev)
			if err != nil {
				return nil, nil, err
			}
			out[i] = v
		}
		if len(orderExprs) > 0 {
			keys := make([]Value, len(orderExprs))
			for i, e := range orderExprs {
				v, err := eval(e, gev)
				if err != nil {
					return nil, nil, err
				}
				keys[i] = v
			}
			orderKeys = append(orderKeys, keys)
		}
		result = append(result, out)
	}
	return result, orderKeys, nil
}

// validateColumns resolves every column reference in the expressions
// against the source schema, reporting the first unknown or ambiguous one.
func validateColumns(sch schema, exprs []Expr) error {
	var firstErr error
	for _, e := range exprs {
		walkExpr(e, func(x Expr) {
			if firstErr != nil {
				return
			}
			if c, ok := x.(*ColumnRef); ok {
				if _, err := sch.resolve(c.Table, c.Name); err != nil {
					firstErr = err
				}
			}
		})
	}
	return firstErr
}

// sortRows orders result rows by their precomputed keys (stable).
func sortRows(rows [][]Value, keys [][]Value, order []OrderItem) [][]Value {
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ka, kb := keys[idx[a]], keys[idx[b]]
		for i, o := range order {
			c := CompareForSort(ka[i], kb[i])
			if c == 0 {
				continue
			}
			if o.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	out := make([][]Value, len(rows))
	for i, j := range idx {
		out[i] = rows[j]
	}
	return out
}

// distinctRows removes duplicate projected rows, keeping first occurrences.
func distinctRows(rows [][]Value) [][]Value {
	seen := make(map[string]bool, len(rows))
	out := rows[:0]
	for _, r := range rows {
		var sb strings.Builder
		for _, v := range r {
			sb.WriteString(v.GroupKey())
			sb.WriteByte(0)
		}
		k := sb.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}

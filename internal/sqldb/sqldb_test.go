package sqldb

import (
	"fmt"
	"math"
	"path/filepath"
	"strings"
	"testing"
)

func mustExec(t *testing.T, db *DB, sql string, args ...Value) int64 {
	t.Helper()
	n, err := db.Exec(sql, args...)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return n
}

func mustQuery(t *testing.T, db *DB, sql string, args ...Value) *Rows {
	t.Helper()
	rows, err := db.Query(sql, args...)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	return rows
}

func TestLexerBasics(t *testing.T) {
	toks, err := lex("SELECT a, 'it''s', 1.5e3 FROM t -- comment\nWHERE x >= ?")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
		texts = append(texts, tk.text)
	}
	want := []string{"SELECT", "a", ",", "it's", ",", "1.5e3", "FROM", "t", "WHERE", "x", ">=", "?", ""}
	if len(texts) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(texts), texts, len(want))
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
	if kinds[3] != tokString {
		t.Error("escaped string literal not lexed as string")
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", "/* unterminated", "[unterminated", "a $ b \x01"} {
		if _, err := lex(src); err == nil {
			t.Errorf("lex(%q) succeeded, want error", src)
		}
	}
}

func TestLexerComments(t *testing.T) {
	toks, err := lex("/* block\ncomment */ SELECT -- line\n1")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[0].text != "SELECT" || toks[1].text != "1" {
		t.Errorf("comments not skipped: %v", toks)
	}
}

func TestParserStatements(t *testing.T) {
	good := []string{
		"SELECT 1",
		"SELECT a, b AS x FROM t WHERE a > 1 AND b BETWEEN 2 AND 3",
		"SELECT * FROM t ORDER BY a DESC, b LIMIT 10",
		"SELECT TOP 5 * FROM t",
		"SELECT t.*, u.x FROM t JOIN u ON t.id = u.id",
		"SELECT a FROM t CROSS JOIN u",
		"SELECT a FROM t LEFT JOIN u ON t.id = u.id",
		"SELECT COUNT(*), SUM(x) FROM t GROUP BY y HAVING COUNT(*) > 1",
		"SELECT CASE WHEN a > 0 THEN 'pos' ELSE 'neg' END FROM t",
		"SELECT CAST(a AS FLOAT) FROM t",
		"SELECT * FROM fGetNearbyObjEqZd(2.5, 3.0, 0.5) n JOIN g ON g.id = n.id",
		"CREATE TABLE k (zid int IDENTITY(1,1) PRIMARY KEY NOT NULL, z real, radius float)",
		"CREATE CLUSTERED INDEX ix ON zone(zoneid, ra)",
		"INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')",
		"INSERT t SELECT a, b FROM u WHERE a < 5",
		"UPDATE t SET a = a + 1 WHERE b = 'x'",
		"DELETE FROM t WHERE a IS NOT NULL",
		"DROP TABLE IF EXISTS t",
		"TRUNCATE TABLE t",
		"SELECT a FROM db.dbo.t",
		"SELECT dbo.fBCGr200(ngal) FROM c",
		"SELECT a FROM t WHERE x IN (1, 2, 3) AND y NOT IN (4)",
		"SELECT a FROM t WHERE name LIKE 'gal%' AND x NOT BETWEEN 1 AND 2",
	}
	for _, sql := range good {
		if _, err := Parse(sql); err != nil {
			t.Errorf("Parse(%q): %v", sql, err)
		}
	}
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"CREATE TABLE t",
		"CREATE INDEX ON t(a)",
		"INSERT INTO t VALUES",
		"FLY ME TO THE MOON",
		"SELECT a FROM t JOIN u", // missing ON
		"SELECT CASE END",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", sql)
		}
	}
}

func TestParseScriptMultiStatement(t *testing.T) {
	stmts, err := ParseScript("CREATE TABLE t (a int); INSERT INTO t VALUES (1); SELECT * FROM t;")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("got %d statements", len(stmts))
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Float(2.0), 0},
		{Float(3.5), Int(3), 1},
		{String("a"), String("b"), -1},
		{Bool(false), Bool(true), -1},
	}
	for _, c := range cases {
		got, err := Compare(c.a, c.b)
		if err != nil || got != c.want {
			t.Errorf("Compare(%v, %v) = %d, %v; want %d", c.a, c.b, got, err, c.want)
		}
	}
	if _, err := Compare(Int(1), String("1")); err == nil {
		t.Error("cross-type int/string compare should error")
	}
	if _, err := Compare(Null(), Int(1)); err == nil {
		t.Error("NULL compare should error")
	}
}

func TestCRUDRoundTrip(t *testing.T) {
	db := Open(64)
	mustExec(t, db, "CREATE TABLE galaxy (objid bigint PRIMARY KEY, ra float, dec float, i real)")
	mustExec(t, db, "INSERT INTO galaxy VALUES (1, 195.1, 2.5, 17.2), (2, 195.2, 2.6, 18.0), (3, 195.3, 2.7, 19.5)")

	rows := mustQuery(t, db, "SELECT objid, i FROM galaxy WHERE ra > 195.15 ORDER BY i DESC")
	if rows.Len() != 2 {
		t.Fatalf("got %d rows", rows.Len())
	}
	rows.Next()
	if rows.Row()[0].I != 3 {
		t.Errorf("first row objid = %v, want 3", rows.Row()[0])
	}

	if n := mustExec(t, db, "UPDATE galaxy SET i = i + 1 WHERE objid = 2"); n != 1 {
		t.Errorf("UPDATE affected %d", n)
	}
	rows = mustQuery(t, db, "SELECT i FROM galaxy WHERE objid = 2")
	rows.Next()
	if got, _ := rows.Row()[0].AsFloat(); math.Abs(got-19.0) > 1e-6 {
		t.Errorf("updated i = %g", got)
	}

	if n := mustExec(t, db, "DELETE FROM galaxy WHERE i > 19.2"); n != 1 {
		t.Errorf("DELETE affected %d", n)
	}
	rows = mustQuery(t, db, "SELECT COUNT(*) FROM galaxy")
	rows.Next()
	if rows.Row()[0].I != 2 {
		t.Errorf("count after delete = %v", rows.Row()[0])
	}

	if n := mustExec(t, db, "TRUNCATE TABLE galaxy"); n != 2 {
		t.Errorf("TRUNCATE reported %d", n)
	}
	rows = mustQuery(t, db, "SELECT COUNT(*) FROM galaxy")
	rows.Next()
	if rows.Row()[0].I != 0 {
		t.Error("table not empty after TRUNCATE")
	}
}

func TestPrimaryKeyEnforced(t *testing.T) {
	db := Open(64)
	mustExec(t, db, "CREATE TABLE t (id bigint PRIMARY KEY, x int)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 10)")
	if _, err := db.Exec("INSERT INTO t VALUES (1, 20)"); err == nil {
		t.Error("duplicate primary key accepted")
	}
}

func TestIdentityColumn(t *testing.T) {
	db := Open(64)
	mustExec(t, db, "CREATE TABLE k (zid int IDENTITY(1,1) PRIMARY KEY, z real)")
	mustExec(t, db, "INSERT INTO k (z) VALUES (0.01), (0.02), (0.03)")
	rows := mustQuery(t, db, "SELECT zid, z FROM k ORDER BY zid")
	for i := 1; rows.Next(); i++ {
		if rows.Row()[0].I != int64(i) {
			t.Errorf("identity row %d has zid %v", i, rows.Row()[0])
		}
	}
}

func TestJoins(t *testing.T) {
	db := Open(64)
	mustExec(t, db, "CREATE TABLE g (id bigint PRIMARY KEY, zone int)")
	mustExec(t, db, "CREATE TABLE z (zone int, name text)")
	mustExec(t, db, "INSERT INTO g VALUES (1, 10), (2, 11), (3, 12)")
	mustExec(t, db, "INSERT INTO z VALUES (10, 'a'), (11, 'b'), (99, 'x')")

	// Inner (hash) join.
	rows := mustQuery(t, db, "SELECT g.id, z.name FROM g JOIN z ON g.zone = z.zone ORDER BY g.id")
	if rows.Len() != 2 {
		t.Fatalf("inner join returned %d rows", rows.Len())
	}
	rows.Next()
	if rows.Row()[1].S != "a" {
		t.Errorf("join row 1 name = %v", rows.Row()[1])
	}

	// Left join pads with NULL.
	rows = mustQuery(t, db, "SELECT g.id, z.name FROM g LEFT JOIN z ON g.zone = z.zone ORDER BY g.id")
	if rows.Len() != 3 {
		t.Fatalf("left join returned %d rows", rows.Len())
	}
	var last []Value
	for rows.Next() {
		last = rows.Row()
	}
	if !last[1].IsNull() {
		t.Errorf("unmatched left join row name = %v, want NULL", last[1])
	}

	// Cross join.
	rows = mustQuery(t, db, "SELECT COUNT(*) FROM g CROSS JOIN z")
	rows.Next()
	if rows.Row()[0].I != 9 {
		t.Errorf("cross join count = %v, want 9", rows.Row()[0])
	}

	// Non-equi join falls back to nested loop:
	// (10,11) (10,99) (11,99) (12,99).
	rows = mustQuery(t, db, "SELECT COUNT(*) FROM g JOIN z ON g.zone < z.zone")
	rows.Next()
	if rows.Row()[0].I != 4 {
		t.Errorf("non-equi join count = %v, want 4", rows.Row()[0])
	}
}

func TestAggregates(t *testing.T) {
	db := Open(64)
	mustExec(t, db, "CREATE TABLE m (grp int, v float)")
	mustExec(t, db, "INSERT INTO m VALUES (1, 10), (1, 20), (2, 5), (2, NULL), (3, 7)")

	rows := mustQuery(t, db, "SELECT grp, COUNT(*), COUNT(v), SUM(v), AVG(v), MIN(v), MAX(v) FROM m GROUP BY grp ORDER BY grp")
	want := []struct {
		grp, cstar, cv int64
		sum, avg       float64
		min, max       float64
	}{
		{1, 2, 2, 30, 15, 10, 20},
		{2, 2, 1, 5, 5, 5, 5},
		{3, 1, 1, 7, 7, 7, 7},
	}
	i := 0
	for rows.Next() {
		r := rows.Row()
		w := want[i]
		if r[0].I != w.grp || r[1].I != w.cstar || r[2].I != w.cv {
			t.Errorf("group %d counts = %v %v %v", w.grp, r[0], r[1], r[2])
		}
		if s, _ := r[3].AsFloat(); s != w.sum {
			t.Errorf("group %d sum = %v", w.grp, r[3])
		}
		if a, _ := r[4].AsFloat(); a != w.avg {
			t.Errorf("group %d avg = %v", w.grp, r[4])
		}
		i++
	}
	if i != 3 {
		t.Fatalf("got %d groups", i)
	}

	// Grand aggregate over empty input yields one row.
	mustExec(t, db, "CREATE TABLE empty (x int)")
	rows = mustQuery(t, db, "SELECT COUNT(*), SUM(x) FROM empty")
	rows.Next()
	if rows.Row()[0].I != 0 || !rows.Row()[1].IsNull() {
		t.Errorf("empty aggregate = %v, %v", rows.Row()[0], rows.Row()[1])
	}

	// HAVING filters groups.
	rows = mustQuery(t, db, "SELECT grp FROM m GROUP BY grp HAVING COUNT(v) >= 2")
	if rows.Len() != 1 {
		t.Errorf("HAVING kept %d groups, want 1", rows.Len())
	}

	// MAX(LOG(ngal+1) - chisq), the paper's likelihood aggregation shape.
	mustExec(t, db, "CREATE TABLE cs (ngal int, chisq float)")
	mustExec(t, db, "INSERT INTO cs VALUES (3, 1.0), (10, 4.0), (0, 0.1)")
	rows = mustQuery(t, db, "SELECT MAX(LOG(ngal+1) - chisq) FROM cs WHERE ngal > 0")
	rows.Next()
	got, _ := rows.Row()[0].AsFloat()
	want2 := math.Log(4) - 1.0
	if math.Abs(got-want2) > 1e-12 {
		t.Errorf("likelihood max = %g, want %g", got, want2)
	}
}

func TestDistinctTopLimit(t *testing.T) {
	db := Open(64)
	mustExec(t, db, "CREATE TABLE d (x int)")
	mustExec(t, db, "INSERT INTO d VALUES (1), (2), (2), (3), (3), (3)")
	rows := mustQuery(t, db, "SELECT DISTINCT x FROM d ORDER BY x")
	if rows.Len() != 3 {
		t.Errorf("DISTINCT returned %d rows", rows.Len())
	}
	rows = mustQuery(t, db, "SELECT TOP 2 x FROM d ORDER BY x DESC")
	if rows.Len() != 2 {
		t.Errorf("TOP returned %d rows", rows.Len())
	}
	rows.Next()
	if rows.Row()[0].I != 3 {
		t.Errorf("TOP first row = %v", rows.Row()[0])
	}
	rows = mustQuery(t, db, "SELECT x FROM d LIMIT 4")
	if rows.Len() != 4 {
		t.Errorf("LIMIT returned %d rows", rows.Len())
	}
}

func TestExpressionSemantics(t *testing.T) {
	db := Open(64)
	cases := []struct {
		sql  string
		want Value
	}{
		{"SELECT 1 + 2 * 3", Int(7)},
		{"SELECT (1 + 2) * 3", Int(9)},
		{"SELECT 7 / 2", Int(3)},       // integer division
		{"SELECT 7.0 / 2", Float(3.5)}, // float division
		{"SELECT 7 % 3", Int(1)},
		{"SELECT -POWER(2, 10)", Float(-1024)},
		{"SELECT FLOOR((2.5 + 90.0) / 0.00833333333333)", Float(11100)},
		{"SELECT ABS(-3)", Int(3)},
		{"SELECT CASE WHEN 1 > 2 THEN 'a' WHEN 2 > 1 THEN 'b' ELSE 'c' END", String("b")},
		{"SELECT CASE WHEN 1 > 2 THEN 'a' END", Null()},
		{"SELECT CAST(3.9 AS INT)", Int(3)},
		{"SELECT CAST('42' AS BIGINT)", Int(42)},
		{"SELECT 'a' || 'b'", String("ab")},
		{"SELECT 1 BETWEEN 0 AND 2", Bool(true)},
		{"SELECT 5 NOT BETWEEN 0 AND 2", Bool(true)},
		{"SELECT 2 IN (1, 2, 3)", Bool(true)},
		{"SELECT NULL IS NULL", Bool(true)},
		{"SELECT 1 IS NOT NULL", Bool(true)},
		{"SELECT 'galaxy' LIKE 'gal%'", Bool(true)},
		{"SELECT 'galaxy' LIKE 'g_laxy'", Bool(true)},
		{"SELECT 'galaxy' LIKE 'gx%'", Bool(false)},
		{"SELECT COALESCE(NULL, NULL, 5)", Int(5)},
		{"SELECT ISNULL(NULL, 9)", Int(9)},
		{"SELECT NULLIF(3, 3)", Null()},
		{"SELECT RADIANS(180.0)", Float(math.Pi)},
		{"SELECT NOT TRUE", Bool(false)},
		{"SELECT NULL + 1", Null()},
		{"SELECT SIGN(-2.5)", Float(-1)},
	}
	for _, c := range cases {
		rows := mustQuery(t, db, c.sql)
		if !rows.Next() {
			t.Fatalf("%q returned no rows", c.sql)
		}
		got := rows.Row()[0]
		if got.T != c.want.T {
			t.Errorf("%q = %v (%s), want %v (%s)", c.sql, got, got.T, c.want, c.want.T)
			continue
		}
		if got.T == TFloat {
			if math.Abs(got.F-c.want.F) > 1e-9 {
				t.Errorf("%q = %v, want %v", c.sql, got, c.want)
			}
		} else if got != c.want {
			t.Errorf("%q = %v, want %v", c.sql, got, c.want)
		}
	}
}

func TestExpressionErrors(t *testing.T) {
	db := Open(64)
	bad := []string{
		"SELECT 1 / 0",
		"SELECT SQRT(-1)",
		"SELECT LOG(0)",
		"SELECT NOSUCHFUNC(1)",
		"SELECT 'a' + 1",
		"SELECT CAST('xyz' AS INT)",
	}
	for _, sql := range bad {
		if _, err := db.Query(sql); err == nil {
			t.Errorf("%q succeeded, want error", sql)
		}
	}
}

func TestParams(t *testing.T) {
	db := Open(64)
	mustExec(t, db, "CREATE TABLE p (x int)")
	mustExec(t, db, "INSERT INTO p VALUES (?), (?), (?)", Int(1), Int(2), Int(3))
	rows := mustQuery(t, db, "SELECT COUNT(*) FROM p WHERE x BETWEEN ? AND ?", Int(2), Int(9))
	rows.Next()
	if rows.Row()[0].I != 2 {
		t.Errorf("param query count = %v", rows.Row()[0])
	}
	if _, err := db.Query("SELECT ?"); err == nil {
		t.Error("missing parameter accepted")
	}
}

func TestScalarUDFAndTVF(t *testing.T) {
	db := Open(64)
	db.RegisterScalar("fBCGr200", func(args []Value) (Value, error) {
		n, err := args[0].AsFloat()
		if err != nil {
			return Value{}, err
		}
		return Float(0.17 * math.Pow(n, 0.51)), nil
	})
	rows := mustQuery(t, db, "SELECT dbo.fBCGr200(100.0)")
	rows.Next()
	if got, _ := rows.Row()[0].AsFloat(); math.Abs(got-1.78) > 0.02 {
		t.Errorf("fBCGr200(100) = %g", got)
	}

	db.RegisterTVF("fRange", &TVF{
		Cols: []Column{{Name: "n", Type: TInt}},
		Fn: func(args []Value) ([][]Value, error) {
			hi, err := args[0].AsInt()
			if err != nil {
				return nil, err
			}
			var rows [][]Value
			for i := int64(0); i < hi; i++ {
				rows = append(rows, []Value{Int(i)})
			}
			return rows, nil
		},
	})
	rows = mustQuery(t, db, "SELECT SUM(r.n) FROM fRange(5) r")
	rows.Next()
	if rows.Row()[0].I != 10 {
		t.Errorf("TVF sum = %v", rows.Row()[0])
	}
	// TVF joined with a table, the fGetNearbyObjEqZd JOIN Galaxy shape.
	mustExec(t, db, "CREATE TABLE gx (id bigint PRIMARY KEY, mag float)")
	mustExec(t, db, "INSERT INTO gx VALUES (0, 17.0), (2, 18.0), (4, 19.0)")
	rows = mustQuery(t, db, "SELECT g.mag FROM fRange(5) n JOIN gx g ON g.id = n.n ORDER BY g.mag")
	if rows.Len() != 3 {
		t.Errorf("TVF join returned %d rows", rows.Len())
	}
}

func TestInsertSelectAndClusteredIndex(t *testing.T) {
	db := Open(256)
	mustExec(t, db, "CREATE TABLE src (objid bigint PRIMARY KEY, dec float)")
	for i := 0; i < 500; i++ {
		mustExec(t, db, "INSERT INTO src VALUES (?, ?)", Int(int64(i)), Float(float64(i%90)-45))
	}
	mustExec(t, db, "CREATE TABLE zone (zoneid int, objid bigint, dec float)")
	// spZone shape: compute zoneid and insert.
	n := mustExec(t, db, "INSERT INTO zone SELECT CAST(FLOOR((dec + 90.0) / 0.00833333) AS INT), objid, dec FROM src")
	if n != 500 {
		t.Fatalf("INSERT SELECT moved %d rows", n)
	}
	mustExec(t, db, "CREATE CLUSTERED INDEX ix_zone ON zone(zoneid, objid)")

	// Scan order must follow the clustered key.
	rows := mustQuery(t, db, "SELECT zoneid FROM zone")
	prev := int64(-1 << 62)
	for rows.Next() {
		z := rows.Row()[0].I
		if z < prev {
			t.Fatal("rows not in clustered order after CREATE CLUSTERED INDEX")
		}
		prev = z
	}

	// Range predicate on the leading key column (uses pushdown).
	rows = mustQuery(t, db, "SELECT COUNT(*) FROM zone WHERE zoneid BETWEEN 6000 AND 8000")
	rows.Next()
	var want int64
	all := mustQuery(t, db, "SELECT zoneid FROM zone")
	for all.Next() {
		if z := all.Row()[0].I; z >= 6000 && z <= 8000 {
			want++
		}
	}
	if rows.Row()[0].I != want {
		t.Errorf("range count = %v, want %d", rows.Row()[0], want)
	}
}

func TestRangePushdownMatchesFullScan(t *testing.T) {
	db := Open(256)
	mustExec(t, db, "CREATE TABLE t (k bigint PRIMARY KEY, v int)")
	for i := 0; i < 1000; i++ {
		mustExec(t, db, "INSERT INTO t VALUES (?, ?)", Int(int64(i)), Int(int64(i*i%97)))
	}
	for _, cond := range []string{
		"k BETWEEN 100 AND 200",
		"k >= 990",
		"k < 10",
		"k = 500",
		"k > 100 AND k <= 110",
		"250 <= k AND k < 260",
	} {
		q := "SELECT COUNT(*) FROM t WHERE " + cond
		rows := mustQuery(t, db, q)
		rows.Next()
		got := rows.Row()[0].I
		// Oracle: evaluate via a full scan with the filter on a
		// non-key expression to defeat pushdown.
		q2 := "SELECT COUNT(*) FROM t WHERE (v >= 0 OR v < 0) AND (" + cond + ")"
		rows2 := mustQuery(t, db, q2)
		rows2.Next()
		if got != rows2.Row()[0].I {
			t.Errorf("pushdown mismatch for %q: %d vs %d", cond, got, rows2.Row()[0].I)
		}
	}
}

func TestFileBackedDB(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.pages")
	db, err := OpenAt(path, 8) // tiny pool so eviction must hit the file
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE t (k bigint PRIMARY KEY, s text)")
	for i := 0; i < 2000; i++ {
		mustExec(t, db, "INSERT INTO t VALUES (?, ?)", Int(int64(i)), String(strings.Repeat("x", 50)))
	}
	rows := mustQuery(t, db, "SELECT COUNT(*) FROM t")
	rows.Next()
	if rows.Row()[0].I != 2000 {
		t.Errorf("count = %v", rows.Row()[0])
	}
	// A 64-frame pool cannot hold 2000 * 60B rows; physical I/O must occur.
	if s := db.Stats(); s.PhysicalWrites == 0 {
		t.Error("expected physical writes on file-backed db")
	}
}

func TestExecScript(t *testing.T) {
	db := Open(64)
	err := db.ExecScript(`
		CREATE TABLE a (x int);
		INSERT INTO a VALUES (1);
		INSERT INTO a VALUES (2);
	`)
	if err != nil {
		t.Fatal(err)
	}
	rows := mustQuery(t, db, "SELECT SUM(x) FROM a")
	rows.Next()
	if rows.Row()[0].I != 3 {
		t.Errorf("sum = %v", rows.Row()[0])
	}
	if err := db.ExecScript("CREATE TABLE b (x int); BOGUS;"); err == nil {
		t.Error("script with bad statement accepted")
	}
}

func TestErrorsOnUnknownObjects(t *testing.T) {
	db := Open(64)
	for _, sql := range []string{
		"SELECT * FROM missing",
		"INSERT INTO missing VALUES (1)",
		"UPDATE missing SET x = 1",
		"DELETE FROM missing",
		"TRUNCATE TABLE missing",
		"DROP TABLE missing",
		"SELECT * FROM fNoSuchTVF(1) x",
	} {
		if _, err := db.Exec(sql); err == nil {
			t.Errorf("%q succeeded, want error", sql)
		}
	}
	mustExec(t, db, "CREATE TABLE t (a int)")
	if _, err := db.Exec("CREATE TABLE t (a int)"); err == nil {
		t.Error("duplicate CREATE TABLE accepted")
	}
	if _, err := db.Query("SELECT nope FROM t"); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := db.Query("SELECT a FROM t x JOIN t y ON x.a = y.a WHERE a = 1"); err == nil {
		t.Error("ambiguous column accepted")
	}
}

func TestNullSemantics(t *testing.T) {
	db := Open(64)
	mustExec(t, db, "CREATE TABLE n (x int)")
	mustExec(t, db, "INSERT INTO n VALUES (1), (NULL), (3)")
	// NULL comparisons exclude rows.
	rows := mustQuery(t, db, "SELECT COUNT(*) FROM n WHERE x > 0")
	rows.Next()
	if rows.Row()[0].I != 2 {
		t.Errorf("count = %v, want 2 (NULL row excluded)", rows.Row()[0])
	}
	// IS NULL finds them.
	rows = mustQuery(t, db, "SELECT COUNT(*) FROM n WHERE x IS NULL")
	rows.Next()
	if rows.Row()[0].I != 1 {
		t.Errorf("IS NULL count = %v", rows.Row()[0])
	}
	// NULLs don't join.
	mustExec(t, db, "CREATE TABLE n2 (x int)")
	mustExec(t, db, "INSERT INTO n2 VALUES (NULL), (3)")
	rows = mustQuery(t, db, "SELECT COUNT(*) FROM n a JOIN n2 b ON a.x = b.x")
	rows.Next()
	if rows.Row()[0].I != 1 {
		t.Errorf("join count = %v, want 1", rows.Row()[0])
	}
}

func TestOrderByVariants(t *testing.T) {
	db := Open(64)
	mustExec(t, db, "CREATE TABLE o (a int, b text)")
	mustExec(t, db, "INSERT INTO o VALUES (3, 'c'), (1, 'a'), (2, 'b'), (NULL, 'n')")
	// NULLs first ascending.
	rows := mustQuery(t, db, "SELECT a FROM o ORDER BY a")
	rows.Next()
	if !rows.Row()[0].IsNull() {
		t.Error("NULL should sort first ascending")
	}
	// Order by alias.
	rows = mustQuery(t, db, "SELECT a * 10 AS big FROM o WHERE a IS NOT NULL ORDER BY big DESC")
	rows.Next()
	if rows.Row()[0].I != 30 {
		t.Errorf("alias order first = %v", rows.Row()[0])
	}
	// Order by ordinal.
	rows = mustQuery(t, db, "SELECT b FROM o ORDER BY 1 DESC")
	rows.Next()
	if rows.Row()[0].S != "n" {
		t.Errorf("ordinal order first = %v", rows.Row()[0])
	}
	// Order by expression not in the select list.
	rows = mustQuery(t, db, "SELECT b FROM o WHERE a IS NOT NULL ORDER BY a * -1")
	rows.Next()
	if rows.Row()[0].S != "c" {
		t.Errorf("expression order first = %v", rows.Row()[0])
	}
}

func TestGroupKeyIntFloatJoin(t *testing.T) {
	// Integral floats must hash-join and group with equal ints.
	db := Open(64)
	mustExec(t, db, "CREATE TABLE a (x int)")
	mustExec(t, db, "CREATE TABLE b (x float)")
	mustExec(t, db, "INSERT INTO a VALUES (1), (2)")
	mustExec(t, db, "INSERT INTO b VALUES (1.0), (3.0)")
	rows := mustQuery(t, db, "SELECT COUNT(*) FROM a JOIN b ON a.x = b.x")
	rows.Next()
	if rows.Row()[0].I != 1 {
		t.Errorf("int/float hash join count = %v, want 1", rows.Row()[0])
	}
}

func TestSelectIntoStyleWorkflow(t *testing.T) {
	// The paper's spImportGalaxy shape: filtered projection from a source
	// table into a working table, with computed error columns.
	db := Open(256)
	mustExec(t, db, `CREATE TABLE photoobj (objid bigint PRIMARY KEY, ra float, dec float,
		dered_g float, dered_r float, dered_i float)`)
	for i := 0; i < 200; i++ {
		mustExec(t, db, "INSERT INTO photoobj VALUES (?, ?, ?, ?, ?, ?)",
			Int(int64(i)), Float(190+float64(i)*0.05), Float(float64(i%10)),
			Float(19.0), Float(18.2), Float(17.9))
	}
	mustExec(t, db, `CREATE TABLE galaxy (objid bigint PRIMARY KEY, ra float, dec float,
		i real, gr real, ri real, sigmagr float, sigmari float)`)
	n := mustExec(t, db, `INSERT INTO galaxy
		SELECT objid, ra, dec,
		       dered_i,
		       dered_g - dered_r,
		       dered_r - dered_i,
		       CAST(2.089 * POWER(10.000, 0.228 * dered_i - 6.0) AS FLOAT),
		       CAST(4.266 * POWER(10.0000, 0.206 * dered_i - 6.0) AS FLOAT)
		FROM photoobj
		WHERE ra BETWEEN 190 AND 195 AND dec BETWEEN 0 AND 5`)
	if n == 0 {
		t.Fatal("import moved no rows")
	}
	rows := mustQuery(t, db, "SELECT MIN(gr), MAX(ri), MIN(sigmagr) FROM galaxy")
	rows.Next()
	gr, _ := rows.Row()[0].AsFloat()
	ri, _ := rows.Row()[1].AsFloat()
	sg, _ := rows.Row()[2].AsFloat()
	if math.Abs(gr-0.8) > 1e-9 || math.Abs(ri-0.3) > 1e-9 {
		t.Errorf("colour columns wrong: gr=%g ri=%g", gr, ri)
	}
	wantSg := 2.089 * math.Pow(10, 0.228*17.9-6)
	if math.Abs(sg-wantSg) > 1e-9 {
		t.Errorf("sigmagr = %g, want %g", sg, wantSg)
	}
}

func TestManyRowsStress(t *testing.T) {
	db := Open(512)
	mustExec(t, db, "CREATE TABLE s (k bigint PRIMARY KEY, v float)")
	tbl, _ := db.Table("s")
	for i := 0; i < 20000; i++ {
		if err := tbl.Insert([]Value{Int(int64(i)), Float(float64(i) * 1.5)}); err != nil {
			t.Fatal(err)
		}
	}
	rows := mustQuery(t, db, "SELECT COUNT(*), MIN(v), MAX(v) FROM s WHERE k >= 10000")
	rows.Next()
	if rows.Row()[0].I != 10000 {
		t.Errorf("count = %v", rows.Row()[0])
	}
	if mn, _ := rows.Row()[1].AsFloat(); mn != 15000 {
		t.Errorf("min = %v", rows.Row()[1])
	}
}

func BenchmarkInsert(b *testing.B) {
	db := Open(1024)
	if _, err := db.Exec("CREATE TABLE bench (k bigint PRIMARY KEY, v float)"); err != nil {
		b.Fatal(err)
	}
	tbl, _ := db.Table("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tbl.Insert([]Value{Int(int64(i)), Float(float64(i))}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRangeQuery(b *testing.B) {
	db := Open(1024)
	if _, err := db.Exec("CREATE TABLE bench (k bigint PRIMARY KEY, v float)"); err != nil {
		b.Fatal(err)
	}
	tbl, _ := db.Table("bench")
	for i := 0; i < 50000; i++ {
		if err := tbl.Insert([]Value{Int(int64(i)), Float(float64(i))}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := int64(i % 40000)
		rows, err := db.Query("SELECT COUNT(*) FROM bench WHERE k BETWEEN ? AND ?", Int(lo), Int(lo+1000))
		if err != nil {
			b.Fatal(err)
		}
		rows.Next()
		if rows.Row()[0].I != 1001 {
			b.Fatalf("count = %v", rows.Row()[0])
		}
	}
}

func ExampleDB_Query() {
	db := Open(64)
	db.Exec("CREATE TABLE stars (name text, mag float)")
	db.Exec("INSERT INTO stars VALUES ('Vega', 0.03), ('Sirius', -1.46)")
	rows, _ := db.Query("SELECT name FROM stars ORDER BY mag")
	for rows.Next() {
		fmt.Println(rows.Row()[0].S)
	}
	// Output:
	// Sirius
	// Vega
}

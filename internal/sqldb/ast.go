package sqldb

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// ColumnDef is one column of a CREATE TABLE.
type ColumnDef struct {
	Name     string
	Type     Type
	PK       bool
	Identity bool // IDENTITY(1,1): auto-assigned ascending integer
}

// CreateTableStmt is CREATE TABLE name (cols...).
type CreateTableStmt struct {
	Name string
	Cols []ColumnDef
}

// CreateIndexStmt is CREATE [CLUSTERED] INDEX name ON table(cols...).
// Only clustered indexes are supported: the statement re-sorts the table's
// storage by the given key, which is what the paper's spZone does.
type CreateIndexStmt struct {
	Name      string
	Table     string
	Cols      []string
	Clustered bool
}

// CreateProjectionStmt is CREATE COLUMNAR PROJECTION ON table: it
// materialises a column-major snapshot of the table (internal/colstore)
// that the planner's ColumnarScan and the batched zone sweeps read. The
// table must be clustered on (int, float, ...) leading key columns and
// hold only non-null numeric data; any later write detaches the snapshot.
type CreateProjectionStmt struct {
	Table string
}

// ExplainStmt is EXPLAIN [ANALYZE] select: it plans the query and returns
// the physical operator tree, one line per row. ANALYZE also executes the
// plan so each operator reports its actual row count.
type ExplainStmt struct {
	Analyze bool
	Query   *SelectStmt
}

// DropTableStmt is DROP TABLE [IF EXISTS] name.
type DropTableStmt struct {
	Name     string
	IfExists bool
}

// TruncateStmt is TRUNCATE TABLE name.
type TruncateStmt struct{ Table string }

// InsertStmt is INSERT INTO table [(cols)] VALUES (...),(...) or
// INSERT INTO table [(cols)] SELECT ...
type InsertStmt struct {
	Table string
	Cols  []string
	Rows  [][]Expr
	Query *SelectStmt
}

// SetClause is one col = expr assignment in UPDATE.
type SetClause struct {
	Col string
	Val Expr
}

// UpdateStmt is UPDATE table SET ... [WHERE ...].
type UpdateStmt struct {
	Table string
	Sets  []SetClause
	Where Expr
}

// DeleteStmt is DELETE FROM table [WHERE ...].
type DeleteStmt struct {
	Table string
	Where Expr
}

type joinKind int

const (
	joinNone joinKind = iota // first FROM item
	joinInner
	joinCross
	joinLeft
)

// FromItem is one entry of the FROM clause: a base table or a table-valued
// function call, with an optional join to the items before it.
type FromItem struct {
	Table string
	Args  []Expr // non-nil: table-valued function call
	IsTVF bool
	Alias string
	Join  joinKind
	On    Expr // nil for CROSS JOIN and the first item
}

// SelectItem is one projection of the SELECT list.
type SelectItem struct {
	Expr      Expr
	Alias     string
	Star      bool   // SELECT * or t.*
	StarTable string // qualifier of t.*
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []FromItem
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int64 // -1: none (also set by TOP n)
}

func (*CreateTableStmt) stmt()      {}
func (*CreateIndexStmt) stmt()      {}
func (*CreateProjectionStmt) stmt() {}
func (*ExplainStmt) stmt()          {}
func (*DropTableStmt) stmt()        {}
func (*TruncateStmt) stmt()         {}
func (*InsertStmt) stmt()           {}
func (*UpdateStmt) stmt()           {}
func (*DeleteStmt) stmt()           {}
func (*SelectStmt) stmt()           {}

// Expr is any SQL expression node.
type Expr interface{ expr() }

// Literal is a constant.
type Literal struct{ Val Value }

// Param is a ? placeholder, bound positionally at execution.
type Param struct{ Index int }

// ColumnRef is a possibly-qualified column reference.
type ColumnRef struct{ Table, Name string }

// Unary is -x, +x or NOT x.
type Unary struct {
	Op string
	X  Expr
}

// Binary is a binary operator: + - * / % = <> < <= > >= AND OR ||.
type Binary struct {
	Op   string
	L, R Expr
}

// Between is x [NOT] BETWEEN lo AND hi.
type Between struct {
	X, Lo, Hi Expr
	Not       bool
}

// InList is x [NOT] IN (e1, e2, ...).
type InList struct {
	X    Expr
	List []Expr
	Not  bool
}

// IsNull is x IS [NOT] NULL.
type IsNull struct {
	X   Expr
	Not bool
}

// Call is a function call; aggregates are recognised by name during
// planning. Star marks COUNT(*).
type Call struct {
	Name string
	Args []Expr
	Star bool
}

// When is one WHEN cond THEN result arm.
type When struct{ Cond, Result Expr }

// Case is CASE WHEN ... THEN ... [ELSE ...] END (searched form).
type Case struct {
	Whens []When
	Else  Expr
}

// Cast is CAST(x AS type).
type Cast struct {
	X  Expr
	To Type
}

func (*Literal) expr()   {}
func (*Param) expr()     {}
func (*ColumnRef) expr() {}
func (*Unary) expr()     {}
func (*Binary) expr()    {}
func (*Between) expr()   {}
func (*InList) expr()    {}
func (*IsNull) expr()    {}
func (*Call) expr()      {}
func (*Case) expr()      {}
func (*Cast) expr()      {}

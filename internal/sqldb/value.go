// Package sqldb is a from-scratch SQL database engine over the storage
// layer: a lexer, recursive-descent parser, a two-phase query compiler —
// logical binding (plan.go) then a rule-based physical planner with
// Volcano-style operators (physical.go) — and registries for scalar and
// table-valued functions so the paper's UDFs (fGetNearbyObjEqZd,
// fBCGr200, ...) can be installed from Go.
//
// The planner is where the engine's fast paths become reachable from
// plain SQL: scans over tables with a columnar projection lower to
// ColumnarScan (segment pages, directory pruning, only referenced
// columns decoded), lateral joins against batch-capable TVFs lower to
// ZoneSweepJoin (the batched zone sweep answering every outer row in one
// pass), and EXPLAIN [ANALYZE] prints the physical tree with
// estimated/actual row counts. Expressions bind to schema slots at plan
// time; operators exchange borrowed rows and the row-shaping operators
// allocate results from block arenas, so scan-shaped queries stay
// allocation-light. PlannerKnobs switches individual rules off for
// equivalence tests and ablations.
//
// The dialect is the subset of T-SQL the paper's appendix needs: CREATE
// TABLE (with PRIMARY KEY), CREATE CLUSTERED INDEX, CREATE COLUMNAR
// PROJECTION, EXPLAIN [ANALYZE], INSERT ... VALUES / SELECT, SELECT with
// JOIN/CROSS JOIN/WHERE/GROUP BY/HAVING/ORDER BY/LIMIT, UPDATE, DELETE,
// TRUNCATE TABLE, and DROP TABLE. See parser.go for the grammar.
// Results come back materialised (DB.Query) or streamed from the plan
// (DB.QueryIter).
//
// Storage contract: a Table is a B+tree in clustered-key order with two
// write paths — per-row Insert (one descent per row) and BulkInsert
// (encode once, sort the run, build packed pages bottom-up), freely
// mixable — and cursor reads with lazy column decode (SetEagerColumns /
// RowPrefix). Writes serialise on the table's mutex; any number of
// cursors may read one table concurrently (each goroutine using its own
// cursor), which is what the parallel zone sweep in internal/zone relies
// on. See ARCHITECTURE.md for the layer map.
package sqldb

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Type is a column or value type.
type Type int

// Value types. TNull is the type of the SQL NULL literal.
const (
	TNull Type = iota
	TInt
	TFloat
	TString
	TBool
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TNull:
		return "NULL"
	case TInt:
		return "BIGINT"
	case TFloat:
		return "FLOAT"
	case TString:
		return "TEXT"
	case TBool:
		return "BIT"
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

// Value is a runtime SQL value.
type Value struct {
	T Type
	I int64
	F float64
	S string
	B bool
}

// Convenience constructors.
func Null() Value            { return Value{T: TNull} }
func Int(v int64) Value      { return Value{T: TInt, I: v} }
func Float(v float64) Value  { return Value{T: TFloat, F: v} }
func String(v string) Value  { return Value{T: TString, S: v} }
func Bool(v bool) Value      { return Value{T: TBool, B: v} }
func (v Value) IsNull() bool { return v.T == TNull }

// AsFloat coerces numeric values to float64.
func (v Value) AsFloat() (float64, error) {
	switch v.T {
	case TInt:
		return float64(v.I), nil
	case TFloat:
		return v.F, nil
	}
	return 0, fmt.Errorf("sqldb: cannot use %s value as a number", v.T)
}

// AsInt coerces numeric values to int64 (floats truncate toward zero, the
// T-SQL CAST(x AS INT) behaviour).
func (v Value) AsInt() (int64, error) {
	switch v.T {
	case TInt:
		return v.I, nil
	case TFloat:
		return int64(v.F), nil
	}
	return 0, fmt.Errorf("sqldb: cannot use %s value as an integer", v.T)
}

// AsBool interprets the value as a condition result: SQL three-valued logic
// collapses NULL to false at the WHERE clause.
func (v Value) AsBool() bool { return v.T == TBool && v.B }

// String formats the value for result display.
func (v Value) String() string {
	switch v.T {
	case TNull:
		return "NULL"
	case TInt:
		return strconv.FormatInt(v.I, 10)
	case TFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TString:
		return v.S
	case TBool:
		if v.B {
			return "true"
		}
		return "false"
	}
	return "?"
}

// Compare orders two non-null values of comparable types. It returns
// -1, 0, +1 and an error for incomparable types. Numeric types compare
// mutually; strings compare lexicographically (case-sensitive); bools
// compare false < true.
func Compare(a, b Value) (int, error) {
	if a.IsNull() || b.IsNull() {
		return 0, fmt.Errorf("sqldb: NULL is not comparable")
	}
	if isNumeric(a.T) && isNumeric(b.T) {
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		}
		return 0, nil
	}
	if a.T == TString && b.T == TString {
		return strings.Compare(a.S, b.S), nil
	}
	if a.T == TBool && b.T == TBool {
		switch {
		case !a.B && b.B:
			return -1, nil
		case a.B && !b.B:
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("sqldb: cannot compare %s with %s", a.T, b.T)
}

// CompareForSort orders values with NULLs first, for ORDER BY and sort
// operators; values of incomparable types order by type tag so sorting is
// total.
func CompareForSort(a, b Value) int {
	switch {
	case a.IsNull() && b.IsNull():
		return 0
	case a.IsNull():
		return -1
	case b.IsNull():
		return 1
	}
	if c, err := Compare(a, b); err == nil {
		return c
	}
	switch {
	case a.T < b.T:
		return -1
	case a.T > b.T:
		return 1
	}
	return 0
}

// Equal reports SQL equality of two non-null values (numeric cross-type
// equality included). NULLs are never equal.
func Equal(a, b Value) bool {
	if a.IsNull() || b.IsNull() {
		return false
	}
	c, err := Compare(a, b)
	return err == nil && c == 0
}

// GroupKey renders a value as a hashable group/join key. NULLs group
// together (SQL GROUP BY semantics).
func (v Value) GroupKey() string {
	switch v.T {
	case TNull:
		return "\x00N"
	case TInt:
		return "\x01" + strconv.FormatInt(v.I, 10)
	case TFloat:
		if v.F == math.Trunc(v.F) && math.Abs(v.F) < 1e15 {
			// Integral floats must join with equal ints.
			return "\x01" + strconv.FormatInt(int64(v.F), 10)
		}
		return "\x02" + strconv.FormatFloat(v.F, 'b', -1, 64)
	case TString:
		return "\x03" + v.S
	case TBool:
		if v.B {
			return "\x04t"
		}
		return "\x04f"
	}
	return "?"
}

// NeedsCoerce reports whether CoerceTo(t) would do more than return v
// unchanged. The write paths guard their CoerceTo calls with it so the
// hot encode loops skip the call for already-typed values (the common
// case in bulk ingest); keep it in lock-step with CoerceTo's first line.
func (v Value) NeedsCoerce(t Type) bool { return !v.IsNull() && v.T != t }

// CoerceTo converts v for storage into a column of type t, applying the
// implicit conversions T-SQL allows (int↔float, anything→text stays typed).
func (v Value) CoerceTo(t Type) (Value, error) {
	if v.IsNull() || v.T == t {
		return v, nil
	}
	switch t {
	case TInt:
		if v.T == TFloat {
			return Int(int64(v.F)), nil
		}
	case TFloat:
		if v.T == TInt {
			return Float(float64(v.I)), nil
		}
	case TBool:
		if v.T == TInt {
			return Bool(v.I != 0), nil
		}
	}
	return Value{}, fmt.Errorf("sqldb: cannot store %s value in %s column", v.T, t)
}

func isNumeric(t Type) bool { return t == TInt || t == TFloat }

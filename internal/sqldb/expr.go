package sqldb

import (
	"fmt"
	"math"
	"strings"
)

// colMeta names one column of an operator's output schema.
type colMeta struct {
	alias string // table alias (lowercased) or ""
	name  string // column name (original case)
}

// schema is an ordered list of output columns.
type schema []colMeta

// resolve finds the index of a column reference. Unqualified names must be
// unambiguous.
func (s schema) resolve(table, name string) (int, error) {
	table = strings.ToLower(table)
	found := -1
	for i, c := range s {
		if !strings.EqualFold(c.name, name) {
			continue
		}
		if table != "" && c.alias != table {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("sqldb: ambiguous column %q", name)
		}
		found = i
	}
	if found < 0 {
		if table != "" {
			return 0, fmt.Errorf("sqldb: unknown column %s.%s", table, name)
		}
		return 0, fmt.Errorf("sqldb: unknown column %q", name)
	}
	return found, nil
}

// aggRef replaces an aggregate Call during planning; it reads slot Idx of
// the group's computed aggregate values.
type aggRef struct{ Idx int }

func (*aggRef) expr() {}

// boundCol replaces a ColumnRef during physical planning: the reference is
// resolved to its schema slot once, so per-row evaluation is an index, not
// a name lookup. Table/Name are kept for display.
type boundCol struct {
	Idx         int
	Table, Name string
}

func (*boundCol) expr() {}

// env is the evaluation context for one row.
type env struct {
	schema schema
	row    []Value
	params []Value
	db     *DB
	aggs   []Value // populated for post-aggregation evaluation
}

// eval computes an expression against the environment.
func eval(e Expr, ev *env) (Value, error) {
	switch x := e.(type) {
	case *Literal:
		return x.Val, nil
	case *Param:
		if x.Index >= len(ev.params) {
			return Value{}, fmt.Errorf("sqldb: statement needs at least %d parameters, got %d", x.Index+1, len(ev.params))
		}
		return ev.params[x.Index], nil
	case *ColumnRef:
		i, err := ev.schema.resolve(x.Table, x.Name)
		if err != nil {
			return Value{}, err
		}
		return ev.row[i], nil
	case *boundCol:
		return ev.row[x.Idx], nil
	case *aggRef:
		return ev.aggs[x.Idx], nil
	case *Unary:
		return evalUnary(x, ev)
	case *Binary:
		return evalBinary(x, ev)
	case *Between:
		v, err := eval(x.X, ev)
		if err != nil {
			return Value{}, err
		}
		lo, err := eval(x.Lo, ev)
		if err != nil {
			return Value{}, err
		}
		hi, err := eval(x.Hi, ev)
		if err != nil {
			return Value{}, err
		}
		if v.IsNull() || lo.IsNull() || hi.IsNull() {
			return Null(), nil
		}
		cLo, err := Compare(v, lo)
		if err != nil {
			return Value{}, err
		}
		cHi, err := Compare(v, hi)
		if err != nil {
			return Value{}, err
		}
		res := cLo >= 0 && cHi <= 0
		if x.Not {
			res = !res
		}
		return Bool(res), nil
	case *InList:
		v, err := eval(x.X, ev)
		if err != nil {
			return Value{}, err
		}
		if v.IsNull() {
			return Null(), nil
		}
		sawNull := false
		for _, item := range x.List {
			iv, err := eval(item, ev)
			if err != nil {
				return Value{}, err
			}
			if iv.IsNull() {
				sawNull = true
				continue
			}
			if Equal(v, iv) {
				return Bool(!x.Not), nil
			}
		}
		if sawNull {
			return Null(), nil
		}
		return Bool(x.Not), nil
	case *IsNull:
		v, err := eval(x.X, ev)
		if err != nil {
			return Value{}, err
		}
		if x.Not {
			return Bool(!v.IsNull()), nil
		}
		return Bool(v.IsNull()), nil
	case *Call:
		return evalCall(x, ev)
	case *Case:
		for _, w := range x.Whens {
			c, err := eval(w.Cond, ev)
			if err != nil {
				return Value{}, err
			}
			if c.AsBool() {
				return eval(w.Result, ev)
			}
		}
		if x.Else != nil {
			return eval(x.Else, ev)
		}
		return Null(), nil
	case *Cast:
		v, err := eval(x.X, ev)
		if err != nil {
			return Value{}, err
		}
		return castValue(v, x.To)
	}
	return Value{}, fmt.Errorf("sqldb: cannot evaluate %T", e)
}

func evalUnary(x *Unary, ev *env) (Value, error) {
	v, err := eval(x.X, ev)
	if err != nil {
		return Value{}, err
	}
	switch x.Op {
	case "-":
		switch v.T {
		case TNull:
			return Null(), nil
		case TInt:
			return Int(-v.I), nil
		case TFloat:
			return Float(-v.F), nil
		}
		return Value{}, fmt.Errorf("sqldb: cannot negate %s", v.T)
	case "NOT":
		if v.IsNull() {
			return Null(), nil
		}
		if v.T != TBool {
			return Value{}, fmt.Errorf("sqldb: NOT applied to %s", v.T)
		}
		return Bool(!v.B), nil
	}
	return Value{}, fmt.Errorf("sqldb: unknown unary operator %q", x.Op)
}

func evalBinary(x *Binary, ev *env) (Value, error) {
	// AND/OR implement three-valued logic with short-circuiting.
	if x.Op == "AND" || x.Op == "OR" {
		l, err := eval(x.L, ev)
		if err != nil {
			return Value{}, err
		}
		if x.Op == "AND" && l.T == TBool && !l.B {
			return Bool(false), nil
		}
		if x.Op == "OR" && l.T == TBool && l.B {
			return Bool(true), nil
		}
		r, err := eval(x.R, ev)
		if err != nil {
			return Value{}, err
		}
		if x.Op == "AND" {
			if r.T == TBool && !r.B {
				return Bool(false), nil
			}
			if l.IsNull() || r.IsNull() {
				return Null(), nil
			}
			return Bool(l.AsBool() && r.AsBool()), nil
		}
		if r.T == TBool && r.B {
			return Bool(true), nil
		}
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		return Bool(l.AsBool() || r.AsBool()), nil
	}

	l, err := eval(x.L, ev)
	if err != nil {
		return Value{}, err
	}
	r, err := eval(x.R, ev)
	if err != nil {
		return Value{}, err
	}
	switch x.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		c, err := Compare(l, r)
		if err != nil {
			return Value{}, err
		}
		switch x.Op {
		case "=":
			return Bool(c == 0), nil
		case "<>":
			return Bool(c != 0), nil
		case "<":
			return Bool(c < 0), nil
		case "<=":
			return Bool(c <= 0), nil
		case ">":
			return Bool(c > 0), nil
		case ">=":
			return Bool(c >= 0), nil
		}
	case "+", "-", "*", "/", "%":
		return evalArith(x.Op, l, r)
	case "||":
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		return String(l.String() + r.String()), nil
	case "LIKE":
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		if l.T != TString || r.T != TString {
			return Value{}, fmt.Errorf("sqldb: LIKE requires strings")
		}
		return Bool(likeMatch(l.S, r.S)), nil
	}
	return Value{}, fmt.Errorf("sqldb: unknown operator %q", x.Op)
}

func evalArith(op string, l, r Value) (Value, error) {
	if l.IsNull() || r.IsNull() {
		return Null(), nil
	}
	if !isNumeric(l.T) || !isNumeric(r.T) {
		return Value{}, fmt.Errorf("sqldb: arithmetic on %s and %s", l.T, r.T)
	}
	// Integer arithmetic stays integral, except / which follows T-SQL
	// integer division only when both sides are ints.
	if l.T == TInt && r.T == TInt {
		switch op {
		case "+":
			return Int(l.I + r.I), nil
		case "-":
			return Int(l.I - r.I), nil
		case "*":
			return Int(l.I * r.I), nil
		case "/":
			if r.I == 0 {
				return Value{}, fmt.Errorf("sqldb: division by zero")
			}
			return Int(l.I / r.I), nil
		case "%":
			if r.I == 0 {
				return Value{}, fmt.Errorf("sqldb: modulo by zero")
			}
			return Int(l.I % r.I), nil
		}
	}
	lf, _ := l.AsFloat()
	rf, _ := r.AsFloat()
	switch op {
	case "+":
		return Float(lf + rf), nil
	case "-":
		return Float(lf - rf), nil
	case "*":
		return Float(lf * rf), nil
	case "/":
		if rf == 0 {
			return Value{}, fmt.Errorf("sqldb: division by zero")
		}
		return Float(lf / rf), nil
	case "%":
		if rf == 0 {
			return Value{}, fmt.Errorf("sqldb: modulo by zero")
		}
		return Float(math.Mod(lf, rf)), nil
	}
	return Value{}, fmt.Errorf("sqldb: unknown arithmetic operator %q", op)
}

// likeMatch implements SQL LIKE with % (any run) and _ (any single char).
func likeMatch(s, pattern string) bool {
	// Dynamic-programming match over bytes.
	n, m := len(s), len(pattern)
	prev := make([]bool, n+1)
	cur := make([]bool, n+1)
	prev[0] = true
	for j := 1; j <= m; j++ {
		pc := pattern[j-1]
		cur[0] = prev[0] && pc == '%'
		for i := 1; i <= n; i++ {
			switch pc {
			case '%':
				cur[i] = cur[i-1] || prev[i]
			case '_':
				cur[i] = prev[i-1]
			default:
				cur[i] = prev[i-1] && s[i-1] == pc
			}
		}
		prev, cur = cur, prev
	}
	return prev[n]
}

func castValue(v Value, to Type) (Value, error) {
	if v.IsNull() {
		return Null(), nil
	}
	switch to {
	case TInt:
		switch v.T {
		case TInt:
			return v, nil
		case TFloat:
			return Int(int64(v.F)), nil
		case TString:
			var i int64
			if _, err := fmt.Sscanf(strings.TrimSpace(v.S), "%d", &i); err != nil {
				return Value{}, fmt.Errorf("sqldb: cannot cast %q to integer", v.S)
			}
			return Int(i), nil
		case TBool:
			if v.B {
				return Int(1), nil
			}
			return Int(0), nil
		}
	case TFloat:
		switch v.T {
		case TInt:
			return Float(float64(v.I)), nil
		case TFloat:
			return v, nil
		case TString:
			var f float64
			if _, err := fmt.Sscanf(strings.TrimSpace(v.S), "%g", &f); err != nil {
				return Value{}, fmt.Errorf("sqldb: cannot cast %q to float", v.S)
			}
			return Float(f), nil
		}
	case TString:
		return String(v.String()), nil
	case TBool:
		switch v.T {
		case TBool:
			return v, nil
		case TInt:
			return Bool(v.I != 0), nil
		}
	}
	return Value{}, fmt.Errorf("sqldb: cannot cast %s to %s", v.T, to)
}

// walkExpr visits e and its children (pre-order).
func walkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *Unary:
		walkExpr(x.X, fn)
	case *Binary:
		walkExpr(x.L, fn)
		walkExpr(x.R, fn)
	case *Between:
		walkExpr(x.X, fn)
		walkExpr(x.Lo, fn)
		walkExpr(x.Hi, fn)
	case *InList:
		walkExpr(x.X, fn)
		for _, i := range x.List {
			walkExpr(i, fn)
		}
	case *IsNull:
		walkExpr(x.X, fn)
	case *Call:
		for _, a := range x.Args {
			walkExpr(a, fn)
		}
	case *Case:
		for _, w := range x.Whens {
			walkExpr(w.Cond, fn)
			walkExpr(w.Result, fn)
		}
		walkExpr(x.Else, fn)
	case *Cast:
		walkExpr(x.X, fn)
	}
}

// rewriteAggs replaces aggregate calls in e with aggRef nodes, appending
// each distinct call to *calls. Returns the rewritten expression.
func rewriteAggs(e Expr, calls *[]*Call) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *Call:
		if isAggregate(x.Name) {
			for i, c := range *calls {
				if c == x {
					return &aggRef{Idx: i}
				}
			}
			*calls = append(*calls, x)
			return &aggRef{Idx: len(*calls) - 1}
		}
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = rewriteAggs(a, calls)
		}
		return &Call{Name: x.Name, Args: args, Star: x.Star}
	case *Unary:
		return &Unary{Op: x.Op, X: rewriteAggs(x.X, calls)}
	case *Binary:
		return &Binary{Op: x.Op, L: rewriteAggs(x.L, calls), R: rewriteAggs(x.R, calls)}
	case *Between:
		return &Between{X: rewriteAggs(x.X, calls), Lo: rewriteAggs(x.Lo, calls), Hi: rewriteAggs(x.Hi, calls), Not: x.Not}
	case *InList:
		list := make([]Expr, len(x.List))
		for i, it := range x.List {
			list[i] = rewriteAggs(it, calls)
		}
		return &InList{X: rewriteAggs(x.X, calls), List: list, Not: x.Not}
	case *IsNull:
		return &IsNull{X: rewriteAggs(x.X, calls), Not: x.Not}
	case *Case:
		whens := make([]When, len(x.Whens))
		for i, w := range x.Whens {
			whens[i] = When{Cond: rewriteAggs(w.Cond, calls), Result: rewriteAggs(w.Result, calls)}
		}
		return &Case{Whens: whens, Else: rewriteAggs(x.Else, calls)}
	case *Cast:
		return &Cast{X: rewriteAggs(x.X, calls), To: x.To}
	}
	return e
}

// hasAggregate reports whether e contains an aggregate function call.
func hasAggregate(e Expr) bool {
	found := false
	walkExpr(e, func(x Expr) {
		if c, ok := x.(*Call); ok && isAggregate(c.Name) {
			found = true
		}
	})
	return found
}

func isAggregate(name string) bool {
	switch strings.ToUpper(name) {
	case "COUNT", "SUM", "MIN", "MAX", "AVG":
		return true
	}
	return false
}

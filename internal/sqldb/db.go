package sqldb

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/storage"
)

// DB is a single-namespace SQL database: the engine's equivalent of one
// SQL Server instance (or one CasJobs MyDB). Open gives an in-memory
// database; OpenAt persists pages to a file.
//
// Reads are snapshot-isolated and never block on writers. The catalog is
// an immutable value behind an atomic pointer (DDL clones and swaps it),
// each table's contents are an immutable version behind its own atomic
// pointer, and a query pins both through one Snapshot taken at query
// start. Superseded versions' pages are reclaimed by a storage.Reclaimer
// once the last snapshot that could reach them closes.
type DB struct {
	pool *storage.Pool
	rec  *storage.Reclaimer

	ddl sync.Mutex // serialises catalog transitions (one clone-and-swap at a time)
	cat atomic.Pointer[catalog]

	// met is the statement-level instrumentation attached by
	// EnableMetrics; nil (the default) keeps every statement free of
	// metric work beyond one pointer load.
	met atomic.Pointer[dbMetrics]
}

// catalog is one immutable published state of the database's namespace:
// tables, registered functions, and planner knobs. DDL never mutates a
// published catalog — it clones, edits the clone, and swaps the pointer —
// so a Snapshot's name resolution is stable for the whole query.
type catalog struct {
	tables  map[string]*Table
	scalars map[string]ScalarFunc
	tvfs    map[string]*TVF
	knobs   PlannerKnobs
}

func newCatalog() *catalog {
	return &catalog{
		tables:  make(map[string]*Table),
		scalars: make(map[string]ScalarFunc),
		tvfs:    make(map[string]*TVF),
	}
}

func (c *catalog) clone() *catalog {
	nc := &catalog{
		tables:  make(map[string]*Table, len(c.tables)+1),
		scalars: make(map[string]ScalarFunc, len(c.scalars)+1),
		tvfs:    make(map[string]*TVF, len(c.tvfs)+1),
		knobs:   c.knobs,
	}
	for k, v := range c.tables {
		nc.tables[k] = v
	}
	for k, v := range c.scalars {
		nc.scalars[k] = v
	}
	for k, v := range c.tvfs {
		nc.tvfs[k] = v
	}
	return nc
}

// updateCatalog runs one clone-edit-swap catalog transition. fn edits the
// clone in place; an error discards it and publishes nothing.
func (db *DB) updateCatalog(fn func(c *catalog) error) error {
	db.ddl.Lock()
	defer db.ddl.Unlock()
	nc := db.cat.Load().clone()
	if err := fn(nc); err != nil {
		return err
	}
	db.cat.Store(nc)
	return nil
}

// PoolConfig sizes the database's buffer pool.
type PoolConfig struct {
	// Frames is the pool size in page frames (0 selects 4096 = 32 MiB).
	Frames int
	// Shards is the pool's lock-shard count (0 selects GOMAXPROCS; see
	// storage.PoolOptions — the -pool-shards flag on the cmds lands here).
	Shards int
}

func (c PoolConfig) options() storage.PoolOptions {
	frames := c.Frames
	if frames == 0 {
		frames = 4096
	}
	return storage.PoolOptions{Frames: frames, Shards: c.Shards}
}

// Open creates an in-memory database with the given buffer-pool size in
// frames (0 selects a default of 4096 frames = 32 MiB).
func Open(frames int) *DB { return OpenPool(PoolConfig{Frames: frames}) }

// OpenPool creates an in-memory database with an explicitly configured
// buffer pool.
func OpenPool(cfg PoolConfig) *DB {
	pool := storage.NewPool(storage.NewMemStore(), cfg.options())
	db := &DB{pool: pool, rec: storage.NewReclaimer(pool)}
	db.cat.Store(newCatalog())
	return db
}

// OpenAt creates a file-backed database at path. The catalog itself is not
// persisted — callers re-run their DDL on startup (as the paper's MyDB
// scripts do); page data lives in the file so the pool's physical I/O is
// real.
func OpenAt(path string, frames int) (*DB, error) {
	return OpenAtPool(path, PoolConfig{Frames: frames})
}

// OpenAtPool is OpenAt with an explicitly configured buffer pool.
func OpenAtPool(path string, cfg PoolConfig) (*DB, error) {
	store, err := storage.OpenFileStore(path)
	if err != nil {
		return nil, err
	}
	pool := storage.NewPool(store, cfg.options())
	db := &DB{pool: pool, rec: storage.NewReclaimer(pool)}
	db.cat.Store(newCatalog())
	return db, nil
}

// Pool exposes the buffer pool, whose Stats feed the benchmark tables.
func (db *DB) Pool() *storage.Pool { return db.pool }

// Stats returns the pool counters.
func (db *DB) Stats() storage.Stats { return db.pool.Stats() }

// Reclaimer exposes the deferred page reclaimer; tests use its Pending
// counter to pin the version-retirement lifecycle.
func (db *DB) Reclaimer() *storage.Reclaimer { return db.rec }

// Table returns the named table from the current catalog.
func (db *DB) Table(name string) (*Table, bool) {
	t, ok := db.cat.Load().tables[strings.ToLower(name)]
	return t, ok
}

// TableNames lists the current catalog's tables. For a listing that stays
// consistent with subsequent per-table reads, take a Snapshot instead.
func (db *DB) TableNames() []string {
	cat := db.cat.Load()
	out := make([]string, 0, len(cat.tables))
	for _, t := range cat.tables {
		out = append(out, t.Name)
	}
	return out
}

// Snapshot pins one consistent view of the database: the catalog as of
// the call, plus — resolved lazily, at most once per table — one
// immutable version of each table the caller touches. Taking a snapshot
// is O(1) and never blocks writers; writers keep publishing while the
// snapshot reads the versions it captured. Close releases the snapshot's
// reclaimer guard; pages of superseded versions are only deallocated
// after every snapshot that could reach them has closed.
//
// A Snapshot is not safe for concurrent use by multiple goroutines (each
// query takes its own).
type Snapshot struct {
	db    *DB
	cat   *catalog
	guard *storage.Guard
	views map[string]TableView
}

// Snapshot captures the current catalog under a reclaimer guard. The
// guard is entered before the catalog pointer is loaded, so every version
// later resolved through the snapshot is pinned: any retirement that
// could free those pages is stamped at or after this guard's ticket.
func (db *DB) Snapshot() *Snapshot {
	g := db.rec.Enter()
	return &Snapshot{db: db, cat: db.cat.Load(), guard: g}
}

// View resolves the named table to the version this snapshot reads. The
// first call per table loads the table's current version; repeats return
// the same view, so a query that mentions a table twice (a self-join)
// sees one version.
func (s *Snapshot) View(name string) (TableView, bool) {
	key := strings.ToLower(name)
	if tv, ok := s.views[key]; ok {
		return tv, true
	}
	t, ok := s.cat.tables[key]
	if !ok {
		return TableView{}, false
	}
	tv := t.View()
	if s.views == nil {
		s.views = make(map[string]TableView)
	}
	s.views[key] = tv
	return tv, true
}

// TableNames lists the snapshot catalog's tables.
func (s *Snapshot) TableNames() []string {
	out := make([]string, 0, len(s.cat.tables))
	for _, t := range s.cat.tables {
		out = append(out, t.Name)
	}
	return out
}

// Close releases the snapshot's guard. Idempotent; must be called once
// the query is done with every cursor opened through the snapshot.
func (s *Snapshot) Close() { s.guard.Release() }

// tvf resolves a table-valued function from the snapshot catalog.
func (s *Snapshot) tvf(name string) (*TVF, bool) {
	t, ok := s.cat.tvfs[strings.ToUpper(name)]
	return t, ok
}

// CreateTable creates a table programmatically. pkCol may be empty.
func (db *DB) CreateTable(name string, cols []Column, pkCol string) (*Table, error) {
	var keyCols []int
	unique := false
	if pkCol != "" {
		for i, c := range cols {
			if strings.EqualFold(c.Name, pkCol) {
				keyCols = []int{i}
				unique = true
				break
			}
		}
		if keyCols == nil {
			return nil, fmt.Errorf("sqldb: PRIMARY KEY column %q not in column list", pkCol)
		}
	}
	t, err := newTable(db.pool, db.rec, name, cols, keyCols, unique)
	if err != nil {
		return nil, err
	}
	if err := db.installTable(t); err != nil {
		return nil, err
	}
	return t, nil
}

// CreateTableClustered creates a table whose storage is clustered on the
// given (non-unique) key columns from the start, avoiding the rebuild that
// CREATE CLUSTERED INDEX performs. Loads are fastest when rows arrive in
// key order.
func (db *DB) CreateTableClustered(name string, cols []Column, keyCols []string) (*Table, error) {
	idx := make([]int, len(keyCols))
	for i, kc := range keyCols {
		found := -1
		for ci, c := range cols {
			if strings.EqualFold(c.Name, kc) {
				found = ci
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("sqldb: clustered key column %q not in column list", kc)
		}
		idx[i] = found
	}
	t, err := newTable(db.pool, db.rec, name, cols, idx, false)
	if err != nil {
		return nil, err
	}
	if err := db.installTable(t); err != nil {
		return nil, err
	}
	return t, nil
}

func (db *DB) installTable(t *Table) error {
	return db.updateCatalog(func(c *catalog) error {
		key := strings.ToLower(t.Name)
		if _, exists := c.tables[key]; exists {
			return fmt.Errorf("sqldb: table %s already exists", t.Name)
		}
		c.tables[key] = t
		return nil
	})
}

// RenameTable atomically renames a catalog entry, replacing any existing
// table under the new name. It is the commit step of the stage-and-swap
// pattern: load a fresh table under a scratch name, then rename it over
// the target, so readers observe either the complete old table or the
// complete new one — never a half-loaded middle state. The rename
// publishes a new handle; queries already planned keep the name and the
// version they bound.
func (db *DB) RenameTable(oldName, newName string) error {
	var replaced *Table
	err := db.updateCatalog(func(c *catalog) error {
		oldKey, newKey := strings.ToLower(oldName), strings.ToLower(newName)
		t, ok := c.tables[oldKey]
		if !ok {
			return fmt.Errorf("sqldb: table %s does not exist", oldName)
		}
		if oldKey == newKey {
			return nil
		}
		replaced = c.tables[newKey] // nil when the target name was free
		delete(c.tables, oldKey)
		c.tables[newKey] = t.renamed(newName)
		return nil
	})
	if err == nil && replaced != nil {
		replaced.retireContents()
	}
	return err
}

// DropTable removes a table from the catalog and schedules its pages for
// reclamation.
func (db *DB) DropTable(name string, ifExists bool) error {
	var dropped *Table
	err := db.updateCatalog(func(c *catalog) error {
		key := strings.ToLower(name)
		t, ok := c.tables[key]
		if !ok {
			if ifExists {
				return nil
			}
			return fmt.Errorf("sqldb: table %s does not exist", name)
		}
		dropped = t
		delete(c.tables, key)
		return nil
	})
	if err == nil && dropped != nil {
		dropped.retireContents()
	}
	return err
}

// RegisterScalar installs a scalar UDF callable from SQL (case-insensitive).
func (db *DB) RegisterScalar(name string, fn ScalarFunc) {
	_ = db.updateCatalog(func(c *catalog) error {
		c.scalars[strings.ToUpper(name)] = fn
		return nil
	})
}

// RegisterTVF installs a table-valued function callable in FROM clauses.
func (db *DB) RegisterTVF(name string, tvf *TVF) {
	_ = db.updateCatalog(func(c *catalog) error {
		c.tvfs[strings.ToUpper(name)] = tvf
		return nil
	})
}

func (db *DB) scalarFunc(name string) (ScalarFunc, bool) {
	fn, ok := db.cat.Load().scalars[strings.ToUpper(name)]
	return fn, ok
}

func (db *DB) tvf(name string) (*TVF, bool) {
	t, ok := db.cat.Load().tvfs[strings.ToUpper(name)]
	return t, ok
}

// Query parses and executes a SELECT (or EXPLAIN [ANALYZE] SELECT),
// returning its rows. EXPLAIN returns the physical plan as one text row
// per line under a single "plan" column.
func (db *DB) Query(sql string, args ...Value) (*Rows, error) {
	return db.QueryContext(context.Background(), sql, args...)
}

// QueryContext is Query under a context: cancelling ctx (or its deadline
// expiring) stops execution at row-batch granularity — scans, sorts, and
// the parallel zone sweeps all observe it — and returns an error wrapping
// ctx.Err().
func (db *DB) QueryContext(ctx context.Context, sql string, args ...Value) (*Rows, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	switch s := stmt.(type) {
	case *SelectStmt:
		m := db.metrics()
		start := m.now()
		rows, err := db.execSelect(ctx, s, args)
		if err == nil {
			m.statement("select", start)
			m.out(int64(rows.Len()))
		}
		return rows, err
	case *ExplainStmt:
		return db.execExplain(ctx, s, args)
	}
	return nil, fmt.Errorf("sqldb: Query requires a SELECT statement")
}

// QueryIter parses a SELECT and returns a streaming iterator over its
// physical plan: rows surface one at a time instead of materialising the
// whole result, so a scan over millions of rows holds one row's memory.
// The caller must Close the iterator.
func (db *DB) QueryIter(sql string, args ...Value) (*RowIter, error) {
	return db.QueryIterContext(context.Background(), sql, args...)
}

// QueryIterContext is QueryIter under a context; after cancellation the
// iterator's Next returns false and Err reports the wrapped ctx.Err().
// The iterator owns the query's snapshot: rows stream from the versions
// pinned at this call no matter what is written meanwhile, and Close
// releases the pin.
func (db *DB) QueryIterContext(ctx context.Context, sql string, args ...Value) (*RowIter, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sqldb: QueryIter requires a SELECT statement")
	}
	snap := db.Snapshot()
	op, cols, err := db.planSelect(ctx, sel, args, snap)
	if err != nil {
		snap.Close()
		return nil, err
	}
	m := db.metrics()
	return &RowIter{cols: cols, op: op, snap: snap, met: m, start: m.now()}, nil
}

// Explain compiles a SELECT (a bare one, or an EXPLAIN [ANALYZE] wrapper)
// and returns the physical plan as a multi-line string. With ANALYZE the
// plan also executes so operators report actual row counts.
func (db *DB) Explain(sql string, args ...Value) (string, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return "", err
	}
	var ex *ExplainStmt
	switch s := stmt.(type) {
	case *ExplainStmt:
		ex = s
	case *SelectStmt:
		ex = &ExplainStmt{Query: s}
	default:
		return "", fmt.Errorf("sqldb: Explain requires a SELECT statement")
	}
	rows, err := db.execExplain(context.Background(), ex, args)
	if err != nil {
		return "", err
	}
	lines := make([]string, 0, rows.Len())
	for rows.Next() {
		lines = append(lines, rows.Row()[0].S)
	}
	return strings.Join(lines, "\n"), nil
}

// execExplain plans (and under ANALYZE, runs) the wrapped SELECT, then
// renders the operator tree one line per row.
func (db *DB) execExplain(ctx context.Context, s *ExplainStmt, params []Value) (*Rows, error) {
	m := db.metrics()
	start := m.now()
	snap := db.Snapshot()
	defer snap.Close()
	op, _, err := db.planSelect(ctx, s.Query, params, snap)
	if err != nil {
		return nil, err
	}
	defer op.close()
	if s.Analyze {
		enableTiming(op)
		if err := drainDiscard(op); err != nil {
			return nil, err
		}
	}
	m.statement("explain", start)
	lines := renderPlan(op, s.Analyze)
	data := make([][]Value, len(lines))
	for i, l := range lines {
		data[i] = []Value{String(l)}
	}
	return &Rows{Columns: []string{"plan"}, data: data}, nil
}

// Exec parses and executes any single statement, returning the number of
// rows affected (or returned, for SELECT).
func (db *DB) Exec(sql string, args ...Value) (int64, error) {
	return db.ExecContext(context.Background(), sql, args...)
}

// ExecContext is Exec under a context. SELECT/EXPLAIN and the scans
// driving INSERT...SELECT, UPDATE, and DELETE observe cancellation; DDL
// and the final write of an already-staged batch do not (they are short
// and atomic — interrupting them would trade a bounded delay for a
// half-applied catalog).
func (db *DB) ExecContext(ctx context.Context, sql string, args ...Value) (int64, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return 0, err
	}
	return db.execStmt(ctx, stmt, args)
}

// ExecScript runs a semicolon-separated sequence of statements, stopping at
// the first error.
func (db *DB) ExecScript(sql string, args ...Value) error {
	stmts, err := ParseScript(sql)
	if err != nil {
		return err
	}
	for _, s := range stmts {
		if _, err := db.execStmt(context.Background(), s, args); err != nil {
			return err
		}
	}
	return nil
}

func (db *DB) execStmt(ctx context.Context, stmt Statement, params []Value) (int64, error) {
	m := db.metrics()
	start := m.now()
	switch s := stmt.(type) {
	case *SelectStmt:
		rows, err := db.execSelect(ctx, s, params)
		if err != nil {
			return 0, err
		}
		m.statement("select", start)
		m.out(int64(rows.Len()))
		return int64(rows.Len()), nil
	case *ExplainStmt:
		// execExplain records its own verb so the Explain convenience
		// entry point counts identically.
		rows, err := db.execExplain(ctx, s, params)
		if err != nil {
			return 0, err
		}
		return int64(rows.Len()), nil
	case *CreateTableStmt:
		err := db.execCreateTable(s)
		if err == nil {
			m.statement("create_table", start)
		}
		return 0, err
	case *CreateIndexStmt:
		err := db.execCreateIndex(s)
		if err == nil {
			m.statement("create_index", start)
		}
		return 0, err
	case *CreateProjectionStmt:
		t, ok := db.Table(s.Table)
		if !ok {
			return 0, fmt.Errorf("sqldb: unknown table %s", s.Table)
		}
		_, err := t.BuildColumnarProjection()
		if err == nil {
			m.statement("create_projection", start)
		}
		return 0, err
	case *DropTableStmt:
		err := db.DropTable(s.Name, s.IfExists)
		if err == nil {
			m.statement("drop_table", start)
		}
		return 0, err
	case *TruncateStmt:
		t, ok := db.Table(s.Table)
		if !ok {
			return 0, fmt.Errorf("sqldb: unknown table %s", s.Table)
		}
		n := t.NumRows()
		err := t.Truncate()
		if err == nil {
			m.statement("truncate", start)
			m.wrote(n)
		}
		return n, err
	case *InsertStmt:
		n, err := db.execInsert(ctx, s, params)
		if err == nil {
			m.statement("insert", start)
			m.wrote(n)
		}
		return n, err
	case *UpdateStmt:
		n, err := db.execUpdate(ctx, s, params)
		if err == nil {
			m.statement("update", start)
			m.wrote(n)
		}
		return n, err
	case *DeleteStmt:
		n, err := db.execDelete(ctx, s, params)
		if err == nil {
			m.statement("delete", start)
			m.wrote(n)
		}
		return n, err
	}
	return 0, fmt.Errorf("sqldb: unsupported statement %T", stmt)
}

func (db *DB) execCreateTable(s *CreateTableStmt) error {
	cols := make([]Column, len(s.Cols))
	pk := ""
	for i, c := range s.Cols {
		cols[i] = Column{Name: c.Name, Type: c.Type, Identity: c.Identity}
		if c.PK {
			if pk != "" {
				return fmt.Errorf("sqldb: table %s declares multiple primary keys", s.Name)
			}
			pk = c.Name
		}
	}
	_, err := db.CreateTable(s.Name, cols, pk)
	return err
}

func (db *DB) execCreateIndex(s *CreateIndexStmt) error {
	if !s.Clustered {
		return fmt.Errorf("sqldb: only CLUSTERED indexes are supported (non-clustered index %s)", s.Name)
	}
	t, ok := db.Table(s.Table)
	if !ok {
		return fmt.Errorf("sqldb: unknown table %s", s.Table)
	}
	return t.Recluster(s.Cols)
}

func (db *DB) execInsert(ctx context.Context, s *InsertStmt, params []Value) (int64, error) {
	t, ok := db.Table(s.Table)
	if !ok {
		return 0, fmt.Errorf("sqldb: unknown table %s", s.Table)
	}
	// Map the statement's column list to schema positions.
	colIdx := make([]int, 0, len(t.Cols))
	if len(s.Cols) == 0 {
		for i := range t.Cols {
			colIdx = append(colIdx, i)
		}
	} else {
		for _, name := range s.Cols {
			ci := t.ColIndex(name)
			if ci < 0 {
				return 0, fmt.Errorf("sqldb: no column %q in table %s", name, s.Table)
			}
			colIdx = append(colIdx, ci)
		}
	}
	buildRow := func(vals []Value) ([]Value, error) {
		if len(vals) != len(colIdx) {
			return nil, fmt.Errorf("sqldb: INSERT supplies %d values for %d columns", len(vals), len(colIdx))
		}
		row := make([]Value, len(t.Cols))
		for i := range row {
			row[i] = Null()
		}
		for i, ci := range colIdx {
			row[ci] = vals[i]
		}
		return row, nil
	}

	// Both INSERT forms stage their rows first and land multi-row batches
	// through the bulk-load path (encode once, sort the run, build packed
	// pages) instead of trickling one tree descent per row — the spZone
	// shape "fill a table from a query, then cluster it" gets the batch
	// ingest plan from plain SQL. Staging also makes the statement atomic:
	// a mid-batch failure (bad value, duplicate key) leaves the table
	// untouched instead of half-loaded. An INSERT...SELECT reads its own
	// snapshot of the source, so selecting from the target table sees the
	// pre-insert rows.
	var batch [][]Value
	if s.Query != nil {
		rows, err := db.execSelect(ctx, s.Query, params)
		if err != nil {
			return 0, err
		}
		batch = make([][]Value, 0, rows.Len())
		for rows.Next() {
			row, err := buildRow(rows.Row())
			if err != nil {
				return 0, err
			}
			batch = append(batch, row)
		}
	} else {
		ev := &env{params: params, db: db}
		batch = make([][]Value, 0, len(s.Rows))
		for _, exprs := range s.Rows {
			vals := make([]Value, len(exprs))
			for i, e := range exprs {
				v, err := eval(e, ev)
				if err != nil {
					return 0, err
				}
				vals[i] = v
			}
			row, err := buildRow(vals)
			if err != nil {
				return 0, err
			}
			batch = append(batch, row)
		}
	}
	if len(batch) == 1 {
		// A single row keeps the point-insert plan: one descent beats
		// BulkInsert's whole-table merge on a non-empty target.
		if err := t.Insert(batch[0]); err != nil {
			return 0, err
		}
		return 1, nil
	}
	if err := t.BulkInsert(batch); err != nil {
		return 0, err
	}
	return int64(len(batch)), nil
}

// execUpdate rewrites the table: matching rows get their SET columns
// re-evaluated. Key-column updates move rows, which the rewrite handles
// naturally. The scan and the replacement run under one writer critical
// section, so concurrent Inserts cannot be lost between them; readers
// keep streaming their own versions throughout.
func (db *DB) execUpdate(ctx context.Context, s *UpdateStmt, params []Value) (int64, error) {
	t, ok := db.Table(s.Table)
	if !ok {
		return 0, fmt.Errorf("sqldb: unknown table %s", s.Table)
	}
	sch := make(schema, len(t.Cols))
	for i, c := range t.Cols {
		sch[i] = colMeta{alias: strings.ToLower(t.Name), name: c.Name}
	}
	setIdx := make([]int, len(s.Sets))
	for i, set := range s.Sets {
		ci := t.ColIndex(set.Col)
		if ci < 0 {
			return 0, fmt.Errorf("sqldb: no column %q in table %s", set.Col, s.Table)
		}
		setIdx[i] = ci
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	// Scanning the locked current version needs no reclaimer guard: only
	// the lock holder retires this table's pages.
	cur, err := t.View().Scan()
	if err != nil {
		return 0, err
	}
	cc := newCancelCheck(ctx)
	var rows [][]Value
	var n int64
	ev := &env{schema: sch, params: params, db: db}
	for cur.Next() {
		if err := cc.tick(); err != nil {
			cur.Close()
			return 0, err
		}
		row := append([]Value(nil), cur.Row()...)
		ev.row = row
		match := true
		if s.Where != nil {
			v, err := eval(s.Where, ev)
			if err != nil {
				cur.Close()
				return 0, err
			}
			match = v.AsBool()
		}
		if match {
			updated := append([]Value(nil), row...)
			for i, set := range s.Sets {
				v, err := eval(set.Val, ev)
				if err != nil {
					cur.Close()
					return 0, err
				}
				updated[setIdx[i]] = v
			}
			rows = append(rows, updated)
			n++
		} else {
			rows = append(rows, row)
		}
	}
	cur.Close()
	if err := cur.Err(); err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, nil
	}
	return n, t.replaceAllLocked(rows)
}

// execDelete rewrites the table without the matching rows, under the same
// single writer critical section as execUpdate.
func (db *DB) execDelete(ctx context.Context, s *DeleteStmt, params []Value) (int64, error) {
	t, ok := db.Table(s.Table)
	if !ok {
		return 0, fmt.Errorf("sqldb: unknown table %s", s.Table)
	}
	sch := make(schema, len(t.Cols))
	for i, c := range t.Cols {
		sch[i] = colMeta{alias: strings.ToLower(t.Name), name: c.Name}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	cur, err := t.View().Scan()
	if err != nil {
		return 0, err
	}
	cc := newCancelCheck(ctx)
	var keep [][]Value
	var n int64
	ev := &env{schema: sch, params: params, db: db}
	for cur.Next() {
		if err := cc.tick(); err != nil {
			cur.Close()
			return 0, err
		}
		row := append([]Value(nil), cur.Row()...)
		match := true
		if s.Where != nil {
			ev.row = row
			v, err := eval(s.Where, ev)
			if err != nil {
				cur.Close()
				return 0, err
			}
			match = v.AsBool()
		}
		if match {
			n++
		} else {
			keep = append(keep, row)
		}
	}
	cur.Close()
	if err := cur.Err(); err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, nil
	}
	return n, t.replaceAllLocked(keep)
}

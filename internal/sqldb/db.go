package sqldb

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"repro/internal/storage"
)

// DB is a single-namespace SQL database: the engine's equivalent of one
// SQL Server instance (or one CasJobs MyDB). Open gives an in-memory
// database; OpenAt persists pages to a file.
type DB struct {
	mu      sync.RWMutex
	pool    *storage.Pool
	tables  map[string]*Table
	scalars map[string]ScalarFunc
	tvfs    map[string]*TVF
	knobs   PlannerKnobs
}

// PoolConfig sizes the database's buffer pool.
type PoolConfig struct {
	// Frames is the pool size in page frames (0 selects 4096 = 32 MiB).
	Frames int
	// Shards is the pool's lock-shard count (0 selects GOMAXPROCS; see
	// storage.PoolOptions — the -pool-shards flag on the cmds lands here).
	Shards int
}

func (c PoolConfig) options() storage.PoolOptions {
	frames := c.Frames
	if frames == 0 {
		frames = 4096
	}
	return storage.PoolOptions{Frames: frames, Shards: c.Shards}
}

// Open creates an in-memory database with the given buffer-pool size in
// frames (0 selects a default of 4096 frames = 32 MiB).
func Open(frames int) *DB { return OpenPool(PoolConfig{Frames: frames}) }

// OpenPool creates an in-memory database with an explicitly configured
// buffer pool.
func OpenPool(cfg PoolConfig) *DB {
	return &DB{
		pool:    storage.NewPool(storage.NewMemStore(), cfg.options()),
		tables:  make(map[string]*Table),
		scalars: make(map[string]ScalarFunc),
		tvfs:    make(map[string]*TVF),
	}
}

// OpenAt creates a file-backed database at path. The catalog itself is not
// persisted — callers re-run their DDL on startup (as the paper's MyDB
// scripts do); page data lives in the file so the pool's physical I/O is
// real.
func OpenAt(path string, frames int) (*DB, error) {
	return OpenAtPool(path, PoolConfig{Frames: frames})
}

// OpenAtPool is OpenAt with an explicitly configured buffer pool.
func OpenAtPool(path string, cfg PoolConfig) (*DB, error) {
	store, err := storage.OpenFileStore(path)
	if err != nil {
		return nil, err
	}
	return &DB{
		pool:    storage.NewPool(store, cfg.options()),
		tables:  make(map[string]*Table),
		scalars: make(map[string]ScalarFunc),
		tvfs:    make(map[string]*TVF),
	}, nil
}

// Pool exposes the buffer pool, whose Stats feed the benchmark tables.
func (db *DB) Pool() *storage.Pool { return db.pool }

// Stats returns the pool counters.
func (db *DB) Stats() storage.Stats { return db.pool.Stats() }

// Table returns the named table.
func (db *DB) Table(name string) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	return t, ok
}

// TableNames lists the catalog's tables.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		out = append(out, t.Name)
	}
	return out
}

// CreateTable creates a table programmatically. pkCol may be empty.
func (db *DB) CreateTable(name string, cols []Column, pkCol string) (*Table, error) {
	var keyCols []int
	unique := false
	if pkCol != "" {
		for i, c := range cols {
			if strings.EqualFold(c.Name, pkCol) {
				keyCols = []int{i}
				unique = true
				break
			}
		}
		if keyCols == nil {
			return nil, fmt.Errorf("sqldb: PRIMARY KEY column %q not in column list", pkCol)
		}
	}
	t, err := newTable(db.pool, name, cols, keyCols, unique)
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(name)
	if _, exists := db.tables[key]; exists {
		return nil, fmt.Errorf("sqldb: table %s already exists", name)
	}
	db.tables[key] = t
	return t, nil
}

// CreateTableClustered creates a table whose storage is clustered on the
// given (non-unique) key columns from the start, avoiding the rebuild that
// CREATE CLUSTERED INDEX performs. Loads are fastest when rows arrive in
// key order.
func (db *DB) CreateTableClustered(name string, cols []Column, keyCols []string) (*Table, error) {
	idx := make([]int, len(keyCols))
	for i, kc := range keyCols {
		found := -1
		for ci, c := range cols {
			if strings.EqualFold(c.Name, kc) {
				found = ci
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("sqldb: clustered key column %q not in column list", kc)
		}
		idx[i] = found
	}
	t, err := newTable(db.pool, name, cols, idx, false)
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(name)
	if _, exists := db.tables[key]; exists {
		return nil, fmt.Errorf("sqldb: table %s already exists", name)
	}
	db.tables[key] = t
	return t, nil
}

// RenameTable atomically renames a catalog entry, replacing any existing
// table under the new name. It is the commit step of the stage-and-swap
// pattern: load a fresh table under a scratch name, then rename it over
// the target, so readers observe either the complete old table or the
// complete new one — never a half-loaded middle state.
func (db *DB) RenameTable(oldName, newName string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	oldKey, newKey := strings.ToLower(oldName), strings.ToLower(newName)
	t, ok := db.tables[oldKey]
	if !ok {
		return fmt.Errorf("sqldb: table %s does not exist", oldName)
	}
	if oldKey == newKey {
		return nil
	}
	delete(db.tables, oldKey)
	t.Name = newName
	db.tables[newKey] = t
	return nil
}

// DropTable removes a table from the catalog.
func (db *DB) DropTable(name string, ifExists bool) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := db.tables[key]; !ok {
		if ifExists {
			return nil
		}
		return fmt.Errorf("sqldb: table %s does not exist", name)
	}
	delete(db.tables, key)
	return nil
}

// RegisterScalar installs a scalar UDF callable from SQL (case-insensitive).
func (db *DB) RegisterScalar(name string, fn ScalarFunc) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.scalars[strings.ToUpper(name)] = fn
}

// RegisterTVF installs a table-valued function callable in FROM clauses.
func (db *DB) RegisterTVF(name string, tvf *TVF) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.tvfs[strings.ToUpper(name)] = tvf
}

func (db *DB) scalarFunc(name string) (ScalarFunc, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	fn, ok := db.scalars[strings.ToUpper(name)]
	return fn, ok
}

func (db *DB) tvf(name string) (*TVF, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tvfs[strings.ToUpper(name)]
	return t, ok
}

// Query parses and executes a SELECT (or EXPLAIN [ANALYZE] SELECT),
// returning its rows. EXPLAIN returns the physical plan as one text row
// per line under a single "plan" column.
func (db *DB) Query(sql string, args ...Value) (*Rows, error) {
	return db.QueryContext(context.Background(), sql, args...)
}

// QueryContext is Query under a context: cancelling ctx (or its deadline
// expiring) stops execution at row-batch granularity — scans, sorts, and
// the parallel zone sweeps all observe it — and returns an error wrapping
// ctx.Err().
func (db *DB) QueryContext(ctx context.Context, sql string, args ...Value) (*Rows, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	switch s := stmt.(type) {
	case *SelectStmt:
		return db.execSelect(ctx, s, args)
	case *ExplainStmt:
		return db.execExplain(ctx, s, args)
	}
	return nil, fmt.Errorf("sqldb: Query requires a SELECT statement")
}

// QueryIter parses a SELECT and returns a streaming iterator over its
// physical plan: rows surface one at a time instead of materialising the
// whole result, so a scan over millions of rows holds one row's memory.
// The caller must Close the iterator.
func (db *DB) QueryIter(sql string, args ...Value) (*RowIter, error) {
	return db.QueryIterContext(context.Background(), sql, args...)
}

// QueryIterContext is QueryIter under a context; after cancellation the
// iterator's Next returns false and Err reports the wrapped ctx.Err().
func (db *DB) QueryIterContext(ctx context.Context, sql string, args ...Value) (*RowIter, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sqldb: QueryIter requires a SELECT statement")
	}
	op, cols, err := db.planSelect(ctx, sel, args)
	if err != nil {
		return nil, err
	}
	return &RowIter{cols: cols, op: op}, nil
}

// Explain compiles a SELECT (a bare one, or an EXPLAIN [ANALYZE] wrapper)
// and returns the physical plan as a multi-line string. With ANALYZE the
// plan also executes so operators report actual row counts.
func (db *DB) Explain(sql string, args ...Value) (string, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return "", err
	}
	var ex *ExplainStmt
	switch s := stmt.(type) {
	case *ExplainStmt:
		ex = s
	case *SelectStmt:
		ex = &ExplainStmt{Query: s}
	default:
		return "", fmt.Errorf("sqldb: Explain requires a SELECT statement")
	}
	rows, err := db.execExplain(context.Background(), ex, args)
	if err != nil {
		return "", err
	}
	lines := make([]string, 0, rows.Len())
	for rows.Next() {
		lines = append(lines, rows.Row()[0].S)
	}
	return strings.Join(lines, "\n"), nil
}

// execExplain plans (and under ANALYZE, runs) the wrapped SELECT, then
// renders the operator tree one line per row.
func (db *DB) execExplain(ctx context.Context, s *ExplainStmt, params []Value) (*Rows, error) {
	op, _, err := db.planSelect(ctx, s.Query, params)
	if err != nil {
		return nil, err
	}
	defer op.close()
	if s.Analyze {
		if err := drainDiscard(op); err != nil {
			return nil, err
		}
	}
	lines := renderPlan(op, s.Analyze)
	data := make([][]Value, len(lines))
	for i, l := range lines {
		data[i] = []Value{String(l)}
	}
	return &Rows{Columns: []string{"plan"}, data: data}, nil
}

// Exec parses and executes any single statement, returning the number of
// rows affected (or returned, for SELECT).
func (db *DB) Exec(sql string, args ...Value) (int64, error) {
	return db.ExecContext(context.Background(), sql, args...)
}

// ExecContext is Exec under a context. SELECT/EXPLAIN and the scans
// driving INSERT...SELECT, UPDATE, and DELETE observe cancellation; DDL
// and the final write of an already-staged batch do not (they are short
// and atomic — interrupting them would trade a bounded delay for a
// half-applied catalog).
func (db *DB) ExecContext(ctx context.Context, sql string, args ...Value) (int64, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return 0, err
	}
	return db.execStmt(ctx, stmt, args)
}

// ExecScript runs a semicolon-separated sequence of statements, stopping at
// the first error.
func (db *DB) ExecScript(sql string, args ...Value) error {
	stmts, err := ParseScript(sql)
	if err != nil {
		return err
	}
	for _, s := range stmts {
		if _, err := db.execStmt(context.Background(), s, args); err != nil {
			return err
		}
	}
	return nil
}

func (db *DB) execStmt(ctx context.Context, stmt Statement, params []Value) (int64, error) {
	switch s := stmt.(type) {
	case *SelectStmt:
		rows, err := db.execSelect(ctx, s, params)
		if err != nil {
			return 0, err
		}
		return int64(rows.Len()), nil
	case *ExplainStmt:
		rows, err := db.execExplain(ctx, s, params)
		if err != nil {
			return 0, err
		}
		return int64(rows.Len()), nil
	case *CreateTableStmt:
		return 0, db.execCreateTable(s)
	case *CreateIndexStmt:
		return 0, db.execCreateIndex(s)
	case *CreateProjectionStmt:
		t, ok := db.Table(s.Table)
		if !ok {
			return 0, fmt.Errorf("sqldb: unknown table %s", s.Table)
		}
		_, err := t.BuildColumnarProjection()
		return 0, err
	case *DropTableStmt:
		return 0, db.DropTable(s.Name, s.IfExists)
	case *TruncateStmt:
		t, ok := db.Table(s.Table)
		if !ok {
			return 0, fmt.Errorf("sqldb: unknown table %s", s.Table)
		}
		n := t.NumRows()
		return n, t.Truncate()
	case *InsertStmt:
		return db.execInsert(ctx, s, params)
	case *UpdateStmt:
		return db.execUpdate(ctx, s, params)
	case *DeleteStmt:
		return db.execDelete(ctx, s, params)
	}
	return 0, fmt.Errorf("sqldb: unsupported statement %T", stmt)
}

func (db *DB) execCreateTable(s *CreateTableStmt) error {
	cols := make([]Column, len(s.Cols))
	pk := ""
	for i, c := range s.Cols {
		cols[i] = Column{Name: c.Name, Type: c.Type, Identity: c.Identity}
		if c.PK {
			if pk != "" {
				return fmt.Errorf("sqldb: table %s declares multiple primary keys", s.Name)
			}
			pk = c.Name
		}
	}
	_, err := db.CreateTable(s.Name, cols, pk)
	return err
}

func (db *DB) execCreateIndex(s *CreateIndexStmt) error {
	if !s.Clustered {
		return fmt.Errorf("sqldb: only CLUSTERED indexes are supported (non-clustered index %s)", s.Name)
	}
	t, ok := db.Table(s.Table)
	if !ok {
		return fmt.Errorf("sqldb: unknown table %s", s.Table)
	}
	return t.Recluster(s.Cols)
}

func (db *DB) execInsert(ctx context.Context, s *InsertStmt, params []Value) (int64, error) {
	t, ok := db.Table(s.Table)
	if !ok {
		return 0, fmt.Errorf("sqldb: unknown table %s", s.Table)
	}
	// Map the statement's column list to schema positions.
	colIdx := make([]int, 0, len(t.Cols))
	if len(s.Cols) == 0 {
		for i := range t.Cols {
			colIdx = append(colIdx, i)
		}
	} else {
		for _, name := range s.Cols {
			ci := t.ColIndex(name)
			if ci < 0 {
				return 0, fmt.Errorf("sqldb: no column %q in table %s", name, s.Table)
			}
			colIdx = append(colIdx, ci)
		}
	}
	buildRow := func(vals []Value) ([]Value, error) {
		if len(vals) != len(colIdx) {
			return nil, fmt.Errorf("sqldb: INSERT supplies %d values for %d columns", len(vals), len(colIdx))
		}
		row := make([]Value, len(t.Cols))
		for i := range row {
			row[i] = Null()
		}
		for i, ci := range colIdx {
			row[ci] = vals[i]
		}
		return row, nil
	}

	// Both INSERT forms stage their rows first and land multi-row batches
	// through the bulk-load path (encode once, sort the run, build packed
	// pages) instead of trickling one tree descent per row — the spZone
	// shape "fill a table from a query, then cluster it" gets the batch
	// ingest plan from plain SQL. Staging also makes the statement atomic:
	// a mid-batch failure (bad value, duplicate key) leaves the table
	// untouched instead of half-loaded.
	var batch [][]Value
	if s.Query != nil {
		rows, err := db.execSelect(ctx, s.Query, params)
		if err != nil {
			return 0, err
		}
		batch = make([][]Value, 0, rows.Len())
		for rows.Next() {
			row, err := buildRow(rows.Row())
			if err != nil {
				return 0, err
			}
			batch = append(batch, row)
		}
	} else {
		ev := &env{params: params, db: db}
		batch = make([][]Value, 0, len(s.Rows))
		for _, exprs := range s.Rows {
			vals := make([]Value, len(exprs))
			for i, e := range exprs {
				v, err := eval(e, ev)
				if err != nil {
					return 0, err
				}
				vals[i] = v
			}
			row, err := buildRow(vals)
			if err != nil {
				return 0, err
			}
			batch = append(batch, row)
		}
	}
	if len(batch) == 1 {
		// A single row keeps the point-insert plan: one descent beats
		// BulkInsert's whole-table merge on a non-empty target.
		if err := t.Insert(batch[0]); err != nil {
			return 0, err
		}
		return 1, nil
	}
	if err := t.BulkInsert(batch); err != nil {
		return 0, err
	}
	return int64(len(batch)), nil
}

// execUpdate rewrites the table: matching rows get their SET columns
// re-evaluated. Key-column updates move rows, which the rewrite handles
// naturally.
func (db *DB) execUpdate(ctx context.Context, s *UpdateStmt, params []Value) (int64, error) {
	t, ok := db.Table(s.Table)
	if !ok {
		return 0, fmt.Errorf("sqldb: unknown table %s", s.Table)
	}
	sch := make(schema, len(t.Cols))
	for i, c := range t.Cols {
		sch[i] = colMeta{alias: strings.ToLower(t.Name), name: c.Name}
	}
	setIdx := make([]int, len(s.Sets))
	for i, set := range s.Sets {
		ci := t.ColIndex(set.Col)
		if ci < 0 {
			return 0, fmt.Errorf("sqldb: no column %q in table %s", set.Col, s.Table)
		}
		setIdx[i] = ci
	}
	cur, err := t.Scan()
	if err != nil {
		return 0, err
	}
	cc := newCancelCheck(ctx)
	var rows [][]Value
	var n int64
	ev := &env{schema: sch, params: params, db: db}
	for cur.Next() {
		if err := cc.tick(); err != nil {
			cur.Close()
			return 0, err
		}
		row := append([]Value(nil), cur.Row()...)
		ev.row = row
		match := true
		if s.Where != nil {
			v, err := eval(s.Where, ev)
			if err != nil {
				cur.Close()
				return 0, err
			}
			match = v.AsBool()
		}
		if match {
			updated := append([]Value(nil), row...)
			for i, set := range s.Sets {
				v, err := eval(set.Val, ev)
				if err != nil {
					cur.Close()
					return 0, err
				}
				updated[setIdx[i]] = v
			}
			rows = append(rows, updated)
			n++
		} else {
			rows = append(rows, row)
		}
	}
	cur.Close()
	if err := cur.Err(); err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, nil
	}
	return n, t.ReplaceAll(rows)
}

// execDelete rewrites the table without the matching rows.
func (db *DB) execDelete(ctx context.Context, s *DeleteStmt, params []Value) (int64, error) {
	t, ok := db.Table(s.Table)
	if !ok {
		return 0, fmt.Errorf("sqldb: unknown table %s", s.Table)
	}
	sch := make(schema, len(t.Cols))
	for i, c := range t.Cols {
		sch[i] = colMeta{alias: strings.ToLower(t.Name), name: c.Name}
	}
	cur, err := t.Scan()
	if err != nil {
		return 0, err
	}
	cc := newCancelCheck(ctx)
	var keep [][]Value
	var n int64
	ev := &env{schema: sch, params: params, db: db}
	for cur.Next() {
		if err := cc.tick(); err != nil {
			cur.Close()
			return 0, err
		}
		row := append([]Value(nil), cur.Row()...)
		match := true
		if s.Where != nil {
			ev.row = row
			v, err := eval(s.Where, ev)
			if err != nil {
				cur.Close()
				return 0, err
			}
			match = v.AsBool()
		}
		if match {
			n++
		} else {
			keep = append(keep, row)
		}
	}
	cur.Close()
	if err := cur.Err(); err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, nil
	}
	return n, t.ReplaceAll(keep)
}

package sqldb

import (
	"strings"
	"testing"

	"repro/internal/colstore"
)

// buildProjection attaches a minimal columnar projection to t's table so
// the detach-on-write contract can be observed.
func buildProjection(t *testing.T, tbl *Table) *colstore.Table {
	t.Helper()
	b, err := colstore.NewBuilder(tbl.pool, colstore.Schema{
		{Name: "k", Kind: colstore.Int64},
		{Name: "v", Kind: colstore.Float64},
	}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	tbl.SetColumnar(ct)
	return ct
}

// TestColumnarProjectionDetachesOnWrite pins the table-option contract: a
// non-nil Columnar() is always a snapshot of the current rows, so every
// write path must detach it.
func TestColumnarProjectionDetachesOnWrite(t *testing.T) {
	db := Open(64)
	mustExec(t, db, "CREATE TABLE t (k bigint PRIMARY KEY, v float)")
	tbl, _ := db.Table("t")

	row := func(k int64) []Value { return []Value{Int(k), Float(float64(k))} }

	if ct := buildProjection(t, tbl); tbl.Columnar() != ct {
		t.Fatal("projection not attached")
	}
	if err := tbl.Insert(row(1)); err != nil {
		t.Fatal(err)
	}
	if tbl.Columnar() != nil {
		t.Error("Insert left a stale projection attached")
	}

	buildProjection(t, tbl)
	if err := tbl.BulkInsert([][]Value{row(2), row(3)}); err != nil {
		t.Fatal(err)
	}
	if tbl.Columnar() != nil {
		t.Error("BulkInsert left a stale projection attached")
	}

	buildProjection(t, tbl)
	if err := tbl.ReplaceAll([][]Value{row(4)}); err != nil {
		t.Fatal(err)
	}
	if tbl.Columnar() != nil {
		t.Error("ReplaceAll left a stale projection attached")
	}

	buildProjection(t, tbl)
	if err := tbl.Truncate(); err != nil {
		t.Fatal(err)
	}
	if tbl.Columnar() != nil {
		t.Error("Truncate left a stale projection attached")
	}
}

// TestInsertSelectBulkLoads pins the bulk routing of multi-row INSERT:
// contents and scan order must match the historical row-at-a-time path,
// identity columns keep numbering, and a mid-batch duplicate key aborts
// the whole statement leaving the target untouched.
func TestInsertSelectBulkLoads(t *testing.T) {
	db := Open(256)
	mustExec(t, db, "CREATE TABLE src (k bigint PRIMARY KEY, v float)")
	for i := 0; i < 300; i++ {
		mustExec(t, db, "INSERT INTO src VALUES (?, ?)", Int(int64(299-i)), Float(float64(i)))
	}
	mustExec(t, db, "CREATE TABLE dst (k bigint PRIMARY KEY, v float)")
	if n := mustExec(t, db, "INSERT INTO dst SELECT k, v FROM src"); n != 300 {
		t.Fatalf("INSERT SELECT moved %d rows, want 300", n)
	}
	// The target must scan exactly like src (same PK order, same values).
	want := mustQuery(t, db, "SELECT k, v FROM src")
	got := mustQuery(t, db, "SELECT k, v FROM dst")
	if want.Len() != got.Len() {
		t.Fatalf("dst has %d rows, src %d", got.Len(), want.Len())
	}
	for want.Next() && got.Next() {
		w, g := want.Row(), got.Row()
		if w[0].I != g[0].I || w[1].F != g[1].F {
			t.Fatalf("row mismatch: src %v, dst %v", w, g)
		}
	}

	// A duplicate key anywhere in the batch aborts the whole statement.
	if _, err := db.Exec("INSERT INTO dst SELECT k, v FROM src"); err == nil ||
		!strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate batch not rejected (err = %v)", err)
	}
	cnt := mustQuery(t, db, "SELECT COUNT(*) FROM dst")
	cnt.Next()
	if cnt.Row()[0].I != 300 {
		t.Fatalf("failed INSERT SELECT left dst with %d rows", cnt.Row()[0].I)
	}

	// Identity numbering continues across the bulk path, like Insert.
	mustExec(t, db, "CREATE TABLE idt (id bigint IDENTITY, v float)")
	mustExec(t, db, "INSERT INTO idt (v) VALUES (0.5)")
	mustExec(t, db, "INSERT INTO idt (v) SELECT v FROM src WHERE k < 3")
	ids := mustQuery(t, db, "SELECT id FROM idt")
	next := int64(1)
	for ids.Next() {
		if ids.Row()[0].I != next {
			t.Fatalf("identity sequence broke: got %d, want %d", ids.Row()[0].I, next)
		}
		next++
	}
	if next != 5 {
		t.Fatalf("idt holds %d rows, want 4", next-1)
	}
}

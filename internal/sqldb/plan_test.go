package sqldb

import (
	"fmt"
	"strings"
	"testing"
)

// planFixture builds a small (zoneid, ra)-clustered table with four zones
// of three rows each — four colstore segments once the projection is
// attached — plus an unclustered side table for join plans.
func planFixture(t *testing.T) *DB {
	t.Helper()
	db := Open(256)
	mustExec(t, db, "CREATE TABLE Zone (zoneid bigint, ra float, dec float, val float)")
	mustExec(t, db, "CREATE CLUSTERED INDEX zc ON Zone (zoneid, ra)")
	for z := 0; z < 4; z++ {
		for i := 0; i < 3; i++ {
			mustExec(t, db, "INSERT INTO Zone VALUES (?, ?, ?, ?)",
				Int(int64(z)), Float(float64(10*z+i)), Float(float64(i)), Float(float64(z)+0.5))
		}
	}
	mustExec(t, db, "CREATE TABLE Obj (objid bigint PRIMARY KEY, name varchar(10))")
	mustExec(t, db, "INSERT INTO Obj VALUES (1, 'a'), (2, 'b')")
	return db
}

func mustExplain(t *testing.T, db *DB, sql string, args ...Value) string {
	t.Helper()
	plan, err := db.Explain(sql, args...)
	if err != nil {
		t.Fatalf("Explain(%q): %v", sql, err)
	}
	return plan
}

// TestExplainGoldenPlans pins the physical trees the planner emits for the
// engine's load-bearing shapes, before and after a columnar projection
// exists. These are golden strings on purpose: a plan change must show up
// in review.
func TestExplainGoldenPlans(t *testing.T) {
	db := planFixture(t)

	// Row-store plans first.
	if got, want := mustExplain(t, db, "SELECT zoneid, ra FROM Zone"),
		"Project zoneid, ra  [est 12 rows]\n"+
			"└─ SeqScan Zone  [est 12 rows]"; got != want {
		t.Errorf("seq scan plan:\n%s\nwant:\n%s", got, want)
	}
	if got, want := mustExplain(t, db, "SELECT ra FROM Zone WHERE zoneid = 2"),
		"Project ra\n"+
			"└─ Filter zoneid = 2\n"+
			"   └─ RangeScan Zone (zoneid = 2)"; got != want {
		t.Errorf("range scan plan:\n%s\nwant:\n%s", got, want)
	}
	if got, want := mustExplain(t, db,
		"SELECT o.name, z.ra FROM Zone z JOIN Obj o ON o.objid = z.zoneid WHERE z.ra > 10 ORDER BY z.ra DESC"),
		"Sort z.ra DESC\n"+
			"└─ Project name, ra\n"+
			"   └─ Filter z.ra > 10\n"+
			"      └─ HashJoin on o.objid = z.zoneid\n"+
			"         ├─ SeqScan Zone AS z  [est 12 rows]\n"+
			"         └─ SeqScan Obj AS o  [est 2 rows]"; got != want {
		t.Errorf("hash join plan:\n%s\nwant:\n%s", got, want)
	}

	// Attach the projection through the SQL DDL path: scans and aggregates
	// switch to ColumnarScan, with directory pruning on the leading key and
	// column pruning from the statement's referenced set.
	mustExec(t, db, "CREATE COLUMNAR PROJECTION ON Zone")
	if got, want := mustExplain(t, db, "SELECT * FROM Zone"),
		"Project zoneid, ra, dec, val  [est 12 rows]\n"+
			"└─ ColumnarScan Zone [4 segments]  [est 12 rows]"; got != want {
		t.Errorf("columnar scan plan:\n%s\nwant:\n%s", got, want)
	}
	if got, want := mustExplain(t, db, "SELECT SUM(val) FROM Zone WHERE zoneid = 2"),
		"Aggregate SUM(val)\n"+
			"└─ Filter zoneid = 2\n"+
			"   └─ ColumnarScan Zone [1 segments, 2/4 cols]  [est 3 rows]"; got != want {
		t.Errorf("columnar aggregate plan:\n%s\nwant:\n%s", got, want)
	}
	if got, want := mustExplain(t, db, "SELECT DISTINCT zoneid FROM Zone ORDER BY zoneid LIMIT 2"),
		"Limit 2  [est 2 rows]\n"+
			"└─ Distinct\n"+
			"   └─ Sort zoneid  [est 12 rows]\n"+
			"      └─ Project zoneid  [est 12 rows]\n"+
			"         └─ ColumnarScan Zone [4 segments, 1/4 cols]  [est 12 rows]"; got != want {
		t.Errorf("limit/distinct/sort plan:\n%s\nwant:\n%s", got, want)
	}

	// The knob restores the row plan without touching the projection.
	db.SetPlannerKnobs(PlannerKnobs{NoColumnarScan: true})
	if got := mustExplain(t, db, "SELECT * FROM Zone"); !strings.Contains(got, "SeqScan Zone") {
		t.Errorf("NoColumnarScan knob ignored:\n%s", got)
	}
	db.SetPlannerKnobs(PlannerKnobs{})

	// EXPLAIN ANALYZE executes and reports actuals.
	analyzed := mustExplain(t, db, "EXPLAIN ANALYZE SELECT ra FROM Zone WHERE zoneid = 2")
	if !strings.Contains(analyzed, "Filter zoneid = 2  [actual 3 rows]") ||
		!strings.Contains(analyzed, "ColumnarScan Zone [1 segments, 2/4 cols]  [est 3, actual 3 rows]") {
		t.Errorf("EXPLAIN ANALYZE missing actual counts:\n%s", analyzed)
	}
	// Plain EXPLAIN must not execute: a query via the Exec path returns
	// the plan's line count, and the plan shows estimates only.
	plain := mustQuery(t, db, "EXPLAIN SELECT ra FROM Zone WHERE zoneid = 2")
	if plain.Len() < 3 || strings.Contains(plain.data[0][0].S, "actual") {
		t.Errorf("plain EXPLAIN looks wrong: %v", plain.All())
	}
}

// TestColumnarProjectionSQLEquivalence pins that the ColumnarScan plan is
// an invisible swap: every query shape returns bit-identical rows with the
// projection attached, with it disabled by knob, and on the row store
// before it existed — and any write detaches it.
func TestColumnarProjectionSQLEquivalence(t *testing.T) {
	db := planFixture(t)
	queries := []string{
		"SELECT * FROM Zone",
		"SELECT ra, val FROM Zone WHERE zoneid BETWEEN 1 AND 2",
		"SELECT zoneid, COUNT(*), SUM(val) FROM Zone GROUP BY zoneid ORDER BY zoneid",
		"SELECT ra FROM Zone WHERE val > 1.0 ORDER BY ra DESC",
		"SELECT z.ra, o.name FROM Zone z JOIN Obj o ON o.objid = z.zoneid",
	}
	before := make([]*Rows, len(queries))
	for i, q := range queries {
		before[i] = mustQuery(t, db, q)
	}
	mustExec(t, db, "CREATE COLUMNAR PROJECTION ON Zone")
	zt, _ := db.Table("Zone")
	if zt.Columnar() == nil {
		t.Fatal("CREATE COLUMNAR PROJECTION attached nothing")
	}
	for i, q := range queries {
		after := mustQuery(t, db, q)
		compareRows(t, q, after, before[i])
		db.SetPlannerKnobs(PlannerKnobs{NoColumnarScan: true})
		rowPlan := mustQuery(t, db, q)
		db.SetPlannerKnobs(PlannerKnobs{})
		compareRows(t, q+" (knob)", rowPlan, before[i])
	}

	// Any write detaches the snapshot and the planner falls back.
	mustExec(t, db, "INSERT INTO Zone VALUES (9, 99.0, 0.0, 9.5)")
	if zt.Columnar() != nil {
		t.Fatal("write left a stale projection attached")
	}
	if plan := mustExplain(t, db, "SELECT * FROM Zone"); strings.Contains(plan, "ColumnarScan") {
		t.Errorf("detached projection still planned:\n%s", plan)
	}
	cnt := mustQuery(t, db, "SELECT COUNT(*) FROM Zone")
	cnt.Next()
	if cnt.Row()[0].I != 13 {
		t.Errorf("post-detach count = %d, want 13", cnt.Row()[0].I)
	}
}

func compareRows(t *testing.T, label string, got, want *Rows) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d rows, want %d", label, got.Len(), want.Len())
	}
	for i, g := range got.All() {
		w := want.All()[i]
		for c := range g {
			if g[c] != w[c] {
				t.Fatalf("%s row %d col %d: %#v, want %#v", label, i, c, g[c], w[c])
			}
		}
	}
}

// TestCreateColumnarProjectionErrors pins the DDL's shape requirements.
func TestCreateColumnarProjectionErrors(t *testing.T) {
	db := Open(64)
	mustExec(t, db, "CREATE TABLE s (k bigint PRIMARY KEY, name varchar(10))")
	if _, err := db.Exec("CREATE COLUMNAR PROJECTION ON s"); err == nil {
		t.Error("single-column key accepted")
	}
	mustExec(t, db, "CREATE TABLE txt (z bigint, ra float, name varchar(10))")
	mustExec(t, db, "CREATE CLUSTERED INDEX ti ON txt (z, ra)")
	if _, err := db.Exec("CREATE COLUMNAR PROJECTION ON txt"); err == nil ||
		!strings.Contains(err.Error(), "non-numeric") {
		t.Errorf("string column accepted (err = %v)", err)
	}
	mustExec(t, db, "CREATE TABLE flip (ra float, z bigint)")
	mustExec(t, db, "CREATE CLUSTERED INDEX fi ON flip (ra, z)")
	if _, err := db.Exec("CREATE COLUMNAR PROJECTION ON flip"); err == nil {
		t.Error("float group column accepted")
	}
	mustExec(t, db, "CREATE TABLE nn (z bigint, ra float, v float)")
	mustExec(t, db, "CREATE CLUSTERED INDEX ni ON nn (z, ra)")
	mustExec(t, db, "INSERT INTO nn (z, ra) VALUES (1, 2.0)")
	if _, err := db.Exec("CREATE COLUMNAR PROJECTION ON nn"); err == nil ||
		!strings.Contains(err.Error(), "NULL") {
		t.Errorf("NULL value accepted (err = %v)", err)
	}
	if _, err := db.Exec("CREATE COLUMNAR PROJECTION ON nosuch"); err == nil {
		t.Error("unknown table accepted")
	}
}

// TestQueryIterStreams pins the streaming result API: same rows as Query
// for streaming and blocking pipelines, early Close releases the plan, and
// a large scan arrives row by row.
func TestQueryIterStreams(t *testing.T) {
	db := Open(256)
	mustExec(t, db, "CREATE TABLE t (k bigint PRIMARY KEY, v float)")
	var ins strings.Builder
	ins.WriteString("INSERT INTO t VALUES ")
	for i := 0; i < 5000; i++ {
		if i > 0 {
			ins.WriteString(", ")
		}
		fmt.Fprintf(&ins, "(%d, %g)", i, float64(i)*0.5)
	}
	mustExec(t, db, ins.String())

	for _, q := range []string{
		"SELECT k, v FROM t WHERE v > 100.0",
		"SELECT k FROM t ORDER BY v DESC LIMIT 10",
		"SELECT COUNT(*), SUM(v) FROM t",
	} {
		want := mustQuery(t, db, q)
		it, err := db.QueryIter(q)
		if err != nil {
			t.Fatalf("QueryIter(%q): %v", q, err)
		}
		if strings.Join(it.Columns(), ",") != strings.Join(want.Columns, ",") {
			t.Fatalf("%s: columns %v, want %v", q, it.Columns(), want.Columns)
		}
		i := 0
		for it.Next() {
			w := want.All()[i]
			for c := range w {
				if it.Row()[c] != w[c] {
					t.Fatalf("%s row %d: %v, want %v", q, i, it.Row(), w)
				}
			}
			i++
		}
		if err := it.Err(); err != nil {
			t.Fatal(err)
		}
		if i != want.Len() {
			t.Fatalf("%s: streamed %d rows, want %d", q, i, want.Len())
		}
		it.Close()
	}

	// Early close after a prefix: no panic, no further rows.
	it, err := db.QueryIter("SELECT k FROM t")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10 && it.Next(); i++ {
	}
	it.Close()
	if it.Next() {
		t.Error("Next returned a row after Close")
	}
	it.Close() // double close is safe
}

// TestContextualKeywordsStayIdentifiers pins that EXPLAIN, ANALYZE,
// COLUMNAR, and PROJECTION are contextual, not reserved: a catalog whose
// tables or columns use those words (plausible in astronomy schemas)
// must stay fully queryable, while the new statements still parse.
func TestContextualKeywordsStayIdentifiers(t *testing.T) {
	db := Open(64)
	mustExec(t, db, "CREATE TABLE t (id bigint PRIMARY KEY, projection float, columnar float, analyze float, explain float)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 2.0, 3.0, 4.0, 5.0)")
	rows := mustQuery(t, db, "SELECT projection, columnar, analyze, explain FROM t WHERE projection > 1.0 ORDER BY columnar")
	if rows.Len() != 1 || rows.All()[0][0].F != 2.0 || rows.All()[0][3].F != 5.0 {
		t.Fatalf("contextual-keyword columns misread: %v", rows.All())
	}
	mustExec(t, db, "CREATE TABLE explain (analyze bigint PRIMARY KEY)")
	mustExec(t, db, "INSERT INTO explain VALUES (7)")
	r2 := mustQuery(t, db, "SELECT analyze FROM explain")
	if r2.Len() != 1 || r2.All()[0][0].I != 7 {
		t.Fatalf("table named explain misread: %v", r2.All())
	}
	// The contextual forms themselves still work.
	if plan := mustExplain(t, db, "EXPLAIN SELECT projection FROM t"); !strings.Contains(plan, "SeqScan t") {
		t.Fatalf("EXPLAIN broke: %s", plan)
	}
	if plan := mustExplain(t, db, "EXPLAIN ANALYZE SELECT id FROM t"); !strings.Contains(plan, "actual 1 rows") {
		t.Fatalf("EXPLAIN ANALYZE broke: %s", plan)
	}
}

// TestExplainThroughQueryAndExec pins the statement surface: EXPLAIN works
// through Query (one "plan" column) and Exec (row count), and Explain
// accepts both bare SELECTs and EXPLAIN wrappers.
func TestExplainThroughQueryAndExec(t *testing.T) {
	db := planFixture(t)
	rows := mustQuery(t, db, "EXPLAIN SELECT zoneid FROM Zone")
	if len(rows.Columns) != 1 || rows.Columns[0] != "plan" {
		t.Fatalf("EXPLAIN columns = %v", rows.Columns)
	}
	n := mustExec(t, db, "EXPLAIN SELECT zoneid FROM Zone")
	if int(n) != rows.Len() {
		t.Fatalf("Exec(EXPLAIN) = %d rows, Query saw %d", n, rows.Len())
	}
	s1, err := db.Explain("SELECT zoneid FROM Zone")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := db.Explain("EXPLAIN SELECT zoneid FROM Zone")
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 || s1 == "" {
		t.Fatalf("Explain disagrees with itself:\n%s\nvs\n%s", s1, s2)
	}
	if _, err := db.Explain("INSERT INTO Obj VALUES (3, 'c')"); err == nil {
		t.Error("Explain accepted a non-SELECT")
	}
}

package sqldb

import (
	"fmt"
	"math/rand"
	"testing"
)

// scanAll drains a table into value slices for comparison.
func scanAll(t *testing.T, tbl *Table) [][]Value {
	t.Helper()
	cur, err := tbl.Scan()
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	var out [][]Value
	for cur.Next() {
		out = append(out, append([]Value(nil), cur.Row()...))
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func rowsEqual(a, b [][]Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestBulkInsertMatchesInsert is the sqldb half of the equivalence
// guarantee: a bulk-loaded table must scan identically — same rows, same
// cursor order — to one built by per-row Insert, across key shapes
// (unique PK, non-unique composite clustered key, rowid heap).
func TestBulkInsertMatchesInsert(t *testing.T) {
	cols := []Column{
		{Name: "zoneid", Type: TInt},
		{Name: "ra", Type: TFloat},
		{Name: "objid", Type: TInt},
	}
	rng := rand.New(rand.NewSource(3))
	var rows [][]Value
	for i := 0; i < 5000; i++ {
		rows = append(rows, []Value{
			Int(int64(rng.Intn(40))),
			Float(float64(rng.Intn(100000)) / 100),
			Int(int64(i)),
		})
	}
	cases := []struct {
		name string
		make func(db *DB, tname string) (*Table, error)
	}{
		{"UniquePK", func(db *DB, tn string) (*Table, error) { return db.CreateTable(tn, cols, "objid") }},
		{"Clustered", func(db *DB, tn string) (*Table, error) {
			return db.CreateTableClustered(tn, cols, []string{"zoneid", "ra"})
		}},
		{"Heap", func(db *DB, tn string) (*Table, error) { return db.CreateTable(tn, cols, "") }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db := Open(1024)
			bulk, err := tc.make(db, "bulk")
			if err != nil {
				t.Fatal(err)
			}
			trickle, err := tc.make(db, "trickle")
			if err != nil {
				t.Fatal(err)
			}
			if err := bulk.BulkInsert(rows); err != nil {
				t.Fatal(err)
			}
			for _, r := range rows {
				if err := trickle.Insert(r); err != nil {
					t.Fatal(err)
				}
			}
			if bulk.NumRows() != trickle.NumRows() {
				t.Fatalf("row counts differ: bulk %d, trickle %d", bulk.NumRows(), trickle.NumRows())
			}
			if !rowsEqual(scanAll(t, bulk), scanAll(t, trickle)) {
				t.Fatal("bulk-loaded scan differs from insert-built scan")
			}
		})
	}
}

// TestBulkThenTrickleRowID is the regression test for mixed ingest: Insert
// after BulkInsert must continue from the correct max rowid, so no trickled
// row can collide with (and silently replace) a bulk-loaded one.
func TestBulkThenTrickleRowID(t *testing.T) {
	db := Open(256)
	cols := []Column{{Name: "k", Type: TInt}, {Name: "v", Type: TFloat}}
	tbl, err := db.CreateTableClustered("t", cols, []string{"k"})
	if err != nil {
		t.Fatal(err)
	}
	// All rows share clustered key 7: only the rowid suffix separates them,
	// so a rowid collision would overwrite a row and drop the count.
	var rows [][]Value
	for i := 0; i < 100; i++ {
		rows = append(rows, []Value{Int(7), Float(float64(i))})
	}
	if err := tbl.BulkInsert(rows); err != nil {
		t.Fatal(err)
	}
	for i := 100; i < 150; i++ {
		if err := tbl.Insert([]Value{Int(7), Float(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	got := scanAll(t, tbl)
	if len(got) != 150 {
		t.Fatalf("table holds %d rows after bulk+trickle, want 150 (rowid reuse?)", len(got))
	}
	// Scan order within the shared key is rowid order = ingest order.
	for i, r := range got {
		if v, _ := r[1].AsFloat(); v != float64(i) {
			t.Fatalf("row %d has v=%g, want %g: rowid sequencing broken across bulk/trickle boundary", i, v, float64(i))
		}
	}
}

// TestBulkInsertIdentityContinues checks that Identity auto-fill advances
// across BulkInsert and stays in step with later Inserts.
func TestBulkInsertIdentityContinues(t *testing.T) {
	db := Open(256)
	cols := []Column{{Name: "id", Type: TInt, Identity: true}, {Name: "v", Type: TFloat}}
	tbl, err := db.CreateTable("t", cols, "id")
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]Value
	for i := 0; i < 40; i++ {
		rows = append(rows, []Value{Null(), Float(float64(i))})
	}
	if err := tbl.BulkInsert(rows); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert([]Value{Null(), Float(40)}); err != nil {
		t.Fatal(err)
	}
	got := scanAll(t, tbl)
	if len(got) != 41 {
		t.Fatalf("got %d rows, want 41", len(got))
	}
	for i, r := range got {
		if id, _ := r[0].AsInt(); id != int64(i+1) {
			t.Fatalf("row %d has identity %d, want %d", i, id, i+1)
		}
	}
}

// TestBulkInsertIntoNonEmpty merges a batch into existing rows: union scan,
// counts, and subsequent lookups must match the all-trickle table.
func TestBulkInsertIntoNonEmpty(t *testing.T) {
	db := Open(512)
	cols := []Column{{Name: "k", Type: TInt}, {Name: "v", Type: TString}}
	bulk, err := db.CreateTable("bulk", cols, "k")
	if err != nil {
		t.Fatal(err)
	}
	trickle, err := db.CreateTable("trickle", cols, "k")
	if err != nil {
		t.Fatal(err)
	}
	mkRow := func(k int) []Value { return []Value{Int(int64(k)), String(fmt.Sprintf("v%d", k))} }
	// Seed both with even keys via trickle inserts.
	for k := 0; k < 2000; k += 2 {
		if err := bulk.Insert(mkRow(k)); err != nil {
			t.Fatal(err)
		}
		if err := trickle.Insert(mkRow(k)); err != nil {
			t.Fatal(err)
		}
	}
	// Bulk-merge the odd keys into one, trickle them into the other.
	var odds [][]Value
	for k := 1999; k > 0; k -= 2 { // descending: exercises the sort
		odds = append(odds, mkRow(k))
	}
	if err := bulk.BulkInsert(odds); err != nil {
		t.Fatal(err)
	}
	for _, r := range odds {
		if err := trickle.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if bulk.NumRows() != 2000 || trickle.NumRows() != 2000 {
		t.Fatalf("row counts: bulk %d, trickle %d, want 2000", bulk.NumRows(), trickle.NumRows())
	}
	if !rowsEqual(scanAll(t, bulk), scanAll(t, trickle)) {
		t.Fatal("merged bulk scan differs from trickle scan")
	}
}

// TestBulkInsertDuplicatePK verifies uniqueness enforcement both within a
// batch and between a batch and existing rows — and that a failed batch
// leaves the table untouched.
func TestBulkInsertDuplicatePK(t *testing.T) {
	db := Open(256)
	cols := []Column{{Name: "k", Type: TInt}, {Name: "v", Type: TFloat}}
	tbl, err := db.CreateTable("t", cols, "k")
	if err != nil {
		t.Fatal(err)
	}
	dup := [][]Value{
		{Int(1), Float(1)},
		{Int(2), Float(2)},
		{Int(1), Float(3)},
	}
	if err := tbl.BulkInsert(dup); err == nil {
		t.Fatal("in-batch duplicate primary key accepted")
	}
	if n := tbl.NumRows(); n != 0 {
		t.Fatalf("failed batch left %d rows behind", n)
	}
	if err := tbl.BulkInsert([][]Value{{Int(5), Float(5)}}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.BulkInsert([][]Value{{Int(5), Float(6)}}); err == nil {
		t.Fatal("duplicate primary key against existing rows accepted")
	}
	if n := tbl.NumRows(); n != 1 {
		t.Fatalf("table holds %d rows after rejected merge, want 1", n)
	}
	got := scanAll(t, tbl)
	if v, _ := got[0][1].AsFloat(); v != 5 {
		t.Fatalf("surviving row has v=%g, want 5 (rejected batch leaked)", v)
	}
}

// TestBulkInsertFailureRestoresCounters: a rejected batch must not burn
// identity (or rowid) values, so a corrected retry numbers rows as if the
// failure never happened.
func TestBulkInsertFailureRestoresCounters(t *testing.T) {
	db := Open(256)
	cols := []Column{{Name: "id", Type: TInt, Identity: true}, {Name: "v", Type: TFloat}}
	tbl, err := db.CreateTable("t", cols, "id")
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]Value{
		{Int(7), Float(1)},
		{Null(), Float(2)}, // would take identity 1
		{Int(7), Float(3)}, // duplicate PK: batch rejected
	}
	if err := tbl.BulkInsert(bad); err == nil {
		t.Fatal("duplicate batch accepted")
	}
	if err := tbl.Insert([]Value{Null(), Float(9)}); err != nil {
		t.Fatal(err)
	}
	got := scanAll(t, tbl)
	if len(got) != 1 {
		t.Fatalf("got %d rows, want 1", len(got))
	}
	if id, _ := got[0][0].AsInt(); id != 1 {
		t.Fatalf("identity after failed batch = %d, want 1 (failed batch burned ids)", id)
	}
}

// TestReplaceAllAtomicOnError rewrites a table into a primary-key
// collision: the rewrite must fail without touching the existing rows
// (the UPDATE/DELETE rewrite path goes through ReplaceAll).
func TestReplaceAllAtomicOnError(t *testing.T) {
	db := Open(256)
	cols := []Column{{Name: "k", Type: TInt}, {Name: "v", Type: TFloat}}
	tbl, err := db.CreateTable("t", cols, "k")
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert([]Value{Int(1), Float(1)}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert([]Value{Int(2), Float(2)}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("UPDATE t SET k = 1"); err == nil {
		t.Fatal("primary-key-colliding UPDATE accepted")
	}
	got := scanAll(t, tbl)
	if len(got) != 2 {
		t.Fatalf("failed rewrite left %d rows, want the original 2", len(got))
	}
	for i, want := range []int64{1, 2} {
		if k, _ := got[i][0].AsInt(); k != want {
			t.Fatalf("row %d has k=%d, want %d (failed rewrite mutated the table)", i, k, want)
		}
	}
	// A valid rewrite still works and restarts rowids.
	if _, err := db.Exec("UPDATE t SET v = 9 WHERE k = 2"); err != nil {
		t.Fatal(err)
	}
	got = scanAll(t, tbl)
	if v, _ := got[1][1].AsFloat(); v != 9 {
		t.Fatalf("valid rewrite lost its update: v=%g", v)
	}
}

func TestBulkInsertEmptyAndErrors(t *testing.T) {
	db := Open(256)
	cols := []Column{{Name: "k", Type: TInt}}
	tbl, err := db.CreateTable("t", cols, "k")
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.BulkInsert(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if err := tbl.BulkInsert([][]Value{{Int(1), Int(2)}}); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if err := tbl.BulkInsert([][]Value{{String("not-an-int")}}); err == nil {
		t.Fatal("uncoercible value accepted")
	}
}

// TestRowAfterScanStopsIsNotChimera: once Next returns false at the range
// bound, the storage cursor's buffer holds the out-of-range row, so a late
// Row() call must not decode those bytes at the old row's offsets.
func TestRowAfterScanStopsIsNotChimera(t *testing.T) {
	db := Open(256)
	cols := []Column{{Name: "k", Type: TInt}, {Name: "s", Type: TString}}
	tbl, err := db.CreateTableClustered("t", cols, []string{"k"})
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert([]Value{Int(1), String("in-range")}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert([]Value{Int(2), String("out-of-range")}); err != nil {
		t.Fatal(err)
	}
	cur, err := tbl.RangeScan(Int(1), Int(1))
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	cur.SetEagerColumns(1) // leave the string column undecoded
	if !cur.Next() {
		t.Fatal("first row missing")
	}
	if cur.Next() {
		t.Fatal("scan leaked past the range bound")
	}
	row := cur.Row()
	if err := cur.Err(); err != nil {
		t.Fatalf("Row after scan end errored: %v", err)
	}
	if row[1].S == "out-of-range" {
		t.Fatal("Row after scan end decoded the out-of-range record (chimera row)")
	}
}

// TestSortedRunBuilderMergesRuns drives the builder across its spill
// boundary so Emit takes the multi-run heap-merge path.
func TestSortedRunBuilderMergesRuns(t *testing.T) {
	b := NewSortedRunBuilder()
	// Values big enough that a few thousand entries span several runs.
	pad := make([]byte, 16<<10)
	rng := rand.New(rand.NewSource(9))
	keys := rng.Perm(3000)
	for _, k := range keys {
		key := []byte(fmt.Sprintf("%08d", k))
		b.Add(key, pad)
	}
	if b.Len() != len(keys) {
		t.Fatalf("Len() = %d, want %d", b.Len(), len(keys))
	}
	if len(b.runs) < 2 {
		t.Fatalf("expected multiple sealed runs, got %d (spill threshold not crossed)", len(b.runs))
	}
	var prev string
	n := 0
	err := b.Emit(func(key, value []byte) error {
		if n > 0 && string(key) <= prev {
			return fmt.Errorf("key %q out of order after %q", key, prev)
		}
		prev = string(key)
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(keys) {
		t.Fatalf("Emit yielded %d pairs, want %d", n, len(keys))
	}
}

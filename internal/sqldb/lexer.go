package sqldb

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokParam // ? placeholder
	tokSymbol
	tokKeyword
)

type token struct {
	kind tokenKind
	text string // keywords uppercased; idents in original case
	pos  int    // byte offset, for error messages
}

// keywords recognised by the lexer. Anything else alphabetic is an
// identifier.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "INSERT": true, "INTO": true, "VALUES": true, "CREATE": true,
	"TABLE": true, "INDEX": true, "CLUSTERED": true, "ON": true, "DROP": true,
	"TRUNCATE": true, "DELETE": true, "UPDATE": true, "SET": true,
	"JOIN": true, "CROSS": true, "INNER": true, "LEFT": true, "OUTER": true,
	"GROUP": true, "BY": true, "ORDER": true, "ASC": true, "DESC": true,
	"LIMIT": true, "TOP": true, "AS": true, "BETWEEN": true, "IN": true,
	"IS": true, "NULL": true, "LIKE": true, "CASE": true, "WHEN": true,
	"THEN": true, "ELSE": true, "END": true, "HAVING": true, "DISTINCT": true,
	"PRIMARY": true, "KEY": true, "IDENTITY": true, "CAST": true,
	"TRUE": true, "FALSE": true, "EXISTS": true, "IF": true, "COUNT": true,
}

// EXPLAIN, ANALYZE, COLUMNAR, and PROJECTION are deliberately NOT
// reserved: they lex as identifiers and the parser matches them
// contextually (statement start, after EXPLAIN, after CREATE), so
// existing catalogs with columns or tables named "projection" etc. stay
// queryable.

// lex scans the SQL text into tokens. Comments (-- line and /* block */)
// are skipped. Identifiers may be [bracketed] (T-SQL style) or "quoted".
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && src[i+1] == '-':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("sqldb: unterminated block comment at offset %d", i)
			}
			i += 2 + end + 2
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			for {
				if i >= n {
					return nil, fmt.Errorf("sqldb: unterminated string literal at offset %d", start)
				}
				if src[i] == '\'' {
					if i+1 < n && src[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				sb.WriteByte(src[i])
				i++
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: start})
		case c == '[':
			end := strings.IndexByte(src[i:], ']')
			if end < 0 {
				return nil, fmt.Errorf("sqldb: unterminated [identifier] at offset %d", i)
			}
			toks = append(toks, token{kind: tokIdent, text: src[i+1 : i+end], pos: i})
			i += end + 1
		case c == '"':
			end := strings.IndexByte(src[i+1:], '"')
			if end < 0 {
				return nil, fmt.Errorf(`sqldb: unterminated "identifier" at offset %d`, i)
			}
			toks = append(toks, token{kind: tokIdent, text: src[i+1 : i+1+end], pos: i})
			i += end + 2
		case c == '?':
			toks = append(toks, token{kind: tokParam, text: "?", pos: i})
			i++
		case isDigit(c) || (c == '.' && i+1 < n && isDigit(src[i+1])):
			start := i
			seenDot, seenExp := false, false
			for i < n {
				d := src[i]
				if isDigit(d) {
					i++
					continue
				}
				if d == '.' && !seenDot && !seenExp {
					seenDot = true
					i++
					continue
				}
				if (d == 'e' || d == 'E') && !seenExp && i > start {
					seenExp = true
					i++
					if i < n && (src[i] == '+' || src[i] == '-') {
						i++
					}
					continue
				}
				break
			}
			toks = append(toks, token{kind: tokNumber, text: src[start:i], pos: start})
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(src[i]) {
				i++
			}
			word := src[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, token{kind: tokKeyword, text: upper, pos: start})
			} else {
				toks = append(toks, token{kind: tokIdent, text: word, pos: start})
			}
		default:
			// Multi-char operators first.
			for _, op := range []string{"<=", ">=", "<>", "!=", "||"} {
				if strings.HasPrefix(src[i:], op) {
					toks = append(toks, token{kind: tokSymbol, text: op, pos: i})
					i += 2
					goto next
				}
			}
			if strings.ContainsRune("+-*/%(),.<>=;", rune(c)) {
				toks = append(toks, token{kind: tokSymbol, text: string(c), pos: i})
				i++
				goto next
			}
			return nil, fmt.Errorf("sqldb: unexpected character %q at offset %d", c, i)
		next:
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || c == '@' || c == '#' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || isDigit(c) || c == '$'
}

package sqldb

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/colstore"
	"repro/internal/storage"
)

// Column describes one column of a stored table.
type Column struct {
	Name     string
	Type     Type
	Identity bool
}

// Table is a stored table: rows live in a B+tree ordered by the clustered
// key (the declared PRIMARY KEY, a CREATE CLUSTERED INDEX key, or an
// implicit insertion-ordered rowid). Non-unique clustered keys get a rowid
// suffix so equal keys coexist.
//
// A Table is a handle: the name and column schema are immutable, and all
// mutable state lives in one immutable tableVersion published through an
// atomic pointer. Readers load the version once and see a frozen tree,
// row count, and columnar projection; writers serialize on the core's
// mutex, build a replacement version off to the side, and publish it with
// a single atomic store. RENAME makes a new handle sharing the same core,
// so in-flight queries keep a coherent (name, rows) pair.
type Table struct {
	Name string
	Cols []Column
	*tableCore
}

// tableCore is the shared mutable heart of a table: all handles produced
// by renames point at the same core.
type tableCore struct {
	pool *storage.Pool
	rec  *storage.Reclaimer

	mu      sync.Mutex // writer lock: one version transition at a time
	version atomic.Pointer[tableVersion]
}

// deltaEntry is one encoded row in a version's write overlay.
type deltaEntry struct {
	key []byte
	val []byte
}

// tableVersion is one immutable snapshot of a table's contents. Every
// field is frozen at publish; writers copy the struct, never mutate it.
//
// The tree is always bulk-built (or the empty single-leaf tree), so
// treePages is a complete page inventory: when the version dies, retiring
// that slice deallocates the whole tree without a walk. Trickled Inserts
// land in delta — a sorted overlay whose keys are provably disjoint from
// the tree's (unique tables reject duplicates; non-unique keys carry a
// monotone rowid suffix) — and merge into a fresh tree once the overlay
// reaches deltaFlushRows or any bulk operation rewrites the table.
type tableVersion struct {
	seq          int64
	keyCols      []int // indexes into Cols forming the clustered key; empty = rowid heap
	unique       bool  // true only for PRIMARY KEY storage (no rowid suffix)
	tree         *storage.BTree
	treePages    []storage.PageID
	treeRows     int64
	delta        []deltaEntry
	nextRowID    int64
	nextIdentity int64
	columnar     *colstore.Table // column-major projection of this exact version; nil when absent
}

// rows is the version's total row count.
func (v *tableVersion) rows() int64 { return v.treeRows + int64(len(v.delta)) }

// deltaFlushRows bounds the write overlay: the insert that reaches it
// merges tree+delta into a fresh bulk-built tree. Small enough that scan
// merge overhead stays negligible, large enough that a trickle load
// rewrites the table 1/512th as often as per-row tree inserts would.
const deltaFlushRows = 512

func newTable(pool *storage.Pool, rec *storage.Reclaimer, name string, cols []Column, keyCols []int, unique bool) (*Table, error) {
	tree, err := storage.NewBTree(pool)
	if err != nil {
		return nil, err
	}
	t := &Table{Name: name, Cols: cols, tableCore: &tableCore{pool: pool, rec: rec}}
	t.version.Store(&tableVersion{
		seq: 1, keyCols: keyCols, unique: unique,
		tree: tree, treePages: []storage.PageID{tree.Root()},
		nextRowID: 1, nextIdentity: 1,
	})
	return t, nil
}

// renamed returns a new handle over the same core. The old handle stays
// valid: queries planned against it keep reading (and naming) the table
// they bound.
func (t *Table) renamed(name string) *Table {
	return &Table{Name: name, Cols: t.Cols, tableCore: t.tableCore}
}

// publishLocked installs nv as the current version and retires the old
// tree's pages when the transition replaced the tree (delta-only
// transitions keep it). Caller holds t.mu.
func (t *Table) publishLocked(old, nv *tableVersion) {
	t.version.Store(nv)
	if nv.tree != old.tree {
		t.rec.Retire(old.treePages)
	}
}

// ColIndex returns the index of the named column (case-insensitive), or -1.
func (t *Table) ColIndex(name string) int {
	for i, c := range t.Cols {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// View returns the table's current version as a read view. The view is
// O(1) to take, never blocks writers, and stays internally consistent
// (tree, row count, projection, key layout) no matter what is published
// afterwards. Pages of a superseded version are only reclaimed once every
// guard taken before the supersession is released; cursors opened through
// Table methods carry their own guard, while Snapshot-scoped views ride
// the snapshot's.
func (t *Table) View() TableView {
	return TableView{t: t, v: t.version.Load()}
}

// AcquireView returns the current view pinned by a reclaimer guard, for
// callers that hold a view across multiple cursor lifetimes (the zone
// sweep sources). Call release exactly once when done.
func (t *Table) AcquireView() (TableView, func()) {
	g := t.rec.Enter()
	tv := t.View()
	return tv, func() { g.Release() }
}

// NumRows returns the current row count.
func (t *Table) NumRows() int64 { return t.version.Load().rows() }

// SetColumnar attaches a column-major projection of the table's current
// rows (see internal/colstore): scan-heavy callers can then iterate packed
// column arrays instead of decoding row payloads — the batched zone sweep
// reads the projection, while point probes and SQL keep using the row
// store. The projection rides the version: any write (Insert, BulkInsert,
// Truncate, ReplaceAll, Recluster) publishes a version without it, so a
// view's non-nil Columnar() is always consistent with that view's rows.
func (t *Table) SetColumnar(ct *colstore.Table) {
	t.mu.Lock()
	defer t.mu.Unlock()
	v := t.version.Load()
	nv := *v
	nv.seq++
	nv.columnar = ct
	t.version.Store(&nv)
}

// Columnar returns the attached column-major projection, or nil if none
// was attached or a write has detached it.
func (t *Table) Columnar() *colstore.Table { return t.version.Load().columnar }

// TableView is one immutable version of a table, the object reads plan
// and execute against. The zero value is invalid; obtain one from
// Table.View, Table.AcquireView, or Snapshot.View.
type TableView struct {
	t *Table
	v *tableVersion
}

// Table returns the handle the view was taken from.
func (tv TableView) Table() *Table { return tv.t }

// NumRows returns the view's row count.
func (tv TableView) NumRows() int64 { return tv.v.rows() }

// Columnar returns the view's columnar projection, or nil. It covers
// exactly the view's rows.
func (tv TableView) Columnar() *colstore.Table { return tv.v.columnar }

// KeyCols returns the view's clustered-key column indexes. Read-only.
func (tv TableView) KeyCols() []int { return tv.v.keyCols }

// Unique reports whether the view's clustered key is a PRIMARY KEY.
func (tv TableView) Unique() bool { return tv.v.unique }

// Seq returns the version sequence number; each publish increments it.
func (tv TableView) Seq() int64 { return tv.v.seq }

// appendKey builds the clustered key for a row into a caller-owned
// buffer. Each key column is encoded with a null marker so NULLs order
// first; non-unique keys append the rowid.
func (tv TableView) appendKey(key []byte, row []Value, rowid int64) ([]byte, error) {
	t, v := tv.t, tv.v
	for _, ci := range v.keyCols {
		val := row[ci]
		if val.IsNull() {
			key = append(key, 0)
			continue
		}
		key = append(key, 1)
		switch t.Cols[ci].Type {
		case TInt:
			iv, err := val.AsInt()
			if err != nil {
				return nil, err
			}
			key = storage.AppendInt64(key, iv)
		case TFloat:
			fv, err := val.AsFloat()
			if err != nil {
				return nil, err
			}
			key = storage.AppendFloat64(key, fv)
		case TString:
			key = storage.AppendString(key, val.S)
		case TBool:
			key = storage.AppendBool(key, val.B)
		default:
			return nil, fmt.Errorf("sqldb: cannot key column of type %s", t.Cols[ci].Type)
		}
	}
	if !v.unique || len(v.keyCols) == 0 {
		key = storage.AppendInt64(key, rowid)
	}
	return key, nil
}

// keyPrefixFor encodes a bound on the leading key column for range scans.
func (tv TableView) keyPrefixFor(v Value) ([]byte, error) {
	return tv.appendKeyPrefix(nil, []Value{v})
}

// appendKeyPrefix encodes bounds on the leading len(vals) key columns into
// a caller-owned buffer, so scan loops that re-seek per zone can encode
// bounds without allocating.
func (tv TableView) appendKeyPrefix(key []byte, vals []Value) ([]byte, error) {
	t, v := tv.t, tv.v
	if len(v.keyCols) < len(vals) {
		return nil, fmt.Errorf("sqldb: table %s clustered key has %d columns, prefix needs %d",
			t.Name, len(v.keyCols), len(vals))
	}
	for i, val := range vals {
		ci := v.keyCols[i]
		key = append(key, 1)
		switch t.Cols[ci].Type {
		case TInt:
			iv, err := val.AsInt()
			if err != nil {
				return nil, err
			}
			key = storage.AppendInt64(key, iv)
		case TFloat:
			fv, err := val.AsFloat()
			if err != nil {
				return nil, err
			}
			key = storage.AppendFloat64(key, fv)
		case TString:
			key = storage.AppendString(key, val.S)
		default:
			return nil, fmt.Errorf("sqldb: unsupported range-scan key type %s", t.Cols[ci].Type)
		}
	}
	return key, nil
}

// encodeRow serialises all columns: a null bitmap followed by the non-null
// values (zigzag varint ints, 8-byte floats, uvarint-length strings,
// 1-byte bools).
func encodeRow(cols []Column, row []Value) ([]byte, error) {
	return appendRow(make([]byte, 0, (len(cols)+7)/8+len(cols)*8), cols, row)
}

// appendRow is encodeRow into a caller-owned buffer (see appendKey).
func appendRow(buf []byte, cols []Column, row []Value) ([]byte, error) {
	if len(row) != len(cols) {
		return nil, fmt.Errorf("sqldb: row has %d values for %d columns", len(row), len(cols))
	}
	nb := (len(cols) + 7) / 8
	base := len(buf)
	for i := 0; i < nb; i++ {
		buf = append(buf, 0)
	}
	for i, v := range row {
		if v.IsNull() {
			buf[base+i/8] |= 1 << (i % 8)
		}
	}
	var scratch [binary.MaxVarintLen64]byte
	for i, v := range row {
		if v.IsNull() {
			continue
		}
		if v.NeedsCoerce(cols[i].Type) {
			var err error
			v, err = v.CoerceTo(cols[i].Type)
			if err != nil {
				return nil, fmt.Errorf("sqldb: column %s: %w", cols[i].Name, err)
			}
		}
		switch cols[i].Type {
		case TInt:
			n := binary.PutVarint(scratch[:], v.I)
			buf = append(buf, scratch[:n]...)
		case TFloat:
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.F))
			buf = append(buf, b[:]...)
		case TString:
			n := binary.PutUvarint(scratch[:], uint64(len(v.S)))
			buf = append(buf, scratch[:n]...)
			buf = append(buf, v.S...)
		case TBool:
			if v.B {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		default:
			return nil, fmt.Errorf("sqldb: cannot store type %s", cols[i].Type)
		}
	}
	return buf, nil
}

// decodeRow reverses encodeRow.
func decodeRow(cols []Column, data []byte) ([]Value, error) {
	row := make([]Value, len(cols))
	if err := decodeRowInto(cols, data, row); err != nil {
		return nil, err
	}
	return row, nil
}

// decodeRowInto reverses encodeRow into a caller-owned buffer, avoiding the
// per-row allocation in scan loops.
func decodeRowInto(cols []Column, data []byte, row []Value) error {
	nb := (len(cols) + 7) / 8
	if len(data) < nb {
		return fmt.Errorf("sqldb: row data shorter than null bitmap")
	}
	_, err := decodeCols(cols, data, row, 0, len(cols), nb)
	return err
}

// decodeCols decodes columns [from, to) of an encodeRow payload into row,
// resuming at byte offset pos (pass (len(cols)+7)/8, the end of the null
// bitmap, with from = 0). It returns the offset after column to-1 so a
// later call can decode the remaining columns of the same row.
func decodeCols(cols []Column, data []byte, row []Value, from, to, pos int) (int, error) {
	for i := from; i < to; i++ {
		c := cols[i]
		if data[i/8]&(1<<(i%8)) != 0 {
			row[i] = Null()
			continue
		}
		switch c.Type {
		case TInt:
			v, n := binary.Varint(data[pos:])
			if n <= 0 {
				return pos, fmt.Errorf("sqldb: corrupt int in column %s", c.Name)
			}
			pos += n
			row[i] = Int(v)
		case TFloat:
			if pos+8 > len(data) {
				return pos, fmt.Errorf("sqldb: corrupt float in column %s", c.Name)
			}
			row[i] = Float(math.Float64frombits(binary.LittleEndian.Uint64(data[pos:])))
			pos += 8
		case TString:
			l, n := binary.Uvarint(data[pos:])
			if n <= 0 || pos+n+int(l) > len(data) {
				return pos, fmt.Errorf("sqldb: corrupt string in column %s", c.Name)
			}
			pos += n
			row[i] = String(string(data[pos : pos+int(l)]))
			pos += int(l)
		case TBool:
			if pos >= len(data) {
				return pos, fmt.Errorf("sqldb: corrupt bool in column %s", c.Name)
			}
			row[i] = Bool(data[pos] != 0)
			pos++
		}
	}
	return pos, nil
}

// deltaSeek returns the index of the first overlay entry with key >= start.
func deltaSeek(d []deltaEntry, start []byte) int {
	if len(start) == 0 {
		return 0
	}
	return sort.Search(len(d), func(i int) bool { return bytes.Compare(d[i].key, start) >= 0 })
}

// deltaHas reports whether the overlay holds key exactly.
func deltaHas(d []deltaEntry, key []byte) bool {
	i := deltaSeek(d, key)
	return i < len(d) && bytes.Equal(d[i].key, key)
}

// insertDelta returns the overlay with (key, val) inserted in order. The
// tail-append fast path may extend the previous version's backing array
// in place: readers of published versions only index [:their length], the
// new entry lands at [length], and the version publish provides the
// happens-before edge — disjoint memory, race-free. Mid-slice inserts
// copy to a fresh array.
func insertDelta(d []deltaEntry, key, val []byte) []deltaEntry {
	e := deltaEntry{key: key, val: val}
	if n := len(d); n == 0 || bytes.Compare(d[n-1].key, key) < 0 {
		return append(d, e)
	}
	idx := deltaSeek(d, key)
	nd := make([]deltaEntry, len(d)+1)
	copy(nd, d[:idx])
	nd[idx] = e
	copy(nd[idx+1:], d[idx:])
	return nd
}

// Insert adds a row (values in schema order; Identity columns auto-fill
// when NULL). It enforces PRIMARY KEY uniqueness. The row lands in the
// new version's sorted write overlay; once the overlay reaches
// deltaFlushRows the insert also merges overlay and tree into a fresh
// bulk-built tree, so trickle loads stay amortised-linear while published
// trees remain immutable.
func (t *Table) Insert(row []Value) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	v := t.version.Load()
	if len(row) != len(t.Cols) {
		return fmt.Errorf("sqldb: INSERT into %s has %d values for %d columns", t.Name, len(row), len(t.Cols))
	}
	vals := make([]Value, len(row))
	copy(vals, row)
	nextIdentity := v.nextIdentity
	for i, c := range t.Cols {
		if c.Identity && vals[i].IsNull() {
			vals[i] = Int(nextIdentity)
			nextIdentity++
		}
		if !vals[i].NeedsCoerce(c.Type) {
			continue
		}
		var err error
		vals[i], err = vals[i].CoerceTo(c.Type)
		if err != nil {
			return fmt.Errorf("sqldb: table %s column %s: %w", t.Name, c.Name, err)
		}
	}
	rowid := v.nextRowID
	key, err := TableView{t: t, v: v}.appendKey(make([]byte, 0, 32), vals, rowid)
	if err != nil {
		return err
	}
	if v.unique {
		if _, exists, err := v.tree.Get(key); err != nil {
			return err
		} else if exists {
			return fmt.Errorf("sqldb: duplicate primary key in table %s", t.Name)
		}
		if deltaHas(v.delta, key) {
			return fmt.Errorf("sqldb: duplicate primary key in table %s", t.Name)
		}
	}
	data, err := encodeRow(t.Cols, vals)
	if err != nil {
		return err
	}
	nv := *v
	nv.seq++
	nv.nextRowID = v.nextRowID + 1
	nv.nextIdentity = nextIdentity
	nv.delta = insertDelta(v.delta, key, data)
	nv.columnar = nil // the projection no longer covers every row
	if len(nv.delta) >= deltaFlushRows {
		if fv, err := t.flushedVersion(&nv); err == nil {
			t.publishLocked(v, fv)
			return nil
		}
		// Flush failed (an injected allocation fault, say): the insert
		// itself succeeded, so publish the overlay version and let a later
		// write retry the merge.
	}
	t.version.Store(&nv)
	return nil
}

// TableCursor streams one view's rows in clustered-key order, merging the
// version's bulk-built tree with its sorted write overlay (their keys are
// disjoint, so the merge is a pick-smaller walk with no shadowing logic).
// Columns decode lazily: Next materialises only the leading eager columns
// (all of them unless SetEagerColumns narrowed the set) and Row completes
// the rest on demand, so scan loops that reject most rows on a key-side
// prefix never pay for the tail of the row.
type TableCursor struct {
	t       *Table
	v       *tableVersion
	cur     *storage.Cursor
	delta   []deltaEntry // the view's overlay; di indexes the next candidate
	di      int
	onDelta bool           // current row came from the overlay
	guard   *storage.Guard // held for cursors opened via Table methods; released by Close
	endKey  []byte         // scan stops when key prefix exceeds endKey (inclusive bound)
	row     []Value
	raw     []byte // current row payload (aliases the storage cursor's buffer or an overlay entry)
	pos     int    // decode offset into raw
	decoded int    // leading columns of raw already decoded into row
	eager   int    // columns Next decodes per row; 0 = all
	started bool
	err     error
	keyBuf  []byte // bound-encoding scratch reused across RangeScanPrefixInto calls
	lc      *storage.LeafCache
}

// NewSweepCursor returns a reusable range cursor over the view whose page
// fetches go through a private leaf cache: repeated seeks inside the
// cached window (a zone sweep's per-window re-seeks) skip the buffer pool
// entirely. The view's tree is immutable, so cache mode is always sound.
// Call ResetLeafCache at each work boundary (the zone sweeps reset per
// zone, which keeps the pool's I/O accounting independent of how zones
// are scheduled across workers) and Close when done — Close drops the
// cache's pins too.
func (tv TableView) NewSweepCursor() *TableCursor {
	c := &TableCursor{t: tv.t, v: tv.v, cur: &storage.Cursor{}}
	c.lc = storage.NewLeafCache(tv.t.pool, storage.DefaultLeafCacheFrames)
	c.cur.SetCache(c.lc)
	return c
}

// NewSweepCursor returns a sweep cursor over the table's current version
// (see TableView.NewSweepCursor), pinned by its own guard.
func (t *Table) NewSweepCursor() *TableCursor {
	g := t.rec.Enter()
	c := t.View().NewSweepCursor()
	c.guard = g
	return c
}

// ResetLeafCache releases the sweep cursor's cached pins (no-op on a
// cursor without a cache). The cursor must be re-seeked before its next
// use.
func (c *TableCursor) ResetLeafCache() {
	if c.lc != nil {
		c.lc.Reset()
	}
}

// Scan returns a cursor over the whole view.
func (tv TableView) Scan() (*TableCursor, error) {
	c, err := tv.v.tree.First()
	if err != nil {
		return nil, err
	}
	return &TableCursor{t: tv.t, v: tv.v, cur: c, delta: tv.v.delta}, nil
}

// Scan returns a cursor over the table's current version.
func (t *Table) Scan() (*TableCursor, error) {
	g := t.rec.Enter()
	c, err := t.View().Scan()
	if err != nil {
		g.Release()
		return nil, err
	}
	c.guard = g
	return c, nil
}

// RangeScan returns a cursor over rows whose leading clustered-key column is
// within [lo, hi] (either bound may be omitted by passing a NULL Value).
func (tv TableView) RangeScan(lo, hi Value) (*TableCursor, error) {
	var start []byte
	if !lo.IsNull() {
		p, err := tv.keyPrefixFor(lo)
		if err != nil {
			return nil, err
		}
		start = p
	}
	var end []byte
	if !hi.IsNull() {
		p, err := tv.keyPrefixFor(hi)
		if err != nil {
			return nil, err
		}
		end = p
	}
	c, err := tv.v.tree.Seek(start)
	if err != nil {
		return nil, err
	}
	return &TableCursor{
		t: tv.t, v: tv.v, cur: c, endKey: end,
		delta: tv.v.delta, di: deltaSeek(tv.v.delta, start),
	}, nil
}

// RangeScan returns a range cursor over the table's current version.
func (t *Table) RangeScan(lo, hi Value) (*TableCursor, error) {
	g := t.rec.Enter()
	c, err := t.View().RangeScan(lo, hi)
	if err != nil {
		g.Release()
		return nil, err
	}
	c.guard = g
	return c, nil
}

// RangeScanPrefix returns a cursor over rows whose leading clustered-key
// columns fall within [lo, hi] componentwise: the zone join's
// (zoneID = z AND ra BETWEEN a-x AND a+x) access path.
func (tv TableView) RangeScanPrefix(lo, hi []Value) (*TableCursor, error) {
	start, err := tv.appendKeyPrefix(nil, lo)
	if err != nil {
		return nil, err
	}
	end, err := tv.appendKeyPrefix(nil, hi)
	if err != nil {
		return nil, err
	}
	c, err := tv.v.tree.Seek(start)
	if err != nil {
		return nil, err
	}
	return &TableCursor{
		t: tv.t, v: tv.v, cur: c, endKey: end,
		delta: tv.v.delta, di: deltaSeek(tv.v.delta, start),
	}, nil
}

// RangeScanPrefix returns a prefix-range cursor over the table's current
// version.
func (t *Table) RangeScanPrefix(lo, hi []Value) (*TableCursor, error) {
	g := t.rec.Enter()
	c, err := t.View().RangeScanPrefix(lo, hi)
	if err != nil {
		g.Release()
		return nil, err
	}
	c.guard = g
	return c, nil
}

// RangeScanPrefixInto is RangeScanPrefix reusing cursor c — its storage
// cursor, row buffer, and key scratch — when non-nil (pass nil to allocate
// one). A single cursor can serve an entire batched zone join: each call
// costs one tree descent and no allocation.
func (tv TableView) RangeScanPrefixInto(lo, hi []Value, c *TableCursor) (*TableCursor, error) {
	if c != nil && (c.t != tv.t || c.v != tv.v) {
		c.Close() // release the other view's pins before abandoning it
		c = nil
	}
	if c == nil {
		c = &TableCursor{t: tv.t, v: tv.v, cur: &storage.Cursor{}}
	}
	buf, err := tv.appendKeyPrefix(c.keyBuf[:0], lo)
	if err != nil {
		c.Close()
		return nil, err
	}
	mark := len(buf)
	buf, err = tv.appendKeyPrefix(buf, hi)
	if err != nil {
		c.Close()
		return nil, err
	}
	c.keyBuf = buf
	c.endKey = buf[mark:]
	c.started = false
	c.onDelta = false
	c.err = nil
	c.raw = nil
	c.decoded = 0
	c.delta = tv.v.delta
	c.di = deltaSeek(tv.v.delta, buf[:mark])
	if err := tv.v.tree.SeekInto(buf[:mark], c.cur); err != nil {
		return nil, err
	}
	return c, nil
}

// RangeScanPrefixInto is TableView.RangeScanPrefixInto against the
// table's current version; the cursor re-pins when the version moved
// between calls.
func (t *Table) RangeScanPrefixInto(lo, hi []Value, c *TableCursor) (*TableCursor, error) {
	if c != nil && c.t == t && c.v == t.version.Load() {
		// Same version as the cursor already pins: its guard still covers.
		return TableView{t: t, v: c.v}.RangeScanPrefixInto(lo, hi, c)
	}
	if c != nil {
		c.Close()
	}
	g := t.rec.Enter()
	nc, err := t.View().RangeScanPrefixInto(lo, hi, nil)
	if err != nil {
		g.Release()
		return nil, err
	}
	nc.guard = g
	return nc, nil
}

// Next advances and reports whether a row is available via Row. The
// underlying storage cursor advances lazily — on the following Next, not
// eagerly — so the raw page bytes stay addressable while the caller
// inspects the row.
func (c *TableCursor) Next() bool {
	if c.err != nil {
		return false
	}
	if c.started {
		if c.onDelta {
			c.di++
			c.onDelta = false
		} else if c.cur.Valid() {
			if err := c.cur.Next(); err != nil {
				c.err = err
				return false
			}
		} else if c.di >= len(c.delta) {
			return false
		}
	}
	c.started = true
	// Drop the previous row's payload now: the storage cursor's buffer has
	// been overwritten, so a Row() call after the scan stops must not
	// decode the out-of-range record's bytes at the old row's offsets.
	c.raw = nil
	c.decoded = 0
	treeOK := c.cur.Valid()
	deltaOK := c.di < len(c.delta)
	if !treeOK && !deltaOK {
		return false
	}
	// Pick the smaller key; tree and overlay keys are disjoint.
	useDelta := deltaOK && (!treeOK || bytes.Compare(c.delta[c.di].key, c.cur.Key()) < 0)
	var key []byte
	if useDelta {
		key = c.delta[c.di].key
	} else {
		key = c.cur.Key()
	}
	if c.endKey != nil {
		// Stop once the key's prefix exceeds the inclusive end bound.
		prefix := key
		if len(prefix) > len(c.endKey) {
			prefix = prefix[:len(c.endKey)]
		}
		if string(prefix) > string(c.endKey) {
			return false
		}
	}
	c.onDelta = useDelta
	if c.row == nil {
		c.row = make([]Value, len(c.t.Cols))
	}
	if useDelta {
		c.raw = c.delta[c.di].val
	} else {
		c.raw = c.cur.Value()
	}
	nb := (len(c.t.Cols) + 7) / 8
	if len(c.raw) < nb {
		c.err = fmt.Errorf("sqldb: row data shorter than null bitmap")
		return false
	}
	c.pos = nb
	c.decoded = 0
	eager := c.eager
	if eager <= 0 || eager > len(c.t.Cols) {
		eager = len(c.t.Cols)
	}
	return c.decodeTo(eager)
}

// decodeTo extends the decoded prefix of the current row to n columns.
func (c *TableCursor) decodeTo(n int) bool {
	if c.err != nil || c.raw == nil {
		// No current row (Next not yet called, or the scan ended).
		return false
	}
	if n <= c.decoded {
		return true
	}
	pos, err := decodeCols(c.t.Cols, c.raw, c.row, c.decoded, n, c.pos)
	if err != nil {
		// Null the undecoded tail so a caller that ignores the error does
		// not see the previous row's values in those columns.
		for i := c.decoded; i < len(c.t.Cols); i++ {
			c.row[i] = Null()
		}
		c.err = err
		return false
	}
	c.pos, c.decoded = pos, n
	return true
}

// Row returns the current row, fully decoded. The slice is reused by the
// next call to Next; callers that retain rows must copy them.
func (c *TableCursor) Row() []Value {
	c.decodeTo(len(c.t.Cols))
	return c.row
}

// RowPrefix returns the first n columns of the current row without decoding
// the rest (Row later completes them). Check Err after the scan: a decode
// failure surfaces there rather than stopping Next.
func (c *TableCursor) RowPrefix(n int) []Value {
	c.decodeTo(n)
	return c.row[:n]
}

// SetEagerColumns limits the columns Next decodes per row to the first n;
// 0 restores full decode. The setting survives RangeScanPrefixInto reuse.
func (c *TableCursor) SetEagerColumns(n int) { c.eager = n }

// Err returns the first error encountered.
func (c *TableCursor) Err() error { return c.err }

// Close releases the cursor: storage pins, any leaf cache, and the
// reclaimer guard pinning its version. Idempotent.
func (c *TableCursor) Close() {
	c.cur.Close()
	if c.lc != nil {
		c.lc.Reset()
	}
	if c.guard != nil {
		c.guard.Release()
		c.guard = nil
	}
}

// retireContents publishes an empty version so a dropped (or
// rename-replaced) table's pages reclaim once every snapshot that could
// reach them closes. A stale handle used after the drop reads an empty
// table — never freed pages — because readers guard-then-load and
// retirement only ever accompanies a version publish.
func (t *Table) retireContents() { _ = t.Truncate() }

// Truncate removes all rows. The old version's tree pages are retired and
// reclaimed once no snapshot still reads them.
func (t *Table) Truncate() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	v := t.version.Load()
	tree, err := storage.NewBTree(t.pool)
	if err != nil {
		return err
	}
	nv := &tableVersion{
		seq: v.seq + 1, keyCols: v.keyCols, unique: v.unique,
		tree: tree, treePages: []storage.PageID{tree.Root()},
		nextRowID: 1, nextIdentity: 1,
	}
	t.publishLocked(v, nv)
	return nil
}

// ReplaceAll atomically swaps the table contents for the given rows; used
// by UPDATE/DELETE rewrites and CREATE CLUSTERED INDEX rebuilds. The new
// contents bulk-load bottom-up: rowids restart at 1 and are assigned in
// slice order, exactly as a Truncate followed by per-row Inserts would —
// but the publish happens only after the replacement tree is fully built,
// so a failed rewrite (e.g. an UPDATE that makes a primary key collide)
// leaves the table untouched, and in-flight readers keep the version they
// started with either way.
func (t *Table) ReplaceAll(rows [][]Value) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.replaceAllLocked(rows)
}

// replaceAllLocked is ReplaceAll for callers already holding t.mu (the
// UPDATE/DELETE executor, which must scan and replace under one writer
// critical section to stay atomic against other writers).
func (t *Table) replaceAllLocked(rows [][]Value) error {
	v := t.version.Load()
	nv, err := t.rebuiltVersion(v, v.keyCols, v.unique, len(rows), func(i int) []Value { return rows[i] })
	if err != nil {
		return err
	}
	t.publishLocked(v, nv)
	return nil
}

// Recluster rebuilds the table ordered by the named key columns (CREATE
// CLUSTERED INDEX). The new key is non-unique (rowid suffix). Key layout
// and tree change together in one published version, so no reader can
// see the new ordering described by the old key columns or vice versa.
func (t *Table) Recluster(keyCols []string) error {
	idx := make([]int, len(keyCols))
	for i, name := range keyCols {
		ci := t.ColIndex(name)
		if ci < 0 {
			return fmt.Errorf("sqldb: no column %q in table %s", name, t.Name)
		}
		idx[i] = ci
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	v := t.version.Load()
	var rows [][]Value
	c, err := (TableView{t: t, v: v}).Scan()
	if err != nil {
		return err
	}
	for c.Next() {
		rows = append(rows, append([]Value(nil), c.Row()...))
	}
	c.Close()
	if err := c.Err(); err != nil {
		return err
	}
	nv, err := t.rebuiltVersion(v, idx, false, len(rows), func(i int) []Value { return rows[i] })
	if err != nil {
		return err
	}
	t.publishLocked(v, nv)
	return nil
}

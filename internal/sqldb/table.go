package sqldb

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
	"sync"

	"repro/internal/colstore"
	"repro/internal/storage"
)

// Column describes one column of a stored table.
type Column struct {
	Name     string
	Type     Type
	Identity bool
}

// Table is a stored table: rows live in a B+tree ordered by the clustered
// key (the declared PRIMARY KEY, a CREATE CLUSTERED INDEX key, or an
// implicit insertion-ordered rowid). Non-unique clustered keys get a rowid
// suffix so equal keys coexist.
type Table struct {
	Name    string
	Cols    []Column
	KeyCols []int // indexes into Cols forming the clustered key; empty = rowid heap
	Unique  bool  // true only for PRIMARY KEY storage (no rowid suffix)

	mu           sync.Mutex
	tree         *storage.BTree
	pool         *storage.Pool
	rows         int64
	nextRowID    int64
	nextIdentity int64
	columnar     *colstore.Table // optional column-major projection; nil when stale
}

func newTable(pool *storage.Pool, name string, cols []Column, keyCols []int, unique bool) (*Table, error) {
	tree, err := storage.NewBTree(pool)
	if err != nil {
		return nil, err
	}
	return &Table{
		Name: name, Cols: cols, KeyCols: keyCols, Unique: unique,
		tree: tree, pool: pool, nextRowID: 1, nextIdentity: 1,
	}, nil
}

// ColIndex returns the index of the named column (case-insensitive), or -1.
func (t *Table) ColIndex(name string) int {
	for i, c := range t.Cols {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// NumRows returns the current row count.
func (t *Table) NumRows() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rows
}

// SetColumnar attaches a column-major projection of the table's current
// rows (see internal/colstore): scan-heavy callers can then iterate packed
// column arrays instead of decoding row payloads — the batched zone sweep
// reads the projection, while point probes and SQL keep using the row
// store. The projection is a snapshot, not a maintained index: any write
// (Insert, BulkInsert, Truncate, ReplaceAll, Recluster) detaches it, so a
// non-nil Columnar() is always consistent with the rows.
func (t *Table) SetColumnar(ct *colstore.Table) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.columnar = ct
}

// Columnar returns the attached column-major projection, or nil if none
// was attached or a write has detached it.
func (t *Table) Columnar() *colstore.Table {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.columnar
}

// encodeKey builds the clustered key for a row. Each key column is encoded
// with a null marker so NULLs order first; non-unique keys append the rowid.
func (t *Table) encodeKey(row []Value, rowid int64) ([]byte, error) {
	return t.appendKey(make([]byte, 0, 32), row, rowid)
}

// appendKey is encodeKey into a caller-owned buffer; the bulk-load path
// encodes every row through one reused scratch slice.
func (t *Table) appendKey(key []byte, row []Value, rowid int64) ([]byte, error) {
	for _, ci := range t.KeyCols {
		v := row[ci]
		if v.IsNull() {
			key = append(key, 0)
			continue
		}
		key = append(key, 1)
		switch t.Cols[ci].Type {
		case TInt:
			iv, err := v.AsInt()
			if err != nil {
				return nil, err
			}
			key = storage.AppendInt64(key, iv)
		case TFloat:
			fv, err := v.AsFloat()
			if err != nil {
				return nil, err
			}
			key = storage.AppendFloat64(key, fv)
		case TString:
			key = storage.AppendString(key, v.S)
		case TBool:
			key = storage.AppendBool(key, v.B)
		default:
			return nil, fmt.Errorf("sqldb: cannot key column of type %s", t.Cols[ci].Type)
		}
	}
	if !t.Unique || len(t.KeyCols) == 0 {
		key = storage.AppendInt64(key, rowid)
	}
	return key, nil
}

// keyPrefixFor encodes a bound on the leading key column for range scans.
func (t *Table) keyPrefixFor(v Value) ([]byte, error) {
	return t.keyPrefixForVals([]Value{v})
}

// keyPrefixForVals encodes bounds on the leading len(vals) key columns.
func (t *Table) keyPrefixForVals(vals []Value) ([]byte, error) {
	return t.appendKeyPrefix(nil, vals)
}

// appendKeyPrefix is keyPrefixForVals into a caller-owned buffer, so scan
// loops that re-seek per zone can encode bounds without allocating.
func (t *Table) appendKeyPrefix(key []byte, vals []Value) ([]byte, error) {
	if len(t.KeyCols) < len(vals) {
		return nil, fmt.Errorf("sqldb: table %s clustered key has %d columns, prefix needs %d",
			t.Name, len(t.KeyCols), len(vals))
	}
	for i, v := range vals {
		ci := t.KeyCols[i]
		key = append(key, 1)
		switch t.Cols[ci].Type {
		case TInt:
			iv, err := v.AsInt()
			if err != nil {
				return nil, err
			}
			key = storage.AppendInt64(key, iv)
		case TFloat:
			fv, err := v.AsFloat()
			if err != nil {
				return nil, err
			}
			key = storage.AppendFloat64(key, fv)
		case TString:
			key = storage.AppendString(key, v.S)
		default:
			return nil, fmt.Errorf("sqldb: unsupported range-scan key type %s", t.Cols[ci].Type)
		}
	}
	return key, nil
}

// encodeRow serialises all columns: a null bitmap followed by the non-null
// values (zigzag varint ints, 8-byte floats, uvarint-length strings,
// 1-byte bools).
func encodeRow(cols []Column, row []Value) ([]byte, error) {
	return appendRow(make([]byte, 0, (len(cols)+7)/8+len(cols)*8), cols, row)
}

// appendRow is encodeRow into a caller-owned buffer (see appendKey).
func appendRow(buf []byte, cols []Column, row []Value) ([]byte, error) {
	if len(row) != len(cols) {
		return nil, fmt.Errorf("sqldb: row has %d values for %d columns", len(row), len(cols))
	}
	nb := (len(cols) + 7) / 8
	base := len(buf)
	for i := 0; i < nb; i++ {
		buf = append(buf, 0)
	}
	for i, v := range row {
		if v.IsNull() {
			buf[base+i/8] |= 1 << (i % 8)
		}
	}
	var scratch [binary.MaxVarintLen64]byte
	for i, v := range row {
		if v.IsNull() {
			continue
		}
		if v.NeedsCoerce(cols[i].Type) {
			var err error
			v, err = v.CoerceTo(cols[i].Type)
			if err != nil {
				return nil, fmt.Errorf("sqldb: column %s: %w", cols[i].Name, err)
			}
		}
		switch cols[i].Type {
		case TInt:
			n := binary.PutVarint(scratch[:], v.I)
			buf = append(buf, scratch[:n]...)
		case TFloat:
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.F))
			buf = append(buf, b[:]...)
		case TString:
			n := binary.PutUvarint(scratch[:], uint64(len(v.S)))
			buf = append(buf, scratch[:n]...)
			buf = append(buf, v.S...)
		case TBool:
			if v.B {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		default:
			return nil, fmt.Errorf("sqldb: cannot store type %s", cols[i].Type)
		}
	}
	return buf, nil
}

// decodeRow reverses encodeRow.
func decodeRow(cols []Column, data []byte) ([]Value, error) {
	row := make([]Value, len(cols))
	if err := decodeRowInto(cols, data, row); err != nil {
		return nil, err
	}
	return row, nil
}

// decodeRowInto reverses encodeRow into a caller-owned buffer, avoiding the
// per-row allocation in scan loops.
func decodeRowInto(cols []Column, data []byte, row []Value) error {
	nb := (len(cols) + 7) / 8
	if len(data) < nb {
		return fmt.Errorf("sqldb: row data shorter than null bitmap")
	}
	_, err := decodeCols(cols, data, row, 0, len(cols), nb)
	return err
}

// decodeCols decodes columns [from, to) of an encodeRow payload into row,
// resuming at byte offset pos (pass (len(cols)+7)/8, the end of the null
// bitmap, with from = 0). It returns the offset after column to-1 so a
// later call can decode the remaining columns of the same row.
func decodeCols(cols []Column, data []byte, row []Value, from, to, pos int) (int, error) {
	for i := from; i < to; i++ {
		c := cols[i]
		if data[i/8]&(1<<(i%8)) != 0 {
			row[i] = Null()
			continue
		}
		switch c.Type {
		case TInt:
			v, n := binary.Varint(data[pos:])
			if n <= 0 {
				return pos, fmt.Errorf("sqldb: corrupt int in column %s", c.Name)
			}
			pos += n
			row[i] = Int(v)
		case TFloat:
			if pos+8 > len(data) {
				return pos, fmt.Errorf("sqldb: corrupt float in column %s", c.Name)
			}
			row[i] = Float(math.Float64frombits(binary.LittleEndian.Uint64(data[pos:])))
			pos += 8
		case TString:
			l, n := binary.Uvarint(data[pos:])
			if n <= 0 || pos+n+int(l) > len(data) {
				return pos, fmt.Errorf("sqldb: corrupt string in column %s", c.Name)
			}
			pos += n
			row[i] = String(string(data[pos : pos+int(l)]))
			pos += int(l)
		case TBool:
			if pos >= len(data) {
				return pos, fmt.Errorf("sqldb: corrupt bool in column %s", c.Name)
			}
			row[i] = Bool(data[pos] != 0)
			pos++
		}
	}
	return pos, nil
}

// Insert adds a row (values in schema order; Identity columns auto-fill
// when NULL). It enforces PRIMARY KEY uniqueness.
func (t *Table) Insert(row []Value) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(row) != len(t.Cols) {
		return fmt.Errorf("sqldb: INSERT into %s has %d values for %d columns", t.Name, len(row), len(t.Cols))
	}
	vals := make([]Value, len(row))
	copy(vals, row)
	for i, c := range t.Cols {
		if c.Identity && vals[i].IsNull() {
			vals[i] = Int(t.nextIdentity)
			t.nextIdentity++
		}
		if !vals[i].NeedsCoerce(c.Type) {
			continue
		}
		var err error
		vals[i], err = vals[i].CoerceTo(c.Type)
		if err != nil {
			return fmt.Errorf("sqldb: table %s column %s: %w", t.Name, c.Name, err)
		}
	}
	rowid := t.nextRowID
	t.nextRowID++
	key, err := t.encodeKey(vals, rowid)
	if err != nil {
		return err
	}
	if t.Unique {
		if _, exists, err := t.tree.Get(key); err != nil {
			return err
		} else if exists {
			return fmt.Errorf("sqldb: duplicate primary key in table %s", t.Name)
		}
	}
	data, err := encodeRow(t.Cols, vals)
	if err != nil {
		return err
	}
	if err := t.tree.Insert(key, data); err != nil {
		return err
	}
	t.rows++
	t.columnar = nil // the projection no longer covers every row
	return nil
}

// TableCursor streams rows in clustered-key order. Columns decode lazily:
// Next materialises only the leading eager columns (all of them unless
// SetEagerColumns narrowed the set) and Row completes the rest on demand,
// so scan loops that reject most rows on a key-side prefix never pay for
// the tail of the row.
type TableCursor struct {
	table   *Table
	cur     *storage.Cursor
	endKey  []byte // scan stops when key prefix exceeds endKey (inclusive bound)
	row     []Value
	raw     []byte // current row payload (aliases the storage cursor's buffer)
	pos     int    // decode offset into raw
	decoded int    // leading columns of raw already decoded into row
	eager   int    // columns Next decodes per row; 0 = all
	started bool
	err     error
	keyBuf  []byte // bound-encoding scratch reused across RangeScanPrefixInto calls
	lc      *storage.LeafCache
}

// NewSweepCursor returns a reusable range cursor whose page fetches go
// through a private leaf cache: repeated seeks inside the cached window
// (a zone sweep's per-window re-seeks) skip the buffer pool entirely.
// Cache mode is only sound while the table is not being written; the
// sweep drivers own that invariant. Call ResetLeafCache at each work
// boundary (the zone sweeps reset per zone, which keeps the pool's I/O
// accounting independent of how zones are scheduled across workers) and
// Close when done — Close drops the cache's pins too.
func (t *Table) NewSweepCursor() *TableCursor {
	c := &TableCursor{table: t, cur: &storage.Cursor{}}
	c.lc = storage.NewLeafCache(t.pool, storage.DefaultLeafCacheFrames)
	c.cur.SetCache(c.lc)
	return c
}

// ResetLeafCache releases the sweep cursor's cached pins (no-op on a
// cursor without a cache). The cursor must be re-seeked before its next
// use.
func (c *TableCursor) ResetLeafCache() {
	if c.lc != nil {
		c.lc.Reset()
	}
}

// Scan returns a cursor over the whole table.
func (t *Table) Scan() (*TableCursor, error) {
	c, err := t.tree.First()
	if err != nil {
		return nil, err
	}
	return &TableCursor{table: t, cur: c}, nil
}

// RangeScan returns a cursor over rows whose leading clustered-key column is
// within [lo, hi] (either bound may be omitted by passing a NULL Value).
func (t *Table) RangeScan(lo, hi Value) (*TableCursor, error) {
	var start []byte
	if !lo.IsNull() {
		p, err := t.keyPrefixFor(lo)
		if err != nil {
			return nil, err
		}
		start = p
	}
	var end []byte
	if !hi.IsNull() {
		p, err := t.keyPrefixFor(hi)
		if err != nil {
			return nil, err
		}
		end = p
	}
	c, err := t.tree.Seek(start)
	if err != nil {
		return nil, err
	}
	return &TableCursor{table: t, cur: c, endKey: end}, nil
}

// RangeScanPrefix returns a cursor over rows whose leading clustered-key
// columns fall within [lo, hi] componentwise: the zone join's
// (zoneID = z AND ra BETWEEN a-x AND a+x) access path.
func (t *Table) RangeScanPrefix(lo, hi []Value) (*TableCursor, error) {
	start, err := t.keyPrefixForVals(lo)
	if err != nil {
		return nil, err
	}
	end, err := t.keyPrefixForVals(hi)
	if err != nil {
		return nil, err
	}
	c, err := t.tree.Seek(start)
	if err != nil {
		return nil, err
	}
	return &TableCursor{table: t, cur: c, endKey: end}, nil
}

// RangeScanPrefixInto is RangeScanPrefix reusing cursor c — its storage
// cursor, row buffer, and key scratch — when non-nil (pass nil to allocate
// one). A single cursor can serve an entire batched zone join: each call
// costs one tree descent and no allocation.
func (t *Table) RangeScanPrefixInto(lo, hi []Value, c *TableCursor) (*TableCursor, error) {
	if c != nil && c.table != t {
		c.Close() // release the other table's pin before abandoning it
		c = nil
	}
	if c == nil {
		c = &TableCursor{table: t, cur: &storage.Cursor{}}
	}
	buf, err := t.appendKeyPrefix(c.keyBuf[:0], lo)
	if err != nil {
		c.Close()
		return nil, err
	}
	mark := len(buf)
	buf, err = t.appendKeyPrefix(buf, hi)
	if err != nil {
		c.Close()
		return nil, err
	}
	c.keyBuf = buf
	c.endKey = buf[mark:]
	c.started = false
	c.err = nil
	c.raw = nil
	c.decoded = 0
	if err := t.tree.SeekInto(buf[:mark], c.cur); err != nil {
		return nil, err
	}
	return c, nil
}

// Next advances and reports whether a row is available via Row. The
// underlying storage cursor advances lazily — on the following Next, not
// eagerly — so the raw page bytes stay addressable while the caller
// inspects the row.
func (c *TableCursor) Next() bool {
	if c.err != nil {
		return false
	}
	if c.started {
		if !c.cur.Valid() {
			return false
		}
		if err := c.cur.Next(); err != nil {
			c.err = err
			return false
		}
	}
	c.started = true
	// Drop the previous row's payload now: the storage cursor's buffer has
	// been overwritten, so a Row() call after the scan stops must not
	// decode the out-of-range record's bytes at the old row's offsets.
	c.raw = nil
	c.decoded = 0
	if !c.cur.Valid() {
		return false
	}
	key := c.cur.Key()
	if c.endKey != nil {
		// Stop once the key's prefix exceeds the inclusive end bound.
		prefix := key
		if len(prefix) > len(c.endKey) {
			prefix = prefix[:len(c.endKey)]
		}
		if string(prefix) > string(c.endKey) {
			return false
		}
	}
	if c.row == nil {
		c.row = make([]Value, len(c.table.Cols))
	}
	c.raw = c.cur.Value()
	nb := (len(c.table.Cols) + 7) / 8
	if len(c.raw) < nb {
		c.err = fmt.Errorf("sqldb: row data shorter than null bitmap")
		return false
	}
	c.pos = nb
	c.decoded = 0
	eager := c.eager
	if eager <= 0 || eager > len(c.table.Cols) {
		eager = len(c.table.Cols)
	}
	return c.decodeTo(eager)
}

// decodeTo extends the decoded prefix of the current row to n columns.
func (c *TableCursor) decodeTo(n int) bool {
	if c.err != nil || c.raw == nil {
		// No current row (Next not yet called, or the scan ended).
		return false
	}
	if n <= c.decoded {
		return true
	}
	pos, err := decodeCols(c.table.Cols, c.raw, c.row, c.decoded, n, c.pos)
	if err != nil {
		// Null the undecoded tail so a caller that ignores the error does
		// not see the previous row's values in those columns.
		for i := c.decoded; i < len(c.table.Cols); i++ {
			c.row[i] = Null()
		}
		c.err = err
		return false
	}
	c.pos, c.decoded = pos, n
	return true
}

// Row returns the current row, fully decoded. The slice is reused by the
// next call to Next; callers that retain rows must copy them.
func (c *TableCursor) Row() []Value {
	c.decodeTo(len(c.table.Cols))
	return c.row
}

// RowPrefix returns the first n columns of the current row without decoding
// the rest (Row later completes them). Check Err after the scan: a decode
// failure surfaces there rather than stopping Next.
func (c *TableCursor) RowPrefix(n int) []Value {
	c.decodeTo(n)
	return c.row[:n]
}

// SetEagerColumns limits the columns Next decodes per row to the first n;
// 0 restores full decode. The setting survives RangeScanPrefixInto reuse.
func (c *TableCursor) SetEagerColumns(n int) { c.eager = n }

// Err returns the first error encountered.
func (c *TableCursor) Err() error { return c.err }

// Close releases the cursor, including any leaf-cache pins.
func (c *TableCursor) Close() {
	c.cur.Close()
	if c.lc != nil {
		c.lc.Reset()
	}
}

// Truncate removes all rows (a fresh tree; old pages are abandoned, as this
// engine has no free-space reuse).
func (t *Table) Truncate() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	tree, err := storage.NewBTree(t.pool)
	if err != nil {
		return err
	}
	t.tree = tree
	t.rows = 0
	t.nextRowID = 1
	t.nextIdentity = 1
	t.columnar = nil
	return nil
}

// ReplaceAll atomically swaps the table contents for the given rows; used
// by UPDATE/DELETE rewrites and CREATE CLUSTERED INDEX rebuilds. The new
// contents bulk-load bottom-up: rowids restart at 1 and are assigned in
// slice order, exactly as a Truncate followed by per-row Inserts would —
// but the swap happens only after the replacement tree is fully built, so
// a failed rewrite (e.g. an UPDATE that makes a primary key collide)
// leaves the table untouched.
func (t *Table) ReplaceAll(rows [][]Value) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	oldRows := t.rows
	oldRowID, oldIdentity := t.nextRowID, t.nextIdentity
	// With the counters zeroed, bulkInsertLocked takes the fresh-load path
	// and only assigns t.tree once the replacement is fully built; the old
	// tree stays in place (and is restored) on failure.
	t.rows, t.nextRowID, t.nextIdentity = 0, 1, 1
	if len(rows) == 0 {
		tree, err := storage.NewBTree(t.pool)
		if err != nil {
			t.rows, t.nextRowID, t.nextIdentity = oldRows, oldRowID, oldIdentity
			return err
		}
		t.tree = tree
		t.columnar = nil
		return nil
	}
	if err := t.bulkInsertLocked(len(rows), func(i int) []Value { return rows[i] }); err != nil {
		t.rows, t.nextRowID, t.nextIdentity = oldRows, oldRowID, oldIdentity
		return err
	}
	return nil
}

// Recluster rebuilds the table ordered by the named key columns (CREATE
// CLUSTERED INDEX). The new key is non-unique (rowid suffix).
func (t *Table) Recluster(keyCols []string) error {
	idx := make([]int, len(keyCols))
	for i, name := range keyCols {
		ci := t.ColIndex(name)
		if ci < 0 {
			return fmt.Errorf("sqldb: no column %q in table %s", name, t.Name)
		}
		idx[i] = ci
	}
	var rows [][]Value
	c, err := t.Scan()
	if err != nil {
		return err
	}
	for c.Next() {
		rows = append(rows, append([]Value(nil), c.Row()...))
	}
	c.Close()
	if err := c.Err(); err != nil {
		return err
	}
	t.mu.Lock()
	oldKey, oldUnique := t.KeyCols, t.Unique
	t.KeyCols = idx
	t.Unique = false
	t.mu.Unlock()
	if err := t.ReplaceAll(rows); err != nil {
		// The old tree is still in place; put the key metadata back so
		// scans keep encoding bounds for the order the tree actually has.
		t.mu.Lock()
		t.KeyCols, t.Unique = oldKey, oldUnique
		t.mu.Unlock()
		return err
	}
	return nil
}

package sqldb

import (
	"context"
	"fmt"
	"math"
	"strings"
)

// ScalarFunc is a registered scalar function: the engine's equivalent of a
// T-SQL scalar UDF such as the paper's dbo.fBCGr200.
type ScalarFunc func(args []Value) (Value, error)

// TVF is a registered table-valued function, the engine's equivalent of
// the paper's fGetNearbyObjEqZd: called with scalar arguments, it returns
// a rowset with a fixed schema.
//
// A TVF whose arguments reference columns of earlier FROM items is a
// lateral call: the Volcano plan invokes Fn once per outer row. When Batch
// is set, the physical planner instead lowers the whole join to a
// ZoneSweepJoin operator that hands every outer row's argument vector to
// Batch in one call — the plan-level twin of zone.Sweep, so paper SQL
// gets the batched sweep without Go code.
type TVF struct {
	Cols []Column
	Fn   func(args []Value) ([][]Value, error)

	// Batch answers many invocations in one pass: probes[i] holds the i-th
	// call's argument vector, and each result row arrives via
	// emit(probe, row). The row slice is only valid during the emit call
	// (the consumer copies); per probe, rows must arrive in exactly the
	// order Fn would return them, so the batched and per-row plans are
	// bit-identical. Optional; nil keeps the per-row lateral plan.
	//
	// ctx is the executing statement's context: implementations that fan
	// out (the parallel zone sweeps) must observe it so a cancelled query
	// stops consuming CPU mid-sweep.
	Batch func(ctx context.Context, probes [][]Value, emit func(probe int, row []Value)) error

	// Source optionally names the table the TVF reads, letting EXPLAIN
	// show the physical access path (ColumnarScan when a column-major
	// projection is attached, IndexScan otherwise) under a ZoneSweepJoin.
	Source *Table

	// Access labels the access path for EXPLAIN when the TVF reads no
	// local table at all — a federated sweep over remote stripe
	// workers (internal/fed) shows its fan-out here. Ignored when
	// Source is set.
	Access string
}

// evalCall dispatches a (non-aggregate) function call: builtins first, then
// user-registered scalars.
func evalCall(x *Call, ev *env) (Value, error) {
	name := strings.ToUpper(x.Name)
	if isAggregate(name) {
		return Value{}, fmt.Errorf("sqldb: aggregate %s used outside an aggregation context", name)
	}
	args := make([]Value, len(x.Args))
	for i, a := range x.Args {
		v, err := eval(a, ev)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	if fn, ok := builtins[name]; ok {
		return fn(args)
	}
	if ev.db != nil {
		if fn, ok := ev.db.scalarFunc(x.Name); ok {
			return fn(args)
		}
	}
	return Value{}, fmt.Errorf("sqldb: unknown function %s", x.Name)
}

func need(args []Value, n int, name string) error {
	if len(args) != n {
		return fmt.Errorf("sqldb: %s expects %d arguments, got %d", name, n, len(args))
	}
	return nil
}

// float1 wraps a 1-argument float function with NULL propagation.
func float1(name string, f func(float64) (float64, error)) ScalarFunc {
	return func(args []Value) (Value, error) {
		if err := need(args, 1, name); err != nil {
			return Value{}, err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		x, err := args[0].AsFloat()
		if err != nil {
			return Value{}, err
		}
		y, err := f(x)
		if err != nil {
			return Value{}, err
		}
		return Float(y), nil
	}
}

var builtins map[string]ScalarFunc

func init() {
	builtins = map[string]ScalarFunc{
		"PI": func(args []Value) (Value, error) {
			if err := need(args, 0, "PI"); err != nil {
				return Value{}, err
			}
			return Float(math.Pi), nil
		},
		"POWER": func(args []Value) (Value, error) {
			if err := need(args, 2, "POWER"); err != nil {
				return Value{}, err
			}
			if args[0].IsNull() || args[1].IsNull() {
				return Null(), nil
			}
			x, err := args[0].AsFloat()
			if err != nil {
				return Value{}, err
			}
			y, err := args[1].AsFloat()
			if err != nil {
				return Value{}, err
			}
			return Float(math.Pow(x, y)), nil
		},
		"SQRT": float1("SQRT", func(x float64) (float64, error) {
			if x < 0 {
				return 0, fmt.Errorf("sqldb: SQRT of negative value %g", x)
			}
			return math.Sqrt(x), nil
		}),
		"ABS": func(args []Value) (Value, error) {
			if err := need(args, 1, "ABS"); err != nil {
				return Value{}, err
			}
			v := args[0]
			switch v.T {
			case TNull:
				return Null(), nil
			case TInt:
				if v.I < 0 {
					return Int(-v.I), nil
				}
				return v, nil
			case TFloat:
				return Float(math.Abs(v.F)), nil
			}
			return Value{}, fmt.Errorf("sqldb: ABS of %s", v.T)
		},
		"FLOOR":   float1("FLOOR", func(x float64) (float64, error) { return math.Floor(x), nil }),
		"CEILING": float1("CEILING", func(x float64) (float64, error) { return math.Ceil(x), nil }),
		"LOG": float1("LOG", func(x float64) (float64, error) {
			if x <= 0 {
				return 0, fmt.Errorf("sqldb: LOG of non-positive value %g", x)
			}
			return math.Log(x), nil
		}),
		"LOG10": float1("LOG10", func(x float64) (float64, error) {
			if x <= 0 {
				return 0, fmt.Errorf("sqldb: LOG10 of non-positive value %g", x)
			}
			return math.Log10(x), nil
		}),
		"EXP":     float1("EXP", func(x float64) (float64, error) { return math.Exp(x), nil }),
		"SIN":     float1("SIN", func(x float64) (float64, error) { return math.Sin(x), nil }),
		"COS":     float1("COS", func(x float64) (float64, error) { return math.Cos(x), nil }),
		"TAN":     float1("TAN", func(x float64) (float64, error) { return math.Tan(x), nil }),
		"ASIN":    float1("ASIN", func(x float64) (float64, error) { return math.Asin(x), nil }),
		"ACOS":    float1("ACOS", func(x float64) (float64, error) { return math.Acos(x), nil }),
		"ATAN":    float1("ATAN", func(x float64) (float64, error) { return math.Atan(x), nil }),
		"RADIANS": float1("RADIANS", func(x float64) (float64, error) { return x * math.Pi / 180, nil }),
		"DEGREES": float1("DEGREES", func(x float64) (float64, error) { return x * 180 / math.Pi, nil }),
		"SIGN": float1("SIGN", func(x float64) (float64, error) {
			switch {
			case x > 0:
				return 1, nil
			case x < 0:
				return -1, nil
			}
			return 0, nil
		}),
		"ATN2": func(args []Value) (Value, error) {
			if err := need(args, 2, "ATN2"); err != nil {
				return Value{}, err
			}
			if args[0].IsNull() || args[1].IsNull() {
				return Null(), nil
			}
			y, err := args[0].AsFloat()
			if err != nil {
				return Value{}, err
			}
			x, err := args[1].AsFloat()
			if err != nil {
				return Value{}, err
			}
			return Float(math.Atan2(y, x)), nil
		},
		"ROUND": func(args []Value) (Value, error) {
			if len(args) != 1 && len(args) != 2 {
				return Value{}, fmt.Errorf("sqldb: ROUND expects 1 or 2 arguments")
			}
			if args[0].IsNull() {
				return Null(), nil
			}
			x, err := args[0].AsFloat()
			if err != nil {
				return Value{}, err
			}
			digits := int64(0)
			if len(args) == 2 {
				digits, err = args[1].AsInt()
				if err != nil {
					return Value{}, err
				}
			}
			scale := math.Pow(10, float64(digits))
			return Float(math.Round(x*scale) / scale), nil
		},
		"UPPER": func(args []Value) (Value, error) {
			if err := need(args, 1, "UPPER"); err != nil {
				return Value{}, err
			}
			if args[0].IsNull() {
				return Null(), nil
			}
			return String(strings.ToUpper(args[0].S)), nil
		},
		"LOWER": func(args []Value) (Value, error) {
			if err := need(args, 1, "LOWER"); err != nil {
				return Value{}, err
			}
			if args[0].IsNull() {
				return Null(), nil
			}
			return String(strings.ToLower(args[0].S)), nil
		},
		"LEN": func(args []Value) (Value, error) {
			if err := need(args, 1, "LEN"); err != nil {
				return Value{}, err
			}
			if args[0].IsNull() {
				return Null(), nil
			}
			return Int(int64(len(args[0].S))), nil
		},
		"COALESCE": func(args []Value) (Value, error) {
			for _, a := range args {
				if !a.IsNull() {
					return a, nil
				}
			}
			return Null(), nil
		},
		"ISNULL": func(args []Value) (Value, error) {
			if err := need(args, 2, "ISNULL"); err != nil {
				return Value{}, err
			}
			if args[0].IsNull() {
				return args[1], nil
			}
			return args[0], nil
		},
		"NULLIF": func(args []Value) (Value, error) {
			if err := need(args, 2, "NULLIF"); err != nil {
				return Value{}, err
			}
			if Equal(args[0], args[1]) {
				return Null(), nil
			}
			return args[0], nil
		},
	}
}

// aggState accumulates one aggregate over a group.
type aggState struct {
	call  *Call
	count int64
	sum   float64
	sumI  int64
	isInt bool
	min   Value
	max   Value
	any   bool
}

func newAggState(c *Call) *aggState { return &aggState{call: c, isInt: true} }

// add folds one row into the aggregate.
func (a *aggState) add(ev *env) error {
	name := strings.ToUpper(a.call.Name)
	if a.call.Star { // COUNT(*)
		a.count++
		return nil
	}
	if len(a.call.Args) != 1 {
		return fmt.Errorf("sqldb: %s expects one argument", name)
	}
	v, err := eval(a.call.Args[0], ev)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil // aggregates skip NULLs
	}
	a.count++
	switch name {
	case "COUNT":
	case "SUM", "AVG":
		f, err := v.AsFloat()
		if err != nil {
			return err
		}
		a.sum += f
		if v.T == TInt {
			a.sumI += v.I
		} else {
			a.isInt = false
		}
	case "MIN":
		if !a.any || CompareForSort(v, a.min) < 0 {
			a.min = v
		}
	case "MAX":
		if !a.any || CompareForSort(v, a.max) > 0 {
			a.max = v
		}
	}
	a.any = true
	return nil
}

// result returns the aggregate's final value.
func (a *aggState) result() Value {
	switch strings.ToUpper(a.call.Name) {
	case "COUNT":
		return Int(a.count)
	case "SUM":
		if a.count == 0 {
			return Null()
		}
		if a.isInt {
			return Int(a.sumI)
		}
		return Float(a.sum)
	case "AVG":
		if a.count == 0 {
			return Null()
		}
		return Float(a.sum / float64(a.count))
	case "MIN":
		if !a.any {
			return Null()
		}
		return a.min
	case "MAX":
		if !a.any {
			return Null()
		}
		return a.max
	}
	return Null()
}

package sqldb

import (
	"fmt"
	"strings"
)

// Logical planning: the first half of query compilation. buildLogical
// binds a parsed SelectStmt against the catalog — resolving tables, TVFs,
// aliases and output schemas, expanding stars, validating column
// references, classifying lateral TVF calls, and extracting clustered-key
// range bounds — without choosing any physical access path. The result is
// a small tree of logNodes plus the select-list metadata; physical.go
// lowers it to executable operators (and EXPLAIN prints those).
//
// Splitting binding from physical choice is what lets one logical shape
// carry several plans: a logScan lowers to a SeqScan, a RangeScan, or a
// ColumnarScan; a lateral logTVF join lowers to a per-row TVFApply or a
// batched ZoneSweepJoin. Rules live in physical.go (see lowerSource).

// logNode is one node of the bound FROM tree.
type logNode interface {
	schema() schema
}

// logValues is the FROM-less source: exactly one empty row.
type logValues struct{ sch schema }

func (n *logValues) schema() schema { return n.sch }

// logScan is a bound base-table reference with any extracted clustered-key
// bounds (inclusive; NULL = unbounded; optimisation only, the filter
// re-checks every predicate). The scan binds a TableView — one immutable
// version resolved through the query's snapshot — so lowering and
// execution read the same rows no matter what writers publish meanwhile.
type logScan struct {
	tv     TableView
	alias  string
	lo, hi Value
	// needed marks the table columns the statement references, when that
	// set could be computed (single-table statements); nil means all. A
	// ColumnarScan uses it to decode only the touched column arrays.
	needed []bool
	sch    schema
}

func (n *logScan) schema() schema { return n.sch }

// logTVF is a bound table-valued function call. lateral marks calls whose
// arguments reference columns of earlier FROM items: those evaluate once
// per outer row (or batch, when the TVF supports it) rather than once per
// statement.
type logTVF struct {
	tvf     *TVF
	name    string
	alias   string
	args    []Expr
	lateral bool
	sch     schema
}

func (n *logTVF) schema() schema { return n.sch }

// logJoin combines two sources. For a lateral right side, on is the
// residual predicate applied to each combined row (inner semantics).
type logJoin struct {
	left, right logNode
	kind        joinKind
	on          Expr
	sch         schema
}

func (n *logJoin) schema() schema { return n.sch }

// logicalPlan is the bound SELECT: the source tree plus the resolved
// select list and the aggregation classification execSelect needs.
type logicalPlan struct {
	stmt       *SelectStmt
	source     logNode
	items      []projItem
	sch        schema // source schema
	aggregated bool
}

// buildLogical binds stmt against snap's catalog. It performs every
// static check the executor used to do during iterator construction —
// unknown tables and TVFs, star expansion, unknown or ambiguous columns —
// so a plan that builds is safe to print or run.
func (db *DB) buildLogical(stmt *SelectStmt, params []Value, snap *Snapshot) (*logicalPlan, error) {
	src, err := db.buildLogicalSource(stmt, params, snap)
	if err != nil {
		return nil, err
	}
	sch := src.schema()
	items, err := expandItems(stmt.Items, sch)
	if err != nil {
		return nil, err
	}
	// Static validation: unknown or ambiguous column references fail even
	// when the input is empty.
	var toCheck []Expr
	for _, it := range items {
		toCheck = append(toCheck, it.expr)
	}
	toCheck = append(toCheck, stmt.Where, stmt.Having)
	toCheck = append(toCheck, stmt.GroupBy...)
	if err := validateColumns(sch, toCheck); err != nil {
		return nil, err
	}
	aggregated := len(stmt.GroupBy) > 0 || stmt.Having != nil
	for _, it := range items {
		if hasAggregate(it.expr) {
			aggregated = true
		}
	}
	for _, o := range stmt.OrderBy {
		if hasAggregate(o.Expr) {
			aggregated = true
		}
	}
	lp := &logicalPlan{stmt: stmt, source: src, items: items, sch: sch, aggregated: aggregated}
	if scan, ok := src.(*logScan); ok && len(stmt.From) == 1 {
		scan.needed = neededColumns(lp, scan)
	}
	return lp, nil
}

// buildLogicalSource binds the FROM clause into a left-deep join tree,
// mirroring the join order the executor has always used.
func (db *DB) buildLogicalSource(stmt *SelectStmt, params []Value, snap *Snapshot) (logNode, error) {
	if len(stmt.From) == 0 {
		return &logValues{}, nil
	}
	single := len(stmt.From) == 1
	var root logNode
	for i, item := range stmt.From {
		n, err := db.buildLogicalItem(item, stmt.Where, params, single, schemaOf(root), snap)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			// A first-item lateral TVF has no outer rows to bind to; its
			// column references already failed validation in
			// buildLogicalItem against the empty outer schema.
			root = n
			continue
		}
		combined := append(append(schema{}, root.schema()...), n.schema()...)
		if tvf, ok := n.(*logTVF); ok && tvf.lateral && item.Join == joinLeft {
			return nil, fmt.Errorf("sqldb: LEFT JOIN on a lateral call of %s is not supported", tvf.name)
		}
		root = &logJoin{left: root, right: n, kind: item.Join, on: item.On, sch: combined}
	}
	return root, nil
}

func schemaOf(n logNode) schema {
	if n == nil {
		return nil
	}
	return n.schema()
}

// buildLogicalItem binds one FROM entry. leftSch is the accumulated schema
// of the items before it, against which a lateral TVF's arguments resolve.
func (db *DB) buildLogicalItem(item FromItem, where Expr, params []Value, single bool, leftSch schema, snap *Snapshot) (logNode, error) {
	alias := strings.ToLower(item.Alias)
	if alias == "" {
		alias = strings.ToLower(item.Table)
	}
	if item.IsTVF {
		tvf, ok := snap.tvf(item.Table)
		if !ok {
			return nil, fmt.Errorf("sqldb: unknown table-valued function %s", item.Table)
		}
		sch := make(schema, len(tvf.Cols))
		for i, c := range tvf.Cols {
			sch[i] = colMeta{alias: alias, name: c.Name}
		}
		lateral := false
		for _, a := range item.Args {
			walkExpr(a, func(x Expr) {
				if _, ok := x.(*ColumnRef); ok {
					lateral = true
				}
			})
		}
		if lateral {
			// Lateral arguments must resolve against the outer schema; an
			// unresolved one is an error now, not at first evaluation.
			if err := validateColumns(leftSch, item.Args); err != nil {
				return nil, err
			}
		}
		return &logTVF{tvf: tvf, name: item.Table, alias: alias, args: item.Args, lateral: lateral, sch: sch}, nil
	}
	tv, ok := snap.View(item.Table)
	if !ok {
		return nil, fmt.Errorf("sqldb: unknown table %s", item.Table)
	}
	t := tv.Table()
	sch := make(schema, len(t.Cols))
	for i, c := range t.Cols {
		sch[i] = colMeta{alias: alias, name: c.Name}
	}
	lo, hi := rangeBounds(where, alias, tv, params, single)
	return &logScan{tv: tv, alias: alias, lo: lo, hi: hi, sch: sch}, nil
}

// neededColumns computes which columns of a single-table statement's scan
// are referenced anywhere — select list, WHERE, GROUP BY, HAVING, ORDER BY.
// Unreferenced columns need not be materialised by a columnar scan.
func neededColumns(lp *logicalPlan, scan *logScan) []bool {
	needed := make([]bool, len(scan.sch))
	mark := func(e Expr) {
		walkExpr(e, func(x Expr) {
			c, ok := x.(*ColumnRef)
			if !ok {
				return
			}
			if i, err := scan.sch.resolve(c.Table, c.Name); err == nil {
				needed[i] = true
			}
		})
	}
	for _, it := range lp.items {
		mark(it.expr)
	}
	mark(lp.stmt.Where)
	mark(lp.stmt.Having)
	for _, g := range lp.stmt.GroupBy {
		mark(g)
	}
	for _, o := range lp.stmt.OrderBy {
		mark(o.Expr)
	}
	return needed
}

// bindExpr resolves every column reference in e against sch once,
// rewriting ColumnRef nodes to boundCol slots so per-row evaluation is an
// index instead of a name lookup. Binding is lenient: a reference that
// does not resolve stays a ColumnRef and surfaces its error at evaluation,
// preserving the executor's historical behaviour for expressions (ORDER BY
// items, notably) that are not statically validated.
func bindExpr(e Expr, sch schema) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *ColumnRef:
		if i, err := sch.resolve(x.Table, x.Name); err == nil {
			return &boundCol{Idx: i, Table: x.Table, Name: x.Name}
		}
		return x
	case *Unary:
		return &Unary{Op: x.Op, X: bindExpr(x.X, sch)}
	case *Binary:
		return &Binary{Op: x.Op, L: bindExpr(x.L, sch), R: bindExpr(x.R, sch)}
	case *Between:
		return &Between{X: bindExpr(x.X, sch), Lo: bindExpr(x.Lo, sch), Hi: bindExpr(x.Hi, sch), Not: x.Not}
	case *InList:
		list := make([]Expr, len(x.List))
		for i, it := range x.List {
			list[i] = bindExpr(it, sch)
		}
		return &InList{X: bindExpr(x.X, sch), List: list, Not: x.Not}
	case *IsNull:
		return &IsNull{X: bindExpr(x.X, sch), Not: x.Not}
	case *Call:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = bindExpr(a, sch)
		}
		return &Call{Name: x.Name, Args: args, Star: x.Star}
	case *Case:
		whens := make([]When, len(x.Whens))
		for i, w := range x.Whens {
			whens[i] = When{Cond: bindExpr(w.Cond, sch), Result: bindExpr(w.Result, sch)}
		}
		return &Case{Whens: whens, Else: bindExpr(x.Else, sch)}
	case *Cast:
		return &Cast{X: bindExpr(x.X, sch), To: x.To}
	}
	return e
}

// bindExprs is bindExpr over a slice.
func bindExprs(es []Expr, sch schema) []Expr {
	out := make([]Expr, len(es))
	for i, e := range es {
		out[i] = bindExpr(e, sch)
	}
	return out
}

// ---------------------------------------------------------------------------
// Expression rendering for EXPLAIN

// exprString renders an expression back to SQL-ish text for plan display.
// Nested binary operands parenthesise, so the rendering is unambiguous
// without reproducing the full precedence table.
func exprString(e Expr) string {
	switch x := e.(type) {
	case nil:
		return ""
	case *Literal:
		if x.Val.T == TString {
			return "'" + strings.ReplaceAll(x.Val.S, "'", "''") + "'"
		}
		return x.Val.String()
	case *Param:
		return "?"
	case *ColumnRef:
		if x.Table != "" {
			return x.Table + "." + x.Name
		}
		return x.Name
	case *boundCol:
		if x.Table != "" {
			return x.Table + "." + x.Name
		}
		return x.Name
	case *Unary:
		if x.Op == "NOT" {
			return "NOT " + operandString(x.X)
		}
		return x.Op + operandString(x.X)
	case *Binary:
		return operandString(x.L) + " " + x.Op + " " + operandString(x.R)
	case *Between:
		not := ""
		if x.Not {
			not = "NOT "
		}
		return operandString(x.X) + " " + not + "BETWEEN " + operandString(x.Lo) + " AND " + operandString(x.Hi)
	case *InList:
		parts := make([]string, len(x.List))
		for i, it := range x.List {
			parts[i] = exprString(it)
		}
		not := ""
		if x.Not {
			not = "NOT "
		}
		return operandString(x.X) + " " + not + "IN (" + strings.Join(parts, ", ") + ")"
	case *IsNull:
		if x.Not {
			return operandString(x.X) + " IS NOT NULL"
		}
		return operandString(x.X) + " IS NULL"
	case *Call:
		if x.Star {
			return x.Name + "(*)"
		}
		parts := make([]string, len(x.Args))
		for i, a := range x.Args {
			parts[i] = exprString(a)
		}
		return x.Name + "(" + strings.Join(parts, ", ") + ")"
	case *Case:
		var sb strings.Builder
		sb.WriteString("CASE")
		for _, w := range x.Whens {
			sb.WriteString(" WHEN " + exprString(w.Cond) + " THEN " + exprString(w.Result))
		}
		if x.Else != nil {
			sb.WriteString(" ELSE " + exprString(x.Else))
		}
		sb.WriteString(" END")
		return sb.String()
	case *Cast:
		return "CAST(" + exprString(x.X) + " AS " + x.To.String() + ")"
	}
	return fmt.Sprintf("<%T>", e)
}

// operandString parenthesises compound operands inside larger expressions.
func operandString(e Expr) string {
	switch e.(type) {
	case *Binary, *Between, *InList, *IsNull:
		return "(" + exprString(e) + ")"
	}
	return exprString(e)
}

// exprList renders a comma-separated expression list.
func exprList(es []Expr) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = exprString(e)
	}
	return strings.Join(parts, ", ")
}

package sqldb

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a single SQL statement.
func Parse(src string) (Statement, error) {
	stmts, err := ParseScript(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("sqldb: expected one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseScript parses a semicolon-separated sequence of statements.
func ParseScript(src string) ([]Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, nparams: 0}
	var stmts []Statement
	for {
		for p.acceptSym(";") {
		}
		if p.peek().kind == tokEOF {
			break
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		if !p.acceptSym(";") && p.peek().kind != tokEOF {
			return nil, p.errf("expected ';' or end of input")
		}
	}
	return stmts, nil
}

type parser struct {
	toks    []token
	i       int
	nparams int
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) backup()     { p.i-- }
func (p *parser) errf(format string, args ...any) error {
	t := p.peek()
	where := t.text
	if t.kind == tokEOF {
		where = "end of input"
	}
	return fmt.Errorf("sqldb: parse error near %q (offset %d): %s", where, t.pos, fmt.Sprintf(format, args...))
}

func (p *parser) acceptKw(kw string) bool {
	if t := p.peek(); t.kind == tokKeyword && t.text == kw {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errf("expected %s", kw)
	}
	return nil
}

// acceptIdentKw consumes the next token when it is the given contextual
// keyword. Such words lex as plain identifiers (see the lexer's keyword
// note), so they stay usable as table and column names everywhere the
// grammar does not specifically expect them.
func (p *parser) acceptIdentKw(word string) bool {
	if t := p.peek(); t.kind == tokIdent && strings.EqualFold(t.text, word) {
		p.i++
		return true
	}
	return false
}

func (p *parser) acceptSym(s string) bool {
	if t := p.peek(); t.kind == tokSymbol && t.text == s {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectSym(s string) error {
	if !p.acceptSym(s) {
		return p.errf("expected %q", s)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind == tokIdent {
		p.i++
		return t.text, nil
	}
	// Allow non-reserved keywords used as identifiers (e.g. a column
	// named "key" or the COUNT pseudo-keyword as a function name).
	if t.kind == tokKeyword && (t.text == "KEY" || t.text == "COUNT" || t.text == "INDEX") {
		p.i++
		return t.text, nil
	}
	return "", p.errf("expected identifier")
}

func (p *parser) statement() (Statement, error) {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, "EXPLAIN") {
		return p.explainStmt()
	}
	if t.kind != tokKeyword {
		return nil, p.errf("expected a statement keyword")
	}
	switch t.text {
	case "SELECT":
		return p.selectStmt()
	case "CREATE":
		return p.createStmt()
	case "INSERT":
		return p.insertStmt()
	case "UPDATE":
		return p.updateStmt()
	case "DELETE":
		return p.deleteStmt()
	case "DROP":
		return p.dropStmt()
	case "TRUNCATE":
		return p.truncateStmt()
	}
	return nil, p.errf("unsupported statement %s", t.text)
}

func (p *parser) explainStmt() (Statement, error) {
	p.next() // EXPLAIN
	stmt := &ExplainStmt{}
	if p.acceptIdentKw("ANALYZE") {
		stmt.Analyze = true
	}
	q, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	stmt.Query = q
	return stmt, nil
}

func (p *parser) createStmt() (Statement, error) {
	p.next() // CREATE
	switch {
	case p.acceptKw("TABLE"):
		return p.createTable()
	case p.acceptKw("CLUSTERED"):
		if err := p.expectKw("INDEX"); err != nil {
			return nil, err
		}
		return p.createIndex(true)
	case p.acceptKw("INDEX"):
		return p.createIndex(false)
	case p.acceptIdentKw("COLUMNAR"):
		if !p.acceptIdentKw("PROJECTION") {
			return nil, p.errf("expected PROJECTION")
		}
		if err := p.expectKw("ON"); err != nil {
			return nil, err
		}
		name, err := p.qualifiedName()
		if err != nil {
			return nil, err
		}
		return &CreateProjectionStmt{Table: name}, nil
	}
	return nil, p.errf("expected TABLE, [CLUSTERED] INDEX or COLUMNAR PROJECTION after CREATE")
}

func (p *parser) createTable() (Statement, error) {
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	stmt := &CreateTableStmt{Name: name}
	for {
		col, err := p.columnDef()
		if err != nil {
			return nil, err
		}
		stmt.Cols = append(stmt.Cols, col)
		if p.acceptSym(",") {
			continue
		}
		break
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	return stmt, nil
}

func (p *parser) columnDef() (ColumnDef, error) {
	var col ColumnDef
	name, err := p.ident()
	if err != nil {
		return col, err
	}
	col.Name = name
	typ, err := p.typeName()
	if err != nil {
		return col, err
	}
	col.Type = typ
	for {
		switch {
		case p.acceptKw("PRIMARY"):
			if err := p.expectKw("KEY"); err != nil {
				return col, err
			}
			col.PK = true
		case p.acceptKw("IDENTITY"):
			col.Identity = true
			if p.acceptSym("(") { // IDENTITY(1,1)
				for !p.acceptSym(")") {
					if p.peek().kind == tokEOF {
						return col, p.errf("unterminated IDENTITY clause")
					}
					p.next()
				}
			}
		case p.acceptKw("NOT"):
			if err := p.expectKw("NULL"); err != nil {
				return col, err
			}
			// NOT NULL accepted and ignored (no null-constraint
			// enforcement beyond PKs).
		case p.acceptKw("NULL"):
		default:
			return col, nil
		}
	}
}

func (p *parser) typeName() (Type, error) {
	name, err := p.ident()
	if err != nil {
		return TNull, err
	}
	switch strings.ToUpper(name) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT", "TINYINT":
		return TInt, nil
	case "REAL", "FLOAT", "DOUBLE":
		return TFloat, nil
	case "TEXT", "VARCHAR", "CHAR", "NVARCHAR":
		if p.acceptSym("(") { // VARCHAR(n)
			if p.peek().kind != tokNumber {
				return TNull, p.errf("expected length in type")
			}
			p.next()
			if err := p.expectSym(")"); err != nil {
				return TNull, err
			}
		}
		return TString, nil
	case "BIT", "BOOL", "BOOLEAN":
		return TBool, nil
	}
	return TNull, p.errf("unknown type %q", name)
}

func (p *parser) createIndex(clustered bool) (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("ON"); err != nil {
		return nil, err
	}
	table, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	stmt := &CreateIndexStmt{Name: name, Table: table, Clustered: clustered}
	for {
		c, err := p.ident()
		if err != nil {
			return nil, err
		}
		// Optional ASC/DESC (DESC unsupported in index keys).
		p.acceptKw("ASC")
		stmt.Cols = append(stmt.Cols, c)
		if p.acceptSym(",") {
			continue
		}
		break
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	return stmt, nil
}

func (p *parser) dropStmt() (Statement, error) {
	p.next() // DROP
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	stmt := &DropTableStmt{}
	if p.acceptKw("IF") {
		if err := p.expectKw("EXISTS"); err != nil {
			return nil, err
		}
		stmt.IfExists = true
	}
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	stmt.Name = name
	return stmt, nil
}

func (p *parser) truncateStmt() (Statement, error) {
	p.next() // TRUNCATE
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	return &TruncateStmt{Table: name}, nil
}

func (p *parser) insertStmt() (Statement, error) {
	p.next() // INSERT
	p.acceptKw("INTO")
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: name}
	if p.acceptSym("(") {
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			stmt.Cols = append(stmt.Cols, c)
			if p.acceptSym(",") {
				continue
			}
			break
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
	}
	if p.acceptKw("VALUES") {
		for {
			if err := p.expectSym("("); err != nil {
				return nil, err
			}
			var row []Expr
			for {
				e, err := p.expression()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if p.acceptSym(",") {
					continue
				}
				break
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			stmt.Rows = append(stmt.Rows, row)
			if p.acceptSym(",") {
				continue
			}
			break
		}
		return stmt, nil
	}
	if p.peek().kind == tokKeyword && p.peek().text == "SELECT" {
		q, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		stmt.Query = q
		return stmt, nil
	}
	return nil, p.errf("expected VALUES or SELECT in INSERT")
}

func (p *parser) updateStmt() (Statement, error) {
	p.next() // UPDATE
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	stmt := &UpdateStmt{Table: name}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym("="); err != nil {
			return nil, err
		}
		val, err := p.expression()
		if err != nil {
			return nil, err
		}
		stmt.Sets = append(stmt.Sets, SetClause{Col: col, Val: val})
		if p.acceptSym(",") {
			continue
		}
		break
	}
	if p.acceptKw("WHERE") {
		w, err := p.expression()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	return stmt, nil
}

func (p *parser) deleteStmt() (Statement, error) {
	p.next() // DELETE
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	stmt := &DeleteStmt{Table: name}
	if p.acceptKw("WHERE") {
		w, err := p.expression()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	return stmt, nil
}

func (p *parser) selectStmt() (*SelectStmt, error) {
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	if p.acceptKw("DISTINCT") {
		stmt.Distinct = true
	}
	if p.acceptKw("TOP") {
		if p.peek().kind != tokNumber {
			return nil, p.errf("expected number after TOP")
		}
		n, err := strconv.ParseInt(p.next().text, 10, 64)
		if err != nil {
			return nil, p.errf("bad TOP count: %v", err)
		}
		stmt.Limit = n
	}
	// Select list.
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if p.acceptSym(",") {
			continue
		}
		break
	}
	if p.acceptKw("FROM") {
		for first := true; ; first = false {
			item, err := p.fromItem(first)
			if err != nil {
				return nil, err
			}
			stmt.From = append(stmt.From, item)
			// Another join?
			t := p.peek()
			if t.kind == tokKeyword && (t.text == "JOIN" || t.text == "INNER" ||
				t.text == "CROSS" || t.text == "LEFT") {
				continue
			}
			if p.acceptSym(",") { // comma join = cross join
				it, err := p.fromTableRef()
				if err != nil {
					return nil, err
				}
				it.Join = joinCross
				stmt.From = append(stmt.From, it)
				// loop: further joins may follow
				p.backupJoinCheck(stmt)
				continue
			}
			break
		}
	}
	if p.acceptKw("WHERE") {
		w, err := p.expression()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if p.acceptSym(",") {
				continue
			}
			break
		}
	}
	if p.acceptKw("HAVING") {
		h, err := p.expression()
		if err != nil {
			return nil, err
		}
		stmt.Having = h
	}
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKw("DESC") {
				item.Desc = true
			} else {
				p.acceptKw("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if p.acceptSym(",") {
				continue
			}
			break
		}
	}
	if p.acceptKw("LIMIT") {
		if p.peek().kind != tokNumber {
			return nil, p.errf("expected number after LIMIT")
		}
		n, err := strconv.ParseInt(p.next().text, 10, 64)
		if err != nil {
			return nil, p.errf("bad LIMIT count: %v", err)
		}
		stmt.Limit = n
	}
	return stmt, nil
}

// backupJoinCheck is a no-op retained for clarity of the comma-join loop.
func (p *parser) backupJoinCheck(*SelectStmt) {}

func (p *parser) selectItem() (SelectItem, error) {
	if p.acceptSym("*") {
		return SelectItem{Star: true}, nil
	}
	// t.* form
	if t := p.peek(); t.kind == tokIdent {
		save := p.i
		name := p.next().text
		if p.acceptSym(".") && p.acceptSym("*") {
			return SelectItem{Star: true, StarTable: name}, nil
		}
		p.i = save
	}
	e, err := p.expression()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKw("AS") {
		a, err := p.ident()
		if err != nil {
			return item, err
		}
		item.Alias = a
	} else if t := p.peek(); t.kind == tokIdent {
		item.Alias = p.next().text
	}
	return item, nil
}

func (p *parser) fromItem(first bool) (FromItem, error) {
	join := joinNone
	var onRequired bool
	if !first {
		switch {
		case p.acceptKw("CROSS"):
			if err := p.expectKw("JOIN"); err != nil {
				return FromItem{}, err
			}
			join = joinCross
		case p.acceptKw("INNER"):
			if err := p.expectKw("JOIN"); err != nil {
				return FromItem{}, err
			}
			join, onRequired = joinInner, true
		case p.acceptKw("LEFT"):
			p.acceptKw("OUTER")
			if err := p.expectKw("JOIN"); err != nil {
				return FromItem{}, err
			}
			join, onRequired = joinLeft, true
		case p.acceptKw("JOIN"):
			join, onRequired = joinInner, true
		default:
			return FromItem{}, p.errf("expected JOIN")
		}
	}
	item, err := p.fromTableRef()
	if err != nil {
		return FromItem{}, err
	}
	item.Join = join
	if onRequired {
		if err := p.expectKw("ON"); err != nil {
			return FromItem{}, err
		}
		on, err := p.expression()
		if err != nil {
			return FromItem{}, err
		}
		item.On = on
	}
	return item, nil
}

// fromTableRef parses table [alias] or tvf(args) [alias].
func (p *parser) fromTableRef() (FromItem, error) {
	name, err := p.qualifiedName()
	if err != nil {
		return FromItem{}, err
	}
	item := FromItem{Table: name}
	if p.acceptSym("(") {
		item.IsTVF = true
		if !p.acceptSym(")") {
			for {
				e, err := p.expression()
				if err != nil {
					return item, err
				}
				item.Args = append(item.Args, e)
				if p.acceptSym(",") {
					continue
				}
				break
			}
			if err := p.expectSym(")"); err != nil {
				return item, err
			}
		}
	}
	if p.acceptKw("AS") {
		a, err := p.ident()
		if err != nil {
			return item, err
		}
		item.Alias = a
	} else if t := p.peek(); t.kind == tokIdent {
		item.Alias = p.next().text
	}
	return item, nil
}

// qualifiedName parses name or schema.name or db.schema.name and returns
// the final component (the engine has a single flat namespace, like MyDB).
func (p *parser) qualifiedName() (string, error) {
	name, err := p.ident()
	if err != nil {
		return "", err
	}
	for p.acceptSym(".") {
		name, err = p.ident()
		if err != nil {
			return "", err
		}
	}
	return name, nil
}

// Expression grammar, loosest to tightest:
//
//	expression  := orExpr
//	orExpr      := andExpr (OR andExpr)*
//	andExpr     := notExpr (AND notExpr)*
//	notExpr     := NOT notExpr | predicate
//	predicate   := addExpr (cmp addExpr | BETWEEN .. AND .. | IN (..) | IS [NOT] NULL | LIKE ..)?
//	addExpr     := mulExpr (("+"|"-"|"||") mulExpr)*
//	mulExpr     := unary (("*"|"/"|"%") unary)*
//	unary       := ("-"|"+") unary | primary
//	primary     := literal | param | call | CASE | CAST | columnRef | "(" expression ")"
func (p *parser) expression() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.acceptKw("NOT") {
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return p.predicate()
}

func (p *parser) predicate() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	// Comparison operators.
	if t := p.peek(); t.kind == tokSymbol {
		switch t.text {
		case "=", "<>", "!=", "<", "<=", ">", ">=":
			p.next()
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			op := t.text
			if op == "!=" {
				op = "<>"
			}
			return &Binary{Op: op, L: l, R: r}, nil
		}
	}
	not := false
	if t := p.peek(); t.kind == tokKeyword && t.text == "NOT" {
		// lookahead for NOT BETWEEN / NOT IN / NOT LIKE
		save := p.i
		p.next()
		if tt := p.peek(); tt.kind == tokKeyword && (tt.text == "BETWEEN" || tt.text == "IN" || tt.text == "LIKE") {
			not = true
		} else {
			p.i = save
			return l, nil
		}
	}
	switch {
	case p.acceptKw("BETWEEN"):
		lo, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("AND"); err != nil {
			return nil, err
		}
		hi, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &Between{X: l, Lo: lo, Hi: hi, Not: not}, nil
	case p.acceptKw("IN"):
		if err := p.expectSym("("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if p.acceptSym(",") {
				continue
			}
			break
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return &InList{X: l, List: list, Not: not}, nil
	case p.acceptKw("LIKE"):
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		e := Expr(&Binary{Op: "LIKE", L: l, R: r})
		if not {
			e = &Unary{Op: "NOT", X: e}
		}
		return e, nil
	case p.acceptKw("IS"):
		isNot := p.acceptKw("NOT")
		if err := p.expectKw("NULL"); err != nil {
			return nil, err
		}
		return &IsNull{X: l, Not: isNot}, nil
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "+" || t.text == "-" || t.text == "||") {
			p.next()
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "*" || t.text == "/" || t.text == "%") {
			p.next()
			r, err := p.unary()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) unary() (Expr, error) {
	t := p.peek()
	if t.kind == tokSymbol && (t.text == "-" || t.text == "+") {
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		if t.text == "+" {
			return x, nil
		}
		return &Unary{Op: "-", X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number: %v", err)
			}
			return &Literal{Val: Float(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			f, ferr := strconv.ParseFloat(t.text, 64)
			if ferr != nil {
				return nil, p.errf("bad number: %v", err)
			}
			return &Literal{Val: Float(f)}, nil
		}
		return &Literal{Val: Int(n)}, nil
	case tokString:
		p.next()
		return &Literal{Val: String(t.text)}, nil
	case tokParam:
		p.next()
		e := &Param{Index: p.nparams}
		p.nparams++
		return e, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.next()
			return &Literal{Val: Null()}, nil
		case "TRUE":
			p.next()
			return &Literal{Val: Bool(true)}, nil
		case "FALSE":
			p.next()
			return &Literal{Val: Bool(false)}, nil
		case "CASE":
			return p.caseExpr()
		case "CAST":
			return p.castExpr()
		case "COUNT":
			p.next()
			return p.callArgs("COUNT")
		}
		return nil, p.errf("unexpected keyword %s in expression", t.text)
	case tokIdent:
		p.next()
		// Function call?
		if p.peek().kind == tokSymbol && p.peek().text == "(" {
			return p.callArgs(t.text)
		}
		// Qualified column: a.b (and db.schema.col collapses to the
		// last two parts).
		if p.acceptSym(".") {
			parts := []string{t.text}
			for {
				id, err := p.ident()
				if err != nil {
					return nil, err
				}
				parts = append(parts, id)
				if !p.acceptSym(".") {
					break
				}
			}
			// Qualified function call, e.g. dbo.fBCGr200(...).
			if p.peek().kind == tokSymbol && p.peek().text == "(" {
				return p.callArgs(parts[len(parts)-1])
			}
			return &ColumnRef{Table: parts[len(parts)-2], Name: parts[len(parts)-1]}, nil
		}
		return &ColumnRef{Name: t.text}, nil
	case tokSymbol:
		if t.text == "(" {
			p.next()
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected token in expression")
}

func (p *parser) callArgs(name string) (Expr, error) {
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	call := &Call{Name: strings.ToUpper(name)}
	if p.acceptSym("*") {
		call.Star = true
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return call, nil
	}
	p.acceptKw("DISTINCT") // COUNT(DISTINCT x) treated as COUNT(x)
	if !p.acceptSym(")") {
		for {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, e)
			if p.acceptSym(",") {
				continue
			}
			break
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
	}
	return call, nil
}

func (p *parser) caseExpr() (Expr, error) {
	p.next() // CASE
	c := &Case{}
	for p.acceptKw("WHEN") {
		cond, err := p.expression()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("THEN"); err != nil {
			return nil, err
		}
		res, err := p.expression()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, When{Cond: cond, Result: res})
	}
	if len(c.Whens) == 0 {
		return nil, p.errf("CASE requires at least one WHEN")
	}
	if p.acceptKw("ELSE") {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKw("END"); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *parser) castExpr() (Expr, error) {
	p.next() // CAST
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	x, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("AS"); err != nil {
		return nil, err
	}
	typ, err := p.typeName()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	return &Cast{X: x, To: typ}, nil
}

package casjobs

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/sqldb"
	"repro/internal/storage"
)

// transientErr is a retryable failure for the retry tests.
type transientErr struct{}

func (transientErr) Error() string   { return "casjobs_test: transient flake" }
func (transientErr) Transient() bool { return true }

// newRobustServer builds a server with one user whose MyDB holds a small
// "one" table (1 row) and a "big" table (2048 rows) for checkpointed scans.
func newRobustServer(t *testing.T, cfg Config) (*Server, *sqldb.DB) {
	t.Helper()
	srv := NewServerConfig(nil, cfg)
	t.Cleanup(srv.Close)
	if err := srv.CreateUser("ana"); err != nil {
		t.Fatal(err)
	}
	mydb, err := srv.MyDB("ana")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mydb.Exec("CREATE TABLE one (x bigint PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	if _, err := mydb.Exec("INSERT INTO one VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	if _, err := mydb.Exec("CREATE TABLE big (id bigint PRIMARY KEY, x real)"); err != nil {
		t.Fatal(err)
	}
	rows := make([][]sqldb.Value, 2048)
	for i := range rows {
		rows[i] = []sqldb.Value{sqldb.Int(int64(i)), sqldb.Float(float64(i % 31))}
	}
	tab, _ := mydb.Table("big")
	if err := tab.BulkInsert(rows); err != nil {
		t.Fatal(err)
	}
	return srv, mydb
}

// TestCancelWhileQueued pins the satellite fix: cancelling a queued job
// frees its admission slot immediately and Wait returns promptly.
func TestCancelWhileQueued(t *testing.T) {
	srv, mydb := newRobustServer(t, Config{QuickWorkers: 1, LongWorkers: 1, MaxQueue: 1})
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	mydb.RegisterScalar("block", func(args []sqldb.Value) (sqldb.Value, error) {
		started <- struct{}{}
		<-release
		return args[0], nil
	})

	// Occupy the single long worker.
	blocker, err := srv.Submit("ana", "MYDB", "SELECT block(x) FROM one", "", false)
	if err != nil {
		t.Fatal(err)
	}
	<-started

	// Fill the queue's single slot, then prove the bound holds.
	queued, err := srv.Submit("ana", "MYDB", "SELECT x FROM one", "", false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit("ana", "MYDB", "SELECT x FROM one", "", false); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-admission error = %v, want ErrQueueFull", err)
	}

	// Cancel the queued job: slot frees now, Wait returns now.
	if err := srv.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	waitc := make(chan JobStatus, 1)
	go func() {
		st, _ := srv.Wait(queued.ID)
		waitc <- st
	}()
	select {
	case st := <-waitc:
		if st != StatusCancelled {
			t.Fatalf("cancelled queued job status = %s", st)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Wait on a cancel-while-queued job did not return promptly")
	}
	if q, l := srv.QueueDepth(); q != 0 || l != 0 {
		t.Fatalf("queue depth after cancel = (%d, %d), want empty", q, l)
	}
	if _, err := srv.Submit("ana", "MYDB", "SELECT x FROM one", "", false); err != nil {
		t.Fatalf("slot not released after cancel: %v", err)
	}

	close(release)
	if st, _ := srv.Wait(blocker.ID); st != StatusFinished {
		t.Fatalf("blocker job = %s (%s)", st, blocker.Err())
	}
}

// TestCancelWhileRunning pins preemptive cancellation: a running query is
// interrupted at the next row-batch checkpoint and the job lands in
// StatusCancelled.
func TestCancelWhileRunning(t *testing.T) {
	srv, mydb := newRobustServer(t, Config{QuickWorkers: 1, LongWorkers: 1})
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	mydb.RegisterScalar("gate", func(args []sqldb.Value) (sqldb.Value, error) {
		once.Do(func() {
			close(started)
			<-release
		})
		return args[0], nil
	})

	job, err := srv.Submit("ana", "MYDB", "SELECT COUNT(*) FROM big WHERE gate(x) >= 0", "", false)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if job.Status() != StatusRunning {
		t.Fatalf("job status = %s, want running", job.Status())
	}
	if err := srv.Cancel(job.ID); err != nil {
		t.Fatal(err)
	}
	close(release)
	st, err := srv.Wait(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st != StatusCancelled {
		t.Fatalf("cancelled running job = %s (%s)", st, job.Err())
	}
	if !strings.Contains(job.Err(), "cancelled") {
		t.Fatalf("job error = %q", job.Err())
	}
}

// TestJobTimeout pins the per-queue execution deadline: a query slower
// than LongTimeout fails with a timeout error instead of running forever.
func TestJobTimeout(t *testing.T) {
	srv, mydb := newRobustServer(t, Config{QuickWorkers: 1, LongWorkers: 1, LongTimeout: 30 * time.Millisecond})
	mydb.RegisterScalar("slow", func(args []sqldb.Value) (sqldb.Value, error) {
		time.Sleep(200 * time.Microsecond)
		return args[0], nil
	})
	job, err := srv.Submit("ana", "MYDB", "SELECT COUNT(*) FROM big WHERE slow(x) >= 0", "", false)
	if err != nil {
		t.Fatal(err)
	}
	st, err := srv.Wait(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st != StatusFailed {
		t.Fatalf("timed-out job = %s", st)
	}
	if !strings.Contains(job.Err(), "timeout") {
		t.Fatalf("job error = %q, want timeout", job.Err())
	}
}

// TestPanicRecovery pins panic isolation: a panicking job is marked failed
// with the captured stack and the worker keeps serving.
func TestPanicRecovery(t *testing.T) {
	srv, mydb := newRobustServer(t, Config{QuickWorkers: 1, LongWorkers: 1})
	mydb.RegisterScalar("boom", func([]sqldb.Value) (sqldb.Value, error) {
		panic("kaboom")
	})
	job, err := srv.Submit("ana", "MYDB", "SELECT boom(x) FROM one", "", false)
	if err != nil {
		t.Fatal(err)
	}
	st, err := srv.Wait(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st != StatusFailed {
		t.Fatalf("panicking job = %s", st)
	}
	if !strings.Contains(job.Err(), "panicked") || !strings.Contains(job.Err(), "kaboom") {
		t.Fatalf("job error = %q, want panic + stack", job.Err())
	}
	// The worker that recovered must still run jobs.
	next, err := srv.Submit("ana", "MYDB", "SELECT x FROM one", "", false)
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := srv.Wait(next.ID); st != StatusFinished {
		t.Fatalf("job after panic = %s (%s)", st, next.Err())
	}
}

// TestRetryTransient pins bounded retry: transient failures are retried
// with backoff until an attempt succeeds; hard failures are not retried.
func TestRetryTransient(t *testing.T) {
	srv, mydb := newRobustServer(t, Config{QuickWorkers: 1, LongWorkers: 1, MaxRetries: 2, RetryBase: time.Millisecond})
	var calls atomic.Int32
	mydb.RegisterScalar("flaky", func(args []sqldb.Value) (sqldb.Value, error) {
		if calls.Add(1) <= 2 {
			return sqldb.Value{}, transientErr{}
		}
		return args[0], nil
	})
	job, err := srv.Submit("ana", "MYDB", "SELECT flaky(x) FROM one", "", false)
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := srv.Wait(job.ID); st != StatusFinished {
		t.Fatalf("flaky job = %s (%s)", st, job.Err())
	}
	if got := job.Attempts(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}

	// A hard (non-transient) failure must not burn retries.
	mydb.RegisterScalar("hard", func([]sqldb.Value) (sqldb.Value, error) {
		return sqldb.Value{}, errors.New("casjobs_test: permanent")
	})
	job2, err := srv.Submit("ana", "MYDB", "SELECT hard(x) FROM one", "", false)
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := srv.Wait(job2.ID); st != StatusFailed {
		t.Fatalf("hard job = %s", st)
	}
	if got := job2.Attempts(); got != 1 {
		t.Fatalf("hard-failure attempts = %d, want 1", got)
	}
}

// TestRateLimit pins the per-user token bucket: burst admits, the next
// submission is rejected with ErrRateLimited, and tokens refill with time.
func TestRateLimit(t *testing.T) {
	srv, _ := newRobustServer(t, Config{QuickWorkers: 1, LongWorkers: 1, UserQPS: 1, UserBurst: 1})
	clock := time.Now()
	srv.mu.Lock()
	srv.now = func() time.Time { return clock }
	// Reset the user's bucket under the fake clock.
	u := srv.users["ana"]
	u.tokens, u.lastRefill = 1, clock
	srv.mu.Unlock()

	j, err := srv.Submit("ana", "MYDB", "SELECT x FROM one", "", false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit("ana", "MYDB", "SELECT x FROM one", "", false); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("second submit error = %v, want ErrRateLimited", err)
	}
	clock = clock.Add(2 * time.Second) // refill at 1 QPS
	if _, err := srv.Submit("ana", "MYDB", "SELECT x FROM one", "", false); err != nil {
		t.Fatalf("submit after refill: %v", err)
	}
	_, _ = srv.Wait(j.ID)
}

// TestShutdownDrain pins graceful drain: admission stops immediately, and
// when the drain deadline expires the still-running job is force-cancelled
// instead of holding Shutdown hostage.
func TestShutdownDrain(t *testing.T) {
	srv, mydb := newRobustServer(t, Config{QuickWorkers: 1, LongWorkers: 1})
	mydb.RegisterScalar("crawl", func(args []sqldb.Value) (sqldb.Value, error) {
		time.Sleep(time.Millisecond)
		return args[0], nil
	})
	job, err := srv.Submit("ana", "MYDB", "SELECT COUNT(*) FROM big WHERE crawl(x) >= 0", "", false)
	if err != nil {
		t.Fatal(err)
	}
	for job.Status() != StatusRunning {
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	drained := make(chan error, 1)
	go func() { drained <- srv.Shutdown(ctx) }()

	// While draining, admission is closed.
	for !srv.Draining() {
		time.Sleep(time.Millisecond)
	}
	if _, err := srv.Submit("ana", "MYDB", "SELECT x FROM one", "", false); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining error = %v, want ErrDraining", err)
	}

	err = <-drained
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced drain error = %v, want DeadlineExceeded", err)
	}
	if st := job.Status(); st != StatusCancelled {
		t.Fatalf("in-flight job after forced drain = %s (%s)", st, job.Err())
	}
}

// TestShutdownClean pins the clean path: with nothing running, Shutdown
// returns nil and further submissions fail with ErrDraining.
func TestShutdownClean(t *testing.T) {
	srv, _ := newRobustServer(t, Config{QuickWorkers: 1, LongWorkers: 1})
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("clean shutdown error = %v", err)
	}
	if _, err := srv.Submit("ana", "MYDB", "SELECT x FROM one", "", false); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after shutdown error = %v, want ErrDraining", err)
	}
}

// TestMaterializeAtomicUnderFault pins the satellite: a fault-injected
// OutputTable job fails without touching the previous contents of the
// target table, and leaves no staging debris behind.
func TestMaterializeAtomicUnderFault(t *testing.T) {
	defer faultinject.Reset()
	srv, mydb := newRobustServer(t, Config{QuickWorkers: 1, LongWorkers: 1, MaxRetries: 1, RetryBase: time.Millisecond})

	// Seed the target through a healthy materialisation first.
	seed, err := srv.Submit("ana", "MYDB", "SELECT id, x FROM big WHERE id < 10", "dest", false)
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := srv.Wait(seed.ID); st != StatusFinished {
		t.Fatalf("seed job = %s (%s)", st, seed.Err())
	}
	countDest := func() int64 {
		rows, err := mydb.Query("SELECT COUNT(*) FROM dest")
		if err != nil {
			t.Fatalf("dest unreadable: %v", err)
		}
		rows.Next()
		return rows.Row()[0].I
	}
	if got := countDest(); got != 10 {
		t.Fatalf("seeded dest rows = %d", got)
	}

	// Arm a storage fault on the MyDB pool: every page allocation fails,
	// so the staged bulk load cannot complete.
	faultinject.Enable("casjobs/mydb-alloc", faultinject.Failpoint{Prob: 1})
	mydb.Pool().SetFaultHooks(&storage.FaultHooks{Alloc: faultinject.Hook("casjobs/mydb-alloc")})
	defer mydb.Pool().SetFaultHooks(nil)

	job, err := srv.Submit("ana", "MYDB", "SELECT id, x FROM big WHERE id >= 100", "dest", false)
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := srv.Wait(job.ID); st != StatusFailed {
		t.Fatalf("faulted job = %s", st)
	}
	if !strings.Contains(job.Err(), "injected fault") {
		t.Fatalf("faulted job error = %q", job.Err())
	}
	// The injected fault is transient, so the bounded retry ran it twice.
	if got := job.Attempts(); got != 2 {
		t.Fatalf("faulted job attempts = %d, want 2", got)
	}

	// Atomicity: the target still holds the pre-fault rows and no staging
	// table survived.
	mydb.Pool().SetFaultHooks(nil)
	if got := countDest(); got != 10 {
		t.Fatalf("dest rows after faulted job = %d, want untouched 10", got)
	}
	for _, name := range mydb.TableNames() {
		if strings.Contains(name, "__casjobs_stage") {
			t.Fatalf("staging table %q left behind", name)
		}
	}

	// With the fault disarmed the same job succeeds and replaces dest.
	faultinject.Disable("casjobs/mydb-alloc")
	redo, err := srv.Submit("ana", "MYDB", "SELECT id, x FROM big WHERE id >= 100", "dest", false)
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := srv.Wait(redo.ID); st != StatusFinished {
		t.Fatalf("redo job = %s (%s)", st, redo.Err())
	}
	if got := countDest(); got != 2048-100 {
		t.Fatalf("dest rows after redo = %d, want %d", got, 2048-100)
	}
}

// TestQuickSubmitIsSynchronous pins the historical quick-queue contract:
// Submit with quick=true returns only after the job is terminal.
func TestQuickSubmitIsSynchronous(t *testing.T) {
	srv, _ := newRobustServer(t, Config{QuickWorkers: 2, LongWorkers: 1})
	job, err := srv.Submit("ana", "MYDB", "SELECT COUNT(*) FROM big", "", true)
	if err != nil {
		t.Fatal(err)
	}
	if st := job.Status(); st != StatusFinished {
		t.Fatalf("quick job returned non-terminal status %s", st)
	}
	if job.RowCount() != 1 {
		t.Fatalf("quick job rows = %d", job.RowCount())
	}
	_ = fmt.Sprintf("%v", job.Elapsed())
}

// TestMaterializeConcurrentReaders extends the atomicity pin to readers
// racing the swap: while materialisations repeatedly replace dest (and
// one faulted attempt fails mid-load), concurrent COUNT/SUM queries over
// dest only ever observe a fully published result set — never a torn
// state, a half-loaded staging table, or a vanished table.
func TestMaterializeConcurrentReaders(t *testing.T) {
	defer faultinject.Reset()
	srv, mydb := newRobustServer(t, Config{QuickWorkers: 1, LongWorkers: 1, MaxRetries: 0})

	queries := []string{
		"SELECT id, x FROM big WHERE id < 10",
		"SELECT id, x FROM big WHERE id >= 100",
	}
	type state struct{ count, sum int64 }
	legal := make(map[state]bool)
	for _, q := range queries {
		rows, err := mydb.Query(strings.Replace(q, "id, x", "COUNT(*), SUM(id)", 1))
		if err != nil {
			t.Fatal(err)
		}
		rows.Next()
		legal[state{rows.Row()[0].I, rows.Row()[1].I}] = true
	}

	// Seed dest so readers always have a table to observe.
	seed, err := srv.Submit("ana", "MYDB", queries[0], "dest", false)
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := srv.Wait(seed.ID); st != StatusFinished {
		t.Fatalf("seed job = %s (%s)", st, seed.Err())
	}

	var stop atomic.Bool
	var torn atomic.Pointer[string]
	report := func(msg string) { torn.CompareAndSwap(nil, &msg) }
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				rows, err := mydb.Query("SELECT COUNT(*), SUM(id) FROM dest")
				if err != nil {
					report(fmt.Sprintf("reader error: %v", err))
					return
				}
				rows.Next()
				st := state{rows.Row()[0].I, rows.Row()[1].I}
				if !legal[st] {
					report(fmt.Sprintf("torn read: count=%d sum=%d", st.count, st.sum))
					return
				}
			}
		}()
	}

	for i := 1; i <= 12; i++ {
		fault := i == 6
		if fault {
			faultinject.Enable("casjobs/mydb-alloc2", faultinject.Failpoint{Prob: 1})
			mydb.Pool().SetFaultHooks(&storage.FaultHooks{Alloc: faultinject.Hook("casjobs/mydb-alloc2")})
		}
		job, err := srv.Submit("ana", "MYDB", queries[i%2], "dest", false)
		if err != nil {
			t.Fatal(err)
		}
		st, _ := srv.Wait(job.ID)
		if fault {
			mydb.Pool().SetFaultHooks(nil)
			faultinject.Disable("casjobs/mydb-alloc2")
			if st != StatusFailed {
				t.Fatalf("faulted job %d = %s", i, st)
			}
		} else if st != StatusFinished {
			t.Fatalf("job %d = %s (%s)", i, st, job.Err())
		}
	}
	stop.Store(true)
	wg.Wait()
	if msg := torn.Load(); msg != nil {
		t.Fatal(*msg)
	}
	for _, name := range mydb.TableNames() {
		if strings.Contains(name, "__casjobs_stage") {
			t.Fatalf("staging table %q left behind", name)
		}
	}
}

package casjobs

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// scrape fetches /metrics through the public handler.
func scrape(t *testing.T, s *Server) string {
	t.Helper()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("GET /metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestMetricsScrapeAfterJobs is the end-to-end observability check: after
// real jobs run through the service, one /metrics scrape shows the queue
// families, the per-user counters, the shared context's pool and
// reclaimer families, and the job duration histograms — all live.
func TestMetricsScrapeAfterJobs(t *testing.T) {
	s := newTestServer(t)
	reg := telemetry.NewRegistry()
	s.EnableMetrics(reg)
	dr1, _ := s.contexts["DR1"]
	dr1.EnableMetrics(reg, "dr1")

	if _, err := s.Submit("maria", "DR1", "SELECT COUNT(*) FROM galaxy", "", true); err != nil {
		t.Fatal(err)
	}
	job, err := s.Submit("maria", "DR1", "SELECT objid, i FROM galaxy WHERE i < 17", "bright", false)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := s.Wait(job.ID); err != nil || st != StatusFinished {
		t.Fatalf("long job: status %v err %v (%s)", st, err, job.Err())
	}
	if _, err := s.Submit("maria", "DR1", "DROP TABLE galaxy", "", true); err != nil {
		t.Fatal(err) // admission succeeds; the job fails (read-only context)
	}

	out := scrape(t, s)
	for _, want := range []string{
		`casjobs_jobs_submitted_total{queue="quick"} 2`,
		`casjobs_jobs_submitted_total{queue="long"} 1`,
		`casjobs_jobs_completed_total{queue="quick",status="finished"} 1`,
		`casjobs_jobs_completed_total{queue="quick",status="failed"} 1`,
		`casjobs_jobs_completed_total{queue="long",status="finished"} 1`,
		`casjobs_user_jobs_total{user="maria"} 3`,
		`casjobs_jobs_rejected_total{reason="rate_limit"} 0`,
		`casjobs_queue_depth{queue="quick"} 0`,
		`casjobs_jobs_running 0`,
		`casjobs_users 2`,
		`casjobs_draining 0`,
		`casjobs_exec_seconds_count{queue="quick"} 2`,
		`casjobs_queue_wait_seconds_count{queue="long"} 1`,
		`pool_logical_reads_total{pool="dr1"}`,
		`pool_frames{pool="dr1"}`,
		`reclaim_retired_pages_total{pool="dr1"}`,
		`sql_statements_total{db="dr1",verb="select"}`,
		`casjobs_mydb_physical_writes_total`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full scrape:\n%s", out)
	}
}

// TestMetricsCountRejectionsAndCancels drives each admission failure and
// a queued-job cancellation through the counters.
func TestMetricsCountRejectionsAndCancels(t *testing.T) {
	cfg := Config{QuickWorkers: 1, LongWorkers: 1, UserQPS: 0.001, UserBurst: 1, MaxQueue: 1}
	s := NewServerConfig(nil, cfg)
	t.Cleanup(s.Close)
	reg := telemetry.NewRegistry()
	s.EnableMetrics(reg)
	if err := s.CreateUser("maria"); err != nil {
		t.Fatal(err)
	}

	// Token bucket holds one token: the second submission is rate limited.
	job, err := s.Submit("maria", "MYDB", "CREATE TABLE t (a bigint PRIMARY KEY)", "", false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit("maria", "MYDB", "SELECT 1", "", false); err == nil {
		t.Fatal("expected rate limit")
	}
	if _, err := s.Wait(job.ID); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`casjobs_jobs_rejected_total{reason="rate_limit"} 1`,
		`casjobs_jobs_submitted_total{queue="long"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q:\n%s", want, out)
		}
	}
}

// TestJobTraceAndLog checks the span sink and the structured query log
// fire on completion with the job's trace id in both.
func TestJobTraceAndLog(t *testing.T) {
	var logBuf bytes.Buffer
	s := NewServerConfig(nil, Config{
		QuickWorkers: 1, LongWorkers: 1,
		Logger:    slog.New(slog.NewJSONHandler(&logBuf, nil)),
		SlowQuery: time.Nanosecond, // everything is slow: the Warn path must fire
	})
	t.Cleanup(s.Close)
	sink := s.Tracer().Attach(16)
	if err := s.CreateUser("maria"); err != nil {
		t.Fatal(err)
	}
	job, err := s.Submit("maria", "MYDB", "CREATE TABLE t (a bigint PRIMARY KEY)", "", true)
	if err != nil {
		t.Fatal(err)
	}
	if job.TraceID == "" {
		t.Fatal("job has no trace id")
	}

	spans := sink.Recent()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Name != "casjobs.job" || sp.ID != job.TraceID {
		t.Errorf("span = %q/%q, want casjobs.job/%q", sp.Name, sp.ID, job.TraceID)
	}
	if sp.Attrs["status"] != "finished" || sp.Attrs["user"] != "maria" || sp.Attrs["queue"] != "quick" {
		t.Errorf("span attrs = %v", sp.Attrs)
	}
	if sp.Duration <= 0 {
		t.Errorf("span duration = %v", sp.Duration)
	}

	logs := logBuf.String()
	for _, want := range []string{
		`"msg":"job complete"`, `"status":"finished"`, `"user":"maria"`,
		`"trace":"` + job.TraceID + `"`, `"msg":"slow query"`,
		`"query":"CREATE TABLE t (a bigint PRIMARY KEY)"`,
	} {
		if !strings.Contains(logs, want) {
			t.Errorf("query log missing %s:\n%s", want, logs)
		}
	}
}

// TestHealthz pins the probe's drain transition.
func TestHealthz(t *testing.T) {
	s := NewServerConfig(nil, Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	get := func() int {
		resp, err := srv.Client().Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get(); code != 200 {
		t.Fatalf("healthy probe = %d", code)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if code := get(); code != 503 {
		t.Fatalf("draining probe = %d", code)
	}
}

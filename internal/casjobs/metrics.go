package casjobs

import (
	"time"

	"repro/internal/telemetry"
)

// serverMetrics is the service-layer instrumentation, attached by
// EnableMetrics through an atomic pointer so an uninstrumented server
// (every unit test, every benchmark) pays one pointer load per job
// lifecycle event. Counting happens at job boundaries — admission,
// terminal transition, cancellation — never per row.
type serverMetrics struct {
	subs     *telemetry.CounterVec   // {queue}
	rejs     *telemetry.CounterVec   // {reason}
	comps    *telemetry.CounterVec   // {queue, status}
	userJobs *telemetry.CounterVec   // {user}
	retries  *telemetry.Counter      // attempts beyond the first
	cancels  *telemetry.Counter      // Cancel calls that stopped a job
	waitHist *telemetry.HistogramVec // {queue}
	execHist *telemetry.HistogramVec // {queue}
}

// reject counts a refused submission; nil-safe.
func (m *serverMetrics) reject(reason string) {
	if m != nil {
		m.rejs.With(reason).Inc()
	}
}

// admitted counts a successful submission; nil-safe.
func (m *serverMetrics) admitted(queue, user string) {
	if m != nil {
		m.subs.With(queue).Inc()
		m.userJobs.With(user).Inc()
	}
}

// completed records a job reaching a terminal state; nil-safe. Jobs
// cancelled while queued pass a zero exec duration and never observe the
// execution histogram.
func (m *serverMetrics) completed(queue string, status JobStatus, wait, exec time.Duration, retries int64) {
	if m == nil {
		return
	}
	m.comps.With(queue, status.String()).Inc()
	m.waitHist.With(queue).Observe(wait.Seconds())
	if exec > 0 || status != StatusCancelled {
		m.execHist.With(queue).Observe(exec.Seconds())
	}
	if retries > 0 {
		m.retries.Add(retries)
	}
}

// cancelled counts a Cancel request that actually stopped a job; nil-safe.
func (m *serverMetrics) cancelled() {
	if m != nil {
		m.cancels.Inc()
	}
}

// EnableMetrics attaches the server's job-lifecycle counters to r. Queue
// depth, running jobs, and user counts are scrape-time funcs over state
// the server already keeps; MyDB I/O is exposed as a point-in-time sum
// over every user's pool (individual MyDB pools come and go with users, a
// label per user would leak unbounded families). Safe to call once per
// registry; calling again rebinds the scrape funcs and resets nothing.
func (s *Server) EnableMetrics(r *telemetry.Registry) {
	m := &serverMetrics{
		subs:     r.NewCounterVec("casjobs_jobs_submitted_total", "jobs admitted into a queue", "queue"),
		rejs:     r.NewCounterVec("casjobs_jobs_rejected_total", "submissions refused at admission", "reason"),
		comps:    r.NewCounterVec("casjobs_jobs_completed_total", "jobs reaching a terminal state", "queue", "status"),
		userJobs: r.NewCounterVec("casjobs_user_jobs_total", "jobs admitted per user", "user"),
		retries:  r.NewCounter("casjobs_job_retries_total", "extra execution attempts after transient faults"),
		cancels:  r.NewCounter("casjobs_cancellations_total", "cancel requests that stopped a queued or running job"),
		waitHist: r.NewHistogramVec("casjobs_queue_wait_seconds", "time from admission to execution start", nil, "queue"),
		execHist: r.NewHistogramVec("casjobs_exec_seconds", "job execution wall time", nil, "queue"),
	}
	// Seed the fixed label spaces so dashboards see explicit zeros before
	// the first event of each kind.
	for _, q := range []string{"quick", "long"} {
		m.subs.With(q)
		m.waitHist.With(q)
		m.execHist.With(q)
	}
	for _, reason := range []string{"rate_limit", "queue_full", "draining"} {
		m.rejs.With(reason)
	}

	depth := r.NewGaugeFuncVec("casjobs_queue_depth", "jobs waiting in the queue", "queue")
	depth.Attach(func() float64 { return float64(s.quick.depth()) }, "quick")
	depth.Attach(func() float64 { return float64(s.long.depth()) }, "long")
	r.NewGaugeFunc("casjobs_jobs_running", "jobs currently executing",
		func() float64 { return float64(s.running.Load()) })
	r.NewGaugeFunc("casjobs_users", "registered users", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.users))
	})
	r.NewGaugeFunc("casjobs_jobs_tracked", "jobs the server remembers (all states)", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.jobs))
	})
	r.NewGaugeFunc("casjobs_draining", "1 while the server refuses new work", func() float64 {
		if s.Draining() {
			return 1
		}
		return 0
	})

	r.NewGaugeFunc("casjobs_mydb_pools", "user MyDB buffer pools alive",
		func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(len(s.users)) })
	r.NewCounterFunc("casjobs_mydb_logical_reads_total", "page fetches summed over every MyDB pool",
		func() float64 { lr, _, _ := s.mydbIO(); return float64(lr) })
	r.NewCounterFunc("casjobs_mydb_physical_reads_total", "store reads summed over every MyDB pool",
		func() float64 { _, pr, _ := s.mydbIO(); return float64(pr) })
	r.NewCounterFunc("casjobs_mydb_physical_writes_total", "store writes summed over every MyDB pool",
		func() float64 { _, _, pw := s.mydbIO(); return float64(pw) })

	s.met.Store(m)
	s.reg.Store(r)
}

// mydbIO sums raw I/O counters across every user's MyDB pool.
func (s *Server) mydbIO() (logical, physReads, physWrites int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, u := range s.users {
		st := u.mydb.Stats()
		logical += st.LogicalReads
		physReads += st.PhysicalReads
		physWrites += st.PhysicalWrites
	}
	return logical, physReads, physWrites
}

// Tracer returns the server's job tracer; attach a ring sink to start
// collecting spans (casjobsd does this under -debug-addr).
func (s *Server) Tracer() *telemetry.Tracer { return &s.tracer }

// Package casjobs implements the SDSS Batch Query System of the paper's
// §4: users submit SQL against shared catalog contexts (the CAS databases)
// or their personal server-side database (MyDB); long-running queries are
// queued and executed by workers; results land in MyDB tables; users form
// groups and share tables. CasJobs is the paper's mechanism for "bringing
// the code to the data".
//
// The service layer is built to survive a multi-tenant workload: quick and
// long queues with separate worker budgets and per-queue execution
// timeouts, preemptive cancellation threaded down to the storage sweeps,
// per-user token-bucket admission, bounded queue depth, bounded retries on
// transient faults, panic isolation per job, and graceful drain.
package casjobs

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/sqldb"
	"repro/internal/telemetry"
)

// Typed admission and lookup errors. The HTTP layer maps these onto
// status codes (404/429/503); embedded detail is attached with %w so
// errors.Is keeps working through the wrapping.
var (
	ErrUnknownUser    = errors.New("casjobs: unknown user")
	ErrUnknownContext = errors.New("casjobs: unknown context")
	ErrUnknownJob     = errors.New("casjobs: unknown job")
	ErrQueueFull      = errors.New("casjobs: queue full")
	ErrRateLimited    = errors.New("casjobs: rate limit exceeded")
	ErrDraining       = errors.New("casjobs: server is draining")
)

// JobStatus is the lifecycle of a submitted query.
type JobStatus int

// Job states.
const (
	StatusQueued JobStatus = iota
	StatusRunning
	StatusFinished
	StatusFailed
	StatusCancelled
)

// String implements fmt.Stringer.
func (s JobStatus) String() string {
	switch s {
	case StatusQueued:
		return "queued"
	case StatusRunning:
		return "running"
	case StatusFinished:
		return "finished"
	case StatusFailed:
		return "failed"
	case StatusCancelled:
		return "cancelled"
	}
	return "unknown"
}

// terminal reports whether the status is final.
func (s JobStatus) terminal() bool {
	return s == StatusFinished || s == StatusFailed || s == StatusCancelled
}

// Job is one submitted query.
type Job struct {
	ID      int64
	User    string
	Context string // "MYDB" or a shared context name (e.g. "DR1")
	Query   string
	// OutputTable, when set, materialises the result into this MyDB
	// table (the CasJobs "SELECT ... INTO mydb.Name" behaviour).
	OutputTable string
	Quick       bool
	// TraceID correlates this job across the query log, /debug/traces, and
	// client-visible status; assigned at admission.
	TraceID string

	mu       sync.Mutex
	status   JobStatus
	err      string
	rows     *sqldb.Rows
	rowCount int64
	attempts int
	created  time.Time
	started  time.Time
	finished time.Time
	cancel   context.CancelFunc // set while running; preemptive Cancel
	done     chan struct{}
	doneOnce sync.Once
}

// markDone closes the completion channel exactly once, no matter whether
// the job finished, failed, timed out, or was cancelled while queued.
func (j *Job) markDone() { j.doneOnce.Do(func() { close(j.done) }) }

// queueName renders the queue the job was admitted to, as used in metric
// labels and log records.
func (j *Job) queueName() string {
	if j.Quick {
		return "quick"
	}
	return "long"
}

// Status returns the job's current state.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Err returns the failure message for failed jobs.
func (j *Job) Err() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Rows returns the result set of a finished SELECT job (nil when the
// output went to a MyDB table or the statement returned no rows).
func (j *Job) Rows() *sqldb.Rows {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rows
}

// RowCount returns the affected/returned row count.
func (j *Job) RowCount() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rowCount
}

// Attempts returns how many execution attempts the job consumed (1 for a
// first-try success; more after transient-fault retries).
func (j *Job) Attempts() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.attempts
}

// Elapsed returns the execution duration of a completed job.
func (j *Job) Elapsed() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.finished.IsZero() || j.started.IsZero() {
		return 0
	}
	return j.finished.Sub(j.started)
}

// user is one registered account with its MyDB and token bucket.
type user struct {
	name string
	mydb *sqldb.DB

	// Token bucket for submission rate limiting (guarded by Server.mu).
	tokens     float64
	lastRefill time.Time
}

// Config tunes the service's robustness envelope. Zero values select
// defaults, so Config{} behaves like the historical server.
type Config struct {
	// QuickWorkers and LongWorkers size the two worker pools
	// (defaults 2 and 1). Quick jobs never wait behind long extractions.
	QuickWorkers int
	LongWorkers  int
	// QuickTimeout and LongTimeout bound one job's execution on each
	// queue (defaults 5s and 60s). A job past its deadline is failed
	// with a timeout error and stops consuming CPU at the next
	// cancellation checkpoint.
	QuickTimeout time.Duration
	LongTimeout  time.Duration
	// MaxQueue bounds the number of jobs waiting in each queue
	// (default 256). Submissions past the bound fail with ErrQueueFull.
	MaxQueue int
	// UserQPS caps each user's sustained submission rate via a token
	// bucket of UserBurst capacity. Zero disables rate limiting;
	// UserBurst defaults to max(1, 2*UserQPS).
	UserQPS   float64
	UserBurst int
	// MaxRetries bounds re-execution after transient faults (default 2;
	// negative disables retries). RetryBase is the first backoff delay,
	// doubled per attempt (default 5ms).
	MaxRetries int
	RetryBase  time.Duration
	// Logger, when set, receives a structured completion record per job
	// (and admission failures are left to the HTTP layer's status codes).
	// Nil keeps the server silent, as library users and tests expect.
	Logger *slog.Logger
	// SlowQuery, when positive, logs a warning with the query text for any
	// job whose execution exceeds it. Requires Logger.
	SlowQuery time.Duration
}

func (c Config) withDefaults() Config {
	if c.QuickWorkers < 1 {
		c.QuickWorkers = 2
	}
	if c.LongWorkers < 1 {
		c.LongWorkers = 1
	}
	if c.QuickTimeout <= 0 {
		c.QuickTimeout = 5 * time.Second
	}
	if c.LongTimeout <= 0 {
		c.LongTimeout = 60 * time.Second
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 256
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	} else if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 5 * time.Millisecond
	}
	if c.UserBurst <= 0 {
		c.UserBurst = int(math.Max(1, 2*c.UserQPS))
	}
	return c
}

// jobQueue is a FIFO with blocking pop and O(n) removal. A slice-backed
// queue (not a channel) so that cancelling a queued job releases its
// admission slot immediately instead of when a worker happens to pop it.
type jobQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []*Job
	closed bool
}

func newJobQueue() *jobQueue {
	q := &jobQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *jobQueue) push(j *Job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.items = append(q.items, j)
	q.cond.Signal()
	return true
}

// pop blocks until an item is available or the queue is closed and empty.
// A closed queue still drains its backlog, which is what lets Shutdown
// finish queued work inside the drain deadline.
func (q *jobQueue) pop() (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	j := q.items[0]
	q.items[0] = nil
	q.items = q.items[1:]
	return j, true
}

// remove deletes a still-queued job, freeing its admission slot.
func (q *jobQueue) remove(j *Job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, x := range q.items {
		if x == j {
			q.items = append(q.items[:i], q.items[i+1:]...)
			return true
		}
	}
	return false
}

func (q *jobQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

func (q *jobQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Server is the CasJobs service.
type Server struct {
	cfg Config

	mu       sync.Mutex
	contexts map[string]*sqldb.DB // shared read-only catalogs
	users    map[string]*user
	groups   map[string]map[string]bool // group -> members
	shared   map[string]sharedTable     // "group/table" -> source
	jobs     map[int64]*Job
	nextID   int64
	draining bool

	quick *jobQueue
	long  *jobQueue
	wg    sync.WaitGroup

	// met is the job-lifecycle instrumentation (nil until EnableMetrics);
	// running counts executing jobs; tracer hands out job spans (no-ops
	// until a sink is attached).
	met     atomic.Pointer[serverMetrics]
	reg     atomic.Pointer[telemetry.Registry]
	running atomic.Int64
	tracer  telemetry.Tracer

	// MyDBFrames sizes each user's buffer pool; MyDBShards sets its shard
	// count (0 = one per CPU).
	MyDBFrames int
	MyDBShards int

	// now is swapped in tests to drive the token bucket deterministically.
	now func() time.Time
}

type sharedTable struct {
	owner string
	table string
}

// NewServer creates a CasJobs service over the given shared contexts (name
// -> database) with the given number of long-queue workers and default
// robustness settings.
func NewServer(contexts map[string]*sqldb.DB, workers int) *Server {
	return NewServerConfig(contexts, Config{LongWorkers: workers})
}

// NewServerConfig creates a CasJobs service with explicit queue, timeout,
// admission, and retry settings.
func NewServerConfig(contexts map[string]*sqldb.DB, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:        cfg,
		contexts:   make(map[string]*sqldb.DB),
		users:      make(map[string]*user),
		groups:     make(map[string]map[string]bool),
		shared:     make(map[string]sharedTable),
		jobs:       make(map[int64]*Job),
		quick:      newJobQueue(),
		long:       newJobQueue(),
		MyDBFrames: 1024,
		now:        time.Now,
	}
	for name, db := range contexts {
		s.contexts[strings.ToUpper(name)] = db
	}
	for w := 0; w < cfg.QuickWorkers; w++ {
		s.wg.Add(1)
		go s.workerLoop(s.quick, cfg.QuickTimeout)
	}
	for w := 0; w < cfg.LongWorkers; w++ {
		s.wg.Add(1)
		go s.workerLoop(s.long, cfg.LongTimeout)
	}
	return s
}

// Close drains both queues and stops the workers, waiting indefinitely.
func (s *Server) Close() { _ = s.Shutdown(context.Background()) }

// Shutdown gracefully drains the service: admission stops immediately
// (Submit fails with ErrDraining), queued and running jobs are given until
// ctx expires to finish, then everything still active is cancelled. It
// returns nil on a clean drain or ctx.Err() when the deadline forced
// cancellation.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.draining = true
	s.mu.Unlock()

	s.quick.close()
	s.long.close()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancelAll()
		<-done
		return ctx.Err()
	}
}

// cancelAll force-cancels every non-terminal job: queued jobs are marked
// cancelled (workers skip them), running jobs get their context cancelled.
func (s *Server) cancelAll() {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	m := s.met.Load()
	for _, j := range jobs {
		j.mu.Lock()
		switch j.status {
		case StatusQueued:
			j.status = StatusCancelled
			j.err = "cancelled: server shutdown"
			j.finished = s.now()
			m.completed(j.queueName(), StatusCancelled, j.finished.Sub(j.created), 0, 0)
			j.markDone()
		case StatusRunning:
			if j.cancel != nil {
				j.cancel()
			}
		}
		j.mu.Unlock()
	}
}

// Draining reports whether the server has stopped admitting jobs.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// QueueDepth returns the number of jobs waiting in the quick and long
// queues (not counting running jobs).
func (s *Server) QueueDepth() (quick, long int) {
	return s.quick.depth(), s.long.depth()
}

// CreateUser registers an account and provisions its MyDB.
func (s *Server) CreateUser(name string) error {
	if name == "" {
		return fmt.Errorf("casjobs: empty user name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(name)
	if _, dup := s.users[key]; dup {
		return fmt.Errorf("casjobs: user %q already exists", name)
	}
	s.users[key] = &user{
		name:       name,
		mydb:       sqldb.OpenPool(sqldb.PoolConfig{Frames: s.MyDBFrames, Shards: s.MyDBShards}),
		tokens:     float64(s.cfg.UserBurst),
		lastRefill: s.now(),
	}
	return nil
}

// MyDB returns a user's personal database (full power: create tables,
// indexes, run any statement).
func (s *Server) MyDB(userName string) (*sqldb.DB, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	u, ok := s.users[strings.ToLower(userName)]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownUser, userName)
	}
	return u.mydb, nil
}

// Contexts lists the shared catalog names.
func (s *Server) Contexts() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.contexts))
	for name := range s.contexts {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// TableInfo describes one table as a single database snapshot saw it.
type TableInfo struct {
	Name string `json:"name"`
	Rows int64  `json:"rows"`
}

// Tables lists a context's tables with their row counts — the user's
// MyDB when context is "MYDB", a shared catalog otherwise. The whole
// listing reads one snapshot: names and counts come from the same set of
// published table versions, so a bulk load, DROP, or RENAME racing the
// call can never yield a name whose count is missing or taken from a
// different state. Fails with ErrUnknownUser / ErrUnknownContext.
func (s *Server) Tables(userName, context string) ([]TableInfo, error) {
	s.mu.Lock()
	var db *sqldb.DB
	if strings.ToUpper(context) == "MYDB" {
		u, ok := s.users[strings.ToLower(userName)]
		if !ok {
			s.mu.Unlock()
			return nil, fmt.Errorf("%w: %q", ErrUnknownUser, userName)
		}
		db = u.mydb
	} else {
		ctxDB, ok := s.contexts[strings.ToUpper(context)]
		if !ok {
			s.mu.Unlock()
			return nil, fmt.Errorf("%w: %q", ErrUnknownContext, context)
		}
		db = ctxDB
	}
	s.mu.Unlock()

	snap := db.Snapshot()
	defer snap.Close()
	names := snap.TableNames()
	out := make([]TableInfo, 0, len(names))
	for _, name := range names {
		tv, ok := snap.View(name)
		if !ok {
			continue // unreachable: the snapshot's catalog is immutable
		}
		out = append(out, TableInfo{Name: name, Rows: tv.NumRows()})
	}
	return out, nil
}

// allowLocked refills and debits the user's token bucket. Callers hold
// Server.mu.
func (s *Server) allowLocked(u *user) bool {
	if s.cfg.UserQPS <= 0 {
		return true
	}
	now := s.now()
	burst := float64(s.cfg.UserBurst)
	u.tokens = math.Min(burst, u.tokens+now.Sub(u.lastRefill).Seconds()*s.cfg.UserQPS)
	u.lastRefill = now
	if u.tokens < 1 {
		return false
	}
	u.tokens--
	return true
}

// Submit admits a query into the quick or long queue. Quick submissions
// block until the job completes (the CasJobs quick queue, meant for short
// interactive queries); long jobs return immediately with the queued job.
// Admission can fail with ErrUnknownUser, ErrUnknownContext,
// ErrRateLimited, ErrQueueFull, or ErrDraining. Against a shared context
// only SELECT is allowed; against MYDB any statement runs.
func (s *Server) Submit(userName, context, query, outputTable string, quick bool) (*Job, error) {
	m := s.met.Load()
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		m.reject("draining")
		return nil, ErrDraining
	}
	u, ok := s.users[strings.ToLower(userName)]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownUser, userName)
	}
	ctx := strings.ToUpper(context)
	if ctx != "MYDB" {
		if _, ok := s.contexts[ctx]; !ok {
			s.mu.Unlock()
			return nil, fmt.Errorf("%w: %q", ErrUnknownContext, context)
		}
	}
	if !s.allowLocked(u) {
		s.mu.Unlock()
		m.reject("rate_limit")
		return nil, fmt.Errorf("%w: user %q", ErrRateLimited, userName)
	}
	q := s.long
	if quick {
		q = s.quick
	}
	if q.depth() >= s.cfg.MaxQueue {
		s.mu.Unlock()
		m.reject("queue_full")
		return nil, fmt.Errorf("%w: %d jobs queued", ErrQueueFull, s.cfg.MaxQueue)
	}
	s.nextID++
	created := s.now()
	job := &Job{
		ID: s.nextID, User: u.name, Context: ctx, Query: query,
		OutputTable: outputTable, Quick: quick,
		TraceID: fmt.Sprintf("%d-%08x", s.nextID, uint32(created.UnixNano())),
		status:  StatusQueued, created: created,
		done: make(chan struct{}),
	}
	s.jobs[job.ID] = job
	if !q.push(job) {
		// The queue closed between the draining check and the push.
		delete(s.jobs, job.ID)
		s.mu.Unlock()
		m.reject("draining")
		return nil, ErrDraining
	}
	s.mu.Unlock()
	m.admitted(job.queueName(), job.User)

	if quick {
		<-job.done
	}
	return job, nil
}

// Job looks up a submitted job by id.
func (s *Server) Job(id int64) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownJob, id)
	}
	return j, nil
}

// Jobs lists a user's jobs, oldest first.
func (s *Server) Jobs(userName string) []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Job
	for _, j := range s.jobs {
		if strings.EqualFold(j.User, userName) {
			out = append(out, j)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Wait blocks until the job completes and returns its final status.
func (s *Server) Wait(id int64) (JobStatus, error) {
	j, err := s.Job(id)
	if err != nil {
		return 0, err
	}
	<-j.done
	return j.Status(), nil
}

// Cancel stops a job. A queued job is cancelled in place — its admission
// slot frees immediately and Wait returns promptly. A running job has its
// execution context cancelled; the operators notice at the next
// checkpoint and the job lands in StatusCancelled. Cancelling an already
// cancelled job is a no-op; cancelling a finished or failed one is an
// error.
func (s *Server) Cancel(id int64) error {
	j, err := s.Job(id)
	if err != nil {
		return err
	}
	m := s.met.Load()
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.status {
	case StatusQueued:
		j.status = StatusCancelled
		j.err = "cancelled while queued"
		j.finished = s.now()
		// Free the admission slot now, not when a worker pops the
		// corpse. remove may miss when a worker raced us to the pop;
		// runJob's queued-status check then skips execution anyway.
		if j.Quick {
			s.quick.remove(j)
		} else {
			s.long.remove(j)
		}
		m.cancelled()
		m.completed(j.queueName(), StatusCancelled, j.finished.Sub(j.created), 0, 0)
		j.markDone()
		return nil
	case StatusRunning:
		if j.cancel != nil {
			j.cancel()
		}
		m.cancelled()
		return nil
	case StatusCancelled:
		return nil
	default:
		return fmt.Errorf("casjobs: job %d is already %s", id, j.status)
	}
}

func (s *Server) workerLoop(q *jobQueue, timeout time.Duration) {
	defer s.wg.Done()
	for {
		j, ok := q.pop()
		if !ok {
			return
		}
		s.runJob(j, timeout)
	}
}

// runJob executes one popped job under its queue's deadline, classifying
// the outcome into finished / failed / cancelled. Completion is the job's
// observability point: the lifecycle counters, the trace span, and the
// structured query log all record here, once, after the job is terminal.
func (s *Server) runJob(j *Job, timeout time.Duration) {
	j.mu.Lock()
	if j.status != StatusQueued {
		// Cancelled between admission and pop.
		j.mu.Unlock()
		j.markDone()
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	j.status = StatusRunning
	j.started = s.now()
	j.cancel = cancel
	queueWait := j.started.Sub(j.created)
	j.mu.Unlock()
	defer cancel()

	s.running.Add(1)
	defer s.running.Add(-1)
	sp := s.tracer.Start("casjobs.job", j.TraceID)
	sp.SetAttr("user", j.User)
	sp.SetAttr("queue", j.queueName())
	sp.SetAttr("context", j.Context)

	var rows *sqldb.Rows
	var count int64
	err := s.runAttempts(ctx, j, &rows, &count)

	status, errMsg := StatusFinished, ""
	switch {
	case err == nil:
		// Finished, even if the deadline fired a moment later.
	case errors.Is(err, context.Canceled):
		status, errMsg = StatusCancelled, "cancelled while running"
	case errors.Is(err, context.DeadlineExceeded):
		status, errMsg = StatusFailed, fmt.Sprintf("timeout after %v", timeout)
	default:
		status, errMsg = StatusFailed, err.Error()
	}

	j.mu.Lock()
	j.status = status
	j.err = errMsg
	j.rows = rows
	j.rowCount = count
	j.finished = s.now()
	j.cancel = nil
	attempts := j.attempts
	exec := j.finished.Sub(j.started)
	j.mu.Unlock()

	// Record before markDone: a caller woken by Wait (or a quick Submit)
	// must find the completion counters bumped and the log line written.
	sp.SetAttr("status", status.String())
	sp.SetAttr("attempts", fmt.Sprint(attempts))
	sp.End()
	s.met.Load().completed(j.queueName(), status, queueWait, exec, int64(attempts-1))
	if lg := s.cfg.Logger; lg != nil {
		attrs := []any{
			"job", j.ID, "user", j.User, "queue", j.queueName(),
			"context", j.Context, "status", status.String(),
			"attempts", attempts, "rows", count,
			"queue_wait_ms", queueWait.Seconds() * 1e3,
			"exec_ms", exec.Seconds() * 1e3,
			"trace", j.TraceID,
		}
		if errMsg != "" {
			attrs = append(attrs, "error", errMsg)
		}
		lg.Info("job complete", attrs...)
		if s.cfg.SlowQuery > 0 && exec >= s.cfg.SlowQuery {
			lg.Warn("slow query",
				"job", j.ID, "user", j.User, "trace", j.TraceID,
				"exec_ms", exec.Seconds()*1e3,
				"threshold_ms", s.cfg.SlowQuery.Seconds()*1e3,
				"query", j.Query)
		}
	}
	j.markDone()
}

// runAttempts executes the job, retrying on transient faults (bounded by
// MaxRetries, exponential backoff from RetryBase). Cancellation and
// deadline expiry are never retried.
func (s *Server) runAttempts(ctx context.Context, j *Job, rows **sqldb.Rows, count *int64) error {
	backoff := s.cfg.RetryBase
	for attempt := 0; ; attempt++ {
		j.mu.Lock()
		j.attempts = attempt + 1
		j.mu.Unlock()
		err := s.runOnce(ctx, j, rows, count)
		if err == nil || ctx.Err() != nil || !faultinject.IsTransient(err) || attempt >= s.cfg.MaxRetries {
			return err
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return err
		}
		backoff *= 2
	}
}

// runOnce performs a single execution attempt with panic isolation: a
// panicking job is converted into a failure carrying the stack, and the
// worker survives.
func (s *Server) runOnce(ctx context.Context, j *Job, rows **sqldb.Rows, count *int64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("casjobs: job panicked: %v\n%s", r, debug.Stack())
		}
	}()
	*rows, *count = nil, 0

	s.mu.Lock()
	u := s.users[strings.ToLower(j.User)]
	ctxDB := s.contexts[j.Context]
	s.mu.Unlock()
	if u == nil {
		return fmt.Errorf("%w: %q", ErrUnknownUser, j.User)
	}

	if j.Context == "MYDB" {
		if j.OutputTable != "" {
			r, err := u.mydb.QueryContext(ctx, j.Query)
			if err != nil {
				return err
			}
			n, err := materialize(u.mydb, j.OutputTable, j.ID, r)
			*count = n
			return err
		}
		if isSelect(j.Query) {
			r, err := u.mydb.QueryContext(ctx, j.Query)
			if err != nil {
				return err
			}
			*rows = r
			*count = int64(r.Len())
			return nil
		}
		n, err := u.mydb.ExecContext(ctx, j.Query)
		*count = n
		return err
	}
	// Shared context: read-only.
	if !isSelect(j.Query) {
		return fmt.Errorf("casjobs: context %s is read-only; only SELECT is allowed", j.Context)
	}
	r, err := ctxDB.QueryContext(ctx, j.Query)
	if err != nil {
		return err
	}
	if j.OutputTable != "" {
		n, err := materialize(u.mydb, j.OutputTable, j.ID, r)
		*count = n
		return err
	}
	*rows = r
	*count = int64(r.Len())
	return nil
}

// isSelect reports whether the statement returns rows without writing:
// bare SELECTs and EXPLAIN [ANALYZE] SELECT both qualify, so remote
// clients can inspect the planner's choices against read-only contexts.
func isSelect(query string) bool {
	stmt, err := sqldb.Parse(query)
	if err != nil {
		return false // let execution surface the parse error
	}
	switch stmt.(type) {
	case *sqldb.SelectStmt, *sqldb.ExplainStmt:
		return true
	}
	return false
}

// materialize stores a result set as a MyDB table atomically: rows are
// bulk-loaded into a job-private staging table which is then renamed over
// the target in one catalog swap. A failure at any point (including an
// injected storage fault mid-load) drops the staging table and leaves the
// previous target untouched. Column types are inferred from the first
// non-null value of each column (FLOAT otherwise).
func materialize(db *sqldb.DB, table string, jobID int64, rows *sqldb.Rows) (int64, error) {
	stage := fmt.Sprintf("__casjobs_stage_%d_%s", jobID, table)
	_ = db.DropTable(stage, true)
	cols := make([]sqldb.Column, len(rows.Columns))
	all := rows.All()
	for i, name := range rows.Columns {
		typ := sqldb.TFloat
		for _, r := range all {
			if !r[i].IsNull() {
				typ = r[i].T
				break
			}
		}
		cols[i] = sqldb.Column{Name: name, Type: typ}
	}
	t, err := db.CreateTable(stage, cols, "")
	if err != nil {
		return 0, err
	}
	// One bulk load, not a row-at-a-time trickle: long-queue extractions
	// are exactly the MyDB batch ingest the engine's load path is built
	// for (encode once, sort the run, write packed pages bottom-up).
	if err := t.BulkInsert(all); err != nil {
		_ = db.DropTable(stage, true)
		return 0, err
	}
	if err := db.RenameTable(stage, table); err != nil {
		_ = db.DropTable(stage, true)
		return 0, err
	}
	return int64(len(all)), nil
}

// CreateGroup registers a sharing group owned by its first member.
func (s *Server) CreateGroup(group, owner string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.users[strings.ToLower(owner)]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownUser, owner)
	}
	key := strings.ToLower(group)
	if _, dup := s.groups[key]; dup {
		return fmt.Errorf("casjobs: group %q already exists", group)
	}
	s.groups[key] = map[string]bool{strings.ToLower(owner): true}
	return nil
}

// JoinGroup adds a member to a group.
func (s *Server) JoinGroup(group, userName string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.groups[strings.ToLower(group)]
	if !ok {
		return fmt.Errorf("casjobs: unknown group %q", group)
	}
	if _, ok := s.users[strings.ToLower(userName)]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownUser, userName)
	}
	g[strings.ToLower(userName)] = true
	return nil
}

// Publish shares a MyDB table with a group.
func (s *Server) Publish(userName, table, group string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.groups[strings.ToLower(group)]
	if !ok {
		return fmt.Errorf("casjobs: unknown group %q", group)
	}
	if !g[strings.ToLower(userName)] {
		return fmt.Errorf("casjobs: %q is not a member of %q", userName, group)
	}
	u := s.users[strings.ToLower(userName)]
	if _, ok := u.mydb.Table(table); !ok {
		return fmt.Errorf("casjobs: no table %q in %s's MyDB", table, userName)
	}
	s.shared[strings.ToLower(group)+"/"+strings.ToLower(table)] = sharedTable{
		owner: strings.ToLower(userName), table: table,
	}
	return nil
}

// Import copies a group-shared table into the user's MyDB under destTable.
func (s *Server) Import(userName, group, table, destTable string) (int64, error) {
	s.mu.Lock()
	g, ok := s.groups[strings.ToLower(group)]
	if !ok {
		s.mu.Unlock()
		return 0, fmt.Errorf("casjobs: unknown group %q", group)
	}
	if !g[strings.ToLower(userName)] {
		s.mu.Unlock()
		return 0, fmt.Errorf("casjobs: %q is not a member of %q", userName, group)
	}
	st, ok := s.shared[strings.ToLower(group)+"/"+strings.ToLower(table)]
	if !ok {
		s.mu.Unlock()
		return 0, fmt.Errorf("casjobs: table %q is not shared with %q", table, group)
	}
	owner := s.users[st.owner]
	dest := s.users[strings.ToLower(userName)]
	s.mu.Unlock()

	src, ok := owner.mydb.Table(st.table)
	if !ok {
		return 0, fmt.Errorf("casjobs: shared table %q vanished from the owner's MyDB", table)
	}
	_ = dest.mydb.DropTable(destTable, true)
	cols := append([]sqldb.Column(nil), src.Cols...)
	t, err := dest.mydb.CreateTable(destTable, cols, "")
	if err != nil {
		return 0, err
	}
	cur, err := src.Scan()
	if err != nil {
		return 0, err
	}
	defer cur.Close()
	var rows [][]sqldb.Value
	for cur.Next() {
		rows = append(rows, append([]sqldb.Value(nil), cur.Row()...))
	}
	if err := cur.Err(); err != nil {
		return 0, err
	}
	// Bulk-load the copy: group imports move whole tables, the batch
	// shape BulkInsert exists for.
	if err := t.BulkInsert(rows); err != nil {
		return 0, err
	}
	return int64(len(rows)), nil
}

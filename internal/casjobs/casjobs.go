// Package casjobs implements the SDSS Batch Query System of the paper's
// §4: users submit SQL against shared catalog contexts (the CAS databases)
// or their personal server-side database (MyDB); long-running queries are
// queued and executed by workers; results land in MyDB tables; users form
// groups and share tables. CasJobs is the paper's mechanism for "bringing
// the code to the data".
package casjobs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/sqldb"
)

// JobStatus is the lifecycle of a submitted query.
type JobStatus int

// Job states.
const (
	StatusQueued JobStatus = iota
	StatusRunning
	StatusFinished
	StatusFailed
	StatusCancelled
)

// String implements fmt.Stringer.
func (s JobStatus) String() string {
	switch s {
	case StatusQueued:
		return "queued"
	case StatusRunning:
		return "running"
	case StatusFinished:
		return "finished"
	case StatusFailed:
		return "failed"
	case StatusCancelled:
		return "cancelled"
	}
	return "unknown"
}

// Job is one submitted query.
type Job struct {
	ID      int64
	User    string
	Context string // "MYDB" or a shared context name (e.g. "DR1")
	Query   string
	// OutputTable, when set, materialises the result into this MyDB
	// table (the CasJobs "SELECT ... INTO mydb.Name" behaviour).
	OutputTable string
	Quick       bool

	mu       sync.Mutex
	status   JobStatus
	err      string
	rows     *sqldb.Rows
	rowCount int64
	created  time.Time
	started  time.Time
	finished time.Time
	done     chan struct{}
}

// Status returns the job's current state.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Err returns the failure message for failed jobs.
func (j *Job) Err() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Rows returns the result set of a finished SELECT job (nil when the
// output went to a MyDB table or the statement returned no rows).
func (j *Job) Rows() *sqldb.Rows {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rows
}

// RowCount returns the affected/returned row count.
func (j *Job) RowCount() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rowCount
}

// Elapsed returns the execution duration of a completed job.
func (j *Job) Elapsed() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.finished.IsZero() {
		return 0
	}
	return j.finished.Sub(j.started)
}

// user is one registered account with its MyDB.
type user struct {
	name string
	mydb *sqldb.DB
}

// Server is the CasJobs service.
type Server struct {
	mu       sync.Mutex
	contexts map[string]*sqldb.DB // shared read-only catalogs
	users    map[string]*user
	groups   map[string]map[string]bool // group -> members
	shared   map[string]sharedTable     // "group/table" -> source
	jobs     map[int64]*Job
	nextID   int64
	queue    chan *Job
	wg       sync.WaitGroup
	closed   bool
	// MyDBFrames sizes each user's buffer pool.
	MyDBFrames int
}

type sharedTable struct {
	owner string
	table string
}

// NewServer creates a CasJobs service over the given shared contexts (name
// -> database) with the given number of long-queue workers.
func NewServer(contexts map[string]*sqldb.DB, workers int) *Server {
	if workers < 1 {
		workers = 1
	}
	s := &Server{
		contexts:   make(map[string]*sqldb.DB),
		users:      make(map[string]*user),
		groups:     make(map[string]map[string]bool),
		shared:     make(map[string]sharedTable),
		jobs:       make(map[int64]*Job),
		queue:      make(chan *Job, 1024),
		MyDBFrames: 1024,
	}
	for name, db := range contexts {
		s.contexts[strings.ToUpper(name)] = db
	}
	for w := 0; w < workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Close drains the long queue and stops the workers.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.queue)
	s.wg.Wait()
}

// CreateUser registers an account and provisions its MyDB.
func (s *Server) CreateUser(name string) error {
	if name == "" {
		return fmt.Errorf("casjobs: empty user name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(name)
	if _, dup := s.users[key]; dup {
		return fmt.Errorf("casjobs: user %q already exists", name)
	}
	s.users[key] = &user{name: name, mydb: sqldb.Open(s.MyDBFrames)}
	return nil
}

// MyDB returns a user's personal database (full power: create tables,
// indexes, run any statement).
func (s *Server) MyDB(userName string) (*sqldb.DB, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	u, ok := s.users[strings.ToLower(userName)]
	if !ok {
		return nil, fmt.Errorf("casjobs: unknown user %q", userName)
	}
	return u.mydb, nil
}

// Contexts lists the shared catalog names.
func (s *Server) Contexts() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.contexts))
	for name := range s.contexts {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Submit queues a query. quick jobs run synchronously (the CasJobs quick
// queue, meant for short interactive queries); long jobs go to the worker
// queue. Against a shared context only SELECT is allowed; against MYDB any
// statement runs.
func (s *Server) Submit(userName, context, query, outputTable string, quick bool) (*Job, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("casjobs: server is closed")
	}
	u, ok := s.users[strings.ToLower(userName)]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("casjobs: unknown user %q", userName)
	}
	ctx := strings.ToUpper(context)
	if ctx != "MYDB" {
		if _, ok := s.contexts[ctx]; !ok {
			s.mu.Unlock()
			return nil, fmt.Errorf("casjobs: unknown context %q", context)
		}
	}
	s.nextID++
	job := &Job{
		ID: s.nextID, User: u.name, Context: ctx, Query: query,
		OutputTable: outputTable, Quick: quick,
		status: StatusQueued, created: time.Now(),
		done: make(chan struct{}),
	}
	s.jobs[job.ID] = job
	s.mu.Unlock()

	if quick {
		s.execute(job)
		return job, nil
	}
	s.queue <- job
	return job, nil
}

// Job looks up a submitted job by id.
func (s *Server) Job(id int64) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("casjobs: no job %d", id)
	}
	return j, nil
}

// Jobs lists a user's jobs, oldest first.
func (s *Server) Jobs(userName string) []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Job
	for _, j := range s.jobs {
		if strings.EqualFold(j.User, userName) {
			out = append(out, j)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Wait blocks until the job completes and returns its final status.
func (s *Server) Wait(id int64) (JobStatus, error) {
	j, err := s.Job(id)
	if err != nil {
		return 0, err
	}
	<-j.done
	return j.Status(), nil
}

func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.execute(job)
	}
}

func (s *Server) execute(job *Job) {
	job.mu.Lock()
	if job.status == StatusCancelled {
		job.mu.Unlock()
		return
	}
	job.status = StatusRunning
	job.started = time.Now()
	job.mu.Unlock()

	status, errMsg := StatusFinished, ""
	var rows *sqldb.Rows
	var count int64
	err := func() error {
		s.mu.Lock()
		u := s.users[strings.ToLower(job.User)]
		ctxDB := s.contexts[job.Context]
		s.mu.Unlock()

		if job.Context == "MYDB" {
			if job.OutputTable != "" {
				r, err := u.mydb.Query(job.Query)
				if err != nil {
					return err
				}
				n, err := materialize(u.mydb, job.OutputTable, r)
				count = n
				return err
			}
			if isSelect(job.Query) {
				r, err := u.mydb.Query(job.Query)
				if err != nil {
					return err
				}
				rows = r
				count = int64(r.Len())
				return nil
			}
			n, err := u.mydb.Exec(job.Query)
			count = n
			return err
		}
		// Shared context: read-only.
		if !isSelect(job.Query) {
			return fmt.Errorf("casjobs: context %s is read-only; only SELECT is allowed", job.Context)
		}
		r, err := ctxDB.Query(job.Query)
		if err != nil {
			return err
		}
		if job.OutputTable != "" {
			n, err := materialize(u.mydb, job.OutputTable, r)
			count = n
			return err
		}
		rows = r
		count = int64(r.Len())
		return nil
	}()
	if err != nil {
		status, errMsg = StatusFailed, err.Error()
	}

	job.mu.Lock()
	job.status = status
	job.err = errMsg
	job.rows = rows
	job.rowCount = count
	job.finished = time.Now()
	job.mu.Unlock()
	close(job.done)
}

// Cancel marks a queued job cancelled; running jobs are not interrupted.
func (s *Server) Cancel(id int64) error {
	j, err := s.Job(id)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusQueued {
		return fmt.Errorf("casjobs: job %d is %s, not queued", id, j.status)
	}
	j.status = StatusCancelled
	close(j.done)
	return nil
}

// isSelect reports whether the statement returns rows without writing:
// bare SELECTs and EXPLAIN [ANALYZE] SELECT both qualify, so remote
// clients can inspect the planner's choices against read-only contexts.
func isSelect(query string) bool {
	stmt, err := sqldb.Parse(query)
	if err != nil {
		return false // let execution surface the parse error
	}
	switch stmt.(type) {
	case *sqldb.SelectStmt, *sqldb.ExplainStmt:
		return true
	}
	return false
}

// materialize stores a result set as a fresh MyDB table. Column types are
// inferred from the first non-null value of each column (FLOAT otherwise).
func materialize(db *sqldb.DB, table string, rows *sqldb.Rows) (int64, error) {
	_ = db.DropTable(table, true)
	cols := make([]sqldb.Column, len(rows.Columns))
	all := rows.All()
	for i, name := range rows.Columns {
		typ := sqldb.TFloat
		for _, r := range all {
			if !r[i].IsNull() {
				typ = r[i].T
				break
			}
		}
		cols[i] = sqldb.Column{Name: name, Type: typ}
	}
	t, err := db.CreateTable(table, cols, "")
	if err != nil {
		return 0, err
	}
	// One bulk load, not a row-at-a-time trickle: long-queue extractions
	// are exactly the MyDB batch ingest the engine's load path is built
	// for (encode once, sort the run, write packed pages bottom-up).
	if err := t.BulkInsert(all); err != nil {
		return 0, err
	}
	return int64(len(all)), nil
}

// CreateGroup registers a sharing group owned by its first member.
func (s *Server) CreateGroup(group, owner string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.users[strings.ToLower(owner)]; !ok {
		return fmt.Errorf("casjobs: unknown user %q", owner)
	}
	key := strings.ToLower(group)
	if _, dup := s.groups[key]; dup {
		return fmt.Errorf("casjobs: group %q already exists", group)
	}
	s.groups[key] = map[string]bool{strings.ToLower(owner): true}
	return nil
}

// JoinGroup adds a member to a group.
func (s *Server) JoinGroup(group, userName string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.groups[strings.ToLower(group)]
	if !ok {
		return fmt.Errorf("casjobs: unknown group %q", group)
	}
	if _, ok := s.users[strings.ToLower(userName)]; !ok {
		return fmt.Errorf("casjobs: unknown user %q", userName)
	}
	g[strings.ToLower(userName)] = true
	return nil
}

// Publish shares a MyDB table with a group.
func (s *Server) Publish(userName, table, group string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.groups[strings.ToLower(group)]
	if !ok {
		return fmt.Errorf("casjobs: unknown group %q", group)
	}
	if !g[strings.ToLower(userName)] {
		return fmt.Errorf("casjobs: %q is not a member of %q", userName, group)
	}
	u := s.users[strings.ToLower(userName)]
	if _, ok := u.mydb.Table(table); !ok {
		return fmt.Errorf("casjobs: no table %q in %s's MyDB", table, userName)
	}
	s.shared[strings.ToLower(group)+"/"+strings.ToLower(table)] = sharedTable{
		owner: strings.ToLower(userName), table: table,
	}
	return nil
}

// Import copies a group-shared table into the user's MyDB under destTable.
func (s *Server) Import(userName, group, table, destTable string) (int64, error) {
	s.mu.Lock()
	g, ok := s.groups[strings.ToLower(group)]
	if !ok {
		s.mu.Unlock()
		return 0, fmt.Errorf("casjobs: unknown group %q", group)
	}
	if !g[strings.ToLower(userName)] {
		s.mu.Unlock()
		return 0, fmt.Errorf("casjobs: %q is not a member of %q", userName, group)
	}
	st, ok := s.shared[strings.ToLower(group)+"/"+strings.ToLower(table)]
	if !ok {
		s.mu.Unlock()
		return 0, fmt.Errorf("casjobs: table %q is not shared with %q", table, group)
	}
	owner := s.users[st.owner]
	dest := s.users[strings.ToLower(userName)]
	s.mu.Unlock()

	src, ok := owner.mydb.Table(st.table)
	if !ok {
		return 0, fmt.Errorf("casjobs: shared table %q vanished from the owner's MyDB", table)
	}
	_ = dest.mydb.DropTable(destTable, true)
	cols := append([]sqldb.Column(nil), src.Cols...)
	t, err := dest.mydb.CreateTable(destTable, cols, "")
	if err != nil {
		return 0, err
	}
	cur, err := src.Scan()
	if err != nil {
		return 0, err
	}
	defer cur.Close()
	var rows [][]sqldb.Value
	for cur.Next() {
		rows = append(rows, append([]sqldb.Value(nil), cur.Row()...))
	}
	if err := cur.Err(); err != nil {
		return 0, err
	}
	// Bulk-load the copy: group imports move whole tables, the batch
	// shape BulkInsert exists for.
	if err := t.BulkInsert(rows); err != nil {
		return 0, err
	}
	return int64(len(rows)), nil
}

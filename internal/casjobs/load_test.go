package casjobs

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/sqldb"
	"repro/internal/storage"
)

// loadCatalog builds a shared read-only context with a modest galaxy table.
func loadCatalog(t testing.TB, rows int) *sqldb.DB {
	t.Helper()
	cas := sqldb.Open(256)
	if _, err := cas.Exec("CREATE TABLE galaxy (objid bigint PRIMARY KEY, i real, gr real)"); err != nil {
		t.Fatal(err)
	}
	data := make([][]sqldb.Value, rows)
	for i := range data {
		data[i] = []sqldb.Value{
			sqldb.Int(int64(i)),
			sqldb.Float(15 + float64(i%7)),
			sqldb.Float(float64(i%13) / 10),
		}
	}
	tab, _ := cas.Table("galaxy")
	if err := tab.BulkInsert(data); err != nil {
		t.Fatal(err)
	}
	return cas
}

// TestCasjobsChaosLoad is the end-to-end robustness gate: hundreds of
// concurrent jobs — quick and long, MyDB and shared-context, cancelled
// mid-flight, with storage faults injected into every user's MyDB pool —
// and afterwards no admitted job may be lost (done never closed) or left
// non-terminal. Run under -race by the CI chaos job.
func TestCasjobsChaosLoad(t *testing.T) {
	defer faultinject.Reset()
	cas := loadCatalog(t, 300)
	srv := NewServerConfig(map[string]*sqldb.DB{"DR1": cas}, Config{
		QuickWorkers: 4,
		LongWorkers:  4,
		QuickTimeout: 5 * time.Second,
		LongTimeout:  5 * time.Second,
		MaxQueue:     64,
		MaxRetries:   1,
		RetryBase:    time.Millisecond,
	})

	const nUsers = 4
	for u := 0; u < nUsers; u++ {
		name := fmt.Sprintf("user%d", u)
		if err := srv.CreateUser(name); err != nil {
			t.Fatal(err)
		}
		mydb, err := srv.MyDB(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := mydb.Exec("CREATE TABLE notes (id bigint PRIMARY KEY, v real)"); err != nil {
			t.Fatal(err)
		}
		// Every user's MyDB occasionally fails a page allocation: output
		// materialisations and INSERTs see real storage faults.
		site := fmt.Sprintf("chaos/%s-alloc", name)
		faultinject.Enable(site, faultinject.Failpoint{Prob: 0.2, MaxHits: 40, Seed: int64(100 + u)})
		mydb.Pool().SetFaultHooks(&storage.FaultHooks{Alloc: faultinject.Hook(site)})
	}

	var (
		mu       sync.Mutex
		jobs     []*Job
		rejected atomic.Int64
		workers  = 24
		perG     = 8
	)
	record := func(j *Job) {
		mu.Lock()
		jobs = append(jobs, j)
		mu.Unlock()
	}
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) * 7919))
			user := fmt.Sprintf("user%d", g%nUsers)
			for k := 0; k < perG; k++ {
				var (
					j   *Job
					err error
				)
				switch rng.Intn(6) {
				case 0: // quick select against the catalog
					j, err = srv.Submit(user, "DR1", "SELECT COUNT(*) FROM galaxy WHERE i < 18", "", true)
				case 1: // long extraction into MyDB (may hit injected faults)
					out := fmt.Sprintf("out_%d_%d", g, k)
					j, err = srv.Submit(user, "DR1", "SELECT objid, i FROM galaxy WHERE gr < 0.9", out, false)
				case 2: // MyDB write (may hit injected faults)
					q := fmt.Sprintf("INSERT INTO notes VALUES (%d, %f)", int64(g)*1000+int64(k), rng.Float64())
					j, err = srv.Submit(user, "MYDB", q, "", false)
				case 3: // submit long then cancel immediately
					j, err = srv.Submit(user, "DR1", "SELECT objid FROM galaxy", "", false)
					if err == nil {
						_ = srv.Cancel(j.ID) // racing terminal states is fine
					}
				case 4: // bad SQL: must fail cleanly, never wedge a worker
					j, err = srv.Submit(user, "DR1", "SELEKT broken FROM nowhere", "", true)
				case 5: // read-only violation against the shared context
					j, err = srv.Submit(user, "DR1", "DELETE FROM galaxy", "", false)
				}
				if err != nil {
					// Admission rejections must be typed.
					if !errors.Is(err, ErrQueueFull) && !errors.Is(err, ErrRateLimited) && !errors.Is(err, ErrDraining) {
						t.Errorf("untyped admission error: %v", err)
					}
					rejected.Add(1)
					continue
				}
				record(j)
			}
		}(g)
	}
	wg.Wait()
	srv.Close() // drains every queue

	finished, failed, cancelled := 0, 0, 0
	for _, j := range jobs {
		select {
		case <-j.done:
		default:
			t.Fatalf("job %d lost: done never closed (status %s)", j.ID, j.Status())
		}
		switch j.Status() {
		case StatusFinished:
			finished++
		case StatusFailed:
			failed++
		case StatusCancelled:
			cancelled++
		default:
			t.Fatalf("job %d left non-terminal: %s", j.ID, j.Status())
		}
	}
	if finished == 0 || failed == 0 {
		t.Fatalf("chaos mix degenerate: finished=%d failed=%d cancelled=%d rejected=%d",
			finished, failed, cancelled, rejected.Load())
	}
	t.Logf("chaos: %d jobs admitted (%d finished, %d failed, %d cancelled), %d rejected",
		len(jobs), finished, failed, cancelled, rejected.Load())
}

// BenchmarkCasjobsLoad measures the service under concurrent quick-queue
// load: jobs/sec throughput and p99 submit-to-done latency. cmd/benchgate
// gates the p99 against the committed BENCH snapshot.
func BenchmarkCasjobsLoad(b *testing.B) {
	cas := loadCatalog(b, 300)
	srv := NewServerConfig(map[string]*sqldb.DB{"DR1": cas}, Config{
		QuickWorkers: 4,
		LongWorkers:  2,
		MaxQueue:     4096,
	})
	defer srv.Close()
	if err := srv.CreateUser("bench"); err != nil {
		b.Fatal(err)
	}

	var mu sync.Mutex
	lats := make([]float64, 0, b.N)
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			t0 := time.Now()
			j, err := srv.Submit("bench", "DR1", "SELECT COUNT(*) FROM galaxy WHERE i < 18", "", true)
			if err != nil {
				b.Error(err)
				return
			}
			if j.Status() != StatusFinished {
				b.Errorf("bench job = %s (%s)", j.Status(), j.Err())
				return
			}
			d := time.Since(t0).Seconds() * 1000
			mu.Lock()
			lats = append(lats, d)
			mu.Unlock()
		}
	})
	elapsed := time.Since(start).Seconds()
	b.StopTimer()
	if len(lats) == 0 {
		return
	}
	sort.Float64s(lats)
	idx := int(float64(len(lats)) * 0.99)
	if idx >= len(lats) {
		idx = len(lats) - 1
	}
	b.ReportMetric(lats[idx], "p99_ms")
	b.ReportMetric(float64(len(lats))/elapsed, "jobs_per_s")
}

// BenchmarkConcurrentMyDB measures snapshot isolation where it pays off:
// reader latency against a MyDB session while bulk loads replace the same
// tables underneath. Readers run range aggregations (each query pins one
// snapshot); writer goroutines continuously ReplaceAll their table — a
// full off-to-the-side rebuild plus one atomic publish per load. The
// /writers=2 variant first samples an idle-writer p99, then reports how
// far concurrent loads push it (p99_vs_idle_x); readers never block on
// writers, so the ratio is bounded by CPU interleaving, not by lock
// waits (a reader stuck behind a writer lock would move it by orders of
// magnitude). Writers pace their loads — MyDB extractions arrive as
// periodic batches, not a hot loop — so on a single-core runner the
// ratio measures the cost of sharing the core with a rebuild, and on a
// multi-core runner it sits near 1. cmd/benchgate gates p99_ms,
// reads_per_s (higher is better), and the ratio against the committed
// BENCH snapshot.
func BenchmarkConcurrentMyDB(b *testing.B) {
	for _, writers := range []int{0, 2} {
		name := "idle"
		if writers > 0 {
			name = fmt.Sprintf("writers=%d", writers)
		}
		b.Run(name, func(b *testing.B) {
			srv := NewServerConfig(nil, Config{QuickWorkers: 1, LongWorkers: 1})
			defer srv.Close()
			srv.MyDBFrames = 4096
			if err := srv.CreateUser("bench"); err != nil {
				b.Fatal(err)
			}
			mydb, err := srv.MyDB("bench")
			if err != nil {
				b.Fatal(err)
			}

			const tableRows = 5000
			nTables := writers
			if nTables == 0 {
				nTables = 1
			}
			// One prebuilt batch per table, mutated in place between
			// loads: the writers measure the engine's load path, not
			// allocator churn.
			batches := make([][][]sqldb.Value, nTables)
			load := func(w int, tab *sqldb.Table, gen int64) error {
				for _, row := range batches[w] {
					row[1] = sqldb.Int(gen)
				}
				return tab.ReplaceAll(batches[w])
			}
			tabs := make([]*sqldb.Table, nTables)
			for i := range tabs {
				name := fmt.Sprintf("hot%d", i)
				if _, err := mydb.Exec("CREATE TABLE " + name + " (k bigint PRIMARY KEY, v bigint)"); err != nil {
					b.Fatal(err)
				}
				tabs[i], _ = mydb.Table(name)
				batches[i] = make([][]sqldb.Value, tableRows)
				for j := range batches[i] {
					batches[i][j] = []sqldb.Value{sqldb.Int(int64(j)), sqldb.Int(0)}
				}
				if err := load(i, tabs[i], 0); err != nil {
					b.Fatal(err)
				}
			}

			readOne := func(rng *rand.Rand) (float64, error) {
				lo := rng.Int63n(tableRows - 1000)
				q := fmt.Sprintf("SELECT COUNT(*), SUM(v) FROM hot%d WHERE k BETWEEN ? AND ?", rng.Intn(nTables))
				t0 := time.Now()
				rows, err := mydb.Query(q, sqldb.Int(lo), sqldb.Int(lo+999))
				if err != nil {
					return 0, err
				}
				rows.Next()
				if c := rows.Row()[0].I; c != 1000 {
					return 0, fmt.Errorf("range count = %d, want 1000 (torn snapshot?)", c)
				}
				return time.Since(t0).Seconds() * 1000, nil
			}
			p99 := func(lats []float64) float64 {
				sort.Float64s(lats)
				idx := int(float64(len(lats)) * 0.99)
				if idx >= len(lats) {
					idx = len(lats) - 1
				}
				return lats[idx]
			}

			// Idle baseline for the ratio metric: sampled inside the same
			// run so both sides see identical hardware and cache state.
			idleRng := rand.New(rand.NewSource(17))
			idleLats := make([]float64, 0, 200)
			for i := 0; i < 200; i++ {
				d, err := readOne(idleRng)
				if err != nil {
					b.Fatal(err)
				}
				idleLats = append(idleLats, d)
			}
			idleP99 := p99(idleLats)

			stop := make(chan struct{})
			var wwg sync.WaitGroup
			var loads atomic.Int64
			for w := 0; w < writers; w++ {
				wwg.Add(1)
				go func(w int) {
					defer wwg.Done()
					tick := time.NewTicker(20 * time.Millisecond)
					defer tick.Stop()
					for gen := int64(1); ; gen++ {
						select {
						case <-stop:
							return
						case <-tick.C:
						}
						if err := load(w, tabs[w], gen); err != nil {
							b.Error(err)
							return
						}
						loads.Add(1)
					}
				}(w)
			}

			var mu sync.Mutex
			lats := make([]float64, 0, b.N)
			var seed atomic.Int64
			b.ResetTimer()
			start := time.Now()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(100 + seed.Add(1)))
				local := make([]float64, 0, 256)
				for pb.Next() {
					d, err := readOne(rng)
					if err != nil {
						b.Error(err)
						return
					}
					local = append(local, d)
				}
				mu.Lock()
				lats = append(lats, local...)
				mu.Unlock()
			})
			elapsed := time.Since(start).Seconds()
			b.StopTimer()
			close(stop)
			wwg.Wait()
			if len(lats) == 0 {
				return
			}
			loadedP99 := p99(lats)
			b.ReportMetric(loadedP99, "p99_ms")
			b.ReportMetric(float64(len(lats))/elapsed, "reads_per_s")
			if writers > 0 {
				b.ReportMetric(loadedP99/idleP99, "p99_vs_idle_x")
				b.ReportMetric(float64(loads.Load())/elapsed, "loads_per_s")
			}
		})
	}
}
